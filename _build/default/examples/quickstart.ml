(* Quickstart: the smallest useful catenet.

   Two hosts, one gateway, two different link technologies.  We open a TCP
   connection across the gateway, stream half a megabyte through it, and
   watch the transport verify every byte end-to-end.

   Run with: dune exec examples/quickstart.exe *)

open Catenet

let () =
  (* 1. Build the network: h1 --ethernet-- gw --T1-- h2. *)
  let net = Internet.create ~routing:Internet.Static () in
  let h1 = Internet.add_host net "h1" in
  let h2 = Internet.add_host net "h2" in
  let gw = Internet.add_gateway net "gw" in
  ignore
    (Internet.connect net Netsim.Profiles.ethernet h1.Internet.h_node
       gw.Internet.g_node);
  ignore
    (Internet.connect net Netsim.Profiles.t1 gw.Internet.g_node
       h2.Internet.h_node);
  Internet.start net;

  Printf.printf "topology: h1 (%s) -- gw -- (%s) h2\n"
    Netsim.Profiles.ethernet.Netsim.name Netsim.Profiles.t1.Netsim.name;
  Printf.printf "h1 = %s, h2 = %s\n"
    (Packet.Addr.to_string (Internet.addr_of net h1.Internet.h_node))
    (Packet.Addr.to_string (Internet.addr_of net h2.Internet.h_node));

  (* 2. Reachability check, 1970s style. *)
  let pings =
    Internet.ping net ~from:h1
      (Internet.addr_of net h2.Internet.h_node)
      ~count:4 ~interval_us:250_000
  in
  Internet.run_for net 2.0;
  Printf.printf "ping h2: %d/4 replies, median rtt %.2f ms\n"
    (Stdext.Stats.Samples.count pings)
    (Stdext.Stats.Samples.median pings *. 1e3);

  (* 3. A bulk TCP transfer with end-to-end integrity checking. *)
  let seed = 42 in
  let total = 500_000 in
  let server = Apps.Bulk.serve h2.Internet.h_tcp ~port:21 ~seed in
  let sender =
    Apps.Bulk.start h1.Internet.h_tcp
      ~dst:(Internet.addr_of net h2.Internet.h_node)
      ~dst_port:21 ~seed ~total ()
  in
  Internet.run_for net 60.0;

  (match Apps.Bulk.transfers server with
  | [ tr ] ->
      Printf.printf "transfer: %d bytes received, intact=%b\n"
        tr.Apps.Bulk.received tr.Apps.Bulk.intact
  | _ -> print_endline "unexpected transfer count");
  (match Apps.Bulk.goodput_bps sender with
  | Some bps -> Printf.printf "goodput: %.1f kB/s\n" (bps /. 1e3)
  | None -> print_endline "transfer did not complete");

  (* 4. A peek at the congestion machinery underneath. *)
  let c = Apps.Bulk.conn sender in
  let st = Tcp.stats c in
  Printf.printf
    "tcp: %d segments out, %d retransmitted, %d fast retransmits, srtt=%s\n"
    st.Tcp.segs_out st.Tcp.retransmits st.Tcp.fast_retransmits
    (match Tcp.srtt_us c with
    | Some us -> Printf.sprintf "%.1f ms" (float_of_int us /. 1e3)
    | None -> "-")
