(* Fixture: observability violations.  A [drop_reason] with no counter
   mapping, and a drop counter bumped with no trace emission beside it. *)

type drop_reason = Too_long | Bad_magic

type counters = { mutable dropped_long : int }

let c = { dropped_long = 0 }

let note_drop () = c.dropped_long <- c.dropped_long + 1
