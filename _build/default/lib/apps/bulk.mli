(** Bulk data transfer over TCP (the FTP-shaped workload).

    A sender pushes a fixed number of patterned bytes down one connection;
    the receiver verifies the pattern and records completion.  Used by the
    survivability, fate-sharing, congestion and cost experiments. *)

type server

type transfer = {
  mutable received : int;
  mutable intact : bool;  (** Pattern verified so far. *)
  mutable fin_at_us : int option;  (** When the peer's FIN arrived. *)
}

val serve : Tcp.t -> port:int -> seed:int -> server
(** Accept any number of inbound transfers on [port], verifying each
    against the pattern [seed]. *)

val transfers : server -> transfer list
(** Most recent first. *)

type sender

val start :
  Tcp.t ->
  ?config:Tcp.config ->
  dst:Packet.Addr.t ->
  dst_port:int ->
  seed:int ->
  total:int ->
  unit ->
  sender
(** Connect and stream [total] patterned bytes, then close. *)

val conn : sender -> Tcp.conn
val started_at_us : sender -> int
val finished : sender -> bool
(** All bytes acknowledged end-to-end and connection closed gracefully. *)

val failed : sender -> Tcp.close_reason option
(** Set when the connection died before completing. *)

val completed_at_us : sender -> int option
(** Time of graceful close after full transfer. *)

val goodput_bps : sender -> float option
(** Application bytes per second over the transfer lifetime. *)
