(* LRU + TTL record cache shared by positive answers, negative answers
   (NXNAME) and cached delegations.

   One intrusive doubly-linked list ordered by recency (sentinel-headed)
   plus a hashtable from packed key to node: find, insert and evict are
   all O(1), and the resident set is hard-bounded by [capacity] — a
   resolver serving 10^5 clients must not grow without bound just
   because the query stream has a long tail.

   TTL is checked lazily at lookup: an expired entry is a miss (counted
   separately) and is unlinked on discovery.  Soft state in the Clark
   sense — a crash simply forgets all of it ({!flush}), correctness is
   preserved because every record can be re-fetched from its
   authority. *)

type entry = {
  e_key : int;
  mutable e_rcode : int;
  mutable e_answer : int;
  mutable e_expires_us : int;
  mutable e_prev : entry;
  mutable e_next : entry;
}

type stats = {
  mutable hits : int;
  mutable misses : int;  (* absent entirely *)
  mutable expired : int;  (* present but past its TTL: also a miss *)
  mutable insertions : int;
  mutable evictions : int;  (* LRU pressure, not TTL *)
  mutable flushes : int;
}

type t = {
  capacity : int;
  tbl : (int, entry) Hashtbl.t;
  head : entry;  (* sentinel: head.e_next = most recent *)
  stats : stats;
}

(* Pack (qtype, l0, l1, l2) into one immediate int: cheap hashing, and
   no polymorphic comparison anywhere near the hot path. *)
let key ~qtype ~l0 ~l1 ~l2 =
  (qtype lsl 48) lor (l0 lsl 32) lor (l1 lsl 16) lor l2

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  let rec head =
    { e_key = -1; e_rcode = 0; e_answer = 0; e_expires_us = 0;
      e_prev = head; e_next = head }
  in
  { capacity;
    tbl = Hashtbl.create (min capacity 4096);
    head;
    stats =
      { hits = 0; misses = 0; expired = 0; insertions = 0; evictions = 0;
        flushes = 0 } }

let unlink e =
  e.e_prev.e_next <- e.e_next;
  e.e_next.e_prev <- e.e_prev

let push_front t e =
  e.e_next <- t.head.e_next;
  e.e_prev <- t.head;
  t.head.e_next.e_prev <- e;
  t.head.e_next <- e

let len t = Hashtbl.length t.tbl
let capacity t = t.capacity
let stats t = t.stats

(* Remaining lifetime rounded up: an entry with 1us left still serves as
   ttl 1, never 0 (a 0 TTL would tell the client "uncacheable"). *)
let remaining_s ~now_us e = ((e.e_expires_us - now_us) + 999_999) / 1_000_000

let find t ~now_us k =
  match Hashtbl.find_opt t.tbl k with
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      None
  | Some e ->
      if e.e_expires_us <= now_us then begin
        unlink e;
        Hashtbl.remove t.tbl k;
        t.stats.expired <- t.stats.expired + 1;
        None
      end
      else begin
        unlink e;
        push_front t e;
        t.stats.hits <- t.stats.hits + 1;
        Some (e.e_rcode, e.e_answer, remaining_s ~now_us e)
      end

let insert t ~now_us ~key:k ~rcode ~answer ~ttl_s =
  if ttl_s > 0 then begin
    let expires = now_us + (ttl_s * 1_000_000) in
    (match Hashtbl.find_opt t.tbl k with
    | Some e ->
        e.e_rcode <- rcode;
        e.e_answer <- answer;
        e.e_expires_us <- expires;
        unlink e;
        push_front t e
    | None ->
        if Hashtbl.length t.tbl >= t.capacity then begin
          (* evict the least recently used (tail) *)
          let lru = t.head.e_prev in
          unlink lru;
          Hashtbl.remove t.tbl lru.e_key;
          t.stats.evictions <- t.stats.evictions + 1
        end;
        let e =
          { e_key = k; e_rcode = rcode; e_answer = answer;
            e_expires_us = expires; e_prev = t.head; e_next = t.head }
        in
        push_front t e;
        Hashtbl.add t.tbl k e);
    t.stats.insertions <- t.stats.insertions + 1
  end

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some e ->
      unlink e;
      Hashtbl.remove t.tbl k

let flush t =
  Hashtbl.reset t.tbl;
  t.head.e_next <- t.head;
  t.head.e_prev <- t.head;
  t.stats.flushes <- t.stats.flushes + 1
