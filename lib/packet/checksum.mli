(** The Internet checksum (RFC 1071).

    One's-complement sum of 16-bit big-endian words, used identically by
    IPv4 headers, ICMP, and (over a pseudo-header) TCP and UDP.  The
    algebraic properties the protocols rely on — order independence,
    verifiability by summing to 0xFFFF, incremental update — are exercised
    by property tests. *)

type acc
(** Partial one's-complement accumulator. *)

val zero : acc

val add_bytes : acc -> bytes -> pos:int -> len:int -> acc
(** Fold a byte range into the accumulator.  A trailing odd byte is padded
    with zero, as the RFC specifies; callers must therefore only split
    input on even offsets. *)

val add_u16 : acc -> int -> acc
(** Fold one 16-bit value. *)

val finish : acc -> int
(** Final one's-complement (bit-flipped) 16-bit checksum. *)

val of_bytes : ?acc:acc -> bytes -> pos:int -> len:int -> int
(** Checksum of a byte range in one call. *)

val update_u16 : int -> old_word:int -> new_word:int -> int
(** [update_u16 csum ~old_word ~new_word] is the checksum after one 16-bit
    word of the covered data changes from [old_word] to [new_word], per
    RFC 1624's incremental-update equation — the trick that lets a gateway
    repair an IP header checksum after decrementing the TTL without
    re-summing the header. *)

val valid : ?acc:acc -> bytes -> pos:int -> len:int -> bool
(** A range that includes its own (correct) checksum field sums to 0xFFFF
    before complementing; [valid] checks exactly that. *)

val pseudo_header : src:int32 -> dst:int32 -> proto:int -> len:int -> acc
(** Accumulator pre-loaded with the TCP/UDP pseudo-header: source and
    destination address, protocol number, and transport-segment length. *)
