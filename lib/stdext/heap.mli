(** Binary min-heap keyed by [(int, int)] pairs.

    The event queue of the simulation engine needs a priority queue ordered
    by (time, insertion sequence): the sequence component makes the pop
    order of same-time events deterministic (FIFO in insertion order),
    which keeps whole simulations reproducible. *)

type 'a t
(** Heap of values of type ['a]. *)

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int
(** Number of stored elements. *)

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** [push t ~key ~seq v] inserts [v] ordered primarily by [key] and, among
    equal keys, by [seq]. *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum as [(key, seq, value)], or [None] if the
    heap is empty. *)

val peek : 'a t -> (int * int * 'a) option
(** Like {!pop} without removing. *)

val min_key : 'a t -> int
(** Key of the minimum element without allocating.  @raise Not_found when
    empty.  The engine's hot loop uses this instead of {!peek} so that
    inspecting the queue head costs no tuple. *)

val min_seq : 'a t -> int
(** Sequence of the minimum element without allocating.  @raise Not_found
    when empty.  With {!min_key} this lets the engine merge the heap with
    the timer wheel in exact (key, seq) order. *)

val pop_min : 'a t -> 'a
(** Remove the minimum and return its value without allocating.
    @raise Not_found when empty. *)

val clear : 'a t -> unit
(** Drop all elements, retaining the backing array's capacity. *)
