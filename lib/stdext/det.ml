(* Deterministic views over hash tables.

   Hashtbl iteration order is unspecified, and the catenet-lint
   determinism pass bans bare [Hashtbl.iter]/[fold] in lib/ for exactly
   that reason: anything whose order reaches the wire, the event queue
   or serialized output must iterate in a canonical order, or replay
   stops being bit-for-bit.  These helpers are the sanctioned escape:
   snapshot the bindings (the one fold below is order-independent by
   construction — list cons then sort) and visit them sorted by key. *)

let bindings h =
  (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] [@determinism.commutative])

let sorted_bindings ~compare:cmp h =
  List.sort (fun (a, _) (b, _) -> cmp a b) (bindings h)

let sorted_iter ~compare:cmp f h =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~compare:cmp h)

let sorted_keys ~compare:cmp h =
  List.map fst (sorted_bindings ~compare:cmp h)
