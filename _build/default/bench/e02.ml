(* E2 — Fate-sharing (Clark §3).

   The paper's definition: "it is acceptable to lose the state information
   associated with an entity if, at the same time, the entity itself is
   lost" — so connection state belongs in the hosts, never in the network.
   We crash the only transit gateway mid-conversation, wiping all of its
   state, and bring it back cold.  The TCP conversation (state in the two
   hosts) picks up where it left off.  The VC call (state in the switch)
   is destroyed.  We also count where the state physically lives. *)

open Catenet

let profile = Netsim.profile "trunk" ~bandwidth_bps:1_536_000 ~delay_us:5_000
let total_bytes = 600_000
let crash_at = 2.0
let crash_for = 4.0

let run_ip () =
  let t = Internet.create ~routing:Internet.Static () in
  let h1 = Internet.add_host t "h1" in
  let h2 = Internet.add_host t "h2" in
  let g = Internet.add_gateway t "g" in
  ignore (Internet.connect t profile h1.Internet.h_node g.Internet.g_node);
  ignore (Internet.connect t profile g.Internet.g_node h2.Internet.h_node);
  Internet.start t;
  let seed = 9 in
  let server = Apps.Bulk.serve h2.Internet.h_tcp ~port:20 ~seed in
  let sender =
    Apps.Bulk.start h1.Internet.h_tcp
      ~dst:(Internet.addr_of t h2.Internet.h_node)
      ~dst_port:20 ~seed ~total:total_bytes ()
  in
  let eng = Internet.engine t in
  (* The gateway holds zero bytes of connection state at all times; crash
     and cold-restart it mid-transfer. *)
  Engine.after eng (Engine.sec crash_at) (fun () ->
      Internet.crash_node t g.Internet.g_node);
  Engine.after eng
    (Engine.sec (crash_at +. crash_for))
    (fun () -> Internet.restore_node t g.Internet.g_node);
  Internet.run_for t 180.0;
  let ok =
    Apps.Bulk.finished sender
    && Apps.Bulk.failed sender = None
    &&
    match Apps.Bulk.transfers server with
    | [ tr ] -> tr.Apps.Bulk.intact && tr.Apps.Bulk.received = total_bytes
    | _ -> false
  in
  let st = Tcp.stats (Apps.Bulk.conn sender) in
  (ok, st.Tcp.retransmits)

let run_vc () =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:9 eng in
  let h1 = Netsim.add_node net "h1" in
  let g = Netsim.add_node net "g" in
  let h2 = Netsim.add_node net "h2" in
  ignore (Netsim.add_link net profile h1 g);
  ignore (Netsim.add_link net profile g h2);
  let fabric = Vc.create net in
  List.iter (Vc.attach fabric) [ h1; g; h2 ];
  let delivered = ref 0 in
  Vc.listen fabric h2 (fun circuit ->
      Vc.on_data circuit (fun d -> delivered := !delivered + Bytes.length d));
  let cleared = ref false in
  let call =
    Vc.call fabric ~src:h1 ~dst:h2 ~on_clear:(fun _ -> cleared := true) ()
  in
  let sent = ref 0 in
  let payload = Bytes.make 1024 'd' in
  let rec pump () =
    if Vc.is_open call && !sent < total_bytes then begin
      if Vc.send call payload then sent := !sent + Bytes.length payload;
      Engine.after eng 2_000 pump
    end
  in
  Engine.after eng 200_000 pump;
  (* Capture the state-in-the-network count before the crash. *)
  let state_before = ref 0 in
  Engine.after eng (Engine.sec (crash_at -. 0.1)) (fun () ->
      state_before := Vc.switch_state_count fabric g);
  Engine.after eng (Engine.sec crash_at) (fun () ->
      Netsim.set_node_up net g false);
  Engine.after eng (Engine.sec (crash_at +. crash_for)) (fun () ->
      Netsim.set_node_up net g true);
  Engine.run ~until:(Engine.sec 60.0) eng;
  (Vc.is_open call && not !cleared, !delivered, !state_before)

let run () =
  Util.banner "E2" "Fate-sharing: state survives where the conversation lives"
    "endpoint state survives total gateway state loss; network state does not";
  let ip_ok, retransmits = run_ip () in
  let vc_ok, vc_delivered, vc_state = run_vc () in
  Util.table
    [ "architecture"; "state in transit node"; "gateway crash outcome"; "conversation" ]
    [
      [
        "datagram (TCP/IP)";
        "0 bytes (routing only)";
        Printf.sprintf "%d segs retransmitted" retransmits;
        (if ip_ok then "COMPLETED, intact, never reset" else "FAILED");
      ];
      [
        "virtual circuit";
        Printf.sprintf "%d circuit entries" vc_state;
        Printf.sprintf "%d bytes had arrived" vc_delivered;
        (if vc_ok then "survived (?)" else "CALL DESTROYED");
      ];
    ];
  Util.note
    "the gateway that crashed carried %d TCP conversations' state: zero — \
     that is fate-sharing"
    0
