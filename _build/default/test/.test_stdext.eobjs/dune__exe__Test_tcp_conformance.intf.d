test/test_tcp_conformance.mli:
