lib/ip/accounting.mli: Format Packet
