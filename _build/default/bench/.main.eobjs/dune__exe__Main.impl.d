bench/main.ml: Abl Array E01 E02 E03 E04 E05 E06 E07 E08 E09 E10 E11 E12 List Printf String Sys
