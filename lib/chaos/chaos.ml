(* The survivability gauntlet (Clark goal 1): deterministic fault
   injection over the netsim primitives.

   A [Schedule.t] is pure data (seeded, digestable); [inject] arms one
   engine timer per entry; [apply] translates a fault into netsim
   carrier/power changes, delegating crash *semantics* — what dies with
   a gateway beyond its reachability — to the environment's hooks, so
   the layer that owns soft state (Internet/routing) decides what a
   crash destroys without this library depending on it. *)

module Fault = Fault
module Schedule = Schedule
module Observer = Observer

type env = {
  env_net : Netsim.t;
  env_crash : Netsim.node_id -> unit;
      (** Take the node down *and* destroy its soft state. *)
  env_restore : Netsim.node_id -> unit;  (** Power the node back on. *)
}

(* Bare environment: crash/restore toggle power only.  Soft-state-aware
   crashes come from [Internet.chaos_env], which layers the flushes on. *)
let env_of_netsim net =
  {
    env_net = net;
    env_crash = (fun n -> Netsim.set_node_up net n false);
    env_restore = (fun n -> Netsim.set_node_up net n true);
  }

let apply env = function
  | Fault.Link_set { link; up } -> Netsim.set_link_up env.env_net link up
  | Fault.Node_set { node; up } ->
      if up then env.env_restore node else env.env_crash node

let inject ?observer env schedule =
  let eng = Netsim.engine env.env_net in
  List.iter
    (fun { Schedule.at_us; fault } ->
      let fire () =
        apply env fault;
        match observer with
        | Some o -> Observer.note_fault o fault
        | None -> ()
      in
      if at_us <= Engine.now eng then fire ()
      else Engine.schedule eng ~at:at_us fire)
    schedule
