(** The observability subsystem: flight recorder, metrics registry, pcap
    export (DESIGN.md §observability).

    This entry module is what instrumented code touches:

    {[
      if Trace.want Trace.Cls.ip then
        Trace.emit (Trace.Event.Ip_drop { node; src; dst; reason })
    ]}

    With tracing disabled (the default), that costs one mask load and a
    branch — the overhead contract benchmarked by E15. *)

module Json = Json
module Event = Event
module Cls = Event.Cls
module Metrics = Metrics
module Pcap = Pcap
module Recorder = Recorder

type entry = Recorder.entry = { t_us : int; seq : int; event : Event.t }

let enable = Recorder.enable
let disable = Recorder.disable
let enabled = Recorder.enabled
let want = Recorder.want
let mask = Recorder.mask
let set_mask = Recorder.set_mask
let set_now = Recorder.set_now
let emit = Recorder.emit
let clear = Recorder.clear
let capacity = Recorder.capacity
let length = Recorder.length
let emitted = Recorder.emitted
let overwritten = Recorder.overwritten
let entries = Recorder.entries
let iter = Recorder.iter
let count = Recorder.count
let drops = Recorder.drops
let pp_entry = Recorder.pp_entry
let to_json = Recorder.to_json
