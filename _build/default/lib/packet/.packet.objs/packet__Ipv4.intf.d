lib/packet/ipv4.mli: Addr Format
