(** Per-flow resource accounting at a gateway (goal 7).

    The 1988 paper notes that accounting was a poor fit for a pure
    datagram network because the gateway must reconstruct flows from
    individual packets — and the cost of that reconstruction is why
    goal 7 was quietly dropped.  This module shows it could have been
    cheap.  Two engines sit behind one facade:

    - {!Exact} — the original unbounded [(flow, usage)] ledger.  Exact
      counts for every flow, O(flows) memory, allocating hot path.
      Right for small tests and differential baselines.
    - {!Sketch} — sublinear scale mode: a count-min sketch
      ({!Sketch.t}) estimates every flow's usage in fixed memory with
      one-sided error, and a space-saving tracker ({!Heavy_hitters.t})
      keeps exact-from-admission records for the current top-k flows.
      {!record_fast} is allocation-free, so accounting rides
      [forward_fast] instead of disqualifying it. *)

type flow = {
  src : Packet.Addr.t;
  dst : Packet.Addr.t;
  proto : Packet.Ipv4.Proto.t;
  src_port : int;  (** 0 when the flow is portless. *)
  dst_port : int;
  portless : bool;
      (** Ports unknowable: ICMP, unknown protocols, or a non-first
          fragment.  Kept in the flow identity so such traffic never
          aliases a genuine port-(0,0) flow. *)
}

type usage = { mutable packets : int; mutable bytes : int }
(** Mutable so exact-mode {!record} can bump a flow's tallies in
    place.  The query functions below always return fresh copies, never
    the live record. *)

type mode =
  | Exact
  | Sketch of { width : int; depth : int; top_k : int }
      (** [width] cells (power of two) × [depth] rows of count-min,
          plus a [top_k]-entry heavy-hitter tracker. *)

type snapshot = {
  snap_epoch : int;
  snap_packets : int;
  snap_bytes : int;
  snap_top : (flow * usage) list;  (** Top 100 by bytes, largest first. *)
}
(** A closed epoch's headline record, captured by {!rotate} before the
    engines reset: the heavy hitters of epoch [n] survive into epoch
    [n+1] for billing and post-mortems. *)

type t

val create : ?mode:mode -> ?history:int -> unit -> t
(** Default mode is [Exact] (the historical behavior).  [history]
    (default 4) bounds how many closed-epoch {!snapshot}s {!rotate}
    retains; 0 disables retention. *)

val mode : t -> mode

val record : t -> Packet.Ipv4.header -> payload:bytes -> wire_bytes:int -> unit
(** Attribute one datagram.  [payload] is the IP payload (for port
    extraction from first-fragment transport headers); [wire_bytes] is
    what the gateway actually carried, header included. *)

val record_fast : t -> Packet.Ipv4.header -> frame:bytes -> unit
(** Same attribution, straight off the received wire frame ([frame]
    includes the IP header; its length is the wire byte count).
    Allocation-free in sketch mode ([@@fastpath], checked by
    catenet-lint); exact mode takes the same ledger path as {!record}. *)

val rotate : t -> unit
(** Start a new accounting epoch: snapshot the closing epoch's top
    flows and totals into {!history}, reset all counters and tracked
    flows, increment {!epoch}.  Long sketch-mode runs rotate before the
    cardinality bitmap saturates. *)

val epoch : t -> int

val history : t -> snapshot list
(** Closed epochs, newest first, at most the [history] bound given to
    {!create}. *)

val flows : ?limit:int -> t -> (flow * usage) list
(** Largest byte counts first; [limit] bounds the result.  Exact mode
    reports the full ledger; sketch mode reports the tracked top-k,
    each usage refined to [min tracker-count, count-min estimate] (an
    overestimate of the truth, tighter than either source alone). *)

val lookup : t -> flow -> usage option
(** Exact mode: a copy of the ledger record.  Sketch mode: the
    count-min estimate (never an underestimate); [None] if the sketch
    has no evidence of the flow. *)

val total : t -> usage
(** Exact in both modes (running totals, not derived from the table). *)

val flow_count : t -> int
(** Exact mode: ledger size.  Sketch mode: linear-counting cardinality
    estimate of distinct flows this epoch. *)

val tracked_count : t -> int
(** Flows with an individually reportable record: ledger size in exact
    mode, live top-k entries in sketch mode. *)

val pp_flow : Format.formatter -> flow -> unit

val flow_to_string : flow -> string

val to_json : ?limit:int -> t -> Trace.Json.t
(** Mode, epoch, flow count, totals, the top [limit] (default 100)
    flows by bytes, and the retained per-epoch {!history} (each entry's
    top list also clipped to [limit]) — bounded output even at millions
    of flows; wired into [Internet.metrics] snapshots. *)

val metrics_items : t -> unit -> (string * Trace.Metrics.value) list
(** Pull-based summary source (flow count, totals, epoch, retained
    history depth) for [Trace.Metrics.register]. *)
