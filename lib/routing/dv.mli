(** Distance-vector interior routing (RIP-like).

    Each gateway periodically tells its neighbors its distance (in hops)
    to every known prefix; split horizon with poisoned reverse limits the
    classic counting problem, triggered updates and a carrier-poll of
    attached links speed convergence after failures.  This is the
    mechanism that delivers goal 1 (survivability): when a link or
    gateway dies, the mesh re-learns paths and established TCP
    connections continue — demonstrated in experiment E1. *)

type config = {
  period_us : int;  (** Full-update interval (default 5 s). *)
  timeout_us : int;  (** Route expires if unrefreshed (default 17.5 s). *)
  gc_us : int;  (** Poisoned route lingers before removal (default 10 s). *)
  carrier_poll_us : int;  (** Attached-link liveness poll (default 500 ms). *)
  port : int;  (** UDP port (default 520). *)
}

val default_config : config

type stats = {
  mutable updates_sent : int;
  mutable updates_received : int;
  mutable triggered_updates : int;
  mutable routes_expired : int;
      (** Routes poisoned because they went unrefreshed for [timeout_us]. *)
  mutable routes_carrier_poisoned : int;
      (** Routes poisoned because the carrier poll found their interface's
          link down — a distinct failure mode from expiry, counted once
          per route loss (poisoning is idempotent). *)
  mutable bad_messages : int;
}

type t

val create : ?config:config -> Udp.t -> t
(** Bind the protocol to a stack's UDP instance.  Connected prefixes are
    picked up from the stack's routing table at {!start}. *)

val add_neighbor : t -> Netsim.iface -> Packet.Addr.t -> unit
(** Declare an adjacent gateway reachable out of [iface] at the given
    address (point-to-point configuration, as in early NSFnet). *)

val start : t -> unit
(** Begin periodic advertisements.  Idempotent.  Connected prefixes are
    re-synced from the stack's table on every periodic tick, so
    interfaces configured after [start] are picked up (and poisoned if
    their route vanishes). *)

val reset : t -> unit
(** Crash simulation: clear the RIB — every learned, injected and seeded
    prefix.  Configuration (neighbors, timers, socket) and the stats
    ledger survive; the next periodic tick re-seeds connected prefixes
    and the protocol relearns the rest.  Fate-sharing: routing knowledge
    is soft state and dies with the gateway. *)

val stats : t -> stats

val life_transitions : (string * string * string) list
(** The RIB-entry lifecycle (Reachable/Poisoned) as [(state, event,
    state')] edges, machine-checked against the implementation by the
    catenet-lint [transitions] pass. *)

val rib_size : t -> int
(** Prefixes currently known (including poisoned ones). *)

val metric_of : t -> Packet.Addr.Prefix.t -> int option
(** Current metric for a prefix, 16 meaning unreachable. *)

val inject : t -> Packet.Addr.Prefix.t -> metric:int -> unit
(** Advertise an external route (learned from another protocol, e.g. at a
    border gateway) as if it were connected: it is announced to neighbors
    but never installed or expired by this instance.  Re-injecting updates
    the metric. *)

val withdraw : t -> Packet.Addr.Prefix.t -> unit
(** Stop advertising an injected route (poisons it first). *)

val routes : t -> (Packet.Addr.Prefix.t * int) list
(** Reachable prefixes this instance itself learned (connected + peers),
    excluding injected externals — the set a redistributor may export. *)
