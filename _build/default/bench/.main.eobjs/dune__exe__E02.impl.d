bench/e02.ml: Apps Bytes Catenet Engine Internet List Netsim Printf Tcp Util Vc
