(* E11 — Datagram multiplexing vs dedicated circuits under bursty load
   (Clark §3: "the entities which are being multiplexed use the network
   with very different patterns ... a datagram network was a reasonable
   match to the bursty nature of computer traffic").

   Eight bursty sources share a trunk toward one sink.  In the datagram
   realization they statistically multiplex one 1.536 Mb/s link; in the
   circuit realization each holds a dedicated 192 kb/s channel (the same
   aggregate capacity, reserved TDM-style).  Burst completion times tell
   the story: idle circuit capacity cannot be borrowed. *)

open Catenet

let sources = 8
let burst_bytes = 30_000
let bursts_per_source = 6
let mean_gap_s = 2.0
let packet = 1_000

type outcome = { completion : Stdext.Stats.Samples.t; delivered : int }

(* Each burst is [burst_bytes] of UDP packets injected back to back; the
   sink records the time from burst start to its last packet. *)
let run_shape ~shared =
  let t = Internet.create ~routing:Internet.Static ~seed:77 () in
  let g1 = Internet.add_gateway t "g1" in
  let g2 = Internet.add_gateway t "g2" in
  (* The trunk(s). *)
  if shared then
    ignore
      (Internet.connect t
         (Netsim.profile "shared-trunk" ~bandwidth_bps:1_536_000
            ~delay_us:10_000 ~queue_capacity:256)
         g1.Internet.g_node g2.Internet.g_node)
  else
    for _ = 1 to sources do
      ignore
        (Internet.connect t
           (Netsim.profile "circuit" ~bandwidth_bps:(1_536_000 / sources)
              ~delay_us:10_000 ~queue_capacity:256)
           g1.Internet.g_node g2.Internet.g_node)
    done;
  let sink_host = Internet.add_host t "sink" in
  ignore
    (Internet.connect t Netsim.Profiles.fast_lan g2.Internet.g_node
       sink_host.Internet.h_node);
  let senders =
    List.init sources (fun i ->
        let h = Internet.add_host t (Printf.sprintf "src%d" i) in
        ignore
          (Internet.connect t Netsim.Profiles.fast_lan h.Internet.h_node
             g1.Internet.g_node);
        h)
  in
  Internet.start t;
  (* In the dedicated-circuit shape, pin each source to its own trunk by
     routing: source i's traffic must use trunk i.  We emulate reservation
     by giving each source a distinct path metric... simplest faithful
     approach: per-source next-hop routes at g1 over distinct interfaces. *)
  if not shared then begin
    let table = Ip.Stack.table g1.Internet.g_ip in
    List.iteri
      (fun i (src : Internet.host) ->
        (* Traffic FROM source i is recognized by source address and must
           exit interface i.  Our table routes by destination only, so we
           instead give each source a dedicated *destination* alias on the
           sink: one /32 per source routed over trunk i. *)
        ignore src;
        let alias = Packet.Addr.v 10 200 0 (i + 1) in
        Ip.Route_table.add table
          {
            Ip.Route_table.prefix = Packet.Addr.Prefix.host alias;
            iface = i (* trunk i's interface on g1 *);
            next_hop = None;
            metric = 1;
          })
      senders;
    (* g2 must deliver the aliases to the sink; add the alias addresses to
       the sink's interface. *)
    List.iteri
      (fun i _ ->
        let alias = Packet.Addr.v 10 200 0 (i + 1) in
        Ip.Stack.configure_iface sink_host.Internet.h_ip 0 ~addr:alias
          ~prefix_len:32;
        Ip.Route_table.add
          (Ip.Stack.table g2.Internet.g_ip)
          {
            Ip.Route_table.prefix = Packet.Addr.Prefix.host alias;
            iface = sources (* g2's LAN interface to the sink *);
            next_hop = None;
            metric = 1;
          })
      senders
  end;
  let eng = Internet.engine t in
  let completion = Stdext.Stats.Samples.create () in
  let delivered = ref 0 in
  (* Sink: one socket; packets carry (source, burst, index, count, start_ts). *)
  ignore
    (Udp.bind sink_host.Internet.h_udp ~port:9000
       ~recv:(fun ~src:_ ~src_port:_ payload ->
         if Bytes.length payload >= 20 then begin
           incr delivered;
           let idx = Int32.to_int (Bytes.get_int32_be payload 8) in
           let count = Int32.to_int (Bytes.get_int32_be payload 12) in
           let ts = Int32.to_int (Bytes.get_int32_be payload 16) land 0xFFFFFFFF in
           if idx = count - 1 then
             Stdext.Stats.Samples.add completion
               (Engine.to_sec (Engine.now eng - ts))
         end)
       ());
  let rng = Stdext.Rng.create 123 in
  List.iteri
    (fun i (src : Internet.host) ->
      let sock =
        Udp.bind src.Internet.h_udp ~recv:(fun ~src:_ ~src_port:_ _ -> ()) ()
      in
      let dst =
        if shared then Internet.addr_of t sink_host.Internet.h_node
        else Packet.Addr.v 10 200 0 (i + 1)
      in
      let rec burst b at =
        if b < bursts_per_source then
          Engine.schedule eng ~at (fun () ->
              let count = (burst_bytes + packet - 1) / packet in
              let start = Engine.now eng in
              for k = 0 to count - 1 do
                let pkt = Bytes.make packet '\000' in
                Bytes.set_int32_be pkt 0 (Int32.of_int i);
                Bytes.set_int32_be pkt 4 (Int32.of_int b);
                Bytes.set_int32_be pkt 8 (Int32.of_int k);
                Bytes.set_int32_be pkt 12 (Int32.of_int count);
                Bytes.set_int32_be pkt 16 (Int32.of_int (start land 0xFFFFFFFF));
                (* Slight pacing onto the LAN so the burst is a train, not
                   one instant. *)
                Engine.after eng (k * 200) (fun () ->
                    ignore (Udp.sendto sock ~dst ~dst_port:9000 pkt))
              done;
              burst (b + 1)
                (Engine.now eng
                + Engine.sec (Stdext.Rng.exponential rng mean_gap_s)))
      in
      burst 0 (Engine.sec (Stdext.Rng.exponential rng mean_gap_s)))
    senders;
  Internet.run_for t 120.0;
  { completion; delivered = !delivered }

let run () =
  Util.banner "E11" "Bursty sources: statistical multiplexing vs circuits"
    "datagram sharing matches bursty computer traffic; reserved circuits \
     waste idle capacity";
  let shared = run_shape ~shared:true in
  let circuits = run_shape ~shared:false in
  let row name (o : outcome) =
    [
      name;
      string_of_int (Stdext.Stats.Samples.count o.completion);
      string_of_int o.delivered;
      Util.fms (Stdext.Stats.Samples.median o.completion);
      Util.fms (Stdext.Stats.Samples.percentile o.completion 95.0);
      Util.fms (Stdext.Stats.Samples.max o.completion);
    ]
  in
  Util.table
    [
      "realization"; "bursts done"; "pkts delivered"; "median ms"; "p95 ms";
      "max ms";
    ]
    [
      row "one shared 1536 kb/s trunk" shared;
      row "8 dedicated 192 kb/s circuits" circuits;
    ];
  Util.note
    "same aggregate capacity; a burst on an idle shared trunk runs at the \
     full 1.5 Mb/s, on its private circuit at 192 kb/s — the ~8x gap in \
     completion time is the whole §3 argument against reservation for \
     computer traffic"
