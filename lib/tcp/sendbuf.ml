type t = {
  limit : int;
  mutable data : bytes;
  mutable start : int; (* index of first live byte in [data] *)
  mutable len : int;
  mutable base_off : int; (* absolute stream offset of [start] *)
}

let create ?(limit = 262_144) () =
  { limit; data = Bytes.create 4096; start = 0; len = 0; base_off = 0 }

let base t = t.base_off [@@fastpath]
let length t = t.len [@@fastpath]
let tail t = t.base_off + t.len [@@fastpath]
let space t = t.limit - t.len [@@fastpath]

let ensure t extra =
  let need = t.len + extra in
  if t.start + need > Bytes.length t.data then begin
    let cap = max (2 * Bytes.length t.data) need in
    let nd = Bytes.create cap in
    Bytes.blit t.data t.start nd 0 t.len;
    t.data <- nd;
    t.start <- 0
  end

let append t b =
  let n = min (Bytes.length b) (space t) in
  if n > 0 then begin
    ensure t n;
    Bytes.blit b 0 t.data (t.start + t.len) n;
    t.len <- t.len + n
  end;
  n

let get t ~off ~len =
  if off < t.base_off || off + len > tail t || len < 0 then
    invalid_arg "Sendbuf.get: range out of buffer";
  Bytes.sub t.data (t.start + off - t.base_off) len

let blit t ~off ~len dst ~pos =
  if off < t.base_off || off + len > tail t || len < 0 then
    invalid_arg "Sendbuf.blit: range out of buffer";
  Bytes.blit t.data (t.start + off - t.base_off) dst pos len
[@@fastpath]

let drop_until t off =
  if off > t.base_off then begin
    let n = min (off - t.base_off) t.len in
    t.start <- t.start + n;
    t.len <- t.len - n;
    t.base_off <- t.base_off + n;
    (* Compact when the dead prefix dominates. *)
    if t.start > Bytes.length t.data / 2 && t.start > 4096 then begin
      Bytes.blit t.data t.start t.data 0 t.len;
      t.start <- 0
    end
  end
[@@fastpath]
