lib/apps/bulk.mli: Packet Tcp
