(** The observability subsystem: flight recorder, metrics registry, pcap
    export (DESIGN.md §observability).

    This entry module is what instrumented code touches:

    {[
      if Trace.want Trace.Cls.ip then
        Trace.emit (Trace.Event.Ip_drop { node; src; dst; reason })
    ]}

    With tracing disabled (the default), that costs one mask load and a
    branch — the overhead contract benchmarked by E15 and enforced
    statically by catenet-lint's fastpath rule. *)

module Json = Json
module Event = Event
module Cls = Event.Cls
module Metrics = Metrics
module Pcap = Pcap
module Recorder = Recorder

type entry = Recorder.entry = { t_us : int; seq : int; event : Event.t }

val enable : ?capacity:int -> ?mask:int -> unit -> unit
val disable : unit -> unit

val enabled : unit -> bool

val want : int -> bool
(** [want cls] is the single-flag check instrumented code performs
    before constructing an event of class [cls]. *)

val mask : unit -> int
val set_mask : int -> unit
val set_now : (unit -> int) -> unit
val emit : Event.t -> unit
val clear : unit -> unit
val capacity : unit -> int
val length : unit -> int
val emitted : unit -> int
val overwritten : unit -> int
val entries : unit -> entry list
val iter : (entry -> unit) -> unit
val count : (Event.t -> bool) -> int
val drops : ?reason:Event.drop_reason -> unit -> entry list
val pp_entry : Format.formatter -> entry -> unit
val to_json : unit -> Json.t
