examples/survivable_transfer.mli:
