examples/internetwork_tour.mli:
