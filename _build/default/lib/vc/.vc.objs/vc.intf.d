lib/vc/vc.mli: Cell Netsim
