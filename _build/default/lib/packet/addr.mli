(** IPv4 addresses and prefixes. *)

type t
(** An IPv4 address.  Total order and equality follow numeric value. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_string : string -> t
(** Dotted quad, e.g. ["10.1.2.3"].  @raise Invalid_argument on syntax
    errors or out-of-range octets. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val v : int -> int -> int -> int -> t
(** [v 10 0 0 1] is [10.0.0.1]; octets must be in [\[0,255\]]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val any : t
(** [0.0.0.0], the wildcard/unspecified address. *)

val succ : t -> t
(** Numerically next address (wraps at 255.255.255.255). *)

(** CIDR prefixes for routing tables. *)
module Prefix : sig
  type addr := t
  type t

  val make : addr -> int -> t
  (** [make a len] is the prefix of the leading [len] bits of [a]; host
      bits are cleared.  [len] must be in [\[0,32\]]. *)

  val of_string : string -> t
  (** ["10.1.0.0/16"] syntax.  @raise Invalid_argument on bad input. *)

  val network : t -> addr
  val length : t -> int
  val mem : addr -> t -> bool
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
  val compare : t -> t -> int
  val equal : t -> t -> bool

  val default : t
  (** [0.0.0.0/0], matches every address. *)

  val host : addr -> t
  (** The /32 containing exactly one address. *)
end
