lib/core/internet.mli: Engine Ip Netsim Packet Routing Stdext Tcp Udp
