#!/bin/sh
# Repo check: format (when ocamlformat is available), build, tests, bench
# smoke, the survivability gauntlet smoke, and the gates over the
# committed BENCH_trace.json (DESIGN.md §observability),
# BENCH_topology.json (DESIGN.md §scale engine),
# BENCH_survivability.json (DESIGN.md §survivability gauntlet),
# BENCH_accounting.json (DESIGN.md §accounting-at-scale),
# BENCH_names.json (DESIGN.md §name/service layer) and
# BENCH_tcp_adversary.json (DESIGN.md §transport hardening).
# Usage: bin/check.sh  (or `make check`)
set -eu
cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not installed or no .ocamlformat)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== catenet-lint"
make --no-print-directory lint

echo "== bench smoke"
dune exec bench/main.exe -- --smoke --out=_smoke >/dev/null

# Replay determinism (the E16 contract at PR time, backed by the
# catenet-lint determinism pass): the same seed must produce the same
# fault schedule and the same packet-level run digest in two separate
# processes.  Any ambient input that slipped past the lint — wall
# clock, hash-table iteration order, an unseeded RNG — shows up here
# as a digest mismatch.
echo "== replay determinism (E16 smoke x2)"
rm -rf _replay1 _replay2
dune exec bench/main.exe -- --smoke --only E16 --out=_replay1 >/dev/null
dune exec bench/main.exe -- --smoke --only E16 --out=_replay2 >/dev/null
digests() {
  grep -o '"schedule_digest": "[^"]*"' "$1/BENCH_survivability.json"
  grep -o '"run_digest": "[^"]*"' "$1/BENCH_survivability.json"
}
d1=$(digests _replay1)
d2=$(digests _replay2)
[ -n "$d1" ] || { echo "FAIL: no digests in _replay1/BENCH_survivability.json"; exit 1; }
if [ "$d1" = "$d2" ]; then
  echo "  digests identical across processes"
else
  echo "FAIL: replay digests differ between identical runs"
  echo "  run 1: $d1"
  echo "  run 2: $d2"
  exit 1
fi
rm -rf _replay1 _replay2

# The overhead contract: merely carrying the (disabled) tracing
# instrumentation must not slow the E13/E14 fast paths by more than the
# budget.  E15 measures this against the same harness run and records it
# in BENCH_trace.json; gate on the committed artifact so a regression
# cannot be committed silently.  Smoke-run numbers are too noisy to gate
# on, so this checks the full-run artifact at the repo root.
echo "== observability overhead gate (BENCH_trace.json)"
if [ -f BENCH_trace.json ]; then
  awk '
    function num(line,   v) { sub(/.*: */, "", line); sub(/,.*/, "", line); return line + 0 }
    /"regression_budget_pct"/ { budget = num($0) }
    /"e13_regression_pct"/ { if ($0 !~ /null/) { e13 = num($0); have13 = 1 } }
    /"e14_regression_pct"/ { if ($0 !~ /null/) { e14 = num($0); have14 = 1 } }
    END {
      if (budget == 0) budget = 2.0
      bad = 0
      if (have13 && e13 > budget) { printf "FAIL: e13 fast path regressed %.1f%% (> %.1f%%) with tracing disabled\n", e13, budget; bad = 1 }
      if (have14 && e14 > budget) { printf "FAIL: e14 fast path regressed %.1f%% (> %.1f%%) with tracing disabled\n", e14, budget; bad = 1 }
      if (!bad) {
        if (have13) printf "  e13 regression %.1f%% within %.1f%% budget\n", e13, budget
        if (have14) printf "  e14 regression %.1f%% within %.1f%% budget\n", e14, budget
      }
      exit bad
    }' BENCH_trace.json
else
  echo "  skipped (no BENCH_trace.json; run: dune exec bench/main.exe -- --only E13,E14,E15)"
fi

# The scale contract (E17, DESIGN.md §scale engine): a 10^4-host region
# topology must hold its fast-path throughput and allocation rate within
# 20% of E13's 8-node chain, measured in the same process so the ratio
# is machine-independent.  As above, gate on the committed full-run
# artifact, not smoke numbers.
echo "== topology scale gate (BENCH_topology.json)"
if [ -f BENCH_topology.json ]; then
  awk '
    function num(line,   v) { sub(/.*: */, "", line); sub(/,.*/, "", line); return line + 0 }
    /"dps_vs_e13_pct"/ { dps = num($0); have_d = 1 }
    /"words_vs_e13_pct"/ { words = num($0); have_w = 1 }
    /"dps_floor_pct"/ { floor = num($0) }
    /"words_ceiling_pct"/ { ceiling = num($0) }
    END {
      if (floor == 0) floor = 80.0
      if (ceiling == 0) ceiling = 120.0
      bad = 0
      if (!have_d || dps < floor) { printf "FAIL: topology throughput %.1f%% of E13 (floor %.1f%%)\n", dps, floor; bad = 1 }
      if (!have_w || words > ceiling) { printf "FAIL: topology words/packet %.1f%% of E13 (ceiling %.1f%%)\n", words, ceiling; bad = 1 }
      if (!bad) printf "  10^4-host throughput %.1f%% of E13 (floor %.1f%%), words/packet %.1f%% (ceiling %.1f%%)\n", dps, floor, words, ceiling
      exit bad
    }' BENCH_topology.json
else
  echo "  skipped (no BENCH_topology.json; run: dune exec bench/main.exe -- --only E17)"
fi

echo "== gauntlet smoke"
make --no-print-directory gauntlet-smoke >/dev/null

# The survivability contract (Clark goal 1): every TCP conversation in
# the E16 gauntlet survives flaps, a gateway crash with soft-state
# amnesia, a partition and a seeded flap storm; routing re-converges
# after every fault within budget; and the whole run replays bit for
# bit from its seed.  As with the E15 gate, smoke numbers are not the
# contract — gate on the committed full-run artifact.
echo "== survivability gate (BENCH_survivability.json)"
if [ -f BENCH_survivability.json ]; then
  awk '
    function num(line,   v) { sub(/.*: */, "", line); sub(/,.*/, "", line); return line + 0 }
    /"survival_pct"/ && $0 !~ /required/ { survival = num($0); have_s = 1 }
    /"required_survival_pct"/ { required = num($0) }
    /"worst_reconvergence_s"/ { if ($0 ~ /null/) never = 1; else { worst = num($0); have_w = 1 } }
    /"reconvergence_budget_s"/ { budget = num($0) }
    /"replay_ok"/ { replay_ok = ($0 ~ /true/) }
    END {
      if (required == 0) required = 100.0
      if (budget == 0) budget = 12.0
      bad = 0
      if (!have_s || survival < required) { printf "FAIL: TCP survival %.1f%% below the required %.1f%%\n", survival, required; bad = 1 }
      if (never) { printf "FAIL: some fault never re-converged\n"; bad = 1 }
      else if (!have_w || worst > budget) { printf "FAIL: worst reconvergence %.2fs exceeds the %.1fs budget\n", worst, budget; bad = 1 }
      if (!replay_ok) { printf "FAIL: gauntlet replay diverged (same seed, different run)\n"; bad = 1 }
      if (!bad) printf "  survival %.1f%%, worst reconvergence %.2fs (budget %.1fs), replay bit-for-bit\n", survival, worst, budget
      exit bad
    }' BENCH_survivability.json
else
  echo "  skipped (no BENCH_survivability.json; run: dune exec bench/main.exe -- --only E16)"
fi

# The accounting contract (E20, DESIGN.md §accounting-at-scale): the
# sketch engine must hold fast-path throughput at >=90% of
# accounting-off, estimate the true top-100 flows' bytes within 1%, and
# stay within 10% of the exact ledger's resident memory at >=10^6
# distinct flows.  As above, gate on the committed full-run artifact.
echo "== accounting gate (BENCH_accounting.json)"
if [ -f BENCH_accounting.json ]; then
  awk '
    function num(line,   v) { sub(/.*: */, "", line); sub(/,.*/, "", line); return line + 0 }
    /"dps_vs_off_pct"/ { dps = num($0); have_d = 1 }
    /"top100_byte_error_pct"/ { err = num($0); have_e = 1 }
    /"mem_vs_exact_pct"/ { mem = num($0); have_m = 1 }
    /"distinct_flows"/ { flows = num($0) }
    /"dps_floor_pct"/ { floor = num($0) }
    /"error_ceiling_pct"/ { err_ceiling = num($0) }
    /"mem_ceiling_pct"/ { mem_ceiling = num($0) }
    END {
      if (floor == 0) floor = 90.0
      if (err_ceiling == 0) err_ceiling = 1.0
      if (mem_ceiling == 0) mem_ceiling = 10.0
      bad = 0
      if (!have_d || dps < floor) { printf "FAIL: sketch throughput %.1f%% of accounting-off (floor %.1f%%)\n", dps, floor; bad = 1 }
      if (!have_e || err > err_ceiling) { printf "FAIL: top-100 byte error %.3f%% exceeds the %.1f%% ceiling\n", err, err_ceiling; bad = 1 }
      if (!have_m || mem > mem_ceiling) { printf "FAIL: sketch memory %.1f%% of exact (ceiling %.1f%%)\n", mem, mem_ceiling; bad = 1 }
      if (flows < 1000000) { printf "FAIL: artifact covers only %d distinct flows (need >= 10^6)\n", flows; bad = 1 }
      if (!bad) printf "  sketch %.1f%% of off (floor %.1f%%), top-100 error %.3f%% (ceiling %.1f%%), memory %.1f%% of exact (ceiling %.1f%%) at %d flows\n", dps, floor, err, err_ceiling, mem, mem_ceiling, flows
      exit bad
    }' BENCH_accounting.json
else
  echo "  skipped (no BENCH_accounting.json; run: dune exec bench/main.exe -- --only E20)"
fi

# The name/service contract (E21, DESIGN.md §name/service layer): the
# resolver caches must absorb >=95% of the open-loop lookup storm at
# steady state, p99 resolve latency must stay inside its budget, anycast
# failover must beat the E16 reconvergence budget, and no session may be
# lost outside the declared crash/amnesia windows.  As above, gate on
# the committed full-run artifact, not smoke numbers.
echo "== name/service gate (BENCH_names.json)"
if [ -f BENCH_names.json ]; then
  awk '
    function num(line,   v) { sub(/.*: */, "", line); sub(/,.*/, "", line); return line + 0 }
    /"clients"/ { clients = num($0) }
    /"steady_hit_pct"/ { hit = num($0); have_h = 1 }
    /"hit_floor_pct"/ { floor = num($0) }
    /"p99_resolve_ms"/ { p99 = num($0); have_p = 1 }
    /"p99_budget_ms"/ { p99_budget = num($0) }
    /"failover_s"/ { fo = num($0); have_f = 1 }
    /"failover_budget_s"/ { fo_budget = num($0) }
    /"lost_outside_crash"/ { lost = num($0); have_l = 1 }
    END {
      if (floor == 0) floor = 95.0
      if (p99_budget == 0) p99_budget = 20.0
      if (fo_budget == 0) fo_budget = 12.0
      bad = 0
      if (clients < 100000) { printf "FAIL: artifact covers only %d clients (need >= 10^5)\n", clients; bad = 1 }
      if (!have_h || hit < floor) { printf "FAIL: steady-state cache hit %.2f%% below the %.1f%% floor\n", hit, floor; bad = 1 }
      if (!have_p || p99 > p99_budget) { printf "FAIL: p99 resolve latency %.2fms exceeds the %.1fms budget\n", p99, p99_budget; bad = 1 }
      if (!have_f || fo < 0 || fo > fo_budget) { printf "FAIL: anycast failover %.2fs outside the %.1fs budget\n", fo, fo_budget; bad = 1 }
      if (!have_l || lost != 0) { printf "FAIL: %d sessions lost outside the crash windows\n", lost; bad = 1 }
      if (!bad) printf "  %d clients: cache hit %.2f%% (floor %.1f%%), p99 resolve %.2fms (budget %.1fms), failover %.2fs (budget %.1fs), zero loss outside windows\n", clients, hit, floor, p99, p99_budget, fo, fo_budget
      exit bad
    }' BENCH_names.json
else
  echo "  skipped (no BENCH_names.json; run: dune exec bench/main.exe -- --only E21)"
fi

# The hardening contract (E18, DESIGN.md §transport hardening): >=10^4
# forged in-window segments must kill zero connections while goodput
# holds at >=90% of the unattacked run with the fast path byte-identical
# to the slow path, and window scaling must carry the LFN window past
# 64 KiB for a real speedup.  As above, gate on the committed full-run
# artifact, not smoke numbers.
echo "== adversary gate (BENCH_tcp_adversary.json)"
if [ -f BENCH_tcp_adversary.json ]; then
  awk '
    function num(line,   v) { sub(/.*: */, "", line); sub(/,.*/, "", line); return line + 0 }
    /"hostile_segments"/ { hostile = num($0) }
    /"hostile_floor"/ { hostile_floor = num($0) }
    /"kills"/ { kills = num($0); have_k = 1 }
    /"goodput_attacked_pct"/ { goodput = num($0); have_g = 1 }
    /"goodput_floor_pct"/ { goodput_floor = num($0) }
    /"fast_slow_identical"/ { agree = num($0); have_a = 1 }
    /"wscale_shift"/ { shift = num($0); have_w = 1 }
    /"peak_window"/ && $0 !~ /unscaled/ { peak = num($0) }
    /"speedup"/ { speedup = num($0); have_s = 1 }
    END {
      if (hostile_floor == 0) hostile_floor = 10000
      if (goodput_floor == 0) goodput_floor = 90.0
      bad = 0
      if (hostile < hostile_floor) { printf "FAIL: only %d hostile segments injected (need >= %d)\n", hostile, hostile_floor; bad = 1 }
      if (!have_k || kills != 0) { printf "FAIL: %d connections killed by forged segments\n", kills; bad = 1 }
      if (!have_g || goodput < goodput_floor) { printf "FAIL: goodput under attack %.1f%% below the %.1f%% floor\n", goodput, goodput_floor; bad = 1 }
      if (!have_a || agree != 1) { printf "FAIL: fast path diverged from slow path under attack\n"; bad = 1 }
      if (!have_w || shift < 2) { printf "FAIL: LFN wscale shift %d (need >= 2)\n", shift; bad = 1 }
      if (peak <= 65535) { printf "FAIL: LFN peak window %d never exceeded 64 KiB\n", peak; bad = 1 }
      if (!have_s || speedup <= 1.0) { printf "FAIL: window scaling speedup %.2fx (need > 1)\n", speedup; bad = 1 }
      if (!bad) printf "  %d forgeries, %d kills, goodput %.1f%% (floor %.1f%%), fast=slow, wscale shift %d, peak window %d, LFN speedup %.2fx\n", hostile, kills, goodput, goodput_floor, shift, peak, speedup
      exit bad
    }' BENCH_tcp_adversary.json
else
  echo "  skipped (no BENCH_tcp_adversary.json; run: dune exec bench/main.exe -- --only E18)"
fi

echo "check: OK"
