lib/stdext/stats.mli:
