(* The name/service layer (E21): fixed-width wire format, LRU+TTL
   resolver soft state, hierarchical delegation over the E17 topology,
   and anycast failover driven by health probes.  The architectural
   claims under test: resolver caches are pure soft state (a crash
   loses nothing but time), zones are hard state, and one service name
   can move between replicas without clients learning anything new. *)

open Catenet
module W = Names.Wire
module Cache = Names.Cache

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let sec = 1_000_000

(* -- wire format ----------------------------------------------------- *)

let arb_msg =
  QCheck.make
    ~print:(fun t -> Format.asprintf "%a" W.pp t)
    QCheck.Gen.(
      let lbl = int_bound 0xffff in
      let u32 = map (fun i -> i land 0xffffffff) (int_bound max_int) in
      map
        (fun ((id, response, rd, aa), (rcode, qtype), (l0, l1, l2), ttl, ans) ->
          { W.id; response; rd; aa; rcode; qtype; l0; l1; l2;
            ttl_s = ttl; answer = ans })
        (tup5
           (tup4 lbl bool bool bool)
           (tup2 (int_bound 4) (int_bound 2))
           (tup3 lbl lbl lbl) u32 u32))

let wire_roundtrip =
  QCheck.Test.make ~count:500 ~name:"encode/decode roundtrip" arb_msg
    (fun t ->
      match W.decode (W.encode t) with Ok t' -> t = t' | Error _ -> false)

let test_wire_rejects () =
  let q = W.query ~id:7 ~rd:true ~qtype:W.qtype_host ~l0:1 ~l1:2 ~l2:0 in
  let b = W.encode q in
  (match W.decode (Bytes.sub b 0 (W.header_size - 1)) with
  | Error `Truncated -> ()
  | Ok _ | Error _ -> Alcotest.fail "short buffer accepted");
  let bad off v msg =
    let b' = Bytes.copy b in
    Bytes.set_uint8 b' off v;
    match W.decode b' with
    | Error (`Bad_header _) -> ()
    | Ok _ | Error `Truncated -> Alcotest.fail msg
  in
  bad 3 0xf0 "unknown flag bits accepted";
  bad 4 5 "rcode 5 accepted";
  bad 5 3 "qtype 3 accepted";
  (* out-of-range fields refuse to encode at all *)
  Alcotest.check_raises "oversized label refuses to encode"
    (Invalid_argument "Names_wire.encode: label out of range") (fun () ->
      ignore (W.encode { q with W.l0 = 0x10000 }))

let test_wire_layout_covers_header () =
  let covered =
    List.fold_left (fun a (_, _, w) -> a + w) 0 W.layout
  in
  check Alcotest.int "layout is gapless over the header" W.header_size
    covered

(* -- cache ----------------------------------------------------------- *)

let test_cache_ttl () =
  let c = Cache.create ~capacity:8 in
  let k = Cache.key ~qtype:W.qtype_host ~l0:3 ~l1:9 ~l2:0 in
  Cache.insert c ~now_us:0 ~key:k ~rcode:W.rcode_ok ~answer:42 ~ttl_s:2;
  (match Cache.find c ~now_us:(sec + (sec / 2)) k with
  | Some (rc, ans, ttl) ->
      check Alcotest.int "rcode" W.rcode_ok rc;
      check Alcotest.int "answer" 42 ans;
      check Alcotest.int "remaining ttl rounds up, never 0" 1 ttl
  | None -> Alcotest.fail "fresh entry missed");
  check Alcotest.bool "expired at exactly ttl" true
    (Cache.find c ~now_us:(2 * sec) k = None);
  check Alcotest.int "expiry counted" 1 (Cache.stats c).Cache.expired;
  check Alcotest.int "expired entry removed" 0 (Cache.len c);
  (* ttl <= 0 records are not cached at all *)
  Cache.insert c ~now_us:0 ~key:k ~rcode:W.rcode_ok ~answer:1 ~ttl_s:0;
  check Alcotest.int "ttl 0 not cached" 0 (Cache.len c)

let test_cache_negative () =
  let c = Cache.create ~capacity:8 in
  let k = Cache.key ~qtype:W.qtype_host ~l0:1 ~l1:4000 ~l2:0 in
  Cache.insert c ~now_us:0 ~key:k ~rcode:W.rcode_nxname ~answer:0 ~ttl_s:1;
  (match Cache.find c ~now_us:(sec / 2) k with
  | Some (rc, _, _) ->
      check Alcotest.int "negative answer served" W.rcode_nxname rc
  | None -> Alcotest.fail "negative entry missed");
  check Alcotest.bool "negative entry expires" true
    (Cache.find c ~now_us:(sec + 1) k = None)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  let key i = Cache.key ~qtype:W.qtype_host ~l0:i ~l1:0 ~l2:0 in
  let put i =
    Cache.insert c ~now_us:0 ~key:(key i) ~rcode:W.rcode_ok ~answer:i
      ~ttl_s:60
  in
  put 1;
  put 2;
  ignore (Cache.find c ~now_us:0 (key 1));
  (* 2 is now least recently used *)
  put 3;
  check Alcotest.bool "touched entry survives" true
    (Cache.find c ~now_us:0 (key 1) <> None);
  check Alcotest.bool "lru entry evicted" true
    (Cache.find c ~now_us:0 (key 2) = None);
  check Alcotest.int "one eviction" 1 (Cache.stats c).Cache.evictions;
  Cache.flush c;
  check Alcotest.int "flush empties" 0 (Cache.len c);
  check Alcotest.int "flush counted" 1 (Cache.stats c).Cache.flushes

(* -- resolution over the hierarchy ----------------------------------- *)

(* A tiny E17 catenet with the full E21 control plane: root authority
   and service directory on a full-stack host in region 0, a region
   authority and a resolver on every region gateway. *)
type world = {
  topo : Topo.t;
  eng : Engine.t;
  dir : Names.Service.t;
  resolvers : Names.Resolver.t array;
  root_server : Names.Server.t;
}

let build_world ?(regions = 3) ?(hosts = 8) () =
  let topo =
    Topo.build
      { Topo.default_config with Topo.seed = 21; core = 2; chords = 0;
        regions; hosts_per_region = hosts }
  in
  let eng = Topo.engine topo in
  let root_stack, root_addr = Topo.add_full_host topo ~region:0 in
  let root_udp = Udp.create root_stack in
  let dir =
    Names.Service.create ~udp:root_udp ~eng ~src:root_addr
      ~service_port:7000 ()
  in
  Names.Service.set_distance dir (Topo.region_hops topo);
  let root_server =
    Names.Server.create ~udp:root_udp ~src:root_addr
      ~authority:
        (Names.Server.root_authority ~regions
           ~region_server_bits:(fun r ->
             W.addr_bits (Topo.region_gw_addr r))
           ~deleg_ttl_s:30
           ~svc:(fun ~src q -> Names.Service.answer_for dir ~src q))
      ()
  in
  let resolvers =
    Array.init regions (fun r ->
        let gw = Topo.region_gw topo r in
        let udp = Udp.create gw in
        ignore
          (Names.Server.create ~udp ~src:(Topo.region_gw_addr r)
             ~authority:
               (Names.Server.region_authority ~region:r ~hosts
                  ~host_addr_bits:(fun i ->
                    W.addr_bits (Topo.host_addr topo ~region:r ~index:i))
                  ~ttl_s:10)
             ()
            : Names.Server.t);
        Names.Resolver.create ~udp ~eng ~node:(Ip.Stack.node_id gw)
          ~src:(Topo.region_gw_addr r) ~root:root_addr ())
  in
  { topo; eng; dir; resolvers; root_server }

let resolve_sync w r ~qtype ~l0 ~l1 =
  let got = ref None in
  Names.Resolver.resolve w.resolvers.(r) ~qtype ~l0 ~l1 ~l2:0
    (fun ~rcode ~answer ~ttl_s -> got := Some (rcode, answer, ttl_s));
  Engine.run ~until:(Engine.now w.eng + (5 * sec)) w.eng;
  match !got with
  | Some a -> a
  | None -> Alcotest.fail "resolve never answered"

let test_delegation_walk () =
  let w = build_world () in
  let rc, ans, ttl = resolve_sync w 2 ~qtype:W.qtype_host ~l0:0 ~l1:5 in
  check Alcotest.int "rcode ok" W.rcode_ok rc;
  check Alcotest.int "answer is the host's address"
    (W.addr_bits (Topo.host_addr w.topo ~region:0 ~index:5))
    ans;
  check Alcotest.bool "positive ttl" true (ttl > 0);
  let st = Names.Resolver.stats w.resolvers.(2) in
  (* an uncached walk is exactly two upstream queries: root referral,
     then the region authority *)
  check Alcotest.int "two upstream queries" 2 st.Names.Resolver.upstream;
  check Alcotest.int "root referred" 1
    (Names.Server.stats w.root_server).Names.Server.referrals;
  (* same name again: answered from cache, no new upstream traffic *)
  let rc2, ans2, _ = resolve_sync w 2 ~qtype:W.qtype_host ~l0:0 ~l1:5 in
  check Alcotest.int "cached rcode" W.rcode_ok rc2;
  check Alcotest.int "cached answer" ans ans2;
  check Alcotest.int "no new upstream" 2 st.Names.Resolver.upstream;
  check Alcotest.int "one cache hit" 1 st.Names.Resolver.cache_hits;
  (* a sibling name in the same region reuses the cached delegation:
     one more upstream query, not two *)
  let rc3, _, _ = resolve_sync w 2 ~qtype:W.qtype_host ~l0:0 ~l1:6 in
  check Alcotest.int "sibling ok" W.rcode_ok rc3;
  check Alcotest.int "delegation reused" 3 st.Names.Resolver.upstream

let test_negative_cached () =
  let w = build_world () in
  let rc, _, ttl = resolve_sync w 1 ~qtype:W.qtype_host ~l0:0 ~l1:999 in
  check Alcotest.int "nxname" W.rcode_nxname rc;
  check Alcotest.bool "negative answers carry a ttl" true (ttl > 0);
  let st = Names.Resolver.stats w.resolvers.(1) in
  let up = st.Names.Resolver.upstream in
  let rc2, _, _ = resolve_sync w 1 ~qtype:W.qtype_host ~l0:0 ~l1:999 in
  check Alcotest.int "nxname from cache" W.rcode_nxname rc2;
  check Alcotest.int "no new upstream for cached negative" up
    st.Names.Resolver.upstream

let test_single_flight () =
  let w = build_world () in
  let answers = ref [] in
  for _ = 1 to 5 do
    Names.Resolver.resolve w.resolvers.(1) ~qtype:W.qtype_host ~l0:2 ~l1:3
      ~l2:0 (fun ~rcode ~answer ~ttl_s:_ ->
        answers := (rcode, answer) :: !answers)
  done;
  Engine.run ~until:(5 * sec) w.eng;
  check Alcotest.int "every waiter answered" 5 (List.length !answers);
  List.iter
    (fun (rc, ans) ->
      check Alcotest.int "ok" W.rcode_ok rc;
      check Alcotest.int "same answer"
        (W.addr_bits (Topo.host_addr w.topo ~region:2 ~index:3))
        ans)
    !answers;
  let st = Names.Resolver.stats w.resolvers.(1) in
  check Alcotest.int "four waiters coalesced" 4 st.Names.Resolver.coalesced;
  check Alcotest.int "one walk upstream" 2 st.Names.Resolver.upstream

let test_crash_amnesia () =
  let w = build_world () in
  (* Resolver in region 0: the whole walk rides connected /32 routes
     that survive a soft flush, so re-resolution works immediately —
     what a crash costs is the cache, not correctness. *)
  let r = w.resolvers.(0) in
  let st = Names.Resolver.stats r in
  ignore (resolve_sync w 0 ~qtype:W.qtype_host ~l0:0 ~l1:1);
  check Alcotest.bool "cache warm" true (Cache.len (Names.Resolver.cache r) > 0);
  let up_before = st.Names.Resolver.upstream in
  (* a walk caught in flight when the crash hits is aborted: SERVFAIL *)
  let inflight = ref None in
  Names.Resolver.resolve r ~qtype:W.qtype_host ~l0:1 ~l1:2 ~l2:0
    (fun ~rcode ~answer:_ ~ttl_s:_ -> inflight := Some rcode);
  Ip.Stack.flush_soft_state (Topo.region_gw w.topo 0);
  check Alcotest.int "stack flush reached the resolver" 1
    st.Names.Resolver.flushes;
  check Alcotest.int "cache forgotten" 0 (Cache.len (Names.Resolver.cache r));
  check Alcotest.bool "in-flight walk aborted with servfail" true
    (!inflight = Some W.rcode_servfail);
  (* amnesia, not damage: the same name resolves again from scratch *)
  let rc, ans, _ = resolve_sync w 0 ~qtype:W.qtype_host ~l0:0 ~l1:1 in
  check Alcotest.int "re-resolves after crash" W.rcode_ok rc;
  check Alcotest.int "same answer as before the crash"
    (W.addr_bits (Topo.host_addr w.topo ~region:0 ~index:1))
    ans;
  check Alcotest.bool "cache re-warmed the hard way" true
    (st.Names.Resolver.upstream > up_before)

let test_timeout_servfail () =
  let w = build_world () in
  (* A resolver whose root is a silent pooled host: every walk times
     out, retries, then fails — and SERVFAIL is never cached. *)
  let gw = Topo.region_gw w.topo 1 in
  let udp = Udp.create gw in
  let r =
    Names.Resolver.create ~udp ~eng:w.eng ~node:(Ip.Stack.node_id gw)
      ~src:(Topo.region_gw_addr 1)
      ~root:(Topo.host_addr w.topo ~region:0 ~index:0)
      ~port:54 ~timeout_us:(sec / 10) ~retries:1 ()
  in
  let got = ref None in
  Names.Resolver.resolve r ~qtype:W.qtype_host ~l0:2 ~l1:1 ~l2:0
    (fun ~rcode ~answer:_ ~ttl_s:_ -> got := Some rcode);
  Engine.run ~until:(Engine.now w.eng + (2 * sec)) w.eng;
  check Alcotest.bool "servfail after retries" true
    (!got = Some W.rcode_servfail);
  let st = Names.Resolver.stats r in
  check Alcotest.int "one retry" 1 st.Names.Resolver.retries;
  check Alcotest.int "servfail not cached" 0 (Cache.len (Names.Resolver.cache r))

(* -- anycast --------------------------------------------------------- *)

let test_anycast_nearest_and_failover () =
  let w = build_world () in
  let pool = Topo.pool w.topo in
  (* service 7: one replica in region 1, one in region 2, both pooled
     hosts that echo whatever arrives on the service port *)
  let svc_port = 7000 in
  let rep1 = Topo.host_slot w.topo ~region:1 ~index:0 in
  let rep2 = Topo.host_slot w.topo ~region:2 ~index:0 in
  let dead = ref (-1) in
  Hostpool.set_udp_sink pool
    (Some
       (fun slot ~src ~src_port ~dst_port payload ->
         if dst_port = svc_port && slot <> !dead then
           ignore
             (Hostpool.send_udp pool slot ~dst:src ~src_port:dst_port
                ~dst_port:src_port payload
               : bool)));
  Names.Service.register w.dir ~service:7
    [ (1, Topo.host_addr w.topo ~region:1 ~index:0);
      (2, Topo.host_addr w.topo ~region:2 ~index:0) ];
  Names.Service.start_probing w.dir ~interval_us:(sec / 4);
  (* a client in region 1 is served the region-1 replica *)
  let rc, ans, ttl = resolve_sync w 1 ~qtype:W.qtype_svc ~l0:7 ~l1:0 in
  check Alcotest.int "svc ok" W.rcode_ok rc;
  check Alcotest.int "nearest replica chosen"
    (W.addr_bits (Hostpool.addr pool rep1)) ans;
  check Alcotest.bool "svc ttl is short" true (ttl <= 1);
  (* unknown service: nxname *)
  let rc_nx, _, _ = resolve_sync w 1 ~qtype:W.qtype_svc ~l0:99 ~l1:0 in
  check Alcotest.int "unknown service nxname" W.rcode_nxname rc_nx;
  (* crash the near replica (it stops echoing); probing must notice,
     fail over, and later resolves get the far replica *)
  dead := rep1;
  Engine.run ~until:(Engine.now w.eng + (3 * sec)) w.eng;
  check Alcotest.bool "replica marked down" false
    (Names.Service.replica_up w.dir ~service:7 ~index:0);
  check Alcotest.int "one failover event" 1
    (Names.Service.stats w.dir).Names.Service.failovers_down;
  let rc2, ans2, _ = resolve_sync w 1 ~qtype:W.qtype_svc ~l0:7 ~l1:0 in
  check Alcotest.int "svc still ok" W.rcode_ok rc2;
  check Alcotest.int "failed over to the far replica"
    (W.addr_bits (Hostpool.addr pool rep2)) ans2;
  (* recovery: first echo marks it up again *)
  dead := -1;
  Engine.run ~until:(Engine.now w.eng + (2 * sec)) w.eng;
  check Alcotest.bool "replica back up" true
    (Names.Service.replica_up w.dir ~service:7 ~index:0);
  check Alcotest.int "recovery counted" 1
    (Names.Service.stats w.dir).Names.Service.failovers_up

(* -- ephemeral-port churn accounting --------------------------------- *)

let test_udp_eph_counters () =
  let w = build_world ~regions:1 () in
  let gw = Topo.region_gw w.topo 0 in
  let udp = Udp.create gw in
  let s1 = Udp.bind udp ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  let p1 = Udp.port s1 in
  Udp.close s1;
  let s2 = Udp.bind udp ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  let st = Udp.stats udp in
  check Alcotest.int "two ephemeral allocations" 2 st.Udp.eph_allocs;
  check Alcotest.bool "second bind on a fresh port is no reuse" true
    (Udp.port s2 <> p1 && st.Udp.eph_reuses = 0);
  check Alcotest.int "no exhaustion" 0 st.Udp.eph_exhausted

let () =
  Alcotest.run "names"
    [
      ( "wire",
        [
          qcheck wire_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_wire_rejects;
          Alcotest.test_case "layout gapless" `Quick
            test_wire_layout_covers_header;
        ] );
      ( "cache",
        [
          Alcotest.test_case "ttl expiry" `Quick test_cache_ttl;
          Alcotest.test_case "negative entries" `Quick test_cache_negative;
          Alcotest.test_case "lru + flush" `Quick test_cache_lru;
        ] );
      ( "resolver",
        [
          Alcotest.test_case "delegation walk" `Quick test_delegation_walk;
          Alcotest.test_case "negative caching" `Quick test_negative_cached;
          Alcotest.test_case "single flight" `Quick test_single_flight;
          Alcotest.test_case "crash amnesia" `Quick test_crash_amnesia;
          Alcotest.test_case "timeout -> servfail" `Quick
            test_timeout_servfail;
        ] );
      ( "anycast",
        [
          Alcotest.test_case "nearest + failover" `Quick
            test_anycast_nearest_and_failover;
        ] );
      ( "udp churn",
        [
          Alcotest.test_case "ephemeral counters" `Quick
            test_udp_eph_counters;
        ] );
    ]
