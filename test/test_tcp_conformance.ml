(* TCP conformance tests: a scripted peer hand-crafts raw segments and
   asserts the exact wire behaviour of the real endpoint — RST generation
   rules, acceptability checks, handshake field values, duplicate-ACK
   generation, FIN sequencing and TIME-WAIT re-acknowledgment.  This is
   the state machine exercised from the outside, segment by segment. *)

let check = Alcotest.check

module Addr = Packet.Addr
module Ipv4 = Packet.Ipv4
module Wire = Packet.Tcp_wire
module Seq = Tcp.Seq

(* A world with one real TCP endpoint (A) and one scripted raw peer (B). *)
type world = {
  eng : Engine.t;
  a_tcp : Tcp.t;
  a_addr : Addr.t;
  b_ip : Ip.Stack.t;
  b_addr : Addr.t;
  (* Segments captured at B, oldest first. *)
  inbox : Wire.t list ref;
}

let world ?config () =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:2 eng in
  let na = Netsim.add_node net "real" in
  let nb = Netsim.add_node net "scripted" in
  ignore (Netsim.add_link net (Netsim.profile "w" ~delay_us:1_000) na nb);
  let a_ip = Ip.Stack.create net na in
  let b_ip = Ip.Stack.create net nb in
  let a_addr = Addr.v 10 0 1 1 and b_addr = Addr.v 10 0 1 2 in
  Ip.Stack.configure_iface a_ip 0 ~addr:a_addr ~prefix_len:24;
  Ip.Stack.configure_iface b_ip 0 ~addr:b_addr ~prefix_len:24;
  let a_tcp = Tcp.create ?config a_ip in
  let inbox = ref [] in
  Ip.Stack.register_proto b_ip Ipv4.Proto.Tcp (fun h payload ->
      match Wire.decode ~src:h.Ipv4.src ~dst:h.Ipv4.dst payload with
      | Ok seg -> inbox := !inbox @ [ seg ]
      | Error _ -> ());
  { eng; a_tcp; a_addr; b_ip; b_addr; inbox }

(* B transmits a raw segment to A. *)
let inject w (seg : Wire.t) =
  let bytes = Wire.encode ~src:w.b_addr ~dst:w.a_addr seg in
  ignore
    (Ip.Stack.send w.b_ip ~proto:Ipv4.Proto.Tcp ~dst:w.a_addr bytes)

let run w = Engine.run ~until:(Engine.now w.eng + 500_000) w.eng

let take w =
  match !(w.inbox) with
  | [] -> None
  | seg :: rest ->
      w.inbox := rest;
      Some seg

let drain w = w.inbox := []

let expect w what pred =
  match take w with
  | None -> Alcotest.failf "expected %s, got nothing" what
  | Some seg ->
      if not (pred seg) then
        Alcotest.failf "expected %s, got %a" what Wire.pp seg;
      seg

(* --- RST generation (RFC 793 p.36) ---------------------------------------- *)

let test_syn_to_closed_port_gets_rst () =
  let w = world () in
  inject w
    (Wire.make ~seq:1000 ~flags:(Wire.flags ~syn:true ()) ~window:4096
       ~src_port:4444 ~dst_port:80 ());
  run w;
  ignore
    (expect w "RST+ACK with ack=seq+1" (fun seg ->
         seg.Wire.flags.Wire.rst && seg.Wire.flags.Wire.ack
         && seg.Wire.ack_n = 1001 && seg.Wire.seq = 0))

let test_ack_to_closed_port_gets_rst_at_ack () =
  let w = world () in
  inject w
    (Wire.make ~seq:500 ~ack_n:7777
       ~flags:(Wire.flags ~ack:true ())
       ~src_port:4444 ~dst_port:80 ());
  run w;
  ignore
    (expect w "RST with seq=incoming ack" (fun seg ->
         seg.Wire.flags.Wire.rst && seg.Wire.seq = 7777))

let test_rst_to_closed_port_is_silent () =
  let w = world () in
  inject w
    (Wire.make ~seq:1 ~flags:(Wire.flags ~rst:true ()) ~src_port:1 ~dst_port:2 ());
  run w;
  check Alcotest.bool "no reply to RST" true (take w = None)

let test_bad_checksum_dropped_silently () =
  let w = world () in
  ignore (Tcp.listen w.a_tcp ~port:80 ~accept:(fun _ -> ()));
  let seg =
    Wire.make ~seq:1000 ~flags:(Wire.flags ~syn:true ()) ~src_port:4444
      ~dst_port:80 ()
  in
  let bytes = Wire.encode ~src:w.b_addr ~dst:w.a_addr seg in
  Bytes.set_uint8 bytes 14 (Bytes.get_uint8 bytes 14 lxor 0xff);
  ignore (Ip.Stack.send w.b_ip ~proto:Ipv4.Proto.Tcp ~dst:w.a_addr bytes);
  run w;
  check Alcotest.bool "no response" true (take w = None);
  check Alcotest.int "counted as bad" 1
    (Tcp.instance_stats w.a_tcp).Tcp.bad_segments

(* --- Scripted passive handshake ------------------------------------------- *)

(* Drive A's listener by hand: returns (A's conn via accept, our irs=A's
   iss, our iss). *)
let scripted_handshake w ~port =
  let accepted = ref None in
  ignore (Tcp.listen w.a_tcp ~port ~accept:(fun c -> accepted := Some c));
  let iss = 90_000 in
  inject w
    (Wire.make ~seq:iss
       ~flags:(Wire.flags ~syn:true ())
       ~window:8192 ~mss:(Some 1460) ~src_port:5555 ~dst_port:port ());
  run w;
  let synack =
    expect w "SYN-ACK" (fun seg ->
        seg.Wire.flags.Wire.syn && seg.Wire.flags.Wire.ack
        && seg.Wire.ack_n = iss + 1
        && seg.Wire.mss <> None)
  in
  let a_iss = synack.Wire.seq in
  inject w
    (Wire.make ~seq:(iss + 1) ~ack_n:(Seq.add a_iss 1)
       ~flags:(Wire.flags ~ack:true ())
       ~window:8192 ~src_port:5555 ~dst_port:port ());
  run w;
  (match !accepted with
  | Some c ->
      check Alcotest.bool "established" true (Tcp.state c = Tcp.Established)
  | None -> Alcotest.fail "accept never fired");
  (Option.get !accepted, a_iss, iss)

let test_scripted_handshake_fields () =
  let w = world () in
  let conn, _, _ = scripted_handshake w ~port:80 in
  check Alcotest.int "peer mss adopted" 1460 (Tcp.mss conn);
  check Alcotest.int "peer window recorded" 8192 (Tcp.snd_wnd conn)

let test_in_order_data_is_acked_and_delivered () =
  let w = world () in
  let conn, a_iss, iss = scripted_handshake w ~port:80 in
  ignore a_iss;
  let got = Buffer.create 64 in
  Tcp.on_receive conn (fun d -> Buffer.add_bytes got d);
  (* Two in-order segments: the second must trigger an immediate
     cumulative ACK (ack-every-2nd rule). *)
  inject w
    (Wire.make ~seq:(iss + 1) ~ack_n:(Seq.add a_iss 1)
       ~flags:(Wire.flags ~ack:true ~psh:true ())
       ~window:8192 ~payload:(Bytes.of_string "hello ") ~src_port:5555
       ~dst_port:80 ());
  inject w
    (Wire.make ~seq:(iss + 7) ~ack_n:(Seq.add a_iss 1)
       ~flags:(Wire.flags ~ack:true ~psh:true ())
       ~window:8192 ~payload:(Bytes.of_string "world") ~src_port:5555
       ~dst_port:80 ());
  run w;
  check Alcotest.string "delivered in order" "hello world" (Buffer.contents got);
  ignore
    (expect w "cumulative ack" (fun seg ->
         seg.Wire.flags.Wire.ack && seg.Wire.ack_n = iss + 12))

let test_out_of_order_triggers_dup_ack () =
  let w = world () in
  let conn, a_iss, iss = scripted_handshake w ~port:80 in
  let got = Buffer.create 64 in
  Tcp.on_receive conn (fun d -> Buffer.add_bytes got d);
  drain w;
  (* A segment beyond the expected sequence: A must hold it and emit an
     immediate duplicate ACK for the gap. *)
  inject w
    (Wire.make ~seq:(iss + 11) ~ack_n:(Seq.add a_iss 1)
       ~flags:(Wire.flags ~ack:true ())
       ~window:8192 ~payload:(Bytes.of_string "-tail") ~src_port:5555
       ~dst_port:80 ());
  run w;
  ignore
    (expect w "dup ack at gap" (fun seg ->
         seg.Wire.flags.Wire.ack && seg.Wire.ack_n = iss + 1));
  check Alcotest.string "nothing delivered yet" "" (Buffer.contents got);
  check Alcotest.int "ooo buffered" 1 (Tcp.ooo_segments conn);
  (* Fill the gap: everything must flush in order. *)
  inject w
    (Wire.make ~seq:(iss + 1) ~ack_n:(Seq.add a_iss 1)
       ~flags:(Wire.flags ~ack:true ())
       ~window:8192 ~payload:(Bytes.of_string "head-data-") ~src_port:5555
       ~dst_port:80 ());
  run w;
  check Alcotest.string "flushed in order" "head-data--tail"
    (Buffer.contents got);
  ignore
    (expect w "ack covers both" (fun seg -> seg.Wire.ack_n = iss + 16))

let test_syn_in_established_challenges () =
  let w = world () in
  let conn, a_iss, iss = scripted_handshake w ~port:80 in
  let closed = ref None in
  Tcp.on_close conn (fun r -> closed := Some r);
  drain w;
  (* RFC 793 p.71 said an in-window SYN aborts the connection — the blind
     teardown vector.  RFC 5961 §4.2 replaces that with a challenge ACK
     and the connection must stay up. *)
  inject w
    (Wire.make ~seq:(iss + 1) ~ack_n:(Seq.add a_iss 1)
       ~flags:(Wire.flags ~syn:true ~ack:true ())
       ~window:8192 ~src_port:5555 ~dst_port:80 ());
  run w;
  check Alcotest.bool "connection survives" true (!closed = None);
  check Alcotest.bool "still established" true
    (Tcp.state conn = Tcp.Established);
  ignore
    (expect w "challenge ack, not RST" (fun seg ->
         seg.Wire.flags.Wire.ack
         && (not seg.Wire.flags.Wire.rst)
         && seg.Wire.ack_n = iss + 1));
  check Alcotest.int "counted" 1
    (Tcp.instance_stats w.a_tcp).Tcp.challenge_acks_out

let test_rst_inexact_seq_challenged () =
  let w = world () in
  let conn, a_iss, iss = scripted_handshake w ~port:80 in
  let closed = ref None in
  Tcp.on_close conn (fun r -> closed := Some r);
  drain w;
  (* A forged RST one past rcv_nxt: in-window, so pre-5961 stacks died
     here.  Now it must only earn a challenge ACK. *)
  inject w
    (Wire.make ~seq:(iss + 2) ~ack_n:(Seq.add a_iss 1)
       ~flags:(Wire.flags ~rst:true ())
       ~window:8192 ~src_port:5555 ~dst_port:80 ());
  run w;
  check Alcotest.bool "connection survives" true (!closed = None);
  ignore
    (expect w "challenge ack" (fun seg ->
         seg.Wire.flags.Wire.ack && not seg.Wire.flags.Wire.rst));
  let st = Tcp.instance_stats w.a_tcp in
  check Alcotest.int "rejection counted" 1 st.Tcp.rst_rejected_inexact;
  check Alcotest.int "no reset recorded" 0 st.Tcp.resets_in;
  (* The legitimate case still works: an exact-sequence RST resets. *)
  inject w
    (Wire.make ~seq:(iss + 1) ~ack_n:(Seq.add a_iss 1)
       ~flags:(Wire.flags ~rst:true ())
       ~window:8192 ~src_port:5555 ~dst_port:80 ());
  run w;
  check Alcotest.bool "exact RST still resets" true (!closed = Some Tcp.Reset)

let test_invalid_ack_dropped_silently () =
  let w = world () in
  let conn, a_iss, iss = scripted_handshake w ~port:80 in
  drain w;
  (* An ACK far below snd_una - max_wnd (RFC 5961 §5.2): dropped with no
     reply, unlike the too-new case which draws a corrective ACK. *)
  inject w
    (Wire.make ~seq:(iss + 1)
       ~ack_n:(Seq.add a_iss (-200_000))
       ~flags:(Wire.flags ~ack:true ())
       ~window:8192 ~src_port:5555 ~dst_port:80 ());
  run w;
  check Alcotest.bool "no reply" true (take w = None);
  check Alcotest.bool "still established" true
    (Tcp.state conn = Tcp.Established);
  check Alcotest.int "drop counted" 1
    (Tcp.instance_stats w.a_tcp).Tcp.dropped_acks_invalid

let test_fin_at_right_window_edge_accepted () =
  (* A tiny receive window makes the right edge reachable in one segment. *)
  let w = world ~config:{ Tcp.default_config with window = 64 } () in
  let conn, a_iss, iss = scripted_handshake w ~port:80 in
  let peer_fin = ref false in
  Tcp.on_peer_fin conn (fun () -> peer_fin := true);
  drain w;
  (* Fill the window to one byte short of the right edge, then send that
     last byte with FIN.  The FIN occupies the sequence number exactly at
     the edge: only a seg_len that counts the FIN (RFC 793 §3.3) accepts
     it.  rcv_window here is A's config window minus buffered bytes. *)
  let wnd = 64 in
  let chunk = Bytes.make (wnd - 1) 'x' in
  inject w
    (Wire.make ~seq:(iss + 1) ~ack_n:(Seq.add a_iss 1)
       ~flags:(Wire.flags ~ack:true ())
       ~window:8192 ~payload:chunk ~src_port:5555 ~dst_port:80 ());
  run w;
  drain w;
  (* Window is now exactly 1 (unread data shrank it); the final byte plus
     FIN ends exactly at the right edge. *)
  inject w
    (Wire.make ~seq:(iss + wnd) ~ack_n:(Seq.add a_iss 1)
       ~flags:(Wire.flags ~ack:true ~fin:true ())
       ~window:8192 ~payload:(Bytes.make 1 'y') ~src_port:5555 ~dst_port:80 ());
  run w;
  check Alcotest.bool "fin consumed" true !peer_fin;
  check Alcotest.bool "close-wait" true (Tcp.state conn = Tcp.Close_wait);
  ignore
    (expect w "ack past the fin" (fun seg ->
         seg.Wire.flags.Wire.ack && seg.Wire.ack_n = iss + wnd + 2))

let test_out_of_window_segment_gets_corrective_ack () =
  let w = world () in
  let _conn, a_iss, iss = scripted_handshake w ~port:80 in
  drain w;
  (* Far outside the receive window: drop + send the current ack. *)
  inject w
    (Wire.make
       ~seq:(Seq.add iss 500_000)
       ~ack_n:(Seq.add a_iss 1)
       ~flags:(Wire.flags ~ack:true ())
       ~window:8192 ~payload:(Bytes.of_string "noise") ~src_port:5555
       ~dst_port:80 ());
  run w;
  ignore
    (expect w "corrective ack" (fun seg ->
         seg.Wire.flags.Wire.ack && seg.Wire.ack_n = iss + 1))

let test_fin_sequence_and_close_wait () =
  let w = world () in
  let conn, a_iss, iss = scripted_handshake w ~port:80 in
  let peer_fin = ref false in
  Tcp.on_peer_fin conn (fun () -> peer_fin := true);
  drain w;
  (* FIN with no data: A acks iss+2 and enters CLOSE-WAIT. *)
  inject w
    (Wire.make ~seq:(iss + 1) ~ack_n:(Seq.add a_iss 1)
       ~flags:(Wire.flags ~fin:true ~ack:true ())
       ~window:8192 ~src_port:5555 ~dst_port:80 ());
  run w;
  check Alcotest.bool "peer fin seen" true !peer_fin;
  check Alcotest.bool "close-wait" true (Tcp.state conn = Tcp.Close_wait);
  ignore
    (expect w "fin acked" (fun seg ->
         seg.Wire.flags.Wire.ack && seg.Wire.ack_n = iss + 2));
  (* A closes: LAST-ACK, emits its own FIN; we ack it; connection gone. *)
  let closed = ref None in
  Tcp.on_close conn (fun r -> closed := Some r);
  Tcp.close conn;
  run w;
  let fin =
    expect w "A's FIN" (fun seg ->
        seg.Wire.flags.Wire.fin && seg.Wire.seq = Seq.add a_iss 1)
  in
  check Alcotest.bool "last-ack" true (Tcp.state conn = Tcp.Last_ack);
  inject w
    (Wire.make ~seq:(iss + 2)
       ~ack_n:(Seq.add fin.Wire.seq 1)
       ~flags:(Wire.flags ~ack:true ())
       ~window:8192 ~src_port:5555 ~dst_port:80 ());
  run w;
  check Alcotest.bool "closed gracefully" true (!closed = Some Tcp.Graceful);
  check Alcotest.int "no connections left" 0 (Tcp.connection_count w.a_tcp)

let test_time_wait_reacks_retransmitted_fin () =
  let w = world () in
  (* Use a tiny MSL so we could observe expiry; here we test the re-ack. *)
  let conn, a_iss, iss = scripted_handshake w ~port:80 in
  drain w;
  (* A initiates the close this time: FIN-WAIT-1. *)
  Tcp.close conn;
  run w;
  let fin =
    expect w "A's FIN" (fun seg -> seg.Wire.flags.Wire.fin)
  in
  ignore a_iss;
  (* Ack A's FIN, then send ours: A should enter TIME-WAIT and ack. *)
  inject w
    (Wire.make ~seq:(iss + 1)
       ~ack_n:(Seq.add fin.Wire.seq 1)
       ~flags:(Wire.flags ~ack:true ())
       ~window:8192 ~src_port:5555 ~dst_port:80 ());
  inject w
    (Wire.make ~seq:(iss + 1)
       ~ack_n:(Seq.add fin.Wire.seq 1)
       ~flags:(Wire.flags ~fin:true ~ack:true ())
       ~window:8192 ~src_port:5555 ~dst_port:80 ());
  run w;
  check Alcotest.bool "time-wait" true (Tcp.state conn = Tcp.Time_wait);
  drain w;
  (* Retransmit our FIN (as if the ack was lost): A must re-ack. *)
  inject w
    (Wire.make ~seq:(iss + 1)
       ~ack_n:(Seq.add fin.Wire.seq 1)
       ~flags:(Wire.flags ~fin:true ~ack:true ())
       ~window:8192 ~src_port:5555 ~dst_port:80 ());
  run w;
  ignore
    (expect w "re-ack of retransmitted FIN" (fun seg ->
         seg.Wire.flags.Wire.ack && seg.Wire.ack_n = iss + 2));
  check Alcotest.bool "still time-wait" true (Tcp.state conn = Tcp.Time_wait)

let test_stale_ack_of_unsent_data () =
  let w = world () in
  let _conn, a_iss, iss = scripted_handshake w ~port:80 in
  drain w;
  (* Ack data A never sent: A replies with a plain ack, stays up. *)
  inject w
    (Wire.make ~seq:(iss + 1)
       ~ack_n:(Seq.add a_iss 50_000)
       ~flags:(Wire.flags ~ack:true ())
       ~window:8192 ~src_port:5555 ~dst_port:80 ());
  run w;
  ignore
    (expect w "corrective ack" (fun seg ->
         seg.Wire.flags.Wire.ack && not seg.Wire.flags.Wire.rst))

let () =
  Alcotest.run "tcp-conformance"
    [
      ( "rst-rules",
        [
          Alcotest.test_case "syn to closed port" `Quick
            test_syn_to_closed_port_gets_rst;
          Alcotest.test_case "ack to closed port" `Quick
            test_ack_to_closed_port_gets_rst_at_ack;
          Alcotest.test_case "rst is never answered" `Quick
            test_rst_to_closed_port_is_silent;
          Alcotest.test_case "bad checksum silent" `Quick
            test_bad_checksum_dropped_silently;
        ] );
      ( "handshake",
        [
          Alcotest.test_case "field values" `Quick test_scripted_handshake_fields;
        ] );
      ( "segment-processing",
        [
          Alcotest.test_case "in-order data" `Quick
            test_in_order_data_is_acked_and_delivered;
          Alcotest.test_case "out-of-order dup ack" `Quick
            test_out_of_order_triggers_dup_ack;
          Alcotest.test_case "syn in established" `Quick
            test_syn_in_established_challenges;
          Alcotest.test_case "rst inexact seq" `Quick
            test_rst_inexact_seq_challenged;
          Alcotest.test_case "invalid ack" `Quick
            test_invalid_ack_dropped_silently;
          Alcotest.test_case "fin at window edge" `Quick
            test_fin_at_right_window_edge_accepted;
          Alcotest.test_case "out-of-window" `Quick
            test_out_of_window_segment_gets_corrective_ack;
          Alcotest.test_case "stale ack" `Quick test_stale_ack_of_unsent_data;
        ] );
      ( "teardown",
        [
          Alcotest.test_case "fin sequence" `Quick test_fin_sequence_and_close_wait;
          Alcotest.test_case "time-wait re-ack" `Quick
            test_time_wait_reacks_retransmitted_fin;
        ] );
    ]
