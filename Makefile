.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

check:
	bin/check.sh

bench:
	dune exec bench/main.exe

clean:
	dune clean
