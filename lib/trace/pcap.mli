(** Classic pcap (libpcap file format 2.4) capture writer.

    Captures use LINKTYPE_RAW (101): each record is a raw IPv4 datagram,
    the exact frames this simulator's links carry, so output opens
    directly in tcpdump or wireshark.  Attach a capture to a link with
    [Internet.pcap_link] or to a stack with [Ip.Stack.set_tap]. *)

type t

val magic : int
(** [0xa1b2c3d4] — classic pcap, microsecond timestamps. *)

val linktype_raw : int
(** 101. *)

val default_snaplen : int
(** 65535. *)

val header_len : int
(** File header size in bytes (24). *)

val record_header_len : int
(** Per-packet header size in bytes (16). *)

val file_layout : (string * int * int) list
(** [(field, offset, width)] contract for the 24-byte file header,
    machine-checked by catenet-lint against {!create}. *)

val record_layout : (string * int * int) list
(** [(field, offset, width)] contract for the 16-byte record header,
    machine-checked by catenet-lint against {!add}. *)

val create : ?snaplen:int -> unit -> t
(** An in-memory capture with the global header already written. *)

val add : t -> ts_us:int -> bytes -> unit
(** Append one frame stamped with the virtual time [ts_us] (split into
    seconds/microseconds); bodies longer than the snaplen are truncated
    with the original length preserved in the record header. *)

val packet_count : t -> int
val byte_length : t -> int
val to_string : t -> string
val write_file : string -> t -> unit
