(* Fixture: polymorphic comparison on a byte-buffer type. *)

let same (a : bytes) (b : bytes) = a = b

let order (a : bytes) (b : bytes) = compare a b
