(* Tests for the routing protocols: message formats, distance-vector and
   link-state convergence, and rerouting around failures — the mechanism
   behind the survivability goal. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Internet = Catenet.Internet
module Addr = Packet.Addr
module Prefix = Packet.Addr.Prefix
module Rt_msg = Routing.Rt_msg

(* --- Message formats ------------------------------------------------------- *)

let test_dv_update_roundtrip () =
  let entries =
    [
      { Rt_msg.prefix = Prefix.of_string "10.0.1.0/24"; metric = 2 };
      { Rt_msg.prefix = Prefix.of_string "10.0.2.0/24"; metric = 16 };
      { Rt_msg.prefix = Prefix.of_string "0.0.0.0/0"; metric = 1 };
    ]
  in
  match Rt_msg.decode (Rt_msg.encode (Rt_msg.Dv_update entries)) with
  | Ok (Rt_msg.Dv_update e') -> check Alcotest.bool "equal" true (entries = e')
  | Ok _ | Error _ -> Alcotest.fail "roundtrip failed"

let test_hello_roundtrip () =
  match Rt_msg.decode (Rt_msg.encode (Rt_msg.Hello 0xDEADBEEFl)) with
  | Ok (Rt_msg.Hello id) -> check Alcotest.int32 "id" 0xDEADBEEFl id
  | Ok _ | Error _ -> Alcotest.fail "roundtrip failed"

let test_lsa_roundtrip () =
  let lsa =
    {
      Rt_msg.origin = 42l;
      seq = 17;
      neighbors =
        [
          { Rt_msg.neighbor_id = 1l; cost = 1 };
          { Rt_msg.neighbor_id = 2l; cost = 5 };
        ];
      prefixes = [ { Rt_msg.prefix = Prefix.of_string "10.9.0.0/16"; cost = 0 } ];
    }
  in
  match Rt_msg.decode (Rt_msg.encode (Rt_msg.Lsa lsa)) with
  | Ok (Rt_msg.Lsa l) -> check Alcotest.bool "equal" true (lsa = l)
  | Ok _ | Error _ -> Alcotest.fail "roundtrip failed"

let test_garbage_rejected () =
  (match Rt_msg.decode (Bytes.of_string "\x09rubbish") with
  | Error (`Bad_header _) -> ()
  | Error `Truncated | Ok _ -> Alcotest.fail "expected Bad_header");
  match Rt_msg.decode (Bytes.of_string "\x01\x00\x05") with
  | Error `Truncated -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Truncated"

let prop_dv_roundtrip =
  QCheck.Test.make ~name:"dv update roundtrip" ~count:200
    QCheck.(list_of_size Gen.(0 -- 30) (pair (int_bound 0xFFFFFF) (int_bound 16)))
    (fun raw ->
      let entries =
        List.map
          (fun (net, metric) ->
            {
              Rt_msg.prefix = Prefix.make (Addr.of_int32 (Int32.of_int (net * 256))) 24;
              metric;
            })
          raw
      in
      match Rt_msg.decode (Rt_msg.encode (Rt_msg.Dv_update entries)) with
      | Ok (Rt_msg.Dv_update e') -> entries = e'
      | Ok _ | Error _ -> false)

(* --- Convergence fixtures --------------------------------------------------- *)

(* A square of gateways with a host on opposite corners:

     h1 - g1 --l12-- g2
           |          |
          l14        l23
           |          |
          g4 --l34-- g3 - h3
*)
type square = {
  t : Internet.t;
  h1 : Internet.host;
  h3 : Internet.host;
  g1 : Internet.gateway;
  g2 : Internet.gateway;
  g3 : Internet.gateway;
  g4 : Internet.gateway;
  l12 : Netsim.link_id;
  l23 : Netsim.link_id;
  l34 : Netsim.link_id;
  l14 : Netsim.link_id;
}

let square routing =
  (* Fast protocol timers so tests converge in seconds of sim time. *)
  let dv_config =
    {
      Routing.Dv.default_config with
      Routing.Dv.period_us = 1_000_000;
      timeout_us = 3_500_000;
      gc_us = 2_000_000;
      carrier_poll_us = 200_000;
    }
  in
  let ls_config =
    {
      Routing.Ls.default_config with
      Routing.Ls.hello_us = 300_000;
      refresh_us = 5_000_000;
      max_age_us = 20_000_000;
    }
  in
  let t = Internet.create ~routing ~dv_config ~ls_config () in
  let g1 = Internet.add_gateway t "g1" in
  let g2 = Internet.add_gateway t "g2" in
  let g3 = Internet.add_gateway t "g3" in
  let g4 = Internet.add_gateway t "g4" in
  let h1 = Internet.add_host t "h1" in
  let h3 = Internet.add_host t "h3" in
  let p = Netsim.profile "core" ~delay_us:2_000 in
  let l12 = Internet.connect t p g1.Internet.g_node g2.Internet.g_node in
  let l23 = Internet.connect t p g2.Internet.g_node g3.Internet.g_node in
  let l34 = Internet.connect t p g3.Internet.g_node g4.Internet.g_node in
  let l14 = Internet.connect t p g1.Internet.g_node g4.Internet.g_node in
  ignore (Internet.connect t p h1.Internet.h_node g1.Internet.g_node);
  ignore (Internet.connect t p h3.Internet.h_node g3.Internet.g_node);
  Internet.start t;
  { t; h1; h3; g1; g2; g3; g4; l12; l23; l34; l14 }

let ping_works s =
  let before =
    let samples =
      Internet.ping s.t ~from:s.h1
        (Internet.addr_of s.t s.h3.Internet.h_node)
        ~count:5 ~interval_us:100_000
    in
    Internet.run_for s.t 3.0;
    Stdext.Stats.Samples.count samples
  in
  before = 5

let test_dv_converges () =
  let s = square Internet.Distance_vector in
  Internet.run_for s.t 8.0;
  check Alcotest.bool "h1 can reach h3" true (ping_works s)

let test_dv_reroutes_after_failure () =
  let s = square Internet.Distance_vector in
  Internet.run_for s.t 8.0;
  check Alcotest.bool "initially reachable" true (ping_works s);
  (* Cut both links of one of the two paths; the other must take over. *)
  Internet.fail_link s.t s.l12;
  Internet.run_for s.t 8.0;
  check Alcotest.bool "reachable after l12 cut" true (ping_works s);
  (* Heal and cut the other side. *)
  Internet.heal_link s.t s.l12;
  Internet.run_for s.t 8.0;
  Internet.fail_link s.t s.l34;
  Internet.fail_link s.t s.l14;
  Internet.run_for s.t 8.0;
  check Alcotest.bool "reachable via g2 only" true (ping_works s)

let test_dv_partition_is_unreachable () =
  let s = square Internet.Distance_vector in
  Internet.run_for s.t 8.0;
  (* Isolate g3/h3 completely. *)
  Internet.fail_link s.t s.l23;
  Internet.fail_link s.t s.l34;
  Internet.run_for s.t 12.0;
  check Alcotest.bool "partition unreachable" false (ping_works s);
  (* Heal: reachability returns (the network "survives" the repair too). *)
  Internet.heal_link s.t s.l23;
  Internet.run_for s.t 12.0;
  check Alcotest.bool "healed" true (ping_works s)

let test_dv_stats_move () =
  let s = square Internet.Distance_vector in
  Internet.run_for s.t 5.0;
  match s.g1.Internet.g_dv with
  | None -> Alcotest.fail "dv not running"
  | Some dv ->
      let st = Routing.Dv.stats dv in
      check Alcotest.bool "updates sent" true (st.Routing.Dv.updates_sent > 0);
      check Alcotest.bool "updates received" true
        (st.Routing.Dv.updates_received > 0);
      (* g1 should know h3's subnet at distance 3 hops (g1->g2->g3 plus
         the stub link) or equivalent. *)
      check Alcotest.bool "rib populated" true (Routing.Dv.rib_size dv >= 6)

let test_ls_converges () =
  let s = square Internet.Link_state in
  Internet.run_for s.t 8.0;
  check Alcotest.bool "h1 can reach h3" true (ping_works s)

let test_ls_reroutes_after_failure () =
  let s = square Internet.Link_state in
  Internet.run_for s.t 8.0;
  check Alcotest.bool "initially reachable" true (ping_works s);
  Internet.fail_link s.t s.l12;
  Internet.run_for s.t 8.0;
  check Alcotest.bool "reachable after cut" true (ping_works s)

let test_ls_lsdb_and_reachability () =
  let s = square Internet.Link_state in
  Internet.run_for s.t 8.0;
  match (s.g1.Internet.g_ls, s.g3.Internet.g_ls) with
  | Some ls1, Some ls3 ->
      check Alcotest.int "full lsdb" 4 (Routing.Ls.lsdb_size ls1);
      check Alcotest.bool "g1 sees g3" true
        (Routing.Ls.reachable ls1 (Routing.Ls.router_id ls3));
      let st = Routing.Ls.stats ls1 in
      check Alcotest.bool "hellos" true (st.Routing.Ls.hellos_sent > 0);
      check Alcotest.bool "floods" true (st.Routing.Ls.lsas_flooded > 0);
      check Alcotest.bool "spf ran" true (st.Routing.Ls.spf_runs > 0)
  | _ -> Alcotest.fail "ls not running"

let test_ls_adjacency_death_detected () =
  let s = square Internet.Link_state in
  Internet.run_for s.t 8.0;
  (match s.g1.Internet.g_ls with
  | Some ls1 ->
      check Alcotest.bool "g2 reachable" true
        (match s.g2.Internet.g_ls with
        | Some ls2 -> Routing.Ls.reachable ls1 (Routing.Ls.router_id ls2)
        | None -> false)
  | None -> Alcotest.fail "no ls");
  (* Kill g2 entirely: g1 must eventually drop it from the tree. *)
  Internet.crash_node s.t s.g2.Internet.g_node;
  Internet.run_for s.t 10.0;
  match (s.g1.Internet.g_ls, s.g2.Internet.g_ls) with
  | Some ls1, Some ls2 ->
      check Alcotest.bool "dead neighbor dropped" false
        (Routing.Ls.reachable ls1 (Routing.Ls.router_id ls2))
  | _ -> Alcotest.fail "no ls"

let test_static_mode_baseline () =
  (* The same square with god-view routes must work immediately. *)
  let s = square Internet.Static in
  check Alcotest.bool "static reachable" true (ping_works s)

let test_static_recompute_after_failure () =
  let s = square Internet.Static in
  Internet.fail_link s.t s.l12;
  Internet.recompute_static s.t;
  check Alcotest.bool "rerouted by recompute" true (ping_works s)


(* --- Redistribution: DV domain <-> LS domain -------------------------------- *)

let test_redistribution_bridges_protocols () =
  (* hA - a1 ==DV== border ==LS== b2 - hB : domain A runs distance-vector,
     domain B runs link-state, and the border gateway runs both plus the
     redistributor.  Hosts in either domain must reach each other. *)
  let eng = Engine.create () in
  let net = Netsim.create ~seed:91 eng in
  let mk = Netsim.add_node net in
  let ha = mk "hA" and a1 = mk "a1" and border = mk "border" in
  let b2 = mk "b2" and hb = mk "hB" in
  let p = Netsim.profile "leg" ~delay_us:2_000 in
  let link = Netsim.add_link net p in
  let l_ha = link ha a1 in
  let l_a1b = link a1 border in
  let l_bb2 = link border b2 in
  let l_hb = link b2 hb in
  let stacks = Hashtbl.create 8 in
  let stack node ~forwarding =
    match Hashtbl.find_opt stacks node with
    | Some s -> s
    | None ->
        let s = Ip.Stack.create ~forwarding net node in
        Hashtbl.add stacks node s;
        s
  in
  let addr_of_link l side = Addr.v 10 9 (l + 1) (side + 1) in
  let configure l ~fwd_a ~fwd_b =
    let (na, ia), (nb, ib) = Netsim.endpoints net l in
    Ip.Stack.configure_iface (stack na ~forwarding:fwd_a) ia
      ~addr:(addr_of_link l 0) ~prefix_len:24;
    Ip.Stack.configure_iface (stack nb ~forwarding:fwd_b) ib
      ~addr:(addr_of_link l 1) ~prefix_len:24
  in
  configure l_ha ~fwd_a:false ~fwd_b:true;
  configure l_a1b ~fwd_a:true ~fwd_b:true;
  configure l_bb2 ~fwd_a:true ~fwd_b:true;
  configure l_hb ~fwd_a:true ~fwd_b:false;
  (* Host default routes. *)
  Ip.Route_table.add
    (Ip.Stack.table (stack ha ~forwarding:false))
    { Ip.Route_table.prefix = Prefix.default; iface = 0;
      next_hop = Some (addr_of_link l_ha 1); metric = 1 };
  Ip.Route_table.add
    (Ip.Stack.table (stack hb ~forwarding:false))
    { Ip.Route_table.prefix = Prefix.default; iface = 0;
      next_hop = Some (addr_of_link l_hb 0); metric = 1 };
  let fast_dv =
    { Routing.Dv.default_config with Routing.Dv.period_us = 500_000;
      timeout_us = 2_000_000; gc_us = 1_000_000; carrier_poll_us = 200_000 }
  in
  let fast_ls =
    { Routing.Ls.default_config with Routing.Ls.hello_us = 200_000;
      refresh_us = 2_000_000 }
  in
  (* a1: DV only, neighbor = border. *)
  let a1_dv = Routing.Dv.create ~config:fast_dv (Udp.create (stack a1 ~forwarding:true)) in
  Routing.Dv.add_neighbor a1_dv 1 (addr_of_link l_a1b 1);
  Routing.Dv.start a1_dv;
  (* b2: LS only, neighbor = border. *)
  let b2_ls = Routing.Ls.create ~config:fast_ls (Udp.create (stack b2 ~forwarding:true)) in
  Routing.Ls.add_neighbor b2_ls 0 (addr_of_link l_bb2 0) ~cost:1;
  Routing.Ls.start b2_ls;
  (* border: both protocols plus the redistributor. *)
  let border_udp = Udp.create (stack border ~forwarding:true) in
  let border_dv = Routing.Dv.create ~config:fast_dv border_udp in
  Routing.Dv.add_neighbor border_dv 0 (addr_of_link l_a1b 0);
  Routing.Dv.start border_dv;
  let border_ls = Routing.Ls.create ~config:fast_ls border_udp in
  Routing.Ls.add_neighbor border_ls 1 (addr_of_link l_bb2 1) ~cost:1;
  Routing.Ls.start border_ls;
  let redist =
    Routing.Redistribute.create ~period_us:500_000 eng ~dv:border_dv
      ~ls:border_ls
  in
  (* Let everything converge, then ping across the protocol boundary. *)
  Engine.run ~until:(Engine.sec 8.0) eng;
  check Alcotest.bool "redistribution ran" true
    (Routing.Redistribute.exchanges redist > 2);
  let got = ref 0 in
  Ip.Stack.set_echo_reply_handler
    (stack ha ~forwarding:false)
    (fun ~id:_ ~seq:_ ~payload:_ -> incr got);
  for i = 0 to 4 do
    Engine.after eng (i * 100_000) (fun () ->
        Ip.Stack.send_echo_request
          (stack ha ~forwarding:false)
          ~dst:(addr_of_link l_hb 1) ~id:2 ~seq:i
          ~payload:(Bytes.make 8 'x'))
  done;
  Engine.run ~until:(Engine.sec 12.0) eng;
  check Alcotest.int "cross-protocol pings answered" 5 !got


let test_dv_inject_withdraw () =
  (* Injected externals are advertised to neighbors but never displace or
     expire like learned routes; withdraw removes them. *)
  let s = square Internet.Distance_vector in
  Internet.run_for s.t 4.0;
  let dv1 = Option.get s.g1.Internet.g_dv in
  let dv3 = Option.get s.g3.Internet.g_dv in
  let external_prefix = Prefix.of_string "192.168.77.0/24" in
  Routing.Dv.inject dv1 external_prefix ~metric:2;
  Internet.run_for s.t 5.0;
  (* g3, two hops away, must have learned it. *)
  (match Routing.Dv.metric_of dv3 external_prefix with
  | Some m -> check Alcotest.bool "propagated with distance" true (m > 2 && m < 16)
  | None -> Alcotest.fail "external not propagated");
  check Alcotest.bool "installed at g3" true
    (Ip.Route_table.lookup (Ip.Stack.table s.g3.Internet.g_ip)
       (Addr.of_string "192.168.77.9")
    <> None);
  (* Externals are excluded from the exportable set. *)
  check Alcotest.bool "not re-exported" true
    (not
       (List.exists
          (fun (p, _) -> Prefix.equal p external_prefix)
          (Routing.Dv.routes dv1)));
  Routing.Dv.withdraw dv1 external_prefix;
  Internet.run_for s.t 10.0;
  check Alcotest.bool "withdrawn everywhere" true
    (match Routing.Dv.metric_of dv3 external_prefix with
    | None -> true
    | Some m -> m >= 16)

(* --- failure-path regressions (the E16 gauntlet's bug harvest) ------------- *)

let test_dv_withdraw_advertises_poison () =
  (* Withdrawing an injected external must *advertise* the loss (poison +
     triggered update), not silently drop it: neighbors would otherwise
     serve the dead route until their own timeout (3.5 s here, 17.5 s at
     default timers) expired it. *)
  let s = square Internet.Distance_vector in
  Internet.run_for s.t 4.0;
  let dv1 = Option.get s.g1.Internet.g_dv in
  let dv3 = Option.get s.g3.Internet.g_dv in
  let p = Prefix.of_string "192.168.88.0/24" in
  Routing.Dv.inject dv1 p ~metric:2;
  Internet.run_for s.t 5.0;
  (match Routing.Dv.metric_of dv3 p with
  | Some m when m < 16 -> ()
  | Some _ | None -> Alcotest.fail "external not propagated");
  Routing.Dv.withdraw dv1 p;
  (* One second is a couple of triggered-update round trips — far less
     than g3's route timeout, so only the poison can explain the loss
     arriving this fast. *)
  Internet.run_for s.t 1.0;
  check Alcotest.bool "poison reached g3 before any timeout could" true
    (match Routing.Dv.metric_of dv3 p with
    | None -> true
    | Some m -> m >= 16);
  (* The GC path then reclaims the poisoned entry at the origin. *)
  Internet.run_for s.t 4.0;
  check Alcotest.bool "gc removed the withdrawn entry" true
    (Routing.Dv.metric_of dv1 p = None)

let test_dv_parallel_links_no_alias () =
  (* Two routers joined by two parallel links, and r2 presents the same
     source address on both (think: updates sourced from a router id).
     r1's adjacencies differ only by interface, so identifying the next
     hop by address alone aliases both onto one neighbor — after the
     first link dies, updates arriving on the second keep being credited
     to (and installed out of) the dead interface. *)
  let eng = Engine.create () in
  let net = Netsim.create ~seed:23 eng in
  let r1 = Netsim.add_node net "r1" and r2 = Netsim.add_node net "r2" in
  let p = Netsim.profile "pair" ~delay_us:2_000 in
  let link_a = Netsim.add_link net p r1 r2 in
  let _link_b = Netsim.add_link net p r1 r2 in
  let s1 = Ip.Stack.create ~forwarding:true net r1 in
  let s2 = Ip.Stack.create ~forwarding:true net r2 in
  (* Link A: 10.1.1.0/24.  Link B: 10.1.2.0/24 on r1's side, while r2
     reuses its link-A address there (so updates from either interface
     carry the same source). *)
  Ip.Stack.configure_iface s1 0 ~addr:(Addr.v 10 1 1 1) ~prefix_len:24;
  Ip.Stack.configure_iface s1 1 ~addr:(Addr.v 10 1 2 1) ~prefix_len:24;
  Ip.Stack.configure_iface s2 0 ~addr:(Addr.v 10 1 1 2) ~prefix_len:24;
  Ip.Stack.configure_iface s2 1 ~addr:(Addr.v 10 1 1 2) ~prefix_len:32;
  Ip.Route_table.add (Ip.Stack.table s2)
    { Ip.Route_table.prefix = Prefix.of_string "10.1.2.0/24"; iface = 1;
      next_hop = None; metric = 0 };
  let fast =
    { Routing.Dv.default_config with Routing.Dv.period_us = 500_000;
      timeout_us = 2_000_000; gc_us = 1_000_000; carrier_poll_us = 200_000 }
  in
  let dv1 = Routing.Dv.create ~config:fast (Udp.create s1) in
  (* Declaration order makes the link-A adjacency the preferred match
     while both links are up. *)
  Routing.Dv.add_neighbor dv1 1 (Addr.v 10 1 1 2);
  Routing.Dv.add_neighbor dv1 0 (Addr.v 10 1 1 2);
  let dv2 = Routing.Dv.create ~config:fast (Udp.create s2) in
  Routing.Dv.add_neighbor dv2 0 (Addr.v 10 1 1 1);
  Routing.Dv.add_neighbor dv2 1 (Addr.v 10 1 2 1);
  Routing.Dv.start dv1;
  Routing.Dv.start dv2;
  (* A stub prefix only r2 can reach. *)
  let stub = Prefix.of_string "10.9.9.0/24" in
  Routing.Dv.inject dv2 stub ~metric:1;
  Engine.run ~until:(Engine.sec 3.0) eng;
  (match Ip.Route_table.lookup (Ip.Stack.table s1) (Addr.v 10 9 9 1) with
  | Some r -> check Alcotest.int "initially via link A" 0 r.Ip.Route_table.iface
  | None -> Alcotest.fail "stub not learned");
  (* Kill link A.  Updates keep arriving over link B; they must be
     credited to the (iface 1, addr) adjacency and the route re-homed
     there — not bounced forever between carrier-poison and
     reinstallation on the dead interface. *)
  Netsim.set_link_up net link_a false;
  Engine.run ~until:(Engine.sec 6.0) eng;
  (match Ip.Route_table.lookup (Ip.Stack.table s1) (Addr.v 10 9 9 1) with
  | Some r -> check Alcotest.int "re-homed to link B" 1 r.Ip.Route_table.iface
  | None -> Alcotest.fail "stub lost after parallel-link failover");
  check Alcotest.bool "metric stays finite" true
    (match Routing.Dv.metric_of dv1 stub with
    | Some m -> m < 16
    | None -> false)

let test_dv_late_interface_advertised () =
  (* A subnet attached after [start] must still be advertised: connected
     prefixes are re-synced every periodic tick, not seeded once. *)
  let s = square Internet.Distance_vector in
  Internet.run_for s.t 4.0;
  let hn = Internet.add_host s.t "hN" in
  let p = Netsim.profile "core" ~delay_us:2_000 in
  ignore (Internet.connect s.t p hn.Internet.h_node s.g4.Internet.g_node);
  Internet.run_for s.t 4.0;
  let prefix =
    Prefix.make (Internet.addr_of s.t hn.Internet.h_node) 24
  in
  let dv1 = Option.get s.g1.Internet.g_dv in
  (match Routing.Dv.metric_of dv1 prefix with
  | Some m when m < 16 -> ()
  | Some _ | None -> Alcotest.fail "late subnet never advertised");
  (* And the loss of a connected prefix is advertised as a poison, not
     left for neighbors to time out. *)
  Ip.Route_table.remove (Ip.Stack.table s.g4.Internet.g_ip) prefix;
  Internet.run_for s.t 3.0;
  check Alcotest.bool "vanished connected prefix poisoned" true
    (match Routing.Dv.metric_of dv1 prefix with
    | None -> true
    | Some m -> m >= 16)

let test_dv_carrier_poisons_have_own_stat () =
  (* Carrier-driven poisons are a different failure mode from expiry and
     must not inflate [routes_expired]; nor may the 200 ms poll re-count
     the same dead routes every tick. *)
  let s = square Internet.Distance_vector in
  Internet.run_for s.t 8.0;
  let st = Routing.Dv.stats (Option.get s.g1.Internet.g_dv) in
  check Alcotest.int "no carrier poisons while healthy" 0
    st.Routing.Dv.routes_carrier_poisoned;
  let expired_before = st.Routing.Dv.routes_expired in
  Internet.fail_link s.t s.l12;
  Internet.run_for s.t 1.0;
  let after_cut = st.Routing.Dv.routes_carrier_poisoned in
  check Alcotest.bool "carrier loss counted in its own stat" true
    (after_cut > 0);
  check Alcotest.int "expiry stat untouched by carrier loss" expired_before
    st.Routing.Dv.routes_expired;
  (* The link stays down for 15 more polls: the count must not move. *)
  Internet.run_for s.t 3.0;
  check Alcotest.int "poison idempotent across polls" after_cut
    st.Routing.Dv.routes_carrier_poisoned

let test_dv_count_to_infinity_bounded () =
  (* Isolate h3's gateway completely.  Split horizon with poisoned
     reverse must drive the dead prefix to infinity in a few triggered
     updates; counting up one hop per 1 s period would need well over
     ten seconds to hit 16. *)
  let s = square Internet.Distance_vector in
  Internet.run_for s.t 8.0;
  let dv1 = Option.get s.g1.Internet.g_dv in
  let h3_prefix =
    Prefix.make (Internet.addr_of s.t s.h3.Internet.h_node) 24
  in
  (match Routing.Dv.metric_of dv1 h3_prefix with
  | Some m when m < 16 -> ()
  | Some _ | None -> Alcotest.fail "not converged before the cut");
  Internet.fail_link s.t s.l23;
  Internet.fail_link s.t s.l34;
  Internet.run_for s.t 5.0;
  check Alcotest.bool "unreachability learned in bounded time" true
    (match Routing.Dv.metric_of dv1 h3_prefix with
    | None -> true
    | Some m -> m >= 16)

let () =
  Alcotest.run "routing"
    [
      ( "messages",
        [
          Alcotest.test_case "dv roundtrip" `Quick test_dv_update_roundtrip;
          Alcotest.test_case "hello roundtrip" `Quick test_hello_roundtrip;
          Alcotest.test_case "lsa roundtrip" `Quick test_lsa_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
          qcheck prop_dv_roundtrip;
        ] );
      ( "distance-vector",
        [
          Alcotest.test_case "converges" `Quick test_dv_converges;
          Alcotest.test_case "reroutes" `Quick test_dv_reroutes_after_failure;
          Alcotest.test_case "partition" `Quick test_dv_partition_is_unreachable;
          Alcotest.test_case "stats" `Quick test_dv_stats_move;
          Alcotest.test_case "withdraw poisons" `Quick
            test_dv_withdraw_advertises_poison;
          Alcotest.test_case "parallel links" `Quick
            test_dv_parallel_links_no_alias;
          Alcotest.test_case "late interface" `Quick
            test_dv_late_interface_advertised;
          Alcotest.test_case "carrier stat" `Quick
            test_dv_carrier_poisons_have_own_stat;
          Alcotest.test_case "count to infinity" `Quick
            test_dv_count_to_infinity_bounded;
        ] );
      ( "link-state",
        [
          Alcotest.test_case "converges" `Quick test_ls_converges;
          Alcotest.test_case "reroutes" `Quick test_ls_reroutes_after_failure;
          Alcotest.test_case "lsdb" `Quick test_ls_lsdb_and_reachability;
          Alcotest.test_case "adjacency death" `Quick test_ls_adjacency_death_detected;
        ] );
      ( "redistribution",
        [
          Alcotest.test_case "dv<->ls bridge" `Quick
            test_redistribution_bridges_protocols;
          Alcotest.test_case "inject/withdraw" `Quick test_dv_inject_withdraw;
        ] );
      ( "static",
        [
          Alcotest.test_case "baseline" `Quick test_static_mode_baseline;
          Alcotest.test_case "recompute" `Quick test_static_recompute_after_failure;
        ] );
    ]
