(* Variety of networks (the paper's goal #3): the "catenet" idea.

   One path crosses five wildly different network technologies — from a
   100 Mb/s LAN through a 1006-byte-MTU ARPANET trunk, a satellite hop
   with a quarter-second of latency, a lossy packet-radio segment, and a
   9.6 kb/s serial line.  The internet layer absorbs every difference:
   fragmentation handles the small MTUs, TCP's RTT estimation absorbs the
   satellite, retransmission covers the radio losses.

   Run with: dune exec examples/internetwork_tour.exe

   Observability (DESIGN.md §observability):
     --trace        record lifecycle events; print a drop post-mortem and
                    the last few events at the end
     --pcap=FILE    capture every link's frames to FILE (classic pcap,
                    LINKTYPE_RAW — opens in tcpdump/wireshark) *)

open Catenet

let () =
  let want_trace = ref false and pcap_file = ref None in
  Array.iter
    (fun a ->
      if a = "--trace" then want_trace := true
      else if String.length a > 7 && String.sub a 0 7 = "--pcap=" then
        pcap_file := Some (String.sub a 7 (String.length a - 7)))
    Sys.argv;
  if !want_trace then Trace.enable ();
  let net = Internet.create ~routing:Internet.Static () in
  let src = Internet.add_host net "src" in
  let dst = Internet.add_host net "dst" in
  let gws =
    List.map (fun i -> Internet.add_gateway net (Printf.sprintf "g%d" i))
      [ 1; 2; 3; 4 ]
  in
  let profiles =
    [
      Netsim.Profiles.fast_lan;
      Netsim.Profiles.arpanet_trunk;
      Netsim.Profiles.satellite;
      Netsim.Profiles.packet_radio;
      Netsim.Profiles.serial_9600;
    ]
  in
  (* Chain: src -[lan]- g1 -[arpanet]- g2 -[satellite]- g3 -[radio]- g4
     -[serial]- dst. *)
  let nodes =
    [ src.Internet.h_node ]
    @ List.map (fun g -> g.Internet.g_node) gws
    @ [ dst.Internet.h_node ]
  in
  let rec wire nodes profiles =
    match (nodes, profiles) with
    | a :: (b :: _ as rest), p :: ps ->
        ignore (Internet.connect net p a b);
        wire rest ps
    | _ -> ()
  in
  wire nodes profiles;
  Internet.start net;
  let capture =
    match !pcap_file with
    | Some _ -> Some (Internet.pcap_all_links net)
    | None -> None
  in

  print_endline "the path:";
  List.iteri
    (fun i (p : Netsim.profile) ->
      Printf.printf "  hop %d: %-14s %8.1f kb/s  %6.1f ms  mtu %4d  loss %.0f%%\n"
        (i + 1) p.Netsim.name
        (float_of_int p.Netsim.bandwidth_bps /. 1e3)
        (float_of_int p.Netsim.delay_us /. 1e3)
        p.Netsim.mtu (p.Netsim.loss *. 100.0))
    profiles;
  print_endline "";

  (* Ping first. *)
  let pings =
    Internet.ping net ~from:src
      (Internet.addr_of net dst.Internet.h_node)
      ~count:5 ~interval_us:500_000
  in
  Internet.run_for net 10.0;
  Printf.printf "ping across all five networks: %d/5 replies, median rtt %.0f ms\n"
    (Stdext.Stats.Samples.count pings)
    (Stdext.Stats.Samples.median pings *. 1e3);

  (* Then a TCP transfer: 1460-byte segments must fragment for the
     1006-byte and 254-byte MTUs. *)
  let seed = 11 in
  let total = 100_000 in
  let server = Apps.Bulk.serve dst.Internet.h_tcp ~port:20 ~seed in
  let sender =
    Apps.Bulk.start src.Internet.h_tcp
      ~dst:(Internet.addr_of net dst.Internet.h_node)
      ~dst_port:20 ~seed ~total ()
  in
  Internet.run_for net 600.0;
  (match Apps.Bulk.transfers server with
  | [ tr ] ->
      Printf.printf "tcp transfer: %d/%d bytes, intact=%b\n"
        tr.Apps.Bulk.received total tr.Apps.Bulk.intact
  | _ -> print_endline "unexpected transfer count");
  (match Apps.Bulk.goodput_bps sender with
  | Some bps ->
      Printf.printf "goodput %.2f kB/s (the 9.6 kb/s serial line is the law)\n"
        (bps /. 1e3)
  | None -> print_endline "transfer incomplete");

  (* Show the fragmentation that made it possible. *)
  List.iter
    (fun g ->
      let c = Ip.Stack.counters g.Internet.g_ip in
      if c.Ip.Stack.fragments_made > 0 then
        Printf.printf "gateway %s fragmented: %d fragments emitted\n"
          (Netsim.node_name (Internet.net net) g.Internet.g_node)
          c.Ip.Stack.fragments_made)
    gws;
  let st = Tcp.stats (Apps.Bulk.conn sender) in
  Printf.printf "radio-hop losses repaired end-to-end: %d retransmits\n"
    st.Tcp.retransmits;
  (match Tcp.srtt_us (Apps.Bulk.conn sender) with
  | Some us ->
      Printf.printf "tcp settled on srtt = %.0f ms without being told about \
                     the satellite\n"
        (float_of_int us /. 1e3)
  | None -> ());

  (match (capture, !pcap_file) with
  | Some p, Some file ->
      Trace.Pcap.write_file file p;
      Printf.printf "\nwrote %d frames (%d bytes) to %s — try: tcpdump -r %s\n"
        (Trace.Pcap.packet_count p) (Trace.Pcap.byte_length p) file file
  | _ -> ());
  if !want_trace then begin
    Printf.printf "\nflight recorder: %d events recorded, %d held\n"
      (Trace.emitted ()) (Trace.length ());
    let drops = Trace.drops () in
    Printf.printf "drop post-mortem (%d drops):\n" (List.length drops);
    let by_reason = Hashtbl.create 8 in
    List.iter
      (fun (e : Trace.entry) ->
        match Trace.Event.drop_reason_of e.event with
        | Some r ->
            Hashtbl.replace by_reason r
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_reason r))
        | None -> ())
      drops;
    Hashtbl.iter
      (fun r n ->
        Printf.printf "  %-20s %d\n" (Trace.Event.drop_reason_to_string r) n)
      by_reason;
    print_endline "last events:";
    let tail =
      let es = Trace.entries () in
      let n = List.length es in
      List.filteri (fun i _ -> i >= n - 5) es
    in
    List.iter (fun e -> Format.printf "  %a@." Trace.pp_entry e) tail
  end
