(* E16 — The survivability gauntlet (Clark §3, goal 1, end to end).

   E1 cuts links; E2 crashes one gateway.  This experiment runs the full
   chaos repertoire against one catenet — a scheduled flap, a gateway
   crash/reboot with soft-state amnesia, a clean partition and heal, and
   a seeded storm of randomized flaps — while two TCP conversations
   cross the mesh in opposite directions, and measures what the
   architecture promises:

   - the control plane re-converges after every fault (time-to-
     reconvergence per fault, via the Chaos.Observer god's-eye walk);
   - the datagrams black-holed while it does are bounded and visible;
   - the conversations survive everything (fate-sharing: the crash
     erases the gateway's RIB, route cache and reassembly buffers, and
     the transfer still completes intact);
   - the whole gauntlet is deterministic: the same seed produces the
     same schedule, the same fault event trace and the same fault
     records, bit for bit — checked here by running it twice and
     comparing digests.

   Results go to stdout and BENCH_survivability.json; bin/check.sh
   gates on the committed artifact. *)

open Catenet

let full_bytes = 3_000_000
let storm_seed = 1988
let required_survival_pct = 100.0
let reconvergence_budget_s = 12.0

(* E1's ring-plus-chords: six gateways, chords (0,3) (1,4) (2,5); h1 on
   g0, h2 on g3.  Connected even under any single cut in the gauntlet's
   scripted phase. *)
let edges =
  [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0); (0, 3); (1, 4); (2, 5) ]

let profile = Netsim.profile "trunk" ~bandwidth_bps:1_536_000 ~delay_us:5_000

let dv_config =
  {
    Routing.Dv.default_config with
    Routing.Dv.period_us = 1_000_000;
    timeout_us = 3_500_000;
    gc_us = 2_000_000;
    carrier_poll_us = 200_000;
  }

type outcome = {
  o_schedule_digest : string;
  o_run_digest : string;
  o_records : Chaos.Observer.record list;
  o_survived : int;
  o_transfers : int;
  o_goodputs : float option list;
  o_blackholed : int;
  o_fault_events : int;
  o_soft_resets : int;
}

let sec = Engine.sec

let run_gauntlet ~total =
  (* Fault events only: the digest must cover exactly the gauntlet's
     footprint, not the (much larger) data-plane event stream. *)
  Trace.clear ();
  Trace.enable ~capacity:8192 ~mask:Trace.Cls.fault ();
  let t = Internet.create ~seed:7 ~routing:Internet.Distance_vector ~dv_config () in
  let gws =
    Array.init 6 (fun i -> Internet.add_gateway t (Printf.sprintf "g%d" i))
  in
  let h1 = Internet.add_host t "h1" in
  let h2 = Internet.add_host t "h2" in
  let links =
    List.map
      (fun (a, b) ->
        ( (a, b),
          Internet.connect t profile gws.(a).Internet.g_node
            gws.(b).Internet.g_node ))
      edges
  in
  ignore (Internet.connect t profile h1.Internet.h_node gws.(0).Internet.g_node);
  ignore (Internet.connect t profile h2.Internet.h_node gws.(3).Internet.g_node);
  Internet.start t;
  (* Let DV converge before the shaking starts. *)
  Internet.run_for t 6.0;

  let link e = List.assoc e links in
  let schedule =
    Chaos.Schedule.merge
      [
        (* One clean flap of the h1-side chord. *)
        Chaos.Schedule.link_flap ~link:(link (0, 3)) ~at_us:(sec 8.0)
          ~down_us:(sec 3.0);
        (* Crash h2's own first-hop gateway: its RIB, route cache and
           reassembly buffers are erased; reboot four seconds later.
           The TCP conversations must not notice beyond a stall. *)
        Chaos.Schedule.node_outage ~node:gws.(3).Internet.g_node
          ~at_us:(sec 14.0) ~down_us:(sec 4.0);
        (* Sever every edge into g3: a true partition until the heal. *)
        Chaos.Schedule.partition
          ~links:[ link (2, 3); link (3, 4); link (0, 3) ]
          ~at_us:(sec 21.0) ~heal_after_us:(sec 3.0);
        (* Seeded storm of randomized flaps across the whole mesh. *)
        Chaos.Schedule.flap_storm ~seed:storm_seed
          ~links:(List.map snd links) ~start_us:(sec 27.0)
          ~duration_us:(sec 6.0) ~mean_gap_us:600_000
          ~max_down_us:1_000_000;
      ]
  in
  let stacks =
    h1.Internet.h_ip :: h2.Internet.h_ip
    :: Array.to_list (Array.map (fun g -> g.Internet.g_ip) gws)
  in
  let stack_of node =
    List.find_opt (fun s -> Ip.Stack.node_id s = node) stacks
  in
  let observer =
    Chaos.Observer.create ~net:(Internet.net t) ~stacks ~stack_of
      ~probes:
        [ (h1.Internet.h_ip, Internet.addr_of t h2.Internet.h_node);
          (h2.Internet.h_ip, Internet.addr_of t h1.Internet.h_node) ]
      ()
  in
  Chaos.Observer.start observer;
  Chaos.inject ~observer (Internet.chaos_env t) schedule;

  (* Two conversations crossing the gauntlet in opposite directions. *)
  let pairs = [ (h1, h2, 4001); (h2, h1, 4002) ] in
  let runs =
    List.map
      (fun (src, dst, port) ->
        let server = Apps.Bulk.serve dst.Internet.h_tcp ~port ~seed:17 in
        let sender =
          Apps.Bulk.start src.Internet.h_tcp
            ~dst:(Internet.addr_of t dst.Internet.h_node)
            ~dst_port:port ~seed:17 ~total ()
        in
        (server, sender))
      pairs
  in
  (* Ride out the whole schedule, then run until both transfers finish
     (bounded: RTO backoff after the partition can stall for a while). *)
  Internet.run_for t 45.0;
  let deadline = sec 240.0 in
  while
    (not (List.for_all (fun (_, s) -> Apps.Bulk.finished s) runs))
    && Engine.now (Internet.engine t) < deadline
  do
    Internet.run_for t 5.0
  done;
  Chaos.Observer.stop observer;

  let records = Chaos.Observer.records observer in
  let survived =
    List.length
      (List.filter
         (fun (server, sender) ->
           Apps.Bulk.finished sender
           && Apps.Bulk.failed sender = None
           &&
           match Apps.Bulk.transfers server with
           | [ tr ] -> tr.Apps.Bulk.intact && tr.Apps.Bulk.received = total
           | _ -> false)
         runs)
  in
  let goodputs = List.map (fun (_, s) -> Apps.Bulk.goodput_bps s) runs in
  let fault_events = ref 0 and soft_resets = ref 0 in
  let trace_lines =
    List.map
      (fun (e : Trace.entry) ->
        incr fault_events;
        (match e.event with
        | Trace.Event.Fault_soft_reset _ -> incr soft_resets
        | _ -> ());
        Printf.sprintf "%d %s" e.t_us
          (Format.asprintf "%a" Trace.Event.pp e.event))
      (Trace.entries ())
  in
  Trace.disable ();
  Trace.clear ();
  let record_lines =
    List.map
      (fun (r : Chaos.Observer.record) ->
        Printf.sprintf "%s@%d conv=%s bh=%d"
          (Chaos.Fault.to_string r.fault)
          r.at_us
          (match r.reconverged_at_us with
          | Some v -> string_of_int v
          | None -> "never")
          r.blackholed)
      records
  in
  let run_digest =
    Digest.to_hex
      (Digest.string
         (String.concat "\n"
            ((Chaos.Schedule.to_string schedule :: trace_lines)
            @ record_lines)))
  in
  {
    o_schedule_digest = Chaos.Schedule.digest schedule;
    o_run_digest = run_digest;
    o_records = records;
    o_survived = survived;
    o_transfers = List.length runs;
    o_goodputs = goodputs;
    o_blackholed =
      List.fold_left
        (fun acc (r : Chaos.Observer.record) -> acc + r.blackholed)
        0 records;
    o_fault_events = !fault_events;
    o_soft_resets = !soft_resets;
  }

let run () =
  Util.banner "E16" "survivability gauntlet"
    "every TCP conversation survives flaps, a gateway crash (with soft-state \
     amnesia), a partition and a flap storm; routing re-converges within \
     budget; same seed, same gauntlet, bit for bit";
  let total = Util.scaled full_bytes in
  let a = run_gauntlet ~total in
  let b = run_gauntlet ~total in
  let replay_ok =
    a.o_schedule_digest = b.o_schedule_digest
    && a.o_run_digest = b.o_run_digest
  in
  let reconv_s (r : Chaos.Observer.record) =
    Option.map (fun v -> float_of_int (v - r.at_us) /. 1e6) r.reconverged_at_us
  in
  let worst_reconvergence_s =
    List.fold_left
      (fun acc r ->
        match reconv_s r with
        | Some s -> max acc s
        | None -> infinity (* never re-converged: fail the budget *))
      0.0 a.o_records
  in
  let survival_pct =
    100.0 *. float_of_int a.o_survived /. float_of_int a.o_transfers
  in
  Util.table
    [ "fault"; "at (s)"; "reconverged (s)"; "blackholed" ]
    (List.map
       (fun (r : Chaos.Observer.record) ->
         [ Chaos.Fault.to_string r.fault;
           Printf.sprintf "%.2f" (float_of_int r.at_us /. 1e6);
           (match reconv_s r with
           | Some s -> Printf.sprintf "%.2f" s
           | None -> "never");
           string_of_int r.blackholed ])
       a.o_records);
  Util.note "%d faults injected, %d soft-state resets traced"
    a.o_fault_events a.o_soft_resets;
  Util.note "TCP survival %d/%d; worst reconvergence %.2fs (budget %.1fs)"
    a.o_survived a.o_transfers worst_reconvergence_s reconvergence_budget_s;
  Util.note "replay: %s (schedule %s, run %s)"
    (if replay_ok then "bit-for-bit identical" else "DIVERGED")
    a.o_schedule_digest
    (String.sub a.o_run_digest 0 12);

  let open Trace.Json in
  Util.write_json "BENCH_survivability.json"
    (Obj
       [ ("experiment", Str "E16");
         ("topology", Str "ring+chords, h1@g0, h2@g3, DV routing");
         ("bytes_per_transfer", Int total);
         ("storm_seed", Int storm_seed);
         ("faults", List (List.map Chaos.Observer.record_to_json a.o_records));
         ("fault_events_traced", Int a.o_fault_events);
         ("soft_state_resets", Int a.o_soft_resets);
         ("blackholed_total", Int a.o_blackholed);
         ( "goodputs_bps",
           List
             (List.map
                (function Some g -> Float g | None -> Null)
                a.o_goodputs) );
         ("tcp_survived", Int a.o_survived);
         ("tcp_transfers", Int a.o_transfers);
         ("survival_pct", Float survival_pct);
         ("required_survival_pct", Float required_survival_pct);
         ( "worst_reconvergence_s",
           if Float.is_finite worst_reconvergence_s then
             Float worst_reconvergence_s
           else Null );
         ("reconvergence_budget_s", Float reconvergence_budget_s);
         ("schedule_digest", Str a.o_schedule_digest);
         ("run_digest", Str a.o_run_digest);
         ("replay_ok", Bool replay_ok) ])
