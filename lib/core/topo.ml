module Addr = Packet.Addr
module Prefix = Packet.Addr.Prefix

(* Hierarchical catenet generator: the "regions" architecture of the
   paper's §6 made concrete.

   A seeded transit core (ring plus random chords of point-to-point
   links) carries aggregated routes only: each stub region hangs off one
   core gateway and appears everywhere else in the core as a single /20
   prefix.  Inside a region, the region gateway holds one host route per
   leaf and a default pointing up its transit link.  Leaf hosts are
   pooled ({!Hostpool}): no per-host stack, no per-host closure.

   The resulting forwarding-state shape is the point of E17: a core
   gateway's table size is O(regions + core degree) no matter whether the
   catenet has 10^2 or 10^5 hosts, and with the LPM trie underneath, its
   per-packet lookup cost does not grow either. *)

type config = {
  seed : int;
  core : int;  (* transit gateways, ring-connected *)
  chords : int;  (* extra random core cross-links *)
  regions : int;
  hosts_per_region : int;
  core_profile : Netsim.profile;
  edge_profile : Netsim.profile;  (* region gateway <-> core uplinks *)
  host_profile : Netsim.profile;  (* leaf host <-> region gateway *)
}

let default_config =
  let gig name =
    Netsim.profile name ~bandwidth_bps:1_000_000_000 ~delay_us:1 ~mtu:1500
      ~queue_capacity:4096
  in
  {
    seed = 17;
    core = 8;
    chords = 4;
    regions = 16;
    hosts_per_region = 64;
    core_profile = gig "core";
    edge_profile = gig "edge";
    host_profile = gig "host";
  }

type t = {
  eng : Engine.t;
  net : Netsim.t;
  pool : Hostpool.t;
  core_gw : Ip.Stack.t array;
  region_gw : Ip.Stack.t array;
  host_slot : int array array;  (* region -> index -> pool slot *)
  core_dist : int array array;  (* core gw -> core gw -> hops *)
  extra : int array;  (* region -> full-stack hosts added past the pool *)
  cfg : config;
}

let engine t = t.eng
let net t = t.net
let pool t = t.pool
let core_size t = Array.length t.core_gw
let regions t = Array.length t.region_gw
let hosts_per_region t = t.cfg.hosts_per_region
let core_gw t i = t.core_gw.(i)
let region_gw t r = t.region_gw.(r)
let host_slot t ~region ~index = t.host_slot.(region).(index)
let host_addr t ~region ~index =
  Hostpool.addr t.pool t.host_slot.(region).(index)

(* Region r owns 10.0.0.0/8 carved into /20s: up to 4096 regions of up
   to 4093 hosts. *)
let region_prefix r =
  Prefix.make (Addr.of_int32 (Int32.of_int (0x0A000000 lor (r lsl 12)))) 20

let region_host r i =
  Addr.of_int32 (Int32.of_int (0x0A000000 lor (r lsl 12) lor (2 + i)))

(* The region gateway's in-region address, .1 of the region's /20: the
   one gateway address that is *globally routed* (via the region's
   aggregate), unlike its transit-link /30 addresses.  Services that
   must be reachable from everywhere — the per-region resolver lives
   here — bind to this. *)
let region_gw_addr r =
  Addr.of_int32 (Int32.of_int (0x0A000000 lor (r lsl 12) lor 1))

(* Transit p2p links draw /30s from 172.16.0.0/12. *)
let transit_net k = 0xAC100000 + (4 * k)

let route_entries_total t =
  let sum =
    Array.fold_left
      (fun acc s -> acc + Ip.Route_table.length (Ip.Stack.table s))
      0
  in
  sum t.core_gw + sum t.region_gw

let core_table_max t =
  Array.fold_left
    (fun acc s -> max acc (Ip.Route_table.length (Ip.Stack.table s)))
    0 t.core_gw

let build cfg =
  if cfg.core < 1 then invalid_arg "Topo.build: need at least one core gw";
  if cfg.regions < 1 || cfg.regions > 4096 then
    invalid_arg "Topo.build: regions out of range";
  if cfg.hosts_per_region < 1 || cfg.hosts_per_region > 4093 then
    invalid_arg "Topo.build: hosts_per_region out of range";
  let eng = Engine.create () in
  let net = Netsim.create ~seed:cfg.seed eng in
  let rng = Stdext.Rng.create cfg.seed in
  let next_transit = ref 0 in
  (* --- transit core ---------------------------------------------------- *)
  let core_node = Array.init cfg.core (fun i -> Netsim.add_node net (Printf.sprintf "c%d" i)) in
  let core_gw =
    Array.map (fun n -> Ip.Stack.create ~forwarding:true net n) core_node
  in
  (* adjacency: per core gw, (peer index, my iface, peer's link addr) *)
  let adj = Array.make cfg.core [] in
  let connect_core a b =
    let k = !next_transit in
    incr next_transit;
    let base = transit_net k in
    let a_addr = Addr.of_int32 (Int32.of_int (base + 1)) in
    let b_addr = Addr.of_int32 (Int32.of_int (base + 2)) in
    let l = Netsim.add_link net cfg.core_profile core_node.(a) core_node.(b) in
    let (_, ia), (_, ib) = Netsim.endpoints net l in
    Ip.Stack.configure_iface core_gw.(a) ia ~addr:a_addr ~prefix_len:30;
    Ip.Stack.configure_iface core_gw.(b) ib ~addr:b_addr ~prefix_len:30;
    adj.(a) <- (b, ia, b_addr) :: adj.(a);
    adj.(b) <- (a, ib, a_addr) :: adj.(b)
  in
  if cfg.core = 2 then connect_core 0 1
  else if cfg.core > 2 then
    for i = 0 to cfg.core - 1 do
      connect_core i ((i + 1) mod cfg.core)
    done;
  let linked a b =
    List.exists (fun (p, _, _) -> p = b) adj.(a)
  in
  let chords = ref cfg.chords in
  let attempts = ref (8 * cfg.chords) in
  while !chords > 0 && !attempts > 0 do
    decr attempts;
    let a = Stdext.Rng.int rng cfg.core in
    let b = Stdext.Rng.int rng cfg.core in
    if a <> b && not (linked a b) then begin
      connect_core a b;
      decr chords
    end
  done;
  (* first hop from every core gw toward [dst]: BFS over the core graph *)
  let next_hop_toward dst =
    let hop = Array.make cfg.core None in
    let seen = Array.make cfg.core false in
    let q = Queue.create () in
    seen.(dst) <- true;
    Queue.add dst q;
    while not (Queue.is_empty q) do
      let v = Queue.take q in
      List.iter
        (fun (p, _iface_of_v, _) ->
          if not seen.(p) then begin
            seen.(p) <- true;
            (* p's first hop toward dst is v, via p's own iface on the
               p--v link *)
            (match List.find_opt (fun (q', _, _) -> q' = v) adj.(p) with
            | Some (_, iface, via) -> hop.(p) <- Some (iface, via)
            | None -> ());
            Queue.add p q
          end)
        adj.(v)
    done;
    hop
  in
  (* core hop-count matrix (for nearest-replica selection and the like):
     one BFS per core gateway over the final core graph *)
  let core_dist =
    Array.init cfg.core (fun s ->
        let d = Array.make cfg.core max_int in
        let q = Queue.create () in
        d.(s) <- 0;
        Queue.add s q;
        while not (Queue.is_empty q) do
          let v = Queue.take q in
          List.iter
            (fun (p, _, _) ->
              if d.(p) = max_int then begin
                d.(p) <- d.(v) + 1;
                Queue.add p q
              end)
            adj.(v)
        done;
        d)
  in
  (* --- stub regions ---------------------------------------------------- *)
  let pool = Hostpool.create net in
  let region_gw = Array.make cfg.regions core_gw.(0) in
  let host_slot =
    Array.make_matrix cfg.regions cfg.hosts_per_region (-1)
  in
  for r = 0 to cfg.regions - 1 do
    let attach = r mod cfg.core in
    let gw_node = Netsim.add_node net (Printf.sprintf "r%d" r) in
    let gw = Ip.Stack.create ~forwarding:true net gw_node in
    region_gw.(r) <- gw;
    (* uplink /30 to the attach core gateway *)
    let k = !next_transit in
    incr next_transit;
    let base = transit_net k in
    let core_addr = Addr.of_int32 (Int32.of_int (base + 1)) in
    let gw_addr = Addr.of_int32 (Int32.of_int (base + 2)) in
    let l = Netsim.add_link net cfg.edge_profile core_node.(attach) gw_node in
    let (_, core_if), (_, gw_if) = Netsim.endpoints net l in
    Ip.Stack.configure_iface core_gw.(attach) core_if ~addr:core_addr
      ~prefix_len:30;
    Ip.Stack.configure_iface gw gw_if ~addr:gw_addr ~prefix_len:30;
    Ip.Route_table.add (Ip.Stack.table gw)
      { Ip.Route_table.prefix = Prefix.default; iface = gw_if;
        next_hop = Some core_addr; metric = 1 };
    (* the region appears in the core as ONE aggregated /20: directly at
       the attach gateway, via BFS next hops everywhere else *)
    let prefix = region_prefix r in
    Ip.Route_table.add (Ip.Stack.table core_gw.(attach))
      { Ip.Route_table.prefix; iface = core_if; next_hop = Some gw_addr;
        metric = 1 };
    let hops = next_hop_toward attach in
    for c = 0 to cfg.core - 1 do
      if c <> attach then
        match hops.(c) with
        | Some (iface, via) ->
            Ip.Route_table.add (Ip.Stack.table core_gw.(c))
              { Ip.Route_table.prefix; iface; next_hop = Some via;
                metric = 2 }
        | None -> invalid_arg "Topo.build: core graph is disconnected"
    done;
    (* leaf hosts: pooled state, one host route each at the region gw *)
    for i = 0 to cfg.hosts_per_region - 1 do
      let a = region_host r i in
      let hn = Netsim.add_node net "h" in
      let hl = Netsim.add_link net cfg.host_profile gw_node hn in
      let (_, gw_host_if), (_, host_if) = Netsim.endpoints net hl in
      (* the gateway's routed in-region address (.1/32) rides the first
         leaf link's gateway-side interface — any in-region interface
         would do, the /32 connected route is what matters *)
      if i = 0 then
        Ip.Stack.configure_iface gw gw_host_if ~addr:(region_gw_addr r)
          ~prefix_len:32;
      Ip.Route_table.add (Ip.Stack.table gw)
        { Ip.Route_table.prefix = Prefix.host a; iface = gw_host_if;
          next_hop = None; metric = 0 };
      host_slot.(r).(i) <- Hostpool.attach pool ~node:hn ~iface:host_if ~addr:a
    done
  done;
  { eng; net; pool; core_gw; region_gw; host_slot; core_dist;
    extra = Array.make cfg.regions 0; cfg }

let region_attach t r = r mod Array.length t.core_gw

(* Region-to-region distance in gateway hops: up the uplink, across the
   core, down the far uplink.  Only the ordering matters to anycast
   selection, but the numbers are true hop counts. *)
let region_hops t ra rb =
  if ra = rb then 0
  else 2 + t.core_dist.(region_attach t ra).(region_attach t rb)

(* A full-stack host inside a region, for infrastructure endpoints (name
   servers, service directories) that must speak real UDP: address drawn
   past the pooled range, /32 host route at the region gateway, default
   route up — reachable from everywhere via the region's aggregate. *)
let add_full_host t ~region =
  let r = region in
  if r < 0 || r >= Array.length t.region_gw then
    invalid_arg "Topo.add_full_host: region out of range";
  let idx = t.cfg.hosts_per_region + t.extra.(r) in
  if 2 + idx > 4094 then
    invalid_arg "Topo.add_full_host: region address space exhausted";
  t.extra.(r) <- t.extra.(r) + 1;
  let a = region_host r idx in
  let gw = t.region_gw.(r) in
  let hn = Netsim.add_node t.net "fh" in
  let hl =
    Netsim.add_link t.net t.cfg.host_profile (Ip.Stack.node_id gw) hn
  in
  let (_, gw_if), (_, host_if) = Netsim.endpoints t.net hl in
  let st = Ip.Stack.create t.net hn in
  Ip.Stack.configure_iface st host_if ~addr:a ~prefix_len:32;
  Ip.Route_table.add (Ip.Stack.table st)
    { Ip.Route_table.prefix = Prefix.default; iface = host_if;
      next_hop = None; metric = 0 };
  Ip.Route_table.add (Ip.Stack.table gw)
    { Ip.Route_table.prefix = Prefix.host a; iface = gw_if;
      next_hop = None; metric = 0 };
  (st, a)
