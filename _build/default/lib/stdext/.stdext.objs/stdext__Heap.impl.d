lib/stdext/heap.ml: Array
