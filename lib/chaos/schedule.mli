(** A fault schedule: a time-ordered list of faults to inject.

    Schedules are pure data, built before the simulation runs.  All
    randomness comes from an explicit seed ({!flap_storm}), so the same
    seed always produces the same schedule — {!digest} turns that into a
    checkable replay invariant. *)

type entry = { at_us : int; fault : Fault.t }

type t = entry list
(** Sorted by [at_us]; same-instant entries apply in construction
    order. *)

val scripted : (int * Fault.t) list -> t
(** Build from [(time, fault)] pairs (any order; sorted stably). *)

val link_flap : link:Netsim.link_id -> at_us:int -> down_us:int -> t
(** Cut a link at [at_us], restore it [down_us] later. *)

val node_outage : node:Netsim.node_id -> at_us:int -> down_us:int -> t
(** Crash a node at [at_us], reboot it [down_us] later. *)

val partition : links:Netsim.link_id list -> at_us:int -> heal_after_us:int -> t
(** Cut every listed link at once (severing the mesh if the cut is a
    graph cut), heal them all [heal_after_us] later. *)

val flap_storm :
  seed:int ->
  links:Netsim.link_id list ->
  start_us:int ->
  duration_us:int ->
  mean_gap_us:int ->
  max_down_us:int ->
  t
(** Randomized flaps across [links]: flap starts arrive as a Poisson
    process with mean gap [mean_gap_us], each downtime uniform in
    [1, max_down_us].  Deterministic in [seed]. *)

val merge : t list -> t
(** Interleave several schedules into one (stable by time). *)

val length : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val digest : t -> string
(** MD5 hex over the printed schedule: equal digests mean the same
    faults at the same instants in the same order. *)

val to_json : t -> Trace.Json.t
