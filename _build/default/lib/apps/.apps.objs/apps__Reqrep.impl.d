lib/apps/reqrep.ml: Bytes Engine Ip Stdext Tcp
