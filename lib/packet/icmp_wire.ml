type unreach_code =
  | Net_unreachable
  | Host_unreachable
  | Protocol_unreachable
  | Port_unreachable
  | Fragmentation_needed

let unreach_code_to_int = function
  | Net_unreachable -> 0
  | Host_unreachable -> 1
  | Protocol_unreachable -> 2
  | Port_unreachable -> 3
  | Fragmentation_needed -> 4

let unreach_code_of_int = function
  | 0 -> Some Net_unreachable
  | 1 -> Some Host_unreachable
  | 2 -> Some Protocol_unreachable
  | 3 -> Some Port_unreachable
  | 4 -> Some Fragmentation_needed
  | _ -> None

let pp_unreach_code fmt c =
  Format.pp_print_string fmt
    (match c with
    | Net_unreachable -> "net-unreachable"
    | Host_unreachable -> "host-unreachable"
    | Protocol_unreachable -> "protocol-unreachable"
    | Port_unreachable -> "port-unreachable"
    | Fragmentation_needed -> "fragmentation-needed")

type t =
  | Echo_request of { id : int; seq : int; payload : bytes }
  | Echo_reply of { id : int; seq : int; payload : bytes }
  | Dest_unreachable of { code : unreach_code; original : bytes }
  | Time_exceeded of { original : bytes }

type error = [ `Truncated | `Bad_checksum | `Bad_header of string ]

(* Machine-checked wire contract (see catenet-lint).  The rest-of-header
   word is split id/seq as in echo messages; encode's single u32 write
   spans both, which the linter accepts (whole adjacent fields). *)
let layout : (string * int * int) list =
  [ ("type", 0, 1); ("code", 1, 1); ("checksum", 2, 2); ("id", 4, 2);
    ("seq", 6, 2) ]

let pp_error fmt = function
  | `Truncated -> Format.pp_print_string fmt "truncated ICMP message"
  | `Bad_checksum -> Format.pp_print_string fmt "bad ICMP checksum"
  | `Bad_header m -> Format.fprintf fmt "bad ICMP message: %s" m

let module_w total =
  let w = Stdext.Bytio.W.create total in
  w

let encode t =
  let module W = Stdext.Bytio.W in
  let body ty code rest_u32 extra =
    let w = module_w (8 + Bytes.length extra) in
    W.u8 w ty;
    W.u8 w code;
    W.u16 w 0 (* checksum placeholder *);
    W.u32_of_int w rest_u32;
    W.bytes w extra;
    let buf = W.contents w in
    let csum = Checksum.of_bytes buf ~pos:0 ~len:(Bytes.length buf) in
    Bytes.set_uint16_be buf 2 csum;
    buf
  in
  let echo ty id seq payload =
    if id < 0 || id > 0xffff || seq < 0 || seq > 0xffff then
      invalid_arg "Icmp_wire.encode: echo id/seq out of range";
    body ty 0 ((id lsl 16) lor seq) payload
  in
  match t with
  | Echo_request { id; seq; payload } -> echo 8 id seq payload
  | Echo_reply { id; seq; payload } -> echo 0 id seq payload
  | Dest_unreachable { code; original } ->
      body 3 (unreach_code_to_int code) 0 original
  | Time_exceeded { original } -> body 11 0 0 original

let decode buf =
  let len = Bytes.length buf in
  if len < 8 then Error `Truncated
  else if not (Checksum.valid buf ~pos:0 ~len) then Error `Bad_checksum
  else begin
    let ty = Bytes.get_uint8 buf 0 in
    let code = Bytes.get_uint8 buf 1 in
    let rest = Bytes.sub buf 8 (len - 8) in
    let id = Bytes.get_uint16_be buf 4 and seq = Bytes.get_uint16_be buf 6 in
    match ty with
    | 8 when code = 0 -> Ok (Echo_request { id; seq; payload = rest })
    | 0 when code = 0 -> Ok (Echo_reply { id; seq; payload = rest })
    | 3 -> (
        match unreach_code_of_int code with
        | Some c -> Ok (Dest_unreachable { code = c; original = rest })
        | None -> Error (`Bad_header "unknown unreachable code"))
    | 11 when code = 0 -> Ok (Time_exceeded { original = rest })
    | _ -> Error (`Bad_header (Printf.sprintf "unknown type %d code %d" ty code))
  end

let pp fmt = function
  | Echo_request { id; seq; payload } ->
      Format.fprintf fmt "echo-request id=%d seq=%d len=%d" id seq
        (Bytes.length payload)
  | Echo_reply { id; seq; payload } ->
      Format.fprintf fmt "echo-reply id=%d seq=%d len=%d" id seq
        (Bytes.length payload)
  | Dest_unreachable { code; _ } ->
      Format.fprintf fmt "dest-unreachable (%a)" pp_unreach_code code
  | Time_exceeded _ -> Format.pp_print_string fmt "time-exceeded"

let original_of ~ip_header =
  let keep = min (Bytes.length ip_header) (Ipv4.header_size + 8) in
  Bytes.sub ip_header 0 keep
