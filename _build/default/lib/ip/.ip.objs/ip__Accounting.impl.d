lib/ip/accounting.ml: Bytes Format Hashtbl Int List Option Packet
