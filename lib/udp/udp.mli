(** UDP: the datagram type of service (Clark §4, goal 2).

    Once TCP was split out of the internetwork layer, applications that
    value timeliness over reliability (packet voice, the XNET debugger,
    query/response protocols) could ride raw datagrams with nothing more
    than port demultiplexing and an end-to-end checksum — which is all
    this module adds. *)

type t
(** The UDP instance bound to one IP stack. *)

type socket

type stats = {
  mutable datagrams_in : int;
  mutable datagrams_out : int;
  mutable bad : int;  (** Malformed or checksum-failing datagrams. *)
  mutable no_port : int;  (** Arrived for a port nobody had bound. *)
}

val create : Ip.Stack.t -> t
(** Attach UDP to a stack; registers protocol 17. *)

val stack : t -> Ip.Stack.t

val bind :
  t ->
  ?port:int ->
  recv:(src:Packet.Addr.t -> src_port:int -> bytes -> unit) ->
  unit ->
  socket
(** Open a socket.  [port] of 0 (default) allocates an ephemeral port.
    @raise Failure if the port is taken. *)

val port : socket -> int

val sendto :
  socket ->
  ?tos:Packet.Ipv4.Tos.t ->
  ?ttl:int ->
  dst:Packet.Addr.t ->
  dst_port:int ->
  bytes ->
  (unit, Ip.Stack.send_error) result

val close : socket -> unit
(** Release the port; further arrivals count as [no_port]. *)

val stats : t -> stats

val metrics_items : t -> unit -> (string * Trace.Metrics.value) list
(** Pull-based metrics source over {!stats}, for
    [Trace.Metrics.register]. *)
