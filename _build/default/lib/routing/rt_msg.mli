(** Wire formats for the two interior routing protocols.

    Distance-vector updates are RIP-shaped: a list of (prefix, metric)
    pairs with 16 as infinity.  Link-state messages are hellos and LSAs:
    an LSA carries the originating router's adjacencies (router id, cost)
    and the stub prefixes it owns. *)

type dv_entry = { prefix : Packet.Addr.Prefix.t; metric : int }

val infinity_metric : int
(** 16, the RIP unreachable metric. *)

type ls_neighbor = { neighbor_id : int32; cost : int }
type ls_prefix = { prefix : Packet.Addr.Prefix.t; cost : int }

type lsa = {
  origin : int32;  (** Router id (its primary address). *)
  seq : int;  (** Monotonic per-origin sequence number. *)
  neighbors : ls_neighbor list;
  prefixes : ls_prefix list;
}

type t =
  | Dv_update of dv_entry list
  | Hello of int32  (** Sender's router id. *)
  | Lsa of lsa

type error = [ `Truncated | `Bad_header of string ]

val encode : t -> bytes
val decode : bytes -> (t, error) result
val pp : Format.formatter -> t -> unit
