type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size [@@fastpath]

let is_empty t = t.size = 0 [@@fastpath]

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq) [@@fastpath]

let grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  (* The placeholder entry below is never read: [size] guards access. *)
  let nd = Array.make ncap t.data.(0) in
  Array.blit t.data 0 nd 0 t.size;
  t.data <- nd

let push t ~key ~seq value =
  let e = { key; seq; value } in
  if t.size = Array.length t.data then
    if t.size = 0 then t.data <- Array.make 16 e else grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.data.(!i) t.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(!i) in
    t.data.(!i) <- t.data.(parent);
    t.data.(parent) <- tmp;
    i := parent
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
    if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.data.(!i) in
      t.data.(!i) <- t.data.(!smallest);
      t.data.(!smallest) <- tmp;
      i := !smallest
    end
    else continue := false
  done
[@@fastpath]

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t
    end;
    Some (top.key, top.seq, top.value)
  end

let peek t =
  if t.size = 0 then None
  else
    let top = t.data.(0) in
    Some (top.key, top.seq, top.value)

let min_key t =
  if t.size = 0 then raise Not_found;
  t.data.(0).key
[@@fastpath]

let min_seq t =
  if t.size = 0 then raise Not_found;
  t.data.(0).seq
[@@fastpath]

let pop_min t =
  if t.size = 0 then raise Not_found;
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t
  end;
  top.value
[@@fastpath]

let clear t =
  (* Keep the backing array: a cleared queue is about to be refilled, and
     regrowing from scratch is churn.  Stale entries above [size] are never
     read and are overwritten by subsequent pushes. *)
  t.size <- 0
