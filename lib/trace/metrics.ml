(* A registry of named metrics.  Two populations coexist:

   - [register]ed sources: pull-based views over counters that already
     live in the protocol modules (Ip.Stack.counters, Netsim.link_stats,
     Tcp stats...).  Registering costs one closure at setup; the hot paths
     keep bumping their plain mutable ints, so unification costs the fast
     paths nothing.  The snapshot reads everything live.

   - owned counters/gauges/histograms: for code without an existing
     counter record (benches, examples, new subsystems).

   Registries are instances, not a global: lifetimes follow the topology
   that owns them (Internet.metrics wires one per simulation), so bench
   harnesses that build hundreds of topologies do not accumulate dead
   stacks behind a global registry. *)

type value =
  | Int of int
  | Float of float
  | Dist of { count : int; mean : float; min : float; max : float;
              total : float }

let of_summary s =
  let n = Stdext.Stats.Summary.count s in
  Dist
    {
      count = n;
      mean = Stdext.Stats.Summary.mean s;
      min = (if n = 0 then 0.0 else Stdext.Stats.Summary.min s);
      max = (if n = 0 then 0.0 else Stdext.Stats.Summary.max s);
      total = Stdext.Stats.Summary.total s;
    }

type t = {
  mutable sources : (string * (unit -> (string * value) list)) list;
  (* registration order, newest first *)
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, unit -> float) Hashtbl.t;
  histograms : (string, Stdext.Stats.Summary.t) Hashtbl.t;
}

let create () =
  {
    sources = [];
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
  }

let register t name items =
  if List.mem_assoc name t.sources then
    invalid_arg (Printf.sprintf "Metrics.register: duplicate source %S" name);
  t.sources <- (name, items) :: t.sources

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = ref 0 in
      Hashtbl.add t.counters name c;
      c

let incr ?(by = 1) c = c := !c + by

let gauge t name f = Hashtbl.replace t.gauges name f

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = Stdext.Stats.Summary.create () in
      Hashtbl.add t.histograms name h;
      h

let observe h x = Stdext.Stats.Summary.add h x

(* Collect-then-sort: the iteration order never escapes. *)
let own_items t =
  let items = ref [] in
  (Hashtbl.iter (fun name c -> items := (name, Int !c) :: !items) t.counters
  [@determinism.commutative]);
  (Hashtbl.iter (fun name f -> items := (name, Float (f ())) :: !items)
     t.gauges [@determinism.commutative]);
  (Hashtbl.iter
     (fun name h -> items := (name, of_summary h) :: !items)
     t.histograms [@determinism.commutative]);
  List.sort (fun (a, _) (b, _) -> String.compare a b) !items

(* Snapshots are fully key-sorted — sources and the items within each —
   so serialized output is canonical regardless of registration order
   or of the order a source's closure happens to build its list in. *)
let snapshot t =
  let sorted_items items =
    List.sort (fun (a, _) (b, _) -> String.compare a b) items
  in
  let sources =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map (fun (name, items) -> (name, sorted_items (items ()))) t.sources)
  in
  match own_items t with [] -> sources | own -> sources @ [ ("self", own) ]

let value_to_json = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Dist { count; mean; min; max; total } ->
      Json.Obj
        [ ("count", Json.Int count); ("mean", Json.Float mean);
          ("min", Json.Float min); ("max", Json.Float max);
          ("total", Json.Float total) ]

let to_json t =
  Json.Obj
    (List.map
       (fun (source, items) ->
         ( source,
           Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) items) ))
       (snapshot t))

let find t ~source ~name =
  match List.assoc_opt source (snapshot t) with
  | None -> None
  | Some items -> List.assoc_opt name items
