(* Types of service (the paper's goal #2 and the reason TCP and IP split).

   A packet-voice stream and a bulk file transfer share one slow trunk.
   We run the voice stream twice: once over UDP (datagrams: late packets
   are dropped, timely ones play) and once over TCP (reliable stream:
   every packet arrives, far too late to play).  The numbers show why one
   type of service cannot serve both masters.

   Run with: dune exec examples/mixed_service.exe *)

open Catenet

let deadline_us = 150_000 (* a voice packet later than this is useless *)

let build () =
  let net = Internet.create () in
  let talker = Internet.add_host net "talker" in
  let listener = Internet.add_host net "listener" in
  let gw1 = Internet.add_gateway net "gw1" in
  let gw2 = Internet.add_gateway net "gw2" in
  (* Fast LANs into a thin, congested trunk. *)
  ignore
    (Internet.connect net Netsim.Profiles.ethernet talker.Internet.h_node
       gw1.Internet.g_node);
  ignore
    (Internet.connect net
       (Netsim.profile "trunk" ~bandwidth_bps:256_000 ~delay_us:20_000
          ~queue_capacity:20)
       gw1.Internet.g_node gw2.Internet.g_node);
  ignore
    (Internet.connect net Netsim.Profiles.ethernet gw2.Internet.g_node
       listener.Internet.h_node);
  Internet.start net;
  (net, talker, listener)

let start_background_bulk net (talker : Internet.host)
    (listener : Internet.host) =
  ignore (Apps.Bulk.serve listener.Internet.h_tcp ~port:21 ~seed:3);
  ignore
    (Apps.Bulk.start talker.Internet.h_tcp
       ~dst:(Internet.addr_of net listener.Internet.h_node)
       ~dst_port:21 ~seed:3 ~total:2_000_000 ())

let voice_over_udp () =
  let net, talker, listener = build () in
  start_background_bulk net talker listener;
  let sink = Apps.Cbr.sink listener.Internet.h_udp ~port:5004 ~deadline_us in
  ignore
    (Apps.Cbr.source talker.Internet.h_udp
       ~dst:(Internet.addr_of net listener.Internet.h_node)
       ~dst_port:5004 ~payload_bytes:160 ~period_us:20_000 ~count:500
       ~tos:Packet.Ipv4.Tos.Low_delay ());
  Internet.run_for net 30.0;
  Apps.Cbr.report sink

let voice_over_tcp () =
  (* The same 160-byte-every-20ms stream pushed through a reliable
     sequenced connection. *)
  let net, talker, listener = build () in
  start_background_bulk net talker listener;
  let eng = Internet.engine net in
  let received = ref 0 in
  let late = ref 0 in
  let lost = ref 0 in
  let delays = Stdext.Stats.Samples.create () in
  ignore
    (Tcp.listen listener.Internet.h_tcp ~port:5004 ~accept:(fun c ->
         let pending = Buffer.create 256 in
         Tcp.on_receive c (fun d ->
             Buffer.add_bytes pending d;
             while Buffer.length pending >= 160 do
               let pkt = Buffer.sub pending 0 160 in
               let rest = Buffer.sub pending 160 (Buffer.length pending - 160) in
               Buffer.clear pending;
               Buffer.add_string pending rest;
               let ts =
                 Int32.to_int (String.get_int32_be pkt 4) land 0xFFFFFFFF
               in
               let delay = Engine.now eng - ts in
               Stdext.Stats.Samples.add delays (Engine.to_sec delay);
               incr received;
               if delay > deadline_us then incr late
             done)));
  let conn =
    Tcp.connect talker.Internet.h_tcp
      ~config:{ Tcp.default_config with Tcp.nagle = false }
      ~dst:(Internet.addr_of net listener.Internet.h_node)
      ~dst_port:5004 ()
  in
  let sent = ref 0 in
  let rec tick () =
    if !sent < 500 then begin
      let pkt = Bytes.make 160 '\000' in
      Bytes.set_int32_be pkt 0 (Int32.of_int !sent);
      Bytes.set_int32_be pkt 4 (Int32.of_int (Engine.now eng land 0xFFFFFFFF));
      if Tcp.send conn pkt = 0 then incr lost (* send buffer overflow *);
      incr sent;
      Engine.after eng 20_000 tick
    end
  in
  Tcp.on_established conn (fun () -> tick ());
  Internet.run_for net 60.0;
  (!received, !late, delays)

let () =
  print_endline "voice + bulk transfer sharing a 256 kb/s trunk";
  print_endline "";
  let udp = voice_over_udp () in
  Printf.printf "voice over UDP (the service built for it):\n";
  Printf.printf "  delivered    : %d/500\n" udp.Apps.Cbr.received;
  Printf.printf "  lost         : %d (dropped, never retransmitted)\n"
    udp.Apps.Cbr.lost;
  Printf.printf "  late (>%.0fms): %d\n"
    (float_of_int deadline_us /. 1e3)
    udp.Apps.Cbr.deadline_misses;
  Printf.printf "  usable       : %d  (delivered - late)\n"
    (udp.Apps.Cbr.received - udp.Apps.Cbr.deadline_misses);
  Printf.printf "  median delay : %.1f ms, p95 %.1f ms\n"
    (Stdext.Stats.Samples.median udp.Apps.Cbr.delay *. 1e3)
    (Stdext.Stats.Samples.percentile udp.Apps.Cbr.delay 95.0 *. 1e3);
  print_endline "";
  let recv, late, delays = voice_over_tcp () in
  Printf.printf "voice over TCP (reliability the application never asked for):\n";
  Printf.printf "  delivered    : %d/500 (TCP never loses a byte...)\n" recv;
  Printf.printf "  late (>%.0fms): %d (...it loses time instead)\n"
    (float_of_int deadline_us /. 1e3)
    late;
  Printf.printf "  usable       : %d\n" (recv - late);
  Printf.printf "  median delay : %.1f ms, p95 %.1f ms\n"
    (Stdext.Stats.Samples.median delays *. 1e3)
    (Stdext.Stats.Samples.percentile delays 95.0 *. 1e3);
  print_endline "";
  print_endline
    "moral (Clark 1988, section 4): one network, two types of service -\n\
     this is why UDP exists and why TCP was split out of IP."
