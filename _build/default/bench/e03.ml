(* E3 — Types of service (Clark §4, goal 2).

   Packet voice (the paper's motivating example, with XNET) shares a thin
   trunk with a bulk TCP transfer.  Carried over UDP — the datagram
   service created by splitting TCP out of the internetwork layer — late
   packets are simply lost and the stream stays (mostly) playable.
   Carried over TCP, every byte arrives but reliability costs exactly the
   thing voice cannot spare: time. *)

open Catenet

let deadline_us = 150_000
let packets = 500
let period_us = 20_000
let payload = 160

let build () =
  let t = Internet.create () in
  let talker = Internet.add_host t "talker" in
  let listener = Internet.add_host t "listener" in
  let g1 = Internet.add_gateway t "g1" in
  let g2 = Internet.add_gateway t "g2" in
  ignore
    (Internet.connect t Netsim.Profiles.ethernet talker.Internet.h_node
       g1.Internet.g_node);
  ignore
    (Internet.connect t
       (Netsim.profile "trunk" ~bandwidth_bps:256_000 ~delay_us:20_000
          ~queue_capacity:20)
       g1.Internet.g_node g2.Internet.g_node);
  ignore
    (Internet.connect t Netsim.Profiles.ethernet g2.Internet.g_node
       listener.Internet.h_node);
  Internet.start t;
  (t, talker, listener)

let with_background_bulk t (talker : Internet.host) (listener : Internet.host) =
  ignore (Apps.Bulk.serve listener.Internet.h_tcp ~port:21 ~seed:3);
  ignore
    (Apps.Bulk.start talker.Internet.h_tcp
       ~dst:(Internet.addr_of t listener.Internet.h_node)
       ~dst_port:21 ~seed:3 ~total:2_000_000 ())

let voice_over_udp () =
  let t, talker, listener = build () in
  with_background_bulk t talker listener;
  let sink = Apps.Cbr.sink listener.Internet.h_udp ~port:5004 ~deadline_us in
  ignore
    (Apps.Cbr.source talker.Internet.h_udp
       ~dst:(Internet.addr_of t listener.Internet.h_node)
       ~dst_port:5004 ~payload_bytes:payload ~period_us ~count:packets
       ~tos:Packet.Ipv4.Tos.Low_delay ());
  Internet.run_for t 30.0;
  let r = Apps.Cbr.report sink in
  ( r.Apps.Cbr.received,
    r.Apps.Cbr.lost,
    r.Apps.Cbr.deadline_misses,
    r.Apps.Cbr.delay )

let voice_over_tcp () =
  let t, talker, listener = build () in
  with_background_bulk t talker listener;
  let eng = Internet.engine t in
  let received = ref 0 and late = ref 0 in
  let delays = Stdext.Stats.Samples.create () in
  ignore
    (Tcp.listen listener.Internet.h_tcp ~port:5004 ~accept:(fun c ->
         let pending = Buffer.create 256 in
         Tcp.on_receive c (fun d ->
             Buffer.add_bytes pending d;
             while Buffer.length pending >= payload do
               let pkt = Buffer.sub pending 0 payload in
               let rest =
                 Buffer.sub pending payload (Buffer.length pending - payload)
               in
               Buffer.clear pending;
               Buffer.add_string pending rest;
               let ts =
                 Int32.to_int (String.get_int32_be pkt 4) land 0xFFFFFFFF
               in
               let delay = Engine.now eng - ts in
               Stdext.Stats.Samples.add delays (Engine.to_sec delay);
               incr received;
               if delay > deadline_us then incr late
             done)));
  let conn =
    Tcp.connect talker.Internet.h_tcp
      ~config:{ Tcp.default_config with Tcp.nagle = false }
      ~dst:(Internet.addr_of t listener.Internet.h_node)
      ~dst_port:5004 ()
  in
  let sent = ref 0 in
  let rec tick () =
    if !sent < packets then begin
      let pkt = Bytes.make payload '\000' in
      Bytes.set_int32_be pkt 0 (Int32.of_int !sent);
      Bytes.set_int32_be pkt 4 (Int32.of_int (Engine.now eng land 0xFFFFFFFF));
      ignore (Tcp.send conn pkt);
      incr sent;
      Engine.after eng period_us tick
    end
  in
  Tcp.on_established conn (fun () -> tick ());
  Internet.run_for t 60.0;
  (!received, 0, !late, delays)

let row name (received, lost, late, delays) =
  [
    name;
    Printf.sprintf "%d/%d" received packets;
    string_of_int lost;
    string_of_int late;
    string_of_int (received - late);
    Util.fms (Stdext.Stats.Samples.median delays);
    Util.fms (Stdext.Stats.Samples.percentile delays 95.0);
    Util.fms (Stdext.Stats.Samples.jitter delays);
  ]

let run () =
  Util.banner "E3" "Types of service: packet voice vs reliable stream"
    "one network must offer several transport services; reliability is the \
     wrong one for voice";
  let udp = voice_over_udp () in
  let tcp = voice_over_tcp () in
  Util.table
    [
      "service"; "delivered"; "lost"; "late>150ms"; "usable"; "med ms";
      "p95 ms"; "jitter ms";
    ]
    [ row "UDP datagrams" udp; row "TCP stream" tcp ];
  Util.note
    "TCP delivers every packet and almost none on time; UDP drops a few \
     and plays the rest — exactly the §4 argument for the TCP/IP split"
