(* Fixture: allocation in functions claiming the fast-path contract. *)

let pair x = (x, x + 1) [@@fastpath]

let shout n = Printf.sprintf "%d" n [@@fastpath]

let cut b = Bytes.sub b 0 4 [@@fastpath]
