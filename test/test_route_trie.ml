(* Differential testing of the LPM trie (lib/ip/route_table.ml) against
   the 33-bucket linear scan it replaced, kept here as a test-only
   reference implementation.  Any op sequence — adds with overlapping
   prefixes and metric replacements, removes of present and absent
   prefixes, churn — must leave both structures answering lookup / find /
   entries / length identically; remove/re-add churn must also reclaim
   trie nodes instead of leaking them. *)

open Catenet
module Addr = Packet.Addr
module Prefix = Addr.Prefix
module Rt = Ip.Route_table

(* --- reference: the pre-trie implementation ----------------------------- *)

module Ref_table = struct
  type t = Rt.route list array (* bucket per prefix length *)

  let create () : t = Array.make 33 []

  let add (t : t) (r : Rt.route) =
    let len = Prefix.length r.Rt.prefix in
    t.(len) <-
      r
      :: List.filter
           (fun (r' : Rt.route) -> not (Prefix.equal r'.Rt.prefix r.Rt.prefix))
           t.(len)

  let remove (t : t) prefix =
    let len = Prefix.length prefix in
    t.(len) <-
      List.filter
        (fun (r : Rt.route) -> not (Prefix.equal r.Rt.prefix prefix))
        t.(len)

  let lookup (t : t) addr =
    let best = ref None in
    let consider (r : Rt.route) =
      match !best with
      | Some (b : Rt.route) when b.Rt.metric <= r.Rt.metric -> ()
      | Some _ | None -> best := Some r
    in
    let rec scan len =
      if len < 0 then !best
      else begin
        List.iter
          (fun (r : Rt.route) ->
            if Prefix.mem addr r.Rt.prefix then consider r)
          t.(len);
        match !best with Some _ -> !best | None -> scan (len - 1)
      end
    in
    scan 32

  let find (t : t) prefix =
    List.find_opt
      (fun (r : Rt.route) -> Prefix.equal r.Rt.prefix prefix)
      t.((Prefix.length prefix))

  let entries (t : t) =
    let acc = ref [] in
    for len = 0 to 32 do
      acc := List.rev_append t.(len) !acc
    done;
    !acc

  let length (t : t) = Array.fold_left (fun n l -> n + List.length l) 0 t
end

(* --- generators --------------------------------------------------------- *)

(* A small address pool with heavy sharing of high bits, so prefixes of
   different lengths overlap and lookups regularly have several
   candidates. *)
let addr_of_seed seed =
  let bases = [| 0x0A000000; 0x0A000100; 0x0AC0FF00; 0xAC100000; 0xC0A80000 |] in
  let base = bases.(abs seed mod Array.length bases) in
  let low = (seed * 2654435761) land 0xFFFF in
  Addr.of_int32 (Int32.of_int ((base lor low) land 0xFFFFFFFF))

let prefix_of (seed, len) = Prefix.make (addr_of_seed seed) len

type op = Add of int * int * int * int | Remove of int * int
(* Add (addr_seed, len, iface, metric) | Remove (addr_seed, len) *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          map
            (fun (s, l, i, m) -> Add (s, l, i, m))
            (quad (int_bound 1000) (int_bound 32) (int_bound 7) (int_bound 20))
        );
        (1, map (fun (s, l) -> Remove (s, l)) (pair (int_bound 1000) (int_bound 32)));
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | Add (s, l, i, m) ->
                 Printf.sprintf "add %s if%d m%d"
                   (Prefix.to_string (prefix_of (s, l)))
                   i m
             | Remove (s, l) ->
                 Printf.sprintf "remove %s" (Prefix.to_string (prefix_of (s, l))))
           ops))
    QCheck.Gen.(list_size (int_bound 120) op_gen)

let apply_ops trie refr ops =
  List.iter
    (fun op ->
      match op with
      | Add (s, l, iface, metric) ->
          let r =
            { Rt.prefix = prefix_of (s, l); iface; next_hop = None; metric }
          in
          Rt.add trie r;
          Ref_table.add refr r
      | Remove (s, l) ->
          Rt.remove trie (prefix_of (s, l));
          Ref_table.remove refr (prefix_of (s, l)))
    ops

let route_key (r : Rt.route) =
  (Prefix.to_string r.Rt.prefix, r.Rt.iface, r.Rt.metric)

let same_route a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> route_key a = route_key b
  | Some _, None | None, Some _ -> false

(* Probe addresses: pool members plus neighbours just outside prefix
   boundaries. *)
let probes =
  List.concat_map
    (fun s ->
      let a = addr_of_seed s in
      let x = Int32.to_int (Addr.to_int32 a) land 0xFFFFFFFF in
      let mk v = Addr.of_int32 (Int32.of_int (v land 0xFFFFFFFF)) in
      [ a; mk (x lxor 1); mk (x + 256); mk (x lxor 0x00010000) ])
    (List.init 40 (fun i -> i * 17))

let prop_lookup_matches =
  QCheck.Test.make ~count:300 ~name:"trie lookup = linear-scan lookup" ops_arb
    (fun ops ->
      let trie = Rt.create () and refr = Ref_table.create () in
      apply_ops trie refr ops;
      List.for_all
        (fun a -> same_route (Rt.lookup trie a) (Ref_table.lookup refr a))
        probes)

let prop_find_matches =
  QCheck.Test.make ~count:300 ~name:"trie find = linear-scan find" ops_arb
    (fun ops ->
      let trie = Rt.create () and refr = Ref_table.create () in
      apply_ops trie refr ops;
      List.for_all
        (fun s ->
          List.for_all
            (fun l ->
              let p = prefix_of (s, l) in
              same_route (Rt.find trie p) (Ref_table.find refr p))
            [ 0; 8; 12; 16; 20; 24; 30; 32 ])
        (List.init 20 (fun i -> i * 37)))

let prop_entries_match =
  QCheck.Test.make ~count:300 ~name:"trie entries = linear-scan entries"
    ops_arb (fun ops ->
      let trie = Rt.create () and refr = Ref_table.create () in
      apply_ops trie refr ops;
      let norm l = List.sort compare (List.map route_key l) in
      norm (Rt.entries trie) = norm (Ref_table.entries refr)
      && Rt.length trie = Ref_table.length refr)

let prop_entries_longest_first =
  QCheck.Test.make ~count:200 ~name:"entries ordered longest-prefix first"
    ops_arb (fun ops ->
      let trie = Rt.create () and refr = Ref_table.create () in
      apply_ops trie refr ops;
      let lens = List.map (fun (r : Rt.route) -> Prefix.length r.Rt.prefix)
          (Rt.entries trie)
      in
      List.sort (fun a b -> Int.compare b a) lens = lens)

(* --- directed cases ----------------------------------------------------- *)

let route prefix iface metric =
  { Rt.prefix = Prefix.of_string prefix; iface; next_hop = None; metric }

let test_metric_replace () =
  let t = Rt.create () in
  Rt.add t (route "10.0.0.0/8" 1 5);
  Rt.add t (route "10.0.0.0/8" 2 3);
  (match Rt.lookup t (Addr.of_string "10.9.9.9") with
  | Some r ->
      Alcotest.(check int) "replacement wins" 2 r.Rt.iface;
      Alcotest.(check int) "replacement metric" 3 r.Rt.metric
  | None -> Alcotest.fail "no route");
  Alcotest.(check int) "still one entry" 1 (Rt.length t)

let test_overlapping_chain () =
  let t = Rt.create () in
  Rt.add t (route "0.0.0.0/0" 9 10);
  Rt.add t (route "10.0.0.0/8" 1 1);
  Rt.add t (route "10.32.0.0/11" 2 1);
  Rt.add t (route "10.32.0.0/16" 3 1);
  Rt.add t (route "10.32.7.0/24" 4 1);
  Rt.add t (route "10.32.7.42/32" 5 1);
  let iface_for a =
    match Rt.lookup t (Addr.of_string a) with
    | Some r -> r.Rt.iface
    | None -> -1
  in
  Alcotest.(check int) "/32 wins" 5 (iface_for "10.32.7.42");
  Alcotest.(check int) "/24 wins" 4 (iface_for "10.32.7.41");
  Alcotest.(check int) "/16 wins" 3 (iface_for "10.32.8.1");
  Alcotest.(check int) "/11 wins" 2 (iface_for "10.33.0.1");
  Alcotest.(check int) "/8 wins" 1 (iface_for "10.200.0.1");
  Alcotest.(check int) "default" 9 (iface_for "192.0.2.1");
  (* peel the chain back off, longest first *)
  Rt.remove t (Prefix.of_string "10.32.7.42/32");
  Alcotest.(check int) "falls to /24" 4 (iface_for "10.32.7.42");
  Rt.remove t (Prefix.of_string "10.32.7.0/24");
  Alcotest.(check int) "falls to /16" 3 (iface_for "10.32.7.42");
  Rt.remove t (Prefix.of_string "10.32.0.0/16");
  Rt.remove t (Prefix.of_string "10.32.0.0/11");
  Alcotest.(check int) "falls to /8" 1 (iface_for "10.32.7.42");
  Rt.remove t (Prefix.of_string "10.0.0.0/8");
  Alcotest.(check int) "falls to default" 9 (iface_for "10.32.7.42");
  Rt.remove t (Prefix.of_string "0.0.0.0/0");
  Alcotest.(check bool) "empty" true (Rt.lookup t (Addr.of_string "10.1.1.1") = None);
  Alcotest.(check int) "length zero" 0 (Rt.length t)

let test_churn_reclaims_nodes () =
  let t = Rt.create () in
  let prefixes =
    List.init 100 (fun i ->
        Prefix.make (Addr.v 10 (i mod 16) (i * 7 mod 256) 0) (20 + (i mod 13)))
  in
  let add_all () =
    List.iter
      (fun p -> Rt.add t { Rt.prefix = p; iface = 1; next_hop = None; metric = 1 })
      prefixes
  in
  add_all ();
  let nodes_once = Rt.node_count t in
  Alcotest.(check bool) "node bound" true (nodes_once <= (2 * Rt.length t) + 1);
  for _ = 1 to 50 do
    List.iter (fun p -> Rt.remove t p) prefixes;
    add_all ()
  done;
  Alcotest.(check int) "length stable" (Rt.length t) (List.length prefixes);
  Alcotest.(check int) "no node leak across churn" nodes_once (Rt.node_count t);
  List.iter (fun p -> Rt.remove t p) prefixes;
  Alcotest.(check int) "all routes gone" 0 (Rt.length t);
  Alcotest.(check int) "only the root remains" 1 (Rt.node_count t)

let test_generation_bumps () =
  let t = Rt.create () in
  let g0 = Rt.generation t in
  Rt.add t (route "10.0.0.0/8" 1 1);
  let g1 = Rt.generation t in
  Rt.remove t (Prefix.of_string "172.16.0.0/12") (* absent: still a bump *);
  let g2 = Rt.generation t in
  Rt.clear t;
  let g3 = Rt.generation t in
  Alcotest.(check bool) "monotonic" true (g0 < g1 && g1 < g2 && g2 < g3)

let test_lookup_allocation_free () =
  let t = Rt.create () in
  Rt.add t (route "0.0.0.0/0" 9 10);
  for i = 0 to 199 do
    Rt.add t (route (Printf.sprintf "10.%d.%d.0/24" (i / 8) (i mod 8 * 32)) 1 1)
  done;
  let q = Addr.v 10 3 77 9 in
  ignore (Rt.lookup t q);
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to 1000 do
    ignore (Rt.lookup t q)
  done;
  let per = (Gc.allocated_bytes () -. a0) /. 1000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "lookup allocates nothing (%.1f B/op)" per)
    true (per < 1.0)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "route_trie"
    [
      ( "differential",
        [
          qt prop_lookup_matches;
          qt prop_find_matches;
          qt prop_entries_match;
          qt prop_entries_longest_first;
        ] );
      ( "directed",
        [
          Alcotest.test_case "metric replace" `Quick test_metric_replace;
          Alcotest.test_case "overlapping chain" `Quick test_overlapping_chain;
          Alcotest.test_case "churn reclaims nodes" `Quick
            test_churn_reclaims_nodes;
          Alcotest.test_case "generation bumps" `Quick test_generation_bumps;
          Alcotest.test_case "lookup allocation-free" `Quick
            test_lookup_allocation_free;
        ] );
    ]
