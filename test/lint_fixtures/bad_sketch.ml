(* Fixture: a count-min update written the tempting-but-allocating way —
   fresh slot array per call, Array.fill (untagged), boxed closure — all
   claiming the fast-path contract the real Ip.Sketch keeps. *)

let slots_of width depth fp = Array.init depth (fun i -> (fp * i) land (width - 1))
[@@fastpath]

let clear_row row = Array.fill row 0 (Array.length row) 0 [@@fastpath]

let update_all rows f = Array.iter (fun r -> ignore (f r)) rows [@@fastpath]
