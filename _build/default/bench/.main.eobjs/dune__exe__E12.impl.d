bench/e12.ml: Analyze Bechamel Benchmark Bytes Catenet Hashtbl Instance Ip List Measure Packet Printf Staged Stdext Test Time Toolkit Util
