type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  (* Mix once more so a split stream does not share prefixes with the
     parent's subsequent outputs. *)
  { state = mix64 seed }

let int t bound =
  assert (bound > 0);
  (* Mask to 62 nonnegative bits: Int64.to_int truncates to the native
     63-bit int and could otherwise yield negatives. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land max_int in
  v mod bound

let float t bound =
  (* 53 random bits, scaled into [0, bound). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.0 *. bound

let bool t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
