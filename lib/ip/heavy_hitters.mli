(** Space-saving top-k flow tracker (E20).

    Tracks the [capacity] largest flows by byte count in fixed memory:
    parallel int arrays, an intrusive chained hash index, and an
    intrusive min-heap keyed on bytes so the eviction victim is always
    at hand.  Admission is gated by the caller-supplied count-min
    estimate ({!Sketch}), which keeps the million-singleton tail from
    churning the table — see the implementation comment for why plain
    space-saving fails there.  {!record} is allocation-free
    ([@@fastpath], checked by catenet-lint).

    Tracked counts are exact from admission onward; the inherited
    (estimated) part is retained per entry as [err_pkts]/[err_bytes],
    so [pkts - err_pkts] is a guaranteed lower bound. *)

type t

val create : capacity:int -> t
val capacity : t -> int

val size : t -> int
(** Live entries, [<= capacity]. *)

val record :
  t ->
  fp:int ->
  src:int ->
  dst:int ->
  meta:int ->
  est_pkts:int ->
  est_bytes:int ->
  wire_bytes:int ->
  unit
(** One packet of [wire_bytes] for the flow fingerprinted [fp].
    [src]/[dst]/[meta] are opaque identity words stored for reporting;
    [est_pkts]/[est_bytes] are the sketch's post-update estimates for
    the same key (admission gate + inherited count).  Allocation-free. *)

val iter : t -> (int -> unit) -> unit
(** [iter t f] calls [f] with each live entry index (unordered). *)

(** Per-entry accessors, valid for indices passed to {!iter}'s
    callback. *)

val fp_of : t -> int -> int
val src_of : t -> int -> int
val dst_of : t -> int -> int
val meta_of : t -> int -> int
val pkts_of : t -> int -> int
val bytes_of : t -> int -> int
val err_pkts_of : t -> int -> int
val err_bytes_of : t -> int -> int

val min_bytes : t -> int
(** Byte count of the smallest tracked flow (the admission bar); 0 when
    empty. *)

val clear : t -> unit
(** Drop every entry (epoch rotation). *)
