(** Retransmission-timeout estimation (Jacobson & Karels 1988, the
    algorithm contemporary with the paper; RFC 6298 formulation).

    Maintains the smoothed RTT and its variance from timed segments and
    produces the retransmission timeout with exponential backoff.  Karn's
    rule — never sample a retransmitted segment — is the caller's duty and
    is observed by the TCP engine. *)

type t

val create : ?initial_rto_us:int -> ?min_rto_us:int -> ?max_rto_us:int -> unit -> t
(** Defaults: initial 1 s, floor 200 ms, ceiling 60 s. *)

val sample : t -> int -> unit
(** Feed one RTT measurement in microseconds; resets backoff. *)

val rto : t -> int
(** Current timeout in microseconds, backoff included. *)

val backoff : t -> unit
(** Double the timeout (up to the ceiling) after a retransmission. *)

val reset_backoff : t -> unit

val srtt : t -> int option
(** Smoothed RTT, if at least one sample has been taken. *)

val rttvar : t -> int option
