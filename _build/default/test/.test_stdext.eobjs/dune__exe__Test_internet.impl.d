test/test_internet.ml: Alcotest Apps Bytes Catenet Engine Hashtbl Ip List Netsim Packet Printf Routing Stdext Udp
