module Addr = Packet.Addr
module Wire = Names_wire

(* The anycast service directory: one name, many replica hosts.
   Lives beside the root authority; answers service queries with the
   replica nearest (in region hops) to whoever asked, and keeps the
   health view that drives failover — an active UDP prober marks a
   replica down after [strike_limit] consecutive unanswered probes and
   up again on the first echo.

   Selection is "gateway-assisted" in the paper's spirit: the directory
   does not guess at geography, it is handed the topology's own
   region-distance function.  Health is soft state: it re-converges
   from probing after a crash, nothing needs to be told. *)

type replica = {
  r_service : int;
  r_index : int;
  r_region : int;
  r_bits : int;  (* replica address bits *)
  mutable r_up : bool;
  mutable r_strikes : int;  (* consecutive unanswered probes *)
}

type stats = {
  mutable probes : int;
  mutable probe_misses : int;
  mutable failovers_down : int;
  mutable failovers_up : int;
  mutable picks : int;
  mutable all_down : int;  (* service queries with no healthy replica *)
}

type t = {
  udp : Udp.t;
  eng : Engine.t;
  src : Addr.t option;
  service_port : int;  (* replicas answer requests (and probes) here *)
  svc_ttl_s : int;
  strike_limit : int;
  services : (int, replica array) Hashtbl.t;
  pending : (int, replica) Hashtbl.t;  (* probe seq -> awaited replica *)
  mutable probe_sock : Udp.socket option;
  mutable seq : int;
  mutable distance : int -> int -> int;
  stats : stats;
}

let create ~udp ~eng ?src ~service_port ?(svc_ttl_s = 1) ?(strike_limit = 2)
    () =
  { udp; eng; src; service_port; svc_ttl_s; strike_limit;
    services = Hashtbl.create 8;
    pending = Hashtbl.create 32;
    probe_sock = None;
    seq = 0;
    distance = (fun _ _ -> 0);
    stats =
      { probes = 0; probe_misses = 0; failovers_down = 0; failovers_up = 0;
        picks = 0; all_down = 0 } }

let set_distance t f = t.distance <- f
let stats t = t.stats

let register t ~service replicas =
  let arr =
    Array.of_list
      (List.mapi
         (fun i (region, addr) ->
           { r_service = service; r_index = i; r_region = region;
             r_bits = Wire.addr_bits addr; r_up = true; r_strikes = 0 })
         replicas)
  in
  Hashtbl.replace t.services service arr

let replica_up t ~service ~index =
  match Hashtbl.find_opt t.services service with
  | Some arr when index < Array.length arr -> arr.(index).r_up
  | Some _ | None -> false

(* Region of a querier, from its address: stub space encodes the region
   in bits 12..23 of 10/8; anything else (transit links, test rigs)
   counts as region 0. *)
let region_of_bits bits =
  if bits lsr 24 = 10 then (bits lsr 12) land 0xfff else 0

let pick t ~service ~client_region =
  match Hashtbl.find_opt t.services service with
  | None -> None
  | Some arr ->
      let best = ref None in
      Array.iter
        (fun r ->
          if r.r_up then
            let d = t.distance client_region r.r_region in
            match !best with
            | Some (d', _) when d' <= d -> ()
            | _ -> best := Some (d, r))
        arr;
      (match !best with
      | Some (_, r) ->
          t.stats.picks <- t.stats.picks + 1;
          Some r.r_bits
      | None ->
          t.stats.all_down <- t.stats.all_down + 1;
          None)

(* The service half of the root zone (plugs into
   [Server.root_authority]'s [svc]). *)
let answer_for t ~src (q : Wire.t) =
  if q.Wire.qtype <> Wire.qtype_svc then
    Server.Answer
      { aa = false; rcode = Wire.rcode_refused; ttl_s = 0; answer = 0 }
  else if not (Hashtbl.mem t.services q.Wire.l0) then
    Server.Answer
      { aa = true; rcode = Wire.rcode_nxname; ttl_s = t.svc_ttl_s;
        answer = 0 }
  else
    match
      pick t ~service:q.Wire.l0
        ~client_region:(region_of_bits (Wire.addr_bits src))
    with
    | Some bits ->
        Server.Answer
          { aa = true; rcode = Wire.rcode_ok; ttl_s = t.svc_ttl_s;
            answer = bits }
    | None ->
        (* Every replica looks dead: SERVFAIL, uncached, so clients
           retry as soon as probing notices a recovery. *)
        Server.Answer
          { aa = true; rcode = Wire.rcode_servfail; ttl_s = 0; answer = 0 }

(* -- health probing -------------------------------------------------- *)

(* Probe datagram: 4 bytes, a magic and a sequence number; replicas echo
   the payload verbatim (the same echo that serves client requests). *)
let probe_magic = 0xBE

let mark_down t r =
  if r.r_up then begin
    r.r_up <- false;
    t.stats.failovers_down <- t.stats.failovers_down + 1;
    if Trace.want Trace.Cls.name then
      Trace.emit
        (Trace.Event.Name_failover
           { service = r.r_service; replica = r.r_index; up = false })
  end

let mark_up t r =
  r.r_strikes <- 0;
  if not r.r_up then begin
    r.r_up <- true;
    t.stats.failovers_up <- t.stats.failovers_up + 1;
    if Trace.want Trace.Cls.name then
      Trace.emit
        (Trace.Event.Name_failover
           { service = r.r_service; replica = r.r_index; up = true })
  end

let on_probe_reply t buf =
  if Bytes.length buf >= 4 && Bytes.get_uint8 buf 0 = probe_magic then begin
    let seq = Bytes.get_uint16_be buf 2 in
    match Hashtbl.find_opt t.pending seq with
    | Some r ->
        Hashtbl.remove t.pending seq;
        mark_up t r
    | None -> ()
  end

let probe_round t =
  (* Last round's unanswered probes are this round's strikes.  In seq
     order: [mark_down] emits a trace event and flips failover state
     the next lookup observes, so the strike order must be canonical. *)
  Stdext.Det.sorted_iter ~compare:Int.compare
    (fun _ r ->
      t.stats.probe_misses <- t.stats.probe_misses + 1;
      r.r_strikes <- r.r_strikes + 1;
      if r.r_strikes >= t.strike_limit then mark_down t r)
    t.pending;
  Hashtbl.reset t.pending;
  match t.probe_sock with
  | None -> ()
  | Some sock ->
      (* In service order: probe emission allocates [t.seq] numbers and
         sends datagrams, both of which reach the wire. *)
      Stdext.Det.sorted_iter ~compare:Int.compare
        (fun _ arr ->
          Array.iter
            (fun r ->
              t.seq <- (t.seq + 1) land 0xffff;
              let seq = t.seq in
              let payload = Bytes.create 4 in
              Bytes.set_uint8 payload 0 probe_magic;
              Bytes.set_uint8 payload 1 0;
              Bytes.set_uint16_be payload 2 seq;
              Hashtbl.replace t.pending seq r;
              t.stats.probes <- t.stats.probes + 1;
              ignore
                (Udp.sendto sock ?src:t.src
                   ~dst:(Addr.of_int32 (Int32.of_int r.r_bits))
                   ~dst_port:t.service_port payload
                  : (unit, Udp.send_error) result))
            arr)
        t.services

let start_probing t ~interval_us =
  (match t.probe_sock with
  | Some _ -> ()
  | None ->
      t.probe_sock <-
        Some
          (Udp.bind t.udp
             ~recv:(fun ~src:_ ~src_port:_ buf -> on_probe_reply t buf)
             ()));
  let rec tick () =
    probe_round t;
    Engine.after t.eng interval_us tick
  in
  Engine.after t.eng interval_us tick

let metrics_items t () =
  [ ("probes", Trace.Metrics.Int t.stats.probes);
    ("probe_misses", Trace.Metrics.Int t.stats.probe_misses);
    ("failovers_down", Trace.Metrics.Int t.stats.failovers_down);
    ("failovers_up", Trace.Metrics.Int t.stats.failovers_up);
    ("picks", Trace.Metrics.Int t.stats.picks);
    ("all_down", Trace.Metrics.Int t.stats.all_down) ]
