(* Shared plumbing for the experiment harness: table rendering and a few
   topology/workload helpers reused across experiments. *)

open Catenet

(* --- run modes ------------------------------------------------------------ *)

(* Smoke mode (`--smoke`): every experiment runs at a fraction of its
   workload so the whole harness finishes in seconds — enough to prove
   the benches still build and run, not to produce meaningful numbers.
   Set before any experiment runs; consult it via [scaled] at use sites
   (not in module-level constants, which are evaluated before the flag
   is parsed). *)
let smoke = ref false

let scaled n = if !smoke then max 1 (n / 32) else n

(* `--out=DIR` redirects the machine-readable BENCH_*.json files; the
   default is the current directory (the historical filenames), so smoke
   runs can point their throwaway outputs somewhere gitignored. *)
let out_dir = ref "."

let out_path name =
  if !out_dir = "." then name
  else begin
    (try Unix.mkdir !out_dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Filename.concat !out_dir name
  end

(* Machine-readable artifacts all go through the shared JSON tree (one
   serializer for benches, metrics snapshots and trace dumps alike). *)
let write_json name json = Trace.Json.write_file (out_path name) json

(* --- output -------------------------------------------------------------- *)

let banner id title claim =
  Printf.printf "\n";
  Printf.printf "==========================================================================\n";
  Printf.printf "%s  %s\n" id title;
  Printf.printf "   claim: %s\n" claim;
  Printf.printf "==========================================================================\n"

(* Render a table: header row + data rows, columns auto-sized. *)
let table headers rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let line cells =
    let padded =
      List.map2 (fun w c -> c ^ String.make (w - String.length c) ' ') widths cells
    in
    Printf.printf "  %s\n" (String.concat "  " padded)
  in
  line headers;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter line rows

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  note: %s\n" s) fmt

let fkb bps = Printf.sprintf "%.1f" (bps /. 1e3)
let fms s = Printf.sprintf "%.1f" (s *. 1e3)
let fpct x = Printf.sprintf "%.1f%%" (x *. 100.0)

(* --- workload helpers ------------------------------------------------------ *)

(* Run one bulk TCP transfer between two hosts already wired into [t];
   returns (goodput_bps option, conn, intact). *)
let run_bulk t (src : Internet.host) (dst : Internet.host) ~port ~total
    ~seconds =
  let seed = 17 in
  let server = Apps.Bulk.serve dst.Internet.h_tcp ~port ~seed in
  let sender =
    Apps.Bulk.start src.Internet.h_tcp
      ~dst:(Internet.addr_of t dst.Internet.h_node)
      ~dst_port:port ~seed ~total ()
  in
  Internet.run_for t seconds;
  let intact =
    match Apps.Bulk.transfers server with
    | [ tr ] -> tr.Apps.Bulk.intact && tr.Apps.Bulk.received = total
    | _ -> false
  in
  (Apps.Bulk.goodput_bps sender, Apps.Bulk.conn sender, intact)

(* A reliable-ish bulk transfer over a VC circuit: pushes [count] cells of
   [size] bytes, respecting backpressure; the receiver counts bytes.
   Returns a function to query (delivered_bytes, finished, cleared). *)
let vc_bulk fabric eng ~src ~dst ~cell_size ~count =
  let delivered = ref 0 in
  let cleared = ref false in
  Vc.listen fabric dst (fun circuit ->
      Vc.on_data circuit (fun d -> delivered := !delivered + Bytes.length d));
  let sent = ref 0 in
  let finished = ref false in
  let circuit =
    Vc.call fabric ~src ~dst ~on_clear:(fun _ -> cleared := true) ()
  in
  let payload = Bytes.make cell_size 'v' in
  let rec pump () =
    if Vc.is_open circuit && !sent < count then begin
      if Vc.send circuit payload then incr sent;
      (* Cell pacing: try again immediately if accepted, else back off. *)
      Engine.after eng (if !sent < count then 500 else 1) pump
    end
    else if !sent >= count then finished := true
  in
  Engine.after eng 100_000 pump;
  fun () -> (!delivered, !finished, !cleared)
