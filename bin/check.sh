#!/bin/sh
# Repo check: format (when ocamlformat is available), build, tests.
# Usage: bin/check.sh  (or `make check`)
set -eu
cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not installed or no .ocamlformat)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== bench smoke"
dune exec bench/main.exe -- --smoke --out=_smoke >/dev/null

echo "check: OK"
