(** 32-bit modular sequence-number arithmetic (RFC 793 §3.3).

    TCP sequence numbers live on a circle of size 2^32; comparisons are
    only meaningful between numbers less than half the space apart.  All
    values are OCaml ints in [\[0, 2^32)]. *)

type t = int

val modulus : int
(** 2^32. *)

val add : t -> int -> t
(** Advance, wrapping. *)

val diff : t -> t -> int
(** [diff a b] is the signed distance from [b] to [a]: positive when [a]
    is ahead of [b] on the circle, in [\[-2^31, 2^31)]. *)

val lt : t -> t -> bool
(** [lt a b] iff [a] is strictly before [b] (within half the space). *)

val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

val max : t -> t -> t
(** The later of the two. *)

val in_window : t -> base:t -> size:int -> bool
(** [in_window x ~base ~size] iff [x] lies in [\[base, base+size)]. *)
