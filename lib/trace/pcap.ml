(* Classic pcap (libpcap 2.4) writer.  LINKTYPE_RAW: each record is a raw
   IPv4 datagram, which is exactly what travels on this simulator's links,
   so captures open directly in tcpdump/wireshark/scapy.

   We write the little-endian byte order (magic a1 b2 c3 d4 stored LE);
   readers detect orientation from the magic either way. *)

(* Machine-checked wire contracts (see catenet-lint): the 24-byte file
   header written by [create] and the 16-byte per-record header written
   by [add].  Pcap is write-only here, so the encode/decode asymmetry
   check does not apply. *)
let file_layout : (string * int * int) list =
  [ ("magic", 0, 4); ("version_major", 4, 2); ("version_minor", 6, 2);
    ("thiszone", 8, 4); ("sigfigs", 12, 4); ("snaplen", 16, 4);
    ("linktype", 20, 4) ]

let record_layout : (string * int * int) list =
  [ ("ts_sec", 0, 4); ("ts_usec", 4, 4); ("incl_len", 8, 4);
    ("orig_len", 12, 4) ]

let magic = 0xa1b2c3d4
let version_major = 2
let version_minor = 4
let linktype_raw = 101
let default_snaplen = 65_535

type t = {
  buf : Buffer.t;
  snaplen : int;
  mutable packets : int;
}

let u16 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let u32 b v =
  u16 b (v land 0xffff);
  u16 b ((v lsr 16) land 0xffff)

let create ?(snaplen = default_snaplen) () =
  if snaplen < 1 then invalid_arg "Pcap.create: snaplen < 1";
  let buf = Buffer.create 4096 in
  u32 buf magic;
  u16 buf version_major;
  u16 buf version_minor;
  u32 buf 0; (* thiszone *)
  u32 buf 0; (* sigfigs *)
  u32 buf snaplen;
  u32 buf linktype_raw;
  { buf; snaplen; packets = 0 }

let header_len = 24
let record_header_len = 16

let add t ~ts_us frame =
  let orig = Bytes.length frame in
  let incl = min orig t.snaplen in
  u32 t.buf (ts_us / 1_000_000);
  u32 t.buf (ts_us mod 1_000_000);
  u32 t.buf incl;
  u32 t.buf orig;
  Buffer.add_subbytes t.buf frame 0 incl;
  t.packets <- t.packets + 1

let packet_count t = t.packets
let byte_length t = Buffer.length t.buf
let to_string t = Buffer.contents t.buf

let write_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc t.buf)
