module Addr = Packet.Addr
module Ipv4 = Packet.Ipv4

type flow = {
  src : Addr.t;
  dst : Addr.t;
  proto : Ipv4.Proto.t;
  src_port : int;
  dst_port : int;
  portless : bool;
}

(* Mutable fields: exact-mode [record] runs once per datagram, and
   bumping in place keeps it allocation-free after a flow's first packet
   (it used to rebuild the usage record every time). *)
type usage = { mutable packets : int; mutable bytes : int }

type mode = Exact | Sketch of { width : int; depth : int; top_k : int }

(* The two engines behind the facade.  [Exact_table] is the original
   unbounded ledger: every flow, exact counts, O(flows) memory — right
   for small tests and differential baselines.  [Sketched] is the scale
   engine: a count-min sketch carries estimates for *every* flow in
   fixed memory, and a space-saving tracker keeps exact-from-admission
   records for the current top-k only. *)
type engine =
  | Exact_table of (flow, usage) Hashtbl.t
  | Sketched of { sk : Sketch.t; hh : Heavy_hitters.t }

(* A closed epoch's headline record, taken at rotation so the heavy
   hitters of epoch [n] survive into epoch [n+1] instead of vanishing
   with the cleared engines (the E20 leftover: billing needs the ledger
   that *was*, not only the one that is). *)
type snapshot = {
  snap_epoch : int;
  snap_packets : int;
  snap_bytes : int;
  snap_top : (flow * usage) list;
}

type t = {
  mode : mode;
  engine : engine;
  mutable total_packets : int;
  mutable total_bytes : int;
  mutable epoch : int;
  history_limit : int;
  mutable history : snapshot list;  (* newest first, bounded *)
}

let create ?(mode = Exact) ?(history = 4) () =
  let engine =
    match mode with
    | Exact -> Exact_table (Hashtbl.create 32)
    | Sketch { width; depth; top_k } ->
        Sketched
          { sk = Sketch.create ~width ~depth ();
            hh = Heavy_hitters.create ~capacity:top_k }
  in
  { mode; engine; total_packets = 0; total_bytes = 0; epoch = 0;
    history_limit = max 0 history; history = [] }

let mode t = t.mode
let epoch t = t.epoch

(* -- flow identity -------------------------------------------------- *)

(* Everything that identifies a flow besides the two addresses, packed
   into one int: bit 40 = portless, bits 32..39 = protocol number,
   bits 16..31 = src port, bits 0..15 = dst port.  The portless bit
   keeps flows whose ports are unknowable (ICMP, unknown protocols,
   non-first fragments) distinct from a genuine port-(0,0) flow — the
   aliasing bug the old [ports_of] had. *)
let pack_meta ~portless ~pn ~sp ~dp =
  (portless lsl 40) lor (pn lsl 32) lor (sp lsl 16) lor dp
[@@fastpath]

let fingerprint ~src ~dst ~meta =
  Sketch.mix (src lxor Sketch.mix (dst lxor Sketch.mix meta))
[@@fastpath]

let proto_number (p : Ipv4.Proto.t) =
  match p with
  | Ipv4.Proto.Icmp -> 1
  | Ipv4.Proto.Tcp -> 6
  | Ipv4.Proto.Udp -> 17
  | Ipv4.Proto.Other n -> n land 0xff
[@@fastpath]

let meta_of_flow f =
  pack_meta
    ~portless:(if f.portless then 1 else 0)
    ~pn:(proto_number f.proto) ~sp:f.src_port ~dp:f.dst_port

let addr_bits a = Int32.to_int (Addr.to_int32 a) land 0xffffffff [@@fastpath]

let fingerprint_of_flow f =
  fingerprint ~src:(addr_bits f.src) ~dst:(addr_bits f.dst)
    ~meta:(meta_of_flow f)

let flow_of_parts ~src ~dst ~meta =
  let pn = (meta lsr 32) land 0xff in
  { src = Addr.of_int32 (Int32.of_int src);
    dst = Addr.of_int32 (Int32.of_int dst);
    proto =
      (match pn with
      | 1 -> Ipv4.Proto.Icmp
      | 6 -> Ipv4.Proto.Tcp
      | 17 -> Ipv4.Proto.Udp
      | n -> Ipv4.Proto.Other n);
    src_port = (meta lsr 16) land 0xffff;
    dst_port = meta land 0xffff;
    portless = (meta lsr 40) land 1 = 1 }

(* -- recording ------------------------------------------------------ *)

let bump_exact tbl f ~wire_bytes =
  match Hashtbl.find_opt tbl f with
  | Some u ->
      u.packets <- u.packets + 1;
      u.bytes <- u.bytes + wire_bytes
  | None -> Hashtbl.add tbl f { packets = 1; bytes = wire_bytes }

let bump_sketch sk hh ~src ~dst ~meta ~wire_bytes =
  let fp = fingerprint ~src ~dst ~meta in
  Sketch.update sk fp ~bytes:wire_bytes;
  Heavy_hitters.record hh ~fp ~src ~dst ~meta
    ~est_pkts:(Sketch.last_estimate_packets sk)
    ~est_bytes:(Sketch.last_estimate_bytes sk)
    ~wire_bytes
[@@fastpath]

(* Ports sit in the first 4 bytes of both TCP and UDP headers, but only
   in the first fragment of a fragmented datagram.  Anything else is a
   portless flow: it keeps ports (0,0) *and* the portless mark, so it
   can never alias a real port-(0,0) flow. *)
let record t (h : Ipv4.header) ~payload ~wire_bytes =
  t.total_packets <- t.total_packets + 1;
  t.total_bytes <- t.total_bytes + wire_bytes;
  let ported =
    (match h.proto with
    | Ipv4.Proto.Tcp | Ipv4.Proto.Udp -> true
    | Ipv4.Proto.Icmp | Ipv4.Proto.Other _ -> false)
    && h.frag_offset = 0
    && Bytes.length payload >= 4
  in
  let sp = if ported then Bytes.get_uint16_be payload 0 else 0 in
  let dp = if ported then Bytes.get_uint16_be payload 2 else 0 in
  match t.engine with
  | Exact_table tbl ->
      bump_exact tbl
        { src = h.src; dst = h.dst; proto = h.proto; src_port = sp;
          dst_port = dp; portless = not ported }
        ~wire_bytes
  | Sketched e ->
      let meta =
        pack_meta
          ~portless:(if ported then 0 else 1)
          ~pn:(proto_number h.proto) ~sp ~dp
      in
      bump_sketch e.sk e.hh ~src:(addr_bits h.src) ~dst:(addr_bits h.dst)
        ~meta ~wire_bytes

(* Same attribution, straight off the received frame: no payload copy,
   no record construction, nothing allocated in sketch mode.  This is
   what lets `forward_fast` and the frame-handler delivery road keep
   accounting on without leaving the fast path. *)
let record_fast t (h : Ipv4.header) ~frame =
  let wire_bytes = Bytes.length frame in
  t.total_packets <- t.total_packets + 1;
  t.total_bytes <- t.total_bytes + wire_bytes;
  let pn = proto_number h.proto in
  let ported =
    (pn = 6 || pn = 17)
    && h.frag_offset = 0
    && wire_bytes >= Ipv4.header_size + 4
  in
  let sp =
    if ported then Bytes.get_uint16_be frame Ipv4.header_size else 0
  in
  let dp =
    if ported then Bytes.get_uint16_be frame (Ipv4.header_size + 2) else 0
  in
  match t.engine with
  | Sketched e ->
      let meta =
        pack_meta ~portless:(if ported then 0 else 1) ~pn ~sp ~dp
      in
      bump_sketch e.sk e.hh ~src:(addr_bits h.src) ~dst:(addr_bits h.dst)
        ~meta ~wire_bytes
  | Exact_table tbl ->
      (* The exact ledger hashes a boxed record — inherently allocating,
         and exactly why it is not the mode for scale runs. *)
      (bump_exact tbl
         { src = h.src; dst = h.dst; proto = h.proto; src_port = sp;
           dst_port = dp; portless = not ported }
         ~wire_bytes)
      [@fastpath.exempt]
[@@fastpath]

(* -- queries --------------------------------------------------------- *)

let pp_flow fmt f =
  Format.fprintf fmt "%a:%d -> %a:%d %a%s" Addr.pp f.src f.src_port Addr.pp
    f.dst f.dst_port Ipv4.Proto.pp f.proto
    (if f.portless then " (portless)" else "")

let flow_to_string f = Format.asprintf "%a" pp_flow f

(* The ledger hands out copies so callers cannot alias live counters. *)
let copy u = { packets = u.packets; bytes = u.bytes }

let take n l =
  let rec go n acc = function
    | x :: tl when n > 0 -> go (n - 1) (x :: acc) tl
    | _ -> List.rev acc
  in
  go n [] l

(* Refined sketch-mode estimate: the tracker count (estimate at
   admission plus exact increments) and the count-min estimate are both
   overestimates of the truth, so their min is too — and tighter than
   either alone. *)
let hh_usage sk hh i =
  { packets =
      min (Heavy_hitters.pkts_of hh i)
        (Sketch.estimate_packets sk (Heavy_hitters.fp_of hh i));
    bytes =
      min (Heavy_hitters.bytes_of hh i)
        (Sketch.estimate_bytes sk (Heavy_hitters.fp_of hh i)) }

let flows ?limit t =
  let all =
    match t.engine with
    | Exact_table tbl ->
        (* collect-then-sort below; the fold order never escapes *)
        (Hashtbl.fold (fun f u acc -> (f, copy u) :: acc) tbl []
        [@determinism.commutative])
    | Sketched e ->
        let acc = ref [] in
        Heavy_hitters.iter e.hh (fun i ->
            let f =
              flow_of_parts
                ~src:(Heavy_hitters.src_of e.hh i)
                ~dst:(Heavy_hitters.dst_of e.hh i)
                ~meta:(Heavy_hitters.meta_of e.hh i)
            in
            acc := (f, hh_usage e.sk e.hh i) :: !acc);
        !acc
  in
  (* Total order: bytes desc, then packets desc, then the rendered flow
     identity — equal-sized flows used to tie-break on hash-table
     iteration order, which leaked into to_json and the BENCH files. *)
  let sorted =
    List.sort
      (fun (f1, a) (f2, b) ->
        match Int.compare b.bytes a.bytes with
        | 0 -> (
            match Int.compare b.packets a.packets with
            | 0 -> String.compare (flow_to_string f1) (flow_to_string f2)
            | c -> c)
        | c -> c)
      all
  in
  match limit with None -> sorted | Some n -> take n sorted

(* -- epoch rotation -------------------------------------------------- *)

(* Snapshot-then-clear: the top flows of the closing epoch are copied
   out before the engines reset, so rotation loses the long tail (which
   sketch mode never held exactly anyway) but never the heavy hitters.
   History is bounded and newest-first; a zero limit disables it. *)
let rotate t =
  if t.history_limit > 0 then begin
    let snap =
      { snap_epoch = t.epoch;
        snap_packets = t.total_packets;
        snap_bytes = t.total_bytes;
        snap_top = flows ~limit:100 t }
    in
    t.history <- take t.history_limit (snap :: t.history)
  end;
  (match t.engine with
  | Exact_table tbl -> Hashtbl.reset tbl
  | Sketched e ->
      Sketch.clear e.sk;
      Heavy_hitters.clear e.hh);
  t.total_packets <- 0;
  t.total_bytes <- 0;
  t.epoch <- t.epoch + 1

let history t = t.history

let lookup t flow =
  match t.engine with
  | Exact_table tbl -> Option.map copy (Hashtbl.find_opt tbl flow)
  | Sketched e ->
      let fp = fingerprint_of_flow flow in
      let packets = Sketch.estimate_packets e.sk fp in
      if packets = 0 || packets = max_int then None
      else Some { packets; bytes = Sketch.estimate_bytes e.sk fp }

let total t = { packets = t.total_packets; bytes = t.total_bytes }

(* Exact mode counts flows; sketch mode estimates them (linear counting
   over the sketch's occupancy bitmap). *)
let flow_count t =
  match t.engine with
  | Exact_table tbl -> Hashtbl.length tbl
  | Sketched e -> Sketch.cardinality e.sk

let tracked_count t =
  match t.engine with
  | Exact_table tbl -> Hashtbl.length tbl
  | Sketched e -> Heavy_hitters.size e.hh

let mode_to_string = function
  | Exact -> "exact"
  | Sketch { width; depth; top_k } ->
      Printf.sprintf "sketch/%dx%d/top%d" width depth top_k

let to_json ?(limit = 100) t =
  let open Trace.Json in
  let flow_list l =
    List
      (List.map
         (fun (f, u) ->
           Obj
             [ ("flow", Str (flow_to_string f));
               ("packets", Int u.packets); ("bytes", Int u.bytes) ])
         l)
  in
  Obj
    [ ("mode", Str (mode_to_string t.mode));
      ("epoch", Int t.epoch);
      ("flow_count", Int (flow_count t));
      ("total_packets", Int t.total_packets);
      ("total_bytes", Int t.total_bytes);
      ("flows", flow_list (flows ~limit t));
      ( "history",
        List
          (List.map
             (fun s ->
               Obj
                 [ ("epoch", Int s.snap_epoch);
                   ("packets", Int s.snap_packets);
                   ("bytes", Int s.snap_bytes);
                   ("top", flow_list (take limit s.snap_top)) ])
             t.history) ) ]

let metrics_items t () =
  [ ("flows", Trace.Metrics.Int (flow_count t));
    ("packets", Trace.Metrics.Int t.total_packets);
    ("bytes", Trace.Metrics.Int t.total_bytes);
    ("epoch", Trace.Metrics.Int t.epoch);
    ("history_epochs", Trace.Metrics.Int (List.length t.history)) ]
