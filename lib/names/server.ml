module Addr = Packet.Addr
module Wire = Names_wire

(* An authoritative name-server endpoint: a UDP socket at the authority
   port plus a pure closure from query to answer.  Authorities hold
   *hard* state (their zone is configuration, like connected routes) —
   all the soft state in the name system lives in resolver caches, so a
   crashed authority comes back with its zone intact and the resolvers
   re-learn everything else. *)

let well_known_port = 5353

type answer =
  | Answer of { aa : bool; rcode : int; ttl_s : int; answer : int }
  | Referral of { server : int; ttl_s : int }
      (** Non-terminal: ask [server] (address bits) next. *)

type stats = {
  mutable queries : int;
  mutable referrals : int;
  mutable refused : int;
  mutable bad : int;  (* undecodable or unexpected (response to us) *)
}

type t = {
  udp : Udp.t;
  sock : Udp.socket;
  src : Addr.t option;
  stats : stats;
}

let stats t = t.stats

let reply t ~dst ~dst_port msg =
  ignore
    (Udp.sendto t.sock ?src:t.src ~dst ~dst_port (Wire.encode msg)
      : (unit, Udp.send_error) result)

let handle t authority ~src ~src_port buf =
  match Wire.decode buf with
  | Error _ -> t.stats.bad <- t.stats.bad + 1
  | Ok q when q.Wire.response -> t.stats.bad <- t.stats.bad + 1
  | Ok q ->
      t.stats.queries <- t.stats.queries + 1;
      if q.Wire.rd then begin
        (* A pure authority does no recursion; cacheable refusal is
           wrong (the client should retry a real resolver), so TTL 0. *)
        t.stats.refused <- t.stats.refused + 1;
        reply t ~dst:src ~dst_port:src_port
          (Wire.response ~of_:q ~aa:false ~rcode:Wire.rcode_refused ~ttl_s:0
             ~answer:0)
      end
      else
        match authority ~src q with
        | Answer { aa; rcode; ttl_s; answer } ->
            reply t ~dst:src ~dst_port:src_port
              (Wire.response ~of_:q ~aa ~rcode ~ttl_s ~answer)
        | Referral { server; ttl_s } ->
            t.stats.referrals <- t.stats.referrals + 1;
            reply t ~dst:src ~dst_port:src_port
              { (Wire.response ~of_:q ~aa:false ~rcode:Wire.rcode_referral
                   ~ttl_s ~answer:server)
                with Wire.qtype = Wire.qtype_deleg }

let create ~udp ?src ?(port = well_known_port) ~authority () =
  let stats = { queries = 0; referrals = 0; refused = 0; bad = 0 } in
  let t_ref = ref None in
  let sock =
    Udp.bind udp ~port
      ~recv:(fun ~src ~src_port buf ->
        match !t_ref with
        | Some t -> handle t authority ~src ~src_port buf
        | None -> ())
      ()
  in
  let t = { udp; sock; src; stats } in
  t_ref := Some t;
  t

(* A region's zone: host names (region, 0..hosts-1, 0), each mapping to
   the leaf's address.  Queries for another region's names are lame
   here — answer Refused so a buggy resolver fails loudly instead of
   caching garbage. *)
let region_authority ~region ~hosts ~host_addr_bits ~ttl_s ~src:_
    (q : Wire.t) =
  if q.Wire.qtype <> Wire.qtype_host || q.Wire.l0 <> region then
    Answer { aa = false; rcode = Wire.rcode_refused; ttl_s = 0; answer = 0 }
  else if q.Wire.l1 < hosts && q.Wire.l2 = 0 then
    Answer
      { aa = true; rcode = Wire.rcode_ok; ttl_s;
        answer = host_addr_bits q.Wire.l1 }
  else Answer { aa = true; rcode = Wire.rcode_nxname; ttl_s; answer = 0 }

(* The root zone: delegates each region's host names to that region's
   authority, and answers service names itself via [svc] (the anycast
   directory decides which replica, and with what rcode). *)
let root_authority ~regions ~region_server_bits ~deleg_ttl_s ~svc ~src
    (q : Wire.t) =
  if q.Wire.qtype = Wire.qtype_host then
    if q.Wire.l0 < regions then
      Referral { server = region_server_bits q.Wire.l0; ttl_s = deleg_ttl_s }
    else
      Answer
        { aa = true; rcode = Wire.rcode_nxname; ttl_s = deleg_ttl_s;
          answer = 0 }
  else svc ~src q
