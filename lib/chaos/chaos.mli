(** The survivability gauntlet (Clark goal 1): deterministic fault
    injection over the netsim primitives.

    A {!Schedule.t} is pure data (seeded, digestable); {!inject} arms
    one engine timer per entry; {!apply} translates a fault into netsim
    carrier/power changes, delegating crash semantics — what dies with a
    gateway beyond its reachability — to the environment's hooks, so the
    layer that owns soft state (Internet/routing) decides what a crash
    destroys without this library depending on it. *)

module Fault = Fault
module Schedule = Schedule
module Observer = Observer

type env = {
  env_net : Netsim.t;
  env_crash : Netsim.node_id -> unit;
      (** Take the node down {e and} destroy its soft state. *)
  env_restore : Netsim.node_id -> unit;  (** Power the node back on. *)
}

val env_of_netsim : Netsim.t -> env
(** Bare environment: crash/restore toggle power only.  Soft-state-aware
    crashes come from [Internet.chaos_env], which layers the flushes
    on. *)

val apply : env -> Fault.t -> unit

val inject : ?observer:Observer.t -> env -> Schedule.t -> unit
(** Arm one engine timer per schedule entry (firing immediately for
    entries already in the past). *)
