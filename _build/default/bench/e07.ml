(* E7 — Accountability (Clark §8, goal 7).

   The paper ranks accounting last among the military goals and notes the
   datagram architecture made it hard: gateways see packets, not
   conversations, and must reconstruct flows to bill anyone.  This
   experiment does that reconstruction at a transit gateway for a mix of
   TCP and UDP traffic, and checks the ledger against ground truth. *)

open Catenet

let run () =
  Util.banner "E7" "Accountability: per-flow ledger at a gateway"
    "gateways can meter resource usage by reconstructing flows from \
     self-describing datagrams";
  let t = Internet.create ~routing:Internet.Static () in
  let h1 = Internet.add_host t "h1" in
  let h2 = Internet.add_host t "h2" in
  let g = Internet.add_gateway t "g" in
  let p = Netsim.profile "trunk" ~bandwidth_bps:10_000_000 ~delay_us:2_000 in
  ignore (Internet.connect t p h1.Internet.h_node g.Internet.g_node);
  ignore (Internet.connect t p g.Internet.g_node h2.Internet.h_node);
  Internet.start t;
  let ledger = Ip.Stack.enable_accounting g.Internet.g_ip in

  (* Workload: two bulk TCP transfers of different sizes, a CBR stream and
     an echo session. *)
  let seed = 23 in
  ignore (Apps.Bulk.serve h2.Internet.h_tcp ~port:2001 ~seed);
  ignore (Apps.Bulk.serve h2.Internet.h_tcp ~port:2002 ~seed);
  let b1 =
    Apps.Bulk.start h1.Internet.h_tcp
      ~dst:(Internet.addr_of t h2.Internet.h_node)
      ~dst_port:2001 ~seed ~total:300_000 ()
  in
  let b2 =
    Apps.Bulk.start h1.Internet.h_tcp
      ~dst:(Internet.addr_of t h2.Internet.h_node)
      ~dst_port:2002 ~seed ~total:60_000 ()
  in
  let sink = Apps.Cbr.sink h2.Internet.h_udp ~port:5004 ~deadline_us:1_000_000 in
  ignore
    (Apps.Cbr.source h1.Internet.h_udp
       ~dst:(Internet.addr_of t h2.Internet.h_node)
       ~dst_port:5004 ~payload_bytes:160 ~period_us:20_000 ~count:250 ());
  Apps.Echo.serve h2.Internet.h_tcp ~port:7;
  let echo =
    Apps.Echo.client h1.Internet.h_tcp
      ~dst:(Internet.addr_of t h2.Internet.h_node)
      ~dst_port:7 ~message_bytes:64 ~period_us:100_000 ~count:30 ()
  in
  Internet.run_for t 60.0;

  (* Ground truth. *)
  let b1_ok = Apps.Bulk.finished b1 and b2_ok = Apps.Bulk.finished b2 in
  let cbr = Apps.Cbr.report sink in
  Printf.printf
    "  workload: bulk 300kB (%s), bulk 60kB (%s), cbr %d pkts, echo %d rtts\n"
    (if b1_ok then "done" else "incomplete")
    (if b2_ok then "done" else "incomplete")
    cbr.Apps.Cbr.received (Apps.Echo.completed echo);

  let flows = Ip.Accounting.flows ledger in
  Printf.printf "\n  gateway ledger (%d flows reconstructed):\n" (List.length flows);
  Util.table
    [ "flow"; "packets"; "bytes" ]
    (List.map
       (fun ((f : Ip.Accounting.flow), (u : Ip.Accounting.usage)) ->
         [
           Format.asprintf "%a" Ip.Accounting.pp_flow f;
           string_of_int u.Ip.Accounting.packets;
           string_of_int u.Ip.Accounting.bytes;
         ])
       flows);
  let total = Ip.Accounting.total ledger in
  let fwd = (Ip.Stack.counters g.Internet.g_ip).Ip.Stack.forwarded in
  Printf.printf "\n  ledger total: %d packets, %d bytes; gateway forwarded: %d packets\n"
    total.Ip.Accounting.packets total.Ip.Accounting.bytes fwd;
  Util.table
    [ "check"; "result" ]
    [
      [
        "every forwarded packet attributed";
        (if total.Ip.Accounting.packets = fwd then "yes" else "NO");
      ];
      [
        "bulk flows dominate ledger bytes";
        (let bulk_bytes =
           List.fold_left
             (fun acc ((f : Ip.Accounting.flow), (u : Ip.Accounting.usage)) ->
               if f.Ip.Accounting.dst_port >= 2001 && f.Ip.Accounting.dst_port <= 2002
               then acc + u.Ip.Accounting.bytes
               else acc)
             0 flows
         in
         if bulk_bytes > 300_000 then "yes" else "NO");
      ];
    ];
  Util.note
    "flow reconstruction works only because the datagram is self-describing \
     — and costs the gateway a table the architecture otherwise avoids, the \
     paper's point about accounting sitting awkwardly in a datagram network"
