(* Tests for the discrete-event engine: time ordering, determinism,
   cancellable timers, bounded runs. *)

let check = Alcotest.check


let test_time_starts_at_zero () =
  let e = Engine.create () in
  check Alcotest.int "t=0" 0 (Engine.now e)

let test_events_run_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:30 (fun () -> log := 30 :: !log);
  Engine.schedule e ~at:10 (fun () -> log := 10 :: !log);
  Engine.schedule e ~at:20 (fun () -> log := 20 :: !log);
  Engine.run e;
  check (Alcotest.list Alcotest.int) "order" [ 10; 20; 30 ] (List.rev !log);
  check Alcotest.int "clock at last event" 30 (Engine.now e)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~at:5 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  check (Alcotest.list Alcotest.int) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_schedule_in_past_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~at:10 (fun () -> ());
  Engine.run e;
  try
    Engine.schedule e ~at:5 (fun () -> ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_after_relative () =
  let e = Engine.create () in
  let fired_at = ref (-1) in
  Engine.schedule e ~at:100 (fun () ->
      Engine.after e 50 (fun () -> fired_at := Engine.now e));
  Engine.run e;
  check Alcotest.int "at 150" 150 !fired_at

let test_run_until_stops_clock () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.after e 1000 (fun () -> fired := true);
  Engine.run ~until:500 e;
  check Alcotest.bool "not fired" false !fired;
  check Alcotest.int "clock clamped" 500 (Engine.now e);
  check Alcotest.int "still pending" 1 (Engine.pending e);
  Engine.run ~until:1000 e;
  check Alcotest.bool "fired at boundary" true !fired

let test_max_events_guard () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec loop () =
    incr count;
    Engine.after e 1 loop
  in
  Engine.after e 1 loop;
  Engine.run ~max_events:100 e;
  check Alcotest.int "bounded" 100 !count

let test_timer_fires () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.Timer.start e ~after:10 (fun () -> fired := true) in
  check Alcotest.bool "active before" true (Engine.Timer.active h);
  Engine.run e;
  check Alcotest.bool "fired" true !fired;
  check Alcotest.bool "inactive after" false (Engine.Timer.active h)

let test_timer_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.Timer.start e ~after:10 (fun () -> fired := true) in
  Engine.Timer.cancel h;
  check Alcotest.bool "inactive" false (Engine.Timer.active h);
  Engine.run e;
  check Alcotest.bool "not fired" false !fired

let test_timer_cancel_idempotent () =
  let e = Engine.create () in
  let h = Engine.Timer.start e ~after:10 (fun () -> ()) in
  Engine.Timer.cancel h;
  Engine.Timer.cancel h;
  Engine.run e

let test_step () =
  let e = Engine.create () in
  let n = ref 0 in
  Engine.after e 1 (fun () -> incr n);
  Engine.after e 2 (fun () -> incr n);
  check Alcotest.bool "step 1" true (Engine.step e);
  check Alcotest.int "one ran" 1 !n;
  check Alcotest.bool "step 2" true (Engine.step e);
  check Alcotest.bool "step empty" false (Engine.step e)

let test_step_purges_cancelled () =
  (* A queue holding only cancelled shells yields no step at all. *)
  let e = Engine.create () in
  let fired = ref false in
  let t1 = Engine.Timer.start e ~after:1 (fun () -> fired := true) in
  let t2 = Engine.Timer.start e ~after:2 (fun () -> fired := true) in
  Engine.Timer.cancel t1;
  Engine.Timer.cancel t2;
  check Alcotest.int "two shells queued" 2 (Engine.pending e);
  check Alcotest.bool "no live event" false (Engine.step e);
  check Alcotest.bool "nothing fired" false !fired;
  check Alcotest.int "queue drained" 0 (Engine.pending e)

let test_step_runs_live_past_cancelled () =
  let e = Engine.create () in
  let ran = ref 0 in
  let t = Engine.Timer.start e ~after:1 (fun () -> ran := 10) in
  Engine.after e 5 (fun () -> ran := !ran + 1);
  Engine.Timer.cancel t;
  check Alcotest.bool "one step" true (Engine.step e);
  check Alcotest.int "live ran, cancelled skipped" 1 !ran;
  check Alcotest.int "clock at live event" 5 (Engine.now e)

let test_run_until_purge_respects_boundary () =
  (* A cancelled shell inside the window must not drag an event beyond
     [until] into the run. *)
  let e = Engine.create () in
  let late = ref false in
  let t = Engine.Timer.start e ~after:10 (fun () -> ()) in
  Engine.after e 100 (fun () -> late := true);
  Engine.Timer.cancel t;
  Engine.run ~until:50 e;
  check Alcotest.bool "beyond-window event not run" false !late;
  check Alcotest.int "clock parked at until" 50 (Engine.now e);
  Engine.run e;
  check Alcotest.bool "runs once resumed" true !late

let test_nested_scheduling_determinism () =
  (* Two identical engines given the same program must agree exactly. *)
  let trace e =
    let log = Buffer.create 64 in
    let rec tick i =
      Buffer.add_string log (Printf.sprintf "%d@%d;" i (Engine.now e));
      if i < 20 then begin
        Engine.after e ((i mod 3) + 1) (fun () -> tick (i + 1));
        Engine.after e 2 (fun () -> Buffer.add_string log "x;")
      end
    in
    Engine.after e 5 (fun () -> tick 0);
    Engine.run e;
    Buffer.contents log
  in
  check Alcotest.string "identical traces"
    (trace (Engine.create ()))
    (trace (Engine.create ()))

let prop_wheel_heap_equivalence =
  (* The timing wheel is a pure performance substitution: the same program
     of timers (near- and far-future), cancellations and plain events must
     produce the identical firing trace and final clock with the wheel on
     or off.  Delays straddle the wheel horizon (~2.1 s) so both routes in
     [Timer.start] are exercised. *)
  QCheck.Test.make ~name:"timer wheel fires identically to the heap"
    ~count:100
    QCheck.(list (triple (0 -- 3_000_000) (0 -- 50) bool))
    (fun ops ->
      let trace use_wheel =
        let e = Engine.create () in
        Engine.set_timer_wheel e use_wheel;
        let log = Buffer.create 256 in
        List.iteri
          (fun i (delay, cancel_at, do_cancel) ->
            let h =
              Engine.Timer.start e ~after:delay (fun () ->
                  Buffer.add_string log
                    (Printf.sprintf "t%d@%d;" i (Engine.now e)))
            in
            if do_cancel then
              Engine.schedule e ~at:cancel_at (fun () ->
                  Engine.Timer.cancel h))
          ops;
        Engine.run e;
        (Buffer.contents log, Engine.now e)
      in
      trace true = trace false)

let test_unit_conversions () =
  check Alcotest.int "ms" 2_000 (Engine.ms 2);
  check Alcotest.int "sec" 1_500_000 (Engine.sec 1.5);
  check (Alcotest.float 1e-9) "to_sec" 0.25 (Engine.to_sec 250_000)

let () =
  Alcotest.run "engine"
    [
      ( "clock",
        [
          Alcotest.test_case "starts at zero" `Quick test_time_starts_at_zero;
          Alcotest.test_case "time order" `Quick test_events_run_in_time_order;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "past rejected" `Quick test_schedule_in_past_rejected;
          Alcotest.test_case "after relative" `Quick test_after_relative;
          Alcotest.test_case "run until" `Quick test_run_until_stops_clock;
          Alcotest.test_case "max events" `Quick test_max_events_guard;
          Alcotest.test_case "units" `Quick test_unit_conversions;
        ] );
      ( "timers",
        [
          Alcotest.test_case "fires" `Quick test_timer_fires;
          Alcotest.test_case "cancel" `Quick test_timer_cancel;
          Alcotest.test_case "cancel idempotent" `Quick test_timer_cancel_idempotent;
          Alcotest.test_case "step" `Quick test_step;
          Alcotest.test_case "purge cancelled" `Quick test_step_purges_cancelled;
          Alcotest.test_case "purge then live" `Quick
            test_step_runs_live_past_cancelled;
          Alcotest.test_case "purge respects until" `Quick
            test_run_until_purge_respects_boundary;
          Alcotest.test_case "determinism" `Quick test_nested_scheduling_determinism;
          QCheck_alcotest.to_alcotest prop_wheel_heap_equivalence;
        ] );
    ]
