lib/tcp/sendbuf.ml: Bytes
