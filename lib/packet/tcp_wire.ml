type flags = {
  urg : bool;
  ack : bool;
  psh : bool;
  rst : bool;
  syn : bool;
  fin : bool;
}

let no_flags =
  { urg = false; ack = false; psh = false; rst = false; syn = false; fin = false }

let flags ?(urg = false) ?(ack = false) ?(psh = false) ?(rst = false)
    ?(syn = false) ?(fin = false) () =
  { urg; ack; psh; rst; syn; fin }

let pp_flags fmt f =
  let s =
    String.concat ""
      [
        (if f.syn then "S" else "");
        (if f.fin then "F" else "");
        (if f.rst then "R" else "");
        (if f.psh then "P" else "");
        (if f.ack then "A" else "");
        (if f.urg then "U" else "");
      ]
  in
  Format.pp_print_string fmt (if s = "" then "." else s)

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack_n : int;
  flags : flags;
  window : int;
  urgent : int;
  mss : int option;
  payload : bytes;
}

let make ?(seq = 0) ?(ack_n = 0) ?(flags = no_flags) ?(window = 0)
    ?(urgent = 0) ?(mss = None) ?(payload = Bytes.empty) ~src_port ~dst_port
    () =
  { src_port; dst_port; seq; ack_n; flags; window; urgent; mss; payload }

type error = [ `Truncated | `Bad_checksum | `Bad_header of string ]

let pp_error fmt = function
  | `Truncated -> Format.pp_print_string fmt "truncated segment"
  | `Bad_checksum -> Format.pp_print_string fmt "bad TCP checksum"
  | `Bad_header m -> Format.fprintf fmt "bad TCP header: %s" m

let header_size t = match t.mss with None -> 20 | Some _ -> 24

(* Machine-checked wire contract (see catenet-lint): fixed 20-byte
   header plus the single 4-byte MSS option this stack speaks.  The
   opt_* fields are written by encode but only read through the
   variable-offset option parser, which the linter cannot follow - the
   asymmetry is allowlisted. *)
let layout : (string * int * int) list =
  [ ("src_port", 0, 2);
    ("dst_port", 2, 2);
    ("seq", 4, 4);
    ("ack", 8, 4);
    ("off_flags", 12, 2);
    ("window", 14, 2);
    ("checksum", 16, 2);
    ("urgent", 18, 2);
    ("opt_kind", 20, 1);
    ("opt_len", 21, 1);
    ("opt_mss", 22, 2) ]

let flags_bits f =
  (if f.urg then 0x20 else 0)
  lor (if f.ack then 0x10 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.syn then 0x02 else 0)
  lor if f.fin then 0x01 else 0

let check_range name v bound =
  if v < 0 || v > bound then
    invalid_arg (Printf.sprintf "Tcp_wire.encode: %s out of range" name)

let encode ~src ~dst t =
  check_range "src_port" t.src_port 0xffff;
  check_range "dst_port" t.dst_port 0xffff;
  check_range "seq" t.seq 0xFFFFFFFF;
  check_range "ack" t.ack_n 0xFFFFFFFF;
  check_range "window" t.window 0xffff;
  check_range "urgent" t.urgent 0xffff;
  let hsize = header_size t in
  let total = hsize + Bytes.length t.payload in
  let module W = Stdext.Bytio.W in
  let w = W.create total in
  W.u16 w t.src_port;
  W.u16 w t.dst_port;
  W.u32_of_int w t.seq;
  W.u32_of_int w t.ack_n;
  let data_offset = hsize / 4 in
  W.u16 w ((data_offset lsl 12) lor flags_bits t.flags);
  W.u16 w t.window;
  W.u16 w 0 (* checksum placeholder *);
  W.u16 w t.urgent;
  (match t.mss with
  | None -> ()
  | Some mss ->
      check_range "mss" mss 0xffff;
      W.u8 w 2;
      W.u8 w 4;
      W.u16 w mss);
  W.bytes w t.payload;
  let buf = W.contents w in
  let acc =
    Checksum.pseudo_header ~src:(Addr.to_int32 src) ~dst:(Addr.to_int32 dst)
      ~proto:6 ~len:total
  in
  let csum = Checksum.of_bytes ~acc buf ~pos:0 ~len:total in
  Bytes.set_uint16_be buf 16 csum;
  buf

let header_bytes ~mss = match mss with None -> 20 | Some _ -> 24

(* Allocation-free counterpart of {!encode}: the caller has already placed
   the payload at [pos + header_bytes ~mss] in [buf] and we fill in the
   header around it, checksumming header and payload in a single pass.
   Byte-for-byte identical output to {!encode}. *)
let encode_into ~src ~dst ~src_port ~dst_port ~seq ~ack_n ~flags ~window
    ?(urgent = 0) ?(mss = None) ~payload_len buf ~pos =
  check_range "src_port" src_port 0xffff;
  check_range "dst_port" dst_port 0xffff;
  check_range "seq" seq 0xFFFFFFFF;
  check_range "ack" ack_n 0xFFFFFFFF;
  check_range "window" window 0xffff;
  check_range "urgent" urgent 0xffff;
  let hsize = header_bytes ~mss in
  let total = hsize + payload_len in
  if pos < 0 || payload_len < 0 || pos + total > Bytes.length buf then
    invalid_arg "Tcp_wire.encode_into: buffer too small";
  Bytes.set_uint16_be buf pos src_port;
  Bytes.set_uint16_be buf (pos + 2) dst_port;
  Bytes.set_int32_be buf (pos + 4) (Int32.of_int seq);
  Bytes.set_int32_be buf (pos + 8) (Int32.of_int ack_n);
  let data_offset = hsize / 4 in
  Bytes.set_uint16_be buf (pos + 12) ((data_offset lsl 12) lor flags_bits flags);
  Bytes.set_uint16_be buf (pos + 14) window;
  Bytes.set_uint16_be buf (pos + 16) 0 (* checksum placeholder *);
  Bytes.set_uint16_be buf (pos + 18) urgent;
  (match mss with
  | None -> ()
  | Some m ->
      check_range "mss" m 0xffff;
      Bytes.set_uint8 buf (pos + 20) 2;
      Bytes.set_uint8 buf (pos + 21) 4;
      Bytes.set_uint16_be buf (pos + 22) m);
  let acc =
    Checksum.pseudo_header ~src:(Addr.to_int32 src) ~dst:(Addr.to_int32 dst)
      ~proto:6 ~len:total
  in
  let csum = Checksum.of_bytes ~acc buf ~pos ~len:total in
  Bytes.set_uint16_be buf (pos + 16) csum;
  total

(* Parse the option block, accepting MSS, NOP and end-of-options and
   skipping unknown options by their declared length. *)
let parse_options buf ~pos ~len =
  let mss = ref None in
  let i = ref pos in
  let stop = pos + len in
  let bad = ref None in
  while !i < stop && !bad = None do
    match Bytes.get_uint8 buf !i with
    | 0 -> i := stop (* end of option list *)
    | 1 -> incr i (* NOP *)
    | kind ->
        if !i + 1 >= stop then bad := Some "truncated option"
        else begin
          let olen = Bytes.get_uint8 buf (!i + 1) in
          if olen < 2 || !i + olen > stop then bad := Some "bad option length"
          else begin
            if kind = 2 then
              if olen = 4 then mss := Some (Bytes.get_uint16_be buf (!i + 2))
              else bad := Some "bad MSS option length";
            i := !i + olen
          end
        end
  done;
  match !bad with Some m -> Error (`Bad_header m) | None -> Ok !mss

(* Validate the fixed header and checksum without building a [t]; the
   receive fast path reads the few fields it needs straight from the
   buffer via the [peek_*] accessors below and only falls back to
   {!of_peeked} when full dispatch is required. *)
let peek ~src ~dst ?(pos = 0) buf =
  let len = Bytes.length buf - pos in
  if len < 20 then Error `Truncated
  else begin
    let off_flags = Bytes.get_uint16_be buf (pos + 12) in
    let data_offset = (off_flags lsr 12) * 4 in
    if data_offset < 20 || data_offset > len then
      Error (`Bad_header "bad data offset")
    else begin
      let acc =
        Checksum.pseudo_header ~src:(Addr.to_int32 src)
          ~dst:(Addr.to_int32 dst) ~proto:6 ~len
      in
      if not (Checksum.valid ~acc buf ~pos ~len) then Error `Bad_checksum
      else Ok data_offset
    end
  end

let peek_src_port ?(pos = 0) buf = Bytes.get_uint16_be buf pos [@@fastpath]
let peek_dst_port ?(pos = 0) buf = Bytes.get_uint16_be buf (pos + 2) [@@fastpath]

let peek_u32 buf p = Int32.to_int (Bytes.get_int32_be buf p) land 0xFFFFFFFF [@@fastpath]

let peek_seq ?(pos = 0) buf = peek_u32 buf (pos + 4) [@@fastpath]
let peek_ack_n ?(pos = 0) buf = peek_u32 buf (pos + 8) [@@fastpath]
let peek_flag_bits ?(pos = 0) buf = Bytes.get_uint16_be buf (pos + 12) land 0x3f [@@fastpath]
let peek_window ?(pos = 0) buf = Bytes.get_uint16_be buf (pos + 14) [@@fastpath]

let of_peeked buf ~data_offset =
  let len = Bytes.length buf in
  match parse_options buf ~pos:20 ~len:(data_offset - 20) with
  | Error _ as e -> e
  | Ok mss ->
      let bits = Bytes.get_uint16_be buf 12 land 0x3f in
      let flags =
        {
          urg = bits land 0x20 <> 0;
          ack = bits land 0x10 <> 0;
          psh = bits land 0x08 <> 0;
          rst = bits land 0x04 <> 0;
          syn = bits land 0x02 <> 0;
          fin = bits land 0x01 <> 0;
        }
      in
      Ok
        {
          src_port = peek_src_port buf;
          dst_port = peek_dst_port buf;
          seq = peek_seq buf;
          ack_n = peek_ack_n buf;
          flags;
          window = peek_window buf;
          urgent = Bytes.get_uint16_be buf 18;
          mss;
          payload = Bytes.sub buf data_offset (len - data_offset);
        }

let decode ~src ~dst buf =
  match peek ~src ~dst buf with
  | Error _ as e -> e
  | Ok data_offset -> of_peeked buf ~data_offset

let pp fmt t =
  Format.fprintf fmt "%d>%d %a seq=%d ack=%d win=%d len=%d%s" t.src_port
    t.dst_port pp_flags t.flags t.seq t.ack_n t.window
    (Bytes.length t.payload)
    (match t.mss with None -> "" | Some m -> Printf.sprintf " mss=%d" m)
