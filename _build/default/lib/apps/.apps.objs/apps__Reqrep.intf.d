lib/apps/reqrep.mli: Packet Stdext Tcp
