module Cell = Cell

type stats = {
  mutable calls_attempted : int;
  mutable calls_established : int;
  mutable calls_cleared : int;
  mutable data_cells : int;
  mutable hop_retransmits : int;
  mutable hop_acks : int;
  mutable cells_delivered : int;
}

type config = {
  hop_window : int;
  hop_rto_us : int;
  hop_retries : int;
  setup_timeout_us : int;
  carrier_poll_us : int;
  switch_buffer_cells : int;
}

let default_config =
  {
    hop_window = 16;
    hop_rto_us = 200_000;
    hop_retries = 10;
    setup_timeout_us = 2_000_000;
    carrier_poll_us = 100_000;
    switch_buffer_cells = 4096;
  }

(* Go-back-N sender state for one hop of one circuit. *)
type hop_tx = {
  mutable next_seq : int;
  mutable base_seq : int;
  mutable sent_hi : int; (* sequences below this have been transmitted *)
  txq : (int * bytes) Queue.t;
  mutable timer : Engine.Timer.handle option;
  mutable retries : int;
}

let new_hop_tx () =
  {
    next_seq = 0;
    base_seq = 0;
    sent_hi = 0;
    txq = Queue.create ();
    timer = None;
    retries = 0;
  }

type t = {
  net : Netsim.t;
  eng : Engine.t;
  cfg : config;
  switches : (Netsim.node_id, switch) Hashtbl.t;
  stats : stats;
}

and switch = {
  sw_node : Netsim.node_id;
  sw_table : (int * int, seg) Hashtbl.t; (* (iface, vci) -> segment *)
  mutable sw_next_vci : int;
  mutable sw_listener : (circuit -> unit) option;
}

and circuit = {
  ep_fabric : t;
  ep_node : Netsim.node_id;
  mutable ep_seg : seg option;
  mutable ep_open : bool;
  mutable ep_cleared : bool;
  mutable ep_cb_data : (bytes -> unit) option;
  mutable ep_cb_clear : (Cell.clear_reason -> unit) option;
  mutable ep_cb_accept : (unit -> unit) option;
  mutable ep_setup_timer : Engine.Timer.handle option;
}

and link_port = {
  lp_iface : Netsim.iface;
  lp_vci : int;
  lp_tx : hop_tx;
  mutable lp_rx_expect : int;
}

and port = Endpoint of circuit | Link of link_port

and seg = {
  seg_node : Netsim.node_id;
  pa : port; (* toward the caller *)
  pb : port; (* toward the callee *)
  mutable seg_alive : bool;
}

let stats t = t.stats

let switch_of t node =
  match Hashtbl.find_opt t.switches node with
  | Some sw -> sw
  | None -> invalid_arg "Vc: node is not an attached switch"

(* Ports are compared physically; always pass the values stored in the
   segment itself. *)
let other_port seg port = if port == seg.pa then seg.pb else seg.pa

let port_of_endpoint seg ep =
  match seg.pa with
  | Endpoint e when e == ep -> seg.pa
  | Endpoint _ | Link _ -> seg.pb

let alloc_vci sw =
  let v = sw.sw_next_vci in
  sw.sw_next_vci <- (if v + 1 > 0xffff then 1 else v + 1);
  v

let send_cell t node iface cell =
  ignore (Netsim.send t.net node ~iface (Cell.encode cell))

(* --- per-hop reliable transmission ------------------------------------- *)

let rec hop_try_transmit t node (lp : link_port) =
  let tx = lp.lp_tx in
  let limit = tx.base_seq + t.cfg.hop_window in
  Queue.iter
    (fun (seq, payload) ->
      if seq >= tx.sent_hi && seq < limit then begin
        send_cell t node lp.lp_iface
          (Cell.Data { vci = lp.lp_vci; seq; payload });
        tx.sent_hi <- max tx.sent_hi (seq + 1)
      end)
    tx.txq;
  if tx.timer = None && not (Queue.is_empty tx.txq) then hop_arm_timer t node lp

and hop_arm_timer t node lp =
  let tx = lp.lp_tx in
  tx.timer <-
    Some
      (Engine.Timer.start t.eng ~after:t.cfg.hop_rto_us (fun () ->
           tx.timer <- None;
           if not (Queue.is_empty tx.txq) then begin
             tx.retries <- tx.retries + 1;
             if tx.retries > t.cfg.hop_retries then hop_give_up t node lp
             else begin
               (* Go-back-N: rewind and resend the whole window. *)
               t.stats.hop_retransmits <- t.stats.hop_retransmits + 1;
               tx.sent_hi <- tx.base_seq;
               hop_try_transmit t node lp;
               if tx.timer = None then hop_arm_timer t node lp
             end
           end))

and hop_give_up t node lp =
  let sw = switch_of t node in
  match Hashtbl.find_opt sw.sw_table (lp.lp_iface, lp.lp_vci) with
  | Some seg -> clear_seg t seg Cell.Hop_timeout ~skip:None
  | None -> ()

and hop_send t node (lp : link_port) payload =
  let tx = lp.lp_tx in
  if Queue.length tx.txq >= t.cfg.switch_buffer_cells then false
  else begin
    let seq = tx.next_seq in
    tx.next_seq <- seq + 1;
    Queue.push (seq, payload) tx.txq;
    t.stats.data_cells <- t.stats.data_cells + 1;
    hop_try_transmit t node lp;
    true
  end

and hop_handle_ack t node (lp : link_port) seq16 =
  let tx = lp.lp_tx in
  t.stats.hop_acks <- t.stats.hop_acks + 1;
  (* Unwrap the 16-bit cumulative ack against the window base. *)
  let d = (seq16 - (tx.base_seq land 0xffff)) land 0xffff in
  let sd = if d >= 32768 then d - 65536 else d in
  let ackn = tx.base_seq + sd in
  if ackn > tx.base_seq && ackn <= tx.next_seq then begin
    while (not (Queue.is_empty tx.txq)) && fst (Queue.peek tx.txq) < ackn do
      ignore (Queue.pop tx.txq)
    done;
    tx.base_seq <- ackn;
    if tx.sent_hi < ackn then tx.sent_hi <- ackn;
    tx.retries <- 0;
    (match tx.timer with
    | Some h ->
        Engine.Timer.cancel h;
        tx.timer <- None
    | None -> ());
    hop_try_transmit t node lp
  end

(* --- circuit teardown ---------------------------------------------------- *)

and clear_endpoint t ep reason =
  if not ep.ep_cleared then begin
    ep.ep_cleared <- true;
    ep.ep_open <- false;
    t.stats.calls_cleared <- t.stats.calls_cleared + 1;
    (match ep.ep_setup_timer with
    | Some h ->
        Engine.Timer.cancel h;
        ep.ep_setup_timer <- None
    | None -> ());
    match ep.ep_cb_clear with Some f -> f reason | None -> ()
  end

and release_port t node ~notify reason port =
  match port with
  | Endpoint ep -> clear_endpoint t ep reason
  | Link lp ->
      let sw = switch_of t node in
      Hashtbl.remove sw.sw_table (lp.lp_iface, lp.lp_vci);
      (match lp.lp_tx.timer with
      | Some h ->
          Engine.Timer.cancel h;
          lp.lp_tx.timer <- None
      | None -> ());
      if notify then
        send_cell t node lp.lp_iface (Cell.Clear { vci = lp.lp_vci; reason })

and clear_seg t seg reason ~skip =
  if seg.seg_alive then begin
    seg.seg_alive <- false;
    let maybe p =
      let skip_this = match skip with Some s -> s == p | None -> false in
      release_port t seg.seg_node ~notify:(not skip_this) reason p
    in
    maybe seg.pa;
    maybe seg.pb
  end

(* Clearing a doomed segment emits Clear cells onto the network, so the
   sweep must visit switches and table entries in canonical (node, then
   (iface, vci)) order — event ordering is part of the replay
   contract. *)
let check_carriers t =
  let entry_compare (i1, v1) (i2, v2) =
    match Int.compare i1 i2 with 0 -> Int.compare v1 v2 | c -> c
  in
  Stdext.Det.sorted_iter ~compare:Int.compare
    (fun node sw ->
      if Netsim.node_is_up t.net node then begin
        let doomed = ref [] in
        List.iter
          (fun ((iface, _), seg) ->
            let link = Netsim.iface_link t.net node iface in
            let peer, _ = Netsim.peer t.net node iface in
            let reason =
              if not (Netsim.link_is_up t.net link) then Some Cell.Link_failure
              else if not (Netsim.node_is_up t.net peer) then
                Some Cell.Node_failure
              else None
            in
            match reason with
            | Some r -> doomed := (seg, r) :: !doomed
            | None -> ())
          (Stdext.Det.sorted_bindings ~compare:entry_compare sw.sw_table);
        List.iter (fun (seg, r) -> clear_seg t seg r ~skip:None)
          (List.rev !doomed)
      end)
    t.switches

(* --- path computation (central routing, early-PDN style) ---------------- *)

let find_path t ~src ~dst =
  if src = dst then None
  else begin
    let n = Netsim.node_count t.net in
    let prev = Array.make n (-1) in
    let seen = Array.make n false in
    seen.(src) <- true;
    let q = Queue.create () in
    Queue.push src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      for i = 0 to Netsim.iface_count t.net u - 1 do
        let link = Netsim.iface_link t.net u i in
        let v, _ = Netsim.peer t.net u i in
        if
          Netsim.link_is_up t.net link
          && Netsim.node_is_up t.net v
          && Hashtbl.mem t.switches v
          && not seen.(v)
        then begin
          seen.(v) <- true;
          prev.(v) <- u;
          Queue.push v q
        end
      done
    done;
    if not seen.(dst) then None
    else begin
      let rec walk acc v = if v = src then acc else walk (v :: acc) prev.(v) in
      Some (walk [] dst)
    end
  end

let iface_toward t node next =
  let rec scan i =
    if i >= Netsim.iface_count t.net node then None
    else begin
      let v, _ = Netsim.peer t.net node i in
      let link = Netsim.iface_link t.net node i in
      if v = next && Netsim.link_is_up t.net link then Some i else scan (i + 1)
    end
  in
  scan 0

(* --- cell reception ------------------------------------------------------ *)

let handle_setup t sw ~iface ~vci ~src ~path =
  let node = sw.sw_node in
  let in_port =
    Link
      { lp_iface = iface; lp_vci = vci; lp_tx = new_hop_tx (); lp_rx_expect = 0 }
  in
  match path with
  | [] -> (
      (* We are the destination. *)
      match sw.sw_listener with
      | None -> send_cell t node iface (Cell.Clear { vci; reason = Cell.Refused })
      | Some accept ->
          let ep =
            {
              ep_fabric = t;
              ep_node = node;
              ep_seg = None;
              ep_open = true;
              ep_cleared = false;
              ep_cb_data = None;
              ep_cb_clear = None;
              ep_cb_accept = None;
              ep_setup_timer = None;
            }
          in
          let seg =
            { seg_node = node; pa = in_port; pb = Endpoint ep; seg_alive = true }
          in
          ep.ep_seg <- Some seg;
          Hashtbl.replace sw.sw_table (iface, vci) seg;
          send_cell t node iface (Cell.Accept { vci });
          accept ep)
  | next :: rest -> (
      match iface_toward t node next with
      | None -> send_cell t node iface (Cell.Clear { vci; reason = Cell.No_route })
      | Some out_iface ->
          let out_vci = alloc_vci sw in
          let out_port =
            Link
              {
                lp_iface = out_iface;
                lp_vci = out_vci;
                lp_tx = new_hop_tx ();
                lp_rx_expect = 0;
              }
          in
          let seg =
            { seg_node = node; pa = in_port; pb = out_port; seg_alive = true }
          in
          Hashtbl.replace sw.sw_table (iface, vci) seg;
          Hashtbl.replace sw.sw_table (out_iface, out_vci) seg;
          send_cell t node out_iface
            (Cell.Setup { vci = out_vci; src; path = rest }))

let relay_payload t seg ~from_port payload =
  match other_port seg from_port with
  | Endpoint ep -> (
      t.stats.cells_delivered <- t.stats.cells_delivered + 1;
      match ep.ep_cb_data with Some f -> f payload | None -> ())
  | Link lp -> ignore (hop_send t seg.seg_node lp payload)

(* Which stored port of [seg] matches an arriving (iface, vci)? *)
let arrival_port seg ~iface ~vci =
  let matches = function
    | Link lp -> lp.lp_iface = iface && lp.lp_vci = vci
    | Endpoint _ -> false
  in
  if matches seg.pa then Some seg.pa
  else if matches seg.pb then Some seg.pb
  else None

let handle_frame t sw ~iface frame =
  let node = sw.sw_node in
  match Cell.decode frame with
  | Error _ -> ()
  | Ok (Cell.Setup { vci; src; path }) -> handle_setup t sw ~iface ~vci ~src ~path
  | Ok (Cell.Accept { vci }) -> (
      match Hashtbl.find_opt sw.sw_table (iface, vci) with
      | None -> ()
      | Some seg -> (
          (* Accept flows toward the caller: out the pa side. *)
          match seg.pa with
          | Endpoint ep ->
              if not ep.ep_open then begin
                ep.ep_open <- true;
                (match ep.ep_setup_timer with
                | Some h ->
                    Engine.Timer.cancel h;
                    ep.ep_setup_timer <- None
                | None -> ());
                t.stats.calls_established <- t.stats.calls_established + 1;
                match ep.ep_cb_accept with Some f -> f () | None -> ()
              end
          | Link lp ->
              send_cell t node lp.lp_iface (Cell.Accept { vci = lp.lp_vci })))
  | Ok (Cell.Clear { vci; reason }) -> (
      match Hashtbl.find_opt sw.sw_table (iface, vci) with
      | None -> ()
      | Some seg -> clear_seg t seg reason ~skip:(arrival_port seg ~iface ~vci))
  | Ok (Cell.Data { vci; seq; payload }) -> (
      match Hashtbl.find_opt sw.sw_table (iface, vci) with
      | None ->
          (* Unknown circuit: the X.25 answer is a clear. *)
          send_cell t node iface (Cell.Clear { vci; reason = Cell.Remote_clear })
      | Some seg -> (
          match arrival_port seg ~iface ~vci with
          | Some (Link lp as p) ->
              let d = (seq - (lp.lp_rx_expect land 0xffff)) land 0xffff in
              let sd = if d >= 32768 then d - 65536 else d in
              let actual = lp.lp_rx_expect + sd in
              if actual = lp.lp_rx_expect then begin
                lp.lp_rx_expect <- lp.lp_rx_expect + 1;
                send_cell t node iface
                  (Cell.Hop_ack { vci; seq = lp.lp_rx_expect land 0xffff });
                relay_payload t seg ~from_port:p payload
              end
              else
                (* Go-back-N gap or duplicate: re-ack what we expect. *)
                send_cell t node iface
                  (Cell.Hop_ack { vci; seq = lp.lp_rx_expect land 0xffff })
          | Some (Endpoint _) | None -> ()))
  | Ok (Cell.Hop_ack { vci; seq }) -> (
      match Hashtbl.find_opt sw.sw_table (iface, vci) with
      | None -> ()
      | Some seg -> (
          match arrival_port seg ~iface ~vci with
          | Some (Link lp) -> hop_handle_ack t node lp seq
          | Some (Endpoint _) | None -> ()))

(* --- public API ----------------------------------------------------------- *)

let create ?(config = default_config) net =
  let t =
    {
      net;
      eng = Netsim.engine net;
      cfg = config;
      switches = Hashtbl.create 16;
      stats =
        {
          calls_attempted = 0;
          calls_established = 0;
          calls_cleared = 0;
          data_cells = 0;
          hop_retransmits = 0;
          hop_acks = 0;
          cells_delivered = 0;
        };
    }
  in
  let rec poll () =
    check_carriers t;
    Engine.after t.eng t.cfg.carrier_poll_us poll
  in
  Engine.after t.eng t.cfg.carrier_poll_us poll;
  t

let attach t node =
  if not (Hashtbl.mem t.switches node) then begin
    let sw =
      {
        sw_node = node;
        sw_table = Hashtbl.create 16;
        sw_next_vci = 1;
        sw_listener = None;
      }
    in
    Hashtbl.replace t.switches node sw;
    Netsim.set_handler t.net node (fun ~iface frame ->
        handle_frame t sw ~iface frame)
  end

let listen t node accept = (switch_of t node).sw_listener <- Some accept

let on_data ep f = ep.ep_cb_data <- Some f
let on_clear ep f = ep.ep_cb_clear <- Some f
let is_open ep = ep.ep_open && not ep.ep_cleared

let call t ~src ~dst ?on_accept ?on_clear () =
  let sw = switch_of t src in
  t.stats.calls_attempted <- t.stats.calls_attempted + 1;
  let ep =
    {
      ep_fabric = t;
      ep_node = src;
      ep_seg = None;
      ep_open = false;
      ep_cleared = false;
      ep_cb_data = None;
      ep_cb_clear = on_clear;
      ep_cb_accept = on_accept;
      ep_setup_timer = None;
    }
  in
  (match find_path t ~src ~dst with
  | None | Some [] ->
      Engine.after t.eng 1 (fun () -> clear_endpoint t ep Cell.No_route)
  | Some (first :: rest) -> (
      match iface_toward t src first with
      | None ->
          Engine.after t.eng 1 (fun () -> clear_endpoint t ep Cell.No_route)
      | Some out_iface ->
          let out_vci = alloc_vci sw in
          let out_port =
            Link
              {
                lp_iface = out_iface;
                lp_vci = out_vci;
                lp_tx = new_hop_tx ();
                lp_rx_expect = 0;
              }
          in
          let seg =
            { seg_node = src; pa = Endpoint ep; pb = out_port; seg_alive = true }
          in
          ep.ep_seg <- Some seg;
          Hashtbl.replace sw.sw_table (out_iface, out_vci) seg;
          ep.ep_setup_timer <-
            Some
              (Engine.Timer.start t.eng ~after:t.cfg.setup_timeout_us
                 (fun () ->
                   ep.ep_setup_timer <- None;
                   if not ep.ep_open then
                     clear_seg t seg Cell.No_route ~skip:None));
          send_cell t src out_iface
            (Cell.Setup { vci = out_vci; src; path = rest })));
  ep

let send ep payload =
  let t = ep.ep_fabric in
  match ep.ep_seg with
  | Some seg when is_open ep && seg.seg_alive -> (
      match other_port seg (port_of_endpoint seg ep) with
      | Link lp -> hop_send t ep.ep_node lp payload
      | Endpoint _ -> false)
  | Some _ | None -> false

let max_payload t ep =
  match ep.ep_seg with
  | Some seg -> (
      match other_port seg (port_of_endpoint seg ep) with
      | Link lp ->
          Netsim.iface_mtu t.net ep.ep_node lp.lp_iface - Cell.data_header_size
      | Endpoint _ -> 0)
  | None -> 0

let clear ep =
  let t = ep.ep_fabric in
  match ep.ep_seg with
  | Some seg -> clear_seg t seg Cell.Remote_clear ~skip:None
  | None -> clear_endpoint t ep Cell.Remote_clear

let switch_state_count t node = Hashtbl.length (switch_of t node).sw_table

(* A sum is commutative; iteration order cannot show. *)
let total_switch_state t =
  (Hashtbl.fold (fun _ sw acc -> acc + Hashtbl.length sw.sw_table) t.switches 0
  [@determinism.commutative])
