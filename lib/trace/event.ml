module Addr = Packet.Addr

(* Why a frame or datagram died.  One flat enumeration across layers so a
   post-mortem can ask "what killed traffic to X" without knowing in
   advance which layer to blame — the accountability gap (Clark goal 7)
   this subsystem exists to close. *)
type drop_reason =
  | Queue_full  (** Link output queue tail drop (congestion). *)
  | Link_loss  (** Random in-flight frame loss. *)
  | Link_down  (** Send attempted while the link or node was down. *)
  | Link_mtu  (** Frame larger than the link MTU. *)
  | Malformed  (** Failed header validation. *)
  | No_route  (** Routing table had no matching entry. *)
  | Ttl_expired
  | No_proto  (** No local handler for the protocol. *)
  | Not_forwarding  (** Transit datagram at a non-forwarding host. *)
  | Df_needed  (** Needed fragmenting but DF was set. *)
  | Unroutable_icmp  (** An ICMP error itself had no route back. *)
  | Reassembly_timeout

let drop_reason_to_string = function
  | Queue_full -> "queue_full"
  | Link_loss -> "link_loss"
  | Link_down -> "link_down"
  | Link_mtu -> "link_mtu"
  | Malformed -> "malformed"
  | No_route -> "no_route"
  | Ttl_expired -> "ttl_expired"
  | No_proto -> "no_proto"
  | Not_forwarding -> "not_forwarding"
  | Df_needed -> "df_needed"
  | Unroutable_icmp -> "unroutable_icmp"
  | Reassembly_timeout -> "reassembly_timeout"

(* The metrics counter each drop reason is accounted under.  This is the
   drop-reason -> counter half of the accountability contract; catenet-lint
   checks it is total, that every counter named here is a registered
   metrics key, and that every constructor has a real emission site.  The
   names differ from {!drop_reason_to_string} because they predate this
   table: link-layer drops live in Netsim's per-direction [drops_*]
   counters, IP drops in Stack's [dropped_*] family, and reassembly
   expiry under the name the E15 artifacts already ship. *)
let drop_reason_counter = function
  | Queue_full -> "drops_queue"
  | Link_loss -> "drops_loss"
  | Link_down -> "drops_down"
  | Link_mtu -> "drops_mtu"
  | Malformed -> "dropped_malformed"
  | No_route -> "dropped_no_route"
  | Ttl_expired -> "dropped_ttl"
  | No_proto -> "dropped_no_proto"
  | Not_forwarding -> "dropped_not_forwarding"
  | Df_needed -> "dropped_df"
  | Unroutable_icmp -> "dropped_unroutable_icmp"
  | Reassembly_timeout -> "reassembly_expired"

type route_action = Route_add | Route_remove | Route_clear

(* Which RFC 5961 guard fired in the TCP receive path: a blind segment was
   neutralized (rejected or answered with a challenge ACK) instead of
   tearing the connection down. *)
type tcp_guard_kind =
  | Guard_rst_inexact  (** In-window RST whose seq <> rcv_nxt. *)
  | Guard_syn_in_window  (** SYN inside the window of a live connection. *)
  | Guard_ack_invalid  (** ACK outside [snd_una - max_wnd, snd_max]. *)
  | Guard_challenge_ack  (** Challenge ACK transmitted. *)

let tcp_guard_kind_to_string = function
  | Guard_rst_inexact -> "rst_inexact"
  | Guard_syn_in_window -> "syn_in_window"
  | Guard_ack_invalid -> "ack_invalid"
  | Guard_challenge_ack -> "challenge_ack"

(* One lifecycle event.  Every constructor carries plain scalars (node and
   link ids, addresses, lengths): recording an event allocates the
   constructor block and nothing else, and none is constructed at all
   unless its class is enabled. *)
type t =
  | Link_enqueue of { link : int; dir : int; len : int; priority : bool }
  | Link_dequeue of { link : int; dir : int; len : int }
      (** Transmission onto the wire completed. *)
  | Link_deliver of { link : int; dir : int; len : int }
  | Link_drop of { link : int; dir : int; len : int; reason : drop_reason }
  | Ip_forward of
      { node : int; src : Addr.t; dst : Addr.t; ttl : int; len : int }
  | Ip_deliver of
      { node : int; src : Addr.t; dst : Addr.t; proto : int; len : int }
  | Ip_drop of
      { node : int; src : Addr.t; dst : Addr.t; reason : drop_reason }
  | Ip_fragment of { node : int; id : int; frag_offset : int; len : int }
  | Ip_reassembled of { node : int; id : int; len : int }
  | Tcp_segment_out of
      { node : int;
        dst : Addr.t;
        dst_port : int;
        seq : int;
        len : int;
        flags : int  (** bit 0 fin, 1 syn, 2 rst, 3 psh, 4 ack. *)
      }
  | Tcp_retransmit of { node : int; dst : Addr.t; seq : int; len : int }
  | Tcp_rto_fire of { node : int; dst : Addr.t; retries : int }
  | Tcp_guard of { node : int; dst : Addr.t; kind : tcp_guard_kind }
  | Timer_arm of { at : int }
  | Timer_fire of { at : int }
  | Route_change of
      { prefix : Addr.Prefix.t; metric : int; action : route_action }
  | Fault_link of { link : int; up : bool }
      (** Link carrier state changed (fault injected or healed). *)
  | Fault_node of { node : int; up : bool }
      (** Node crashed or rebooted. *)
  | Fault_soft_reset of { node : int }
      (** A node's soft state (route cache, RIB, reassembly) was cleared. *)
  | Name_lookup of { node : int; qtype : int; hit : bool }
      (** A resolver answered a client query from (or past) its cache. *)
  | Name_upstream of { node : int; qtype : int; retry : int }
      (** A resolver sent (or re-sent) an iterative query upstream. *)
  | Name_answer of { node : int; rcode : int; ttl : int }
      (** A terminal answer (or SERVFAIL) reached the querying client. *)
  | Name_failover of { service : int; replica : int; up : bool }
      (** An anycast replica's health state flipped. *)

(* Event classes, a bitmask: the recorder's enable check is one [land]
   against these.  Keep them disjoint powers of two. *)
module Cls = struct
  let link = 1
  let ip = 2
  let frag = 4
  let tcp = 8
  let timer = 16
  let route = 32
  let fault = 64
  let name = 128

  let all =
    link lor ip lor frag lor tcp lor timer lor route lor fault lor name

  let to_string c =
    let names =
      [ (link, "link"); (ip, "ip"); (frag, "frag"); (tcp, "tcp");
        (timer, "timer"); (route, "route"); (fault, "fault");
        (name, "name") ]
    in
    String.concat "+"
      (List.filter_map
         (fun (bit, n) -> if c land bit <> 0 then Some n else None)
         names)
end

let cls = function
  | Link_enqueue _ | Link_dequeue _ | Link_deliver _ | Link_drop _ ->
      Cls.link
  | Ip_forward _ | Ip_deliver _ | Ip_drop _ -> Cls.ip
  | Ip_fragment _ | Ip_reassembled _ -> Cls.frag
  | Tcp_segment_out _ | Tcp_retransmit _ | Tcp_rto_fire _ | Tcp_guard _ ->
      Cls.tcp
  | Timer_arm _ | Timer_fire _ -> Cls.timer
  | Route_change _ -> Cls.route
  | Fault_link _ | Fault_node _ | Fault_soft_reset _ -> Cls.fault
  | Name_lookup _ | Name_upstream _ | Name_answer _ | Name_failover _ ->
      Cls.name

let drop_reason_of = function
  | Link_drop { reason; _ } | Ip_drop { reason; _ } -> Some reason
  | Link_enqueue _ | Link_dequeue _ | Link_deliver _ | Ip_forward _
  | Ip_deliver _ | Ip_fragment _ | Ip_reassembled _ | Tcp_segment_out _
  | Tcp_retransmit _ | Tcp_rto_fire _ | Tcp_guard _ | Timer_arm _
  | Timer_fire _
  | Route_change _ | Fault_link _ | Fault_node _ | Fault_soft_reset _
  | Name_lookup _ | Name_upstream _ | Name_answer _ | Name_failover _ ->
      None

let tcp_flag_bits ~fin ~syn ~rst ~psh ~ack =
  (if fin then 1 else 0)
  lor (if syn then 2 else 0)
  lor (if rst then 4 else 0)
  lor (if psh then 8 else 0)
  lor if ack then 16 else 0

let pp fmt e =
  let a = Addr.pp in
  match e with
  | Link_enqueue { link; dir; len; priority } ->
      Format.fprintf fmt "link %d.%d enqueue %dB%s" link dir len
        (if priority then " (prio)" else "")
  | Link_dequeue { link; dir; len } ->
      Format.fprintf fmt "link %d.%d tx %dB" link dir len
  | Link_deliver { link; dir; len } ->
      Format.fprintf fmt "link %d.%d deliver %dB" link dir len
  | Link_drop { link; dir; len; reason } ->
      Format.fprintf fmt "link %d.%d DROP %dB: %s" link dir len
        (drop_reason_to_string reason)
  | Ip_forward { node; src; dst; ttl; len } ->
      Format.fprintf fmt "node %d forward %a -> %a ttl=%d %dB" node a src a
        dst ttl len
  | Ip_deliver { node; src; dst; proto; len } ->
      Format.fprintf fmt "node %d deliver %a -> %a proto=%d %dB" node a src
        a dst proto len
  | Ip_drop { node; src; dst; reason } ->
      Format.fprintf fmt "node %d DROP %a -> %a: %s" node a src a dst
        (drop_reason_to_string reason)
  | Ip_fragment { node; id; frag_offset; len } ->
      Format.fprintf fmt "node %d fragment id=%d off=%d %dB" node id
        frag_offset len
  | Ip_reassembled { node; id; len } ->
      Format.fprintf fmt "node %d reassembled id=%d %dB" node id len
  | Tcp_segment_out { node; dst; dst_port; seq; len; flags } ->
      Format.fprintf fmt "node %d tcp -> %a:%d seq=%d len=%d flags=%s%s%s%s%s"
        node a dst dst_port seq len
        (if flags land 2 <> 0 then "S" else "")
        (if flags land 16 <> 0 then "A" else "")
        (if flags land 8 <> 0 then "P" else "")
        (if flags land 1 <> 0 then "F" else "")
        (if flags land 4 <> 0 then "R" else "")
  | Tcp_retransmit { node; dst; seq; len } ->
      Format.fprintf fmt "node %d tcp REXMIT -> %a seq=%d len=%d" node a dst
        seq len
  | Tcp_rto_fire { node; dst; retries } ->
      Format.fprintf fmt "node %d tcp RTO fire -> %a retries=%d" node a dst
        retries
  | Tcp_guard { node; dst; kind } ->
      Format.fprintf fmt "node %d tcp GUARD -> %a: %s" node a dst
        (tcp_guard_kind_to_string kind)
  | Timer_arm { at } -> Format.fprintf fmt "timer arm at=%d" at
  | Timer_fire { at } -> Format.fprintf fmt "timer fire at=%d" at
  | Route_change { prefix; metric; action } ->
      Format.fprintf fmt "route %s %a metric=%d"
        (match action with
        | Route_add -> "add"
        | Route_remove -> "remove"
        | Route_clear -> "clear")
        Addr.Prefix.pp prefix metric
  | Fault_link { link; up } ->
      Format.fprintf fmt "FAULT link %d %s" link (if up then "up" else "down")
  | Fault_node { node; up } ->
      Format.fprintf fmt "FAULT node %d %s" node
        (if up then "up" else "down")
  | Fault_soft_reset { node } ->
      Format.fprintf fmt "FAULT node %d soft-state reset" node
  | Name_lookup { node; qtype; hit } ->
      Format.fprintf fmt "node %d name lookup qtype=%d %s" node qtype
        (if hit then "HIT" else "miss")
  | Name_upstream { node; qtype; retry } ->
      Format.fprintf fmt "node %d name upstream qtype=%d retry=%d" node
        qtype retry
  | Name_answer { node; rcode; ttl } ->
      Format.fprintf fmt "node %d name answer rcode=%d ttl=%d" node rcode
        ttl
  | Name_failover { service; replica; up } ->
      Format.fprintf fmt "service %d replica %d %s" service replica
        (if up then "up" else "DOWN")

let to_json e =
  let base kind fields = Json.Obj (("event", Json.Str kind) :: fields) in
  let addr x = Json.Str (Addr.to_string x) in
  match e with
  | Link_enqueue { link; dir; len; priority } ->
      base "link_enqueue"
        [ ("link", Json.Int link); ("dir", Json.Int dir);
          ("len", Json.Int len); ("priority", Json.Bool priority) ]
  | Link_dequeue { link; dir; len } ->
      base "link_dequeue"
        [ ("link", Json.Int link); ("dir", Json.Int dir);
          ("len", Json.Int len) ]
  | Link_deliver { link; dir; len } ->
      base "link_deliver"
        [ ("link", Json.Int link); ("dir", Json.Int dir);
          ("len", Json.Int len) ]
  | Link_drop { link; dir; len; reason } ->
      base "link_drop"
        [ ("link", Json.Int link); ("dir", Json.Int dir);
          ("len", Json.Int len);
          ("reason", Json.Str (drop_reason_to_string reason)) ]
  | Ip_forward { node; src; dst; ttl; len } ->
      base "ip_forward"
        [ ("node", Json.Int node); ("src", addr src); ("dst", addr dst);
          ("ttl", Json.Int ttl); ("len", Json.Int len) ]
  | Ip_deliver { node; src; dst; proto; len } ->
      base "ip_deliver"
        [ ("node", Json.Int node); ("src", addr src); ("dst", addr dst);
          ("proto", Json.Int proto); ("len", Json.Int len) ]
  | Ip_drop { node; src; dst; reason } ->
      base "ip_drop"
        [ ("node", Json.Int node); ("src", addr src); ("dst", addr dst);
          ("reason", Json.Str (drop_reason_to_string reason)) ]
  | Ip_fragment { node; id; frag_offset; len } ->
      base "ip_fragment"
        [ ("node", Json.Int node); ("id", Json.Int id);
          ("frag_offset", Json.Int frag_offset); ("len", Json.Int len) ]
  | Ip_reassembled { node; id; len } ->
      base "ip_reassembled"
        [ ("node", Json.Int node); ("id", Json.Int id);
          ("len", Json.Int len) ]
  | Tcp_segment_out { node; dst; dst_port; seq; len; flags } ->
      base "tcp_segment_out"
        [ ("node", Json.Int node); ("dst", addr dst);
          ("dst_port", Json.Int dst_port); ("seq", Json.Int seq);
          ("len", Json.Int len); ("flags", Json.Int flags) ]
  | Tcp_retransmit { node; dst; seq; len } ->
      base "tcp_retransmit"
        [ ("node", Json.Int node); ("dst", addr dst);
          ("seq", Json.Int seq); ("len", Json.Int len) ]
  | Tcp_rto_fire { node; dst; retries } ->
      base "tcp_rto_fire"
        [ ("node", Json.Int node); ("dst", addr dst);
          ("retries", Json.Int retries) ]
  | Tcp_guard { node; dst; kind } ->
      base "tcp_guard"
        [ ("node", Json.Int node); ("dst", addr dst);
          ("kind", Json.Str (tcp_guard_kind_to_string kind)) ]
  | Timer_arm { at } -> base "timer_arm" [ ("at", Json.Int at) ]
  | Timer_fire { at } -> base "timer_fire" [ ("at", Json.Int at) ]
  | Route_change { prefix; metric; action } ->
      base "route_change"
        [ ("prefix", Json.Str (Addr.Prefix.to_string prefix));
          ("metric", Json.Int metric);
          ( "action",
            Json.Str
              (match action with
              | Route_add -> "add"
              | Route_remove -> "remove"
              | Route_clear -> "clear") ) ]
  | Fault_link { link; up } ->
      base "fault_link" [ ("link", Json.Int link); ("up", Json.Bool up) ]
  | Fault_node { node; up } ->
      base "fault_node" [ ("node", Json.Int node); ("up", Json.Bool up) ]
  | Fault_soft_reset { node } ->
      base "fault_soft_reset" [ ("node", Json.Int node) ]
  | Name_lookup { node; qtype; hit } ->
      base "name_lookup"
        [ ("node", Json.Int node); ("qtype", Json.Int qtype);
          ("hit", Json.Bool hit) ]
  | Name_upstream { node; qtype; retry } ->
      base "name_upstream"
        [ ("node", Json.Int node); ("qtype", Json.Int qtype);
          ("retry", Json.Int retry) ]
  | Name_answer { node; rcode; ttl } ->
      base "name_answer"
        [ ("node", Json.Int node); ("rcode", Json.Int rcode);
          ("ttl", Json.Int ttl) ]
  | Name_failover { service; replica; up } ->
      base "name_failover"
        [ ("service", Json.Int service); ("replica", Json.Int replica);
          ("up", Json.Bool up) ]
