(** Anycast service directory: one name, many replica hosts.

    Lives beside the root authority.  Service queries are answered with
    the healthy replica nearest (in region hops) to the querier —
    "gateway-assisted" selection, because the directory is handed the
    topology's own distance function rather than guessing.  Health is
    soft state maintained by an active UDP prober: [strike_limit]
    consecutive unanswered probes mark a replica down (emitting
    [Trace.Event.Name_failover]), the first echo marks it back up. *)

type t

type stats = {
  mutable probes : int;
  mutable probe_misses : int;
  mutable failovers_down : int;
  mutable failovers_up : int;
  mutable picks : int;
  mutable all_down : int;  (** Queries finding no healthy replica. *)
}

val create :
  udp:Udp.t ->
  eng:Engine.t ->
  ?src:Packet.Addr.t ->
  service_port:int ->
  ?svc_ttl_s:int ->
  ?strike_limit:int ->
  unit ->
  t
(** [service_port] is where replicas answer requests — probes go there
    too, so a probe echo proves the actual service path.  [svc_ttl_s]
    (default 1) is deliberately short: it bounds how long resolver
    caches point at a crashed replica.  [strike_limit] defaults to 2. *)

val register : t -> service:int -> (int * Packet.Addr.t) list -> unit
(** Replicas as [(region, address)], all initially up. *)

val set_distance : t -> (int -> int -> int) -> unit
(** Region-to-region hop count from the topology (e.g.
    [Topo.region_hops]); defaults to a constant, making selection
    arbitrary-but-healthy. *)

val pick : t -> service:int -> client_region:int -> int option
(** Nearest healthy replica's address bits, or [None] if the service is
    unknown or every replica is down. *)

val answer_for : t -> src:Packet.Addr.t -> Names_wire.t -> Server.answer
(** The service half of the root zone; plug into
    {!Server.root_authority}'s [svc].  OK + replica address with the
    service TTL; NXNAME for unknown services; SERVFAIL (TTL 0, never
    cached) when every replica is down. *)

val start_probing : t -> interval_us:int -> unit
(** Begin the periodic probe loop on the directory's engine.  Note the
    loop re-arms forever: drive the engine with [Engine.run ~until]. *)

val replica_up : t -> service:int -> index:int -> bool
val stats : t -> stats
val metrics_items : t -> unit -> (string * Trace.Metrics.value) list
