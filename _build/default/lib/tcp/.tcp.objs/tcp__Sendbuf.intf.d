lib/tcp/sendbuf.mli:
