(** A minimal JSON tree and serializer, shared by the metrics snapshot
    exporter, [Accounting.to_json] and the bench harness's BENCH_*.json
    writers — one representation for every machine-readable artifact this
    repo emits, instead of per-file [Printf] formats. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed (2-space indent), UTF-8 passthrough, control characters
    escaped. *)

val to_buffer : Buffer.t -> t -> unit

val write_file : string -> t -> unit
(** [to_string] plus a trailing newline, written atomically enough for
    bench artifacts. *)

val number_at : keys:string list -> string -> float option
(** Walk object members named by [keys] in order and read the number after
    the last one.  A substring scanner, not a parser: enough to pull a
    single figure back out of a BENCH_*.json this module wrote. *)

val number_in_file : keys:string list -> string -> float option
(** [number_at] over a file's contents; [None] when unreadable. *)
