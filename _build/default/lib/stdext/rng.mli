(** Deterministic pseudo-random number generator.

    Every stochastic element of the simulator (link loss, jitter, workload
    arrival processes) draws from an explicit [Rng.t] so that a simulation is
    a pure function of its seed.  The generator is SplitMix64 (Steele,
    Lea & Flood, OOPSLA 2014): tiny state, excellent statistical quality for
    simulation purposes, and cheap [split] for creating independent
    sub-streams per component. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] is a new generator statistically independent of [t]; both
    advance separately afterwards.  Used to give each link/app its own
    stream so adding a component does not perturb the draws of others. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean; used for Poisson arrival processes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
