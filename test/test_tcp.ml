(* Tests for TCP: sequence arithmetic, RTO estimation, the send buffer,
   and full end-to-end connection behaviour over the simulated network —
   handshake, data transfer, loss recovery, flow control, teardown. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Internet = Catenet.Internet
module Addr = Packet.Addr
module Seq = Tcp.Seq
module Rto = Tcp.Rto
module Sendbuf = Tcp.Sendbuf

(* --- Sequence arithmetic -------------------------------------------------- *)

let test_seq_wraparound_basics () =
  let top = Seq.modulus - 1 in
  check Alcotest.int "wraps" 4 (Seq.add top 5);
  check Alcotest.bool "lt across wrap" true (Seq.lt top 4);
  check Alcotest.bool "gt across wrap" true (Seq.gt 4 top);
  check Alcotest.int "diff across wrap" 5 (Seq.diff 4 top);
  check Alcotest.int "negative diff" (-5) (Seq.diff top 4)

let test_seq_in_window () =
  check Alcotest.bool "inside" true (Seq.in_window 10 ~base:5 ~size:10);
  check Alcotest.bool "below" false (Seq.in_window 4 ~base:5 ~size:10);
  check Alcotest.bool "at end" false (Seq.in_window 15 ~base:5 ~size:10);
  (* Window spanning the wrap point. *)
  let base = Seq.modulus - 3 in
  check Alcotest.bool "wrap inside" true (Seq.in_window 1 ~base ~size:10);
  check Alcotest.bool "wrap outside" false (Seq.in_window 8 ~base ~size:10)

let prop_seq_add_diff_inverse =
  QCheck.Test.make ~name:"diff (add a n) a = n" ~count:500
    QCheck.(pair (int_bound (Seq.modulus - 1)) (int_bound (Seq.modulus / 2 - 1)))
    (fun (a, n) -> Seq.diff (Seq.add a n) a = n)

let prop_seq_ordering_antisymmetric =
  QCheck.Test.make ~name:"lt/gt antisymmetry" ~count:500
    QCheck.(pair (int_bound (Seq.modulus - 1)) (1 -- (Seq.modulus / 2 - 1)))
    (fun (a, n) ->
      let b = Seq.add a n in
      Seq.lt a b && Seq.gt b a && Seq.le a b && (not (Seq.ge a b)) && Seq.max a b = b)

(* --- RTO estimator --------------------------------------------------------- *)

let test_rto_initial () =
  let r = Rto.create () in
  check Alcotest.int "1s default" 1_000_000 (Rto.rto r);
  check Alcotest.bool "no srtt yet" true (Rto.srtt r = None)

let test_rto_first_sample () =
  let r = Rto.create () in
  Rto.sample r 100_000;
  check Alcotest.bool "srtt set" true (Rto.srtt r = Some 100_000);
  (* RTO = srtt + 4*rttvar = 100ms + 4*50ms = 300ms. *)
  check Alcotest.int "rto" 300_000 (Rto.rto r)

let test_rto_smoothing () =
  let r = Rto.create () in
  Rto.sample r 100_000;
  Rto.sample r 100_000;
  Rto.sample r 100_000;
  (match Rto.srtt r with
  | Some s -> check Alcotest.bool "converging" true (abs (s - 100_000) < 2_000)
  | None -> Alcotest.fail "srtt unset");
  (* Variance shrinks with steady samples, so the RTO tightens but stays
     above the floor. *)
  check Alcotest.bool "rto above floor" true (Rto.rto r >= 200_000)

let test_rto_backoff_and_reset () =
  let r = Rto.create () in
  Rto.sample r 500_000;
  let base = Rto.rto r in
  Rto.backoff r;
  check Alcotest.int "doubled" (2 * base) (Rto.rto r);
  Rto.backoff r;
  check Alcotest.int "quadrupled" (4 * base) (Rto.rto r);
  Rto.reset_backoff r;
  check Alcotest.int "reset" base (Rto.rto r)

let test_rto_ceiling () =
  let r = Rto.create ~max_rto_us:3_000_000 () in
  for _ = 1 to 10 do
    Rto.backoff r
  done;
  check Alcotest.bool "capped" true (Rto.rto r <= 3_000_000)

let test_rto_floor () =
  let r = Rto.create ~min_rto_us:200_000 () in
  Rto.sample r 1_000;
  check Alcotest.bool "floored" true (Rto.rto r >= 200_000)

(* --- Sendbuf ---------------------------------------------------------------- *)

let test_sendbuf_basics () =
  let b = Sendbuf.create ~limit:10 () in
  check Alcotest.int "accepts to limit" 10
    (Sendbuf.append b (Bytes.of_string "hello worlds"));
  check Alcotest.int "full" 0 (Sendbuf.space b);
  check Alcotest.string "slice" "hello"
    (Bytes.to_string (Sendbuf.get b ~off:0 ~len:5));
  Sendbuf.drop_until b 6;
  check Alcotest.int "base advanced" 6 (Sendbuf.base b);
  check Alcotest.int "len shrank" 4 (Sendbuf.length b);
  check Alcotest.string "tail slice" "worl"
    (Bytes.to_string (Sendbuf.get b ~off:6 ~len:4));
  check Alcotest.int "more space" 6 (Sendbuf.space b)

let test_sendbuf_out_of_range () =
  let b = Sendbuf.create () in
  ignore (Sendbuf.append b (Bytes.of_string "abc"));
  Sendbuf.drop_until b 2;
  try
    ignore (Sendbuf.get b ~off:0 ~len:2);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let prop_sendbuf_vs_reference =
  (* Random interleavings of append/drop compared against a naive string
     model. *)
  QCheck.Test.make ~name:"sendbuf matches reference model" ~count:200
    QCheck.(list (pair bool (int_bound 50)))
    (fun ops ->
      let b = Sendbuf.create ~limit:1000 () in
      let model = ref "" in
      let model_base = ref 0 in
      let counter = ref 0 in
      List.for_all
        (fun (is_append, n) ->
          if is_append then begin
            let data =
              String.init n (fun i ->
                  Char.chr ((i + !counter) land 0x7f))
            in
            incr counter;
            let accepted = Sendbuf.append b (Bytes.of_string data) in
            model := !model ^ String.sub data 0 accepted
          end
          else begin
            let drop = min n (String.length !model) in
            model := String.sub !model drop (String.length !model - drop);
            model_base := !model_base + drop;
            Sendbuf.drop_until b !model_base
          end;
          Sendbuf.length b = String.length !model
          && Sendbuf.base b = !model_base
          && (Sendbuf.length b = 0
             || Bytes.to_string
                  (Sendbuf.get b ~off:!model_base ~len:(String.length !model))
                = !model))
        ops)

(* --- End-to-end fixtures ------------------------------------------------------ *)

(* Two hosts on one link (same /24: connected routes suffice). *)
let hosts ?(profile = Netsim.profile "wire" ~delay_us:5_000)
    ?(tcp_config = Tcp.default_config) () =
  let t = Internet.create ~routing:Internet.Static ~tcp_config () in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  ignore (Internet.connect t profile a.Internet.h_node b.Internet.h_node);
  Internet.start t;
  (t, a, b)

let b_addr t (b : Internet.host) = Internet.addr_of t b.Internet.h_node

(* Start an echo-less sink server that records received bytes. *)
let sink_server tcp ~port =
  let received = Buffer.create 256 in
  let conn = ref None in
  let got_fin = ref false in
  ignore
    (Tcp.listen tcp ~port ~accept:(fun c ->
         conn := Some c;
         Tcp.on_receive c (fun d -> Buffer.add_bytes received d);
         Tcp.on_peer_fin c (fun () ->
             got_fin := true;
             Tcp.close c)));
  (received, conn, got_fin)

let test_handshake () =
  let t, a, b = hosts () in
  let accepted = ref false and established = ref false in
  ignore
    (Tcp.listen b.Internet.h_tcp ~port:80 ~accept:(fun _ -> accepted := true));
  let c = Tcp.connect a.Internet.h_tcp ~dst:(b_addr t b) ~dst_port:80 () in
  check Alcotest.bool "starts syn-sent" true (Tcp.state c = Tcp.Syn_sent);
  Tcp.on_established c (fun () -> established := true);
  Internet.run_for t 1.0;
  check Alcotest.bool "accepted" true !accepted;
  check Alcotest.bool "established" true !established;
  check Alcotest.bool "state" true (Tcp.state c = Tcp.Established);
  check Alcotest.int "instance counters" 1
    (Tcp.instance_stats a.Internet.h_tcp).Tcp.active_opens;
  check Alcotest.int "passive" 1
    (Tcp.instance_stats b.Internet.h_tcp).Tcp.passive_opens

let test_small_transfer () =
  let t, a, b = hosts () in
  let received, _, _ = sink_server b.Internet.h_tcp ~port:80 in
  let c = Tcp.connect a.Internet.h_tcp ~dst:(b_addr t b) ~dst_port:80 () in
  Tcp.on_established c (fun () ->
      ignore (Tcp.send c (Bytes.of_string "hello, catenet")));
  Internet.run_for t 2.0;
  check Alcotest.string "delivered" "hello, catenet" (Buffer.contents received)

let test_bidirectional () =
  let t, a, b = hosts () in
  let from_client = Buffer.create 64 in
  ignore
    (Tcp.listen b.Internet.h_tcp ~port:80 ~accept:(fun c ->
         Tcp.on_receive c (fun d ->
             Buffer.add_bytes from_client d;
             ignore (Tcp.send c (Bytes.of_string "pong")))));
  let from_server = Buffer.create 64 in
  let c = Tcp.connect a.Internet.h_tcp ~dst:(b_addr t b) ~dst_port:80 () in
  Tcp.on_receive c (fun d -> Buffer.add_bytes from_server d);
  Tcp.on_established c (fun () -> ignore (Tcp.send c (Bytes.of_string "ping")));
  Internet.run_for t 2.0;
  check Alcotest.string "server got" "ping" (Buffer.contents from_client);
  check Alcotest.string "client got" "pong" (Buffer.contents from_server)

let bulk_transfer_over ?tcp_config profile ~total ~seconds =
  let t, a, b = hosts ~profile ?tcp_config () in
  let seed = 21 in
  let server = Apps.Bulk.serve b.Internet.h_tcp ~port:80 ~seed in
  let sender =
    Apps.Bulk.start a.Internet.h_tcp ~dst:(b_addr t b) ~dst_port:80 ~seed
      ~total ()
  in
  Internet.run_for t seconds;
  (server, sender)

let test_bulk_reliable_link () =
  let server, sender =
    bulk_transfer_over (Netsim.profile "clean" ~delay_us:2_000) ~total:300_000
      ~seconds:20.0
  in
  check Alcotest.bool "finished" true (Apps.Bulk.finished sender);
  match Apps.Bulk.transfers server with
  | [ tr ] ->
      check Alcotest.int "all bytes" 300_000 tr.Apps.Bulk.received;
      check Alcotest.bool "intact" true tr.Apps.Bulk.intact;
      check Alcotest.bool "fin seen" true (tr.Apps.Bulk.fin_at_us <> None)
  | l -> Alcotest.failf "expected 1 transfer, got %d" (List.length l)

let test_bulk_lossy_link () =
  (* 3% random loss both ways: end-to-end retransmission must still
     deliver every byte in order. *)
  let server, sender =
    bulk_transfer_over
      (Netsim.profile "lossy" ~delay_us:2_000 ~loss:0.03)
      ~total:200_000 ~seconds:60.0
  in
  check Alcotest.bool "finished despite loss" true (Apps.Bulk.finished sender);
  (match Apps.Bulk.transfers server with
  | [ tr ] ->
      check Alcotest.int "all bytes" 200_000 tr.Apps.Bulk.received;
      check Alcotest.bool "intact" true tr.Apps.Bulk.intact
  | l -> Alcotest.failf "expected 1 transfer, got %d" (List.length l));
  let st = Tcp.stats (Apps.Bulk.conn sender) in
  check Alcotest.bool "retransmissions happened" true (st.Tcp.retransmits > 0)

let test_bulk_all_cc_algorithms () =
  List.iter
    (fun cc ->
      let cfg = { Tcp.default_config with Tcp.cc } in
      let server, sender =
        bulk_transfer_over ~tcp_config:cfg
          (Netsim.profile "l" ~bandwidth_bps:2_000_000 ~delay_us:5_000
             ~queue_capacity:16)
          ~total:150_000 ~seconds:120.0
      in
      check Alcotest.bool
        (Format.asprintf "finished with %a" Tcp.pp_cc cc)
        true
        (Apps.Bulk.finished sender);
      match Apps.Bulk.transfers server with
      | [ tr ] ->
          check Alcotest.bool "intact" true tr.Apps.Bulk.intact;
          check Alcotest.int "complete" 150_000 tr.Apps.Bulk.received
      | _ -> Alcotest.fail "expected one transfer")
    [ Tcp.No_cc; Tcp.Tahoe; Tcp.Reno ]

let test_graceful_close_reaches_closed () =
  (* Short MSL so TIME-WAIT expires within the run. *)
  let cfg = { Tcp.default_config with Tcp.msl_us = 200_000 } in
  let t, a, b = hosts ~tcp_config:cfg () in
  let _, _, got_fin = sink_server b.Internet.h_tcp ~port:80 in
  let c =
    Tcp.connect a.Internet.h_tcp ~config:cfg ~dst:(b_addr t b) ~dst_port:80 ()
  in
  let closed = ref None in
  Tcp.on_close c (fun r -> closed := Some r);
  Tcp.on_established c (fun () ->
      ignore (Tcp.send c (Bytes.of_string "bye"));
      Tcp.close c);
  Internet.run_for t 5.0;
  check Alcotest.bool "peer saw fin" true !got_fin;
  (match !closed with
  | Some Tcp.Graceful -> ()
  | Some r -> Alcotest.failf "wrong reason: %a" Tcp.pp_close_reason r
  | None -> Alcotest.fail "never closed");
  check Alcotest.int "no connections left" 0
    (Tcp.connection_count a.Internet.h_tcp);
  check Alcotest.int "server side cleaned" 0
    (Tcp.connection_count b.Internet.h_tcp)

let test_connection_refused () =
  let t, a, b = hosts () in
  let c = Tcp.connect a.Internet.h_tcp ~dst:(b_addr t b) ~dst_port:81 () in
  let reason = ref None in
  Tcp.on_close c (fun r -> reason := Some r);
  Internet.run_for t 2.0;
  match !reason with
  | Some Tcp.Refused -> ()
  | Some r -> Alcotest.failf "wrong reason: %a" Tcp.pp_close_reason r
  | None -> Alcotest.fail "no close callback"

let test_abort_sends_rst () =
  let t, a, b = hosts () in
  let server_reason = ref None in
  ignore
    (Tcp.listen b.Internet.h_tcp ~port:80 ~accept:(fun c ->
         Tcp.on_close c (fun r -> server_reason := Some r)));
  let c = Tcp.connect a.Internet.h_tcp ~dst:(b_addr t b) ~dst_port:80 () in
  Tcp.on_established c (fun () -> Tcp.abort c);
  Internet.run_for t 2.0;
  match !server_reason with
  | Some Tcp.Reset -> ()
  | Some r -> Alcotest.failf "wrong reason: %a" Tcp.pp_close_reason r
  | None -> Alcotest.fail "server never notified"

let test_retransmission_timeout_kills () =
  let cfg = { Tcp.default_config with Tcp.max_retransmits = 3 } in
  let t, a, b = hosts ~tcp_config:cfg () in
  let _, _, _ = sink_server b.Internet.h_tcp ~port:80 in
  let c =
    Tcp.connect a.Internet.h_tcp ~config:cfg ~dst:(b_addr t b) ~dst_port:80 ()
  in
  let reason = ref None in
  Tcp.on_close c (fun r -> reason := Some r);
  Tcp.on_established c (fun () ->
      ignore (Tcp.send c (Bytes.make 5000 'x'));
      (* Sever the wire mid-conversation. *)
      Internet.fail_link t 0);
  Internet.run_for t 120.0;
  match !reason with
  | Some Tcp.Timed_out -> ()
  | Some r -> Alcotest.failf "wrong reason: %a" Tcp.pp_close_reason r
  | None -> Alcotest.fail "connection never gave up"

let test_syn_timeout_refused () =
  let t, a, b = hosts () in
  Internet.fail_link t 0;
  let cfg = { Tcp.default_config with Tcp.syn_retries = 2 } in
  let c =
    Tcp.connect a.Internet.h_tcp ~config:cfg ~dst:(b_addr t b) ~dst_port:80 ()
  in
  let reason = ref None in
  Tcp.on_close c (fun r -> reason := Some r);
  Internet.run_for t 60.0;
  match !reason with
  | Some Tcp.Refused -> ()
  | Some r -> Alcotest.failf "wrong reason: %a" Tcp.pp_close_reason r
  | None -> Alcotest.fail "SYN retried forever"

let test_mss_negotiation () =
  let small = { Tcp.default_config with Tcp.mss = 600 } in
  let t = Internet.create ~routing:Internet.Static ~tcp_config:small () in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  ignore
    (Internet.connect t (Netsim.profile "wire") a.Internet.h_node
       b.Internet.h_node);
  Internet.start t;
  ignore (Tcp.listen b.Internet.h_tcp ~port:80 ~accept:(fun _ -> ()));
  (* Client announces 1460, server 600: both sides must use 600. *)
  let c =
    Tcp.connect a.Internet.h_tcp ~config:Tcp.default_config
      ~dst:(Internet.addr_of t b.Internet.h_node) ~dst_port:80 ()
  in
  Internet.run_for t 1.0;
  check Alcotest.int "negotiated mss" 600 (Tcp.mss c)

let test_nagle_coalesces () =
  let count_segments nagle =
    let cfg = { Tcp.default_config with Tcp.nagle } in
    let t, a, b = hosts ~tcp_config:cfg () in
    ignore (sink_server b.Internet.h_tcp ~port:80);
    let c =
      Tcp.connect a.Internet.h_tcp ~config:cfg ~dst:(b_addr t b) ~dst_port:80 ()
    in
    Tcp.on_established c (fun () ->
        (* 50 tiny writes in rapid succession (1 ms apart). *)
        let eng = Internet.engine t in
        for i = 0 to 49 do
          Engine.after eng (i * 1_000) (fun () ->
              ignore (Tcp.send c (Bytes.make 10 'k')))
        done);
    Internet.run_for t 5.0;
    (Tcp.stats c).Tcp.segs_out
  in
  let with_nagle = count_segments true in
  let without = count_segments false in
  check Alcotest.bool
    (Printf.sprintf "nagle (%d) sends fewer segments than no-nagle (%d)"
       with_nagle without)
    true
    (with_nagle < without)

let test_zero_window_flow_control () =
  let t, a, b = hosts () in
  let received = Buffer.create 256 in
  let server_conn = ref None in
  ignore
    (Tcp.listen b.Internet.h_tcp ~port:80 ~accept:(fun c ->
         server_conn := Some c;
         (* Immediately stop reading: the window must close. *)
         Tcp.pause_reading c;
         Tcp.on_receive c (fun d -> Buffer.add_bytes received d)));
  let c = Tcp.connect a.Internet.h_tcp ~dst:(b_addr t b) ~dst_port:80 () in
  let total = 200_000 in
  let sent = ref 0 in
  let eng = Internet.engine t in
  let rec pump () =
    if !sent < total then begin
      sent := !sent + Tcp.send c (Bytes.make (min 8192 (total - !sent)) 'z');
      Engine.after eng 10_000 pump
    end
  in
  Tcp.on_established c (fun () -> pump ());
  Internet.run_for t 10.0;
  (* The receiver is paused: its advertised window closes at 65535 and the
     sender's transmissions (not just its buffering) must stall there. *)
  let transmitted = (Tcp.stats c).Tcp.bytes_out in
  check Alcotest.bool
    (Printf.sprintf "window closed (transmitted=%d)" transmitted)
    true
    (transmitted < 80_000);
  check Alcotest.int "nothing delivered while paused" 0 (Buffer.length received);
  (match !server_conn with
  | Some sc -> Tcp.resume_reading sc
  | None -> Alcotest.fail "no server conn");
  Internet.run_for t 120.0;
  check Alcotest.int "everything delivered after resume" total
    (Buffer.length received)

let test_listener_close_refuses () =
  let t, a, b = hosts () in
  let l = Tcp.listen b.Internet.h_tcp ~port:80 ~accept:(fun _ -> ()) in
  Tcp.close_listener l;
  let c = Tcp.connect a.Internet.h_tcp ~dst:(b_addr t b) ~dst_port:80 () in
  let reason = ref None in
  Tcp.on_close c (fun r -> reason := Some r);
  Internet.run_for t 2.0;
  check Alcotest.bool "refused" true (!reason = Some Tcp.Refused)

let test_srtt_tracks_path_delay () =
  (* One-way 50 ms: the smoothed RTT should land near 100 ms. *)
  let t, a, b = hosts ~profile:(Netsim.profile "far" ~delay_us:50_000) () in
  ignore (sink_server b.Internet.h_tcp ~port:80);
  let c = Tcp.connect a.Internet.h_tcp ~dst:(b_addr t b) ~dst_port:80 () in
  Tcp.on_established c (fun () ->
      ignore (Tcp.send c (Bytes.make 20_000 'r')));
  Internet.run_for t 10.0;
  match Tcp.srtt_us c with
  | Some srtt ->
      check Alcotest.bool
        (Printf.sprintf "srtt=%dus near 100ms" srtt)
        true
        (srtt > 90_000 && srtt < 250_000)
  | None -> Alcotest.fail "no RTT measured"

let test_duplicate_listener_rejected () =
  let _, _, b = hosts () in
  ignore (Tcp.listen b.Internet.h_tcp ~port:80 ~accept:(fun _ -> ()));
  try
    ignore (Tcp.listen b.Internet.h_tcp ~port:80 ~accept:(fun _ -> ()));
    Alcotest.fail "expected Listen_error"
  with Tcp.Listen_error (Tcp.Port_in_use 80) -> ()


let test_reordering_tolerated () =
  (* Heavy link jitter reorders deliveries; the receiver's out-of-order
     buffer must reassemble the exact stream. *)
  let t, a, b =
    hosts ~profile:(Netsim.profile "jittery" ~delay_us:2_000 ~jitter_us:8_000) ()
  in
  let seed = 31 in
  let server = Apps.Bulk.serve b.Internet.h_tcp ~port:80 ~seed in
  let sender =
    Apps.Bulk.start a.Internet.h_tcp ~dst:(b_addr t b) ~dst_port:80 ~seed
      ~total:250_000 ()
  in
  Internet.run_for t 120.0;
  check Alcotest.bool "finished" true (Apps.Bulk.finished sender);
  (match Apps.Bulk.transfers server with
  | [ tr ] ->
      check Alcotest.int "all bytes" 250_000 tr.Apps.Bulk.received;
      check Alcotest.bool "intact despite reordering" true tr.Apps.Bulk.intact
  | _ -> Alcotest.fail "expected one transfer");
  (* Reordering really happened: out-of-order arrivals provoke immediate
     duplicate ACKs at the receiver, observed by the sender. *)
  check Alcotest.bool "reordering occurred" true
    ((Tcp.stats (Apps.Bulk.conn sender)).Tcp.dupacks > 0)

let test_icmp_unreachable_refuses_syn () =
  (* Connecting to a host that does not implement TCP at all: its stack
     answers with ICMP protocol-unreachable, which must abort the SYN
     promptly (no long retry series). *)
  let t = Internet.create () in
  let full = Internet.add_host t "full" in
  let g = Internet.add_gateway t "g" in
  ignore
    (Internet.connect t (Netsim.profile "p") full.Internet.h_node
       g.Internet.g_node);
  let mini_node = Netsim.add_node (Internet.net t) "mini" in
  ignore
    (Netsim.add_link (Internet.net t) (Netsim.profile "p") mini_node
       g.Internet.g_node);
  let mini_ip = Ip.Stack.create (Internet.net t) mini_node in
  Ip.Stack.configure_iface mini_ip 0 ~addr:(Addr.v 172 16 0 1) ~prefix_len:24;
  let _, g_iface = Netsim.peer (Internet.net t) mini_node 0 in
  Ip.Stack.configure_iface g.Internet.g_ip g_iface ~addr:(Addr.v 172 16 0 2)
    ~prefix_len:24;
  Ip.Route_table.add (Ip.Stack.table mini_ip)
    {
      Ip.Route_table.prefix = Addr.Prefix.default;
      iface = 0;
      next_hop = Some (Addr.v 172 16 0 2);
      metric = 1;
    };
  (* Register some non-TCP protocol so the stack exists but refuses TCP. *)
  Ip.Stack.register_proto mini_ip (Packet.Ipv4.Proto.Other 99) (fun _ _ -> ());
  Internet.start t;
  let c =
    Tcp.connect full.Internet.h_tcp ~dst:(Addr.v 172 16 0 1) ~dst_port:80 ()
  in
  let reason = ref None in
  Tcp.on_close c (fun r -> reason := Some r);
  Internet.run_for t 3.0;
  match !reason with
  | Some Tcp.Refused -> ()
  | Some r -> Alcotest.failf "wrong reason: %a" Tcp.pp_close_reason r
  | None -> Alcotest.fail "SYN not aborted by ICMP"


let test_rst_sourced_from_secondary_address () =
  (* An orphan SYN addressed to a multi-homed host's second interface must
     draw a RST sourced from that address — not the host's primary one —
     or the initiator cannot match the reply to its connection attempt
     (and the RST's pseudo-header checksum would be computed over the
     wrong source). *)
  let t = Internet.create ~routing:Internet.Static () in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  ignore
    (Internet.connect t (Netsim.profile "l0") a.Internet.h_node
       b.Internet.h_node);
  let l1 =
    Internet.connect t (Netsim.profile "l1") a.Internet.h_node
      b.Internet.h_node
  in
  Internet.start t;
  let secondary = Internet.addr_on_link t l1 b.Internet.h_node in
  check Alcotest.bool "address is not the primary" true
    (secondary <> Internet.addr_of t b.Internet.h_node);
  let c = Tcp.connect a.Internet.h_tcp ~dst:secondary ~dst_port:81 () in
  let reason = ref None in
  Tcp.on_close c (fun r -> reason := Some r);
  Internet.run_for t 2.0;
  (* Refused this quickly means a RST arrived and was accepted, which
     requires its source to equal [secondary]: the client demuxes replies
     on the (remote addr, port) pair it connected to, and the checksum
     covers the source address. *)
  check Alcotest.bool "refused by rst" true (!reason = Some Tcp.Refused);
  check Alcotest.int "exactly one rst emitted" 1
    (Tcp.instance_stats b.Internet.h_tcp).Tcp.resets_out

let test_integrity_across_loss_seeds () =
  (* The headline end-to-end property, swept across substrate randomness:
     for many independent loss patterns, every byte arrives intact and in
     order.  (Each seed produces a different sequence of dropped frames.) *)
  List.iter
    (fun seed ->
      let t =
        Internet.create ~seed ~routing:Internet.Static ()
      in
      let a = Internet.add_host t "a" in
      let b = Internet.add_host t "b" in
      ignore
        (Internet.connect t
           (Netsim.profile "lossy" ~delay_us:3_000 ~loss:0.04)
           a.Internet.h_node b.Internet.h_node);
      Internet.start t;
      let pseed = 100 + seed in
      let server = Apps.Bulk.serve b.Internet.h_tcp ~port:80 ~seed:pseed in
      let sender =
        Apps.Bulk.start a.Internet.h_tcp
          ~dst:(Internet.addr_of t b.Internet.h_node)
          ~dst_port:80 ~seed:pseed ~total:120_000 ()
      in
      Internet.run_for t 120.0;
      if not (Apps.Bulk.finished sender) then
        Alcotest.failf "seed %d: transfer did not complete" seed;
      match Apps.Bulk.transfers server with
      | [ tr ] ->
          if not (tr.Apps.Bulk.intact && tr.Apps.Bulk.received = 120_000) then
            Alcotest.failf "seed %d: corrupted or short (%d bytes, intact=%b)"
              seed tr.Apps.Bulk.received tr.Apps.Bulk.intact
      | _ -> Alcotest.failf "seed %d: wrong transfer count" seed)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let () =
  Alcotest.run "tcp"
    [
      ( "seq",
        [
          Alcotest.test_case "wraparound" `Quick test_seq_wraparound_basics;
          Alcotest.test_case "in window" `Quick test_seq_in_window;
          qcheck prop_seq_add_diff_inverse;
          qcheck prop_seq_ordering_antisymmetric;
        ] );
      ( "rto",
        [
          Alcotest.test_case "initial" `Quick test_rto_initial;
          Alcotest.test_case "first sample" `Quick test_rto_first_sample;
          Alcotest.test_case "smoothing" `Quick test_rto_smoothing;
          Alcotest.test_case "backoff/reset" `Quick test_rto_backoff_and_reset;
          Alcotest.test_case "ceiling" `Quick test_rto_ceiling;
          Alcotest.test_case "floor" `Quick test_rto_floor;
        ] );
      ( "sendbuf",
        [
          Alcotest.test_case "basics" `Quick test_sendbuf_basics;
          Alcotest.test_case "range checks" `Quick test_sendbuf_out_of_range;
          qcheck prop_sendbuf_vs_reference;
        ] );
      ( "connection",
        [
          Alcotest.test_case "handshake" `Quick test_handshake;
          Alcotest.test_case "small transfer" `Quick test_small_transfer;
          Alcotest.test_case "bidirectional" `Quick test_bidirectional;
          Alcotest.test_case "bulk clean link" `Quick test_bulk_reliable_link;
          Alcotest.test_case "bulk lossy link" `Slow test_bulk_lossy_link;
          Alcotest.test_case "all cc algorithms" `Slow test_bulk_all_cc_algorithms;
          Alcotest.test_case "mss negotiation" `Quick test_mss_negotiation;
          Alcotest.test_case "srtt" `Quick test_srtt_tracks_path_delay;
          Alcotest.test_case "reordering tolerated" `Quick test_reordering_tolerated;
          Alcotest.test_case "integrity across 10 loss seeds" `Slow
            test_integrity_across_loss_seeds;
        ] );
      ( "teardown",
        [
          Alcotest.test_case "graceful close" `Quick test_graceful_close_reaches_closed;
          Alcotest.test_case "refused" `Quick test_connection_refused;
          Alcotest.test_case "abort/rst" `Quick test_abort_sends_rst;
          Alcotest.test_case "rst from secondary address" `Quick
            test_rst_sourced_from_secondary_address;
          Alcotest.test_case "data timeout" `Slow test_retransmission_timeout_kills;
          Alcotest.test_case "syn timeout" `Quick test_syn_timeout_refused;
          Alcotest.test_case "listener closed" `Quick test_listener_close_refuses;
          Alcotest.test_case "icmp refuses syn" `Quick test_icmp_unreachable_refuses_syn;
          Alcotest.test_case "duplicate listener" `Quick test_duplicate_listener_rejected;
        ] );
      ( "flow-control",
        [
          Alcotest.test_case "nagle" `Quick test_nagle_coalesces;
          Alcotest.test_case "zero window" `Quick test_zero_window_flow_control;
        ] );
    ]
