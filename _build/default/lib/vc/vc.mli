(** The virtual-circuit baseline network (X.25/ARPANET-host-protocol
    shaped) — the architecture the DARPA internet deliberately rejected.

    Two properties distinguish it from the datagram internet built in
    {!Ip}/{!Tcp}, and both are implemented faithfully so the experiments
    contrast them honestly:

    - {b State in the network}: a call installs a virtual-circuit entry in
      every switch on the path.  When a switch or link on the path dies,
      the call is cleared — the conversation cannot survive (no
      fate-sharing).  Experiments E1/E2.
    - {b Hop-by-hop reliability}: each link leg runs go-back-N
      retransmission, so switches also buffer unacknowledged cells.
      Experiment E5 measures what this costs and what it fails to
      guarantee end-to-end.

    On the honest side of the ledger: data cells carry 5-byte headers
    against TCP/IP's 40, and delivery within a surviving circuit is
    ordered without end-to-end retransmission. *)

module Cell = Cell

type t
(** A virtual-circuit fabric over a {!Netsim} topology. *)

type circuit
(** One endpoint's handle on an established (or establishing) call. *)

type stats = {
  mutable calls_attempted : int;
  mutable calls_established : int;
  mutable calls_cleared : int;
  mutable data_cells : int;  (** First transmissions, fabric-wide. *)
  mutable hop_retransmits : int;
  mutable hop_acks : int;
  mutable cells_delivered : int;  (** Payload cells handed to endpoints. *)
}

type config = {
  hop_window : int;  (** Go-back-N window per hop (default 16). *)
  hop_rto_us : int;  (** Per-hop retransmit timer (default 200 ms). *)
  hop_retries : int;  (** Give up and clear after (default 10). *)
  setup_timeout_us : int;  (** Caller abandons an unanswered call (2 s). *)
  carrier_poll_us : int;  (** Link-liveness poll (default 100 ms). *)
  switch_buffer_cells : int;  (** Per-hop send queue bound (default 4096). *)
}

val default_config : config

val create : ?config:config -> Netsim.t -> t
(** Build a fabric.  Every node subsequently {!attach}ed becomes a VC
    switch; the fabric computes call paths from global topology (central
    routing, as in the early public data networks). *)

val attach : t -> Netsim.node_id -> unit
(** Make a node a switch (installs its frame handler — a node cannot host
    both an IP stack and a VC switch). *)

val listen : t -> Netsim.node_id -> (circuit -> unit) -> unit
(** Accept incoming calls at a node; the callback receives the new
    circuit (already accepted). *)

val call :
  t ->
  src:Netsim.node_id ->
  dst:Netsim.node_id ->
  ?on_accept:(unit -> unit) ->
  ?on_clear:(Cell.clear_reason -> unit) ->
  unit ->
  circuit
(** Place a call.  The circuit is usable for {!send} once [on_accept] has
    fired. *)

val on_data : circuit -> (bytes -> unit) -> unit
val on_clear : circuit -> (Cell.clear_reason -> unit) -> unit

val send : circuit -> bytes -> bool
(** Send one message as a data cell (the caller segments to cell size;
    see {!max_payload}).  [false] if the circuit is not open or the local
    hop buffer is full (backpressure). *)

val max_payload : t -> circuit -> int
(** Largest payload the first hop's MTU admits. *)

val clear : circuit -> unit
(** Hang up (clears state along the whole path). *)

val is_open : circuit -> bool

val switch_state_count : t -> Netsim.node_id -> int
(** Live circuit-table entries at a switch: the "state in the network"
    that fate-sharing eliminates. *)

val total_switch_state : t -> int

val stats : t -> stats
