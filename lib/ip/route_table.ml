module Addr = Packet.Addr

type route = {
  prefix : Addr.Prefix.t;
  iface : Netsim.iface;
  next_hop : Addr.t option;
  metric : int;
}

(* Routes bucketed by prefix length: lookup scans from /32 down, so the
   first hit is the longest match.  Tables are small (tens of routes); a
   trie would be overkill and is benchmarked against this in E12.

   [generation] counts mutations.  Per-stack lookup caches key their memo
   on it: any add/remove/clear invalidates every cached answer, which is
   the only correctness condition a forwarding cache needs. *)
type t = { buckets : route list array; mutable generation : int }

let create () = { buckets = Array.make 33 []; generation = 0 }

let generation t = t.generation

let add t r =
  let len = Addr.Prefix.length r.prefix in
  let others =
    List.filter
      (fun r' -> not (Addr.Prefix.equal r'.prefix r.prefix))
      t.buckets.(len)
  in
  t.buckets.(len) <- r :: others;
  t.generation <- t.generation + 1;
  if Trace.want Trace.Cls.route then
    Trace.emit
      (Trace.Event.Route_change
         { prefix = r.prefix; metric = r.metric;
           action = Trace.Event.Route_add })

let remove t prefix =
  let len = Addr.Prefix.length prefix in
  t.buckets.(len) <-
    List.filter
      (fun r -> not (Addr.Prefix.equal r.prefix prefix))
      t.buckets.(len);
  t.generation <- t.generation + 1;
  if Trace.want Trace.Cls.route then
    Trace.emit
      (Trace.Event.Route_change
         { prefix; metric = 0; action = Trace.Event.Route_remove })

let clear t =
  Array.fill t.buckets 0 33 [];
  t.generation <- t.generation + 1;
  if Trace.want Trace.Cls.route then
    Trace.emit
      (Trace.Event.Route_change
         { prefix = Addr.Prefix.make Addr.any 0; metric = 0;
           action = Trace.Event.Route_clear })

let lookup t addr =
  let best = ref None in
  let consider r =
    match !best with
    | Some b when b.metric <= r.metric -> ()
    | Some _ | None -> best := Some r
  in
  let rec scan len =
    if len < 0 then !best
    else begin
      List.iter
        (fun r -> if Addr.Prefix.mem addr r.prefix then consider r)
        t.buckets.(len);
      match !best with Some _ -> !best | None -> scan (len - 1)
    end
  in
  scan 32

let find t prefix =
  let len = Addr.Prefix.length prefix in
  List.find_opt (fun r -> Addr.Prefix.equal r.prefix prefix) t.buckets.(len)

let entries t =
  let acc = ref [] in
  for len = 0 to 32 do
    acc := List.rev_append t.buckets.(len) !acc
  done;
  !acc

let length t = Array.fold_left (fun n l -> n + List.length l) 0 t.buckets

let pp fmt t =
  List.iter
    (fun r ->
      Format.fprintf fmt "%a -> if%d%s metric=%d@."
        Addr.Prefix.pp r.prefix r.iface
        (match r.next_hop with
        | None -> " (connected)"
        | Some nh -> Printf.sprintf " via %s" (Addr.to_string nh))
        r.metric)
    (entries t)
