test/test_packet.ml: Alcotest Bytes Format Int32 List Packet QCheck QCheck_alcotest
