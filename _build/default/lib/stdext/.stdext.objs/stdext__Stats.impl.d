lib/stdext/stats.ml: Array
