module Addr = Packet.Addr
module Prefix = Addr.Prefix

type config = {
  period_us : int;
  timeout_us : int;
  gc_us : int;
  carrier_poll_us : int;
  port : int;
}

let default_config =
  {
    period_us = 5_000_000;
    timeout_us = 17_500_000;
    gc_us = 10_000_000;
    carrier_poll_us = 500_000;
    port = 520;
  }

type stats = {
  mutable updates_sent : int;
  mutable updates_received : int;
  mutable triggered_updates : int;
  mutable routes_expired : int;
  mutable routes_carrier_poisoned : int;
  mutable bad_messages : int;
}

type neighbor = { n_iface : Netsim.iface; n_addr : Addr.t }

(* A RIB entry's lifecycle is a two-state machine: [Reachable] (metric
   below infinity, installed/advertised normally) or [Poisoned at]
   (advertised at infinity until GC removes it, [at] = when it died).
   The invariant [metric >= infinity_metric <-> Poisoned] is maintained
   at every transition site. *)
type life = Reachable | Poisoned of int (* Engine.now at poisoning *)

(* The lifecycle declared as data, machine-checked by the catenet-lint
   transitions pass: every assignment to [life] must be a declared edge
   and every declared edge must have an implementing assignment.  Entry
   creation (record literals, always [Reachable]) is outside the
   diagram. *)
let life_transitions =
  [ (* state, event, state' *)
    ("Reachable", "poisoned: expiry / carrier loss / withdraw / lost connected",
     "Poisoned");
    ("Poisoned", "revived: next-hop update, better route, re-inject, \
                  connected restore", "Reachable");
    ("Reachable", "refreshed: metric change from next hop, direct \
                   attachment supersedes", "Reachable") ]

type rib_entry = {
  prefix : Prefix.t;
  mutable metric : int;
  mutable via : neighbor option; (* None = connected or injected *)
  mutable last_heard : int;
  mutable life : life;
  mutable injected : bool; (* external route from another protocol *)
}

type t = {
  udp : Udp.t;
  ip : Ip.Stack.t;
  eng : Engine.t;
  config : config;
  mutable neighbors : neighbor list;
  rib : (Prefix.t, rib_entry) Hashtbl.t;
  stats : stats;
  mutable sock : Udp.socket option;
  mutable started : bool;
  mutable trigger_pending : bool;
}

let stats t = t.stats

let rib_size t = Hashtbl.length t.rib

let metric_of t prefix =
  Option.map (fun e -> e.metric) (Hashtbl.find_opt t.rib prefix)

let create ?(config = default_config) udp =
  let ip = Udp.stack udp in
  {
    udp;
    ip;
    eng = Ip.Stack.engine ip;
    config;
    neighbors = [];
    rib = Hashtbl.create 32;
    stats =
      {
        updates_sent = 0;
        updates_received = 0;
        triggered_updates = 0;
        routes_expired = 0;
        routes_carrier_poisoned = 0;
        bad_messages = 0;
      };
    sock = None;
    started = false;
    trigger_pending = false;
  }

let add_neighbor t iface addr =
  t.neighbors <- { n_iface = iface; n_addr = addr } :: t.neighbors

(* A neighbor is an (interface, address) pair, not just an address: with
   parallel links between the same pair of routers the same address is
   reachable out of two interfaces, and conflating them aliases both
   adjacencies onto whichever was declared first. *)
let neighbor_equal a b = a.n_iface = b.n_iface && Addr.equal a.n_addr b.n_addr

(* Keep the kernel table in sync with one RIB entry. *)
let install t e =
  match e.via with
  | None -> () (* connected routes are owned by the stack *)
  | Some n ->
      if e.metric >= Rt_msg.infinity_metric then
        Ip.Route_table.remove (Ip.Stack.table t.ip) e.prefix
      else
        Ip.Route_table.add (Ip.Stack.table t.ip)
          {
            Ip.Route_table.prefix = e.prefix;
            iface = n.n_iface;
            next_hop = Some n.n_addr;
            metric = e.metric;
          }

(* Advertisements go out sorted by prefix: entry order reaches the wire
   (and neighbors' processing order), so it must be canonical, not
   hash-table iteration order. *)
let advertisement t ~to_iface =
  List.map
    (fun (_, e) ->
      (* Split horizon with poisoned reverse. *)
      let metric =
        match e.via with
        | Some n when n.n_iface = to_iface -> Rt_msg.infinity_metric
        | Some _ | None -> e.metric
      in
      { Rt_msg.prefix = e.prefix; metric })
    (Stdext.Det.sorted_bindings ~compare:Prefix.compare t.rib)

let send_update t =
  match t.sock with
  | None -> ()
  | Some sock ->
      List.iter
        (fun n ->
          let entries = advertisement t ~to_iface:n.n_iface in
          if entries <> [] then begin
            t.stats.updates_sent <- t.stats.updates_sent + 1;
            ignore
              (Udp.sendto sock ~ttl:1 ~dst:n.n_addr ~dst_port:t.config.port
                 (Rt_msg.encode (Rt_msg.Dv_update entries)))
          end)
        t.neighbors

(* Debounced triggered update: coalesce changes within 10 ms. *)
let trigger t =
  if not t.trigger_pending then begin
    t.trigger_pending <- true;
    Engine.after t.eng 10_000 (fun () ->
        t.trigger_pending <- false;
        t.stats.triggered_updates <- t.stats.triggered_updates + 1;
        send_update t)
  end

(* Why a route was poisoned decides which counter it bumps: expiry and
   carrier loss are different failure modes and used to be conflated
   (carrier poisons inflated [routes_expired] on every poll).  The
   match on [life] makes poisoning idempotent per cause: once an entry
   is [Poisoned], repeated poisons — e.g. the 500 ms carrier poll
   re-observing a dead link, or the periodic expiry firing on an
   already-poisoned entry — neither re-count nor refresh the poison
   timestamp (which would postpone GC forever). *)
type poison_cause = Expired | Carrier | Withdrawn | Lost_connected

let poison t ~cause e =
  match e.life with
  | Poisoned _ -> ()
  | Reachable ->
      e.metric <- Rt_msg.infinity_metric;
      e.life <- Poisoned (Engine.now t.eng);
      (match cause with
      | Expired -> t.stats.routes_expired <- t.stats.routes_expired + 1
      | Carrier ->
          t.stats.routes_carrier_poisoned <-
            t.stats.routes_carrier_poisoned + 1
      | Withdrawn | Lost_connected -> ());
      install t e;
      trigger t

let handle_entry t (n : neighbor) (re : Rt_msg.dv_entry) =
  let now = Engine.now t.eng in
  let metric = min (re.metric + 1) Rt_msg.infinity_metric in
  match Hashtbl.find_opt t.rib re.prefix with
  | None ->
      if metric < Rt_msg.infinity_metric then begin
        let e =
          {
            prefix = re.prefix;
            metric;
            via = Some n;
            last_heard = now;
            life = Reachable;
            injected = false;
          }
        in
        Hashtbl.add t.rib re.prefix e;
        install t e;
        trigger t
      end
  | Some e -> (
      match e.via with
      | None -> () (* never displace a connected route *)
      | Some cur when neighbor_equal cur n ->
          (* From our current next hop: always believe it.  A poisoned
             entry holds metric = infinity, so the change guard means
             the Poisoned arm below is only ever entered from
             Reachable. *)
          e.last_heard <- now;
          if metric <> e.metric then begin
            e.metric <- metric;
            if metric >= Rt_msg.infinity_metric then
              e.life <- Poisoned now [@transitions.from "Reachable"]
            else e.life <- Reachable [@transitions.from "Reachable,Poisoned"];
            install t e;
            trigger t
          end
      | Some _ ->
          if metric < e.metric then begin
            e.via <- Some n;
            e.metric <- metric;
            e.last_heard <- now;
            e.life <- Reachable [@transitions.from "Reachable,Poisoned"];
            install t e;
            trigger t
          end)

(* UDP delivery does not expose the receive interface, so an update is
   attributed to a declared neighbor by source address.  With parallel
   links the same address names several adjacencies; prefer one whose
   link currently has carrier — an update cannot have arrived over a
   dead wire — falling back to the first declared match.  The choice is
   deterministic (declaration order), which replay depends on. *)
let neighbor_for t src =
  match
    List.filter (fun n -> Addr.equal n.n_addr src) t.neighbors
  with
  | [] -> None
  | [ n ] -> Some n
  | candidates -> (
      let net = Ip.Stack.net t.ip and me = Ip.Stack.node_id t.ip in
      let live n =
        Netsim.link_is_up net (Netsim.iface_link net me n.n_iface)
      in
      match List.find_opt live candidates with
      | Some n -> Some n
      | None -> Some (List.hd candidates))

let handle_message t ~src buf =
  match Rt_msg.decode buf with
  | Ok (Rt_msg.Dv_update entries) -> (
      match neighbor_for t src with
      | None -> t.stats.bad_messages <- t.stats.bad_messages + 1
      | Some n ->
          t.stats.updates_received <- t.stats.updates_received + 1;
          List.iter (handle_entry t n) entries)
  | Ok (Rt_msg.Hello _) | Ok (Rt_msg.Lsa _) | Error _ ->
      t.stats.bad_messages <- t.stats.bad_messages + 1

(* GC applies to any poisoned entry — learned, injected or connected —
   otherwise a withdrawn or carrier-lost prefix with [via = None] would
   sit at infinity in the RIB forever. *)
let expire_routes t =
  let now = Engine.now t.eng in
  let stale = ref [] in
  (* Order-independent: each entry's poison/GC decision depends only on
     that entry; [trigger] is debounced, stats are sums, and the kernel
     updates touch disjoint prefixes. *)
  (Hashtbl.iter
     (fun prefix e ->
       match e.life with
       | Poisoned at ->
           if now - at > t.config.gc_us then stale := prefix :: !stale
       | Reachable -> (
           match e.via with
           | None -> () (* connected/injected: no refresh, no expiry *)
           | Some _ ->
               if now - e.last_heard > t.config.timeout_us then
                 poison t ~cause:Expired e))
     t.rib [@determinism.commutative]);
  List.iter
    (fun prefix ->
      Hashtbl.remove t.rib prefix;
      Ip.Route_table.remove (Ip.Stack.table t.ip) prefix)
    !stale

let carrier_check t =
  let net = Ip.Stack.net t.ip in
  let me = Ip.Stack.node_id t.ip in
  List.iter
    (fun n ->
      let link = Netsim.iface_link net me n.n_iface in
      if not (Netsim.link_is_up net link) then
        (* Order-independent: poisoning is per-entry and idempotent. *)
        (Hashtbl.iter
           (fun _ e ->
             match e.via with
             | Some v when v.n_iface = n.n_iface ->
                 poison t ~cause:Carrier e
             | Some _ | None -> ())
           t.rib [@determinism.commutative]))
    t.neighbors

(* Reconcile the RIB's connected entries with the kernel table.  Runs on
   every periodic tick, not just at [start]: an interface configured (or
   restored) after startup must be advertised, and a connected prefix
   whose kernel route vanished must be poisoned so neighbors hear the
   loss rather than timing it out. *)
let sync_connected t =
  let connected = Hashtbl.create 8 in
  List.iter
    (fun (r : Ip.Route_table.route) ->
      if r.next_hop = None && r.metric = 0 then
        Hashtbl.replace connected r.prefix ())
    (Ip.Route_table.entries (Ip.Stack.table t.ip));
  (* Order-independent: each connected prefix updates only its own RIB
     entry; [trigger] is debounced. *)
  (Hashtbl.iter
     (fun prefix () ->
       match Hashtbl.find_opt t.rib prefix with
       | Some e when e.via = None && not e.injected -> (
           match e.life with
           | Poisoned _ ->
               (* The interface came back after a poison. *)
               e.metric <- 1;
               e.life <- Reachable;
               trigger t
           | Reachable -> ())
       | Some e ->
           (* Direct attachment supersedes a learned or injected path. *)
           e.metric <- 1;
           e.via <- None;
           e.injected <- false;
           e.last_heard <- max_int;
           e.life <- Reachable [@transitions.from "Reachable,Poisoned"];
           trigger t
       | None ->
           Hashtbl.replace t.rib prefix
             {
               prefix;
               metric = 1;
               via = None;
               last_heard = max_int;
               life = Reachable;
               injected = false;
             };
           trigger t)
     connected [@determinism.commutative]);
  (* Order-independent: poisoning is per-entry and idempotent. *)
  (Hashtbl.iter
     (fun prefix e ->
       if
         e.via = None && (not e.injected)
         && not (Hashtbl.mem connected prefix)
       then poison t ~cause:Lost_connected e)
     t.rib [@determinism.commutative])

let inject t prefix ~metric =
  let metric = min metric (Rt_msg.infinity_metric - 1) in
  match Hashtbl.find_opt t.rib prefix with
  | Some e when e.injected ->
      if e.metric <> metric then begin
        e.metric <- metric;
        e.life <- Reachable [@transitions.from "Reachable,Poisoned"];
        trigger t
      end
  | Some _ -> () (* never displace a natively learned route *)
  | None ->
      Hashtbl.replace t.rib prefix
        {
          prefix;
          metric;
          via = None;
          last_heard = max_int;
          life = Reachable;
          injected = true;
        };
      trigger t

(* Withdrawing must advertise the loss, not just forget it: silently
   removing the entry left neighbors forwarding into a black hole until
   their own [timeout_us] expired.  Poison → triggered update → GC. *)
let withdraw t prefix =
  match Hashtbl.find_opt t.rib prefix with
  | Some e when e.injected -> poison t ~cause:Withdrawn e
  | Some _ | None -> ()

(* Sorted by prefix: the list feeds redistribution and observers, and a
   public query should not expose hash-table iteration order. *)
let routes t =
  List.filter_map
    (fun (prefix, e) ->
      if (not e.injected) && e.metric < Rt_msg.infinity_metric then
        Some (prefix, e.metric)
      else None)
    (Stdext.Det.sorted_bindings ~compare:Prefix.compare t.rib)

(* Crash simulation: everything learned from the wire is soft state and
   dies with the process (fate-sharing); configuration — neighbors,
   timers, the socket — survives, as does the lifetime stats ledger.
   The next periodic tick re-seeds connected prefixes and the protocol
   relearns the rest. *)
let reset t = Hashtbl.reset t.rib

let start t =
  if not t.started then begin
    t.started <- true;
    sync_connected t;
    let sock =
      Udp.bind t.udp ~port:t.config.port
        ~recv:(fun ~src ~src_port:_ buf -> handle_message t ~src buf)
        ()
    in
    t.sock <- Some sock;
    let rec periodic () =
      sync_connected t;
      expire_routes t;
      send_update t;
      Engine.after t.eng t.config.period_us periodic
    in
    let rec carrier () =
      carrier_check t;
      Engine.after t.eng t.config.carrier_poll_us carrier
    in
    (* First update goes out almost immediately so cold start converges
       in a few round trips rather than a full period. *)
    Engine.after t.eng 1_000 periodic;
    Engine.after t.eng t.config.carrier_poll_us carrier
  end
