lib/vc/cell.mli: Format
