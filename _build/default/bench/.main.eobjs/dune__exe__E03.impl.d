bench/e03.ml: Apps Buffer Bytes Catenet Engine Int32 Internet Netsim Packet Printf Stdext String Tcp Util
