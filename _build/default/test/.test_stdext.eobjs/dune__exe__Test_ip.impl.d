test/test_ip.ml: Alcotest Array Bytes Char Engine Ip List Netsim Packet QCheck QCheck_alcotest Stdext Udp
