(* Tests for the observability subsystem (lib/trace): flight-recorder ring
   semantics, class masking, the pcap writer's exact bytes, the metrics
   registry, the mutable accounting ledger, and — the regression the
   subsystem exists to prevent — that every dropped_* counter bump is
   matched by a recorded drop event with the same reason. *)

module Addr = Packet.Addr
module Ipv4 = Packet.Ipv4

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* The recorder is global state: every test that enables it must clean up,
   including on failure, or it poisons the next test. *)
let with_trace ?capacity ?mask f =
  Trace.enable ?capacity ?mask ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.clear ())
    f

(* --- ring buffer ---------------------------------------------------------- *)

let prop_ring_wrap =
  QCheck.Test.make ~count:200 ~name:"ring wrap: length/emitted/overwritten/seq"
    QCheck.(pair (int_range 1 64) (int_range 0 200))
    (fun (cap, k) ->
      Trace.enable ~capacity:cap ~mask:Trace.Cls.timer ();
      Trace.set_now (fun () -> 0);
      Fun.protect
        ~finally:(fun () ->
          Trace.disable ();
          Trace.clear ())
        (fun () ->
          for i = 0 to k - 1 do
            Trace.emit (Trace.Event.Timer_arm { at = i })
          done;
          let held = Trace.length () in
          let ok_counts =
            held = min k cap
            && Trace.emitted () = k
            && Trace.overwritten () = max 0 (k - cap)
            && Trace.capacity () = cap
          in
          (* Oldest first; seqs contiguous, ending at k-1; each event's
             payload matches its seq (nothing was scrambled by wrapping). *)
          let entries = Trace.entries () in
          let ok_order =
            List.for_all2
              (fun (e : Trace.entry) want_seq ->
                e.seq = want_seq
                &&
                match e.event with
                | Trace.Event.Timer_arm { at } -> at = want_seq
                | _ -> false)
              entries
              (List.init held (fun i -> k - held + i))
          in
          ok_counts && ok_order))

let test_clear_resets () =
  with_trace ~capacity:8 ~mask:Trace.Cls.timer (fun () ->
      Trace.set_now (fun () -> 0);
      for i = 0 to 20 do
        Trace.emit (Trace.Event.Timer_arm { at = i })
      done;
      Trace.clear ();
      check Alcotest.int "length" 0 (Trace.length ());
      check Alcotest.int "emitted" 0 (Trace.emitted ());
      check Alcotest.int "overwritten" 0 (Trace.overwritten ());
      Trace.emit (Trace.Event.Timer_arm { at = 99 });
      match Trace.entries () with
      | [ { seq = 0; event = Trace.Event.Timer_arm { at = 99 }; _ } ] -> ()
      | _ -> Alcotest.fail "seq restarts at 0 after clear")

let test_mask_filtering () =
  with_trace ~mask:Trace.Cls.link (fun () ->
      check Alcotest.bool "want link" true (Trace.want Trace.Cls.link);
      check Alcotest.bool "want ip" false (Trace.want Trace.Cls.ip);
      (* Unguarded emit of a disabled class must also be discarded: the
         recorder re-checks the event's own class. *)
      Trace.emit
        (Trace.Event.Ip_drop
           { node = 1; src = Addr.any; dst = Addr.any;
             reason = Trace.Event.No_route });
      Trace.emit
        (Trace.Event.Link_drop
           { link = 0; dir = 0; len = 10; reason = Trace.Event.Queue_full });
      check Alcotest.int "only link recorded" 1 (Trace.length ());
      Trace.set_mask Trace.Cls.all;
      Trace.emit
        (Trace.Event.Ip_drop
           { node = 1; src = Addr.any; dst = Addr.any;
             reason = Trace.Event.No_route });
      check Alcotest.int "ip recorded after set_mask" 2 (Trace.length ());
      check Alcotest.int "drops by reason" 1
        (List.length (Trace.drops ~reason:Trace.Event.No_route ())))

let test_disabled_is_inert () =
  Trace.disable ();
  Trace.clear ();
  check Alcotest.bool "want" false (Trace.want Trace.Cls.all);
  Trace.emit (Trace.Event.Timer_arm { at = 1 });
  check Alcotest.int "nothing recorded" 0 (Trace.emitted ())

(* --- pcap ----------------------------------------------------------------- *)

(* Golden bytes, written out by hand from the libpcap 2.4 format spec so
   the writer is checked against the format, not against itself. *)
let test_pcap_golden () =
  let p = Trace.Pcap.create ~snaplen:8 () in
  Trace.Pcap.add p ~ts_us:3_000_007 (Bytes.of_string "ABCD");
  Trace.Pcap.add p ~ts_us:4_500_000 (Bytes.of_string "0123456789ab");
  let le32 v =
    String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))
  in
  let le16 v = String.init 2 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff)) in
  let expected =
    String.concat ""
      [ "\xd4\xc3\xb2\xa1" (* magic 0xa1b2c3d4, little-endian *);
        le16 2; le16 4 (* version 2.4 *);
        le32 0 (* thiszone *);
        le32 0 (* sigfigs *);
        le32 8 (* snaplen *);
        le32 101 (* LINKTYPE_RAW *);
        (* record 1: 4 bytes, untruncated *)
        le32 3; le32 7 (* 3.000007s *);
        le32 4; le32 4;
        "ABCD";
        (* record 2: 12 bytes truncated to the 8-byte snaplen *)
        le32 4; le32 500_000;
        le32 8; le32 12;
        "01234567" ]
  in
  check Alcotest.int "packet count" 2 (Trace.Pcap.packet_count p);
  check Alcotest.int "byte length" (String.length expected)
    (Trace.Pcap.byte_length p);
  check Alcotest.string "exact bytes" expected (Trace.Pcap.to_string p)

let test_pcap_on_link () =
  (* A tap wired through Netsim captures exactly the frames that complete
     transmission, stamped with the virtual clock. *)
  let eng = Engine.create () in
  let net = Netsim.create ~seed:1 eng in
  let a = Netsim.add_node net "a" in
  let b = Netsim.add_node net "b" in
  let l = Netsim.add_link net (Netsim.profile "test") a b in
  Netsim.set_handler net b (fun ~iface:_ _ -> ());
  let p = Trace.Pcap.create () in
  Netsim.set_link_tap net l
    (Some (fun ~dir:_ frame -> Trace.Pcap.add p ~ts_us:(Engine.now eng) frame));
  ignore (Netsim.send net a ~iface:0 (Bytes.of_string "datagram-1"));
  ignore (Netsim.send net a ~iface:0 (Bytes.of_string "datagram-2"));
  Engine.run eng;
  check Alcotest.int "both frames captured" 2 (Trace.Pcap.packet_count p);
  check Alcotest.int "bytes = header + 2 records"
    (Trace.Pcap.header_len + (2 * (Trace.Pcap.record_header_len + 10)))
    (Trace.Pcap.byte_length p)

(* --- drop counters vs trace events ---------------------------------------- *)

(* Every dropped_* counter bump must leave a matching drop event in the
   recorder: the counters say how often, the events say which datagram.
   Each scenario exercises one bump site and checks counter == event
   count for its reason. *)

let two_hosts () =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:3 eng in
  let na = Netsim.add_node net "a" in
  let nb = Netsim.add_node net "b" in
  ignore (Netsim.add_link net (Netsim.profile "test") na nb);
  let a = Ip.Stack.create net na in
  let b = Ip.Stack.create net nb in
  Ip.Stack.configure_iface a 0 ~addr:(Addr.v 10 0 1 1) ~prefix_len:24;
  Ip.Stack.configure_iface b 0 ~addr:(Addr.v 10 0 1 2) ~prefix_len:24;
  (eng, a, b)

let drop_count reason = List.length (Trace.drops ~reason ())

let test_drop_no_route () =
  with_trace (fun () ->
      let _eng, a, _b = two_hosts () in
      (match
         Ip.Stack.send a ~proto:(Ipv4.Proto.Other 99) ~dst:(Addr.v 10 9 9 9)
           (Bytes.of_string "x")
       with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "send off-subnet with no route succeeded");
      check Alcotest.int "counter" 1 (Ip.Stack.counters a).Ip.Stack.dropped_no_route;
      check Alcotest.int "event" 1 (drop_count Trace.Event.No_route))

let test_drop_no_proto () =
  with_trace (fun () ->
      let eng, a, b = two_hosts () in
      (match
         Ip.Stack.send a ~proto:(Ipv4.Proto.Other 77) ~dst:(Addr.v 10 0 1 2)
           (Bytes.of_string "nobody home")
       with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "send failed");
      Engine.run eng;
      check Alcotest.int "counter" 1 (Ip.Stack.counters b).Ip.Stack.dropped_no_proto;
      check Alcotest.int "event" 1 (drop_count Trace.Event.No_proto))

let test_drop_malformed () =
  with_trace (fun () ->
      let _eng, a, _b = two_hosts () in
      Ip.Stack.receive a ~iface:0 (Bytes.make 6 'z');
      check Alcotest.int "counter" 1 (Ip.Stack.counters a).Ip.Stack.dropped_malformed;
      check Alcotest.int "event" 1 (drop_count Trace.Event.Malformed))

let test_drop_not_forwarding () =
  with_trace (fun () ->
      let _eng, a, _b = two_hosts () in
      let frame =
        Ipv4.encode
          (Ipv4.make_header ~proto:(Ipv4.Proto.Other 99)
             ~src:(Addr.v 10 0 1 2) ~dst:(Addr.v 10 0 9 9) ())
          ~payload:(Bytes.of_string "transit at a host")
      in
      Ip.Stack.receive a ~iface:0 frame;
      check Alcotest.int "counter" 1
        (Ip.Stack.counters a).Ip.Stack.dropped_not_forwarding;
      check Alcotest.int "event" 1 (drop_count Trace.Event.Not_forwarding))

let test_drop_ttl_and_unroutable_icmp () =
  (* A transit datagram arrives at a gateway with TTL 1 from a source the
     gateway has no route back to: the TTL drop is counted and traced,
     and so is the time-exceeded ICMP that could not be sent — satellite
     fix for the previously silent [icmp_to] None branch. *)
  with_trace (fun () ->
      let eng = Engine.create () in
      let net = Netsim.create ~seed:3 eng in
      let ng = Netsim.add_node net "g" in
      let nx = Netsim.add_node net "x" in
      let ny = Netsim.add_node net "y" in
      ignore (Netsim.add_link net (Netsim.profile "test") ng nx);
      ignore (Netsim.add_link net (Netsim.profile "test") ng ny);
      let g = Ip.Stack.create ~forwarding:true net ng in
      Ip.Stack.configure_iface g 0 ~addr:(Addr.v 10 0 1 1) ~prefix_len:24;
      Ip.Stack.configure_iface g 1 ~addr:(Addr.v 10 0 2 1) ~prefix_len:24;
      let frame =
        Ipv4.encode
          (Ipv4.make_header ~ttl:1 ~proto:(Ipv4.Proto.Other 99)
             ~src:(Addr.v 192 168 5 5) ~dst:(Addr.v 10 0 2 9) ())
          ~payload:(Bytes.of_string "dying breath")
      in
      Ip.Stack.receive g ~iface:0 frame;
      let c = Ip.Stack.counters g in
      check Alcotest.int "ttl counter" 1 c.Ip.Stack.dropped_ttl;
      check Alcotest.int "ttl event" 1 (drop_count Trace.Event.Ttl_expired);
      check Alcotest.int "unroutable icmp counter" 1
        c.Ip.Stack.dropped_unroutable_icmp;
      check Alcotest.int "unroutable icmp event" 1
        (drop_count Trace.Event.Unroutable_icmp))

let test_drop_link_queue_and_down () =
  with_trace (fun () ->
      let eng = Engine.create () in
      let net = Netsim.create ~seed:1 eng in
      let a = Netsim.add_node net "a" in
      let b = Netsim.add_node net "b" in
      let l =
        Netsim.add_link net
          (Netsim.profile "tiny" ~bandwidth_bps:1_000_000 ~queue_capacity:1)
          a b
      in
      Netsim.set_handler net b (fun ~iface:_ _ -> ());
      for _ = 1 to 5 do
        ignore (Netsim.send net a ~iface:0 (Bytes.make 1000 'q'))
      done;
      Engine.run eng;
      Netsim.set_link_up net l false;
      check Alcotest.bool "send on down link fails" false
        (Netsim.send net a ~iface:0 (Bytes.make 10 'd'));
      let st = Netsim.link_stats net l in
      check Alcotest.bool "some queue drops" true (st.Netsim.drops_queue > 0);
      check Alcotest.int "queue_full events = drops_queue"
        st.Netsim.drops_queue
        (drop_count Trace.Event.Queue_full);
      check Alcotest.int "link_down events = drops_down" st.Netsim.drops_down
        (drop_count Trace.Event.Link_down))

(* --- timers ---------------------------------------------------------------- *)

let test_timer_events () =
  with_trace ~mask:Trace.Cls.timer (fun () ->
      let eng = Engine.create () in
      let fired = ref false in
      let _h = Engine.Timer.start eng ~after:250 (fun () -> fired := true) in
      Engine.run eng;
      check Alcotest.bool "timer ran" true !fired;
      check Alcotest.int "one arm" 1
        (Trace.count (function Trace.Event.Timer_arm _ -> true | _ -> false));
      check Alcotest.int "one fire" 1
        (Trace.count (function Trace.Event.Timer_fire _ -> true | _ -> false));
      match
        List.filter
          (fun (e : Trace.entry) ->
            match e.event with Trace.Event.Timer_fire _ -> true | _ -> false)
          (Trace.entries ())
      with
      | [ { t_us; event = Trace.Event.Timer_fire { at }; _ } ] ->
          check Alcotest.int "fired at its deadline" 250 at;
          check Alcotest.int "stamped with the virtual clock" 250 t_us
      | _ -> Alcotest.fail "expected exactly one fire entry")

(* --- metrics --------------------------------------------------------------- *)

let test_metrics_owned_and_find () =
  let m = Trace.Metrics.create () in
  let hits = Trace.Metrics.counter m "hits" in
  Trace.Metrics.incr hits;
  Trace.Metrics.incr ~by:2 hits;
  Trace.Metrics.gauge m "depth" (fun () -> 4.5);
  let h = Trace.Metrics.histogram m "rtt" in
  Trace.Metrics.observe h 10.0;
  Trace.Metrics.observe h 30.0;
  (match Trace.Metrics.find m ~source:"self" ~name:"hits" with
  | Some (Trace.Metrics.Int 3) -> ()
  | _ -> Alcotest.fail "counter not in snapshot");
  (match Trace.Metrics.find m ~source:"self" ~name:"depth" with
  | Some (Trace.Metrics.Float g) -> check (Alcotest.float 0.0) "gauge" 4.5 g
  | _ -> Alcotest.fail "gauge not in snapshot");
  match Trace.Metrics.find m ~source:"self" ~name:"rtt" with
  | Some (Trace.Metrics.Dist d) ->
      check Alcotest.int "dist count" 2 d.count;
      check (Alcotest.float 0.001) "dist mean" 20.0 d.mean
  | _ -> Alcotest.fail "histogram not in snapshot"

let test_metrics_duplicate_register () =
  let m = Trace.Metrics.create () in
  Trace.Metrics.register m "ip" (fun () -> []);
  match Trace.Metrics.register m "ip" (fun () -> []) with
  | () -> Alcotest.fail "duplicate register accepted"
  | exception Invalid_argument _ -> ()

let test_metrics_cover_drop_counters () =
  (* The acceptance criterion: a stack's dropped_* counters are all
     reachable through one registry snapshot. *)
  Trace.disable ();
  let _eng, a, _b = two_hosts () in
  ignore
    (Ip.Stack.send a ~proto:(Ipv4.Proto.Other 99) ~dst:(Addr.v 10 9 9 9)
       (Bytes.of_string "x"));
  let m = Trace.Metrics.create () in
  Trace.Metrics.register m "ip.a" (Ip.Stack.metrics_items a);
  (match Trace.Metrics.find m ~source:"ip.a" ~name:"dropped_no_route" with
  | Some (Trace.Metrics.Int 1) -> ()
  | _ -> Alcotest.fail "dropped_no_route not visible through the registry");
  let items = List.assoc "ip.a" (Trace.Metrics.snapshot m) in
  List.iter
    (fun name ->
      if not (List.mem_assoc name items) then
        Alcotest.failf "counter %s missing from snapshot" name)
    [ "dropped_malformed"; "dropped_no_route"; "dropped_ttl";
      "dropped_no_proto"; "dropped_not_forwarding"; "dropped_df";
      "dropped_unroutable_icmp" ]

(* --- accounting ------------------------------------------------------------ *)

let test_accounting_mutable_ledger () =
  let acct = Ip.Accounting.create () in
  let h =
    Ipv4.make_header ~proto:(Ipv4.Proto.Other 99) ~src:(Addr.v 10 0 1 1)
      ~dst:(Addr.v 10 0 2 2) ()
  in
  let payload = Bytes.make 100 'p' in
  Ip.Accounting.record acct h ~payload ~wire_bytes:120;
  Ip.Accounting.record acct h ~payload ~wire_bytes:120;
  check Alcotest.int "one flow" 1 (Ip.Accounting.flow_count acct);
  let flow, usage =
    match Ip.Accounting.flows acct with [ fu ] -> fu | _ -> assert false
  in
  check Alcotest.int "packets" 2 usage.Ip.Accounting.packets;
  check Alcotest.int "bytes" 240 usage.Ip.Accounting.bytes;
  (* Reads are copies: callers cannot corrupt the ledger through them. *)
  usage.Ip.Accounting.packets <- 999;
  (match Ip.Accounting.lookup acct flow with
  | Some u -> check Alcotest.int "ledger unaffected" 2 u.Ip.Accounting.packets
  | None -> Alcotest.fail "flow vanished");
  let total = Ip.Accounting.total acct in
  check Alcotest.int "total bytes" 240 total.Ip.Accounting.bytes;
  match Ip.Accounting.metrics_items acct () with
  | items -> (
      match List.assoc "packets" items with
      | Trace.Metrics.Int 2 -> ()
      | _ -> Alcotest.fail "metrics_items packets")

(* --- suite ----------------------------------------------------------------- *)

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [ qcheck prop_ring_wrap;
          Alcotest.test_case "clear resets" `Quick test_clear_resets;
          Alcotest.test_case "mask filtering" `Quick test_mask_filtering;
          Alcotest.test_case "disabled inert" `Quick test_disabled_is_inert ] );
      ( "pcap",
        [ Alcotest.test_case "golden bytes" `Quick test_pcap_golden;
          Alcotest.test_case "link tap capture" `Quick test_pcap_on_link ] );
      ( "drops",
        [ Alcotest.test_case "no_route" `Quick test_drop_no_route;
          Alcotest.test_case "no_proto" `Quick test_drop_no_proto;
          Alcotest.test_case "malformed" `Quick test_drop_malformed;
          Alcotest.test_case "not_forwarding" `Quick test_drop_not_forwarding;
          Alcotest.test_case "ttl + unroutable icmp" `Quick
            test_drop_ttl_and_unroutable_icmp;
          Alcotest.test_case "queue_full + link_down" `Quick
            test_drop_link_queue_and_down ] );
      ( "timers",
        [ Alcotest.test_case "arm and fire" `Quick test_timer_events ] );
      ( "metrics",
        [ Alcotest.test_case "owned values + find" `Quick
            test_metrics_owned_and_find;
          Alcotest.test_case "duplicate register" `Quick
            test_metrics_duplicate_register;
          Alcotest.test_case "covers drop counters" `Quick
            test_metrics_cover_drop_counters ] );
      ( "accounting",
        [ Alcotest.test_case "mutable ledger, copied reads" `Quick
            test_accounting_mutable_ledger ] );
    ]
