(* Fixture: wire-layout violations.  The layout overlaps ("a" and "b"
   share byte 1), leaves bytes 3..4 unaccounted, and the encoder writes a
   byte that starts in the middle of field "b". *)

let layout = [ ("a", 0, 2); ("b", 1, 2); ("d", 5, 1) ]

let encode v =
  let buf = Bytes.create 6 in
  Bytes.set_uint16_be buf 0 v;
  Bytes.set_uint8 buf 2 (v land 0xff);
  buf
