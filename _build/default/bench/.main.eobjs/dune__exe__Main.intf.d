bench/main.mli:
