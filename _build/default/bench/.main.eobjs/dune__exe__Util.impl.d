bench/util.ml: Apps Bytes Catenet Engine Internet List Printf String Vc
