(** Hierarchical catenet generator: the paper's §6 "regions" architecture
    at internet scale (E17).

    A seeded transit core — a ring of gateways plus random chords — with
    stub regions hanging off it.  Aggregation is the point: each region
    is one /20 prefix in every core table, so a core gateway's
    forwarding state is O(regions + core degree) whether the catenet
    holds 10^2 or 10^5 hosts.  Region gateways hold one host route per
    leaf plus a default up their transit link; leaf hosts are pooled
    ({!Hostpool}) rather than full stacks.

    Addressing: region [r] owns [10.(r lsl 12 bits)/20] (up to 4096
    regions of 4093 hosts); transit point-to-point links draw /30s from
    [172.16.0.0/12]. *)

type config = {
  seed : int;
  core : int;  (** Transit gateways, ring-connected; at least 1. *)
  chords : int;  (** Extra random core cross-links (best effort). *)
  regions : int;  (** 1..4096, each attached to core gw [r mod core]. *)
  hosts_per_region : int;  (** 1..4093 pooled leaves per region. *)
  core_profile : Netsim.profile;
  edge_profile : Netsim.profile;  (** Region-gateway uplinks. *)
  host_profile : Netsim.profile;  (** Leaf host access links. *)
}

val default_config : config
(** 8-gateway core with 4 chords, 16 regions of 64 hosts, gigabit links
    everywhere. *)

type t

val build : config -> t
(** Construct engine, network, gateways, routes and pooled hosts.  Raises
    [Invalid_argument] on out-of-range config or a disconnected core. *)

val engine : t -> Engine.t
val net : t -> Netsim.t
val pool : t -> Hostpool.t

val core_size : t -> int
val regions : t -> int
val hosts_per_region : t -> int
val core_gw : t -> int -> Ip.Stack.t
val region_gw : t -> int -> Ip.Stack.t

val host_slot : t -> region:int -> index:int -> int
(** The {!Hostpool} slot of host [index] in [region]. *)

val host_addr : t -> region:int -> index:int -> Packet.Addr.t

val region_prefix : int -> Packet.Addr.Prefix.t
(** The /20 a region announces into the core. *)

val region_gw_addr : int -> Packet.Addr.t
(** The region gateway's in-region address (.1 of the region's /20) —
    the one gateway address reachable from everywhere via the region's
    aggregate; transit-link /30 addresses are not globally routed.
    Region-local services (the E21 resolver) bind here. *)

val region_attach : t -> int -> int
(** The core gateway a region hangs off. *)

val region_hops : t -> int -> int -> int
(** Gateway hops between two regions (0 within a region): uplink, the
    BFS core distance between their attach gateways, far uplink.  The
    anycast directory's distance function. *)

val add_full_host : t -> region:int -> Ip.Stack.t * Packet.Addr.t
(** Attach a full-stack host inside a region, addressed past the pooled
    range: /32 at the region gateway, default route up, reachable from
    everywhere via the region's aggregate.  For infrastructure
    endpoints (name servers, anycast directories) that need real UDP
    rather than pooled send/sink.  Raises [Invalid_argument] when the
    region's /20 is exhausted. *)

val route_entries_total : t -> int
(** Sum of all gateway table sizes — the catenet's total forwarding
    state. *)

val core_table_max : t -> int
(** Largest core-gateway table.  The aggregation invariant under test:
    stays [O(regions + degree)] as the host count scales. *)
