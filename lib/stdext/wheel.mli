(** Hashed timing wheel (Varghese & Lauck): a priority structure with O(1)
    insertion, for timers.

    Unlike the binary heap, [add] does no sifting — a cell is prepended to
    the slot its deadline hashes to — so arming a timer is constant-time,
    and a cancelled timer costs nothing until it surfaces at [pop_min]
    (the owner flags its value and discards it then, exactly as it does
    for cancelled heap entries).  [min_key]/[min_seq]/[pop_min] expose
    exact (deadline, sequence) ordering so the wheel can be merged
    deterministically with another event queue. *)

type 'a t

val create : ?slots:int -> ?granularity:int -> unit -> 'a t
(** [slots] (default 1024) and [granularity] (default 2048, microseconds
    per tick) fix the wheel geometry.  Entries beyond one full rotation
    are still ordered correctly (they wait for their round), but callers
    get the best behaviour keeping deadlines within {!horizon}. *)

val horizon : 'a t -> int
(** [slots * granularity]: one full rotation. *)

val length : 'a t -> int
(** Resident entries. *)

val add : 'a t -> at:int -> seq:int -> 'a -> unit
(** Insert with absolute deadline [at]; [seq] breaks deadline ties (lower
    pops first) and must be unique across resident entries. *)

val min_key : 'a t -> int
(** Deadline of the earliest entry, or [max_int] when empty. *)

val min_seq : 'a t -> int
(** Sequence of the earliest entry, or [max_int] when empty. *)

val pop_min : 'a t -> 'a
(** Remove and return the earliest entry.
    @raise Not_found when empty. *)




