(** Link-state interior routing (OSPF-shaped, radically simplified).

    Gateways exchange hellos to detect adjacency liveness, flood link-state
    advertisements describing their adjacencies and owned prefixes, and run
    Dijkstra over the resulting map.  Provided as the second "realization"
    of the routing function (Clark §9): same survivability goal as {!Dv},
    different convergence and overhead profile — compared in the E1/E8
    experiments. *)

type config = {
  hello_us : int;  (** Hello interval (default 1 s). *)
  dead_count : int;  (** Missed hellos before an adjacency is down (3). *)
  refresh_us : int;  (** Own-LSA re-origination interval (default 15 s). *)
  max_age_us : int;  (** LSDB entry lifetime (default 60 s). *)
  port : int;  (** UDP port (default 521). *)
}

val default_config : config

type stats = {
  mutable hellos_sent : int;
  mutable lsas_originated : int;
  mutable lsas_flooded : int;
  mutable lsas_received : int;
  mutable spf_runs : int;
  mutable bad_messages : int;
}

type t

val create : ?config:config -> Udp.t -> t
(** The router id is the stack's primary address. *)

val router_id : t -> Packet.Addr.t

val add_neighbor : t -> Netsim.iface -> Packet.Addr.t -> cost:int -> unit
(** Declare a point-to-point adjacency with the given link cost. *)

val start : t -> unit

val stats : t -> stats

val lsdb_size : t -> int
(** LSAs currently held (including our own). *)

val reachable : t -> Packet.Addr.t -> bool
(** Whether the given router id is currently in the shortest-path tree. *)

val set_external_prefixes : t -> (Packet.Addr.Prefix.t * int) list -> unit
(** Advertise prefixes learned from another protocol (border-gateway
    redistribution) as stubs of this router, with the given costs; replaces
    the previous external set and re-originates the LSA. *)

val reset : t -> unit
(** Crash simulation: clear the LSDB, adjacency liveness and installed
    routes.  The LSA sequence counter survives so the reborn router's
    first origination beats its own stale pre-crash LSA. *)

val routes : t -> (Packet.Addr.Prefix.t * int) list
(** Prefixes this instance computed from other routers' LSAs, with their
    metrics, plus its own connected prefixes — the set a redistributor may
    export. *)
