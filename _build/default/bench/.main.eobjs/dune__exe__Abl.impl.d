bench/abl.ml: Apps Array Bytes Catenet Engine Internet Ip List Netsim Printf Routing Stdext Tcp Util
