bench/e11.ml: Bytes Catenet Engine Int32 Internet Ip List Netsim Packet Printf Stdext Udp Util
