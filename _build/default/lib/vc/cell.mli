(** Cell formats for the virtual-circuit baseline network.

    The VC network is deliberately X.25-shaped: calls are set up along a
    path, every switch on the path holds per-circuit state, and data cells
    are identified by a link-local virtual circuit id rather than by full
    addresses — the design the DARPA architecture rejected.  Cells carry a
    5-byte header (vs. 40 bytes of IP+TCP), which is the honest side of
    the trade-off recorded in experiment E5/E6. *)

type clear_reason =
  | Remote_clear  (** The other endpoint hung up. *)
  | Link_failure
  | Node_failure
  | No_route
  | Refused  (** No listener at the destination. *)
  | Hop_timeout  (** Per-hop retransmission gave up. *)

val clear_reason_to_int : clear_reason -> int
val clear_reason_of_int : int -> clear_reason option
val pp_clear_reason : Format.formatter -> clear_reason -> unit

type t =
  | Setup of { vci : int; src : int; path : int list }
      (** Source-routed call establishment: [path] is the remaining nodes
          to traverse (destination last). *)
  | Accept of { vci : int }
  | Clear of { vci : int; reason : clear_reason }
  | Data of { vci : int; seq : int; payload : bytes }
  | Hop_ack of { vci : int; seq : int }
      (** Cumulative per-hop acknowledgment: everything below [seq]. *)

type error = [ `Truncated | `Bad_header of string ]

val encode : t -> bytes
val decode : bytes -> (t, error) result

val data_header_size : int
(** Wire overhead of one data cell: 5 bytes. *)

val pp : Format.formatter -> t -> unit
