module Addr = Packet.Addr
module W = Stdext.Bytio.W
module R = Stdext.Bytio.R

type dv_entry = { prefix : Addr.Prefix.t; metric : int }

let infinity_metric = 16

type ls_neighbor = { neighbor_id : int32; cost : int }
type ls_prefix = { prefix : Addr.Prefix.t; cost : int }

type lsa = {
  origin : int32;
  seq : int;
  neighbors : ls_neighbor list;
  prefixes : ls_prefix list;
}

type t = Dv_update of dv_entry list | Hello of int32 | Lsa of lsa

type error = [ `Truncated | `Bad_header of string ]

let write_prefix w p =
  W.u32 w (Addr.to_int32 (Addr.Prefix.network p));
  W.u8 w (Addr.Prefix.length p)

let read_prefix r =
  let network = Addr.of_int32 (R.u32 r) in
  let len = R.u8 r in
  if len > 32 then invalid_arg "bad prefix length";
  Addr.Prefix.make network len

let encode = function
  | Dv_update entries ->
      let w = W.create (3 + (7 * List.length entries)) in
      W.u8 w 1;
      W.u16 w (List.length entries);
      List.iter
        (fun (e : dv_entry) ->
          write_prefix w e.prefix;
          W.u16 w e.metric)
        entries;
      W.contents w
  | Hello id ->
      let w = W.create 5 in
      W.u8 w 2;
      W.u32 w id;
      W.contents w
  | Lsa l ->
      let w =
        W.create
          (13 + (6 * List.length l.neighbors) + (7 * List.length l.prefixes))
      in
      W.u8 w 3;
      W.u32 w l.origin;
      W.u32_of_int w l.seq;
      W.u16 w (List.length l.neighbors);
      List.iter
        (fun n ->
          W.u32 w n.neighbor_id;
          W.u16 w n.cost)
        l.neighbors;
      W.u16 w (List.length l.prefixes);
      List.iter
        (fun p ->
          write_prefix w p.prefix;
          W.u16 w p.cost)
        l.prefixes;
      W.contents w

let decode buf =
  let r = R.of_bytes buf in
  try
    match R.u8 r with
    | 1 ->
        let n = R.u16 r in
        let entries =
          List.init n (fun _ ->
              let prefix = read_prefix r in
              let metric = R.u16 r in
              { prefix; metric })
        in
        Ok (Dv_update entries)
    | 2 -> Ok (Hello (R.u32 r))
    | 3 ->
        let origin = R.u32 r in
        let seq = R.u32_to_int r in
        let nn = R.u16 r in
        let neighbors =
          List.init nn (fun _ ->
              let neighbor_id = R.u32 r in
              let cost = R.u16 r in
              { neighbor_id; cost })
        in
        let np = R.u16 r in
        let prefixes =
          List.init np (fun _ ->
              let prefix = read_prefix r in
              let cost = R.u16 r in
              { prefix; cost })
        in
        Ok (Lsa { origin; seq; neighbors; prefixes })
    | ty -> Error (`Bad_header (Printf.sprintf "unknown message type %d" ty))
  with
  | Stdext.Bytio.Truncated -> Error `Truncated
  | Invalid_argument m -> Error (`Bad_header m)

let pp fmt = function
  | Dv_update entries ->
      Format.fprintf fmt "dv-update [%a]"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
           (fun f (e : dv_entry) ->
             Format.fprintf f "%a=%d" Addr.Prefix.pp e.prefix e.metric))
        entries
  | Hello id -> Format.fprintf fmt "hello %a" Addr.pp (Addr.of_int32 id)
  | Lsa l ->
      Format.fprintf fmt "lsa origin=%a seq=%d n=%d p=%d" Addr.pp
        (Addr.of_int32 l.origin) l.seq (List.length l.neighbors)
        (List.length l.prefixes)
