(** The caching, recursing resolver.

    One per region gateway: clients send RD queries to port 53; the
    resolver answers from its {!Cache} or walks the hierarchy
    iteratively (root authority, then the referred region authority),
    caching answers, negative answers and delegations, and coalescing
    concurrent identical queries into one upstream walk
    (single-flight).  Unanswered upstream queries are retried on a
    timer, then answered SERVFAIL (never cached).

    Everything here is soft state: {!flush} — registered on
    [Ip.Stack.on_soft_flush] at creation, so a chaos crash triggers it
    — forgets the cache and aborts every in-flight walk.  Clients
    retry, authorities still hold the zones, the caches re-warm:
    fate-sharing applied to the naming layer. *)

val well_known_port : int
(** 53. *)

type t

type stats = {
  mutable lookups : int;
  mutable cache_hits : int;
  mutable coalesced : int;  (** Joined an existing in-flight walk. *)
  mutable upstream : int;  (** Upstream queries sent, retries included. *)
  mutable retries : int;
  mutable answers : int;  (** Terminal answers delivered (any rcode). *)
  mutable servfails : int;
  mutable bad : int;  (** Undecodable or unexpected datagrams. *)
  mutable flushes : int;
}

val create :
  udp:Udp.t ->
  eng:Engine.t ->
  node:int ->
  ?src:Packet.Addr.t ->
  root:Packet.Addr.t ->
  ?port:int ->
  ?authority_port:int ->
  ?cache_capacity:int ->
  ?timeout_us:int ->
  ?retries:int ->
  ?max_hops:int ->
  unit ->
  t
(** Bind the client-facing socket at [port] (default 53) and register
    crash amnesia on the stack's flush hook.  [node] tags trace events;
    [src] pins the source address of every datagram sent (required when
    the outgoing interface address is not globally routed); [root] is
    the root authority's address, queried at [authority_port] (default
    {!Server.well_known_port}).  Defaults: 4096-entry cache, 250 ms
    upstream timeout, 2 retries, 4 referral hops. *)

val resolve :
  t ->
  qtype:int ->
  l0:int ->
  l1:int ->
  l2:int ->
  (rcode:int -> answer:int -> ttl_s:int -> unit) ->
  unit
(** In-process query: same cache, same single-flight walk as wire
    queries.  The callback fires exactly once — possibly synchronously
    on a cache hit, and with SERVFAIL if the resolver is flushed while
    the walk is in flight. *)

val flush : t -> unit
(** Crash amnesia, also invoked by the stack's soft-state flush: drop
    the cache and abort every in-flight walk (local waiters hear
    SERVFAIL; remote waiters hear nothing, as from a real crash). *)

val cache : t -> Cache.t
val stats : t -> stats
val metrics_items : t -> unit -> (string * Trace.Metrics.value) list
