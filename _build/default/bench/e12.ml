(* E12 — Micro-costs of the mechanism (supporting data for E6).

   Bechamel microbenchmarks of the per-packet work a host or gateway
   performs: checksums, header encode/decode, routing lookups, event-queue
   operations.  These are the constants behind every experiment above. *)

open Catenet
open Bechamel
open Toolkit

module Addr = Packet.Addr

let payload_1460 = Bytes.make 1460 'x'

let ip_header =
  Packet.Ipv4.make_header ~proto:Packet.Ipv4.Proto.Tcp ~src:(Addr.v 10 0 0 1)
    ~dst:(Addr.v 10 0 0 2) ()

let encoded_ip = Packet.Ipv4.encode ip_header ~payload:payload_1460

let tcp_seg =
  Packet.Tcp_wire.make ~seq:12345 ~ack_n:54321
    ~flags:(Packet.Tcp_wire.flags ~ack:true ())
    ~window:65535 ~payload:payload_1460 ~src_port:1000 ~dst_port:2000 ()

let encoded_tcp =
  Packet.Tcp_wire.encode ~src:(Addr.v 10 0 0 1) ~dst:(Addr.v 10 0 0 2) tcp_seg

(* A populated routing table: 128 /24s plus a default. *)
let big_table =
  let t = Ip.Route_table.create () in
  for i = 0 to 127 do
    Ip.Route_table.add t
      {
        Ip.Route_table.prefix = Addr.Prefix.make (Addr.v 10 (i / 8) (i mod 8 * 32) 0) 24;
        iface = i mod 4;
        next_hop = None;
        metric = 1;
      }
  done;
  Ip.Route_table.add t
    {
      Ip.Route_table.prefix = Addr.Prefix.default;
      iface = 0;
      next_hop = None;
      metric = 1;
    };
  t

let tests =
  [
    Test.make ~name:"checksum-1460B" (Staged.stage (fun () ->
        Packet.Checksum.of_bytes payload_1460 ~pos:0 ~len:1460));
    Test.make ~name:"ipv4-encode-1460B" (Staged.stage (fun () ->
        Packet.Ipv4.encode ip_header ~payload:payload_1460));
    Test.make ~name:"ipv4-decode-1460B" (Staged.stage (fun () ->
        Packet.Ipv4.decode encoded_ip));
    Test.make ~name:"tcp-encode-1460B" (Staged.stage (fun () ->
        Packet.Tcp_wire.encode ~src:(Addr.v 10 0 0 1) ~dst:(Addr.v 10 0 0 2)
          tcp_seg));
    Test.make ~name:"tcp-decode-1460B" (Staged.stage (fun () ->
        Packet.Tcp_wire.decode ~src:(Addr.v 10 0 0 1) ~dst:(Addr.v 10 0 0 2)
          encoded_tcp));
    Test.make ~name:"lpm-lookup-129-routes" (Staged.stage (fun () ->
        Ip.Route_table.lookup big_table (Addr.v 10 3 77 9)));
    Test.make ~name:"heap-push-pop-64" (Staged.stage (fun () ->
        let h = Stdext.Heap.create () in
        for i = 0 to 63 do
          Stdext.Heap.push h ~key:(i * 37 mod 64) ~seq:i i
        done;
        let rec drain () = match Stdext.Heap.pop h with Some _ -> drain () | None -> () in
        drain ()));
    Test.make ~name:"rng-bits64" (Staged.stage (let r = Stdext.Rng.create 1 in
        fun () -> Stdext.Rng.bits64 r));
  ]

let run () =
  Util.banner "E12" "Micro-costs of the wire formats and core structures"
    "the per-packet constants behind the architecture's cost story (E6)";
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            match Analyze.OLS.estimates ols_result with
            | Some [ ns ] ->
                [ name; Printf.sprintf "%.1f" ns ] :: acc
            | Some _ | None -> [ name; "-" ] :: acc)
          analyzed []
        |> List.concat)
      tests
  in
  Util.table [ "operation"; "ns/run" ] rows;
  Util.note
    "at ~1 microsecond of header work per 1460-byte packet, a period \
     gateway's CPU — not this code — was the bottleneck; checksums \
     dominate, as the paper's implementors found"
