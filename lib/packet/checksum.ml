type acc = int

let zero = 0

let add_u16 acc v = acc + (v land 0xffff) [@@fastpath]

(* The inner loop sums 32-bit big-endian reads: each contributes its two
   16-bit columns as [hi·2^16 + lo], and the final carry fold collapses
   the deferred [hi] sums back into the 16-bit one's-complement total.
   With 63-bit native ints this cannot overflow for any 16-bit [len]
   (at most 2^14 addends of < 2^32).  Halving the reads matters: every
   TCP/UDP segment is summed twice (sender compute, receiver verify), so
   this loop is the per-segment cost floor of both transport paths. *)
let add_bytes acc b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Checksum.add_bytes";
  let acc = ref acc in
  let i = ref pos in
  let stop = pos + len in
  while !i + 8 <= stop do
    acc :=
      !acc
      + (Int32.to_int (Bytes.get_int32_be b !i) land 0xFFFFFFFF)
      + (Int32.to_int (Bytes.get_int32_be b (!i + 4)) land 0xFFFFFFFF);
    i := !i + 8
  done;
  while !i + 1 < stop do
    acc := !acc + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Bytes.get_uint8 b !i lsl 8);
  !acc
[@@fastpath]

let rec fold_carry s =
  if s > 0xffff then fold_carry ((s land 0xffff) + (s lsr 16)) else s
[@@fastpath]

let finish acc = lnot (fold_carry acc) land 0xffff [@@fastpath]

let of_bytes ?(acc = zero) b ~pos ~len = finish (add_bytes acc b ~pos ~len)
[@@fastpath]

(* RFC 1624 (eqn. 3): HC' = ~(~HC + ~m + m').  Folding the carry keeps the
   result in one's-complement range, so updating a checksum for a one-word
   change agrees exactly with a recompute over the modified data. *)
let update_u16 csum ~old_word ~new_word =
  let sum =
    (lnot csum land 0xffff)
    + (lnot old_word land 0xffff)
    + (new_word land 0xffff)
  in
  lnot (fold_carry sum) land 0xffff
[@@fastpath]

let valid ?(acc = zero) b ~pos ~len =
  fold_carry (add_bytes acc b ~pos ~len) = 0xffff
[@@fastpath]

(* Straight-line adds: the [Fun.flip] pipeline this replaces allocated a
   closure per field, which the fastpath rule (rightly) rejects. *)
let pseudo_header ~src ~dst ~proto ~len =
  let src_hi = Int32.to_int (Int32.shift_right_logical src 16) land 0xffff in
  let src_lo = Int32.to_int src land 0xffff in
  let dst_hi = Int32.to_int (Int32.shift_right_logical dst 16) land 0xffff in
  let dst_lo = Int32.to_int dst land 0xffff in
  src_hi + src_lo + dst_hi + dst_lo + (proto land 0xffff) + (len land 0xffff)
[@@fastpath]
