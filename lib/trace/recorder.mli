(** The global flight recorder: a bounded ring buffer of typed, timestamped
    lifecycle events (see {!Event}).

    Disabled (the default and the fast-path state), an instrumented call
    site costs one read of the class mask and a branch — no event is ever
    constructed.  Enabled, each recorded event costs its constructor block
    plus one array store; when the ring is full the oldest entry is
    overwritten and counted in {!overwritten}. *)

type entry = { t_us : int; seq : int; event : Event.t }
(** [seq] numbers every recorded event from 0 since the last {!enable} or
    {!clear}; gaps never occur (overwriting discards old entries, not
    sequence numbers). *)

val enable : ?capacity:int -> ?mask:int -> unit -> unit
(** Start recording.  [capacity] bounds the ring (default 65536 entries);
    [mask] is an {!Event.Cls} bitmask (default all classes).  Clears any
    previous recording. *)

val disable : unit -> unit
(** Stop recording; the ring's contents stay readable. *)

val want : int -> bool
(** [want cls] is the single-flag check instrumented code performs before
    constructing an event of class [cls]. *)

val enabled : unit -> bool
val mask : unit -> int

val set_mask : int -> unit
(** Adjust the class mask without touching the ring. *)

val set_now : (unit -> int) -> unit
(** Install the virtual-clock source for timestamps.  [Engine.create]
    calls this, so the most recently created engine stamps events; a
    multi-engine test can re-point it explicitly. *)

val emit : Event.t -> unit
(** Record one event (timestamped now) if its class is enabled.  Safe to
    call unguarded; guarded call sites use {!want} first so the event is
    not even constructed when disabled. *)

val clear : unit -> unit

val capacity : unit -> int
val length : unit -> int
(** Entries currently held (<= capacity). *)

val emitted : unit -> int
(** Total events recorded since the last {!enable}/{!clear}. *)

val overwritten : unit -> int
(** Events pushed out of the ring: [emitted () - length ()]. *)

val entries : unit -> entry list
(** Oldest first. *)

val iter : (entry -> unit) -> unit
val count : (Event.t -> bool) -> int

val drops : ?reason:Event.drop_reason -> unit -> entry list
(** Recorded drop events, optionally restricted to one reason. *)

val pp_entry : Format.formatter -> entry -> unit

val to_json : unit -> Json.t
(** Mask, counts, and every held event as a JSON object. *)
