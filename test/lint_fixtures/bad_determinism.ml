(* Deliberately broken: ambient nondeterminism of every flavor the
   determinism pass bans.  (Local Unix stub: the real one is absent
   under the bare ocamlc the fixture harness uses; the pass matches the
   path syntactically.) *)
module Unix = struct
  let gettimeofday () = 0.0
end

let stamp () = Unix.gettimeofday ()
let cpu_seconds () = Sys.time ()
let seed () = Random.self_init ()
let draw () = Random.int 10
let layout_hash x = Hashtbl.hash x
let sum h = Hashtbl.fold (fun _ v acc -> acc + v) h 0
let dump h = Hashtbl.iter (fun k v -> Printf.printf "%d %d\n" k v) h
