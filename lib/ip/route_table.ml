module Addr = Packet.Addr

type route = {
  prefix : Addr.Prefix.t;
  iface : Netsim.iface;
  next_hop : Addr.t option;
  metric : int;
}

(* Longest-prefix match over a path-compressed binary trie.

   The flat 33-bucket list scan this replaces was fine for tens of routes
   but priced every lookup at O(routes); a transit gateway holding one
   aggregated prefix per region (E17: hundreds of regions, 10^4..10^5
   hosts) needs lookups priced by prefix *depth*, not table size.

   Nodes live in parallel int arrays (struct-of-arrays, index = node id):
   each node is a prefix (network bits + length) with at most two
   children, whose prefixes strictly extend it.  Path compression means a
   child may extend its parent by many bits at once; a lookup therefore
   re-checks that the key matches each node's full prefix before
   descending.  The deepest matching node with a route wins — routes are
   kept pre-boxed ([route option] per node), so [lookup] returns a stored
   option and allocates nothing.

   [generation] counts mutations.  Per-stack lookup caches key their memo
   on it: any add/remove/clear invalidates every cached answer, which is
   the only correctness condition a forwarding cache needs. *)

type t = {
  mutable nd_net : int array;  (* network bits, 0 .. 2^32-1 *)
  mutable nd_len : int array;  (* prefix length, 0 .. 32 *)
  mutable nd_left : int array;  (* child for next bit 0, or -1 *)
  mutable nd_right : int array;  (* child for next bit 1, or -1 *)
  mutable nd_route : route option array;  (* pre-boxed; None on branches *)
  mutable used : int;  (* high-water mark of allocated node slots *)
  mutable free_head : int;  (* free list threaded through nd_left *)
  mutable live : int;  (* allocated minus freed nodes *)
  mutable size : int;  (* routes stored *)
  mutable generation : int;
}

(* masks.(l) keeps the top l bits of a 32-bit value.  l = 0 falls out of
   the shift naturally: (-1) lsl 32 has no low 32 bits set. *)
let masks = Array.init 33 (fun l -> ((-1) lsl (32 - l)) land 0xffffffff)

let addr_bits a = Int32.to_int (Addr.to_int32 a) land 0xffffffff [@@fastpath]

let root = 0

let create () =
  let cap = 16 in
  let t =
    {
      nd_net = Array.make cap 0;
      nd_len = Array.make cap 0;
      nd_left = Array.make cap (-1);
      nd_right = Array.make cap (-1);
      nd_route = Array.make cap None;
      used = 1;
      (* node 0 is the root, 0.0.0.0/0, never freed *)
      free_head = -1;
      live = 1;
      size = 0;
      generation = 0;
    }
  in
  t

let generation t = t.generation [@@fastpath]
let length t = t.size
let node_count t = t.live

let grow t =
  let cap = Array.length t.nd_net * 2 in
  let copy a fill =
    let a' = Array.make cap fill in
    Array.blit a 0 a' 0 t.used;
    a'
  in
  t.nd_net <- copy t.nd_net 0;
  t.nd_len <- copy t.nd_len 0;
  t.nd_left <- copy t.nd_left (-1);
  t.nd_right <- copy t.nd_right (-1);
  let r' = Array.make cap None in
  Array.blit t.nd_route 0 r' 0 t.used;
  t.nd_route <- r'

let alloc_node t ~net ~len ~route =
  let i =
    if t.free_head >= 0 then begin
      let i = t.free_head in
      t.free_head <- t.nd_left.(i);
      i
    end
    else begin
      if t.used = Array.length t.nd_net then grow t;
      let i = t.used in
      t.used <- t.used + 1;
      i
    end
  in
  t.nd_net.(i) <- net;
  t.nd_len.(i) <- len;
  t.nd_left.(i) <- -1;
  t.nd_right.(i) <- -1;
  t.nd_route.(i) <- route;
  t.live <- t.live + 1;
  i

let free_node t i =
  t.nd_route.(i) <- None;
  t.nd_right.(i) <- -1;
  t.nd_left.(i) <- t.free_head;
  t.free_head <- i;
  t.live <- t.live - 1

(* The branching bit of [net] just past a node of length [l]. *)
let bit_after net l = (net lsr (31 - l)) land 1

let child t i bit = if bit = 0 then t.nd_left.(i) else t.nd_right.(i)

let set_child t i bit c =
  if bit = 0 then t.nd_left.(i) <- c else t.nd_right.(i) <- c

(* Length of the common prefix of [a] and [b], capped at [cap]. *)
let common_len a b cap =
  let x = (a lxor b) land 0xffffffff in
  if x = 0 then cap
  else begin
    (* index (from the top) of the highest set bit of x *)
    let n = ref 0 in
    let x = ref x in
    if !x land 0xffff0000 = 0 then begin
      n := !n + 16;
      x := !x lsl 16
    end;
    if !x land 0xff000000 = 0 then begin
      n := !n + 8;
      x := !x lsl 8
    end;
    if !x land 0xf0000000 = 0 then begin
      n := !n + 4;
      x := !x lsl 4
    end;
    if !x land 0xc0000000 = 0 then begin
      n := !n + 2;
      x := !x lsl 2
    end;
    if !x land 0x80000000 = 0 then n := !n + 1;
    min cap !n
  end

let bump t = t.generation <- t.generation + 1

let add t r =
  let net = addr_bits (Addr.Prefix.network r.prefix) in
  let plen = Addr.Prefix.length r.prefix in
  let boxed = Some r in
  let rec insert i =
    (* invariant: node [i]'s prefix is a (possibly equal) prefix of the
       target's *)
    if t.nd_len.(i) = plen then begin
      if t.nd_route.(i) = None then t.size <- t.size + 1;
      t.nd_route.(i) <- boxed
    end
    else begin
      let bit = bit_after net t.nd_len.(i) in
      let c = child t i bit in
      if c < 0 then begin
        let leaf = alloc_node t ~net ~len:plen ~route:boxed in
        set_child t i bit leaf;
        t.size <- t.size + 1
      end
      else begin
        let cl = common_len net t.nd_net.(c) (min plen t.nd_len.(c)) in
        if cl = t.nd_len.(c) then insert c
        else if cl = plen then begin
          (* target sits on the edge between [i] and [c] *)
          let mid = alloc_node t ~net ~len:plen ~route:boxed in
          set_child t mid (bit_after t.nd_net.(c) plen) c;
          set_child t i bit mid;
          t.size <- t.size + 1
        end
        else begin
          (* diverge below [cl]: branch node with [c] and a new leaf *)
          let bnet = net land masks.(cl) in
          let branch = alloc_node t ~net:bnet ~len:cl ~route:None in
          let leaf = alloc_node t ~net ~len:plen ~route:boxed in
          set_child t branch (bit_after t.nd_net.(c) cl) c;
          set_child t branch (bit_after net cl) leaf;
          set_child t i bit branch;
          t.size <- t.size + 1
        end
      end
    end
  in
  insert root;
  bump t;
  if Trace.want Trace.Cls.route then
    Trace.emit
      (Trace.Event.Route_change
         { prefix = r.prefix; metric = r.metric;
           action = Trace.Event.Route_add })

(* Splice out or free [i] (child of [p]) if it no longer pulls its
   weight: a routeless node with no children disappears, a routeless
   pass-through with one child is path-compressed away. *)
let compact t ~parent:p i =
  if i <> root && t.nd_route.(i) = None then begin
    let l = t.nd_left.(i) and r = t.nd_right.(i) in
    let pbit = bit_after t.nd_net.(i) t.nd_len.(p) in
    if l < 0 && r < 0 then begin
      set_child t p pbit (-1);
      free_node t i
    end
    else if l < 0 || r < 0 then begin
      set_child t p pbit (if l < 0 then r else l);
      free_node t i
    end
  end

let remove t prefix =
  let net = addr_bits (Addr.Prefix.network prefix) in
  let plen = Addr.Prefix.length prefix in
  let rec descend gp p i =
    if i >= 0 then begin
      let l = t.nd_len.(i) in
      if l <= plen && (net lxor t.nd_net.(i)) land masks.(l) = 0 then begin
        if l = plen then begin
          if t.nd_net.(i) = net && t.nd_route.(i) <> None then begin
            t.nd_route.(i) <- None;
            t.size <- t.size - 1;
            (* the node may now be dead weight; and removing it can leave
               its parent a routeless pass-through *)
            compact t ~parent:p i;
            if gp >= 0 then compact t ~parent:gp p
          end
        end
        else descend p i (child t i (bit_after net l))
      end
    end
  in
  (match () with
  | () when plen = 0 ->
      (* the root itself carries the default route; never freed *)
      if t.nd_route.(root) <> None then begin
        t.nd_route.(root) <- None;
        t.size <- t.size - 1
      end
  | () -> descend (-1) root (child t root (bit_after net 0)));
  bump t;
  if Trace.want Trace.Cls.route then
    Trace.emit
      (Trace.Event.Route_change
         { prefix; metric = 0; action = Trace.Event.Route_remove })

let clear t =
  t.nd_left.(root) <- -1;
  t.nd_right.(root) <- -1;
  t.nd_route.(root) <- None;
  t.used <- 1;
  t.free_head <- -1;
  t.live <- 1;
  t.size <- 0;
  bump t;
  if Trace.want Trace.Cls.route then
    Trace.emit
      (Trace.Event.Route_change
         { prefix = Addr.Prefix.make Addr.any 0; metric = 0;
           action = Trace.Event.Route_clear })

(* The hot path: walk matching nodes from the root, remembering the last
   one that carried a route.  Each step re-checks the node's full prefix
   against the key (path compression can skip bits), then branches on the
   bit just past it.  Routes are pre-boxed at insertion, so this returns
   a stored [Some] and allocates nothing. *)
let rec lookup_at t a i best =
  if i < 0 then best
  else begin
    let l = Array.unsafe_get t.nd_len i in
    if (a lxor Array.unsafe_get t.nd_net i) land Array.unsafe_get masks l <> 0
    then best
    else begin
      let best =
        match Array.unsafe_get t.nd_route i with
        | None -> best
        | Some _ as r -> r
      in
      if l >= 32 then best
      else
        lookup_at t a
          (if (a lsr (31 - l)) land 1 = 0 then Array.unsafe_get t.nd_left i
           else Array.unsafe_get t.nd_right i)
          best
    end
  end
[@@fastpath]

let lookup t addr = lookup_at t (addr_bits addr) root None [@@fastpath]

let find t prefix =
  let net = addr_bits (Addr.Prefix.network prefix) in
  let plen = Addr.Prefix.length prefix in
  let rec go i =
    if i < 0 then None
    else begin
      let l = t.nd_len.(i) in
      if l > plen || (net lxor t.nd_net.(i)) land masks.(l) <> 0 then None
      else if l = plen then t.nd_route.(i)
      else go (child t i (bit_after net l))
    end
  in
  go root

let entries t =
  let acc = ref [] in
  let rec go i =
    if i >= 0 then begin
      (match t.nd_route.(i) with Some r -> acc := r :: !acc | None -> ());
      go t.nd_left.(i);
      go t.nd_right.(i)
    end
  in
  go root;
  List.stable_sort
    (fun a b ->
      Int.compare (Addr.Prefix.length b.prefix) (Addr.Prefix.length a.prefix))
    !acc

let pp fmt t =
  List.iter
    (fun r ->
      Format.fprintf fmt "%a -> if%d%s metric=%d@."
        Addr.Prefix.pp r.prefix r.iface
        (match r.next_hop with
        | None -> " (connected)"
        | Some nh -> Printf.sprintf " via %s" (Addr.to_string nh))
        r.metric)
    (entries t)
