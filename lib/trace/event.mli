(** Typed lifecycle events and the cross-layer drop-reason enumeration.

    One flat [drop_reason] across layers lets a post-mortem ask "what
    killed traffic to X" without knowing in advance which layer to
    blame — the accountability gap (Clark goal 7) this subsystem exists
    to close.  catenet-lint enforces the static contract: every
    constructor maps to a registered metrics counter
    ({!drop_reason_counter}), has a real emission site, and is never
    dispatched through a catch-all pattern. *)

module Addr = Packet.Addr

type drop_reason =
  | Queue_full  (** Link output queue tail drop (congestion). *)
  | Link_loss  (** Random in-flight frame loss. *)
  | Link_down  (** Send attempted while the link or node was down. *)
  | Link_mtu  (** Frame larger than the link MTU. *)
  | Malformed  (** Failed header validation. *)
  | No_route  (** Routing table had no matching entry. *)
  | Ttl_expired
  | No_proto  (** No local handler for the protocol. *)
  | Not_forwarding  (** Transit datagram at a non-forwarding host. *)
  | Df_needed  (** Needed fragmenting but DF was set. *)
  | Unroutable_icmp  (** An ICMP error itself had no route back. *)
  | Reassembly_timeout

val drop_reason_to_string : drop_reason -> string

val drop_reason_counter : drop_reason -> string
(** The metrics key the reason is accounted under (Netsim's [drops_*]
    family for link-layer reasons, Stack's [dropped_*] family for IP
    reasons, [reassembly_expired] for timeouts).  Total by construction;
    catenet-lint verifies each key is registered. *)

type route_action = Route_add | Route_remove | Route_clear

(** Which RFC 5961 guard fired in the TCP receive path. *)
type tcp_guard_kind =
  | Guard_rst_inexact  (** In-window RST whose seq <> rcv_nxt. *)
  | Guard_syn_in_window  (** SYN inside the window of a live connection. *)
  | Guard_ack_invalid  (** ACK outside [snd_una - max_wnd, snd_max]. *)
  | Guard_challenge_ack  (** Challenge ACK transmitted. *)

val tcp_guard_kind_to_string : tcp_guard_kind -> string

type t =
  | Link_enqueue of { link : int; dir : int; len : int; priority : bool }
  | Link_dequeue of { link : int; dir : int; len : int }
      (** Transmission onto the wire completed. *)
  | Link_deliver of { link : int; dir : int; len : int }
  | Link_drop of { link : int; dir : int; len : int; reason : drop_reason }
  | Ip_forward of
      { node : int; src : Addr.t; dst : Addr.t; ttl : int; len : int }
  | Ip_deliver of
      { node : int; src : Addr.t; dst : Addr.t; proto : int; len : int }
  | Ip_drop of
      { node : int; src : Addr.t; dst : Addr.t; reason : drop_reason }
  | Ip_fragment of { node : int; id : int; frag_offset : int; len : int }
  | Ip_reassembled of { node : int; id : int; len : int }
  | Tcp_segment_out of
      { node : int;
        dst : Addr.t;
        dst_port : int;
        seq : int;
        len : int;
        flags : int  (** bit 0 fin, 1 syn, 2 rst, 3 psh, 4 ack. *)
      }
  | Tcp_retransmit of { node : int; dst : Addr.t; seq : int; len : int }
  | Tcp_rto_fire of { node : int; dst : Addr.t; retries : int }
  | Tcp_guard of { node : int; dst : Addr.t; kind : tcp_guard_kind }
      (** A blind in-window segment was neutralized (RFC 5961). *)
  | Timer_arm of { at : int }
  | Timer_fire of { at : int }
  | Route_change of
      { prefix : Addr.Prefix.t; metric : int; action : route_action }
  | Fault_link of { link : int; up : bool }
      (** Link carrier state changed (fault injected or healed). *)
  | Fault_node of { node : int; up : bool }
      (** Node crashed or rebooted. *)
  | Fault_soft_reset of { node : int }
      (** A node's soft state (route cache, RIB, reassembly) was cleared. *)
  | Name_lookup of { node : int; qtype : int; hit : bool }
      (** A resolver answered a client query from (or past) its cache. *)
  | Name_upstream of { node : int; qtype : int; retry : int }
      (** A resolver sent (or re-sent) an iterative query upstream. *)
  | Name_answer of { node : int; rcode : int; ttl : int }
      (** A terminal answer (or SERVFAIL) reached the querying client. *)
  | Name_failover of { service : int; replica : int; up : bool }
      (** An anycast replica's health state flipped. *)

(** Event classes, a bitmask: the recorder's enable check is one [land]
    against these. *)
module Cls : sig
  val link : int
  val ip : int
  val frag : int
  val tcp : int
  val timer : int
  val route : int
  val fault : int
  val name : int
  val all : int
  val to_string : int -> string
end

val cls : t -> int
(** The class bit of an event. *)

val drop_reason_of : t -> drop_reason option

val tcp_flag_bits :
  fin:bool -> syn:bool -> rst:bool -> psh:bool -> ack:bool -> int

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
