test/test_vc.mli:
