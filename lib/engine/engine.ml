(* The event record doubles as the timer handle: [cancelled] is the
   disarm flag, [fired] records execution so [Timer.active] needs no
   separate closure-captured cell.  Arming a timer therefore costs one
   record (plus the queue entry), not the ref + wrapper closure it used
   to. *)
type event = {
  mutable cancelled : bool;
  mutable fired : bool;
  is_timer : bool;
  fn : unit -> unit;
}

type t = {
  mutable clock : int;
  mutable seq : int;
  queue : event Stdext.Heap.t;
  (* Near-future timers live on a hashed timing wheel: O(1) arm (no
     sifting) and O(1) disarm (flag set).  Far-future timers and plain
     scheduled events stay on the heap.  The two queues are merged in
     exact (time, seq) order and cancelled shells surface and are skipped
     identically on both, so every observable — firing order, clock
     advance over shells, pending counts — matches the single-heap
     engine exactly. *)
  wheel : event Stdext.Wheel.t;
  mutable use_wheel : bool;
  mutable timer_starts : int;
}

let create () =
  let t =
    {
      clock = 0;
      seq = 0;
      queue = Stdext.Heap.create ();
      wheel = Stdext.Wheel.create ();
      use_wheel = true;
      timer_starts = 0;
    }
  in
  (* The most recently created engine stamps flight-recorder events; with
     one engine per simulation (the universal case) this is simply "the
     clock". *)
  Trace.set_now (fun () -> t.clock);
  t

let now t = t.clock [@@fastpath]

let us d = d
let ms d = d * 1_000
let sec s = int_of_float ((s *. 1e6) +. 0.5)
let to_sec us = float_of_int us /. 1e6

let set_timer_wheel t v = t.use_wheel <- v
let timer_wheel t = t.use_wheel
let timer_starts t = t.timer_starts

let schedule_event ?(is_timer = false) t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%d is before now=%d" at t.clock);
  let ev = { cancelled = false; fired = false; is_timer; fn } in
  Stdext.Heap.push t.queue ~key:at ~seq:t.seq ev;
  t.seq <- t.seq + 1;
  ev

let schedule t ~at fn = ignore (schedule_event t ~at fn)

let after t d fn = schedule t ~at:(t.clock + d) fn

module Timer = struct
  type handle = event

  let start t ~after fn =
    if after < 0 then
      invalid_arg (Printf.sprintf "Engine.Timer.start: after=%d" after);
    t.timer_starts <- t.timer_starts + 1;
    if Trace.want Trace.Cls.timer then
      Trace.emit (Trace.Event.Timer_arm { at = t.clock + after });
    if t.use_wheel && after < Stdext.Wheel.horizon t.wheel then begin
      let ev = { cancelled = false; fired = false; is_timer = true; fn } in
      Stdext.Wheel.add t.wheel ~at:(t.clock + after) ~seq:t.seq ev;
      t.seq <- t.seq + 1;
      ev
    end
    else schedule_event ~is_timer:true t ~at:(t.clock + after) fn

  let cancel (h : handle) = h.cancelled <- true [@@fastpath]

  let active (h : handle) = (not h.fired) && not h.cancelled
end

let pending t = Stdext.Heap.length t.queue + Stdext.Wheel.length t.wheel

(* Merge helpers: the next event overall is the (key, seq) minimum across
   heap and wheel.  [max_int] stands for "no event"; seq numbers are
   globally unique so ties resolve exactly as the single-heap engine
   did. *)
let next_key t =
  let wk = Stdext.Wheel.min_key t.wheel in
  if Stdext.Heap.is_empty t.queue then wk
  else min wk (Stdext.Heap.min_key t.queue)

(* Remove and return the globally next (event, time), merging the two
   queues; allocation-free min inspection via [min_key]/[min_seq]. *)
let pop_next t =
  let wk = Stdext.Wheel.min_key t.wheel in
  let hk =
    if Stdext.Heap.is_empty t.queue then max_int
    else Stdext.Heap.min_key t.queue
  in
  if wk = max_int && hk = max_int then None
  else if
    wk < hk
    || (wk = hk && Stdext.Wheel.min_seq t.wheel < Stdext.Heap.min_seq t.queue)
  then Some (wk, Stdext.Wheel.pop_min t.wheel)
  else Some (hk, Stdext.Heap.pop_min t.queue)

(* Purge-on-pop: cancelled events — overwhelmingly protocol timers that
   were disarmed before firing (retransmission, delayed ACK) — are
   discarded here without counting as executed events, so a queue full of
   dead timer shells costs pops, not steps.  The clock still advances over
   the shells, exactly as it always has: a run that drains the queue must
   end at the same instant it did before purging existed, or every
   `run ~until:(now + w)` window downstream shifts and reproducibility
   across versions is lost. *)
let rec step t =
  match pop_next t with
  | None -> false
  | Some (at, ev) ->
      t.clock <- at;
      if ev.cancelled then step t
      else begin
        ev.fired <- true;
        if ev.is_timer && Trace.want Trace.Cls.timer then
          Trace.emit (Trace.Event.Timer_fire { at });
        ev.fn ();
        true
      end

let run ?until ?max_events t =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    (match max_events with
    | Some m when !executed >= m -> continue := false
    | Some _ | None -> ());
    if !continue then begin
      let at = next_key t in
      if at = max_int then continue := false
      else
        match until with
        | Some u when at > u ->
            t.clock <- u;
            continue := false
        | Some _ | None -> (
            (* Inline purge-on-pop: the [until] boundary must be
               re-checked per event, so [step]'s own purge loop (which
               would run the next live event regardless) cannot be used
               here. *)
            match pop_next t with
            | None -> continue := false
            | Some (at, ev) ->
                t.clock <- at;
                if not ev.cancelled then begin
                  ev.fired <- true;
                  if ev.is_timer && Trace.want Trace.Cls.timer then
                    Trace.emit (Trace.Event.Timer_fire { at });
                  ev.fn ();
                  incr executed
                end)
    end
  done
