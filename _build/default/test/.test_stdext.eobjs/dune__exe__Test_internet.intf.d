test/test_internet.mli:
