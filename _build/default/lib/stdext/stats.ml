module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; mn = infinity; mx = neg_infinity; total = 0.0 }

  (* Welford's online algorithm. *)
  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x;
    t.total <- t.total +. x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.mn
  let max t = t.mx
  let total t = t.total
end

module Samples = struct
  type t = { mutable data : float array; mutable n : int }

  let create () = { data = [||]; n = 0 }

  let add t x =
    if t.n = Array.length t.data then begin
      let ncap = if t.n = 0 then 64 else t.n * 2 in
      let nd = Array.make ncap 0.0 in
      Array.blit t.data 0 nd 0 t.n;
      t.data <- nd
    end;
    t.data.(t.n) <- x;
    t.n <- t.n + 1

  let count t = t.n

  let mean t =
    if t.n = 0 then 0.0
    else begin
      let s = ref 0.0 in
      for i = 0 to t.n - 1 do
        s := !s +. t.data.(i)
      done;
      !s /. float_of_int t.n
    end

  let sorted t =
    let a = Array.sub t.data 0 t.n in
    Array.sort compare a;
    a

  let percentile t p =
    if t.n = 0 then 0.0
    else begin
      let a = sorted t in
      let rank = p /. 100.0 *. float_of_int (t.n - 1) in
      let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
      let frac = rank -. floor rank in
      (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
    end

  let median t = percentile t 50.0

  let min t = if t.n = 0 then 0.0 else (sorted t).(0)
  let max t = if t.n = 0 then 0.0 else (sorted t).(t.n - 1)

  let jitter t =
    if t.n < 2 then 0.0
    else begin
      let s = ref 0.0 in
      for i = 1 to t.n - 1 do
        s := !s +. abs_float (t.data.(i) -. t.data.(i - 1))
      done;
      !s /. float_of_int (t.n - 1)
    end
end
