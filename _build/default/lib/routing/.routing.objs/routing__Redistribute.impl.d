lib/routing/redistribute.ml: Dv Engine List Ls Packet
