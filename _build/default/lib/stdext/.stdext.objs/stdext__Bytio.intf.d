lib/stdext/bytio.mli:
