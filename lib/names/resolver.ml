module Addr = Packet.Addr
module Wire = Names_wire

(* The caching, recursing resolver.  One per region gateway in the E21
   deployment: pooled clients in the region send it RD queries at port
   53; it answers from its LRU+TTL cache or walks the hierarchy
   iteratively (root, then the referred region authority), coalescing
   concurrent identical queries into one upstream walk (single-flight).

   Everything it holds is soft state.  [flush] — wired to
   [Ip.Stack.on_soft_flush], so a chaos crash triggers it — forgets the
   cache and aborts every in-flight walk; clients retry, authorities
   still know, the system re-warms.  That is fate-sharing applied to
   the naming layer. *)

let well_known_port = 53

type waiter =
  | Remote of { w_src : Addr.t; w_port : int; w_id : int }
  | Local of (rcode:int -> answer:int -> ttl_s:int -> unit)

type flight = {
  f_key : int;
  f_qtype : int;
  f_l0 : int;
  f_l1 : int;
  f_l2 : int;
  mutable f_id : int;  (* current upstream query id *)
  mutable f_server : Addr.t;
  mutable f_hops : int;  (* referrals followed *)
  mutable f_retry : int;  (* timeouts at the current server *)
  mutable f_sock : Udp.socket option;
  mutable f_timer : Engine.Timer.handle option;
  mutable f_waiters : waiter list;  (* newest first *)
  mutable f_done : bool;
}

type stats = {
  mutable lookups : int;
  mutable cache_hits : int;
  mutable coalesced : int;  (* joined an existing flight (single-flight) *)
  mutable upstream : int;  (* upstream queries sent, retries included *)
  mutable retries : int;
  mutable answers : int;  (* terminal answers delivered (any rcode) *)
  mutable servfails : int;
  mutable bad : int;  (* undecodable or unexpected datagrams *)
  mutable flushes : int;
}

type t = {
  udp : Udp.t;
  eng : Engine.t;
  node : int;
  src : Addr.t option;
  root : Addr.t;
  authority_port : int;
  timeout_us : int;
  retries : int;
  max_hops : int;
  cache : Cache.t;
  inflight : (int, flight) Hashtbl.t;  (* key -> flight *)
  mutable sock : Udp.socket option;  (* client-facing, port 53 *)
  mutable next_id : int;
  stats : stats;
}

let cache t = t.cache
let stats t = t.stats

let fresh_id t =
  t.next_id <- (t.next_id + 1) land 0xffff;
  t.next_id

let deleg_key l0 = Cache.key ~qtype:Wire.qtype_deleg ~l0 ~l1:0 ~l2:0

(* -- delivering ------------------------------------------------------ *)

let deliver t fl ~rcode ~answer ~ttl_s =
  if rcode = Wire.rcode_servfail then
    t.stats.servfails <- t.stats.servfails + 1;
  t.stats.answers <- t.stats.answers + List.length fl.f_waiters;
  if Trace.want Trace.Cls.name then
    Trace.emit
      (Trace.Event.Name_answer { node = t.node; rcode; ttl = ttl_s });
  List.iter
    (fun w ->
      match w with
      | Local k -> k ~rcode ~answer ~ttl_s
      | Remote { w_src; w_port; w_id } -> (
          match t.sock with
          | None -> ()
          | Some sock ->
              let msg =
                { Wire.id = w_id; response = true; rd = false; aa = false;
                  rcode; qtype = fl.f_qtype; l0 = fl.f_l0; l1 = fl.f_l1;
                  l2 = fl.f_l2; ttl_s; answer }
              in
              ignore
                (Udp.sendto sock ?src:t.src ~dst:w_src ~dst_port:w_port
                   (Wire.encode msg)
                  : (unit, Udp.send_error) result)))
    (List.rev fl.f_waiters)

let finish t fl ~rcode ~answer ~ttl_s =
  if not fl.f_done then begin
    fl.f_done <- true;
    (match fl.f_timer with
    | Some h -> Engine.Timer.cancel h
    | None -> ());
    fl.f_timer <- None;
    (match fl.f_sock with Some s -> Udp.close s | None -> ());
    fl.f_sock <- None;
    Hashtbl.remove t.inflight fl.f_key;
    deliver t fl ~rcode ~answer ~ttl_s
  end

(* -- the iterative walk ---------------------------------------------- *)

let rec send_upstream t fl =
  let id = fresh_id t in
  fl.f_id <- id;
  let sock =
    match fl.f_sock with
    | Some s -> s
    | None ->
        (* A fresh ephemeral socket per walk: response demux by port,
           and exactly the churn the E21 workload is built to stress. *)
        let s =
          Udp.bind t.udp
            ~recv:(fun ~src ~src_port:_ buf -> upstream_recv t fl ~src buf)
            ()
        in
        fl.f_sock <- Some s;
        s
  in
  t.stats.upstream <- t.stats.upstream + 1;
  if Trace.want Trace.Cls.name then
    Trace.emit
      (Trace.Event.Name_upstream
         { node = t.node; qtype = fl.f_qtype; retry = fl.f_retry });
  let q =
    Wire.query ~id ~rd:false ~qtype:fl.f_qtype ~l0:fl.f_l0 ~l1:fl.f_l1
      ~l2:fl.f_l2
  in
  (* A send error (no route yet, link down) is handled exactly like a
     lost datagram: the timer retries, then SERVFAIL. *)
  ignore
    (Udp.sendto sock ?src:t.src ~dst:fl.f_server
       ~dst_port:t.authority_port (Wire.encode q)
      : (unit, Udp.send_error) result);
  fl.f_timer <-
    Some (Engine.Timer.start t.eng ~after:t.timeout_us (fun () ->
        on_timeout t fl))

and on_timeout t fl =
  if not fl.f_done then begin
    fl.f_timer <- None;
    fl.f_retry <- fl.f_retry + 1;
    if fl.f_retry > t.retries then
      finish t fl ~rcode:Wire.rcode_servfail ~answer:0 ~ttl_s:0
    else begin
      t.stats.retries <- t.stats.retries + 1;
      send_upstream t fl
    end
  end

and upstream_recv t fl ~src buf =
  if not fl.f_done then
    match Wire.decode buf with
    | Error _ -> t.stats.bad <- t.stats.bad + 1
    | Ok m when (not m.Wire.response) || m.Wire.id <> fl.f_id ->
        t.stats.bad <- t.stats.bad + 1
    | Ok m ->
        ignore src;
        (match fl.f_timer with
        | Some h -> Engine.Timer.cancel h
        | None -> ());
        fl.f_timer <- None;
        if m.Wire.rcode = Wire.rcode_referral then begin
          (* Cache the delegation, then walk down. *)
          Cache.insert t.cache ~now_us:(Engine.now t.eng)
            ~key:(deleg_key fl.f_l0) ~rcode:Wire.rcode_ok
            ~answer:m.Wire.answer ~ttl_s:m.Wire.ttl_s;
          fl.f_hops <- fl.f_hops + 1;
          if fl.f_hops > t.max_hops then
            finish t fl ~rcode:Wire.rcode_servfail ~answer:0 ~ttl_s:0
          else begin
            fl.f_server <- Wire.answer_addr m;
            fl.f_retry <- 0;
            send_upstream t fl
          end
        end
        else if
          m.Wire.rcode = Wire.rcode_ok || m.Wire.rcode = Wire.rcode_nxname
        then begin
          (* Terminal, cacheable (positive or negative). *)
          Cache.insert t.cache ~now_us:(Engine.now t.eng) ~key:fl.f_key
            ~rcode:m.Wire.rcode ~answer:m.Wire.answer ~ttl_s:m.Wire.ttl_s;
          finish t fl ~rcode:m.Wire.rcode ~answer:m.Wire.answer
            ~ttl_s:m.Wire.ttl_s
        end
        else
          (* SERVFAIL / Refused upstream: terminal, never cached. *)
          finish t fl ~rcode:Wire.rcode_servfail ~answer:0 ~ttl_s:0

(* -- query admission ------------------------------------------------- *)

let enqueue t ~qtype ~l0 ~l1 ~l2 waiter =
  let key = Cache.key ~qtype ~l0 ~l1 ~l2 in
  match Hashtbl.find_opt t.inflight key with
  | Some fl ->
      (* Single-flight: one walk serves every concurrent asker. *)
      t.stats.coalesced <- t.stats.coalesced + 1;
      fl.f_waiters <- waiter :: fl.f_waiters
  | None ->
      let server =
        if qtype = Wire.qtype_host then
          match Cache.find t.cache ~now_us:(Engine.now t.eng) (deleg_key l0)
          with
          | Some (_, bits, _) -> Addr.of_int32 (Int32.of_int bits)
          | None -> t.root
        else t.root
      in
      let fl =
        { f_key = key; f_qtype = qtype; f_l0 = l0; f_l1 = l1; f_l2 = l2;
          f_id = 0; f_server = server; f_hops = 0; f_retry = 0;
          f_sock = None; f_timer = None; f_waiters = [ waiter ];
          f_done = false }
      in
      Hashtbl.add t.inflight key fl;
      send_upstream t fl

let lookup t ~qtype ~l0 ~l1 ~l2 waiter =
  t.stats.lookups <- t.stats.lookups + 1;
  let key = Cache.key ~qtype ~l0 ~l1 ~l2 in
  match Cache.find t.cache ~now_us:(Engine.now t.eng) key with
  | Some (rcode, answer, ttl_s) ->
      t.stats.cache_hits <- t.stats.cache_hits + 1;
      if Trace.want Trace.Cls.name then
        Trace.emit
          (Trace.Event.Name_lookup { node = t.node; qtype; hit = true });
      (match waiter with
      | Local k -> k ~rcode ~answer ~ttl_s
      | Remote { w_src; w_port; w_id } -> (
          match t.sock with
          | None -> ()
          | Some sock ->
              let msg =
                { Wire.id = w_id; response = true; rd = false; aa = false;
                  rcode; qtype; l0; l1; l2; ttl_s; answer }
              in
              ignore
                (Udp.sendto sock ?src:t.src ~dst:w_src ~dst_port:w_port
                   (Wire.encode msg)
                  : (unit, Udp.send_error) result)))
  | None ->
      if Trace.want Trace.Cls.name then
        Trace.emit
          (Trace.Event.Name_lookup { node = t.node; qtype; hit = false });
      enqueue t ~qtype ~l0 ~l1 ~l2 waiter

let resolve t ~qtype ~l0 ~l1 ~l2 k = lookup t ~qtype ~l0 ~l1 ~l2 (Local k)

let client_recv t ~src ~src_port buf =
  match Wire.decode buf with
  | Error _ -> t.stats.bad <- t.stats.bad + 1
  | Ok m when m.Wire.response || not m.Wire.rd ->
      (* Responses don't belong here, and a non-RD query at a resolver
         is a config error; drop rather than answer wrong. *)
      t.stats.bad <- t.stats.bad + 1
  | Ok m ->
      lookup t ~qtype:m.Wire.qtype ~l0:m.Wire.l0 ~l1:m.Wire.l1 ~l2:m.Wire.l2
        (Remote { w_src = src; w_port = src_port; w_id = m.Wire.id })

(* -- crash amnesia --------------------------------------------------- *)

let flush t =
  Cache.flush t.cache;
  t.stats.flushes <- t.stats.flushes + 1;
  (* In key order: the Local continuations run caller code that can
     schedule events, so the teardown order must be canonical. *)
  Stdext.Det.sorted_iter ~compare:Int.compare
    (fun _ fl ->
      fl.f_done <- true;
      (match fl.f_timer with
      | Some h -> Engine.Timer.cancel h
      | None -> ());
      fl.f_timer <- None;
      (match fl.f_sock with Some s -> Udp.close s | None -> ());
      fl.f_sock <- None;
      (* Remote waiters get nothing — a crashed resolver cannot answer;
         clients time out and retry.  Local waiters (in-process callers)
         hear SERVFAIL so they are never stuck. *)
      List.iter
        (fun w ->
          match w with
          | Local k ->
              k ~rcode:Wire.rcode_servfail ~answer:0 ~ttl_s:0
          | Remote _ -> ())
        (List.rev fl.f_waiters))
    t.inflight;
  Hashtbl.reset t.inflight

let create ~udp ~eng ~node ?src ~root ?(port = well_known_port)
    ?(authority_port = Server.well_known_port) ?(cache_capacity = 4096)
    ?(timeout_us = 250_000) ?(retries = 2) ?(max_hops = 4) () =
  let t =
    { udp; eng; node; src; root; authority_port; timeout_us; retries;
      max_hops;
      cache = Cache.create ~capacity:cache_capacity;
      inflight = Hashtbl.create 64;
      sock = None;
      next_id = 0;
      stats =
        { lookups = 0; cache_hits = 0; coalesced = 0; upstream = 0;
          retries = 0; answers = 0; servfails = 0; bad = 0; flushes = 0 } }
  in
  t.sock <-
    Some
      (Udp.bind udp ~port
         ~recv:(fun ~src ~src_port buf -> client_recv t ~src ~src_port buf)
         ());
  (* Crash amnesia reaches the naming layer through the stack's flush
     hook: when chaos crashes this node, the cache and every in-flight
     walk vanish with it. *)
  Ip.Stack.on_soft_flush (Udp.stack udp) (fun () -> flush t);
  t

let metrics_items t () =
  let c = Cache.stats t.cache in
  [ ("lookups", Trace.Metrics.Int t.stats.lookups);
    ("cache_hits", Trace.Metrics.Int t.stats.cache_hits);
    ("coalesced", Trace.Metrics.Int t.stats.coalesced);
    ("upstream", Trace.Metrics.Int t.stats.upstream);
    ("retries", Trace.Metrics.Int t.stats.retries);
    ("answers", Trace.Metrics.Int t.stats.answers);
    ("servfails", Trace.Metrics.Int t.stats.servfails);
    ("bad", Trace.Metrics.Int t.stats.bad);
    ("flushes", Trace.Metrics.Int t.stats.flushes);
    ("cache_len", Trace.Metrics.Int (Cache.len t.cache));
    ("cache_expired", Trace.Metrics.Int c.Cache.expired);
    ("cache_evictions", Trace.Metrics.Int c.Cache.evictions) ]
