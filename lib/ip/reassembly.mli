(** Datagram reassembly at the destination host.

    Fragments of one datagram share (src, dst, proto, id); the buffer
    completes when offset 0, the final fragment (MF clear), and a
    contiguous byte range are all present.  Incomplete buffers expire
    after a timeout (RFC 791 suggests up to 15 s; we default to 30 s to
    ride out retransmissions on slow paths). *)

type t

val create : ?timeout_us:int -> ?node:int -> Engine.t -> t
(** [node] identifies the owning node in flight-recorder events
    (default [-1], meaning unattributed). *)

type result =
  | Incomplete  (** Stored; waiting for more fragments. *)
  | Complete of bytes  (** Fully reassembled payload. *)

val push : t -> Packet.Ipv4.header -> bytes -> result
(** Feed one fragment (header plus fragment payload).  Unfragmented
    datagrams (offset 0, MF clear) complete immediately.  Overlapping
    fragments are accepted; earlier data wins on overlap. *)

val pending : t -> int
(** Reassembly buffers currently held. *)

val expired : t -> int
(** Buffers dropped by timeout since creation. *)

val flush : t -> unit
(** Discard every pending buffer and cancel its expiry timer, without
    counting the loss as a timeout.  Used by crash simulation: partial
    datagrams are soft state and die with the node (fate-sharing). *)
