lib/routing/routing.ml: Dv Ls Redistribute Rt_msg
