(* Differential harness for sketch-based flow accounting (E20).

   The exact ledger is the oracle: every property drives the same trace
   through an [Exact] and a [Sketch] accounting instance (or through
   [Ip.Sketch] and a plain Hashtbl) and compares.  The count-min
   guarantee under test is one-sided — estimates may exceed the truth,
   never undercut it — and the heavy-hitter claim is quantitative:
   byte-weighted top-k error on a zipfian trace stays under 1%. *)

open Catenet
module Addr = Packet.Addr
module Ipv4 = Packet.Ipv4
module Acct = Ip.Accounting

let check = Alcotest.check

(* --- deterministic PRNG (splitmix over a counter) -------------------- *)

let rng seed =
  let st = ref seed in
  fun bound ->
    st := !st + 0x61C88647;
    let x = Ip.Sketch.mix !st in
    x mod bound

(* --- trace generation ------------------------------------------------ *)

type pkt = { src : int; dst : int; sp : int; dp : int; len : int }

let header_of p =
  Ipv4.make_header ~proto:Ipv4.Proto.Udp
    ~src:(Addr.of_int32 (Int32.of_int p.src))
    ~dst:(Addr.of_int32 (Int32.of_int p.dst))
    ()

(* UDP-shaped payload: ports in the first 4 bytes, [len] bytes total. *)
let payload_of p =
  let b = Bytes.make (max 8 p.len) '\000' in
  Bytes.set_uint16_be b 0 p.sp;
  Bytes.set_uint16_be b 2 p.dp;
  b

let frame_of p = Ipv4.encode (header_of p) ~payload:(payload_of p)

let feed_record acc p =
  Acct.record acc (header_of p) ~payload:(payload_of p)
    ~wire_bytes:(Ipv4.header_size + Bytes.length (payload_of p))

let feed_fast acc p =
  let frame = frame_of p in
  Acct.record_fast acc (header_of p) ~frame

(* A zipf-ish flow population: flow k of [flows] is picked with weight
   ~ 1/(k+1), so a handful of head flows carry most packets while the
   tail is long and thin. *)
let zipf_trace ~seed ~flows ~packets =
  let next = rng seed in
  let pick () =
    (* inverse-ish sampling: repeatedly halve the candidate range *)
    let rec go lo hi =
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if next 3 < 2 then go lo mid else go mid hi
      end
    in
    go 0 flows
  in
  List.init packets (fun _ ->
      let k = pick () in
      { src = 0x0A000001 + (k mod 251);
        dst = 0x0A010001 + (k mod 241);
        sp = 1024 + (k mod 60_000);
        dp = 2048 + (k / 60_000);
        len = 40 + (k mod 7 * 100) })

let sketch_mode = Acct.Sketch { width = 4096; depth = 4; top_k = 64 }

(* --- qcheck properties ----------------------------------------------- *)

let trace_arb =
  QCheck.make
    ~print:(fun (seed, flows, packets) ->
      Printf.sprintf "seed=%d flows=%d packets=%d" seed flows packets)
    QCheck.Gen.(
      triple (int_bound 1_000_000) (int_range 1 400) (int_range 1 4000))

let prop_never_underestimates =
  QCheck.Test.make ~count:40 ~name:"count-min never underestimates"
    trace_arb
    (fun (seed, flows, packets) ->
      let trace = zipf_trace ~seed ~flows ~packets in
      let exact = Acct.create ~mode:Acct.Exact () in
      let sketch = Acct.create ~mode:sketch_mode () in
      List.iter (feed_record exact) trace;
      List.iter (feed_fast sketch) trace;
      List.for_all
        (fun (f, (u : Acct.usage)) ->
          match Acct.lookup sketch f with
          | None -> false
          | Some e -> e.Acct.packets >= u.packets && e.Acct.bytes >= u.bytes)
        (Acct.flows exact))

let prop_topk_error =
  QCheck.Test.make ~count:25 ~name:"top-k byte error <= 1% on zipf traces"
    trace_arb
    (fun (seed, flows, packets) ->
      let trace = zipf_trace ~seed ~flows ~packets in
      let exact = Acct.create ~mode:Acct.Exact () in
      let sketch = Acct.create ~mode:sketch_mode () in
      List.iter (feed_record exact) trace;
      List.iter (feed_fast sketch) trace;
      let top = Acct.flows ~limit:20 exact in
      let num, den =
        List.fold_left
          (fun (num, den) (f, (u : Acct.usage)) ->
            let est =
              match Acct.lookup sketch f with
              | Some e -> e.Acct.bytes
              | None -> 0
            in
            (num + abs (est - u.bytes), den + u.bytes))
          (0, 0) top
      in
      float_of_int num <= 0.01 *. float_of_int den)

let prop_totals_exact =
  QCheck.Test.make ~count:40 ~name:"sketch-mode totals are exact"
    trace_arb
    (fun (seed, flows, packets) ->
      let trace = zipf_trace ~seed ~flows ~packets in
      let exact = Acct.create ~mode:Acct.Exact () in
      let sketch = Acct.create ~mode:sketch_mode () in
      List.iter (feed_record exact) trace;
      List.iter (feed_fast sketch) trace;
      let te = Acct.total exact and ts = Acct.total sketch in
      te.Acct.packets = ts.Acct.packets && te.Acct.bytes = ts.Acct.bytes)

(* --- directed tests -------------------------------------------------- *)

let test_rotation_resets () =
  let acc = Acct.create ~mode:sketch_mode () in
  let trace = zipf_trace ~seed:7 ~flows:50 ~packets:500 in
  List.iter (feed_fast acc) trace;
  check Alcotest.bool "counted something" true ((Acct.total acc).Acct.packets > 0);
  check Alcotest.bool "tracking flows" true (Acct.tracked_count acc > 0);
  Acct.rotate acc;
  check Alcotest.int "epoch advanced" 1 (Acct.epoch acc);
  check Alcotest.int "totals reset" 0 (Acct.total acc).Acct.packets;
  check Alcotest.int "cardinality reset" 0 (Acct.flow_count acc);
  check Alcotest.int "tracker reset" 0 (Acct.tracked_count acc);
  (* the next epoch accumulates from scratch, unpolluted *)
  let p = { src = 0x0A000001; dst = 0x0A010001; sp = 1024; dp = 2048; len = 40 } in
  feed_fast acc p;
  (match Acct.flows acc with
  | [ (_, u) ] -> check Alcotest.int "fresh flow has 1 packet" 1 u.Acct.packets
  | l -> Alcotest.failf "expected 1 flow after rotation, got %d" (List.length l));
  (* exact mode rotates too *)
  let ex = Acct.create () in
  feed_record ex p;
  Acct.rotate ex;
  check Alcotest.int "exact ledger reset" 0 (Acct.flow_count ex);
  check Alcotest.int "exact epoch advanced" 1 (Acct.epoch ex)

(* Rotation must not amnesia the billing record: each closed epoch's
   totals and top flows survive as a bounded snapshot history. *)
let test_rotation_history () =
  let acc = Acct.create ~mode:sketch_mode ~history:2 () in
  let trace = zipf_trace ~seed:11 ~flows:40 ~packets:400 in
  List.iter (feed_fast acc) trace;
  let before = Acct.total acc in
  Acct.rotate acc;
  (match Acct.history acc with
  | [ s ] ->
      check Alcotest.int "snapshot names its epoch" 0 s.Acct.snap_epoch;
      check Alcotest.int "snapshot keeps the epoch's packets"
        before.Acct.packets s.Acct.snap_packets;
      check Alcotest.int "snapshot keeps the epoch's bytes" before.Acct.bytes
        s.Acct.snap_bytes;
      check Alcotest.bool "snapshot carries top flows" true
        (s.Acct.snap_top <> []);
      (match s.Acct.snap_top with
      | (_, a) :: (_, b) :: _ ->
          check Alcotest.bool "top flows sorted by bytes" true
            (a.Acct.bytes >= b.Acct.bytes)
      | _ -> ())
  | l -> Alcotest.failf "expected 1 snapshot, got %d" (List.length l));
  (* the bound holds: rotating past [history] drops the oldest *)
  feed_fast acc { src = 1; dst = 2; sp = 3; dp = 4; len = 99 };
  Acct.rotate acc;
  Acct.rotate acc;
  Acct.rotate acc;
  (match Acct.history acc with
  | [ a; b ] ->
      check Alcotest.int "newest first" 3 a.Acct.snap_epoch;
      check Alcotest.int "oldest retained" 2 b.Acct.snap_epoch
  | l -> Alcotest.failf "expected 2 snapshots, got %d" (List.length l));
  (* history reaches the observability surface *)
  (match Acct.to_json acc with
  | Trace.Json.Obj kvs -> (
      match List.assoc_opt "history" kvs with
      | Some (Trace.Json.List l) ->
          check Alcotest.int "json history bounded" 2 (List.length l)
      | _ -> Alcotest.fail "to_json lacks history")
  | _ -> Alcotest.fail "to_json not an object");
  (* history:0 disables retention entirely *)
  let off = Acct.create ~history:0 () in
  feed_record off { src = 1; dst = 2; sp = 3; dp = 4; len = 10 };
  Acct.rotate off;
  check Alcotest.int "history 0 retains nothing" 0
    (List.length (Acct.history off))

(* Sketch-mode [record_fast] must not allocate: it is what lets
   accounting ride [forward_fast].  Same Gc discipline as the
   route-cache and trie lookup tests. *)
let test_record_fast_allocation_free () =
  let acc = Acct.create ~mode:sketch_mode () in
  let p = { src = 0x0A000001; dst = 0x0A010001; sp = 5555; dp = 80; len = 64 } in
  let h = header_of p in
  let frame = frame_of p in
  Acct.record_fast acc h ~frame;
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to 1000 do
    Acct.record_fast acc h ~frame
  done;
  let per = (Gc.allocated_bytes () -. a0) /. 1000.0 in
  check Alcotest.bool
    (Printf.sprintf "record_fast allocates nothing (%.1f B/op)" per)
    true (per < 1.0)

(* Portless flows must not alias: ICMP, unknown protocols and non-first
   fragments have no recoverable ports, but each keeps its own flow
   identity (proto and the portless mark are part of it). *)
let test_portless_no_aliasing () =
  let acc = Acct.create () in
  let mk ~src ~proto ?(frag_offset = 0) () =
    Ipv4.make_header ~proto
      ~src:(Addr.of_int32 (Int32.of_int src))
      ~dst:(Addr.of_int32 0x0A010001l)
      ~frag_offset ()
  in
  let pay = Bytes.make 32 'x' in
  (* two concurrent proto-225 (hostpool) flows from different sources *)
  let pool = Ipv4.Proto.Other Hostpool.proto in
  Acct.record acc (mk ~src:0x0A000001 ~proto:pool ()) ~payload:pay ~wire_bytes:52;
  Acct.record acc (mk ~src:0x0A000002 ~proto:pool ()) ~payload:pay ~wire_bytes:52;
  Acct.record acc (mk ~src:0x0A000001 ~proto:pool ()) ~payload:pay ~wire_bytes:52;
  (* same src pair: ICMP and a TCP fragment tail must stay distinct
     from the pool flow and from each other *)
  Acct.record acc
    (mk ~src:0x0A000001 ~proto:Ipv4.Proto.Icmp ())
    ~payload:pay ~wire_bytes:52;
  Acct.record acc
    (mk ~src:0x0A000001 ~proto:Ipv4.Proto.Tcp ~frag_offset:64 ())
    ~payload:pay ~wire_bytes:52;
  check Alcotest.int "four distinct flows" 4 (Acct.flow_count acc);
  let find_pool src =
    List.find_opt
      (fun ((f : Acct.flow), _) ->
        f.Acct.proto = pool && Addr.to_int32 f.Acct.src = Int32.of_int src)
      (Acct.flows acc)
  in
  (match find_pool 0x0A000001 with
  | Some (f, u) ->
      check Alcotest.bool "pool flow is portless" true f.Acct.portless;
      check Alcotest.int "pool flow a has 2 packets" 2 u.Acct.packets
  | None -> Alcotest.fail "pool flow from .1 missing");
  (match find_pool 0x0A000002 with
  | Some (_, u) -> check Alcotest.int "pool flow b has 1 packet" 1 u.Acct.packets
  | None -> Alcotest.fail "pool flow from .2 missing");
  (* fragment tail of a real TCP flow is marked portless with ports 0,
     and a genuine first-fragment flow with ports is not *)
  let tcp_frag =
    List.find
      (fun ((f : Acct.flow), _) -> f.Acct.proto = Ipv4.Proto.Tcp)
      (Acct.flows acc)
  in
  check Alcotest.bool "fragment tail portless" true (fst tcp_frag).Acct.portless

let test_to_json_bounded () =
  let acc = Acct.create () in
  List.iter (feed_record acc) (zipf_trace ~seed:3 ~flows:300 ~packets:2000);
  let count_flows = function
    | Trace.Json.Obj fields -> (
        match List.assoc "flows" fields with
        | Trace.Json.List l -> List.length l
        | _ -> -1)
    | _ -> -1
  in
  check Alcotest.bool "ledger has more than 100 flows" true
    (Acct.flow_count acc > 100);
  check Alcotest.int "default limit 100" 100 (count_flows (Acct.to_json acc));
  check Alcotest.int "explicit limit 7" 7
    (count_flows (Acct.to_json ~limit:7 acc));
  (* the bounded list keeps the heaviest flows: top of the list matches
     the ledger's heaviest flow *)
  match (Acct.flows ~limit:1 acc, Acct.to_json ~limit:1 acc) with
  | [ (f, _) ], Trace.Json.Obj fields -> (
      match List.assoc "flows" fields with
      | Trace.Json.List [ Trace.Json.Obj ff ] -> (
          match List.assoc "flow" ff with
          | Trace.Json.Str s ->
              check Alcotest.string "heaviest flow serialized first"
                (Acct.flow_to_string f) s
          | _ -> Alcotest.fail "flow field not a string")
      | _ -> Alcotest.fail "flows field shape")
  | _ -> Alcotest.fail "limit 1 shape"

(* Sketch building blocks directly: estimates after clear start over. *)
let test_sketch_clear () =
  let sk = Ip.Sketch.create ~width:64 ~depth:3 () in
  Ip.Sketch.update sk 42 ~bytes:100;
  Ip.Sketch.update sk 42 ~bytes:100;
  check Alcotest.int "estimate" 2 (Ip.Sketch.estimate_packets sk 42);
  check Alcotest.bool "cardinality positive" true (Ip.Sketch.cardinality sk > 0);
  Ip.Sketch.clear sk;
  check Alcotest.int "cleared estimate" 0 (Ip.Sketch.estimate_packets sk 42);
  check Alcotest.int "cleared cardinality" 0 (Ip.Sketch.cardinality sk);
  check Alcotest.int "cleared updates" 0 (Ip.Sketch.updates sk)

let test_heavy_hitters_basic () =
  let hh = Ip.Heavy_hitters.create ~capacity:2 in
  let rec feed fp bytes n =
    if n > 0 then begin
      Ip.Heavy_hitters.record hh ~fp ~src:fp ~dst:0 ~meta:0 ~est_pkts:1
        ~est_bytes:bytes ~wire_bytes:bytes;
      feed fp bytes (n - 1)
    end
  in
  feed 1 100 5;
  feed 2 10 1;
  (* challenger with a bigger estimate evicts the min (fp 2) *)
  Ip.Heavy_hitters.record hh ~fp:3 ~src:3 ~dst:0 ~meta:0 ~est_pkts:2
    ~est_bytes:50 ~wire_bytes:25;
  check Alcotest.int "still 2 tracked" 2 (Ip.Heavy_hitters.size hh);
  let fps = ref [] in
  Ip.Heavy_hitters.iter hh (fun i -> fps := Ip.Heavy_hitters.fp_of hh i :: !fps);
  check Alcotest.bool "heavy flow kept" true (List.mem 1 !fps);
  check Alcotest.bool "challenger admitted" true (List.mem 3 !fps);
  check Alcotest.bool "min evicted" false (List.mem 2 !fps);
  (* a small challenger does not displace anyone *)
  Ip.Heavy_hitters.record hh ~fp:4 ~src:4 ~dst:0 ~meta:0 ~est_pkts:1
    ~est_bytes:1 ~wire_bytes:1;
  let fps' = ref [] in
  Ip.Heavy_hitters.iter hh (fun i ->
      fps' := Ip.Heavy_hitters.fp_of hh i :: !fps');
  check Alcotest.bool "small challenger rejected" false (List.mem 4 !fps')

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "accounting"
    [
      ( "differential",
        [ qt prop_never_underestimates; qt prop_topk_error; qt prop_totals_exact ] );
      ( "directed",
        [
          Alcotest.test_case "epoch rotation resets" `Quick test_rotation_resets;
          Alcotest.test_case "rotation snapshots history" `Quick
            test_rotation_history;
          Alcotest.test_case "record_fast allocation-free" `Quick
            test_record_fast_allocation_free;
          Alcotest.test_case "portless flows do not alias" `Quick
            test_portless_no_aliasing;
          Alcotest.test_case "to_json bounded" `Quick test_to_json_bounded;
          Alcotest.test_case "sketch clear" `Quick test_sketch_clear;
          Alcotest.test_case "heavy hitters admission" `Quick
            test_heavy_hitters_basic;
        ] );
    ]
