(* catenet-lint: static analysis over the catenet tree.

   Usage:
     catenet-lint [--allow FILE] [--no-mli] <file.ml|file.cmt> ...

   .ml arguments are parsed (Parsetree rules: wire layout, fastpath
   allocation, observability totality, mli hygiene, replay determinism,
   state-machine conformance); .cmt arguments are read for the typed
   rules (polymorphic-comparison ban, match hygiene, partial
   application in fastpath spans, wrap-safe sequence/time arithmetic).
   [--rng-only] restricts the run to the seeded-RNG determinism
   sub-rule, the contract for bench/ and examples/.  Findings print as

     file:line: [rule] message

   sorted by position; the exit status is non-zero iff any finding
   survives the allowlist.  Allowlist entries that suppress nothing are
   reported as stale so the list only ever shrinks. *)

let usage =
  "catenet-lint [--allow FILE] [--no-mli] [--rng-only] <file.ml|file.cmt> ..."

let () =
  let allow_file = ref None in
  let check_mli = ref true in
  let rng_only = ref false in
  let ml_files = ref [] in
  let cmt_files = ref [] in
  let anon path =
    if Filename.check_suffix path ".ml" then ml_files := path :: !ml_files
    else if Filename.check_suffix path ".cmt" then
      cmt_files := path :: !cmt_files
    else
      Lint_common.report ~file:path ~line:1 ~rule:"args"
        "argument is neither a .ml nor a .cmt file"
  in
  Arg.parse
    [ ("--allow", Arg.String (fun f -> allow_file := Some f),
       "FILE allowlist of deliberate exceptions");
      ("--no-mli", Arg.Clear check_mli,
       " skip the missing-interface rule (fixture runs)");
      ("--rng-only", Arg.Set rng_only,
       " run only the seeded-RNG determinism sub-rule (bench/ and examples/ \
        may read the wall clock, but must seed every simulated random draw)") ]
    anon usage;
  let ml_files = List.rev !ml_files and cmt_files = List.rev !cmt_files in
  if ml_files = [] && cmt_files = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let parsed =
    List.filter_map
      (fun path ->
        match
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              let lexbuf = Lexing.from_channel ic in
              Lexing.set_filename lexbuf path;
              Location.input_name := path;
              Parse.implementation lexbuf)
        with
        | structure -> Some (Lint_source.collect_file path structure)
        | exception Sys_error msg ->
            Lint_common.report ~file:path ~line:1 ~rule:"parse" msg;
            None
        | exception exn ->
            let msg =
              match Location.error_of_exn exn with
              | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
              | _ -> Printexc.to_string exn
            in
            Lint_common.report ~file:path ~line:1 ~rule:"parse"
              (String.map (function '\n' -> ' ' | c -> c) msg);
            None)
      ml_files
  in
  if !rng_only then
    List.iter
      (fun fi ->
        Lint_determinism.check_file ~rng_only:true fi.Lint_source.fi_path
          fi.Lint_source.fi_structure)
      parsed
  else begin
    let ctx = Lint_source.run ~check_mli_rule:!check_mli parsed in
    List.iter
      (fun fi ->
        Lint_determinism.check_file ~rng_only:false fi.Lint_source.fi_path
          fi.Lint_source.fi_structure;
        Lint_transitions.check_file fi.Lint_source.fi_path
          fi.Lint_source.fi_structure)
      parsed;
    List.iter
      (Lint_typed.check_cmt ~fastpath_spans:ctx.Lint_source.fastpath_spans)
      cmt_files;
    List.iter Lint_seqcmp.check_cmt cmt_files
  end;
  let entries =
    match !allow_file with
    | None -> []
    | Some f -> Lint_common.load_allowlist f
  in
  let kept = Lint_common.apply_allowlist entries !Lint_common.findings in
  (match !allow_file with
  | Some f -> Lint_common.stale_entries f entries
  | None -> ());
  (* stale-entry findings were appended to the global list *)
  let stale =
    List.filter
      (fun (f : Lint_common.finding) -> f.rule = "allowlist")
      !Lint_common.findings
  in
  let all =
    List.sort_uniq
      (fun (a : Lint_common.finding) b ->
        compare (a.file, a.line, a.rule, a.message)
          (b.file, b.line, b.rule, b.message))
      (kept @ stale)
  in
  List.iter
    (fun (f : Lint_common.finding) ->
      Printf.printf "%s:%d: [%s] %s\n" f.file f.line f.rule f.message)
    all;
  if all = [] then begin
    Printf.eprintf "catenet-lint: %d source file(s), %d cmt(s): clean\n"
      (List.length ml_files) (List.length cmt_files);
    exit 0
  end
  else begin
    Printf.eprintf "catenet-lint: %d finding(s)\n" (List.length all);
    exit 1
  end
