(** The per-node internet layer: sending, receiving and — on gateways —
    forwarding datagrams.

    This is the architecture's narrow waist.  Everything a gateway does is
    a pure function of the datagram in hand plus the routing table: there
    is no per-conversation state to lose when a gateway dies, which is the
    fate-sharing design decision (Clark §3) that experiments E1/E2 probe. *)

module Addr = Packet.Addr
module Ipv4 = Packet.Ipv4

type t

type counters = {
  mutable sent : int;  (** Datagrams originated here. *)
  mutable received : int;  (** Well-formed datagrams arriving on any iface. *)
  mutable delivered : int;  (** Datagrams handed to a local protocol. *)
  mutable forwarded : int;
  mutable dropped_malformed : int;
  mutable dropped_no_route : int;
  mutable dropped_ttl : int;
  mutable dropped_no_proto : int;  (** No handler for the protocol. *)
  mutable dropped_not_forwarding : int;
  mutable dropped_df : int;  (** Needed fragmenting but DF was set. *)
  mutable dropped_unroutable_icmp : int;
      (** ICMP errors we generated but could not route back — previously a
          silent drop. *)
  mutable fragments_made : int;
  mutable icmp_tx : int;
  mutable echo_replies : int;
  mutable route_cache_hits : int;
      (** Fast-path route lookups answered from the destination memo. *)
  mutable route_cache_misses : int;
      (** Fast-path route lookups that had to walk the table (cold slot,
          collision eviction, or table generation change). *)
}

type send_error = [ `No_route | `Too_big ]

val create : ?forwarding:bool -> Netsim.t -> Netsim.node_id -> t
(** Attach an IP stack to a node.  [forwarding] defaults to [false]
    (host); gateways pass [true].  Installs itself as the node's frame
    handler. *)

val net : t -> Netsim.t
val engine : t -> Engine.t
val node_id : t -> Netsim.node_id

val configure_iface : t -> Netsim.iface -> addr:Addr.t -> prefix_len:int -> unit
(** Assign an address to an interface and install the connected route. *)

val iface_addr : t -> Netsim.iface -> Addr.t option
val addresses : t -> Addr.t list
val has_addr : t -> Addr.t -> bool

val primary_addr : t -> Addr.t
(** The first configured address.  @raise Failure when none configured. *)

val table : t -> Route_table.t
val set_forwarding : t -> bool -> unit
val forwarding : t -> bool

val set_fast_path : t -> bool -> unit
(** The fast path (default on) forwards transit datagrams by patching TTL
    and checksum in the received frame (RFC 1624) and retransmitting the
    same bytes, with routes served from a generation-checked lookup cache.
    Switching it off restores the legacy decode/re-encode path with direct
    table lookups — kept so E13 can measure one against the other. *)

val fast_path : t -> bool

val receive : t -> iface:Netsim.iface -> bytes -> unit
(** Hand a raw frame to the stack, exactly as the netsim delivery handler
    does.  Exposed so tests and instrumentation can interpose on a node's
    handler (e.g. to observe per-hop frames) and still feed the stack. *)

val register_proto : t -> Ipv4.Proto.t -> (Ipv4.header -> bytes -> unit) -> unit
(** Install the upcall for a transport protocol.  ICMP is handled
    internally (echo responder, error dispatch) and cannot be overridden. *)

val register_proto_frame :
  t -> Ipv4.Proto.t -> (Ipv4.header -> bytes -> pos:int -> unit) -> unit
(** Optional zero-copy overlay on {!register_proto}: on the receive fast
    path, an unfragmented datagram for a protocol with a frame handler is
    delivered as the whole received frame with the payload starting at
    [pos], sparing the payload copy.  Fragmented datagrams, loopback
    sends and the slow path still use the plain [register_proto]
    handler, which must also be installed.  Accounting no longer forces
    the slow road: enabled ledgers are fed by [Accounting.record_fast]
    straight off the frame. *)

val add_error_handler :
  t -> (from:Addr.t -> Packet.Icmp_wire.t -> unit) -> unit
(** Subscribe to decoded ICMP error messages (unreachables, time-exceeded)
    addressed to this host; [from] is the reporting node.  Transports use
    this to abort doomed connections, diagnostics to map paths.  Handlers
    accumulate; all are invoked. *)

val set_echo_reply_handler : t -> (id:int -> seq:int -> payload:bytes -> unit) -> unit
(** Receives echo replies, for ping-style probing. *)

val send :
  t ->
  ?tos:Ipv4.Tos.t ->
  ?ttl:int ->
  ?dont_fragment:bool ->
  ?src:Addr.t ->
  proto:Ipv4.Proto.t ->
  dst:Addr.t ->
  bytes ->
  (unit, send_error) result
(** Originate a datagram.  The source address defaults to the outgoing
    interface's address.  Local destinations loop back through the engine
    (asynchronously, like everything else). *)

val send_frame :
  t ->
  ?tos:Ipv4.Tos.t ->
  ?ttl:int ->
  ?dont_fragment:bool ->
  ?src:Addr.t ->
  proto:Ipv4.Proto.t ->
  dst:Addr.t ->
  bytes ->
  (unit, send_error) result
(** Like {!send}, but the argument is a whole frame: the first
    [Ipv4.header_size] bytes are a reserved prefix the stack fills in, and
    the transport payload already sits after it.  When the datagram is
    routed out an interface and fits the MTU, the frame is transmitted as
    is — no payload copy, no re-encode.  Loopback and fragmentation fall
    back to the copying path.  Transports use this to emit segments built
    allocation-free with the wire modules' [encode_into]. *)

val send_echo_request : t -> dst:Addr.t -> id:int -> seq:int -> payload:bytes -> unit

val icmp_unreachable :
  t -> Ipv4.header -> bytes -> Packet.Icmp_wire.unreach_code -> unit
(** For transports: report a received datagram (header plus payload) as
    undeliverable back to its source, e.g. UDP port unreachable. *)

val counters : t -> counters

val route_cache_capacity : int
(** Structural bound on the per-stack destination->route memo: a
    direct-mapped array of this many slots, colliding entries evicting
    each other.  The cache can never outgrow it no matter how many
    distinct destinations transit the stack. *)

val enable_accounting : ?mode:Accounting.mode -> t -> Accounting.t
(** Start attributing every datagram forwarded (or locally delivered) by
    this stack to flows; returns the live ledger.  Default mode is
    [Exact]; pass [Sketch _] for scale runs — sketch-mode attribution is
    allocation-free, so datagrams stay on [forward_fast] and the
    frame-handler delivery road with accounting enabled. *)

val accounting : t -> Accounting.t option
(** The ledger, if {!enable_accounting} has been called. *)

val reassembly_pending : t -> int
val reassembly_expired : t -> int

val flush_soft_state : t -> unit
(** Simulate the memory loss of a crash: drop the route cache, every
    learned route (anything with a next hop or a nonzero metric), and
    all pending reassembly buffers.  Connected interface routes remain —
    they are configuration, not soft state.  Emits
    [Trace.Event.Fault_soft_reset] when the fault class is enabled, then
    runs every {!on_soft_flush} subscriber. *)

val on_soft_flush : t -> (unit -> unit) -> unit
(** Subscribe to {!flush_soft_state}: layers above IP that keep derived
    state (resolver caches, name-server health views) register here so a
    crash's amnesia reaches them too.  Subscribers run in registration
    order, after the stack's own soft state is gone. *)

val set_tap : t -> (rx:bool -> bytes -> unit) option -> unit
(** Attach (or detach) a frame observer at this host: fires once for
    every frame the stack receives ([rx:true]) and every frame it hands
    to a link ([rx:false]).  Used for host-side pcap capture. *)

val metrics_items : t -> unit -> (string * Trace.Metrics.value) list
(** Pull-based metrics source over {!counters} (plus reassembly state),
    for [Trace.Metrics.register]. *)
