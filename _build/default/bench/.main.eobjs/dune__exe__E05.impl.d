bench/e05.ml: Array Bytes Catenet Engine Internet List Netsim Printf Util Vc
