(* E5 — End-to-end vs hop-by-hop reliability (Clark §3, §5).

   The paper argues the network need not be perfectly reliable: the hosts
   must verify end to end regardless, so hop-by-hop machinery is mostly
   redundant cost.  We push the same bulk transfer across a four-hop path
   with increasing per-link loss, once with TCP over best-effort datagram
   forwarding and once over the VC fabric's per-hop go-back-N, and compare
   goodput and total bytes put on the wire per payload byte delivered. *)

open Catenet

let hops = 4
let total_bytes = 400_000
let profile loss =
  Netsim.profile "leg" ~bandwidth_bps:1_536_000 ~delay_us:5_000 ~loss

let run_tcp loss =
  let t = Internet.create ~routing:Internet.Static () in
  let h1 = Internet.add_host t "h1" in
  let h2 = Internet.add_host t "h2" in
  let gws =
    List.init (hops - 1) (fun i -> Internet.add_gateway t (Printf.sprintf "g%d" i))
  in
  let nodes =
    [ h1.Internet.h_node ]
    @ List.map (fun g -> g.Internet.g_node) gws
    @ [ h2.Internet.h_node ]
  in
  let rec wire = function
    | a :: (b :: _ as rest) ->
        ignore (Internet.connect t (profile loss) a b);
        wire rest
    | _ -> ()
  in
  wire nodes;
  Internet.start t;
  let started = Engine.now (Internet.engine t) in
  let goodput, _, intact =
    Util.run_bulk t h1 h2 ~port:20 ~total:total_bytes ~seconds:600.0
  in
  ignore started;
  let wire_bytes = (Netsim.total_stats (Internet.net t)).Netsim.tx_bytes in
  (goodput, intact, float_of_int wire_bytes /. float_of_int total_bytes)

let run_vc loss =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:7 eng in
  let nodes =
    Array.init (hops + 1) (fun i -> Netsim.add_node net (Printf.sprintf "n%d" i))
  in
  for i = 0 to hops - 1 do
    ignore (Netsim.add_link net (profile loss) nodes.(i) nodes.(i + 1))
  done;
  let fabric = Vc.create net in
  Array.iter (Vc.attach fabric) nodes;
  let src = nodes.(0) and dst = nodes.(hops) in
  let cell = 1024 in
  let count = total_bytes / cell in
  let delivered = ref 0 in
  let finished_at = ref None in
  Vc.listen fabric dst (fun circuit ->
      Vc.on_data circuit (fun d ->
          delivered := !delivered + Bytes.length d;
          if !delivered >= count * cell && !finished_at = None then
            finished_at := Some (Engine.now eng)));
  (* Setup cells are unreliable: redial until the call sticks. *)
  let circuit = ref None in
  let rec dial attempts =
    if attempts < 100 then begin
      let c =
        Vc.call fabric ~src ~dst
          ~on_clear:(fun _ ->
            Engine.after eng 100_000 (fun () ->
                match !circuit with
                | Some c when Vc.is_open c -> ()
                | Some _ | None -> dial (attempts + 1)))
          ()
      in
      circuit := Some c
    end
  in
  dial 0;
  let sent = ref 0 in
  let payload = Bytes.make cell 'e' in
  let rec pump () =
    (match !circuit with
    | Some c when Vc.is_open c && !sent < count ->
        if Vc.send c payload then incr sent
    | Some _ | None -> ());
    if !sent < count then Engine.after eng 3_000 pump
  in
  Engine.after eng 300_000 pump;
  Engine.run ~until:(Engine.sec 600.0) eng;
  let wire_bytes = (Netsim.total_stats net).Netsim.tx_bytes in
  let goodput =
    match !finished_at with
    | Some at when at > 300_000 ->
        Some (float_of_int (count * cell) /. Engine.to_sec (at - 300_000))
    | Some _ | None -> None
  in
  ( goodput,
    !delivered >= count * cell,
    float_of_int wire_bytes /. float_of_int (count * cell) )

let run () =
  Util.banner "E5" "End-to-end vs hop-by-hop reliability on a lossy path"
    "host-to-host retransmission suffices; per-hop reliability spends \
     switch memory and wire bytes to promise less";
  let rows =
    List.map
      (fun loss ->
        let tcp_good, tcp_ok, tcp_ovh = run_tcp loss in
        let vc_good, vc_ok, vc_ovh = run_vc loss in
        let show g ok =
          match (g, ok) with
          | Some g, true -> Printf.sprintf "%.1f" (g /. 1e3)
          | _, false -> "failed"
          | None, true -> "-"
        in
        [
          Util.fpct loss;
          show tcp_good tcp_ok;
          Printf.sprintf "%.2fx" tcp_ovh;
          show vc_good vc_ok;
          Printf.sprintf "%.2fx" vc_ovh;
        ])
      [ 0.0; 0.01; 0.02; 0.05; 0.10 ]
  in
  Util.table
    [
      "per-link loss"; "tcp kB/s"; "tcp wire/payload"; "vc kB/s";
      "vc wire/payload";
    ]
    rows;
  Util.note
    "the transfer completes under both architectures at every loss rate, \
     and the end-to-end integrity check at the receiving host is required \
     in BOTH cases — hop-by-hop acks cannot replace it (§3). The flip side \
     is §5's honest concession: on badly lossy nets, end-to-end recovery \
     pays in performance (retransmissions re-cross every hop and the \
     congestion machinery backs off), while per-hop recovery pays always, \
     in switch state and per-hop acks, even on clean paths"
