.PHONY: all build test check lint bench bench-smoke gauntlet-smoke topo-smoke acct-smoke names-smoke adversary-smoke clean

all: build

build:
	dune build

test:
	dune runtest

check:
	bin/check.sh

# Static analysis: wire layouts, fast-path allocation freedom,
# observability totality, comparison and match hygiene (bin/lint/).
lint:
	dune build bin/lint/catenet_lint.exe
	./_build/default/bin/lint/catenet_lint.exe --allow bin/lint/lint.allow \
	  $$(find lib -name '*.ml' | sort) \
	  $$(find _build/default/lib -name '*.cmt' | grep -v '__\.cmt$$' | sort)
	./_build/default/bin/lint/catenet_lint.exe --rng-only \
	  $$(find bench examples -name '*.ml' | sort)

bench:
	dune exec bench/main.exe

# Scaled-down pass over every experiment: proves the benches still build
# and run in seconds, without overwriting the real BENCH_*.json numbers.
bench-smoke:
	dune exec bench/main.exe -- --smoke --out=_smoke

# The E16 survivability gauntlet alone, scaled down: fault injection,
# reconvergence measurement and the replay-determinism check end to end.
gauntlet-smoke:
	dune exec bench/main.exe -- --smoke --only E16 --out=_smoke

# The E17 scale engine alone, scaled down: builds the 10^4- and
# 10^5-host region topologies, drives cross-region traffic, asserts
# zero loss and aggregation end to end.
topo-smoke:
	dune exec bench/main.exe -- --smoke --only E17 --out=_smoke

# The E20 sketch accounting experiment alone, scaled down: off / sketch /
# exact over the same deterministic load, error and memory comparison
# end to end.  (Smoke-scale numbers are not the gated contract; the gate
# in bin/check.sh reads the committed full-run BENCH_accounting.json.)
acct-smoke:
	dune exec bench/main.exe -- --smoke --only E20 --out=_smoke

# The E21 name/service layer alone, scaled down: root + region
# authorities, caching resolvers, anycast replicas with a crash-driven
# failover and resolver amnesia, end to end.  (Smoke-scale numbers are
# not the gated contract; the gate in bin/check.sh reads the committed
# full-run BENCH_names.json.)
names-smoke:
	dune exec bench/main.exe -- --smoke --only E21 --out=_smoke

# The E18 adversarial conformance experiment alone, scaled down: the
# seeded hostile peer forging RSTs, in-window SYNs and ACK probes into a
# live transfer, plus the >64 KiB-window LFN run.  (Smoke-scale numbers
# are not the gated contract; the gate in bin/check.sh reads the
# committed full-run BENCH_tcp_adversary.json.)
adversary-smoke:
	dune exec bench/main.exe -- --smoke --only E18 --out=_smoke

clean:
	dune clean
