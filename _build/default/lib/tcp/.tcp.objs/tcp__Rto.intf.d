lib/tcp/rto.mli:
