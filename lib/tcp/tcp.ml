module Addr = Packet.Addr
module Ipv4 = Packet.Ipv4
module Wire = Packet.Tcp_wire
module Seq = Seq_num
module Rto = Rto
module Sendbuf = Sendbuf
module Sack = Sack

type cc_algo = No_cc | Tahoe | Reno

let pp_cc fmt c =
  Format.pp_print_string fmt
    (match c with No_cc -> "no-cc" | Tahoe -> "tahoe" | Reno -> "reno")

type config = {
  mss : int;
  window : int;
  cc : cc_algo;
  nagle : bool;
  syn_retries : int;
  max_retransmits : int;
  msl_us : int;
  delayed_ack_us : int;
  persist_us : int;
  send_buffer : int;
  tos : Ipv4.Tos.t;
  sack : bool;
  window_scaling : bool;
}

let default_config =
  {
    mss = 1460;
    window = 65535;
    cc = Reno;
    nagle = true;
    syn_retries = 6;
    max_retransmits = 12;
    msl_us = 5_000_000;
    delayed_ack_us = 200_000;
    persist_us = 1_000_000;
    send_buffer = 262_144;
    tos = Ipv4.Tos.Routine;
    sack = true;
    window_scaling = true;
  }

(* The smallest shift that lets the configured receive window fit the
   16-bit wire field (RFC 7323 caps the shift at 14). *)
let desired_wscale cfg =
  let rec go s =
    if s >= 14 || cfg.window lsr s <= 65535 then s else go (s + 1)
  in
  go 0

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Closed -> "CLOSED"
    | Listen -> "LISTEN"
    | Syn_sent -> "SYN-SENT"
    | Syn_received -> "SYN-RECEIVED"
    | Established -> "ESTABLISHED"
    | Fin_wait_1 -> "FIN-WAIT-1"
    | Fin_wait_2 -> "FIN-WAIT-2"
    | Close_wait -> "CLOSE-WAIT"
    | Closing -> "CLOSING"
    | Last_ack -> "LAST-ACK"
    | Time_wait -> "TIME-WAIT")

(* The RFC 793 §3.2 edges this implementation exercises, declared as
   data and machine-checked by the catenet-lint [transitions] pass:
   every [c.st <- ...] must be a declared edge, and every declared edge
   must have an implementing assignment.  States entered at connection
   creation ([Listen] for passive opens, [Syn_sent]/[Syn_received] for
   active and embryonic passive opens) are record literals, not
   assignments, so they carry no rows; "*" is the any-state source for
   the common teardown path. *)
let st_transitions =
  [ (* state, event, state' *)
    ("Syn_sent", "acceptable SYN-ACK: active handshake completes",
     "Established");
    ("Syn_sent", "SYN without ACK crossed ours: simultaneous open",
     "Syn_received");
    ("Syn_received", "handshake-completing ACK", "Established");
    ("Established", "application close or shutdown sends our FIN",
     "Fin_wait_1");
    ("Close_wait", "application close sends our FIN after the peer's",
     "Last_ack");
    ("Established", "FIN received from the peer", "Close_wait");
    ("Syn_received", "FIN received before the handshake ACK", "Close_wait");
    ("Fin_wait_1", "FIN received while ours is unacked: simultaneous close",
     "Closing");
    ("Fin_wait_1", "our FIN acknowledged", "Fin_wait_2");
    ("Fin_wait_2", "FIN received from the peer", "Time_wait");
    ("Closing", "our FIN acknowledged", "Time_wait");
    ("Time_wait", "peer retransmitted its FIN: re-ack, restart 2MSL",
     "Time_wait");
    ("*", "abort, RST, 2MSL expiry, last ACK of ours acknowledged",
     "Closed") ]

type close_reason = Graceful | Reset | Timed_out | Refused

let pp_close_reason fmt r =
  Format.pp_print_string fmt
    (match r with
    | Graceful -> "graceful"
    | Reset -> "reset"
    | Timed_out -> "timed-out"
    | Refused -> "refused")

type conn_stats = {
  mutable segs_out : int;
  mutable segs_in : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
  mutable retransmits : int;
  mutable rto_fires : int;
  mutable fast_retransmits : int;
  mutable dupacks : int;
  mutable bytes_retransmitted : int;
  mutable fast_path_acks : int;
  mutable fast_path_data : int;
}

type stats = {
  mutable active_opens : int;
  mutable passive_opens : int;
  mutable established : int;
  mutable resets_out : int;
  mutable resets_in : int;
  mutable bad_segments : int;
  mutable no_listener : int;
  (* RFC 5961 guards. *)
  mutable challenge_acks_out : int;
  mutable rst_rejected_inexact : int;
  mutable dropped_acks_invalid : int;
}

type key = int32 * int * int32 * int

type t = {
  ip : Ip.Stack.t;
  eng : Engine.t;
  default_cfg : config;
  conns : (key, conn) Hashtbl.t;
  listeners : (int, listener) Hashtbl.t;
  mutable next_ephemeral : int;
  rng : Stdext.Rng.t;
  gstats : stats;
  (* Challenge-ACK rate limit (RFC 5961 §10): a per-instance budget per
     one-second window, so a flood of forged segments cannot be turned
     into an ACK flood. *)
  mutable challenge_epoch : int;
  mutable challenge_count : int;
  (* Fast path switch: header-predicted receive and allocation-free
     emission.  Off = the reference RFC 793 dispatch everywhere; protocol
     behaviour is identical either way (property-tested). *)
  mutable fast : bool;
}

and listener = {
  l_tcp : t;
  l_port : int;
  l_accept : conn -> unit;
  mutable l_open : bool;
}

and conn = {
  tcp : t;
  cfg : config;
  local_addr : Addr.t;
  local_port : int;
  remote_addr : Addr.t;
  remote_port : int;
  via_listener : listener option;
  mutable st : state;
  (* Send side. *)
  iss : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_wnd : int;
  mutable snd_wl1 : int;
  mutable snd_wl2 : int;
  mutable snd_max : int; (* highest snd_nxt ever reached *)
  mutable max_snd_wnd : int; (* largest send window ever seen (RFC 5961 §5) *)
  sndbuf : Sendbuf.t;
  scoreboard : Sack.t;
  mutable fin_pending : bool;
  mutable fin_sent : bool;
  mutable eff_mss : int;
  (* Negotiated options.  [ws_send]/[sackp_send] are what our SYN or
     SYN-ACK offers (fixed at open so handshake retransmits are
     identical); the scales and [sack_ok] take effect once both sides
     have offered. *)
  mutable ws_send : int option;
  mutable sackp_send : bool;
  mutable snd_wscale : int; (* shift applied to windows the peer sends *)
  mutable rcv_wscale : int; (* shift applied to windows we advertise *)
  mutable sack_ok : bool;
  (* Receive side. *)
  mutable irs : int;
  mutable rcv_nxt : int;
  mutable ooo : (int * bytes) list;
  mutable last_ooo_seq : int; (* most recent out-of-order arrival (RFC 2018) *)
  recvq : Buffer.t;
  mutable paused : bool;
  (* Congestion. *)
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable dupacks : int;
  mutable recover : int;
  mutable in_recovery : bool;
  (* Timers. *)
  rto : Rto.t;
  mutable rto_timer : Engine.Timer.handle option;
  mutable retries : int;
  mutable delack_timer : Engine.Timer.handle option;
  mutable ack_pending : int;
  mutable persist_timer : Engine.Timer.handle option;
  mutable timewait_timer : Engine.Timer.handle option;
  (* RTT measurement in flight: (sequence being timed, send time). *)
  mutable timing : (int * int) option;
  (* Callbacks. *)
  mutable cb_established : (unit -> unit) option;
  mutable cb_receive : (bytes -> unit) option;
  mutable cb_peer_fin : (unit -> unit) option;
  mutable cb_close : (close_reason -> unit) option;
  mutable closed_notified : bool;
  cstats : conn_stats;
}

let new_conn_stats () =
  {
    segs_out = 0;
    segs_in = 0;
    bytes_out = 0;
    bytes_in = 0;
    retransmits = 0;
    rto_fires = 0;
    fast_retransmits = 0;
    dupacks = 0;
    bytes_retransmitted = 0;
    fast_path_acks = 0;
    fast_path_data = 0;
  }

(* Accessors ------------------------------------------------------------ *)

let stack t = t.ip
let instance_stats t = t.gstats
let set_fast_path t v = t.fast <- v
let fast_path t = t.fast
let connection_count t = Hashtbl.length t.conns

let metrics_items t () =
  let i v = Trace.Metrics.Int v in
  [ ("active_opens", i t.gstats.active_opens);
    ("passive_opens", i t.gstats.passive_opens);
    ("established", i t.gstats.established);
    ("resets_out", i t.gstats.resets_out);
    ("resets_in", i t.gstats.resets_in);
    ("bad_segments", i t.gstats.bad_segments);
    ("no_listener", i t.gstats.no_listener);
    ("challenge_acks_out", i t.gstats.challenge_acks_out);
    ("rst_rejected_inexact", i t.gstats.rst_rejected_inexact);
    ("acks_dropped_invalid", i t.gstats.dropped_acks_invalid);
    ("connections", i (Hashtbl.length t.conns)) ]
let state c = c.st
let stats c = c.cstats
let cwnd c = c.cwnd
let ssthresh c = c.ssthresh
let srtt_us c = Rto.srtt c.rto
let snd_wnd c = c.snd_wnd
let local_port c = c.local_port
let remote_addr c = c.remote_addr
let remote_port c = c.remote_port
let mss c = c.eff_mss
let on_established c f = c.cb_established <- Some f
let on_receive c f = c.cb_receive <- Some f
let on_peer_fin c f = c.cb_peer_fin <- Some f
let on_close c f = c.cb_close <- Some f

(* Sequence/offset mapping: stream byte 0 is iss+1 (after the SYN). *)
let seq_of_off c off = Seq.add c.iss (1 + off) [@@fastpath]
let off_of_seq c s = Seq.diff s c.iss - 1 [@@fastpath]

(* The FIN, if sent, occupies the sequence number just past the stream. *)
let fin_seq c = seq_of_off c (Sendbuf.tail c.sndbuf)

let flight c = Seq.diff c.snd_nxt c.snd_una [@@fastpath]

let rcv_window c =
  let used = Buffer.length c.recvq in
  min (65535 lsl c.rcv_wscale) (max 0 (c.cfg.window - used))
[@@fastpath]

(* The 16-bit window field for an outgoing segment.  Windows on SYN
   segments are never scaled (RFC 7323 §2.2); afterwards the advertised
   window is rounded down to the granularity of our shift. *)
let wire_window c ~syn =
  if syn then min 65535 (rcv_window c) else rcv_window c lsr c.rcv_wscale
[@@fastpath]

(* Every send-window update funnels through here so the RFC 5961 ACK
   acceptability test can use the largest window ever granted. *)
let set_snd_wnd c w =
  c.snd_wnd <- w;
  if w > c.max_snd_wnd then c.max_snd_wnd <- w
[@@fastpath]

let effective_cwnd c =
  match c.cfg.cc with No_cc -> 1 lsl 30 | Tahoe | Reno -> c.cwnd
[@@fastpath]

let key_of c : key =
  ( Addr.to_int32 c.local_addr,
    c.local_port,
    Addr.to_int32 c.remote_addr,
    c.remote_port )

(* Timer plumbing ------------------------------------------------------- *)

let cancel_timer slot =
  match slot with Some h -> Engine.Timer.cancel h | None -> ()
[@@fastpath]

let cancel_all_timers c =
  cancel_timer c.rto_timer;
  cancel_timer c.delack_timer;
  cancel_timer c.persist_timer;
  cancel_timer c.timewait_timer;
  c.rto_timer <- None;
  c.delack_timer <- None;
  c.persist_timer <- None;
  c.timewait_timer <- None

let destroy c reason =
  cancel_all_timers c;
  Hashtbl.remove c.tcp.conns (key_of c);
  c.st <- Closed;
  if not c.closed_notified then begin
    c.closed_notified <- true;
    match c.cb_close with Some f -> f reason | None -> ()
  end

(* Segment emission ------------------------------------------------------ *)

(* Payload is referenced by send-buffer offset, not passed as bytes: on the
   fast path the stream slice is blitted once, straight into its final
   place in the outgoing frame (reserved IP-header prefix + TCP header +
   payload), headers are written around it in place, and the very same
   buffer goes down the stack.  The slow path is the original copying
   [Wire.make]/[Wire.encode]/[Stack.send] chain; both produce identical
   wire bytes. *)
let emit_segment c ?(payload_off = 0) ?(payload_len = 0) ?(mss_opt = None)
    ?(ws_opt = None) ?(sackp = false) ?(sack = []) ~flags ~seq () =
  c.cstats.segs_out <- c.cstats.segs_out + 1;
  if Trace.want Trace.Cls.tcp then
    Trace.emit
      (Trace.Event.Tcp_segment_out
         { node = Ip.Stack.node_id c.tcp.ip; dst = c.remote_addr;
           dst_port = c.remote_port; seq; len = payload_len;
           flags =
             Trace.Event.tcp_flag_bits ~fin:flags.Wire.fin
               ~syn:flags.Wire.syn ~rst:flags.Wire.rst ~psh:flags.Wire.psh
               ~ack:flags.Wire.ack });
  (* An ACK-bearing segment satisfies any pending delayed ACK. *)
  if flags.Wire.ack then begin
    cancel_timer c.delack_timer;
    c.delack_timer <- None;
    c.ack_pending <- 0
  end;
  let window = wire_window c ~syn:flags.Wire.syn in
  if c.tcp.fast then begin
    let hsize =
      Wire.header_bytes ~wscale:ws_opt ~sack_permitted:sackp ~sack
        ~mss:mss_opt ()
    in
    let frame = Bytes.create (Ipv4.header_size + hsize + payload_len) in
    if payload_len > 0 then
      Sendbuf.blit c.sndbuf ~off:payload_off ~len:payload_len frame
        ~pos:(Ipv4.header_size + hsize);
    ignore
      (Wire.encode_into ~src:c.local_addr ~dst:c.remote_addr
         ~src_port:c.local_port ~dst_port:c.remote_port ~seq
         ~ack_n:(if flags.Wire.ack then c.rcv_nxt else 0)
         ~flags ~window ~mss:mss_opt ~wscale:ws_opt ~sack_permitted:sackp
         ~sack ~payload_len frame ~pos:Ipv4.header_size);
    ignore
      (Ip.Stack.send_frame c.tcp.ip ~tos:c.cfg.tos ~src:c.local_addr
         ~proto:Ipv4.Proto.Tcp ~dst:c.remote_addr frame)
  end
  else begin
    let payload =
      if payload_len > 0 then
        Sendbuf.get c.sndbuf ~off:payload_off ~len:payload_len
      else Bytes.empty
    in
    let seg =
      Wire.make ~seq
        ~ack_n:(if flags.Wire.ack then c.rcv_nxt else 0)
        ~flags ~window ~mss:mss_opt ~wscale:ws_opt ~sack_permitted:sackp
        ~sack ~payload ~src_port:c.local_port ~dst_port:c.remote_port ()
    in
    let bytes = Wire.encode ~src:c.local_addr ~dst:c.remote_addr seg in
    ignore
      (Ip.Stack.send c.tcp.ip ~tos:c.cfg.tos ~src:c.local_addr
         ~proto:Ipv4.Proto.Tcp ~dst:c.remote_addr bytes)
  end

(* SACK blocks advertising the out-of-order queue (RFC 2018 §4): coalesce
   the sorted ooo list into ranges, then put the range holding the most
   recent arrival first so a lost ACK costs the peer the least
   information. *)
let sack_blocks_of_ooo c =
  let ranges =
    List.fold_left
      (fun acc (s, d) ->
        let r = Seq.add s (Bytes.length d) in
        match acc with
        | (l0, r0) :: rest when Seq.le s r0 ->
            (l0, if Seq.gt r r0 then r else r0) :: rest
        | _ -> (s, r) :: acc)
      [] c.ooo
  in
  (* [ranges] is highest-first; move the freshest range up front. *)
  let fresh, others =
    List.partition
      (fun (l, r) -> Seq.le l c.last_ooo_seq && Seq.lt c.last_ooo_seq r)
      ranges
  in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  take Wire.max_sack_blocks (fresh @ others)

let send_ack c =
  let sack =
    if c.sack_ok && c.ooo <> [] then sack_blocks_of_ooo c else []
  in
  emit_segment c ~flags:(Wire.flags ~ack:true ()) ~sack ~seq:c.snd_nxt ()

(* Challenge ACK (RFC 5961): the answer to a suspicious but in-window RST
   or SYN.  A legitimate peer that really did lose state replies with an
   exact-sequence RST; a blind attacker learns nothing.  Rate-limited
   per instance so forged floods cannot become ACK floods. *)
let challenge_ack_limit = 100 (* per second *)

let send_challenge_ack c =
  let t = c.tcp in
  let now = Engine.now t.eng in
  if now - t.challenge_epoch >= 1_000_000 then begin
    t.challenge_epoch <- now;
    t.challenge_count <- 0
  end;
  if t.challenge_count < challenge_ack_limit then begin
    t.challenge_count <- t.challenge_count + 1;
    t.gstats.challenge_acks_out <- t.gstats.challenge_acks_out + 1;
    if Trace.want Trace.Cls.tcp then
      Trace.emit
        (Trace.Event.Tcp_guard
           { node = Ip.Stack.node_id t.ip; dst = c.remote_addr;
             kind = Trace.Event.Guard_challenge_ack });
    send_ack c
  end

(* Send a RST in reply to an orphan segment (RFC 793 p.36). *)
let send_rst_for t ~(ip : Ipv4.header) (seg : Wire.t) =
  if not seg.Wire.flags.Wire.rst then begin
    t.gstats.resets_out <- t.gstats.resets_out + 1;
    let seg_len =
      Bytes.length seg.Wire.payload
      + (if seg.Wire.flags.Wire.syn then 1 else 0)
      + if seg.Wire.flags.Wire.fin then 1 else 0
    in
    let reply =
      if seg.Wire.flags.Wire.ack then
        Wire.make ~seq:seg.Wire.ack_n
          ~flags:(Wire.flags ~rst:true ())
          ~src_port:seg.Wire.dst_port ~dst_port:seg.Wire.src_port ()
      else
        Wire.make ~seq:0
          ~ack_n:(Seq.add seg.Wire.seq seg_len)
          ~flags:(Wire.flags ~rst:true ~ack:true ())
          ~src_port:seg.Wire.dst_port ~dst_port:seg.Wire.src_port ()
    in
    let bytes =
      Wire.encode ~src:ip.Ipv4.dst ~dst:ip.Ipv4.src reply
    in
    ignore
      (Ip.Stack.send t.ip ~src:ip.Ipv4.dst ~proto:Ipv4.Proto.Tcp
         ~dst:ip.Ipv4.src bytes)
  end

let abort c =
  (match c.st with
  | Syn_sent | Closed -> ()
  | Listen | Syn_received | Established | Fin_wait_1 | Fin_wait_2
  | Close_wait | Closing | Last_ack | Time_wait ->
      c.tcp.gstats.resets_out <- c.tcp.gstats.resets_out + 1;
      emit_segment c ~flags:(Wire.flags ~rst:true ~ack:true ()) ~seq:c.snd_nxt
        ());
  destroy c Reset

(* Retransmission -------------------------------------------------------- *)

(* Forward reference: on_rto needs the output engine, which is defined
   below and itself needs arm_rto. *)
let output_ref : (conn -> unit) ref = ref (fun _ -> ())

let rec arm_rto c =
  let delay = Rto.rto c.rto in
  cancel_timer c.rto_timer;
  c.rto_timer <- Some (Engine.Timer.start c.tcp.eng ~after:delay (fun () -> on_rto c))

and retransmit_one c =
  (* Karn's rule: a retransmitted sequence range must not be timed. *)
  c.timing <- None;
  c.cstats.retransmits <- c.cstats.retransmits + 1;
  if Trace.want Trace.Cls.tcp then
    Trace.emit
      (Trace.Event.Tcp_retransmit
         { node = Ip.Stack.node_id c.tcp.ip; dst = c.remote_addr;
           seq = c.snd_una;
           len =
             max 0
               (min c.eff_mss
                  (Sendbuf.tail c.sndbuf - off_of_seq c c.snd_una)) });
  match c.st with
  | Syn_sent ->
      emit_segment c
        ~flags:(Wire.flags ~syn:true ())
        ~seq:c.iss ~mss_opt:(Some c.cfg.mss) ~ws_opt:c.ws_send
        ~sackp:c.sackp_send ()
  | Syn_received ->
      emit_segment c
        ~flags:(Wire.flags ~syn:true ~ack:true ())
        ~seq:c.iss ~mss_opt:(Some c.cfg.mss) ~ws_opt:c.ws_send
        ~sackp:c.sackp_send ()
  | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
    ->
      let off = off_of_seq c c.snd_una in
      let data_left = Sendbuf.tail c.sndbuf - off in
      if data_left > 0 then begin
        let len = min c.eff_mss data_left in
        (* Never re-send bytes the peer has SACKed past the hole. *)
        let len =
          match Sack.next_left c.scoreboard c.snd_una with
          | Some l when Seq.gt l c.snd_una ->
              min len (Seq.diff l c.snd_una)
          | Some _ | None -> len
        in
        c.cstats.bytes_retransmitted <- c.cstats.bytes_retransmitted + len;
        emit_segment c
          ~flags:(Wire.flags ~ack:true ~psh:(len = data_left) ())
          ~seq:c.snd_una ~payload_off:off ~payload_len:len ()
      end
      else if c.fin_sent then
        emit_segment c
          ~flags:(Wire.flags ~fin:true ~ack:true ())
          ~seq:(fin_seq c) ()
  | Closed | Listen | Time_wait -> ()

and on_rto c =
  c.rto_timer <- None;
  c.cstats.rto_fires <- c.cstats.rto_fires + 1;
  c.retries <- c.retries + 1;
  if Trace.want Trace.Cls.tcp then
    Trace.emit
      (Trace.Event.Tcp_rto_fire
         { node = Ip.Stack.node_id c.tcp.ip; dst = c.remote_addr;
           retries = c.retries });
  let limit =
    match c.st with
    | Syn_sent | Syn_received -> c.cfg.syn_retries
    | Closed | Listen | Established | Fin_wait_1 | Fin_wait_2 | Close_wait
    | Closing | Last_ack | Time_wait ->
        c.cfg.max_retransmits
  in
  if c.retries > limit then
    destroy c (if c.st = Syn_sent then Refused else Timed_out)
  else begin
    (* Timeout means congestion: collapse to slow start (Jacobson). *)
    (match c.cfg.cc with
    | No_cc -> ()
    | Tahoe | Reno ->
        c.ssthresh <- max (flight c / 2) (2 * c.eff_mss);
        c.cwnd <- c.eff_mss;
        c.in_recovery <- false;
        c.dupacks <- 0);
    Rto.backoff c.rto;
    (match c.st with
    | Syn_sent | Syn_received -> retransmit_one c
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing
    | Last_ack ->
        (* Go-back-N rollback: pull snd_nxt to the oldest unacked byte and
           let the (collapsed) window drive retransmission.  The
           scoreboard survives (RFC 2018 §8 makes discarding it optional,
           and the peer's reneging would show up as holes re-reported),
           so the rollback resend skips SACKed ranges. *)
        c.timing <- None;
        c.snd_nxt <- c.snd_una;
        if c.fin_sent && Seq.le c.snd_una (fin_seq c) then
          c.fin_sent <- false;
        !output_ref c
    | Closed | Listen | Time_wait -> ());
    arm_rto c
  end

(* The output engine ------------------------------------------------------ *)

(* States in which the output engine may transmit stream bytes: new data
   only flows in ESTABLISHED/CLOSE-WAIT, but retransmission after an RTO
   rollback must also run while our FIN is in flight. *)
let can_send_data c =
  match c.st with
  | Established | Close_wait | Fin_wait_1 | Closing | Last_ack -> true
  | Fin_wait_2 | Time_wait | Closed | Listen | Syn_sent | Syn_received ->
      false

let rec output c =
  if can_send_data c || c.fin_pending then begin
    let progress = ref true in
    while !progress do
      progress := false;
      (* SACK: when retransmitting (snd_nxt below the high-water mark),
         hop over ranges the peer already holds. *)
      (if Seq.lt c.snd_nxt c.snd_max then
         match Sack.sacked_to c.scoreboard c.snd_nxt with
         | Some r when Seq.gt r c.snd_nxt && Seq.le r c.snd_max ->
             c.snd_nxt <- r
         | Some _ | None -> ());
      let fl = flight c in
      let wnd = min c.snd_wnd (effective_cwnd c) in
      let usable = wnd - fl in
      let nxt_off = off_of_seq c c.snd_nxt in
      let avail = Sendbuf.tail c.sndbuf - nxt_off in
      if can_send_data c && avail > 0 && usable > 0 then begin
        let chunk = min c.eff_mss (min avail usable) in
        (* A retransmission run must stop at the next SACKed range. *)
        let chunk =
          if Seq.lt c.snd_nxt c.snd_max then
            match Sack.next_left c.scoreboard c.snd_nxt with
            | Some l when Seq.gt l c.snd_nxt ->
                min chunk (Seq.diff l c.snd_nxt)
            | Some _ | None -> chunk
          else chunk
        in
        (* Nagle: withhold a final sub-MSS segment while data is in
           flight. *)
        let nagle_hold =
          c.cfg.nagle && chunk < c.eff_mss && chunk = avail && fl > 0
          && not c.fin_pending
        in
        if chunk > 0 && not nagle_hold then begin
          let psh = chunk = avail in
          emit_segment c
            ~flags:(Wire.flags ~ack:true ~psh ())
            ~seq:c.snd_nxt ~payload_off:nxt_off ~payload_len:chunk ();
          if Seq.lt c.snd_nxt c.snd_max then begin
            c.cstats.retransmits <- c.cstats.retransmits + 1;
            c.cstats.bytes_retransmitted <-
              c.cstats.bytes_retransmitted + chunk;
            if Trace.want Trace.Cls.tcp then
              Trace.emit
                (Trace.Event.Tcp_retransmit
                   { node = Ip.Stack.node_id c.tcp.ip;
                     dst = c.remote_addr; seq = c.snd_nxt; len = chunk })
          end
          else begin
            c.cstats.bytes_out <- c.cstats.bytes_out + chunk;
            if c.timing = None then
              c.timing <- Some (c.snd_nxt, Engine.now c.tcp.eng)
          end;
          c.snd_nxt <- Seq.add c.snd_nxt chunk;
          c.snd_max <- Seq.max c.snd_max c.snd_nxt;
          if c.rto_timer = None then arm_rto c;
          progress := true
        end
      end
    done;
    (* FIN once the stream is fully transmitted. *)
    if
      c.fin_pending && (not c.fin_sent)
      && off_of_seq c c.snd_nxt = Sendbuf.tail c.sndbuf
      && (match c.st with
         | Established | Close_wait | Fin_wait_1 | Closing | Last_ack -> true
         | Closed | Listen | Syn_sent | Syn_received | Fin_wait_2
         | Time_wait ->
             false)
    then begin
      emit_segment c
        ~flags:(Wire.flags ~fin:true ~ack:true ())
        ~seq:c.snd_nxt ();
      c.fin_sent <- true;
      c.snd_nxt <- Seq.add c.snd_nxt 1;
      c.snd_max <- Seq.max c.snd_max c.snd_nxt;
      (match c.st with
      | Established -> c.st <- Fin_wait_1
      | Close_wait -> c.st <- Last_ack
      | Closed | Listen | Syn_sent | Syn_received | Fin_wait_1 | Fin_wait_2
      | Closing | Last_ack | Time_wait ->
          ());
      if c.rto_timer = None then arm_rto c
    end;
    maybe_arm_persist c
  end

(* Zero-window persist: after an idle interval, force one byte into the
   closed window so the reopening ACK cannot be lost silently. *)
and maybe_arm_persist c =
  let nxt_off = off_of_seq c c.snd_nxt in
  let avail = Sendbuf.tail c.sndbuf - nxt_off in
  if
    c.snd_wnd = 0 && flight c = 0 && avail > 0 && c.persist_timer = None
    && can_send_data c
  then
    c.persist_timer <-
      Some
        (Engine.Timer.start c.tcp.eng ~after:c.cfg.persist_us (fun () ->
             c.persist_timer <- None;
             if c.snd_wnd = 0 && flight c = 0 && can_send_data c then begin
               let nxt_off = off_of_seq c c.snd_nxt in
               if Sendbuf.tail c.sndbuf > nxt_off then begin
                 emit_segment c
                   ~flags:(Wire.flags ~ack:true ())
                   ~seq:c.snd_nxt ~payload_off:nxt_off ~payload_len:1 ();
                 c.cstats.bytes_out <- c.cstats.bytes_out + 1;
                 c.snd_nxt <- Seq.add c.snd_nxt 1;
                 c.snd_max <- Seq.max c.snd_max c.snd_nxt;
                 if c.rto_timer = None then arm_rto c
               end
             end))

let () = output_ref := output

(* User API --------------------------------------------------------------- *)

let send c data =
  match c.st with
  | Established | Close_wait | Syn_sent | Syn_received ->
      if c.fin_pending then 0
      else begin
        let n = Sendbuf.append c.sndbuf data in
        output c;
        n
      end
  | Closed | Listen | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack
  | Time_wait ->
      0

let send_space c = Sendbuf.space c.sndbuf

let close c =
  match c.st with
  | Closed | Listen | Time_wait | Fin_wait_1 | Fin_wait_2 | Closing
  | Last_ack ->
      ()
  | Syn_sent -> destroy c Graceful
  | Syn_received | Established | Close_wait ->
      c.fin_pending <- true;
      output c

let pause_reading c = c.paused <- true

let resume_reading c =
  if c.paused then begin
    c.paused <- false;
    if Buffer.length c.recvq > 0 then begin
      let data = Buffer.to_bytes c.recvq in
      Buffer.clear c.recvq;
      (match c.cb_receive with
      | Some f -> f data
      | None -> ());
      (* The window just reopened: tell the peer. *)
      send_ack c
    end
  end

(* Delivery -------------------------------------------------------------- *)

let deliver_data c data =
  c.cstats.bytes_in <- c.cstats.bytes_in + Bytes.length data;
  if c.paused then Buffer.add_bytes c.recvq data
  else
    match c.cb_receive with
    | Some f -> f data
    | None -> Buffer.add_bytes c.recvq data

(* Congestion-control reaction to one acceptable ACK. *)
let cc_on_new_ack c acked =
  match c.cfg.cc with
  | No_cc -> ()
  | Tahoe | Reno ->
      if c.in_recovery then begin
        (* Classic Reno: leave fast recovery on the first new ACK. *)
        c.cwnd <- c.ssthresh;
        c.in_recovery <- false
      end
      else if c.cwnd < c.ssthresh then
        (* Slow start. *)
        c.cwnd <- c.cwnd + min acked c.eff_mss
      else
        (* Congestion avoidance: ~one MSS per RTT. *)
        c.cwnd <- c.cwnd + max 1 (c.eff_mss * c.eff_mss / c.cwnd)
[@@fastpath]

let enter_fast_retransmit c =
  c.cstats.fast_retransmits <- c.cstats.fast_retransmits + 1;
  (match c.cfg.cc with
  | No_cc -> ()
  | Tahoe ->
      c.ssthresh <- max (flight c / 2) (2 * c.eff_mss);
      c.cwnd <- c.eff_mss;
      c.dupacks <- 0
  | Reno ->
      c.ssthresh <- max (flight c / 2) (2 * c.eff_mss);
      c.cwnd <- c.ssthresh + (3 * c.eff_mss);
      c.recover <- c.snd_nxt;
      c.in_recovery <- true);
  retransmit_one c;
  arm_rto c

(* TIME-WAIT entry / restart. *)
let enter_time_wait c =
  (c.st <- Time_wait [@transitions.from "Fin_wait_2,Closing,Time_wait"]);
  cancel_timer c.rto_timer;
  c.rto_timer <- None;
  cancel_timer c.timewait_timer;
  c.timewait_timer <-
    Some
      (Engine.Timer.start c.tcp.eng ~after:(2 * c.cfg.msl_us) (fun () ->
           destroy c Graceful))

let mark_established c =
  c.tcp.gstats.established <- c.tcp.gstats.established + 1;
  (c.st <- Established [@transitions.from "Syn_sent,Syn_received"]);
  (match c.via_listener with
  | Some l when l.l_open -> l.l_accept c
  | Some _ | None -> ());
  match c.cb_established with Some f -> f () | None -> ()

(* ACK processing (RFC 793 p.72).  Returns false if the segment should not
   be processed further (stale ACK of unsent data). *)
let process_ack c (seg : Wire.t) =
  let ack = seg.Wire.ack_n in
  (* Validate against the high-water mark, not snd_nxt: after an RTO
     rollback, acks of pre-rollback transmissions are still good. *)
  if Seq.gt ack c.snd_max then begin
    (* Acks something not yet sent. *)
    send_ack c;
    false
  end
  else if Seq.lt ack (Seq.add c.snd_una (-max 1 c.max_snd_wnd)) then begin
    (* RFC 5961 §5.2: an ACK below [snd_una - max_snd_wnd] cannot be a
       late arrival from this connection — drop it outright so blind
       ACK-range probes neither touch cc state nor trigger a reply. *)
    c.tcp.gstats.dropped_acks_invalid <- c.tcp.gstats.dropped_acks_invalid + 1;
    if Trace.want Trace.Cls.tcp then
      Trace.emit
        (Trace.Event.Tcp_guard
           { node = Ip.Stack.node_id c.tcp.ip; dst = c.remote_addr;
             kind = Trace.Event.Guard_ack_invalid });
    false
  end
  else begin
    let seg_len = Bytes.length seg.Wire.payload in
    if c.sack_ok && seg.Wire.sack <> [] then
      Sack.record c.scoreboard ~una:c.snd_una ~high:c.snd_max
        seg.Wire.sack;
    if Seq.gt ack c.snd_una then begin
      let acked = Seq.diff ack c.snd_una in
      c.snd_una <- ack;
      Sack.clear_below c.scoreboard ack;
      if Seq.lt c.snd_nxt c.snd_una then c.snd_nxt <- c.snd_una;
      (* Drop acknowledged stream bytes (the FIN consumes no buffer). *)
      let new_base = min (off_of_seq c ack) (Sendbuf.tail c.sndbuf) in
      Sendbuf.drop_until c.sndbuf new_base;
      (* RTT sample (Karn-safe: timing is cleared on retransmission). *)
      (match c.timing with
      | Some (tseq, at) when Seq.gt ack tseq ->
          Rto.sample c.rto (Engine.now c.tcp.eng - at);
          c.timing <- None
      | Some _ | None -> ());
      c.retries <- 0;
      Rto.reset_backoff c.rto;
      cc_on_new_ack c acked;
      if Seq.ge ack c.recover then c.dupacks <- 0;
      (* Timer: stop when everything is acked, else restart. *)
      if c.snd_una = c.snd_nxt then begin
        cancel_timer c.rto_timer;
        c.rto_timer <- None
      end
      else arm_rto c
    end
    else if
      seg_len = 0
      && ack = c.snd_una
      && seg.Wire.window lsl c.snd_wscale = c.snd_wnd
      && Seq.lt c.snd_una c.snd_nxt
      && not seg.Wire.flags.Wire.syn
      && not seg.Wire.flags.Wire.fin
    then begin
      (* A genuine duplicate ACK (RFC 5681 definition). *)
      c.cstats.dupacks <- c.cstats.dupacks + 1;
      c.dupacks <- c.dupacks + 1;
      if c.dupacks = 3 && c.cfg.cc <> No_cc then enter_fast_retransmit c
      else if c.dupacks > 3 && c.in_recovery then begin
        (* Window inflation during Reno fast recovery. *)
        c.cwnd <- c.cwnd + c.eff_mss;
        output c
      end
    end;
    (* Window update (RFC 793 p.72 wl1/wl2 test). *)
    if
      Seq.lt c.snd_wl1 seg.Wire.seq
      || (c.snd_wl1 = seg.Wire.seq && Seq.le c.snd_wl2 ack)
    then begin
      let old_wnd = c.snd_wnd in
      set_snd_wnd c (seg.Wire.window lsl c.snd_wscale);
      c.snd_wl1 <- seg.Wire.seq;
      c.snd_wl2 <- ack;
      if old_wnd = 0 && c.snd_wnd > 0 then begin
        cancel_timer c.persist_timer;
        c.persist_timer <- None
      end
    end;
    true
  end

(* In-order data and FIN delivery; assumes seg.seq = rcv_nxt after
   trimming. *)
let rec accept_text c seq payload fin =
  let len = Bytes.length payload in
  if len > 0 then begin
    c.rcv_nxt <- Seq.add c.rcv_nxt len;
    deliver_data c payload
  end;
  ignore seq;
  if fin then begin
    c.rcv_nxt <- Seq.add c.rcv_nxt 1;
    (match c.cb_peer_fin with Some f -> f () | None -> ());
    match c.st with
    | Established -> c.st <- Close_wait
    | Fin_wait_1 ->
        (* Our FIN not yet acked: simultaneous close. *)
        c.st <- Closing
    | Fin_wait_2 -> enter_time_wait c
    | Syn_received -> c.st <- Close_wait
    | Closed | Listen | Syn_sent | Close_wait | Closing | Last_ack
    | Time_wait ->
        ()
  end;
  (* Pull any now-contiguous out-of-order segments. *)
  drain_ooo c

and drain_ooo c =
  match c.ooo with
  | (seq, data) :: rest when Seq.le seq c.rcv_nxt ->
      c.ooo <- rest;
      let skip = Seq.diff c.rcv_nxt seq in
      if skip < Bytes.length data then begin
        let fresh = Bytes.sub data skip (Bytes.length data - skip) in
        accept_text c c.rcv_nxt fresh false
      end
      else drain_ooo c
  | _ -> ()

(* Insert an out-of-order segment, keeping the list sorted by seq. *)
let store_ooo c seq data =
  let rec ins = function
    | [] -> [ (seq, data) ]
    | (s, d) :: rest when Seq.lt s seq -> (s, d) :: ins rest
    | (s, _) :: _ as l when s = seq -> l (* duplicate: keep first *)
    | l -> (seq, data) :: l
  in
  if List.length c.ooo < 256 then begin
    c.ooo <- ins c.ooo;
    (* Most recent arrival: its range leads the SACK list (RFC 2018 §4). *)
    c.last_ooo_seq <- seq
  end

(* Segment arrival for synchronized states. *)
let rec process_segment c (seg : Wire.t) =
  c.cstats.segs_in <- c.cstats.segs_in + 1;
  let seg_len =
    (* RFC 793 §3.3: SYN and FIN each occupy one sequence number, so both
       count toward the acceptability test — a FIN exactly at the right
       window edge is acceptable, one just past it is not. *)
    Bytes.length seg.Wire.payload
    + (if seg.Wire.flags.Wire.syn then 1 else 0)
    + (if seg.Wire.flags.Wire.fin then 1 else 0)
  in
  let wnd = rcv_window c in
  (* Acceptability check (RFC 793 p.69). *)
  let acceptable =
    if seg_len = 0 && wnd = 0 then seg.Wire.seq = c.rcv_nxt
    else if seg_len = 0 then Seq.in_window seg.Wire.seq ~base:c.rcv_nxt ~size:wnd
    else if wnd = 0 then false
    else
      Seq.in_window seg.Wire.seq ~base:c.rcv_nxt ~size:wnd
      || Seq.in_window
           (Seq.add seg.Wire.seq (seg_len - 1))
           ~base:c.rcv_nxt ~size:wnd
  in
  if not acceptable then begin
    if not seg.Wire.flags.Wire.rst then send_ack c
  end
  else if seg.Wire.flags.Wire.rst then begin
    (* RFC 5961 §3.2: a reset is honored only when it names the exact
       next expected sequence.  Merely in-window resets — what a blind
       attacker can forge — earn a challenge ACK; a legitimate peer
       answers with nothing, a desynchronized one with an exact RST. *)
    if seg.Wire.seq = c.rcv_nxt then begin
      c.tcp.gstats.resets_in <- c.tcp.gstats.resets_in + 1;
      destroy c Reset
    end
    else begin
      c.tcp.gstats.rst_rejected_inexact <-
        c.tcp.gstats.rst_rejected_inexact + 1;
      if Trace.want Trace.Cls.tcp then
        Trace.emit
          (Trace.Event.Tcp_guard
             { node = Ip.Stack.node_id c.tcp.ip; dst = c.remote_addr;
               kind = Trace.Event.Guard_rst_inexact });
      send_challenge_ack c
    end
  end
  else if seg.Wire.flags.Wire.syn then begin
    (* RFC 5961 §4.2: never tear down a synchronized connection on an
       in-window SYN (RFC 793 said abort).  Challenge-ACK instead; a
       genuinely restarted peer replies with an exact-sequence RST. *)
    if Trace.want Trace.Cls.tcp then
      Trace.emit
        (Trace.Event.Tcp_guard
           { node = Ip.Stack.node_id c.tcp.ip; dst = c.remote_addr;
             kind = Trace.Event.Guard_syn_in_window });
    send_challenge_ack c
  end
  else if not seg.Wire.flags.Wire.ack then ()
  else if
    (* SYN-RECEIVED: the handshake-completing ACK. *)
    c.st = Syn_received
  then begin
    if
      Seq.in_window seg.Wire.ack_n
        ~base:(Seq.add c.snd_una 1)
        ~size:(Seq.diff c.snd_nxt c.snd_una)
    then begin
      c.snd_una <- seg.Wire.ack_n;
      (* First post-handshake window: scaling is in effect from here on. *)
      set_snd_wnd c (seg.Wire.window lsl c.snd_wscale);
      c.snd_wl1 <- seg.Wire.seq;
      c.snd_wl2 <- seg.Wire.ack_n;
      cancel_timer c.rto_timer;
      c.rto_timer <- None;
      c.retries <- 0;
      mark_established c;
      (* Fall through to text processing of this same segment. *)
      if Bytes.length seg.Wire.payload > 0 || seg.Wire.flags.Wire.fin then
        process_segment c { seg with Wire.flags = { seg.Wire.flags with Wire.syn = false } }
    end
    else send_rst_like c seg
  end
  else begin
    let continue = process_ack c seg in
    if continue then begin
      (* FIN-WAIT / CLOSING progress on FIN acknowledgment. *)
      (if c.fin_sent && Seq.gt c.snd_una (fin_seq c) then
         match c.st with
         | Fin_wait_1 -> c.st <- Fin_wait_2
         | Closing -> enter_time_wait c
         | Last_ack -> destroy c Graceful
         | Closed | Listen | Syn_sent | Syn_received | Established
         | Fin_wait_2 | Close_wait | Time_wait ->
             ());
      if c.st <> Closed then begin
        (* Segment text. *)
        let payload = seg.Wire.payload in
        let plen = Bytes.length payload in
        let fin = seg.Wire.flags.Wire.fin in
        if plen > 0 || fin then begin
          if c.st = Time_wait then begin
            (* Peer retransmitted its FIN: re-ack and restart 2MSL. *)
            send_ack c;
            enter_time_wait c
          end
          else begin
            let seq = seg.Wire.seq in
            if Seq.le seq c.rcv_nxt then begin
              (* Trim the already-received prefix. *)
              let skip = Seq.diff c.rcv_nxt seq in
              let keep = max 0 (plen - skip) in
              let fresh =
                if keep > 0 then Bytes.sub payload skip keep else Bytes.empty
              in
              (* The FIN may itself be stale if rcv_nxt passed it. *)
              let fin_seq_in = Seq.add seq plen in
              let fin_fresh = fin && Seq.ge fin_seq_in c.rcv_nxt in
              if keep > 0 || fin_fresh then begin
                accept_text c c.rcv_nxt fresh fin_fresh;
                c.ack_pending <- c.ack_pending + 1;
                if fin_fresh || c.ack_pending >= 2 then send_ack c
                else if c.delack_timer = None then
                  c.delack_timer <-
                    Some
                      (Engine.Timer.start c.tcp.eng
                         ~after:c.cfg.delayed_ack_us (fun () ->
                           c.delack_timer <- None;
                           if c.ack_pending > 0 then send_ack c))
              end
              else send_ack c
            end
            else begin
              (* Out of order: stash and signal the gap at once. *)
              store_ooo c seq payload;
              send_ack c
            end
          end
        end;
        if c.st <> Closed then output c
      end
    end
  end

and send_rst_like c (seg : Wire.t) =
  c.tcp.gstats.resets_out <- c.tcp.gstats.resets_out + 1;
  emit_segment c ~flags:(Wire.flags ~rst:true ()) ~seq:seg.Wire.ack_n ()

(* SYN-SENT arrival (RFC 793 p.66). *)
let process_syn_sent c (seg : Wire.t) =
  c.cstats.segs_in <- c.cstats.segs_in + 1;
  let ack_ok =
    seg.Wire.flags.Wire.ack
    && Seq.in_window seg.Wire.ack_n ~base:(Seq.add c.iss 1)
         ~size:(Seq.diff c.snd_nxt c.iss)
  in
  if seg.Wire.flags.Wire.ack && not ack_ok then begin
    if not seg.Wire.flags.Wire.rst then send_rst_like c seg
  end
  else if seg.Wire.flags.Wire.rst then begin
    if ack_ok then begin
      c.tcp.gstats.resets_in <- c.tcp.gstats.resets_in + 1;
      destroy c Refused
    end
  end
  else if seg.Wire.flags.Wire.syn then begin
    c.irs <- seg.Wire.seq;
    c.rcv_nxt <- Seq.add seg.Wire.seq 1;
    (match seg.Wire.mss with
    | Some peer_mss -> c.eff_mss <- min c.cfg.mss peer_mss
    | None -> c.eff_mss <- min c.cfg.mss 536);
    (* RFC 7323 §2.2: scaling is live only if both SYNs carried the
       option; RFC 2018 likewise for SACK. *)
    (match (seg.Wire.wscale, c.ws_send) with
    | Some peer_shift, Some our_shift ->
        c.snd_wscale <- min peer_shift 14;
        c.rcv_wscale <- our_shift
    | _ ->
        c.snd_wscale <- 0;
        c.rcv_wscale <- 0);
    c.sack_ok <- seg.Wire.sack_permitted && c.sackp_send;
    if ack_ok then begin
      c.snd_una <- seg.Wire.ack_n;
      (* A window carried on a SYN is never scaled (RFC 7323 §2.2). *)
      set_snd_wnd c seg.Wire.window;
      c.snd_wl1 <- seg.Wire.seq;
      c.snd_wl2 <- seg.Wire.ack_n;
      cancel_timer c.rto_timer;
      c.rto_timer <- None;
      c.retries <- 0;
      (* The SYN round trip is a valid RTT sample. *)
      (match c.timing with
      | Some (_, at) -> Rto.sample c.rto (Engine.now c.tcp.eng - at)
      | None -> ());
      c.timing <- None;
      send_ack c;
      mark_established c;
      output c
    end
    else begin
      (* Simultaneous open. *)
      (c.st <- Syn_received [@transitions.from "Syn_sent"]);
      emit_segment c
        ~flags:(Wire.flags ~syn:true ~ack:true ())
        ~seq:c.iss ~mss_opt:(Some c.cfg.mss) ~ws_opt:c.ws_send
        ~sackp:c.sackp_send ();
      arm_rto c
    end
  end

(* Construction ----------------------------------------------------------- *)

let fresh_iss t = Stdext.Rng.int t.rng Seq.modulus

let make_conn t ~cfg ~local_addr ~local_port ~remote_addr ~remote_port
    ~via_listener ~st ~iss =
  let c =
    {
      tcp = t;
      cfg;
      local_addr;
      local_port;
      remote_addr;
      remote_port;
      via_listener;
      st;
      iss;
      snd_una = iss;
      snd_nxt = Seq.add iss 1;
      snd_max = Seq.add iss 1;
      snd_wnd = 0;
      max_snd_wnd = 0;
      snd_wl1 = 0;
      snd_wl2 = 0;
      sndbuf = Sendbuf.create ~limit:cfg.send_buffer ();
      scoreboard = Sack.create ();
      fin_pending = false;
      fin_sent = false;
      eff_mss = min cfg.mss 536;
      ws_send = None;
      sackp_send = false;
      snd_wscale = 0;
      rcv_wscale = 0;
      sack_ok = false;
      irs = 0;
      rcv_nxt = 0;
      ooo = [];
      last_ooo_seq = 0;
      recvq = Buffer.create 256;
      paused = false;
      cwnd = 2 * cfg.mss;
      (* RFC 5681 §3.1: initial ssthresh may be arbitrarily high; cap it
         at the peer's possible window, not at the pre-7323 64 KiB. *)
      ssthresh = max 65535 cfg.window;
      dupacks = 0;
      recover = iss;
      in_recovery = false;
      rto = Rto.create ();
      rto_timer = None;
      retries = 0;
      delack_timer = None;
      ack_pending = 0;
      persist_timer = None;
      timewait_timer = None;
      timing = None;
      cb_established = None;
      cb_receive = None;
      cb_peer_fin = None;
      cb_close = None;
      closed_notified = false;
      cstats = new_conn_stats ();
    }
  in
  Hashtbl.replace t.conns (key_of c) c;
  c

let alloc_ephemeral t =
  let p = t.next_ephemeral in
  t.next_ephemeral <- (if p + 1 > 65535 then 49152 else p + 1);
  p

let local_addr_for t dst =
  match Ip.Route_table.lookup (Ip.Stack.table t.ip) dst with
  | Some r -> (
      match Ip.Stack.iface_addr t.ip r.Ip.Route_table.iface with
      | Some a -> a
      | None -> Ip.Stack.primary_addr t.ip)
  | None -> Ip.Stack.primary_addr t.ip

let connect t ?config ~dst ~dst_port () =
  let cfg = Option.value config ~default:t.default_cfg in
  let local_addr =
    if Ip.Stack.has_addr t.ip dst then dst else local_addr_for t dst
  in
  let local_port = alloc_ephemeral t in
  t.gstats.active_opens <- t.gstats.active_opens + 1;
  let c =
    make_conn t ~cfg ~local_addr ~local_port ~remote_addr:dst
      ~remote_port:dst_port ~via_listener:None ~st:Syn_sent
      ~iss:(fresh_iss t)
  in
  if cfg.window_scaling then c.ws_send <- Some (desired_wscale cfg);
  c.sackp_send <- cfg.sack;
  emit_segment c
    ~flags:(Wire.flags ~syn:true ())
    ~seq:c.iss ~mss_opt:(Some cfg.mss) ~ws_opt:c.ws_send ~sackp:c.sackp_send
    ();
  c.timing <- Some (c.iss, Engine.now t.eng);
  arm_rto c;
  c

(* Typed listener errors, replacing the bare [Failure _] of old. *)
type listen_error = Port_in_use of int

exception Listen_error of listen_error

let listen_error_to_string = function
  | Port_in_use p -> Printf.sprintf "port %d already has a listener" p

let () =
  Printexc.register_printer (function
    | Listen_error e -> Some ("Tcp.listen: " ^ listen_error_to_string e)
    | _ -> None)

let listen t ~port ~accept =
  if Hashtbl.mem t.listeners port then raise (Listen_error (Port_in_use port));
  let l = { l_tcp = t; l_port = port; l_accept = accept; l_open = true } in
  Hashtbl.add t.listeners port l;
  l

let close_listener l =
  if l.l_open then begin
    l.l_open <- false;
    Hashtbl.remove l.l_tcp.listeners l.l_port
  end

(* Passive open from a listener. *)
let passive_open t l ~(ip : Ipv4.header) (seg : Wire.t) =
  t.gstats.passive_opens <- t.gstats.passive_opens + 1;
  let c =
    make_conn t ~cfg:t.default_cfg ~local_addr:ip.Ipv4.dst
      ~local_port:seg.Wire.dst_port ~remote_addr:ip.Ipv4.src
      ~remote_port:seg.Wire.src_port ~via_listener:(Some l) ~st:Syn_received
      ~iss:(fresh_iss t)
  in
  c.irs <- seg.Wire.seq;
  c.rcv_nxt <- Seq.add seg.Wire.seq 1;
  (* SYN windows are never scaled (RFC 7323 §2.2). *)
  set_snd_wnd c seg.Wire.window;
  c.snd_wl1 <- seg.Wire.seq;
  c.snd_wl2 <- 0;
  (match seg.Wire.mss with
  | Some peer_mss -> c.eff_mss <- min c.cfg.mss peer_mss
  | None -> c.eff_mss <- min c.cfg.mss 536);
  (* Offer wscale only in response to an offer, per RFC 7323 §2.2. *)
  (match seg.Wire.wscale with
  | Some peer_shift when c.cfg.window_scaling ->
      let ours = desired_wscale c.cfg in
      c.ws_send <- Some ours;
      c.rcv_wscale <- ours;
      c.snd_wscale <- min peer_shift 14
  | Some _ | None -> ());
  c.sackp_send <- c.cfg.sack && seg.Wire.sack_permitted;
  c.sack_ok <- c.sackp_send;
  emit_segment c
    ~flags:(Wire.flags ~syn:true ~ack:true ())
    ~seq:c.iss ~mss_opt:(Some c.cfg.mss) ~ws_opt:c.ws_send
    ~sackp:c.sackp_send ();
  arm_rto c

(* Header prediction (Van Jacobson): in ESTABLISHED, bulk traffic is a run
   of segments that are either the next in-sequence pure data or a pure ACK
   advancing snd_una, both with an unchanged window.  For exactly those,
   update the connection directly from the raw segment buffer — no [Wire.t],
   no option parse, no payload-trim copies.  Every guard below restates a
   condition under which the full RFC 793 dispatch ([process_segment])
   would take the same actions, so any mismatch just falls back to it and
   behaviour is byte-identical (property-tested against the slow path). *)

(* Pure ACK advancing snd_una: the new-ack branch of [process_ack], the
   window-update test, then [output] — nothing else in [process_segment]
   applies (no text, no FIN, and in ESTABLISHED our own FIN is unsent). *)
let fast_ack c ~seq ~ack =
  c.cstats.segs_in <- c.cstats.segs_in + 1;
  c.cstats.fast_path_acks <- c.cstats.fast_path_acks + 1;
  let acked = Seq.diff ack c.snd_una in
  c.snd_una <- ack;
  if Seq.lt c.snd_nxt c.snd_una then c.snd_nxt <- c.snd_una;
  let new_base = min (off_of_seq c ack) (Sendbuf.tail c.sndbuf) in
  Sendbuf.drop_until c.sndbuf new_base;
  (match c.timing with
  | Some (tseq, at) when Seq.gt ack tseq ->
      (* RTT smoothing touches an option cell; once per timed segment. *)
      (Rto.sample c.rto (Engine.now c.tcp.eng - at) [@fastpath.exempt]);
      c.timing <- None
  | Some _ | None -> ());
  c.retries <- 0;
  Rto.reset_backoff c.rto;
  cc_on_new_ack c acked;
  if Seq.ge ack c.recover then c.dupacks <- 0;
  if c.snd_una = c.snd_nxt then begin
    cancel_timer c.rto_timer;
    c.rto_timer <- None
  end
  else (arm_rto c [@fastpath.exempt]);
  (* RFC 793 wl1/wl2 test; the window value itself is unchanged by the
     prediction guard, so only the bookkeeping moves. *)
  if Seq.lt c.snd_wl1 seq || (c.snd_wl1 = seq && Seq.le c.snd_wl2 ack) then begin
    c.snd_wl1 <- seq;
    c.snd_wl2 <- ack
  end;
  (* [output] decides whether freed window lets us send; it allocates only
     when it actually emits a segment. *)
  (output c [@fastpath.exempt])
[@@fastpath]

(* Next in-sequence data, nothing else new: the window-update test, text
   acceptance (no trim needed, no out-of-order queue to drain), the
   delayed-ACK decision, then [output]. *)
let fast_data c ~seq ~ack buf ~pos ~plen =
  c.cstats.segs_in <- c.cstats.segs_in + 1;
  c.cstats.fast_path_data <- c.cstats.fast_path_data + 1;
  if Seq.lt c.snd_wl1 seq || (c.snd_wl1 = seq && Seq.le c.snd_wl2 ack) then begin
    c.snd_wl1 <- seq;
    c.snd_wl2 <- ack
  end;
  c.rcv_nxt <- Seq.add c.rcv_nxt plen;
  (* The one payload-sized copy the fast path is allowed (wire -> app). *)
  (deliver_data c (Bytes.sub buf (pos + 20) plen) [@fastpath.exempt]);
  c.ack_pending <- c.ack_pending + 1;
  if c.ack_pending >= 2 then (send_ack c [@fastpath.exempt])
  else if c.delack_timer = None then
    c.delack_timer <-
      (Some
         (Engine.Timer.start c.tcp.eng ~after:c.cfg.delayed_ack_us (fun () ->
              c.delack_timer <- None;
              if c.ack_pending > 0 then send_ack c))
      [@fastpath.exempt]);
  (output c [@fastpath.exempt])
[@@fastpath]

(* [buf] holds, at [pos], a checksum-valid segment with a bare 20-byte
   header and only ACK/PSH set.  Returns [true] if it was consumed on the
   fast path. *)
let try_fast c buf ~pos =
  let plen = Bytes.length buf - pos - 20 in
  let seq = Wire.peek_seq ~pos buf in
  if seq <> c.rcv_nxt || Wire.peek_window ~pos buf lsl c.snd_wscale <> c.snd_wnd
  then false
  else begin
    let ack = Wire.peek_ack_n ~pos buf in
    if plen = 0 then
      if Seq.gt ack c.snd_una && Seq.le ack c.snd_max then begin
        fast_ack c ~seq ~ack;
        true
      end
      else false
    else if ack = c.snd_una && c.ooo = [] && plen <= rcv_window c then begin
      fast_data c ~seq ~ack buf ~pos ~plen;
      true
    end
    else false
  end
[@@fastpath]

(* Full dispatch: connection lookup, the RFC 793 state machine, listeners
   and orphan RSTs. *)
let dispatch_segment t (ip : Ipv4.header) (seg : Wire.t) =
  let key : key =
    ( Addr.to_int32 ip.Ipv4.dst,
      seg.Wire.dst_port,
      Addr.to_int32 ip.Ipv4.src,
      seg.Wire.src_port )
  in
  match Hashtbl.find_opt t.conns key with
  | Some c -> (
      match c.st with
      | Syn_sent -> process_syn_sent c seg
      | Closed | Listen -> ()
      | Syn_received | Established | Fin_wait_1 | Fin_wait_2 | Close_wait
      | Closing | Last_ack | Time_wait ->
          process_segment c seg)
  | None -> (
      match Hashtbl.find_opt t.listeners seg.Wire.dst_port with
      | Some l
        when l.l_open && seg.Wire.flags.Wire.syn
             && (not seg.Wire.flags.Wire.ack)
             && not seg.Wire.flags.Wire.rst ->
          passive_open t l ~ip seg
      | Some _ | None ->
          t.gstats.no_listener <- t.gstats.no_listener + 1;
          send_rst_for t ~ip seg)

(* IP upcall.  [buf] holds the segment starting at [pos]: the IP layer's
   frame handler passes the received frame itself ([pos] past the IP
   header), so a predicted segment goes from wire to receive buffer with
   a single payload-sized copy; the plain handler passes a materialized
   segment at [pos] 0.  Off the fast path the segment is carved out once
   and handed to the legacy decode road. *)
let handle_at t (ip : Ipv4.header) buf ~pos =
  let segment () =
    if pos = 0 then buf else Bytes.sub buf pos (Bytes.length buf - pos)
  in
  if t.fast then begin
    match Wire.peek ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst ~pos buf with
    | Error _ -> t.gstats.bad_segments <- t.gstats.bad_segments + 1
    | Ok data_offset ->
        let predicted =
          data_offset = 20
          && (let bits = Wire.peek_flag_bits ~pos buf in
              bits = 0x10 || bits = 0x18)
          &&
          let key : key =
            ( Addr.to_int32 ip.Ipv4.dst,
              Wire.peek_dst_port ~pos buf,
              Addr.to_int32 ip.Ipv4.src,
              Wire.peek_src_port ~pos buf )
          in
          match Hashtbl.find_opt t.conns key with
          | Some c when c.st = Established -> try_fast c buf ~pos
          | Some _ | None -> false
        in
        if not predicted then begin
          match Wire.of_peeked (segment ()) ~data_offset with
          | Error _ -> t.gstats.bad_segments <- t.gstats.bad_segments + 1
          | Ok seg -> dispatch_segment t ip seg
        end
  end
  else
    match Wire.decode ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst (segment ()) with
    | Error _ -> t.gstats.bad_segments <- t.gstats.bad_segments + 1
    | Ok seg -> dispatch_segment t ip seg

let handle t ip payload = handle_at t ip payload ~pos:0

(* ICMP destination-unreachable quoting one of our SYNs is a hard error:
   abort the embryonic connection (BSD semantics).  The quote is the
   original IP header plus the first 8 TCP bytes — enough for the ports. *)
let handle_icmp_error t (msg : Packet.Icmp_wire.t) =
  match msg with
  | Packet.Icmp_wire.Dest_unreachable { original; _ } -> (
      if Bytes.length original >= Ipv4.header_size + 4 then
        match Ipv4.Proto.of_int (Bytes.get_uint8 original 9) with
        | Ipv4.Proto.Tcp -> (
            let src = Bytes.get_int32_be original 12 in
            let dst = Bytes.get_int32_be original 16 in
            let sport = Bytes.get_uint16_be original Ipv4.header_size in
            let dport = Bytes.get_uint16_be original (Ipv4.header_size + 2) in
            let key : key = (src, sport, dst, dport) in
            match Hashtbl.find_opt t.conns key with
            | Some c when c.st = Syn_sent -> destroy c Refused
            | Some _ | None -> ())
        | Ipv4.Proto.Icmp | Ipv4.Proto.Udp | Ipv4.Proto.Other _ -> ())
  | Packet.Icmp_wire.Time_exceeded _ | Packet.Icmp_wire.Echo_request _
  | Packet.Icmp_wire.Echo_reply _ ->
      ()

let create ?(config = default_config) ip =
  let t =
    {
      ip;
      eng = Ip.Stack.engine ip;
      default_cfg = config;
      conns = Hashtbl.create 16;
      listeners = Hashtbl.create 4;
      next_ephemeral = 49152;
      rng = Stdext.Rng.create 0x7C0FFEE;
      gstats =
        {
          active_opens = 0;
          passive_opens = 0;
          established = 0;
          resets_out = 0;
          resets_in = 0;
          bad_segments = 0;
          no_listener = 0;
          challenge_acks_out = 0;
          rst_rejected_inexact = 0;
          dropped_acks_invalid = 0;
        };
      challenge_epoch = 0;
      challenge_count = 0;
      fast = true;
    }
  in
  Ip.Stack.register_proto ip Ipv4.Proto.Tcp (handle t);
  Ip.Stack.register_proto_frame ip Ipv4.Proto.Tcp (fun h frame ~pos ->
      handle_at t h frame ~pos);
  Ip.Stack.add_error_handler ip (fun ~from:_ msg -> handle_icmp_error t msg);
  t

let snd_una c = c.snd_una
let snd_nxt c = c.snd_nxt
let rcv_nxt c = c.rcv_nxt
let ooo_segments c = List.length c.ooo
let rto_us c = Rto.rto c.rto
let snd_wscale c = c.snd_wscale
let rcv_wscale c = c.rcv_wscale
let sack_enabled c = c.sack_ok
let sacked_bytes c = Sack.sacked_bytes c.scoreboard
