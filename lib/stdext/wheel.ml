(* Hashed timing wheel (Varghese & Lauck 1987).

   Entries are keyed by absolute deadline and a tie-breaking sequence
   number; each slot holds an unsorted singly-linked list of the entries
   whose deadline hashes there ([at / granularity mod slots]).  Insertion
   is O(1) — no sifting, no restructuring — which is what makes wheels
   beat heaps for timer-heavy workloads where most entries are cancelled
   (the owner just flags its value dead and discards it when it surfaces,
   paying nothing at cancel time).

   [min_key]/[min_seq]/[pop_min] expose exact (deadline, seq) ordering, so
   a caller merging the wheel with another queue (the engine's binary
   heap) preserves global deterministic pop order.  Ordered draining is
   amortised by batch extraction: when the earliest entry is needed, the
   whole current tick's worth of cells is unlinked from its slot in one
   pass, sorted, and then served pop by pop — each cell is touched O(1)
   times on its way through, instead of the slot chain being re-scanned
   for every pop. *)

type 'a cell = {
  c_at : int;
  c_seq : int;
  c_v : 'a;
  mutable c_next : 'a cell option;
}

type 'a t = {
  slots : 'a cell option array;
  granularity : int;
  mutable count : int;
  mutable hint : int; (* lower bound on the earliest deadline in the slots *)
  mutable due : 'a cell list; (* extracted batch, sorted: one tick's cells *)
  mutable due_tick : int; (* the batch's tick; meaningless when [due] = [] *)
}

let create ?(slots = 1024) ?(granularity = 2048) () =
  if slots <= 0 || granularity <= 0 then invalid_arg "Wheel.create";
  {
    slots = Array.make slots None;
    granularity;
    count = 0;
    hint = max_int;
    due = [];
    due_tick = 0;
  }

let horizon t = Array.length t.slots * t.granularity [@@fastpath]
let length t = t.count [@@fastpath]

let slot_of t at = at / t.granularity mod Array.length t.slots

let cell_order a b =
  if a.c_at <> b.c_at then compare a.c_at b.c_at else compare a.c_seq b.c_seq

(* The batch invariants: [due] holds every resident cell of tick
   [due_tick] and nothing else, and [hint] is a lower bound on the
   deadlines still in the slots.  [add] keeps the first invariant by
   diverting same-tick insertions into the batch (bounded: one tick's
   worth), and the second by lowering [hint].  The batch is the global
   minimum whenever its head is strictly below [hint]; if an insertion
   undercuts the batch's tick, [min_cell] rescans and either re-extracts
   or pushes the premature batch back into its slot. *)
let rec insert_sorted cell = function
  | [] -> [ cell ]
  | c :: _ as l when cell_order cell c < 0 -> cell :: l
  | c :: rest -> c :: insert_sorted cell rest

let add t ~at ~seq v =
  if at < 0 then invalid_arg "Wheel.add: negative deadline";
  let cell = { c_at = at; c_seq = seq; c_v = v; c_next = None } in
  t.count <- t.count + 1;
  if t.due <> [] && at / t.granularity = t.due_tick then
    t.due <- insert_sorted cell t.due
  else begin
    let i = slot_of t at in
    cell.c_next <- t.slots.(i);
    t.slots.(i) <- Some cell;
    if at < t.hint then t.hint <- at
  end

(* Unlink every cell of round [tick] from slot [i]; returns them sorted.
   Cells of other rounds sharing the slot are left chained in place. *)
let extract_tick t i ~tick =
  let batch = ref [] in
  let keep_head = ref None in
  let keep_tail = ref None in
  let rec walk = function
    | None -> ()
    | Some c ->
        let next = c.c_next in
        if c.c_at / t.granularity = tick then batch := c :: !batch
        else begin
          c.c_next <- None;
          (match !keep_tail with
          | None -> keep_head := Some c
          | Some p -> p.c_next <- Some c);
          keep_tail := Some c
        end;
        walk next
  in
  walk t.slots.(i);
  t.slots.(i) <- !keep_head;
  List.sort cell_order !batch

(* Earliest occupied slot tick: scan forward from the hint for at most
   one rotation, then fall back to a full sweep for the sparse
   all-far-future case.  [max_int] when the slots are empty. *)
let earliest_slot_tick t =
  let n = Array.length t.slots in
  let t0 = t.hint / t.granularity in
  let tick = ref t0 in
  let found = ref false in
  while (not !found) && !tick < t0 + n do
    let i = !tick mod n in
    let rec hit = function
      | None -> false
      | Some c -> c.c_at / t.granularity = !tick || hit c.c_next
    in
    if hit t.slots.(i) then found := true else incr tick
  done;
  if not !found then begin
    (* Every slot entry is more than a rotation past the hint: locate
       the global minimum directly. *)
    let best = ref max_int in
    Array.iter
      (fun head ->
        let rec walk = function
          | None -> ()
          | Some c ->
              if c.c_at < !best then best := c.c_at;
              walk c.c_next
        in
        walk head)
      t.slots;
    if !best < max_int then begin
      tick := !best / t.granularity;
      found := true
    end
  end;
  if !found then !tick else max_int

let extract_into_due t tick =
  let n = Array.length t.slots in
  let batch = extract_tick t (tick mod n) ~tick in
  t.due <- batch;
  t.due_tick <- tick;
  (* The slots now hold nothing earlier than the next tick. *)
  t.hint <- (tick + 1) * t.granularity

let min_cell t =
  (match t.due with
  | [] ->
      if t.count > 0 then begin
        let tick = earliest_slot_tick t in
        if tick < max_int then extract_into_due t tick else t.hint <- max_int
      end
  | head :: _ ->
      (* The batch head rules while it is strictly below the slot lower
         bound; once an insertion undercuts that, rescan. *)
      if t.hint <= head.c_at then begin
        let tick = earliest_slot_tick t in
        if tick > t.due_tick then
          (* Nothing in the slots precedes the batch after all; the scan
             bought a tighter bound. *)
          t.hint <- (if tick = max_int then max_int else tick * t.granularity)
        else if tick = t.due_tick then begin
          (* Same tick: fold the slot cells into the batch. *)
          let n = Array.length t.slots in
          let more = extract_tick t (tick mod n) ~tick in
          t.due <- List.merge cell_order t.due more;
          t.hint <- (tick + 1) * t.granularity
        end
        else begin
          (* The batch was extracted prematurely (a far-future tick);
             push it back into its slot and take the nearer one. *)
          let i = slot_of t (t.due_tick * t.granularity) in
          List.iter
            (fun c ->
              c.c_next <- t.slots.(i);
              t.slots.(i) <- Some c)
            t.due;
          t.due <- [];
          extract_into_due t tick
        end
      end);
  match t.due with [] -> None | c :: _ -> Some c

(* The amortised batch extraction inside [min_cell] allocates (sorting a
   tick's cells); the amortised-O(1) surface below is the fast path. *)
let min_key t =
  match (min_cell t [@fastpath.exempt]) with Some c -> c.c_at | None -> max_int
[@@fastpath]

let min_seq t =
  match (min_cell t [@fastpath.exempt]) with Some c -> c.c_seq | None -> max_int
[@@fastpath]

let pop_min t =
  match (min_cell t [@fastpath.exempt]) with
  | None -> raise Not_found
  | Some cell ->
      (match t.due with
      | _ :: rest -> t.due <- rest
      | [] -> assert false);
      t.count <- t.count - 1;
      if t.count = 0 then t.hint <- max_int;
      cell.c_v
[@@fastpath]
