lib/packet/tcp_wire.mli: Addr Format
