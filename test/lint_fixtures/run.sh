#!/bin/sh
# Lint test driver, run from `dune runtest`:
#   1. the real library sources must lint clean (source rules; the
#      cmt-based rules need built artifacts and run under `make lint`);
#   2. every fixture must fail the lint with exactly the golden findings.
set -eu
LINT="$1"

"$LINT" --allow ../../bin/lint/lint.allow $(find ../../lib -name '*.ml' | sort) \
  || { echo "real lib/ sources no longer lint clean" >&2; exit 1; }

out=fixtures.out
: > "$out"
for f in bad_*.ml; do
  base=${f%.ml}
  ocamlc -bin-annot -c "$f"
  if "$LINT" --no-mli "$f" "$base.cmt" >> "$out" 2>/dev/null; then
    echo "fixture $f unexpectedly linted clean" >&2
    exit 1
  fi
done
diff -u expected.txt "$out"
