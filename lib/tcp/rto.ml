type t = {
  min_rto : int;
  max_rto : int;
  mutable srtt : int option;
  mutable rttvar : int;
  mutable base_rto : int;
  mutable shift : int; (* backoff exponent *)
}

let create ?(initial_rto_us = 1_000_000) ?(min_rto_us = 200_000)
    ?(max_rto_us = 60_000_000) () =
  {
    min_rto = min_rto_us;
    max_rto = max_rto_us;
    srtt = None;
    rttvar = 0;
    base_rto = initial_rto_us;
    shift = 0;
  }

let clamp t v = min t.max_rto (max t.min_rto v) [@@fastpath]

let sample t rtt =
  (match t.srtt with
  | None ->
      (* First measurement (RFC 6298 2.2). *)
      t.srtt <- Some rtt;
      t.rttvar <- rtt / 2
  | Some srtt ->
      (* RTTVAR := 3/4 RTTVAR + 1/4 |SRTT - R|; SRTT := 7/8 SRTT + 1/8 R *)
      t.rttvar <- ((3 * t.rttvar) + abs (srtt - rtt)) / 4;
      t.srtt <- Some (((7 * srtt) + rtt) / 8));
  (match t.srtt with
  | Some srtt -> t.base_rto <- clamp t (srtt + max 1 (4 * t.rttvar))
  | None -> ());
  t.shift <- 0

let rto t = min t.max_rto (t.base_rto lsl t.shift) [@@fastpath]

let backoff t = if t.base_rto lsl t.shift < t.max_rto then t.shift <- t.shift + 1 [@@fastpath]

let reset_backoff t = t.shift <- 0 [@@fastpath]

let srtt t = t.srtt

let rttvar t = match t.srtt with None -> None | Some _ -> Some t.rttvar
