lib/packet/checksum.mli:
