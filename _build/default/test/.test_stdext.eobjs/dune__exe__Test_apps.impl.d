test/test_apps.ml: Alcotest Apps Bytes Catenet Engine List Netsim QCheck QCheck_alcotest Stdext Tcp
