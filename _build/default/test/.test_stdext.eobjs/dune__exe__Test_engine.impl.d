test/test_engine.ml: Alcotest Buffer Engine List Printf
