lib/routing/rt_msg.ml: Format List Packet Printf Stdext
