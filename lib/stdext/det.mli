(** Deterministic views over hash tables.

    [Hashtbl.iter]/[fold] visit bindings in unspecified order; the
    catenet-lint determinism pass bans them bare in [lib/] because an
    iteration order that reaches the wire, the event queue or
    serialized output breaks bit-for-bit replay.  Use these helpers at
    such sites: they snapshot the bindings and visit them sorted by
    key.  Sites whose observable result really is order-independent
    (commutative folds, collect-then-sort, bulk timer cancellation)
    instead annotate the call with [@determinism.commutative].

    Cost: one list of the live bindings plus a sort — fine everywhere
    off the packet fast path (periodic protocol timers, queries,
    serialization), which is the only place these belong. *)

val bindings : ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings, in unspecified order (but order-independent to
    consume if the caller sorts or folds commutatively). *)

val sorted_bindings :
  compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings sorted by key under [compare]. *)

val sorted_iter :
  compare:('a -> 'a -> int) -> ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
(** [sorted_iter ~compare f h] applies [f] to every binding in
    ascending key order.  Unlike [Hashtbl.iter], [f] may add or remove
    bindings in [h]: it runs over a snapshot. *)

val sorted_keys : compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> 'a list
(** The keys, sorted. *)
