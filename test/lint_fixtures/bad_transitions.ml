(* Deliberately broken: the declared diagram and the implementation
   disagree in every direction the transitions pass checks. *)
type st = Idle | Active | Draining | Closed

let st_transitions =
  [ (* state, event, state' *)
    ("Idle", "start", "Active");
    ("Active", "drain", "Draining");
    ("Draining", "flushed", "Closed");
    ("Ghost", "haunt", "Idle") ]

type cell = { mutable st : st }

let start c =
  match c.st with
  | Idle -> c.st <- Active
  | Active | Draining | Closed -> ()

let kill c = c.st <- Closed

let resurrect c =
  match c.st with
  | Closed -> c.st <- Active
  | Idle | Active | Draining -> ()
