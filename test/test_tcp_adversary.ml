(* Adversarial conformance: a seeded hostile host injects forged RSTs,
   in-window SYNs, stale duplicates, out-of-window data and ACK-range
   probes into a live bulk transfer, spoofing the peer's address.  The
   RFC 5961 hardening must hold: zero connections killed by forgeries,
   the transfer completes intact, every guard counter fires, and the
   fast path stays byte-identical to the slow path while under fire. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Internet = Catenet.Internet
module Wire = Packet.Tcp_wire
module Ipv4 = Packet.Ipv4
module Seq = Tcp.Seq
module Rng = Stdext.Rng

type outcome = {
  o_finished : bool;
  o_received : int;
  o_intact : bool;
  o_close : string;
  o_injected : int;
  o_challenges : int;
  o_rst_rejected : int;
  o_acks_dropped : int;
  o_segs_out : int;
  o_retransmits : int;
  o_clock : int;
}

let pp_outcome o =
  Printf.sprintf
    "finished=%b received=%d intact=%b close=%s injected=%d challenges=%d \
     rst_rejected=%d acks_dropped=%d segs_out=%d rexmit=%d clock=%d"
    o.o_finished o.o_received o.o_intact o.o_close o.o_injected o.o_challenges
    o.o_rst_rejected o.o_acks_dropped o.o_segs_out o.o_retransmits o.o_clock

(* Bulk transfer a -> b through a gateway, with Mallory attached to the
   same gateway forging segments that claim to come from b.  The attacker
   reads the victim's sequence state (worst case for the defense: a real
   blind attacker knows less). *)
let run_attacked ~fast ~seed ~hostile ~total =
  let t = Internet.create ~seed ~routing:Internet.Static () in
  let a = Internet.add_host t "a" in
  let g = Internet.add_gateway t "g" in
  let b = Internet.add_host t "b" in
  let m = Internet.add_host t "mallory" in
  let profile = Netsim.profile "adv" ~delay_us:1_000 in
  ignore (Internet.connect t profile a.Internet.h_node g.Internet.g_node);
  ignore (Internet.connect t profile g.Internet.g_node b.Internet.h_node);
  ignore (Internet.connect t profile m.Internet.h_node g.Internet.g_node);
  Internet.start t;
  Tcp.set_fast_path a.Internet.h_tcp fast;
  Tcp.set_fast_path b.Internet.h_tcp fast;
  Engine.set_timer_wheel (Internet.engine t) fast;
  let a_addr = Internet.addr_of t a.Internet.h_node in
  let b_addr = Internet.addr_of t b.Internet.h_node in
  let pseed = 7 * seed in
  let server = Apps.Bulk.serve b.Internet.h_tcp ~port:80 ~seed:pseed in
  let sender =
    Apps.Bulk.start a.Internet.h_tcp ~dst:b_addr ~dst_port:80 ~seed:pseed
      ~total ()
  in
  let conn = Apps.Bulk.conn sender in
  let close_reason = ref "open" in
  Tcp.on_close conn (fun r ->
      close_reason := Format.asprintf "%a" Tcp.pp_close_reason r);
  let rng = Rng.create (seed lxor 0x5EED) in
  let injected = ref 0 in
  (* Forge one hostile segment aimed at a's end of the connection,
     spoofed as coming from b. *)
  let forge () =
    let rcv = Tcp.rcv_nxt conn and una = Tcp.snd_una conn in
    let sport = 80 and dport = Tcp.local_port conn in
    let seg =
      match Rng.int rng 6 with
      | 0 ->
          (* In-window RST, inexact seq: the classic blind reset. *)
          Wire.make
            ~seq:(Seq.add rcv (1 + Rng.int rng 4096))
            ~flags:(Wire.flags ~rst:true ())
            ~src_port:sport ~dst_port:dport ()
      | 1 ->
          (* In-window SYN: the blind teardown of RFC 793 p.71. *)
          Wire.make
            ~seq:(Seq.add rcv (Rng.int rng 4096))
            ~flags:(Wire.flags ~syn:true ())
            ~window:4096 ~src_port:sport ~dst_port:dport ()
      | 2 ->
          (* Stale duplicate data, entirely below rcv_nxt: a replayed old
             segment.  (Fresh forged *data* is deliberately out of scope:
             RFC 5961 hardens RST/SYN/ACK, not payload injection.) *)
          let back = 2 + Rng.int rng 2000 in
          Wire.make
            ~seq:(Seq.add rcv (-back))
            ~ack_n:una
            ~flags:(Wire.flags ~ack:true ())
            ~window:8192
            ~payload:(Bytes.make (1 + Rng.int rng (min (back - 1) 64)) '\xaa')
            ~src_port:sport ~dst_port:dport ()
      | 3 ->
          (* Data far outside the window. *)
          Wire.make
            ~seq:(Seq.add rcv (1_000_000 + Rng.int rng 1_000_000))
            ~ack_n:una
            ~flags:(Wire.flags ~ack:true ())
            ~window:8192 ~payload:(Bytes.make 32 '\xbb') ~src_port:sport
            ~dst_port:dport ()
      | 4 ->
          (* ACK probe far below the validity window (RFC 5961 §5.2). *)
          Wire.make
            ~seq:(Seq.add rcv (Rng.int rng 1024))
            ~ack_n:(Seq.add una (-(1_000_000 + Rng.int rng 1_000_000)))
            ~flags:(Wire.flags ~ack:true ())
            ~window:8192 ~src_port:sport ~dst_port:dport ()
      | _ ->
          (* ACK of data never sent. *)
          Wire.make
            ~seq:(Seq.add rcv (Rng.int rng 1024))
            ~ack_n:(Seq.add una (1_000_000 + Rng.int rng 1_000_000))
            ~flags:(Wire.flags ~ack:true ())
            ~window:8192 ~src_port:sport ~dst_port:dport ()
    in
    let bytes = Wire.encode ~src:b_addr ~dst:a_addr seg in
    ignore
      (Ip.Stack.send m.Internet.h_ip ~src:b_addr ~proto:Ipv4.Proto.Tcp
         ~dst:a_addr bytes);
    incr injected
  in
  let eng = Internet.engine t in
  let rec barrage () =
    if !injected < hostile && Tcp.state conn <> Tcp.Closed then begin
      for _ = 1 to 10 do forge () done;
      ignore (Engine.Timer.start eng ~after:500 barrage)
    end
  in
  (* Start once the handshake has had a chance to complete. *)
  ignore (Engine.Timer.start eng ~after:10_000 barrage);
  Internet.run_for t 120.0;
  let received, intact =
    match Apps.Bulk.transfers server with
    | [ tr ] -> (tr.Apps.Bulk.received, tr.Apps.Bulk.intact)
    | _ -> (-1, false)
  in
  let g = Tcp.instance_stats a.Internet.h_tcp in
  let st = Tcp.stats conn in
  {
    o_finished = Apps.Bulk.finished sender;
    o_received = received;
    o_intact = intact;
    o_close = !close_reason;
    o_injected = !injected;
    o_challenges = g.Tcp.challenge_acks_out;
    o_rst_rejected = g.Tcp.rst_rejected_inexact;
    o_acks_dropped = g.Tcp.dropped_acks_invalid;
    o_segs_out = st.Tcp.segs_out;
    o_retransmits = st.Tcp.retransmits;
    o_clock = Engine.now (Internet.engine t);
  }

let test_fuzz_no_kills () =
  let o = run_attacked ~fast:true ~seed:42 ~hostile:10_000 ~total:200_000 in
  check Alcotest.bool
    (Printf.sprintf "injected >= 10^4 (%d)" o.o_injected)
    true
    (o.o_injected >= 10_000);
  check Alcotest.bool (pp_outcome o) true (o.o_finished && o.o_intact);
  check Alcotest.int "all bytes delivered" 200_000 o.o_received;
  check Alcotest.bool "never reset" true (o.o_close <> "reset");
  check Alcotest.bool "rst guard fired" true (o.o_rst_rejected > 0);
  check Alcotest.bool "challenge acks sent" true (o.o_challenges > 0);
  check Alcotest.bool "invalid acks dropped" true (o.o_acks_dropped > 0)

let test_exact_rst_still_works () =
  (* The guard must not break legitimate resets: an attacker who really
     knows rcv_nxt exactly (here: reads it) still lands the RST. *)
  let t = Internet.create ~seed:5 ~routing:Internet.Static () in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  let m = Internet.add_host t "mallory" in
  let g = Internet.add_gateway t "g" in
  let profile = Netsim.profile "adv" ~delay_us:1_000 in
  ignore (Internet.connect t profile a.Internet.h_node g.Internet.g_node);
  ignore (Internet.connect t profile g.Internet.g_node b.Internet.h_node);
  ignore (Internet.connect t profile m.Internet.h_node g.Internet.g_node);
  Internet.start t;
  let b_addr = Internet.addr_of t b.Internet.h_node in
  let a_addr = Internet.addr_of t a.Internet.h_node in
  ignore (Apps.Bulk.serve b.Internet.h_tcp ~port:80 ~seed:3);
  let sender =
    Apps.Bulk.start a.Internet.h_tcp ~dst:b_addr ~dst_port:80 ~seed:3
      ~total:5_000_000 ()
  in
  let conn = Apps.Bulk.conn sender in
  let close_reason = ref None in
  Tcp.on_close conn (fun r -> close_reason := Some r);
  Internet.run_for t 0.05;
  check Alcotest.bool "established" true (Tcp.state conn = Tcp.Established);
  let seg =
    Wire.make ~seq:(Tcp.rcv_nxt conn)
      ~flags:(Wire.flags ~rst:true ())
      ~src_port:80 ~dst_port:(Tcp.local_port conn) ()
  in
  ignore
    (Ip.Stack.send m.Internet.h_ip ~src:b_addr ~proto:Ipv4.Proto.Tcp
       ~dst:a_addr
       (Wire.encode ~src:b_addr ~dst:a_addr seg));
  Internet.run_for t 0.1;
  check Alcotest.bool "exact RST kills" true (!close_reason = Some Tcp.Reset)

let prop_fast_slow_agree_under_attack =
  (* Whatever the hostile mix does, the fast path must remain
     observationally identical to the slow path. *)
  QCheck.Test.make ~name:"fast path identical to slow path under attack"
    ~count:6
    QCheck.(1 -- 1_000)
    (fun seed ->
      let fast = run_attacked ~fast:true ~seed ~hostile:600 ~total:60_000 in
      let slow = run_attacked ~fast:false ~seed ~hostile:600 ~total:60_000 in
      fast = slow && fast.o_finished && fast.o_intact
      && fast.o_close <> "reset")

let () =
  Alcotest.run "tcp-adversary"
    [
      ( "hostile-peer",
        [
          Alcotest.test_case "10^4 forgeries, zero kills" `Quick
            test_fuzz_no_kills;
          Alcotest.test_case "exact rst still resets" `Quick
            test_exact_rst_still_works;
          qcheck prop_fast_slow_agree_under_attack;
        ] );
    ]
