module Addr = Packet.Addr
module Prefix = Addr.Prefix

type config = {
  hello_us : int;
  dead_count : int;
  refresh_us : int;
  max_age_us : int;
  port : int;
}

let default_config =
  {
    hello_us = 1_000_000;
    dead_count = 3;
    refresh_us = 15_000_000;
    max_age_us = 60_000_000;
    port = 521;
  }

type stats = {
  mutable hellos_sent : int;
  mutable lsas_originated : int;
  mutable lsas_flooded : int;
  mutable lsas_received : int;
  mutable spf_runs : int;
  mutable bad_messages : int;
}

type adjacency = {
  a_iface : Netsim.iface;
  a_addr : Addr.t;
  a_cost : int;
  mutable a_router_id : int32 option; (* learned from hellos *)
  mutable a_last_hello : int;
  mutable a_alive : bool;
}

type lsdb_entry = { lsa : Rt_msg.lsa; mutable received_at : int }

type t = {
  udp : Udp.t;
  ip : Ip.Stack.t;
  eng : Engine.t;
  config : config;
  id : int32;
  mutable adjacencies : adjacency list;
  lsdb : (int32, lsdb_entry) Hashtbl.t;
  mutable seq : int;
  mutable installed : Prefix.t list;
  mutable installed_metrics : (Prefix.t * int) list;
  mutable externals : (Prefix.t * int) list;
  stats : stats;
  mutable sock : Udp.socket option;
  mutable started : bool;
}

let stats t = t.stats
let lsdb_size t = Hashtbl.length t.lsdb
let router_id t = Addr.of_int32 t.id

let create ?(config = default_config) udp =
  let ip = Udp.stack udp in
  {
    udp;
    ip;
    eng = Ip.Stack.engine ip;
    config;
    id = Addr.to_int32 (Ip.Stack.primary_addr ip);
    adjacencies = [];
    lsdb = Hashtbl.create 32;
    seq = 0;
    installed = [];
    installed_metrics = [];
    externals = [];
    stats =
      {
        hellos_sent = 0;
        lsas_originated = 0;
        lsas_flooded = 0;
        lsas_received = 0;
        spf_runs = 0;
        bad_messages = 0;
      };
    sock = None;
    started = false;
  }

let add_neighbor t iface addr ~cost =
  t.adjacencies <-
    {
      a_iface = iface;
      a_addr = addr;
      a_cost = cost;
      a_router_id = None;
      a_last_hello = min_int / 2;
      a_alive = false;
    }
    :: t.adjacencies

let alive_adjacencies t = List.filter (fun a -> a.a_alive) t.adjacencies

let send_to t (a : adjacency) msg =
  match t.sock with
  | None -> ()
  | Some sock ->
      ignore
        (Udp.sendto sock ~ttl:1 ~dst:a.a_addr ~dst_port:t.config.port
           (Rt_msg.encode msg))

(* Own connected prefixes, advertised as stubs. *)
let own_prefixes t =
  List.filter_map
    (fun (r : Ip.Route_table.route) ->
      if r.next_hop = None && r.metric = 0 then
        Some { Rt_msg.prefix = r.prefix; cost = 0 }
      else None)
    (Ip.Route_table.entries (Ip.Stack.table t.ip))
  @ List.map
      (fun (prefix, cost) -> { Rt_msg.prefix; cost })
      t.externals

let flood t ?except lsa =
  List.iter
    (fun a ->
      let skip = match except with Some i -> a.a_iface = i | None -> false in
      if not skip then begin
        t.stats.lsas_flooded <- t.stats.lsas_flooded + 1;
        send_to t a (Rt_msg.Lsa lsa)
      end)
    (alive_adjacencies t)

(* Dijkstra over the LSDB.  Edges require agreement: u->v is usable only
   if v's LSA also lists u (standard two-way connectivity check). *)
let spf t =
  t.stats.spf_runs <- t.stats.spf_runs + 1;
  let lists_back v u =
    match Hashtbl.find_opt t.lsdb v with
    | None -> false
    | Some e ->
        List.exists
          (fun (n : Rt_msg.ls_neighbor) -> Int32.equal n.neighbor_id u)
          e.lsa.Rt_msg.neighbors
  in
  let dist : (int32, int) Hashtbl.t = Hashtbl.create 16 in
  let first_hop : (int32, adjacency) Hashtbl.t = Hashtbl.create 16 in
  let pq = Stdext.Heap.create () in
  let seq = ref 0 in
  let push d node hop =
    Stdext.Heap.push pq ~key:d ~seq:!seq (node, hop);
    incr seq
  in
  Hashtbl.replace dist t.id 0;
  (* Seed with our alive adjacencies whose router id we know. *)
  List.iter
    (fun a ->
      match a.a_router_id with
      | Some rid when lists_back rid t.id || Hashtbl.mem t.lsdb rid ->
          push a.a_cost rid (Some a)
      | Some _ | None -> ())
    (alive_adjacencies t);
  let rec drain () =
    match Stdext.Heap.pop pq with
    | None -> ()
    | Some (d, _, (node, hop)) ->
        if not (Hashtbl.mem dist node) then begin
          Hashtbl.replace dist node d;
          (match hop with
          | Some a -> Hashtbl.replace first_hop node a
          | None -> ());
          (match Hashtbl.find_opt t.lsdb node with
          | None -> ()
          | Some e ->
              List.iter
                (fun (n : Rt_msg.ls_neighbor) ->
                  if
                    (not (Hashtbl.mem dist n.neighbor_id))
                    && lists_back n.neighbor_id node
                  then push (d + n.cost) n.neighbor_id hop)
                e.lsa.Rt_msg.neighbors)
        end;
        drain ()
  in
  drain ();
  (dist, first_hop)

(* Recompute routes and install the diff into the stack table. *)
let recompute t =
  let dist, first_hop = spf t in
  let table = Ip.Stack.table t.ip in
  (* Gather best (metric, adjacency) per prefix across all origins.
     Ties on metric break on the lower origin id — equal-cost prefixes
     advertised by two routers used to keep whichever origin the hash
     table happened to visit first, a replay hazard.  With the total
     (metric, origin) order the gathering is iteration-order
     independent. *)
  let best : (Prefix.t, int * Int32.t * adjacency) Hashtbl.t =
    Hashtbl.create 32
  in
  (Hashtbl.iter
     (fun origin e ->
       if not (Int32.equal origin t.id) then
         match (Hashtbl.find_opt dist origin, Hashtbl.find_opt first_hop origin)
         with
         | Some d, Some hop ->
             List.iter
               (fun (p : Rt_msg.ls_prefix) ->
                 let metric = d + p.cost in
                 match Hashtbl.find_opt best p.prefix with
                 | Some (m, o, _)
                   when m < metric
                        || (m = metric && Int32.compare o origin <= 0) ->
                     ()
                 | Some _ | None ->
                     Hashtbl.replace best p.prefix (metric, origin, hop))
               e.lsa.Rt_msg.prefixes
         | _ -> ())
     t.lsdb [@determinism.commutative]);
  (* Remove routes we installed that are no longer computed. *)
  List.iter
    (fun p -> if not (Hashtbl.mem best p) then Ip.Route_table.remove table p)
    t.installed;
  (* Install in prefix order, never displacing connected routes: the
     install order and the [installed]/[installed_metrics] lists (the
     latter is public via [routes]) stay canonical. *)
  let installed = ref [] in
  let installed_metrics = ref [] in
  List.iter
    (fun (prefix, (metric, _origin, hop)) ->
      let is_connected =
        match Ip.Route_table.find table prefix with
        | Some r -> r.next_hop = None && r.metric = 0
        | None -> false
      in
      let is_own_external =
        List.exists (fun (p, _) -> Prefix.equal p prefix) t.externals
      in
      if (not is_connected) && not is_own_external then begin
        Ip.Route_table.add table
          {
            Ip.Route_table.prefix;
            iface = hop.a_iface;
            next_hop = Some hop.a_addr;
            metric;
          };
        installed := prefix :: !installed;
        installed_metrics := (prefix, metric) :: !installed_metrics
      end)
    (Stdext.Det.sorted_bindings ~compare:Prefix.compare best);
  t.installed <- List.rev !installed;
  t.installed_metrics <- List.rev !installed_metrics

let originate t =
  t.seq <- t.seq + 1;
  t.stats.lsas_originated <- t.stats.lsas_originated + 1;
  let neighbors =
    List.filter_map
      (fun a ->
        match a.a_router_id with
        | Some rid when a.a_alive ->
            Some { Rt_msg.neighbor_id = rid; cost = a.a_cost }
        | Some _ | None -> None)
      t.adjacencies
  in
  let lsa =
    { Rt_msg.origin = t.id; seq = t.seq; neighbors; prefixes = own_prefixes t }
  in
  Hashtbl.replace t.lsdb t.id
    { lsa; received_at = Engine.now t.eng };
  flood t lsa;
  recompute t

let handle_hello t ~src rid =
  match
    List.find_opt (fun a -> Addr.equal a.a_addr src) t.adjacencies
  with
  | None -> t.stats.bad_messages <- t.stats.bad_messages + 1
  | Some a ->
      a.a_last_hello <- Engine.now t.eng;
      let newly_up = not a.a_alive in
      let id_changed =
        match a.a_router_id with
        | Some old -> not (Int32.equal old rid)
        | None -> true
      in
      a.a_router_id <- Some rid;
      a.a_alive <- true;
      if newly_up || id_changed then begin
        originate t;
        (* Give the new neighbor our view of the world, in origin order:
           these become wire messages, so their order must be canonical. *)
        Stdext.Det.sorted_iter ~compare:Int32.compare
          (fun _ e -> send_to t a (Rt_msg.Lsa e.lsa))
          t.lsdb
      end

let handle_lsa t ~iface (lsa : Rt_msg.lsa) =
  t.stats.lsas_received <- t.stats.lsas_received + 1;
  if not (Int32.equal lsa.origin t.id) then begin
    let fresher =
      match Hashtbl.find_opt t.lsdb lsa.origin with
      | None -> true
      | Some e -> lsa.seq > e.lsa.Rt_msg.seq
    in
    if fresher then begin
      Hashtbl.replace t.lsdb lsa.origin
        { lsa; received_at = Engine.now t.eng };
      flood t ~except:iface lsa;
      recompute t
    end
  end

(* Map a datagram source address back to the arrival adjacency's iface. *)
let iface_of_src t src =
  Option.map (fun a -> a.a_iface)
    (List.find_opt (fun a -> Addr.equal a.a_addr src) t.adjacencies)

let handle_message t ~src buf =
  match Rt_msg.decode buf with
  | Ok (Rt_msg.Hello rid) -> handle_hello t ~src rid
  | Ok (Rt_msg.Lsa lsa) -> (
      match iface_of_src t src with
      | Some iface -> handle_lsa t ~iface lsa
      | None -> t.stats.bad_messages <- t.stats.bad_messages + 1)
  | Ok (Rt_msg.Dv_update _) | Error _ ->
      t.stats.bad_messages <- t.stats.bad_messages + 1

let hello_tick t =
  let now = Engine.now t.eng in
  let deadline = t.config.dead_count * t.config.hello_us in
  let changed = ref false in
  List.iter
    (fun a ->
      if a.a_alive && now - a.a_last_hello > deadline then begin
        a.a_alive <- false;
        changed := true
      end)
    t.adjacencies;
  (* Age out stale LSAs.  Order-independent: collect, then remove. *)
  let stale = ref [] in
  (Hashtbl.iter
     (fun origin e ->
       if
         (not (Int32.equal origin t.id))
         && now - e.received_at > t.config.max_age_us
       then stale := origin :: !stale)
     t.lsdb [@determinism.commutative]);
  if !stale <> [] then begin
    List.iter (Hashtbl.remove t.lsdb) !stale;
    changed := true
  end;
  List.iter
    (fun a ->
      t.stats.hellos_sent <- t.stats.hellos_sent + 1;
      send_to t a (Rt_msg.Hello t.id))
    t.adjacencies;
  if !changed then originate t

let reachable t addr =
  let dist, _ = spf t in
  Hashtbl.mem dist (Addr.to_int32 addr)

let set_external_prefixes t externals =
  if externals <> t.externals then begin
    t.externals <- externals;
    if t.started then originate t
  end

(* Crash simulation: the LSDB, adjacency liveness and installed-route
   bookkeeping are all soft state and die with the gateway.  [t.seq]
   deliberately survives — a rebooted router re-originating from a
   higher sequence number is what lets neighbors accept its fresh LSA
   over the stale pre-crash copy still flooding around. *)
let reset t =
  Hashtbl.reset t.lsdb;
  List.iter
    (fun a ->
      a.a_alive <- false;
      a.a_router_id <- None)
    t.adjacencies;
  t.installed <- [];
  t.installed_metrics <- []

let routes t =
  t.installed_metrics
  @ List.filter_map
      (fun (r : Ip.Route_table.route) ->
        if r.next_hop = None && r.metric = 0 then Some (r.prefix, 0) else None)
      (Ip.Route_table.entries (Ip.Stack.table t.ip))

let start t =
  if not t.started then begin
    t.started <- true;
    let sock =
      Udp.bind t.udp ~port:t.config.port
        ~recv:(fun ~src ~src_port:_ buf -> handle_message t ~src buf)
        ()
    in
    t.sock <- Some sock;
    originate t;
    let rec hello () =
      hello_tick t;
      Engine.after t.eng t.config.hello_us hello
    in
    let rec refresh () =
      originate t;
      Engine.after t.eng t.config.refresh_us refresh
    in
    Engine.after t.eng 1_000 hello;
    Engine.after t.eng t.config.refresh_us refresh
  end
