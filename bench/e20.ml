(* E20 — Accountability at internet scale: sketch accounting on the fast
   path.

   Goal 7 was dropped in 1988 because per-flow gateway state looked
   unaffordable.  This experiment prices it today.  One region gateway
   of the E17 100x100 topology carries every datagram of a
   million-distinct-flow workload (100 heavy UDP flows interleaved with
   a singleton tail churned over source ports), three times over the
   identical deterministic load:

     off     accounting disabled          -> throughput baseline
     sketch  count-min + space-saving     -> throughput + estimates
     exact   the unbounded Hashtbl ledger -> ground truth + memory bar

   Reported (and gated in bin/check.sh on the committed
   BENCH_accounting.json): sketch-mode datagrams/s >= 90% of
   accounting-off, byte-weighted error on the true top-100 flows <= 1%,
   and sketch resident memory <= 10% of the exact table's. *)

open Catenet

let heavy_flows = 100
let full_heavy_pkts = 1_200
let full_tail_flows = 1_050_000
let payload_size = 40 (* UDP payload; wire = 20 IP + 8 UDP + payload *)
let pace_us = 2

(* 32768x2 is the throughput sweet spot.  A datagram touches two cache
   lines of sketch (one per row; packet+byte counters share a line), and
   at 1 MB total the sketch stops evicting the forwarding path's own
   working set from L3 — a 4 MB sketch measurably slows the whole
   gateway.  Conservative update keeps two rows comfortably inside the
   1% top-100 error budget even at ~32 tail flows per slot: a tail
   datagram only bumps its minimum row, so heavy-hitter slots are almost
   never inflated by colliding tail traffic. *)
let sketch_mode =
  Ip.Accounting.Sketch { width = 32_768; depth = 2; top_k = 256 }

let cfg =
  { Topo.default_config with
    Topo.core = 8; chords = 4; regions = 100; hosts_per_region = 100 }

type outcome = {
  dps : float;
  acct : Ip.Accounting.t option;
  distinct : int;  (* distinct flows the workload generated *)
}

(* The whole workload aims at region 0, so its gateway forwards every
   datagram.  Senders sit one per other region; heavy flow k keeps a
   fixed port pair, tail flow j is a fresh (sender, src_port, dst_port)
   combination never repeated — flow churn via ports, as real traffic
   does it, not via host count. *)
let run_load ~mode ~heavy_pkts ~tail =
  let t = Topo.build cfg in
  let pool = Topo.pool t in
  let eng = Topo.engine t in
  let nregions = Topo.regions t in
  let nhosts = Topo.hosts_per_region t in
  let gw = Topo.region_gw t 0 in
  let acct =
    match mode with
    | None -> None
    | Some m -> Some (Ip.Stack.enable_accounting ~mode:m gw)
  in
  let nsenders = nregions - 1 in
  let senders =
    Array.init nsenders (fun k ->
        Topo.host_slot t ~region:(k + 1) ~index:(k mod nhosts))
  in
  let dsts =
    Array.init nsenders (fun k -> Topo.host_addr t ~region:0 ~index:(k mod nhosts))
  in
  let heavy_total = heavy_flows * heavy_pkts in
  let total = heavy_total + tail in
  let heavy_every = max 1 (total / max 1 heavy_total) in
  let payload = Bytes.make payload_size 'g' in
  let heavy_sent = ref 0 in
  let tail_sent = ref 0 in
  let rec send_next i =
    if i < total then begin
      let ok =
        if i mod heavy_every = 0 && !heavy_sent < heavy_total then begin
          let k = !heavy_sent mod heavy_flows in
          incr heavy_sent;
          Hostpool.send_udp pool
            senders.(k mod nsenders)
            ~dst:dsts.(k mod nsenders)
            ~src_port:(40_000 + k) ~dst_port:39_000 payload
        end
        else begin
          let j = !tail_sent in
          incr tail_sent;
          let p = j mod nsenders in
          let jj = j / nsenders in
          Hostpool.send_udp pool senders.(p) ~dst:dsts.(p)
            ~src_port:(1 + (jj mod 60_000))
            ~dst_port:(1 + (jj / 60_000))
            payload
        end
      in
      if not ok then failwith "E20: send refused at the interface";
      Engine.after eng pace_us (fun () -> send_next (i + 1))
    end
  in
  Engine.after eng 1 (fun () -> send_next 0);
  (* Three back-to-back runs share this process's heap; compact before
     each measured section so the later modes are not billed for the
     earlier modes' garbage. *)
  Gc.compact ();
  let wall0 = Unix.gettimeofday () in
  Engine.run eng;
  let wall = Unix.gettimeofday () -. wall0 in
  if Hostpool.rx_total pool <> total then
    failwith
      (Printf.sprintf "E20: delivered %d of %d datagrams"
         (Hostpool.rx_total pool) total);
  if Hostpool.rx_stray pool <> 0 then
    failwith
      (Printf.sprintf "E20: %d frames went astray" (Hostpool.rx_stray pool));
  { dps = float_of_int total /. wall; acct; distinct = !tail_sent + heavy_flows }

(* Byte-weighted relative error of the sketch's estimates over the
   exact ledger's true top-[n] flows: sum |est - true| / sum true.
   Count-min never underestimates, so each |est - true| = est - true. *)
let topk_error ~exact ~sketch ~n =
  let top = Ip.Accounting.flows ~limit:n exact in
  let num = ref 0.0 and den = ref 0.0 in
  List.iter
    (fun ((f : Ip.Accounting.flow), (u : Ip.Accounting.usage)) ->
      let est =
        match Ip.Accounting.lookup sketch f with
        | Some e -> e.Ip.Accounting.bytes
        | None -> 0
      in
      num := !num +. abs_float (float_of_int (est - u.Ip.Accounting.bytes));
      den := !den +. float_of_int u.Ip.Accounting.bytes)
    top;
  if !den = 0.0 then 0.0 else !num /. !den

let words acc = Obj.reachable_words (Obj.repr acc)

let run () =
  Util.banner "E20" "sketch accounting at scale"
    "count-min + space-saving heavy hitters account a million flows on \
     the fast path at <=1% top-100 error and a fraction of exact memory";
  let heavy_pkts = Util.scaled full_heavy_pkts in
  let tail = Util.scaled full_tail_flows in
  let off = run_load ~mode:None ~heavy_pkts ~tail in
  let sk = run_load ~mode:(Some sketch_mode) ~heavy_pkts ~tail in
  let ex = run_load ~mode:(Some Ip.Accounting.Exact) ~heavy_pkts ~tail in
  let sketch_acc = Option.get sk.acct in
  let exact_acc = Option.get ex.acct in
  let err = topk_error ~exact:exact_acc ~sketch:sketch_acc ~n:100 in
  let w_sketch = words sketch_acc in
  let w_exact = words exact_acc in
  let dps_ratio = sk.dps /. off.dps in
  let mem_ratio = float_of_int w_sketch /. float_of_int w_exact in
  let exact_flows = Ip.Accounting.flow_count exact_acc in
  let est_flows = Ip.Accounting.flow_count sketch_acc in
  Util.table
    [ "accounting"; "datagrams/s"; "flows"; "resident words" ]
    [
      [ "off"; Printf.sprintf "%.0f" off.dps; "-"; "-" ];
      [ "sketch 32768x2/top256"; Printf.sprintf "%.0f" sk.dps;
        string_of_int est_flows; string_of_int w_sketch ];
      [ "exact ledger"; Printf.sprintf "%.0f" ex.dps;
        string_of_int exact_flows; string_of_int w_exact ];
    ];
  Util.note
    "sketch throughput %.0f%% of off, top-100 byte error %.3f%%, memory \
     %.1f%% of exact at %d distinct flows (cardinality estimate %d)"
    (100.0 *. dps_ratio) (100.0 *. err) (100.0 *. mem_ratio) off.distinct
    est_flows;
  let open Trace.Json in
  Util.write_json "BENCH_accounting.json"
    (Obj
       [ ("experiment", Str "E20");
         ("distinct_flows", Int off.distinct);
         ("heavy_flows", Int heavy_flows);
         ("datagrams", Int ((heavy_flows * heavy_pkts) + tail));
         ("off_dps", Float off.dps);
         ("sketch_dps", Float sk.dps);
         ("exact_dps", Float ex.dps);
         ("dps_vs_off_pct", Float (100.0 *. dps_ratio));
         ("top100_byte_error_pct", Float (100.0 *. err));
         ("sketch_words", Int w_sketch);
         ("exact_words", Int w_exact);
         ("mem_vs_exact_pct", Float (100.0 *. mem_ratio));
         ("cardinality_estimate", Int est_flows);
         ("exact_flow_count", Int exact_flows);
         ("dps_floor_pct", Float 90.0);
         ("error_ceiling_pct", Float 1.0);
         ("mem_ceiling_pct", Float 10.0) ])
