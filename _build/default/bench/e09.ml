(* E9 — Realizations and resource control (Clark §9, plus the 1988 context:
   Jacobson's congestion control shipped the same year).

   "The architecture tried very hard not to constrain the range of
   services which the Internet could be engineered to provide" — the same
   architecture admits realizations with wildly different behaviour.  Four
   concurrent TCP flows share one bottleneck under three host realizations:
   pre-1988 TCP with no congestion control, Tahoe, and Reno.  The wire
   format is identical in all three; only host policy differs. *)

open Catenet

let flows = 4
let per_flow_bytes = 250_000

let run_variant cc =
  let tcp_config = { Tcp.default_config with Tcp.cc } in
  let t = Internet.create ~routing:Internet.Static ~tcp_config () in
  let g1 = Internet.add_gateway t "g1" in
  let g2 = Internet.add_gateway t "g2" in
  let bottleneck =
    Internet.connect t
      (Netsim.profile "bottleneck" ~bandwidth_bps:1_536_000 ~delay_us:10_000
         ~queue_capacity:20)
      g1.Internet.g_node g2.Internet.g_node
  in
  let senders =
    List.init flows (fun i ->
        let h = Internet.add_host t (Printf.sprintf "s%d" i) in
        ignore
          (Internet.connect t Netsim.Profiles.ethernet h.Internet.h_node
             g1.Internet.g_node);
        h)
  in
  let receivers =
    List.init flows (fun i ->
        let h = Internet.add_host t (Printf.sprintf "r%d" i) in
        ignore
          (Internet.connect t Netsim.Profiles.ethernet g2.Internet.g_node
             h.Internet.h_node);
        h)
  in
  Internet.start t;
  let seed = 13 in
  let runs =
    List.map2
      (fun (s : Internet.host) (r : Internet.host) ->
        ignore (Apps.Bulk.serve r.Internet.h_tcp ~port:20 ~seed);
        Apps.Bulk.start s.Internet.h_tcp
          ~dst:(Internet.addr_of t r.Internet.h_node)
          ~dst_port:20 ~seed ~total:per_flow_bytes ())
      senders receivers
  in
  Internet.run_for t 300.0;
  let goodputs =
    List.filter_map Apps.Bulk.goodput_bps runs
  in
  let finished = List.length (List.filter Apps.Bulk.finished runs) in
  let aggregate = List.fold_left ( +. ) 0.0 goodputs in
  let fairness =
    (* Jain's index over per-flow goodputs. *)
    match goodputs with
    | [] -> 0.0
    | gs ->
        let n = float_of_int (List.length gs) in
        let s = List.fold_left ( +. ) 0.0 gs in
        let s2 = List.fold_left (fun a g -> a +. (g *. g)) 0.0 gs in
        s *. s /. (n *. s2)
  in
  let retrans_bytes, first_bytes =
    List.fold_left
      (fun (r, f) run ->
        let st = Tcp.stats (Apps.Bulk.conn run) in
        (r + st.Tcp.bytes_retransmitted, f + st.Tcp.bytes_out))
      (0, 0) runs
  in
  let drops = (Netsim.link_stats (Internet.net t) bottleneck).Netsim.drops_queue in
  ( finished,
    aggregate,
    fairness,
    float_of_int retrans_bytes /. float_of_int (max 1 (first_bytes + retrans_bytes)),
    drops )

let run () =
  Util.banner "E9"
    "Realizations: host resource-control policy changes everything"
    "the architecture fixes the wire format, not the behaviour; congestion \
     control is a host realization choice";
  let rows =
    List.map
      (fun cc ->
        let finished, aggregate, fairness, waste, drops = run_variant cc in
        [
          Format.asprintf "%a" Tcp.pp_cc cc;
          Printf.sprintf "%d/%d" finished flows;
          Util.fkb aggregate;
          Printf.sprintf "%.3f" fairness;
          Util.fpct waste;
          string_of_int drops;
        ])
      [ Tcp.No_cc; Tcp.Tahoe; Tcp.Reno ]
  in
  Util.table
    [
      "realization"; "flows done"; "aggregate kB/s"; "jain fairness";
      "rexmit waste"; "bottleneck drops";
    ]
    rows;
  Util.note
    "no-cc hammers the bottleneck queue (drops, waste) — the congestion \
     collapse the late-80s Internet actually suffered; Tahoe/Reno trade a \
     little peak rate for order"
