(* Integration tests over the assembled catenet: addressing, multi-hop
   reachability, and the architecture's headline behaviours — TCP
   conversations surviving link failures and gateway crashes (goals 1 and
   the fate-sharing decision), plus minimal-host attachment (goal 6). *)

let check = Alcotest.check

module Internet = Catenet.Internet
module Addr = Packet.Addr
module Samples = Stdext.Stats.Samples

(* h1 - g1 - g2 - g3 - h2, with a backup path g1 - gb - g3. *)
type net = {
  t : Internet.t;
  h1 : Internet.host;
  h2 : Internet.host;
  g1 : Internet.gateway;
  g2 : Internet.gateway;
  g3 : Internet.gateway;
  gb : Internet.gateway;
  l_12 : Netsim.link_id;
  l_23 : Netsim.link_id;
  l_1b : Netsim.link_id;
  l_b3 : Netsim.link_id;
}

let build ?(routing = Internet.Static) () =
  let dv_config =
    {
      Routing.Dv.default_config with
      Routing.Dv.period_us = 1_000_000;
      timeout_us = 3_500_000;
      gc_us = 2_000_000;
      carrier_poll_us = 200_000;
    }
  in
  let t = Internet.create ~routing ~dv_config () in
  let h1 = Internet.add_host t "h1" in
  let h2 = Internet.add_host t "h2" in
  let g1 = Internet.add_gateway t "g1" in
  let g2 = Internet.add_gateway t "g2" in
  let g3 = Internet.add_gateway t "g3" in
  let gb = Internet.add_gateway t "gb" in
  let p = Netsim.profile "core" ~delay_us:2_000 in
  ignore (Internet.connect t p h1.Internet.h_node g1.Internet.g_node);
  let l_12 = Internet.connect t p g1.Internet.g_node g2.Internet.g_node in
  let l_23 = Internet.connect t p g2.Internet.g_node g3.Internet.g_node in
  let l_1b = Internet.connect t p g1.Internet.g_node gb.Internet.g_node in
  let l_b3 = Internet.connect t p gb.Internet.g_node g3.Internet.g_node in
  ignore (Internet.connect t p g3.Internet.g_node h2.Internet.h_node);
  Internet.start t;
  { t; h1; h2; g1; g2; g3; gb; l_12; l_23; l_1b; l_b3 }

(* --- Assembly ---------------------------------------------------------------- *)

let test_addressing_scheme () =
  let n = build () in
  (* Link 0 is h1-g1: subnet 10.0.1.0/24, endpoints .1/.2. *)
  check Alcotest.string "subnet" "10.0.1.0/24"
    (Addr.Prefix.to_string (Internet.link_subnet n.t 0));
  let a_h1 = Internet.addr_on_link n.t 0 n.h1.Internet.h_node in
  let a_g1 = Internet.addr_on_link n.t 0 n.g1.Internet.g_node in
  check Alcotest.bool "distinct" false (Addr.equal a_h1 a_g1);
  check Alcotest.bool "both in subnet" true
    (Addr.Prefix.mem a_h1 (Internet.link_subnet n.t 0)
    && Addr.Prefix.mem a_g1 (Internet.link_subnet n.t 0))

let test_name_lookup () =
  let n = build () in
  let h = Internet.host n.t "h1" in
  check Alcotest.bool "host found" true (h.Internet.h_node = n.h1.Internet.h_node);
  let g = Internet.gateway n.t "g2" in
  check Alcotest.bool "gateway found" true (g.Internet.g_node = n.g2.Internet.g_node);
  (try
     ignore (Internet.host n.t "nonesuch");
     Alcotest.fail "expected Not_found"
   with Not_found -> ());
  try
    ignore (Internet.host n.t "g1");
    Alcotest.fail "host lookup of gateway should fail"
  with Not_found -> ()

let test_multihop_ping () =
  let n = build () in
  let samples =
    Internet.ping n.t ~from:n.h1
      (Internet.addr_of n.t n.h2.Internet.h_node)
      ~count:10 ~interval_us:50_000
  in
  Internet.run_for n.t 3.0;
  check Alcotest.int "all replies" 10 (Samples.count samples);
  (* 4 hops of 2 ms each way = at least 16 ms RTT. *)
  check Alcotest.bool "rtt sane" true
    (Samples.median samples >= 0.016 && Samples.median samples < 0.050)

(* --- Survivability (experiment E1's mechanism, at test scale) ----------------- *)

let test_tcp_survives_link_failure_with_dv () =
  let n = build ~routing:Internet.Distance_vector () in
  Internet.run_for n.t 6.0 (* let routing converge *);
  let server = Apps.Bulk.serve n.h2.Internet.h_tcp ~port:99 ~seed:8 in
  let sender =
    Apps.Bulk.start n.h1.Internet.h_tcp
      ~dst:(Internet.addr_of n.t n.h2.Internet.h_node)
      ~dst_port:99 ~seed:8 ~total:400_000 ()
  in
  (* Kill the primary path mid-transfer. *)
  Engine.after (Internet.engine n.t) (Engine.sec 1.0) (fun () ->
      Internet.fail_link n.t n.l_12);
  Internet.run_for n.t 120.0;
  check Alcotest.bool "transfer survived the failure" true
    (Apps.Bulk.finished sender);
  (match Apps.Bulk.transfers server with
  | [ tr ] ->
      check Alcotest.int "all bytes" 400_000 tr.Apps.Bulk.received;
      check Alcotest.bool "intact" true tr.Apps.Bulk.intact
  | l -> Alcotest.failf "expected 1 transfer, got %d" (List.length l));
  (* The connection was never reset: it is the same conn object, closed
     gracefully. *)
  check Alcotest.bool "no reset" true (Apps.Bulk.failed sender = None)

let test_tcp_survives_gateway_crash_with_dv () =
  (* Fate-sharing (E2's mechanism): the transit gateway g2 crashes and
     never comes back; the conversation reroutes via gb and completes,
     because no connection state lived in g2. *)
  let n = build ~routing:Internet.Distance_vector () in
  Internet.run_for n.t 6.0;
  let server = Apps.Bulk.serve n.h2.Internet.h_tcp ~port:99 ~seed:8 in
  let sender =
    Apps.Bulk.start n.h1.Internet.h_tcp
      ~dst:(Internet.addr_of n.t n.h2.Internet.h_node)
      ~dst_port:99 ~seed:8 ~total:400_000 ()
  in
  Engine.after (Internet.engine n.t) (Engine.sec 1.0) (fun () ->
      Internet.crash_node n.t n.g2.Internet.g_node);
  Internet.run_for n.t 120.0;
  check Alcotest.bool "survived gateway crash" true (Apps.Bulk.finished sender);
  match Apps.Bulk.transfers server with
  | [ tr ] -> check Alcotest.bool "intact" true tr.Apps.Bulk.intact
  | _ -> Alcotest.fail "expected one transfer"

let test_partition_then_heal () =
  let n = build ~routing:Internet.Distance_vector () in
  Internet.run_for n.t 6.0;
  (* Cut every path: TCP keeps retrying (it does not give up quickly), the
     partition heals, the transfer completes. *)
  let server = Apps.Bulk.serve n.h2.Internet.h_tcp ~port:99 ~seed:8 in
  let sender =
    Apps.Bulk.start n.h1.Internet.h_tcp
      ~dst:(Internet.addr_of n.t n.h2.Internet.h_node)
      ~dst_port:99 ~seed:8 ~total:150_000 ()
  in
  let eng = Internet.engine n.t in
  Engine.after eng (Engine.sec 1.0) (fun () ->
      Internet.fail_link n.t n.l_12;
      Internet.fail_link n.t n.l_1b);
  Engine.after eng (Engine.sec 8.0) (fun () ->
      Internet.heal_link n.t n.l_12);
  Internet.run_for n.t 180.0;
  check Alcotest.bool "survived the partition" true (Apps.Bulk.finished sender);
  match Apps.Bulk.transfers server with
  | [ tr ] -> check Alcotest.bool "intact" true tr.Apps.Bulk.intact
  | _ -> Alcotest.fail "expected one transfer"

(* --- Minimal host (goal 6) ------------------------------------------------------ *)

let test_minimal_udp_only_host () =
  (* A "minimal" host runs nothing but IP + UDP — no TCP, no routing
     protocol, one default route.  It must interoperate with a full host
     through a gateway.  This is the low-effort-attachment story. *)
  let t = Internet.create () in
  let full = Internet.add_host t "full" in
  let g = Internet.add_gateway t "g" in
  let p = Netsim.profile "p" in
  ignore (Internet.connect t p full.Internet.h_node g.Internet.g_node);
  (* Hand-rolled minimal node, below the Internet builder's host notion. *)
  let mini_node = Netsim.add_node (Internet.net t) "mini" in
  let link = Netsim.add_link (Internet.net t) p mini_node g.Internet.g_node in
  let mini_ip = Ip.Stack.create (Internet.net t) mini_node in
  let mini_addr = Addr.v 172 16 0 1 in
  Ip.Stack.configure_iface mini_ip 0 ~addr:mini_addr ~prefix_len:24;
  (* The gateway's new interface needs an address + connected route. *)
  let _, g_iface = Netsim.peer (Internet.net t) mini_node 0 in
  Ip.Stack.configure_iface g.Internet.g_ip g_iface ~addr:(Addr.v 172 16 0 2)
    ~prefix_len:24;
  Ip.Route_table.add (Ip.Stack.table mini_ip)
    {
      Ip.Route_table.prefix = Addr.Prefix.default;
      iface = 0;
      next_hop = Some (Addr.v 172 16 0 2);
      metric = 1;
    };
  let mini_udp = Udp.create mini_ip in
  Internet.start t;
  ignore link;
  (* Full host answers on a UDP port. *)
  let answered = ref false in
  ignore
    (Udp.bind full.Internet.h_udp ~port:7
       ~recv:(fun ~src ~src_port payload ->
         let s = Udp.bind full.Internet.h_udp ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
         ignore (Udp.sendto s ~dst:src ~dst_port:src_port payload))
       ());
  let sock =
    Udp.bind mini_udp
      ~recv:(fun ~src:_ ~src_port:_ payload ->
        answered := Bytes.to_string payload = "minimal")
      ()
  in
  ignore
    (Udp.sendto sock
       ~dst:(Internet.addr_of t full.Internet.h_node)
       ~dst_port:7 (Bytes.of_string "minimal"));
  Internet.run_for t 2.0;
  check Alcotest.bool "minimal host interoperates" true !answered

(* --- ToS end-to-end -------------------------------------------------------------- *)

let test_tos_carried_end_to_end () =
  let t = Internet.create () in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  ignore (Internet.connect t (Netsim.profile "p") a.Internet.h_node b.Internet.h_node);
  Internet.start t;
  let seen = ref None in
  Ip.Stack.register_proto b.Internet.h_ip (Packet.Ipv4.Proto.Other 50)
    (fun h _ -> seen := Some h.Packet.Ipv4.tos);
  ignore
    (Ip.Stack.send a.Internet.h_ip ~tos:Packet.Ipv4.Tos.Low_delay
       ~proto:(Packet.Ipv4.Proto.Other 50)
       ~dst:(Internet.addr_of t b.Internet.h_node)
       (Bytes.make 4 'q'));
  Internet.run_for t 1.0;
  check Alcotest.bool "low-delay ToS arrived" true
    (!seen = Some Packet.Ipv4.Tos.Low_delay)


(* --- Diagnostics and type-of-service mechanisms -------------------------------- *)

let test_traceroute () =
  let n = build () in
  let reports =
    Internet.traceroute n.t ~from:n.h1
      (Internet.addr_of n.t n.h2.Internet.h_node)
      ~max_ttl:10 ()
  in
  Internet.run_for n.t 10.0;
  (* Path h1 -> g1 -> (g2|gb) -> g3 -> h2: three gateway hops then the
     destination. *)
  let hops = !reports in
  check Alcotest.int "four hops" 4 (List.length hops);
  let last = List.nth hops 3 in
  check Alcotest.bool "destination reached" true last.Internet.hop_reached;
  List.iteri
    (fun i r ->
      check Alcotest.int "ttl ordering" (i + 1) r.Internet.hop_ttl;
      check Alcotest.bool "hop identified" true (r.Internet.hop_addr <> None);
      check Alcotest.bool "rtt recorded" true (r.Internet.hop_rtt <> None))
    hops;
  (* The first hop must be g1 (one of its addresses). *)
  match (List.hd hops).Internet.hop_addr with
  | Some a ->
      check Alcotest.bool "first hop is g1" true
        (Ip.Stack.has_addr n.g1.Internet.g_ip a)
  | None -> Alcotest.fail "no first hop"

let test_tos_priority_beats_queueing () =
  (* A congested bottleneck: low-delay ToS pings overtake the bulk queue;
     routine pings wait in line.  This is the per-hop half of goal 2. *)
  let run tos =
    let t = Internet.create () in
    let a = Internet.add_host t "a" in
    let b = Internet.add_host t "b" in
    let g1 = Internet.add_gateway t "g1" in
    let g2 = Internet.add_gateway t "g2" in
    ignore
      (Internet.connect t Netsim.Profiles.ethernet a.Internet.h_node
         g1.Internet.g_node);
    ignore
      (Internet.connect t
         (Netsim.profile "thin" ~bandwidth_bps:256_000 ~delay_us:5_000
            ~queue_capacity:40)
         g1.Internet.g_node g2.Internet.g_node);
    ignore
      (Internet.connect t Netsim.Profiles.ethernet g2.Internet.g_node
         b.Internet.h_node);
    Internet.start t;
    (* Saturating background bulk. *)
    ignore (Apps.Bulk.serve b.Internet.h_tcp ~port:21 ~seed:3);
    ignore
      (Apps.Bulk.start a.Internet.h_tcp
         ~dst:(Internet.addr_of t b.Internet.h_node)
         ~dst_port:21 ~seed:3 ~total:3_000_000 ());
    (* Probes with the requested ToS, sent during congestion. *)
    let delays = Stdext.Stats.Samples.create () in
    let sent = Hashtbl.create 16 in
    Ip.Stack.set_echo_reply_handler a.Internet.h_ip (fun ~id:_ ~seq ~payload:_ ->
        match Hashtbl.find_opt sent seq with
        | Some at ->
            Stdext.Stats.Samples.add delays
              (Engine.to_sec (Engine.now (Internet.engine t) - at))
        | None -> ());
    let eng = Internet.engine t in
    for i = 0 to 19 do
      Engine.after eng (Engine.sec (2.0 +. (0.2 *. float_of_int i))) (fun () ->
          Hashtbl.replace sent i (Engine.now eng);
          let msg =
            Packet.Icmp_wire.Echo_request
              { id = 7; seq = i; payload = Bytes.make 16 'q' }
          in
          ignore
            (Ip.Stack.send a.Internet.h_ip ~tos
               ~proto:Packet.Ipv4.Proto.Icmp
               ~dst:(Internet.addr_of t b.Internet.h_node)
               (Packet.Icmp_wire.encode msg)))
    done;
    Internet.run_for t 15.0;
    Stdext.Stats.Samples.median delays
  in
  let routine = run Packet.Ipv4.Tos.Routine in
  let low_delay = run Packet.Ipv4.Tos.Low_delay in
  check Alcotest.bool
    (Printf.sprintf "low-delay (%.1fms) beats routine (%.1fms)"
       (low_delay *. 1e3) (routine *. 1e3))
    true
    (low_delay < routine /. 2.0)

let () =
  Alcotest.run "internet"
    [
      ( "assembly",
        [
          Alcotest.test_case "addressing" `Quick test_addressing_scheme;
          Alcotest.test_case "name lookup" `Quick test_name_lookup;
          Alcotest.test_case "multihop ping" `Quick test_multihop_ping;
          Alcotest.test_case "tos end to end" `Quick test_tos_carried_end_to_end;
        ] );
      ( "survivability",
        [
          Alcotest.test_case "link failure" `Slow
            test_tcp_survives_link_failure_with_dv;
          Alcotest.test_case "gateway crash" `Slow
            test_tcp_survives_gateway_crash_with_dv;
          Alcotest.test_case "partition and heal" `Slow test_partition_then_heal;
        ] );
      ( "attachment",
        [ Alcotest.test_case "minimal host" `Quick test_minimal_udp_only_host ] );
      ( "diagnostics",
        [
          Alcotest.test_case "traceroute" `Quick test_traceroute;
          Alcotest.test_case "tos priority" `Quick test_tos_priority_beats_queueing;
        ] );
    ]
