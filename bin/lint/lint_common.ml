(* Shared plumbing for catenet-lint: findings, the allowlist, and the
   handful of Parsetree helpers every rule needs.

   A finding is (file, line, rule, message) and prints as

     file:line: [rule] message

   The allowlist file suppresses deliberate exceptions; each line is

     <rule> <file-basename> <message-substring...>

   and an entry that suppresses nothing is itself reported as stale, so
   the list can only shrink as the code improves. *)

type finding = { file : string; line : int; rule : string; message : string }

let findings : finding list ref = ref []

let report ~file ~line ~rule message =
  findings := { file; line; rule; message } :: !findings

let report_loc ~rule (loc : Location.t) message =
  report ~file:loc.loc_start.pos_fname ~line:loc.loc_start.pos_lnum ~rule
    message

(* ---------------------------------------------------------------- *)
(* Allowlist                                                        *)

type allow_entry = {
  a_rule : string;
  a_base : string;
  a_substr : string;
  a_lineno : int;
  mutable a_used : bool;
}

let load_allowlist path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let entries = ref [] in
    let lineno = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then begin
           match String.index_opt line ' ' with
           | None ->
               report ~file:path ~line:!lineno ~rule:"allowlist"
                 "malformed entry (want: <rule> <file> <substring>)"
           | Some i -> (
               let rule = String.sub line 0 i in
               let rest =
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1))
               in
               match String.index_opt rest ' ' with
               | None ->
                   report ~file:path ~line:!lineno ~rule:"allowlist"
                     "malformed entry (want: <rule> <file> <substring>)"
               | Some j ->
                   let base = String.sub rest 0 j in
                   let sub =
                     String.trim
                       (String.sub rest (j + 1) (String.length rest - j - 1))
                   in
                   entries :=
                     {
                       a_rule = rule;
                       a_base = base;
                       a_substr = sub;
                       a_lineno = !lineno;
                       a_used = false;
                     }
                     :: !entries)
         end
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= n - m do
      if String.sub s !i m = sub then found := true else incr i
    done;
    !found
  end

let apply_allowlist entries fs =
  List.filter
    (fun f ->
      let suppressed =
        List.exists
          (fun e ->
            let hit =
              e.a_rule = f.rule
              && e.a_base = Filename.basename f.file
              && contains_substring f.message e.a_substr
            in
            if hit then e.a_used <- true;
            hit)
          entries
      in
      not suppressed)
    fs

let stale_entries path entries =
  List.iter
    (fun e ->
      if not e.a_used then
        report ~file:path ~line:e.a_lineno ~rule:"allowlist"
          (Printf.sprintf "stale entry '%s %s %s' suppresses nothing" e.a_rule
             e.a_base e.a_substr))
    entries

(* ---------------------------------------------------------------- *)
(* Longident / path helpers                                         *)

let flatten_lid lid = Longident.flatten lid

(* "Stdext.Bytio.W.u16" -> last component, "Trace__Event.t" -> split the
   dune name-mangling double underscore too. *)
let split_path_name name =
  let dot_parts = String.split_on_char '.' name in
  List.concat_map
    (fun p ->
      (* split on "__" *)
      let out = ref [] in
      let buf = Buffer.create (String.length p) in
      let i = ref 0 in
      let n = String.length p in
      while !i < n do
        if !i + 1 < n && p.[!i] = '_' && p.[!i + 1] = '_' then begin
          if Buffer.length buf > 0 then out := Buffer.contents buf :: !out;
          Buffer.clear buf;
          i := !i + 2
        end
        else begin
          Buffer.add_char buf p.[!i];
          incr i
        end
      done;
      if Buffer.length buf > 0 then out := Buffer.contents buf :: !out;
      List.rev !out)
    dot_parts

let last_exn = function [] -> invalid_arg "last_exn" | l -> List.nth l (List.length l - 1)

let has_attr name (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs

(* Module-name of a source file: "tcp_wire.ml" -> "Tcp_wire". *)
let module_of_file path =
  let base = Filename.remove_extension (Filename.basename path) in
  String.capitalize_ascii base

let int_constant (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, _)) -> int_of_string_opt s
  | _ -> None

let string_constant (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None
