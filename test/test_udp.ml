(* Tests for the UDP transport: sockets, demux, ephemeral ports, checksums
   on the wire, port-unreachable generation. *)

let check = Alcotest.check

module Addr = Packet.Addr
module Prefix = Packet.Addr.Prefix
module Icmpw = Packet.Icmp_wire

(* Two hosts A and B joined by one link, each with a UDP instance. *)
type world = {
  eng : Engine.t;
  a : Udp.t;
  b : Udp.t;
  a_addr : Addr.t;
  b_addr : Addr.t;
  a_ip : Ip.Stack.t;
  b_ip : Ip.Stack.t;
}

let world ?(profile = Netsim.profile "link") () =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:5 eng in
  let na = Netsim.add_node net "a" in
  let nb = Netsim.add_node net "b" in
  ignore (Netsim.add_link net profile na nb);
  let a_ip = Ip.Stack.create net na in
  let b_ip = Ip.Stack.create net nb in
  let a_addr = Addr.v 10 0 1 1 and b_addr = Addr.v 10 0 1 2 in
  Ip.Stack.configure_iface a_ip 0 ~addr:a_addr ~prefix_len:24;
  Ip.Stack.configure_iface b_ip 0 ~addr:b_addr ~prefix_len:24;
  { eng; a = Udp.create a_ip; b = Udp.create b_ip; a_addr; b_addr; a_ip; b_ip }

let test_send_receive () =
  let w = world () in
  let got = ref [] in
  ignore
    (Udp.bind w.b ~port:5000
       ~recv:(fun ~src ~src_port payload ->
         got := (src, src_port, Bytes.to_string payload) :: !got)
       ());
  let sock = Udp.bind w.a ~port:6000 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  (match Udp.sendto sock ~dst:w.b_addr ~dst_port:5000 (Bytes.of_string "hi") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "sendto failed");
  Engine.run w.eng;
  match !got with
  | [ (src, 6000, "hi") ] ->
      check Alcotest.string "src addr" (Addr.to_string w.a_addr)
        (Addr.to_string src)
  | l -> Alcotest.failf "expected 1 datagram, got %d" (List.length l)

let test_reply_path () =
  let w = world () in
  let answered = ref false in
  ignore
    (Udp.bind w.b ~port:7
       ~recv:(fun ~src ~src_port payload ->
         (* Echo service: reply to whoever asked. *)
         let sock =
           Udp.bind w.b ~recv:(fun ~src:_ ~src_port:_ _ -> ()) ()
         in
         ignore (Udp.sendto sock ~dst:src ~dst_port:src_port payload))
       ());
  let client =
    Udp.bind w.a
      ~recv:(fun ~src:_ ~src_port:_ payload ->
        answered := Bytes.to_string payload = "echo me")
      ()
  in
  ignore (Udp.sendto client ~dst:w.b_addr ~dst_port:7 (Bytes.of_string "echo me"));
  Engine.run w.eng;
  check Alcotest.bool "round trip" true !answered

let test_port_demux () =
  let w = world () in
  let got1 = ref 0 and got2 = ref 0 in
  ignore (Udp.bind w.b ~port:1001 ~recv:(fun ~src:_ ~src_port:_ _ -> incr got1) ());
  ignore (Udp.bind w.b ~port:1002 ~recv:(fun ~src:_ ~src_port:_ _ -> incr got2) ());
  let s = Udp.bind w.a ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  ignore (Udp.sendto s ~dst:w.b_addr ~dst_port:1001 (Bytes.make 1 'x'));
  ignore (Udp.sendto s ~dst:w.b_addr ~dst_port:1002 (Bytes.make 1 'x'));
  ignore (Udp.sendto s ~dst:w.b_addr ~dst_port:1001 (Bytes.make 1 'x'));
  Engine.run w.eng;
  check Alcotest.int "port 1001" 2 !got1;
  check Alcotest.int "port 1002" 1 !got2

let test_ephemeral_ports_distinct () =
  let w = world () in
  let s1 = Udp.bind w.a ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  let s2 = Udp.bind w.a ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  check Alcotest.bool "distinct" true (Udp.port s1 <> Udp.port s2);
  check Alcotest.bool "in ephemeral range" true
    (Udp.port s1 >= 49152 && Udp.port s1 <= 65535)

let test_bind_conflict () =
  let w = world () in
  ignore (Udp.bind w.a ~port:9999 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) ());
  try
    ignore (Udp.bind w.a ~port:9999 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) ());
    Alcotest.fail "expected Bind_error"
  with Udp.Bind_error (Udp.Port_in_use 9999) -> ()

let test_bind_bad_port () =
  let w = world () in
  try
    ignore (Udp.bind w.a ~port:70000 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) ());
    Alcotest.fail "expected Bind_error"
  with Udp.Bind_error (Udp.Bad_port 70000) -> ()

(* Regression: with every ephemeral port bound, the allocator's scan used
   to wrap past its starting point without ever meeting its termination
   test and spin forever.  It must instead raise [No_free_ports] — and
   keep handing out ports again once one is released. *)
let test_ephemeral_exhaustion () =
  let w = world () in
  let socks = ref [] in
  for p = 49152 to 65535 do
    socks :=
      Udp.bind w.a ~port:p ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () :: !socks
  done;
  (try
     ignore (Udp.bind w.a ~recv:(fun ~src:_ ~src_port:_ _ -> ()) ());
     Alcotest.fail "expected No_free_ports"
   with Udp.Bind_error Udp.No_free_ports -> ());
  (* Free one port; allocation works again and picks exactly that one. *)
  (match !socks with [] -> assert false | s :: _ -> Udp.close s);
  let s = Udp.bind w.a ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  check Alcotest.int "reuses the freed port" 65535 (Udp.port s)

let test_sendto_closed () =
  let w = world () in
  let s = Udp.bind w.a ~port:4000 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  Udp.close s;
  match Udp.sendto s ~dst:w.b_addr ~dst_port:5000 (Bytes.of_string "x") with
  | Error `Closed -> ()
  | Ok () -> Alcotest.fail "sendto on closed socket succeeded"
  | Error _ -> Alcotest.fail "wrong error for closed socket"

let test_close_releases_port () =
  let w = world () in
  let s = Udp.bind w.a ~port:4242 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  Udp.close s;
  (* Rebinding succeeds after close. *)
  ignore (Udp.bind w.a ~port:4242 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) ())

let test_no_port_generates_unreachable () =
  let w = world () in
  let errors = ref [] in
  Ip.Stack.add_error_handler w.a_ip (fun ~from:_ msg -> errors := msg :: !errors);
  let s = Udp.bind w.a ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  ignore (Udp.sendto s ~dst:w.b_addr ~dst_port:1234 (Bytes.make 4 'x'));
  Engine.run w.eng;
  (match !errors with
  | [ Icmpw.Dest_unreachable { code = Icmpw.Port_unreachable; _ } ] -> ()
  | l -> Alcotest.failf "expected port-unreachable, got %d" (List.length l));
  check Alcotest.int "counted" 1 (Udp.stats w.b).Udp.no_port

let test_stats () =
  let w = world () in
  ignore (Udp.bind w.b ~port:1 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) ());
  let s = Udp.bind w.a ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  for _ = 1 to 3 do
    ignore (Udp.sendto s ~dst:w.b_addr ~dst_port:1 (Bytes.make 8 'x'))
  done;
  Engine.run w.eng;
  check Alcotest.int "out" 3 (Udp.stats w.a).Udp.datagrams_out;
  check Alcotest.int "in" 3 (Udp.stats w.b).Udp.datagrams_in

let test_large_datagram_fragments () =
  (* A UDP datagram bigger than the MTU goes through IP fragmentation and
     arrives whole. *)
  let w = world ~profile:(Netsim.profile "small" ~mtu:576) () in
  let got = ref None in
  ignore
    (Udp.bind w.b ~port:9
       ~recv:(fun ~src:_ ~src_port:_ payload -> got := Some payload)
       ());
  let s = Udp.bind w.a ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  let payload = Bytes.init 4000 (fun i -> Char.chr (i land 0xff)) in
  (match Udp.sendto s ~dst:w.b_addr ~dst_port:9 payload with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "sendto failed");
  Engine.run w.eng;
  match !got with
  | Some p -> check Alcotest.bool "intact" true (Bytes.equal p payload)
  | None -> Alcotest.fail "not delivered"

let test_loopback_to_self () =
  let w = world () in
  let got = ref 0 in
  ignore (Udp.bind w.a ~port:5 ~recv:(fun ~src:_ ~src_port:_ _ -> incr got) ());
  let s = Udp.bind w.a ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  ignore (Udp.sendto s ~dst:w.a_addr ~dst_port:5 (Bytes.make 1 'x'));
  Engine.run w.eng;
  check Alcotest.int "self delivery" 1 !got

let () =
  Alcotest.run "udp"
    [
      ( "sockets",
        [
          Alcotest.test_case "send/receive" `Quick test_send_receive;
          Alcotest.test_case "reply path" `Quick test_reply_path;
          Alcotest.test_case "port demux" `Quick test_port_demux;
          Alcotest.test_case "ephemeral ports" `Quick test_ephemeral_ports_distinct;
          Alcotest.test_case "bind conflict" `Quick test_bind_conflict;
          Alcotest.test_case "bind bad port" `Quick test_bind_bad_port;
          Alcotest.test_case "ephemeral exhaustion" `Quick
            test_ephemeral_exhaustion;
          Alcotest.test_case "sendto closed" `Quick test_sendto_closed;
          Alcotest.test_case "close releases" `Quick test_close_releases_port;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "port unreachable" `Quick
            test_no_port_generates_unreachable;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "fragmented datagram" `Quick
            test_large_datagram_fragments;
          Alcotest.test_case "loopback" `Quick test_loopback_to_self;
        ] );
    ]
