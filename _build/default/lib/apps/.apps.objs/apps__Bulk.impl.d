lib/apps/bulk.ml: Bytes Engine Ip Pattern Tcp
