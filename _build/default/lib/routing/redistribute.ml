module Prefix = Packet.Addr.Prefix

type t = {
  eng : Engine.t;
  period_us : int;
  metric_cap : int;
  dv : Dv.t;
  ls : Ls.t;
  mutable injected_into_dv : Prefix.t list;
  mutable running : bool;
  mutable exchanges : int;
}

let exchanges t = t.exchanges

let round t =
  t.exchanges <- t.exchanges + 1;
  (* LS world -> DV world. *)
  let ls_routes = Ls.routes t.ls in
  let fresh =
    List.map
      (fun (prefix, metric) ->
        Dv.inject t.dv prefix ~metric:(min t.metric_cap (1 + metric));
        prefix)
      ls_routes
  in
  (* Withdraw externals that disappeared from the LS side. *)
  List.iter
    (fun p ->
      if not (List.exists (Prefix.equal p) fresh) then Dv.withdraw t.dv p)
    t.injected_into_dv;
  t.injected_into_dv <- fresh;
  (* DV world -> LS world. *)
  Ls.set_external_prefixes t.ls
    (List.map (fun (prefix, metric) -> (prefix, metric)) (Dv.routes t.dv))

let create ?(period_us = 1_000_000) ?(metric_cap = 8) eng ~dv ~ls =
  let t =
    {
      eng;
      period_us;
      metric_cap;
      dv;
      ls;
      injected_into_dv = [];
      running = true;
      exchanges = 0;
    }
  in
  let rec tick () =
    if t.running then begin
      round t;
      Engine.after eng t.period_us tick
    end
  in
  Engine.after eng period_us tick;
  t

let stop t = t.running <- false
