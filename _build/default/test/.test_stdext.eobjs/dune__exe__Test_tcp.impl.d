test/test_tcp.ml: Alcotest Apps Buffer Bytes Catenet Char Engine Format Ip List Netsim Packet Printf QCheck QCheck_alcotest String Tcp
