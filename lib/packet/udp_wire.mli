(** UDP datagram wire format (RFC 768).

    UDP is the visible result of separating TCP from IP (Clark §4): the
    architecture's "other" type of service — unreliable, unordered, but
    minimal-latency datagram delivery for applications like packet voice
    and the XNET debugger that do not want reliability at the cost of
    timeliness. *)

type t = { src_port : int; dst_port : int; payload : bytes }

val header_size : int
(** 8 bytes. *)

val layout : (string * int * int) list
(** [(field, offset, width)] wire contract, machine-checked by
    catenet-lint. *)

type error = [ `Truncated | `Bad_checksum | `Bad_header of string ]

val pp_error : Format.formatter -> error -> unit

val encode : src:Addr.t -> dst:Addr.t -> t -> bytes
(** Serialize with the pseudo-header checksum (always computed; the
    all-zero "no checksum" escape is not used). *)

val encode_into :
  src:Addr.t ->
  dst:Addr.t ->
  src_port:int ->
  dst_port:int ->
  payload_len:int ->
  bytes ->
  pos:int ->
  int
(** Allocation-free {!encode}: the payload must already occupy
    [pos + header_size .. pos + header_size + payload_len) in the buffer;
    the header is written around it.  Returns the total datagram length.
    Output is byte-for-byte identical to {!encode}. *)

val decode : src:Addr.t -> dst:Addr.t -> bytes -> (t, error) result

val pp : Format.formatter -> t -> unit
