test/test_vc.ml: Alcotest Bytes Engine Format List Netsim Printf Vc
