(** Catenet: an OCaml reproduction of the DARPA internet architecture
    (Clark, SIGCOMM 1988) over a deterministic discrete-event simulator.

    One-stop namespace re-exporting every layer:

    - {!Engine} — virtual time and events
    - {!Netsim} — links, nodes, failures (the "variety of networks")
    - {!Packet} — wire formats and checksums
    - {!Ip} — the internet layer (datagrams, fragmentation, ICMP)
    - {!Udp}, {!Tcp} — the two types of service
    - {!Names} — the name/service layer (resolvers, anycast)
    - {!Routing} — distance-vector and link-state survivability machinery
    - {!Vc} — the virtual-circuit baseline architecture
    - {!Apps} — workload applications
    - {!Internet} — the builder that assembles a concrete catenet
    - {!Chaos} — deterministic fault injection and the survivability
      gauntlet
    - {!Trace} — flight recorder, metrics registry and pcap export *)

module Engine = Engine
module Netsim = Netsim
module Packet = Packet
module Ip = Ip
module Udp = Udp
module Tcp = Tcp
module Names = Names
module Routing = Routing
module Vc = Vc
module Apps = Apps
module Internet = Internet
module Topo = Topo
module Hostpool = Hostpool
module Chaos = Chaos
module Trace = Trace
