lib/tcp/seq_num.ml:
