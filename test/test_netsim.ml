(* Tests for the network substrate: delivery, serialization timing, MTU
   enforcement, queue drops, random loss, failure injection, counters. *)


let check = Alcotest.check

(* A two-node fixture returning (engine, net, a, b, link). *)
let pair ?(profile = Netsim.profile "test") () =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:1 eng in
  let a = Netsim.add_node net "a" in
  let b = Netsim.add_node net "b" in
  let l = Netsim.add_link net profile a b in
  (eng, net, a, b, l)

let collect net node =
  let inbox = ref [] in
  Netsim.set_handler net node (fun ~iface frame ->
      inbox := (iface, frame, Engine.now (Netsim.engine net)) :: !inbox);
  inbox

let test_basic_delivery () =
  let eng, net, a, b, _ = pair () in
  let inbox = collect net b in
  check Alcotest.bool "send ok" true
    (Netsim.send net a ~iface:0 (Bytes.of_string "hello"));
  Engine.run eng;
  match !inbox with
  | [ (0, frame, _) ] -> check Alcotest.string "payload" "hello" (Bytes.to_string frame)
  | l -> Alcotest.failf "expected 1 frame, got %d" (List.length l)

let test_default_handler () =
  (* Nodes without their own handler fall back to the net-wide default;
     a per-node handler still wins over it. *)
  let eng = Engine.create () in
  let net = Netsim.create ~seed:1 eng in
  let a = Netsim.add_node net "a" in
  let b = Netsim.add_node net "b" in
  let c = Netsim.add_node net "c" in
  ignore (Netsim.add_link net (Netsim.profile "p") a b);
  ignore (Netsim.add_link net (Netsim.profile "p") a c);
  let pooled = ref [] in
  Netsim.set_default_handler net
    (Some (fun ~node ~iface frame -> pooled := (node, iface, frame) :: !pooled));
  let own = collect net c in
  check Alcotest.bool "send to pooled" true
    (Netsim.send net a ~iface:0 (Bytes.of_string "to b"));
  check Alcotest.bool "send to owned" true
    (Netsim.send net a ~iface:1 (Bytes.of_string "to c"));
  Engine.run eng;
  (match !pooled with
  | [ (n, 0, f) ] ->
      check Alcotest.int "default saw b" b n;
      check Alcotest.string "frame" "to b" (Bytes.to_string f)
  | l -> Alcotest.failf "expected 1 pooled frame, got %d" (List.length l));
  check Alcotest.int "per-node handler won" 1 (List.length !own);
  (* Removing the fallback silences handlerless nodes again. *)
  Netsim.set_default_handler net None;
  ignore (Netsim.send net a ~iface:0 (Bytes.of_string "dropped"));
  Engine.run eng;
  check Alcotest.int "no fallback" 1 (List.length !pooled)

let test_delivery_time () =
  (* 1000-byte frame at 1 Mb/s = 8 ms serialization + 5 ms propagation. *)
  let profile =
    Netsim.profile "slow" ~bandwidth_bps:1_000_000 ~delay_us:5_000
  in
  let eng, net, a, b, _ = pair ~profile () in
  let inbox = collect net b in
  ignore (Netsim.send net a ~iface:0 (Bytes.make 1000 'x'));
  Engine.run eng;
  match !inbox with
  | [ (_, _, at) ] -> check Alcotest.int "8ms + 5ms" 13_000 at
  | _ -> Alcotest.fail "expected one frame"

let test_fifo_and_serialization () =
  (* Two back-to-back frames: the second waits for the first's tx time. *)
  let profile = Netsim.profile "slow" ~bandwidth_bps:1_000_000 ~delay_us:0 in
  let eng, net, a, b, _ = pair ~profile () in
  let inbox = collect net b in
  ignore (Netsim.send net a ~iface:0 (Bytes.make 1000 '1'));
  ignore (Netsim.send net a ~iface:0 (Bytes.make 1000 '2'));
  Engine.run eng;
  match List.rev !inbox with
  | [ (_, f1, t1); (_, f2, t2) ] ->
      check Alcotest.char "first" '1' (Bytes.get f1 0);
      check Alcotest.char "second" '2' (Bytes.get f2 0);
      check Alcotest.int "t1" 8_000 t1;
      check Alcotest.int "t2 = 2x tx" 16_000 t2
  | l -> Alcotest.failf "expected 2 frames, got %d" (List.length l)

let test_bidirectional () =
  let eng, net, a, b, _ = pair () in
  let inbox_a = collect net a and inbox_b = collect net b in
  ignore (Netsim.send net a ~iface:0 (Bytes.of_string "to-b"));
  ignore (Netsim.send net b ~iface:0 (Bytes.of_string "to-a"));
  Engine.run eng;
  check Alcotest.int "a got one" 1 (List.length !inbox_a);
  check Alcotest.int "b got one" 1 (List.length !inbox_b)

let test_mtu_enforced () =
  let profile = Netsim.profile "tiny" ~mtu:100 in
  let eng, net, a, b, l = pair ~profile () in
  let inbox = collect net b in
  check Alcotest.bool "oversize rejected" false
    (Netsim.send net a ~iface:0 (Bytes.make 101 'x'));
  check Alcotest.bool "exact fits" true
    (Netsim.send net a ~iface:0 (Bytes.make 100 'x'));
  Engine.run eng;
  check Alcotest.int "one delivered" 1 (List.length !inbox);
  check Alcotest.int "drop counted" 1 (Netsim.link_stats net l).Netsim.drops_mtu

let test_queue_overflow () =
  let profile =
    Netsim.profile "q2" ~bandwidth_bps:8_000 ~queue_capacity:2 ~delay_us:0
  in
  let eng, net, a, b, l = pair ~profile () in
  let inbox = collect net b in
  (* Each 100-byte frame takes 100 ms to serialize; push 5 at once. *)
  let accepted = ref 0 in
  for _ = 1 to 5 do
    if Netsim.send net a ~iface:0 (Bytes.make 100 'x') then incr accepted
  done;
  Engine.run eng;
  check Alcotest.int "2 accepted" 2 !accepted;
  check Alcotest.int "2 delivered" 2 (List.length !inbox);
  check Alcotest.int "3 dropped" 3 (Netsim.link_stats net l).Netsim.drops_queue

let test_random_loss () =
  let profile = Netsim.profile "lossy" ~loss:0.3 in
  let eng, net, a, b, l = pair ~profile () in
  let inbox = collect net b in
  (* Pace sends so the bounded queue never tail-drops: one frame per ms. *)
  for i = 0 to 999 do
    Engine.schedule eng ~at:(i * 1_000) (fun () ->
        ignore (Netsim.send net a ~iface:0 (Bytes.make 10 'x')))
  done;
  Engine.run eng;
  let delivered = List.length !inbox in
  let stats = Netsim.link_stats net l in
  check Alcotest.int "no queue drops" 0 stats.Netsim.drops_queue;
  check Alcotest.int "delivered + lost = sent" 1000
    (delivered + stats.Netsim.drops_loss);
  check Alcotest.bool "loss near 30%" true
    (stats.Netsim.drops_loss > 200 && stats.Netsim.drops_loss < 400)

let test_link_down_drops () =
  let eng, net, a, b, l = pair () in
  let inbox = collect net b in
  Netsim.set_link_up net l false;
  check Alcotest.bool "down send fails" false
    (Netsim.send net a ~iface:0 (Bytes.of_string "x"));
  Netsim.set_link_up net l true;
  check Alcotest.bool "up send ok" true
    (Netsim.send net a ~iface:0 (Bytes.of_string "y"));
  Engine.run eng;
  check Alcotest.int "one delivered" 1 (List.length !inbox)

let test_link_down_kills_in_flight () =
  let profile = Netsim.profile "long" ~delay_us:100_000 in
  let eng, net, a, b, l = pair ~profile () in
  let inbox = collect net b in
  ignore (Netsim.send net a ~iface:0 (Bytes.of_string "doomed"));
  (* Cut the link while the frame is propagating. *)
  Engine.after eng 50_000 (fun () -> Netsim.set_link_up net l false);
  Engine.run eng;
  check Alcotest.int "nothing delivered" 0 (List.length !inbox)

let test_node_down () =
  let eng, net, a, b, _ = pair () in
  let inbox = collect net b in
  Netsim.set_node_up net b false;
  ignore (Netsim.send net a ~iface:0 (Bytes.of_string "void"));
  Engine.run eng;
  check Alcotest.int "dead node receives nothing" 0 (List.length !inbox);
  Netsim.set_node_up net b true;
  ignore (Netsim.send net a ~iface:0 (Bytes.of_string "alive"));
  Engine.run eng;
  check Alcotest.int "revived node receives" 1 (List.length !inbox)

let test_down_sender () =
  let eng, net, a, b, _ = pair () in
  let inbox = collect net b in
  Netsim.set_node_up net a false;
  check Alcotest.bool "down node cannot send" false
    (Netsim.send net a ~iface:0 (Bytes.of_string "x"));
  Engine.run eng;
  check Alcotest.int "nothing" 0 (List.length !inbox)

let test_topology_queries () =
  let eng = Engine.create () in
  let net = Netsim.create eng in
  let a = Netsim.add_node net "a" in
  let b = Netsim.add_node net "b" in
  let c = Netsim.add_node net "c" in
  let l1 = Netsim.add_link net (Netsim.profile "p" ~mtu:900) a b in
  let l2 = Netsim.add_link net (Netsim.profile "p") b c in
  check Alcotest.int "a ifaces" 1 (Netsim.iface_count net a);
  check Alcotest.int "b ifaces" 2 (Netsim.iface_count net b);
  check Alcotest.int "mtu" 900 (Netsim.iface_mtu net a 0);
  check Alcotest.bool "peer of a.0 is b" true (fst (Netsim.peer net a 0) = b);
  check Alcotest.bool "peer of b.1 is c" true (fst (Netsim.peer net b 1) = c);
  check Alcotest.bool "link between" true (Netsim.link_between net a b = Some l1);
  check Alcotest.bool "no link a-c" true (Netsim.link_between net a c = None);
  check Alcotest.int "names" 0 (compare (Netsim.node_name net a) "a");
  check Alcotest.int "link ids" 2 (Netsim.link_count net);
  ignore l2

let test_self_link_rejected () =
  let eng = Engine.create () in
  let net = Netsim.create eng in
  let a = Netsim.add_node net "a" in
  try
    ignore (Netsim.add_link net (Netsim.profile "p") a a);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_stats_totals () =
  let eng, net, a, b, l = pair () in
  ignore (collect net b);
  for _ = 1 to 10 do
    ignore (Netsim.send net a ~iface:0 (Bytes.make 50 'x'))
  done;
  Engine.run eng;
  let s = Netsim.link_stats net l in
  check Alcotest.int "tx frames" 10 s.Netsim.tx_frames;
  check Alcotest.int "tx bytes" 500 s.Netsim.tx_bytes;
  check Alcotest.int "delivered" 10 s.Netsim.delivered_frames;
  let tot = Netsim.total_stats net in
  check Alcotest.int "total matches" 10 tot.Netsim.tx_frames

let test_determinism_across_runs () =
  let run () =
    let profile = Netsim.profile "lossy" ~loss:0.5 in
    let eng, net, a, b, _ = pair ~profile () in
    let inbox = collect net b in
    for _ = 1 to 200 do
      ignore (Netsim.send net a ~iface:0 (Bytes.make 10 'x'))
    done;
    Engine.run eng;
    List.length !inbox
  in
  check Alcotest.int "same seed, same outcome" (run ()) (run ())


let test_priority_queue_preempts () =
  (* Fill the queue with bulk frames, then submit one priority frame: it
     must be transmitted before the queued bulk backlog. *)
  let profile = Netsim.profile "slow" ~bandwidth_bps:8_000 ~delay_us:0 in
  let eng, net, a, b, _ = pair ~profile () in
  let order = ref [] in
  Netsim.set_handler net b (fun ~iface:_ frame ->
      order := Bytes.get frame 0 :: !order);
  (* 5 bulk frames of 100 B (100 ms serialization each). *)
  for _ = 1 to 5 do
    ignore (Netsim.send net a ~iface:0 (Bytes.make 100 'b'))
  done;
  (* Priority frame arrives while the first bulk frame transmits. *)
  Engine.after eng 10_000 (fun () ->
      ignore (Netsim.send net a ~priority:true ~iface:0 (Bytes.make 100 'P')));
  Engine.run eng;
  match List.rev !order with
  | 'b' :: 'P' :: rest ->
      check Alcotest.int "bulk follows" 4 (List.length rest)
  | l ->
      Alcotest.failf "unexpected order: %s"
        (String.init (List.length l) (List.nth l))

let test_jitter_reorders () =
  (* With jitter comparable to the spacing, back-to-back frames may arrive
     out of order; with no jitter they never do. *)
  let arrival_order jitter_us =
    let profile =
      Netsim.profile "j" ~bandwidth_bps:100_000_000 ~delay_us:1_000 ~jitter_us
    in
    let eng, net, a, b, _ = pair ~profile () in
    let order = ref [] in
    Netsim.set_handler net b (fun ~iface:_ frame ->
        order := Bytes.get_int32_be frame 0 :: !order);
    for i = 0 to 199 do
      Engine.schedule eng ~at:(i * 100) (fun () ->
          let f = Bytes.make 10 ' ' in
          Bytes.set_int32_be f 0 (Int32.of_int i);
          ignore (Netsim.send net a ~iface:0 f))
    done;
    Engine.run eng;
    List.rev !order
  in
  let sorted l = List.sort compare l = l in
  check Alcotest.bool "no jitter: in order" true (sorted (arrival_order 0));
  check Alcotest.bool "jitter: reordered" false (sorted (arrival_order 5_000))

let () =
  Alcotest.run "netsim"
    [
      ( "delivery",
        [
          Alcotest.test_case "basic" `Quick test_basic_delivery;
          Alcotest.test_case "timing" `Quick test_delivery_time;
          Alcotest.test_case "fifo serialization" `Quick test_fifo_and_serialization;
          Alcotest.test_case "bidirectional" `Quick test_bidirectional;
          Alcotest.test_case "default handler" `Quick test_default_handler;
        ] );
      ( "limits",
        [
          Alcotest.test_case "mtu" `Quick test_mtu_enforced;
          Alcotest.test_case "queue overflow" `Quick test_queue_overflow;
          Alcotest.test_case "random loss" `Quick test_random_loss;
          Alcotest.test_case "priority preempts" `Quick test_priority_queue_preempts;
          Alcotest.test_case "jitter reorders" `Quick test_jitter_reorders;
        ] );
      ( "failures",
        [
          Alcotest.test_case "link down" `Quick test_link_down_drops;
          Alcotest.test_case "in-flight killed" `Quick test_link_down_kills_in_flight;
          Alcotest.test_case "node down rx" `Quick test_node_down;
          Alcotest.test_case "node down tx" `Quick test_down_sender;
        ] );
      ( "topology",
        [
          Alcotest.test_case "queries" `Quick test_topology_queries;
          Alcotest.test_case "self link" `Quick test_self_link_rejected;
          Alcotest.test_case "stats" `Quick test_stats_totals;
          Alcotest.test_case "determinism" `Quick test_determinism_across_runs;
        ] );
    ]
