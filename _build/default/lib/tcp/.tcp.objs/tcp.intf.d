lib/tcp/tcp.mli: Format Ip Packet Rto Sendbuf Seq_num
