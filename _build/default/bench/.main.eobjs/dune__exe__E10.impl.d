bench/e10.ml: Bytes Catenet Internet Ip Netsim Packet Printf Tcp Udp Util
