(* Survivability demo (the paper's goal #1, its single most important).

   A TCP transfer runs across a redundant mesh while we tear links and a
   whole gateway out from under it.  Distance-vector routing re-learns
   paths; the conversation — whose state lives only in the two endpoints —
   never resets.

       h1 - g1 ===== g2 ===== g3 - h2
              \\             //
               ==== g4 =====

   Run with: dune exec examples/survivable_transfer.exe *)

open Catenet

let () =
  let dv_config =
    {
      Routing.Dv.default_config with
      Routing.Dv.period_us = 1_000_000;
      timeout_us = 3_500_000;
      gc_us = 2_000_000;
      carrier_poll_us = 200_000;
    }
  in
  let net = Internet.create ~routing:Internet.Distance_vector ~dv_config () in
  let h1 = Internet.add_host net "h1" in
  let h2 = Internet.add_host net "h2" in
  let g1 = Internet.add_gateway net "g1" in
  let g2 = Internet.add_gateway net "g2" in
  let g3 = Internet.add_gateway net "g3" in
  let g4 = Internet.add_gateway net "g4" in
  let p = Netsim.profile "trunk" ~bandwidth_bps:1_536_000 ~delay_us:5_000 in
  ignore (Internet.connect net p h1.Internet.h_node g1.Internet.g_node);
  let primary_a = Internet.connect net p g1.Internet.g_node g2.Internet.g_node in
  let primary_b = Internet.connect net p g2.Internet.g_node g3.Internet.g_node in
  ignore (Internet.connect net p g1.Internet.g_node g4.Internet.g_node);
  ignore (Internet.connect net p g4.Internet.g_node g3.Internet.g_node);
  ignore (Internet.connect net p g3.Internet.g_node h2.Internet.h_node);
  Internet.start net;
  Internet.run_for net 5.0 (* routing warm-up *);

  let eng = Internet.engine net in
  let say fmt =
    Printf.ksprintf
      (fun s -> Printf.printf "[t=%5.1fs] %s\n" (Engine.to_sec (Engine.now eng)) s)
      fmt
  in

  say "starting a 4 MB transfer h1 -> h2";
  let seed = 7 in
  let server = Apps.Bulk.serve h2.Internet.h_tcp ~port:20 ~seed in
  let sender =
    Apps.Bulk.start h1.Internet.h_tcp
      ~dst:(Internet.addr_of net h2.Internet.h_node)
      ~dst_port:20 ~seed ~total:4_000_000 ()
  in

  (* Sabotage schedule. *)
  Engine.after eng (Engine.sec 2.0) (fun () ->
      say "cutting primary link g1--g2";
      Internet.fail_link net primary_a);
  Engine.after eng (Engine.sec 10.0) (fun () ->
      say "healing g1--g2 ... and crashing gateway g2 entirely";
      Internet.heal_link net primary_a;
      Internet.crash_node net g2.Internet.g_node);
  Engine.after eng (Engine.sec 20.0) (fun () ->
      say "restoring g2 (cold: every byte of its RAM is gone)";
      Internet.restore_node net g2.Internet.g_node);
  ignore primary_b;

  (* Progress reports. *)
  let rec report () =
    (match Apps.Bulk.transfers server with
    | [ tr ] -> say "received so far: %d bytes" tr.Apps.Bulk.received
    | _ -> ());
    if not (Apps.Bulk.finished sender) then
      Engine.after eng (Engine.sec 5.0) report
  in
  Engine.after eng (Engine.sec 5.0) report;

  Internet.run_for net 240.0;

  (match Apps.Bulk.transfers server with
  | [ tr ] ->
      (match Apps.Bulk.completed_at_us sender with
      | Some at -> Printf.printf "[t=%5.1fs] (completion time)\n" (Engine.to_sec at)
      | None -> ());
      say "transfer complete: %d bytes, intact=%b, connection reset: %s"
        tr.Apps.Bulk.received tr.Apps.Bulk.intact
        (match Apps.Bulk.failed sender with
        | None -> "never"
        | Some r -> Format.asprintf "%a" Tcp.pp_close_reason r)
  | _ -> say "unexpected transfer count");
  let st = Tcp.stats (Apps.Bulk.conn sender) in
  say "the price of survival: %d retransmitted segments (%d bytes)"
    st.Tcp.retransmits st.Tcp.bytes_retransmitted;
  say
    "state in the network the whole time: only routing tables - no \
     connection state (fate-sharing)"
