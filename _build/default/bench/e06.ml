(* E6 — Cost effectiveness (Clark §7, goal 5).

   The paper names two inefficiencies of the datagram architecture: the
   ~40 bytes of header on every packet (crushing for small packets), and
   retransmitted bytes crossing expensive long-haul nets again.  Both are
   measured here from actual wire traffic, alongside the VC baseline's
   5-byte cells for contrast. *)

open Catenet

(* --- header overhead vs payload size -------------------------------------- *)

let overhead_row payload_size =
  (* Measured from a real UDP exchange: wire bytes per payload byte. *)
  let t = Internet.create () in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  ignore (Internet.connect t (Netsim.profile "w") a.Internet.h_node b.Internet.h_node);
  Internet.start t;
  let n = 50 in
  ignore (Udp.bind b.Internet.h_udp ~port:9 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) ());
  let s = Udp.bind a.Internet.h_udp ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  for i = 0 to n - 1 do
    Engine.schedule (Internet.engine t) ~at:(i * 10_000) (fun () ->
        ignore
          (Udp.sendto s
             ~dst:(Internet.addr_of t b.Internet.h_node)
             ~dst_port:9
             (Bytes.make payload_size 'o')))
  done;
  Internet.run_for t 5.0;
  let wire = (Netsim.total_stats (Internet.net t)).Netsim.tx_bytes in
  let payload_total = n * payload_size in
  let udp_eff = float_of_int payload_total /. float_of_int wire in
  (* TCP efficiency for the same payload per segment: 40-byte header. *)
  let tcp_eff =
    float_of_int payload_size /. float_of_int (payload_size + 40)
  in
  (* VC data cell: 5-byte header. *)
  let vc_eff = float_of_int payload_size /. float_of_int (payload_size + 5) in
  [
    string_of_int payload_size;
    Util.fpct udp_eff;
    Util.fpct tcp_eff;
    Util.fpct vc_eff;
  ]

(* --- retransmission waste vs loss ------------------------------------------- *)

let waste_row loss =
  let t = Internet.create ~routing:Internet.Static () in
  let h1 = Internet.add_host t "h1" in
  let h2 = Internet.add_host t "h2" in
  let g = Internet.add_gateway t "g" in
  let p = Netsim.profile "leg" ~bandwidth_bps:1_536_000 ~delay_us:5_000 ~loss in
  ignore (Internet.connect t p h1.Internet.h_node g.Internet.g_node);
  ignore (Internet.connect t p g.Internet.g_node h2.Internet.h_node);
  Internet.start t;
  let total = 200_000 in
  let goodput, conn, intact =
    Util.run_bulk t h1 h2 ~port:20 ~total ~seconds:600.0
  in
  let st = Tcp.stats conn in
  let waste =
    float_of_int st.Tcp.bytes_retransmitted
    /. float_of_int (st.Tcp.bytes_out + st.Tcp.bytes_retransmitted)
  in
  [
    Util.fpct loss;
    (if intact then "yes" else "NO");
    string_of_int st.Tcp.retransmits;
    Printf.sprintf "%d" st.Tcp.bytes_retransmitted;
    Util.fpct waste;
    (match goodput with Some g -> Printf.sprintf "%.1f" (g /. 1e3) | None -> "-");
  ]

let run () =
  Util.banner "E6" "Cost effectiveness: headers and retransmitted bytes"
    "a >=40-byte header penalizes small packets; lost packets cross the \
     expensive nets twice";
  Printf.printf "\n  (a) transport efficiency vs payload size\n";
  Util.table
    [ "payload B"; "UDP measured"; "TCP/IP 40B hdr"; "VC 5B cell" ]
    (List.map overhead_row [ 1; 64; 256; 576; 1460 ]);
  Util.note
    "a 1-byte interactive keystroke is ~2%% efficient over TCP/IP — the \
     'poor' small-packet economics the paper concedes (§7)";
  Printf.printf "\n  (b) retransmission waste vs per-link loss (TCP bulk, 2 hops)\n";
  Util.table
    [ "loss"; "intact"; "rexmit segs"; "rexmit bytes"; "waste"; "goodput kB/s" ]
    (List.map waste_row [ 0.0; 0.02; 0.05; 0.10 ]);
  Util.note
    "waste grows with loss: bytes retransmitted end-to-end re-cross every \
     hop, the §7 argument for keeping the loss rate of the subnets low"
