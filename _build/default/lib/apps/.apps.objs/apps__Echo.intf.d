lib/apps/echo.mli: Packet Stdext Tcp
