type t = { src_port : int; dst_port : int; payload : bytes }

let header_size = 8

(* Machine-checked wire contract (see catenet-lint). *)
let layout : (string * int * int) list =
  [ ("src_port", 0, 2); ("dst_port", 2, 2); ("len", 4, 2); ("checksum", 6, 2) ]

type error = [ `Truncated | `Bad_checksum | `Bad_header of string ]

let pp_error fmt = function
  | `Truncated -> Format.pp_print_string fmt "truncated datagram"
  | `Bad_checksum -> Format.pp_print_string fmt "bad UDP checksum"
  | `Bad_header m -> Format.fprintf fmt "bad UDP header: %s" m

let encode ~src ~dst t =
  if t.src_port < 0 || t.src_port > 0xffff || t.dst_port < 0
     || t.dst_port > 0xffff
  then invalid_arg "Udp_wire.encode: port out of range";
  let total = header_size + Bytes.length t.payload in
  if total > 0xffff then invalid_arg "Udp_wire.encode: datagram too large";
  let module W = Stdext.Bytio.W in
  let w = W.create total in
  W.u16 w t.src_port;
  W.u16 w t.dst_port;
  W.u16 w total;
  W.u16 w 0 (* checksum placeholder *);
  W.bytes w t.payload;
  let buf = W.contents w in
  let acc =
    Checksum.pseudo_header ~src:(Addr.to_int32 src) ~dst:(Addr.to_int32 dst)
      ~proto:17 ~len:total
  in
  let csum = Checksum.of_bytes ~acc buf ~pos:0 ~len:total in
  (* RFC 768: a computed checksum of zero is transmitted as all ones. *)
  Bytes.set_uint16_be buf 6 (if csum = 0 then 0xffff else csum);
  buf

(* Allocation-free counterpart of {!encode}: the payload already sits at
   [pos + header_size] in [buf]; fill in the header and checksum in place.
   Byte-for-byte identical output to {!encode}. *)
let encode_into ~src ~dst ~src_port ~dst_port ~payload_len buf ~pos =
  if src_port < 0 || src_port > 0xffff || dst_port < 0 || dst_port > 0xffff
  then invalid_arg "Udp_wire.encode_into: port out of range";
  let total = header_size + payload_len in
  if total > 0xffff then invalid_arg "Udp_wire.encode_into: datagram too large";
  if pos < 0 || payload_len < 0 || pos + total > Bytes.length buf then
    invalid_arg "Udp_wire.encode_into: buffer too small";
  Bytes.set_uint16_be buf pos src_port;
  Bytes.set_uint16_be buf (pos + 2) dst_port;
  Bytes.set_uint16_be buf (pos + 4) total;
  Bytes.set_uint16_be buf (pos + 6) 0 (* checksum placeholder *);
  let acc =
    Checksum.pseudo_header ~src:(Addr.to_int32 src) ~dst:(Addr.to_int32 dst)
      ~proto:17 ~len:total
  in
  let csum = Checksum.of_bytes ~acc buf ~pos ~len:total in
  (* RFC 768: a computed checksum of zero is transmitted as all ones. *)
  Bytes.set_uint16_be buf (pos + 6) (if csum = 0 then 0xffff else csum);
  total

let decode ~src ~dst buf =
  let len = Bytes.length buf in
  if len < header_size then Error `Truncated
  else begin
    let declared = Bytes.get_uint16_be buf 4 in
    if declared < header_size || declared > len then Error `Truncated
    else begin
      let acc =
        Checksum.pseudo_header ~src:(Addr.to_int32 src)
          ~dst:(Addr.to_int32 dst) ~proto:17 ~len:declared
      in
      if not (Checksum.valid ~acc buf ~pos:0 ~len:declared) then
        Error `Bad_checksum
      else
        Ok
          {
            src_port = Bytes.get_uint16_be buf 0;
            dst_port = Bytes.get_uint16_be buf 2;
            payload = Bytes.sub buf header_size (declared - header_size);
          }
    end
  end

let pp fmt t =
  Format.fprintf fmt "udp %d>%d len=%d" t.src_port t.dst_port
    (Bytes.length t.payload)
