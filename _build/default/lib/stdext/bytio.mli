(** Big-endian byte readers and writers for wire formats.

    All internet protocol fields are network byte order (big-endian); these
    cursors wrap [Bytes.t] and fail loudly on overrun so that header
    encoders/decoders stay short and total. *)

exception Truncated
(** Raised by read operations that run past the end of the buffer, and by
    write operations past capacity.  Decoders treat it as a malformed
    packet. *)

(** {1 Writer} *)

module W : sig
  type t

  val create : int -> t
  (** [create n] is a writer over a fresh zeroed buffer of capacity [n]. *)

  val pos : t -> int
  (** Bytes written so far. *)

  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit

  val u32_of_int : t -> int -> unit
  (** Writes the low 32 bits of an [int]; convenient for sequence numbers
      kept as OCaml ints. *)

  val bytes : t -> bytes -> unit
  (** Append a whole byte string. *)

  val sub : t -> bytes -> pos:int -> len:int -> unit
  (** Append a slice. *)

  val seek : t -> int -> unit
  (** Reposition the cursor (for checksum backpatching). *)

  val contents : t -> bytes
  (** Copy of the written prefix. *)
end

(** {1 Reader} *)

module R : sig
  type t

  val of_bytes : bytes -> t
  val of_sub : bytes -> pos:int -> len:int -> t

  val pos : t -> int
  (** Cursor position relative to the start of the reader's window. *)

  val remaining : t -> int

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32

  val u32_to_int : t -> int
  (** Reads 32 bits as a non-negative [int]. *)

  val bytes : t -> int -> bytes
  (** [bytes r n] reads the next [n] bytes. *)

  val skip : t -> int -> unit
end
