(* State-machine conformance rule of catenet-lint (source level).

   Mirrors the wire-layout approach: a module owning a protocol state
   machine declares its diagram as data,

     let st_transitions = [ (* state, event, state' *)
       ("Syn_sent", "SYN-ACK received", "Established");
       ("*",        "abort",            "Closed");
       ...
     ]

   for a mutable record field [st] (table name = [<field>_transitions]).
   The pass then finds every assignment [<expr>.<field> <- Ctor] and
   checks it against the table:

     - the source state(s) come from the innermost enclosing
       [match <expr>.<field> with] arm (constructor patterns, including
       or-patterns), or from an explicit
       [@transitions.from "StateA,StateB"] attribute on the assignment
       when there is no such context (helper functions called from
       several states);
     - an assignment whose source states cannot be narrowed needs a
       [("*", _, target)] row;
     - every (from, to) pair implied by an assignment must be a declared
       edge — and every declared edge must be implemented by at least
       one assignment, so the diagram we claim (RFC 793+5961 for TCP,
       the RIB entry lifecycle for DV) is checked against the code in
       both directions on every lint run.

   State names in the table are validated against the variant
   constructors declared in the same file; "*" is only legal as a
   source.  [tcp.ml] and [dv.ml] are required to declare a table. *)

open Parsetree
open Lint_common

type row = {
  r_from : string;
  r_event : string;
  r_to : string;
  r_loc : Location.t;
  mutable r_used : bool;
}

type table = { t_field : string; t_loc : Location.t; t_rows : row list }

let required_basenames = [ "tcp.ml"; "dv.ml" ]

(* -- extraction ---------------------------------------------------- *)

let rec unconstraint e =
  match e.pexp_desc with Pexp_constraint (e, _) -> unconstraint e | _ -> e

let rec list_elems e =
  match (unconstraint e).pexp_desc with
  | Pexp_construct
      ({ txt = Longident.Lident "::"; _ },
       Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ }) ->
      hd :: list_elems tl
  | _ -> []

let extract_tables structure =
  let tables = ref [] in
  let it =
    { Ast_iterator.default_iterator with
      value_binding =
        (fun sub vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var n when Filename.check_suffix n.txt "_transitions" ->
              let field =
                String.sub n.txt 0 (String.length n.txt - String.length "_transitions")
              in
              let rows =
                List.filter_map
                  (fun e ->
                    match (unconstraint e).pexp_desc with
                    | Pexp_tuple [ f; ev; t ] -> (
                        match
                          (string_constant f, string_constant ev,
                           string_constant t)
                        with
                        | Some r_from, Some r_event, Some r_to ->
                            Some
                              { r_from; r_event; r_to; r_loc = e.pexp_loc;
                                r_used = false }
                        | _ -> None)
                    | _ -> None)
                  (list_elems vb.pvb_expr)
              in
              if rows <> [] then
                tables :=
                  { t_field = field; t_loc = vb.pvb_loc; t_rows = rows }
                  :: !tables
          | _ -> ());
          Ast_iterator.default_iterator.value_binding sub vb);
    }
  in
  it.structure it structure;
  List.rev !tables

let variant_constructors structure =
  let set = Hashtbl.create 32 in
  let it =
    { Ast_iterator.default_iterator with
      type_declaration =
        (fun sub td ->
          (match td.ptype_kind with
          | Ptype_variant cds ->
              List.iter (fun cd -> Hashtbl.replace set cd.pcd_name.txt ()) cds
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration sub td);
    }
  in
  it.structure it structure;
  set

(* -- source-state resolution --------------------------------------- *)

(* [Some states] if every alternative of the pattern names a
   constructor; [None] for catch-alls (the context narrows nothing). *)
let rec pat_states p =
  match p.ppat_desc with
  | Ppat_construct (lid, _) -> Some [ last_exn (flatten_lid lid.txt) ]
  | Ppat_or (a, b) -> (
      match (pat_states a, pat_states b) with
      | Some x, Some y -> Some (x @ y)
      | _ -> None)
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pat_states p
  | _ -> None

let scrutinee_field e =
  match (unconstraint e).pexp_desc with
  | Pexp_field (_, lid) -> Some (last_exn (flatten_lid lid.txt))
  | _ -> None

let from_attribute (attrs : attributes) =
  List.find_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "transitions.from" then None
      else
        match a.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
            match string_constant e with
            | Some s ->
                Some
                  (List.filter
                     (fun x -> x <> "")
                     (List.map String.trim (String.split_on_char ',' s)))
            | None -> None)
        | _ -> None)
    attrs

(* -- the walk ------------------------------------------------------- *)

let check_file path structure =
  let base = Filename.basename path in
  match extract_tables structure with
  | [] ->
      if List.mem base required_basenames then
        report ~file:path ~line:1 ~rule:"transitions"
          "state-machine module declares no transitions table (expected \
           `let <field>_transitions = [ (from, event, to); ... ]`)"
  | tables ->
      let ctors = variant_constructors structure in
      (* table sanity: states must be declared constructors; "*" is a
         source-only wildcard *)
      List.iter
        (fun t ->
          List.iter
            (fun r ->
              if r.r_from <> "*" && not (Hashtbl.mem ctors r.r_from) then
                report_loc ~rule:"transitions" r.r_loc
                  (Printf.sprintf
                     "%s_transitions: unknown source state %s (no such \
                      constructor in this file)"
                     t.t_field r.r_from);
              if r.r_to = "*" then
                report_loc ~rule:"transitions" r.r_loc
                  (Printf.sprintf
                     "%s_transitions: \"*\" is not a valid target state"
                     t.t_field)
              else if not (Hashtbl.mem ctors r.r_to) then
                report_loc ~rule:"transitions" r.r_loc
                  (Printf.sprintf
                     "%s_transitions: unknown target state %s (no such \
                      constructor in this file)"
                     t.t_field r.r_to))
            t.t_rows)
        tables;
      let table_for field =
        List.find_opt (fun t -> t.t_field = field) tables
      in
      let check_assignment loc table ~froms ~target =
        let edges from =
          List.filter
            (fun r ->
              (r.r_from = from || r.r_from = "*") && r.r_to = target)
            table.t_rows
        in
        match froms with
        | None -> (
            match
              List.filter
                (fun r -> r.r_from = "*" && r.r_to = target)
                table.t_rows
            with
            | [] ->
                report_loc ~rule:"transitions" loc
                  (Printf.sprintf
                     "assignment of %s to field %s has no enclosing match \
                      on the field and no [@transitions.from]; annotate the \
                      source states or declare a (\"*\", _, %s) edge"
                     target table.t_field target)
            | rows -> List.iter (fun r -> r.r_used <- true) rows)
        | Some froms ->
            List.iter
              (fun from ->
                match edges from with
                | [] ->
                    report_loc ~rule:"transitions" loc
                      (Printf.sprintf
                         "undeclared transition %s -> %s for field %s (not \
                          in %s_transitions)"
                         from target table.t_field table.t_field)
                | rows -> List.iter (fun r -> r.r_used <- true) rows)
              froms
      in
      (* env: field name -> possible source states from the innermost
         enclosing match on that field *)
      let rec walk env e =
        match e.pexp_desc with
        | Pexp_match (scrut, cases) -> (
            walk env scrut;
            match scrutinee_field scrut with
            | Some f when table_for f <> None ->
                List.iter
                  (fun c ->
                    Option.iter (walk env) c.pc_guard;
                    let env' =
                      match pat_states c.pc_lhs with
                      | Some states -> (f, states) :: env
                      | None -> List.remove_assoc f env
                    in
                    walk env' c.pc_rhs)
                  cases
            | _ ->
                List.iter
                  (fun c ->
                    Option.iter (walk env) c.pc_guard;
                    walk env c.pc_rhs)
                  cases)
        | Pexp_setfield (lhs, lid, rhs) -> (
            walk env lhs;
            walk env rhs;
            let field = last_exn (flatten_lid lid.txt) in
            match table_for field with
            | None -> ()
            | Some table -> (
                (* the attribute may parse as attached to the whole
                   assignment or to its right-hand side *)
                let froms =
                  match
                    ( from_attribute e.pexp_attributes,
                      from_attribute rhs.pexp_attributes )
                  with
                  | Some l, _ | None, Some l -> Some l
                  | None, None -> List.assoc_opt field env
                in
                match (unconstraint rhs).pexp_desc with
                | Pexp_construct (clid, _) ->
                    let target = last_exn (flatten_lid clid.txt) in
                    check_assignment e.pexp_loc table ~froms ~target
                | _ ->
                    report_loc ~rule:"transitions" e.pexp_loc
                      (Printf.sprintf
                         "assignment to state field %s is not a bare \
                          constructor; the conformance pass cannot check it"
                         field)))
        | _ ->
            let it =
              { Ast_iterator.default_iterator with
                expr = (fun _sub child -> walk env child);
              }
            in
            Ast_iterator.default_iterator.expr it e
      in
      let top =
        { Ast_iterator.default_iterator with
          expr = (fun _sub e -> walk [] e);
        }
      in
      top.structure top structure;
      List.iter
        (fun t ->
          List.iter
            (fun r ->
              if not r.r_used then
                report_loc ~rule:"transitions" r.r_loc
                  (Printf.sprintf
                     "declared transition %s -[%s]-> %s is never implemented \
                      by an assignment to field %s"
                     r.r_from r.r_event r.r_to t.t_field))
            t.t_rows)
        tables
