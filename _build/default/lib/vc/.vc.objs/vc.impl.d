lib/vc/vc.ml: Array Cell Engine Hashtbl List Netsim Queue
