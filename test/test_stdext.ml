(* Tests for the stdext foundation: RNG determinism, heap ordering, byte
   cursors and statistics. *)


let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Stdext.Rng.create 7 and b = Stdext.Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Stdext.Rng.bits64 a)
      (Stdext.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Stdext.Rng.create 1 and b = Stdext.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Stdext.Rng.bits64 a) (Stdext.Rng.bits64 b) then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_rng_int_range () =
  let r = Stdext.Rng.create 99 in
  for _ = 1 to 10_000 do
    let v = Stdext.Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_rng_float_range () =
  let r = Stdext.Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Stdext.Rng.float r 3.0 in
    if v < 0.0 || v >= 3.0 then Alcotest.failf "out of range: %f" v
  done

let test_rng_bool_bias () =
  let r = Stdext.Rng.create 11 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Stdext.Rng.bool r 0.25 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "close to 0.25" true (abs_float (frac -. 0.25) < 0.02)

let test_rng_split_independent () =
  let parent = Stdext.Rng.create 42 in
  let child = Stdext.Rng.split parent in
  (* Child and parent produce different streams. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Stdext.Rng.bits64 parent) (Stdext.Rng.bits64 child) then
      incr same
  done;
  check Alcotest.bool "split independent" true (!same < 4)

let test_rng_exponential_mean () =
  let r = Stdext.Rng.create 3 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Stdext.Rng.exponential r 2.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean near 2.0" true (abs_float (mean -. 2.0) < 0.1)

let test_rng_shuffle_permutation () =
  let r = Stdext.Rng.create 8 in
  let a = Array.init 50 Fun.id in
  Stdext.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation"
    (Array.init 50 Fun.id) sorted

(* --- Heap --------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Stdext.Heap.create () in
  let r = Stdext.Rng.create 13 in
  for i = 0 to 999 do
    Stdext.Heap.push h ~key:(Stdext.Rng.int r 100) ~seq:i i
  done;
  let last = ref min_int in
  let count = ref 0 in
  let rec drain () =
    match Stdext.Heap.pop h with
    | None -> ()
    | Some (k, _, _) ->
        if k < !last then Alcotest.failf "heap order violated";
        last := k;
        incr count;
        drain ()
  in
  drain ();
  check Alcotest.int "all popped" 1000 !count

let test_heap_fifo_within_key () =
  let h = Stdext.Heap.create () in
  for i = 0 to 99 do
    Stdext.Heap.push h ~key:5 ~seq:i i
  done;
  for i = 0 to 99 do
    match Stdext.Heap.pop h with
    | Some (_, _, v) -> check Alcotest.int "fifo at equal keys" i v
    | None -> Alcotest.fail "heap empty early"
  done

let test_heap_peek () =
  let h = Stdext.Heap.create () in
  check Alcotest.bool "empty peek" true (Stdext.Heap.peek h = None);
  Stdext.Heap.push h ~key:3 ~seq:0 "x";
  Stdext.Heap.push h ~key:1 ~seq:1 "y";
  (match Stdext.Heap.peek h with
  | Some (1, 1, "y") -> ()
  | Some _ | None -> Alcotest.fail "peek wrong");
  check Alcotest.int "length" 2 (Stdext.Heap.length h)

let test_heap_clear () =
  let h = Stdext.Heap.create () in
  for i = 0 to 9 do
    Stdext.Heap.push h ~key:i ~seq:i i
  done;
  Stdext.Heap.clear h;
  check Alcotest.bool "empty" true (Stdext.Heap.is_empty h);
  check Alcotest.bool "pop none" true (Stdext.Heap.pop h = None)

let test_heap_reusable_after_clear () =
  (* clear keeps the backing array; the heap must behave like new. *)
  let h = Stdext.Heap.create () in
  for round = 1 to 3 do
    for i = 0 to 999 do
      Stdext.Heap.push h ~key:(999 - i) ~seq:i i
    done;
    Stdext.Heap.clear h;
    check Alcotest.int "cleared" 0 (Stdext.Heap.length h);
    for i = 0 to 9 do
      Stdext.Heap.push h ~key:(9 - i) ~seq:i (round * 100 + i)
    done;
    for k = 0 to 9 do
      check Alcotest.int "order after clear" k
        (match Stdext.Heap.pop h with
        | Some (key, _, _) -> key
        | None -> -1)
    done
  done

let test_heap_min_key_pop_min () =
  let h = Stdext.Heap.create () in
  check Alcotest.bool "min_key empty raises" true
    (match Stdext.Heap.min_key h with
    | _ -> false
    | exception Not_found -> true);
  check Alcotest.bool "pop_min empty raises" true
    (match Stdext.Heap.pop_min h with
    | _ -> false
    | exception Not_found -> true);
  Stdext.Heap.push h ~key:7 ~seq:0 "late";
  Stdext.Heap.push h ~key:2 ~seq:1 "early";
  check Alcotest.int "min_key" 2 (Stdext.Heap.min_key h);
  check Alcotest.int "peek untouched" 2 (Stdext.Heap.length h);
  check Alcotest.string "pop_min value" "early" (Stdext.Heap.pop_min h);
  check Alcotest.string "then next" "late" (Stdext.Heap.pop_min h);
  check Alcotest.bool "drained" true (Stdext.Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in key order" ~count:200
    QCheck.(list (pair small_nat small_nat))
    (fun pairs ->
      let h = Stdext.Heap.create () in
      List.iteri (fun i (k, _) -> Stdext.Heap.push h ~key:k ~seq:i k) pairs;
      let rec drain acc =
        match Stdext.Heap.pop h with
        | None -> List.rev acc
        | Some (k, _, _) -> drain (k :: acc)
      in
      let out = drain [] in
      out = List.sort compare (List.map fst pairs))

(* --- Wheel -------------------------------------------------------------- *)

let test_wheel_order () =
  let w = Stdext.Wheel.create ~slots:64 ~granularity:100 () in
  (* 150 and 150 + 64*100 hash to the same slot but different rounds. *)
  Stdext.Wheel.add w ~at:150 ~seq:0 "a";
  Stdext.Wheel.add w ~at:(150 + 6400) ~seq:1 "far";
  Stdext.Wheel.add w ~at:120 ~seq:2 "b";
  Stdext.Wheel.add w ~at:120 ~seq:3 "c";
  check Alcotest.int "length" 4 (Stdext.Wheel.length w);
  check Alcotest.int "min_key" 120 (Stdext.Wheel.min_key w);
  check Alcotest.string "tie broken by seq" "b" (Stdext.Wheel.pop_min w);
  check Alcotest.string "then its twin" "c" (Stdext.Wheel.pop_min w);
  check Alcotest.string "then this round" "a" (Stdext.Wheel.pop_min w);
  check Alcotest.string "next round last" "far" (Stdext.Wheel.pop_min w);
  check Alcotest.int "drained" max_int (Stdext.Wheel.min_key w);
  check Alcotest.bool "pop on empty raises" true
    (match Stdext.Wheel.pop_min w with
    | _ -> false
    | exception Not_found -> true)

let test_wheel_interleaved () =
  (* Pops interleaved with adds must not let a later add shadow an earlier
     resident entry (the cached-minimum invariant). *)
  let w = Stdext.Wheel.create ~slots:8 ~granularity:16 () in
  Stdext.Wheel.add w ~at:10 ~seq:0 10;
  Stdext.Wheel.add w ~at:20 ~seq:1 20;
  check Alcotest.int "first" 10 (Stdext.Wheel.pop_min w);
  Stdext.Wheel.add w ~at:30 ~seq:2 30;
  check Alcotest.int "resident beats new" 20 (Stdext.Wheel.pop_min w);
  check Alcotest.int "then new" 30 (Stdext.Wheel.pop_min w)

let prop_wheel_vs_sorted =
  QCheck.Test.make ~name:"wheel pops like a sorted queue" ~count:200
    QCheck.(list (0 -- 20_000))
    (fun ats ->
      let w = Stdext.Wheel.create ~slots:32 ~granularity:64 () in
      List.iteri (fun i at -> Stdext.Wheel.add w ~at ~seq:i (at, i)) ats;
      let expected = List.sort compare (List.mapi (fun i at -> (at, i)) ats) in
      let rec drain acc =
        match Stdext.Wheel.pop_min w with
        | v -> drain (v :: acc)
        | exception Not_found -> List.rev acc
      in
      drain [] = expected)

(* --- Bytio -------------------------------------------------------------- *)

let test_bytio_roundtrip () =
  let module W = Stdext.Bytio.W in
  let module R = Stdext.Bytio.R in
  let w = W.create 64 in
  W.u8 w 0xAB;
  W.u16 w 0xCDEF;
  W.u32 w 0xDEADBEEFl;
  W.bytes w (Bytes.of_string "hello");
  let buf = W.contents w in
  check Alcotest.int "length" (1 + 2 + 4 + 5) (Bytes.length buf);
  let r = R.of_bytes buf in
  check Alcotest.int "u8" 0xAB (R.u8 r);
  check Alcotest.int "u16" 0xCDEF (R.u16 r);
  check Alcotest.int32 "u32" 0xDEADBEEFl (R.u32 r);
  check Alcotest.string "bytes" "hello" (Bytes.to_string (R.bytes r 5));
  check Alcotest.int "remaining" 0 (R.remaining r)

let test_bytio_overrun () =
  let module R = Stdext.Bytio.R in
  let r = R.of_bytes (Bytes.make 3 'x') in
  (try
     ignore (R.u32 r);
     Alcotest.fail "expected Truncated"
   with Stdext.Bytio.Truncated -> ());
  let module W = Stdext.Bytio.W in
  let w = W.create 2 in
  try
    W.u32 w 0l;
    Alcotest.fail "expected Truncated"
  with Stdext.Bytio.Truncated -> ()

let test_bytio_seek_backpatch () =
  let module W = Stdext.Bytio.W in
  let w = W.create 8 in
  W.u16 w 0;
  W.u16 w 42;
  let p = W.pos w in
  W.seek w 0;
  W.u16 w 7;
  W.seek w p;
  let buf = W.contents w in
  check Alcotest.int "patched" 7 (Bytes.get_uint16_be buf 0);
  check Alcotest.int "untouched" 42 (Bytes.get_uint16_be buf 2)

let test_bytio_sub_reader () =
  let module R = Stdext.Bytio.R in
  let buf = Bytes.of_string "abcdef" in
  let r = R.of_sub buf ~pos:2 ~len:3 in
  check Alcotest.int "c" (Char.code 'c') (R.u8 r);
  check Alcotest.int "remaining" 2 (R.remaining r)

let prop_bytio_u32_roundtrip =
  QCheck.Test.make ~name:"u32 write/read roundtrip" ~count:500
    QCheck.(int_bound 0xFFFFFFF)
    (fun v ->
      let module W = Stdext.Bytio.W in
      let module R = Stdext.Bytio.R in
      let w = W.create 4 in
      W.u32_of_int w v;
      let r = R.of_bytes (W.contents w) in
      R.u32_to_int r = v)

(* --- Stats -------------------------------------------------------------- *)

let test_summary_moments () =
  let s = Stdext.Stats.Summary.create () in
  List.iter (Stdext.Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check Alcotest.int "count" 8 (Stdext.Stats.Summary.count s);
  check (Alcotest.float 1e-9) "mean" 5.0 (Stdext.Stats.Summary.mean s);
  (* Sample variance of that classic data set is 32/7. *)
  check (Alcotest.float 1e-9) "variance" (32.0 /. 7.0)
    (Stdext.Stats.Summary.variance s);
  check (Alcotest.float 1e-9) "min" 2.0 (Stdext.Stats.Summary.min s);
  check (Alcotest.float 1e-9) "max" 9.0 (Stdext.Stats.Summary.max s);
  check (Alcotest.float 1e-9) "total" 40.0 (Stdext.Stats.Summary.total s)

let test_summary_empty () =
  let s = Stdext.Stats.Summary.create () in
  check (Alcotest.float 0.0) "mean 0" 0.0 (Stdext.Stats.Summary.mean s);
  check (Alcotest.float 0.0) "variance 0" 0.0 (Stdext.Stats.Summary.variance s)

let test_samples_percentiles () =
  let s = Stdext.Stats.Samples.create () in
  for i = 1 to 100 do
    Stdext.Stats.Samples.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "median" 50.5 (Stdext.Stats.Samples.median s);
  check (Alcotest.float 1e-6) "p0" 1.0 (Stdext.Stats.Samples.percentile s 0.0);
  check (Alcotest.float 1e-6) "p100" 100.0
    (Stdext.Stats.Samples.percentile s 100.0);
  check Alcotest.bool "p95 in range" true
    (let p = Stdext.Stats.Samples.percentile s 95.0 in
     p >= 95.0 && p <= 96.0)

let test_samples_jitter () =
  let s = Stdext.Stats.Samples.create () in
  List.iter (Stdext.Stats.Samples.add s) [ 1.0; 3.0; 2.0; 4.0 ];
  (* |3-1| + |2-3| + |4-2| = 5, / 3. *)
  check (Alcotest.float 1e-9) "jitter" (5.0 /. 3.0)
    (Stdext.Stats.Samples.jitter s)

let prop_samples_percentile_bounds =
  QCheck.Test.make ~name:"percentiles stay within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
              (float_bound_inclusive 100.0))
    (fun (values, p) ->
      QCheck.assume (values <> []);
      let s = Stdext.Stats.Samples.create () in
      List.iter (Stdext.Stats.Samples.add s) values;
      let v = Stdext.Stats.Samples.percentile s p in
      let lo = List.fold_left min infinity values in
      let hi = List.fold_left max neg_infinity values in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let () =
  Alcotest.run "stdext"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "bool bias" `Quick test_rng_bool_bias;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo within key" `Quick test_heap_fifo_within_key;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "reusable after clear" `Quick
            test_heap_reusable_after_clear;
          Alcotest.test_case "min_key/pop_min" `Quick test_heap_min_key_pop_min;
          qcheck prop_heap_sorts;
        ] );
      ( "wheel",
        [
          Alcotest.test_case "ordering" `Quick test_wheel_order;
          Alcotest.test_case "interleaved add/pop" `Quick test_wheel_interleaved;
          qcheck prop_wheel_vs_sorted;
        ] );
      ( "bytio",
        [
          Alcotest.test_case "roundtrip" `Quick test_bytio_roundtrip;
          Alcotest.test_case "overrun" `Quick test_bytio_overrun;
          Alcotest.test_case "seek backpatch" `Quick test_bytio_seek_backpatch;
          Alcotest.test_case "sub reader" `Quick test_bytio_sub_reader;
          qcheck prop_bytio_u32_roundtrip;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary moments" `Quick test_summary_moments;
          Alcotest.test_case "summary empty" `Quick test_summary_empty;
          Alcotest.test_case "percentiles" `Quick test_samples_percentiles;
          Alcotest.test_case "jitter" `Quick test_samples_jitter;
          qcheck prop_samples_percentile_bounds;
        ] );
    ]
