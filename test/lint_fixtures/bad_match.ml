(* Fixture: a catch-all arm over a drop-reason enumeration — adding a
   constructor would silently fall into the wildcard. *)

type drop_reason = Queue_full | Link_loss | Link_down

let to_string (r : drop_reason) =
  match r with Queue_full -> "queue" | _ -> "other"
