lib/packet/udp_wire.ml: Addr Bytes Checksum Format Stdext
