lib/apps/cbr.mli: Packet Stdext Udp
