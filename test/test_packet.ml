(* Tests for wire formats: checksum algebra, addresses/prefixes, IPv4, TCP,
   UDP and ICMP encode/decode with corruption detection. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Checksum = Packet.Checksum
module Addr = Packet.Addr
module Prefix = Packet.Addr.Prefix
module Ipv4 = Packet.Ipv4
module Tcpw = Packet.Tcp_wire
module Udpw = Packet.Udp_wire
module Icmp = Packet.Icmp_wire

let bytes_gen =
  QCheck.Gen.(map Bytes.of_string (string_size ~gen:printable (0 -- 200)))

let arb_bytes = QCheck.make ~print:(fun b -> Bytes.to_string b) bytes_gen

(* --- Checksum ------------------------------------------------------------ *)

let test_checksum_rfc1071_example () =
  (* The classic example from RFC 1071 §3: words 0001 f203 f4f5 f6f7. *)
  let b = Bytes.create 8 in
  Bytes.set_uint16_be b 0 0x0001;
  Bytes.set_uint16_be b 2 0xf203;
  Bytes.set_uint16_be b 4 0xf4f5;
  Bytes.set_uint16_be b 6 0xf6f7;
  check Alcotest.int "checksum" (lnot 0xddf2 land 0xffff)
    (Checksum.of_bytes b ~pos:0 ~len:8)

let test_checksum_zero_buffer () =
  let b = Bytes.make 10 '\000' in
  check Alcotest.int "all zero" 0xffff (Checksum.of_bytes b ~pos:0 ~len:10)

let test_checksum_odd_length () =
  (* A trailing odd byte is padded with zero on the right. *)
  let b = Bytes.of_string "\x12\x34\x56" in
  let expected = lnot (0x1234 + 0x5600) land 0xffff in
  check Alcotest.int "odd pad" expected (Checksum.of_bytes b ~pos:0 ~len:3)

let prop_checksum_verifies =
  QCheck.Test.make ~name:"buffer including own checksum sums to 0xFFFF"
    ~count:300 arb_bytes (fun payload ->
      (* Append the checksum (even offset) and verify. *)
      let n = Bytes.length payload in
      let padded = if n mod 2 = 0 then n else n + 1 in
      let buf = Bytes.make (padded + 2) '\000' in
      Bytes.blit payload 0 buf 0 n;
      let c = Checksum.of_bytes buf ~pos:0 ~len:padded in
      Bytes.set_uint16_be buf padded c;
      Checksum.valid buf ~pos:0 ~len:(padded + 2))

let prop_checksum_detects_single_flip =
  QCheck.Test.make ~name:"single-byte corruption detected" ~count:300
    QCheck.(pair arb_bytes small_nat)
    (fun (payload, idx) ->
      let n = Bytes.length payload in
      QCheck.assume (n > 0 && n mod 2 = 0);
      let buf = Bytes.make (n + 2) '\000' in
      Bytes.blit payload 0 buf 0 n;
      Bytes.set_uint16_be buf n (Checksum.of_bytes buf ~pos:0 ~len:n);
      let i = idx mod n in
      Bytes.set_uint8 buf i (Bytes.get_uint8 buf i lxor 0x5a);
      not (Checksum.valid buf ~pos:0 ~len:(n + 2)))

let prop_checksum_chunking =
  QCheck.Test.make ~name:"accumulation is chunk-invariant (even splits)"
    ~count:300
    QCheck.(pair arb_bytes small_nat)
    (fun (b, k) ->
      let n = Bytes.length b in
      QCheck.assume (n >= 4);
      let cut = max 2 (k mod n) in
      let cut = if cut mod 2 = 1 then cut - 1 else cut in
      QCheck.assume (cut > 0 && cut < n);
      let whole = Checksum.of_bytes b ~pos:0 ~len:n in
      let acc = Checksum.add_bytes Checksum.zero b ~pos:0 ~len:cut in
      let split =
        Checksum.finish (Checksum.add_bytes acc b ~pos:cut ~len:(n - cut))
      in
      whole = split)

(* --- Addr ---------------------------------------------------------------- *)

let test_addr_parse_print () =
  check Alcotest.string "roundtrip" "10.1.2.3"
    (Addr.to_string (Addr.of_string "10.1.2.3"));
  check Alcotest.string "zeros" "0.0.0.0" (Addr.to_string Addr.any);
  check Alcotest.string "max" "255.255.255.255"
    (Addr.to_string (Addr.v 255 255 255 255))

let test_addr_invalid () =
  List.iter
    (fun s ->
      match Addr.of_string_opt s with
      | None -> ()
      | Some _ -> Alcotest.failf "accepted %S" s)
    [ "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "1.2.3.x"; ""; "-1.2.3.4" ]

let test_addr_compare_unsigned () =
  (* 200.0.0.0 must compare greater than 100.0.0.0 despite the sign bit. *)
  check Alcotest.bool "unsigned order" true
    (Addr.compare (Addr.v 200 0 0 0) (Addr.v 100 0 0 0) > 0)

let test_prefix_membership () =
  let p = Prefix.of_string "10.1.0.0/16" in
  check Alcotest.bool "inside" true (Prefix.mem (Addr.of_string "10.1.200.3") p);
  check Alcotest.bool "outside" false (Prefix.mem (Addr.of_string "10.2.0.1") p);
  check Alcotest.bool "default matches all" true
    (Prefix.mem (Addr.v 1 2 3 4) Prefix.default);
  let host = Prefix.host (Addr.v 9 9 9 9) in
  check Alcotest.bool "host route self" true (Prefix.mem (Addr.v 9 9 9 9) host);
  check Alcotest.bool "host route other" false
    (Prefix.mem (Addr.v 9 9 9 8) host)

let test_prefix_normalizes_host_bits () =
  let p = Prefix.make (Addr.of_string "10.1.2.3") 16 in
  check Alcotest.string "network" "10.1.0.0" (Addr.to_string (Prefix.network p));
  check Alcotest.string "print" "10.1.0.0/16" (Prefix.to_string p)

let arb_addr =
  QCheck.make
    ~print:(fun a -> Addr.to_string a)
    QCheck.Gen.(map (fun i -> Addr.of_int32 (Int32.of_int i)) (0 -- 0xFFFFFF))

let prop_addr_string_roundtrip =
  QCheck.Test.make ~name:"addr to_string/of_string roundtrip" ~count:300
    arb_addr (fun a -> Addr.equal a (Addr.of_string (Addr.to_string a)))

let prop_prefix_mem_matches_mask =
  QCheck.Test.make ~name:"prefix membership equals mask arithmetic" ~count:500
    QCheck.(triple arb_addr arb_addr (int_bound 32))
    (fun (a, b, len) ->
      let p = Prefix.make a len in
      let mask = if len = 0 then 0l else Int32.shift_left (-1l) (32 - len) in
      let expected =
        Int32.equal
          (Int32.logand (Addr.to_int32 b) mask)
          (Int32.logand (Addr.to_int32 a) mask)
      in
      Prefix.mem b p = expected)

(* --- IPv4 ---------------------------------------------------------------- *)

let mk_header ?(tos = Ipv4.Tos.Routine) ?(id = 77) ?(ttl = 64) ?(df = false)
    ?(mf = false) ?(off = 0) () =
  Ipv4.make_header ~tos ~id ~dont_fragment:df ~more_fragments:mf
    ~frag_offset:off ~ttl ~proto:Ipv4.Proto.Udp ~src:(Addr.v 10 0 0 1)
    ~dst:(Addr.v 10 0 0 2) ()

let test_ipv4_roundtrip () =
  let h =
    mk_header ~tos:Ipv4.Tos.Low_delay ~id:4242 ~ttl:17 ~mf:true ~off:1480 ()
  in
  let payload = Bytes.of_string "some payload" in
  match Ipv4.decode (Ipv4.encode h ~payload) with
  | Error e -> Alcotest.failf "decode: %a" Ipv4.pp_error e
  | Ok (h', p') ->
      check Alcotest.bool "header equal" true (h = h');
      check Alcotest.string "payload" "some payload" (Bytes.to_string p')

let test_ipv4_checksum_detects_corruption () =
  let buf = Ipv4.encode (mk_header ()) ~payload:(Bytes.make 8 'x') in
  Bytes.set_uint8 buf 8 (Bytes.get_uint8 buf 8 lxor 0xff);
  match Ipv4.decode buf with
  | Error `Bad_checksum -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Ipv4.pp_error e
  | Ok _ -> Alcotest.fail "accepted corrupt header"

let test_ipv4_truncated () =
  match Ipv4.decode (Bytes.make 10 '\000') with
  | Error `Truncated -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Truncated"

let test_ipv4_bad_version () =
  let buf = Ipv4.encode (mk_header ()) ~payload:Bytes.empty in
  Bytes.set_uint8 buf 0 ((6 lsl 4) lor 5);
  (* Fix the checksum so only the version is wrong. *)
  Bytes.set_uint16_be buf 10 0;
  let c = Checksum.of_bytes buf ~pos:0 ~len:20 in
  Bytes.set_uint16_be buf 10 c;
  match Ipv4.decode buf with
  | Error (`Bad_version 6) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Ipv4.pp_error e
  | Ok _ -> Alcotest.fail "accepted v6"

let test_ipv4_rejects_bad_fields () =
  let fails f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "oversize payload" true
    (fails (fun () ->
         Ipv4.encode (mk_header ()) ~payload:(Bytes.make 65530 'x')));
  check Alcotest.bool "odd frag offset" true
    (fails (fun () -> Ipv4.encode (mk_header ~off:7 ()) ~payload:Bytes.empty));
  check Alcotest.bool "ttl range" true
    (fails (fun () -> Ipv4.encode (mk_header ~ttl:300 ()) ~payload:Bytes.empty))

let test_ipv4_tos_coding () =
  List.iter
    (fun tos ->
      check Alcotest.bool "tos roundtrip" true
        (Ipv4.Tos.of_int (Ipv4.Tos.to_int tos) = tos))
    [
      Ipv4.Tos.Routine;
      Ipv4.Tos.Low_delay;
      Ipv4.Tos.High_throughput;
      Ipv4.Tos.High_reliability;
    ]

let test_proto_coding () =
  check Alcotest.int "icmp" 1 (Ipv4.Proto.to_int Ipv4.Proto.Icmp);
  check Alcotest.int "tcp" 6 (Ipv4.Proto.to_int Ipv4.Proto.Tcp);
  check Alcotest.int "udp" 17 (Ipv4.Proto.to_int Ipv4.Proto.Udp);
  check Alcotest.bool "other" true (Ipv4.Proto.of_int 89 = Ipv4.Proto.Other 89)

let prop_ipv4_roundtrip =
  QCheck.Test.make ~name:"ipv4 encode/decode roundtrip" ~count:300
    QCheck.(quad (int_bound 0xffff) (int_bound 255) (int_bound 8000) arb_bytes)
    (fun (id, ttl, off8, payload) ->
      let h =
        Ipv4.make_header ~id ~ttl ~frag_offset:(off8 * 8)
          ~more_fragments:(off8 mod 2 = 0) ~proto:Ipv4.Proto.Tcp
          ~src:(Addr.v 1 2 3 4) ~dst:(Addr.v 5 6 7 8) ()
      in
      match Ipv4.decode (Ipv4.encode h ~payload) with
      | Ok (h', p') -> h = h' && Bytes.equal p' payload
      | Error _ -> false)

let prop_ipv4_peek_matches_decode =
  QCheck.Test.make ~name:"peek agrees with decode" ~count:300
    QCheck.(pair (int_bound 255) arb_bytes)
    (fun (ttl, payload) ->
      let h = mk_header ~ttl () in
      let buf = Ipv4.encode h ~payload in
      match (Ipv4.peek buf, Ipv4.decode buf) with
      | Ok ph, Ok (dh, dp) ->
          ph = dh && Bytes.equal (Ipv4.payload_of buf) dp
          && Bytes.equal dp payload
      | _ -> false)

let prop_patch_ttl_matches_recompute =
  (* The gateway fast path patches TTL and checksum in place (RFC 1624);
     the result must be byte-identical to a full re-encode with the
     decremented TTL — checksum included. *)
  QCheck.Test.make ~name:"patch_ttl equals full recompute" ~count:500
    QCheck.(quad (int_bound 0xffff) (int_range 1 255) (int_bound 255) arb_bytes)
    (fun (id, ttl, tos_bits, payload) ->
      let h =
        Ipv4.make_header ~tos:(Ipv4.Tos.of_int tos_bits) ~id ~ttl
          ~proto:Ipv4.Proto.Udp ~src:(Addr.v 10 0 0 1) ~dst:(Addr.v 10 9 8 7)
          ()
      in
      let patched = Ipv4.encode h ~payload in
      Ipv4.patch_ttl patched;
      let reencoded = Ipv4.encode { h with Ipv4.ttl = ttl - 1 } ~payload in
      Bytes.equal patched reencoded
      && Checksum.valid patched ~pos:0 ~len:Ipv4.header_size)

let test_patch_ttl_rejects_zero () =
  let buf = Ipv4.encode (mk_header ~ttl:0 ()) ~payload:Bytes.empty in
  check Alcotest.bool "raises" true
    (match Ipv4.patch_ttl buf with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- TCP wire ------------------------------------------------------------ *)

let src = Addr.v 10 0 0 1
let dst = Addr.v 10 0 0 2

let test_tcp_roundtrip () =
  let seg =
    Tcpw.make ~seq:123456 ~ack_n:654321
      ~flags:(Tcpw.flags ~ack:true ~psh:true ())
      ~window:8192 ~mss:(Some 1460)
      ~payload:(Bytes.of_string "data!") ~src_port:1000 ~dst_port:80 ()
  in
  match Tcpw.decode ~src ~dst (Tcpw.encode ~src ~dst seg) with
  | Error e -> Alcotest.failf "decode: %a" Tcpw.pp_error e
  | Ok seg' ->
      check Alcotest.bool "equal" true
        (seg.Tcpw.seq = seg'.Tcpw.seq
        && seg.Tcpw.ack_n = seg'.Tcpw.ack_n
        && seg.Tcpw.flags = seg'.Tcpw.flags
        && seg.Tcpw.window = seg'.Tcpw.window
        && seg.Tcpw.mss = seg'.Tcpw.mss
        && Bytes.equal seg.Tcpw.payload seg'.Tcpw.payload)

let test_tcp_checksum_covers_addresses () =
  (* A segment carried to the wrong address must fail its checksum: this
     is the pseudo-header protecting against misdelivery. *)
  let seg = Tcpw.make ~src_port:1 ~dst_port:2 () in
  let buf = Tcpw.encode ~src ~dst seg in
  match Tcpw.decode ~src ~dst:(Addr.v 10 0 0 9) buf with
  | Error `Bad_checksum -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Bad_checksum"

let test_tcp_corruption_detected () =
  let seg = Tcpw.make ~payload:(Bytes.make 100 'd') ~src_port:5 ~dst_port:6 () in
  let buf = Tcpw.encode ~src ~dst seg in
  Bytes.set_uint8 buf 50 (Bytes.get_uint8 buf 50 lxor 1);
  match Tcpw.decode ~src ~dst buf with
  | Error `Bad_checksum -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Bad_checksum"

let test_tcp_header_sizes () =
  let seg = Tcpw.make ~src_port:1 ~dst_port:2 () in
  check Alcotest.int "bare header" 20 (Bytes.length (Tcpw.encode ~src ~dst seg));
  let seg' = Tcpw.make ~mss:(Some 536) ~src_port:1 ~dst_port:2 () in
  check Alcotest.int "with MSS option" 24
    (Bytes.length (Tcpw.encode ~src ~dst seg'))

let test_tcp_flags_pp () =
  let s f = Format.asprintf "%a" Tcpw.pp_flags f in
  check Alcotest.string "syn" "S" (s (Tcpw.flags ~syn:true ()));
  check Alcotest.string "synack" "SA" (s (Tcpw.flags ~syn:true ~ack:true ()));
  check Alcotest.string "none" "." (s Tcpw.no_flags)

let prop_tcp_roundtrip =
  QCheck.Test.make ~name:"tcp segment roundtrip" ~count:300
    QCheck.(
      quad (int_bound 0xFFFF) (int_bound 0xFFFF) (int_bound 0xffff) arb_bytes)
    (fun (seq_lo, ack_lo, window, payload) ->
      let seq = seq_lo * 65521 land 0xFFFFFFFF in
      let ack_n = ack_lo * 65519 land 0xFFFFFFFF in
      let seg =
        Tcpw.make ~seq ~ack_n
          ~flags:(Tcpw.flags ~ack:(ack_lo mod 2 = 0) ~fin:(seq_lo mod 3 = 0) ())
          ~window ~payload ~src_port:1234 ~dst_port:4321 ()
      in
      match Tcpw.decode ~src ~dst (Tcpw.encode ~src ~dst seg) with
      | Ok s ->
          s.Tcpw.seq = seq && s.Tcpw.ack_n = ack_n && s.Tcpw.window = window
          && Bytes.equal s.Tcpw.payload payload
      | Error _ -> false)

let prop_tcp_encode_into_matches_encode =
  (* The allocation-free emitter must be byte-for-byte the reference
     encoder, including the checksum and the surrounding buffer bytes. *)
  QCheck.Test.make ~name:"tcp encode_into equals encode" ~count:300
    QCheck.(
      quad (int_bound 0xFFFF) (int_bound 0xFFFF) (int_bound 0xffff) arb_bytes)
    (fun (seq_lo, ack_lo, window, payload) ->
      let seq = seq_lo * 65521 land 0xFFFFFFFF in
      let ack_n = ack_lo * 65519 land 0xFFFFFFFF in
      let flags = Tcpw.flags ~ack:(ack_lo mod 2 = 0) ~psh:(seq_lo mod 2 = 0) () in
      let mss = if seq_lo mod 5 = 0 then Some 1460 else None in
      let reference =
        Tcpw.encode ~src ~dst
          (Tcpw.make ~seq ~ack_n ~flags ~window ~mss ~payload ~src_port:1234
             ~dst_port:4321 ())
      in
      let pos = 11 (* deliberately unaligned prefix *) in
      let hsize = Tcpw.header_bytes ~mss () in
      let plen = Bytes.length payload in
      let buf = Bytes.make (pos + hsize + plen + 7) '\xee' in
      Bytes.blit payload 0 buf (pos + hsize) plen;
      let total =
        Tcpw.encode_into ~src ~dst ~src_port:1234 ~dst_port:4321 ~seq ~ack_n
          ~flags ~window ~mss ~payload_len:plen buf ~pos
      in
      total = Bytes.length reference
      && Bytes.equal reference (Bytes.sub buf pos total)
      && (* bytes outside the segment untouched *)
      Bytes.sub buf 0 pos = Bytes.make pos '\xee'
      && Bytes.sub buf (pos + total) 7 = Bytes.make 7 '\xee')

let prop_tcp_syn_options_roundtrip =
  (* SYN option block (MSS + wscale + SACK-permitted): any combination
     survives encode/decode, and the header length is exactly 24 (MSS
     alone) or 32 (full block with NOP padding). *)
  QCheck.Test.make ~name:"tcp syn options roundtrip" ~count:300
    QCheck.(quad (int_range 1 0xFFFF) (int_bound 29) bool arb_bytes)
    (fun (mss_v, ws_raw, sackp, payload) ->
      let mss = Some mss_v in
      let wscale = if ws_raw <= 14 then Some ws_raw else None in
      let seg =
        Tcpw.make ~seq:5 ~flags:(Tcpw.flags ~syn:true ()) ~window:1000 ~mss
          ~wscale ~sack_permitted:sackp ~payload ~src_port:1 ~dst_port:2 ()
      in
      let expected_hsize = if wscale <> None || sackp then 32 else 24 in
      Tcpw.header_size seg = expected_hsize
      &&
      match Tcpw.decode ~src ~dst (Tcpw.encode ~src ~dst seg) with
      | Ok s ->
          s.Tcpw.mss = mss && s.Tcpw.wscale = wscale
          && s.Tcpw.sack_permitted = sackp
          && Bytes.equal s.Tcpw.payload payload
      | Error _ -> false)

let prop_tcp_sack_roundtrip =
  (* SACK blocks survive encode/decode in order, any count up to 4. *)
  QCheck.Test.make ~name:"tcp sack blocks roundtrip" ~count:300
    QCheck.(
      pair
        (list_of_size
           Gen.(1 -- Tcpw.max_sack_blocks)
           (pair (int_bound 0xFFFF) (int_bound 0xFFFF)))
        arb_bytes)
    (fun (raw, payload) ->
      let sack =
        List.map
          (fun (a, b) ->
            (a * 65521 land 0xFFFFFFFF, b * 65519 land 0xFFFFFFFF))
          raw
      in
      let seg =
        Tcpw.make ~seq:9 ~ack_n:4
          ~flags:(Tcpw.flags ~ack:true ())
          ~window:512 ~sack ~payload ~src_port:1 ~dst_port:2 ()
      in
      Tcpw.header_size seg = 24 + (8 * List.length sack)
      &&
      match Tcpw.decode ~src ~dst (Tcpw.encode ~src ~dst seg) with
      | Ok s -> s.Tcpw.sack = sack && Bytes.equal s.Tcpw.payload payload
      | Error _ -> false)

let prop_tcp_encode_into_matches_encode_options =
  (* The allocation-free emitter with option blocks — SYN options on one
     branch, SACK blocks on the other — against the reference encoder. *)
  QCheck.Test.make ~name:"tcp encode_into equals encode (options)" ~count:300
    QCheck.(quad (int_bound 0xFFFF) (int_bound 14) bool arb_bytes)
    (fun (seq_lo, shift, syn_case, payload) ->
      let seq = seq_lo * 65521 land 0xFFFFFFFF in
      let flags, mss, wscale, sackp, sack =
        if syn_case then
          ( Tcpw.flags ~syn:true (),
            Some 1460,
            Some shift,
            shift mod 2 = 0,
            [] )
        else
          ( Tcpw.flags ~ack:true (),
            None,
            None,
            false,
            [
              ((seq + 100) land 0xFFFFFFFF, (seq + 200) land 0xFFFFFFFF);
              ((seq + 400) land 0xFFFFFFFF, (seq + 900) land 0xFFFFFFFF);
            ] )
      in
      let reference =
        Tcpw.encode ~src ~dst
          (Tcpw.make ~seq ~ack_n:77 ~flags ~window:3000 ~mss ~wscale
             ~sack_permitted:sackp ~sack ~payload ~src_port:5 ~dst_port:6 ())
      in
      let pos = 3 in
      let hsize =
        Tcpw.header_bytes ~wscale ~sack_permitted:sackp ~sack ~mss ()
      in
      let plen = Bytes.length payload in
      let buf = Bytes.make (pos + hsize + plen + 5) '\xc3' in
      Bytes.blit payload 0 buf (pos + hsize) plen;
      let total =
        Tcpw.encode_into ~src ~dst ~src_port:5 ~dst_port:6 ~seq ~ack_n:77
          ~flags ~window:3000 ~mss ~wscale ~sack_permitted:sackp ~sack
          ~payload_len:plen buf ~pos
      in
      total = Bytes.length reference
      && Bytes.equal reference (Bytes.sub buf pos total)
      && Bytes.sub buf 0 pos = Bytes.make pos '\xc3'
      && Bytes.sub buf (pos + total) 5 = Bytes.make 5 '\xc3')

let prop_tcp_peek_matches_decode =
  QCheck.Test.make ~name:"tcp peek accessors equal decode" ~count:300
    QCheck.(pair (int_bound 0xFFFF) arb_bytes)
    (fun (seq_lo, payload) ->
      let seq = seq_lo * 65521 land 0xFFFFFFFF in
      let seg =
        Tcpw.make ~seq ~ack_n:(seq_lo lxor 0xABCD)
          ~flags:(Tcpw.flags ~ack:true ~psh:(seq_lo mod 2 = 0) ())
          ~window:(seq_lo land 0xffff) ~payload ~src_port:86 ~dst_port:6502 ()
      in
      let buf = Tcpw.encode ~src ~dst seg in
      match (Tcpw.peek ~src ~dst buf, Tcpw.decode ~src ~dst buf) with
      | Ok data_offset, Ok d ->
          data_offset = 20
          && Tcpw.peek_src_port buf = d.Tcpw.src_port
          && Tcpw.peek_dst_port buf = d.Tcpw.dst_port
          && Tcpw.peek_seq buf = d.Tcpw.seq
          && Tcpw.peek_ack_n buf = d.Tcpw.ack_n
          && Tcpw.peek_window buf = d.Tcpw.window
          && Tcpw.peek_flag_bits buf = (if seq_lo mod 2 = 0 then 0x18 else 0x10)
          && (match Tcpw.of_peeked buf ~data_offset with
             | Ok d' -> d' = d
             | Error _ -> false)
      | _ -> false)

let prop_ipv4_encode_into_matches_encode =
  QCheck.Test.make ~name:"ipv4 encode_into equals encode" ~count:300
    QCheck.(pair (int_bound 0xffff) arb_bytes)
    (fun (id, payload) ->
      let h =
        Ipv4.make_header ~tos:Ipv4.Tos.Low_delay ~id ~ttl:((id mod 255) + 1)
          ~proto:Ipv4.Proto.Tcp ~src:(Addr.v 10 0 0 1) ~dst:(Addr.v 10 9 9 9)
          ()
      in
      let reference = Ipv4.encode h ~payload in
      let frame = Bytes.create (Ipv4.header_size + Bytes.length payload) in
      Bytes.blit payload 0 frame Ipv4.header_size (Bytes.length payload);
      Ipv4.encode_into h frame;
      Bytes.equal reference frame)

(* --- UDP wire ------------------------------------------------------------ *)

let test_udp_roundtrip () =
  let d = { Udpw.src_port = 53; dst_port = 5353; payload = Bytes.of_string "q" } in
  match Udpw.decode ~src ~dst (Udpw.encode ~src ~dst d) with
  | Error e -> Alcotest.failf "decode: %a" Udpw.pp_error e
  | Ok d' ->
      check Alcotest.int "sport" 53 d'.Udpw.src_port;
      check Alcotest.int "dport" 5353 d'.Udpw.dst_port;
      check Alcotest.string "payload" "q" (Bytes.to_string d'.Udpw.payload)

let test_udp_checksum () =
  let d = { Udpw.src_port = 1; dst_port = 2; payload = Bytes.make 33 'u' } in
  let buf = Udpw.encode ~src ~dst d in
  Bytes.set_uint8 buf 20 (Bytes.get_uint8 buf 20 lxor 4);
  (match Udpw.decode ~src ~dst buf with
  | Error `Bad_checksum -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Bad_checksum");
  (* Wrong pseudo-header also rejected. *)
  let good = Udpw.encode ~src ~dst d in
  match Udpw.decode ~src:(Addr.v 9 9 9 9) ~dst good with
  | Error `Bad_checksum -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected pseudo-header failure"

let prop_udp_roundtrip =
  QCheck.Test.make ~name:"udp datagram roundtrip" ~count:300
    QCheck.(triple (1 -- 0xffff) (1 -- 0xffff) arb_bytes)
    (fun (sp, dp, payload) ->
      let d = { Udpw.src_port = sp; dst_port = dp; payload } in
      match Udpw.decode ~src ~dst (Udpw.encode ~src ~dst d) with
      | Ok d' ->
          d'.Udpw.src_port = sp && d'.Udpw.dst_port = dp
          && Bytes.equal d'.Udpw.payload payload
      | Error _ -> false)

let prop_udp_encode_into_matches_encode =
  QCheck.Test.make ~name:"udp encode_into equals encode" ~count:300
    QCheck.(triple (1 -- 0xffff) (1 -- 0xffff) arb_bytes)
    (fun (sp, dp, payload) ->
      let reference =
        Udpw.encode ~src ~dst { Udpw.src_port = sp; dst_port = dp; payload }
      in
      let pos = 20 in
      let plen = Bytes.length payload in
      let buf = Bytes.create (pos + Udpw.header_size + plen) in
      Bytes.blit payload 0 buf (pos + Udpw.header_size) plen;
      let total =
        Udpw.encode_into ~src ~dst ~src_port:sp ~dst_port:dp ~payload_len:plen
          buf ~pos
      in
      total = Bytes.length reference
      && Bytes.equal reference (Bytes.sub buf pos total))

(* --- ICMP ---------------------------------------------------------------- *)

let test_icmp_echo_roundtrip () =
  let msg = Icmp.Echo_request { id = 7; seq = 3; payload = Bytes.of_string "ping" } in
  match Icmp.decode (Icmp.encode msg) with
  | Ok (Icmp.Echo_request { id = 7; seq = 3; payload }) ->
      check Alcotest.string "payload" "ping" (Bytes.to_string payload)
  | Ok m -> Alcotest.failf "wrong message: %a" Icmp.pp m
  | Error e -> Alcotest.failf "decode: %a" Icmp.pp_error e

let test_icmp_unreachable_roundtrip () =
  let original = Bytes.make 28 '\001' in
  let msg = Icmp.Dest_unreachable { code = Icmp.Port_unreachable; original } in
  match Icmp.decode (Icmp.encode msg) with
  | Ok (Icmp.Dest_unreachable { code = Icmp.Port_unreachable; original = o }) ->
      check Alcotest.int "original kept" 28 (Bytes.length o)
  | Ok m -> Alcotest.failf "wrong message: %a" Icmp.pp m
  | Error e -> Alcotest.failf "decode: %a" Icmp.pp_error e

let test_icmp_time_exceeded () =
  let msg = Icmp.Time_exceeded { original = Bytes.make 28 'o' } in
  match Icmp.decode (Icmp.encode msg) with
  | Ok (Icmp.Time_exceeded _) -> ()
  | Ok m -> Alcotest.failf "wrong message: %a" Icmp.pp m
  | Error e -> Alcotest.failf "decode: %a" Icmp.pp_error e

let test_icmp_corruption () =
  let buf =
    Icmp.encode (Icmp.Echo_reply { id = 1; seq = 2; payload = Bytes.make 4 'x' })
  in
  Bytes.set_uint8 buf 5 (Bytes.get_uint8 buf 5 lxor 0x80);
  match Icmp.decode buf with
  | Error `Bad_checksum -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Bad_checksum"

let test_icmp_original_clip () =
  let big = Bytes.make 100 'z' in
  check Alcotest.int "clipped to header+8" 28
    (Bytes.length (Icmp.original_of ~ip_header:big));
  let small = Bytes.make 10 'z' in
  check Alcotest.int "small kept whole" 10
    (Bytes.length (Icmp.original_of ~ip_header:small))

let () =
  Alcotest.run "packet"
    [
      ( "checksum",
        [
          Alcotest.test_case "rfc1071 example" `Quick test_checksum_rfc1071_example;
          Alcotest.test_case "zero buffer" `Quick test_checksum_zero_buffer;
          Alcotest.test_case "odd length" `Quick test_checksum_odd_length;
          qcheck prop_checksum_verifies;
          qcheck prop_checksum_detects_single_flip;
          qcheck prop_checksum_chunking;
        ] );
      ( "addr",
        [
          Alcotest.test_case "parse/print" `Quick test_addr_parse_print;
          Alcotest.test_case "invalid rejected" `Quick test_addr_invalid;
          Alcotest.test_case "unsigned compare" `Quick test_addr_compare_unsigned;
          Alcotest.test_case "prefix membership" `Quick test_prefix_membership;
          Alcotest.test_case "prefix normalization" `Quick
            test_prefix_normalizes_host_bits;
          qcheck prop_addr_string_roundtrip;
          qcheck prop_prefix_mem_matches_mask;
        ] );
      ( "ipv4",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "corruption" `Quick test_ipv4_checksum_detects_corruption;
          Alcotest.test_case "truncated" `Quick test_ipv4_truncated;
          Alcotest.test_case "bad version" `Quick test_ipv4_bad_version;
          Alcotest.test_case "field validation" `Quick test_ipv4_rejects_bad_fields;
          Alcotest.test_case "tos coding" `Quick test_ipv4_tos_coding;
          Alcotest.test_case "proto coding" `Quick test_proto_coding;
          qcheck prop_ipv4_roundtrip;
          qcheck prop_ipv4_peek_matches_decode;
          qcheck prop_ipv4_encode_into_matches_encode;
          qcheck prop_patch_ttl_matches_recompute;
          Alcotest.test_case "patch_ttl rejects ttl=0" `Quick
            test_patch_ttl_rejects_zero;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "roundtrip" `Quick test_tcp_roundtrip;
          Alcotest.test_case "pseudo-header" `Quick test_tcp_checksum_covers_addresses;
          Alcotest.test_case "corruption" `Quick test_tcp_corruption_detected;
          Alcotest.test_case "header sizes" `Quick test_tcp_header_sizes;
          Alcotest.test_case "flags pp" `Quick test_tcp_flags_pp;
          qcheck prop_tcp_roundtrip;
          qcheck prop_tcp_encode_into_matches_encode;
          qcheck prop_tcp_syn_options_roundtrip;
          qcheck prop_tcp_sack_roundtrip;
          qcheck prop_tcp_encode_into_matches_encode_options;
          qcheck prop_tcp_peek_matches_decode;
        ] );
      ( "udp",
        [
          Alcotest.test_case "roundtrip" `Quick test_udp_roundtrip;
          Alcotest.test_case "checksum" `Quick test_udp_checksum;
          qcheck prop_udp_roundtrip;
          qcheck prop_udp_encode_into_matches_encode;
        ] );
      ( "icmp",
        [
          Alcotest.test_case "echo roundtrip" `Quick test_icmp_echo_roundtrip;
          Alcotest.test_case "unreachable roundtrip" `Quick
            test_icmp_unreachable_roundtrip;
          Alcotest.test_case "time exceeded" `Quick test_icmp_time_exceeded;
          Alcotest.test_case "corruption" `Quick test_icmp_corruption;
          Alcotest.test_case "original clip" `Quick test_icmp_original_clip;
        ] );
    ]
