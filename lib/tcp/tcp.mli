(** TCP: the reliable sequenced byte stream (RFC 793), with the congestion
    machinery contemporary with the paper (Jacobson 1988).

    Architecturally this module is the other half of the TCP/IP split
    (Clark §4): everything here — connection state, sequence space,
    retransmission, flow and congestion control — lives in the *hosts*.
    Gateways see only self-describing datagrams.  That is fate-sharing:
    when a gateway reboots, nothing a connection depends on is lost
    (experiments E1/E2); when an endpoint dies, its connections die with
    it, which is exactly the intended semantics.

    The engine implements: the full 11-state machine, three-way handshake,
    MSS negotiation, sliding-window flow control with receiver-driven
    window advertisement, out-of-order reassembly, cumulative ACKs with
    delayed ACK, Nagle's algorithm, RTT estimation (Jacobson/Karels) with
    Karn's rule and exponential backoff, zero-window persist probes,
    TIME-WAIT with 2MSL, RST handling, and selectable congestion control:
    [No_cc] (pre-1988 TCP), [Tahoe] (slow start + congestion avoidance +
    fast retransmit), [Reno] (adds fast recovery) — compared in E9. *)

module Seq = Seq_num
module Rto = Rto
module Sendbuf = Sendbuf
module Sack = Sack

type cc_algo = No_cc | Tahoe | Reno

val pp_cc : Format.formatter -> cc_algo -> unit

type config = {
  mss : int;  (** Announced MSS (default 1460). *)
  window : int;  (** Receive window / buffer (default 65535). *)
  cc : cc_algo;  (** Default [Reno]. *)
  nagle : bool;  (** Default [true]. *)
  syn_retries : int;  (** Connection-establishment attempts (default 6). *)
  max_retransmits : int;  (** Data retransmissions before giving up (12). *)
  msl_us : int;  (** MSL for TIME-WAIT = 2·MSL (default 5 s). *)
  delayed_ack_us : int;  (** Delayed-ACK timer (default 200 ms). *)
  persist_us : int;  (** Initial zero-window probe interval (1 s). *)
  send_buffer : int;  (** Send-buffer bytes (default 262144). *)
  tos : Packet.Ipv4.Tos.t;  (** ToS for all segments (default Routine). *)
  sack : bool;
      (** Offer/accept selective acknowledgment, RFC 2018 (default
          [true]).  Live on a connection only when both SYNs carried
          sack-permitted. *)
  window_scaling : bool;
      (** Offer window scaling, RFC 7323 (default [true]).  The shift is
          derived from [window]; live only when both sides offer. *)
}

val default_config : config

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

val pp_state : Format.formatter -> state -> unit

val st_transitions : (string * string * string) list
(** The RFC 793 transition diagram as data: [(state, event, state')]
    edges, where ["*"] is the any-state source of the teardown path.
    The catenet-lint [transitions] pass checks every state assignment in
    the implementation against this table and flags declared edges with
    no implementing assignment. *)

type close_reason =
  | Graceful  (** Both FINs exchanged. *)
  | Reset  (** Peer sent RST. *)
  | Timed_out  (** Retransmission limit exceeded. *)
  | Refused  (** SYN answered by RST. *)

val pp_close_reason : Format.formatter -> close_reason -> unit

type t
(** A host's TCP instance (one per IP stack). *)

type conn

type listener

(** Per-connection counters and live congestion snapshot. *)
type conn_stats = {
  mutable segs_out : int;
  mutable segs_in : int;
  mutable bytes_out : int;  (** Payload bytes sent, first transmissions. *)
  mutable bytes_in : int;  (** Payload bytes delivered in order. *)
  mutable retransmits : int;
  mutable rto_fires : int;
  mutable fast_retransmits : int;
  mutable dupacks : int;
  mutable bytes_retransmitted : int;
  mutable fast_path_acks : int;
      (** Pure ACKs consumed by header prediction. *)
  mutable fast_path_data : int;
      (** In-sequence data segments consumed by header prediction. *)
}

val create : ?config:config -> Ip.Stack.t -> t
(** Attach TCP to a stack; registers protocol 6. *)

val stack : t -> Ip.Stack.t

val set_fast_path : t -> bool -> unit
(** Toggle the transport fast path (default on): header-predicted receive
    for in-sequence ESTABLISHED traffic and allocation-free segment
    emission.  Off means the reference RFC 793 dispatch and the copying
    encode everywhere.  Protocol behaviour — every segment, state change
    and delivered byte — is identical either way; the switch exists for
    benchmarking and differential testing. *)

val fast_path : t -> bool

type listen_error = Port_in_use of int

exception Listen_error of listen_error

val listen_error_to_string : listen_error -> string

val listen : t -> port:int -> accept:(conn -> unit) -> listener
(** Passive open.  [accept] fires when a handshake completes.
    @raise Listen_error if the port is in use. *)

val close_listener : listener -> unit

val connect :
  t ->
  ?config:config ->
  dst:Packet.Addr.t ->
  dst_port:int ->
  unit ->
  conn
(** Active open; returns immediately with the connection in [Syn_sent].
    [config] overrides the instance default for this connection. *)

(** {1 Connection API} *)

val on_established : conn -> (unit -> unit) -> unit
val on_receive : conn -> (bytes -> unit) -> unit
(** In-order data upcall.  Not called while reading is paused. *)

val on_peer_fin : conn -> (unit -> unit) -> unit
(** Fires when the peer's FIN is consumed: end of incoming stream. *)

val on_close : conn -> (close_reason -> unit) -> unit

val send : conn -> bytes -> int
(** Queue bytes for transmission; returns how many the send buffer
    accepted (0 once the connection is closing). *)

val send_space : conn -> int

val close : conn -> unit
(** Graceful close: FIN once queued data drains. *)

val abort : conn -> unit
(** Hard close: RST to the peer, connection discarded. *)

val pause_reading : conn -> unit
(** Stop delivering and start shrinking the advertised window — backing
    the zero-window/persist machinery. *)

val resume_reading : conn -> unit

val state : conn -> state
val stats : conn -> conn_stats
val cwnd : conn -> int
val ssthresh : conn -> int
val srtt_us : conn -> int option
val snd_wnd : conn -> int
val local_port : conn -> int
val remote_addr : conn -> Packet.Addr.t
val remote_port : conn -> int
val mss : conn -> int
(** Effective (negotiated) MSS. *)

(** {1 Instance-wide} *)

type stats = {
  mutable active_opens : int;
  mutable passive_opens : int;
  mutable established : int;
  mutable resets_out : int;
  mutable resets_in : int;
  mutable bad_segments : int;
  mutable no_listener : int;
  mutable challenge_acks_out : int;
      (** Challenge ACKs sent for in-window RST/SYN (RFC 5961). *)
  mutable rst_rejected_inexact : int;
      (** In-window RSTs refused because seq <> rcv_nxt. *)
  mutable dropped_acks_invalid : int;
      (** ACKs outside [snd_una - max_wnd, snd_max], dropped. *)
}

val instance_stats : t -> stats

val metrics_items : t -> unit -> (string * Trace.Metrics.value) list
(** Pull-based metrics source over {!instance_stats} plus the live
    connection count, for [Trace.Metrics.register]. *)

val connection_count : t -> int
(** Live (non-Closed) connections. *)

(** {1 Introspection (tests and debugging)} *)

val snd_una : conn -> int
val snd_nxt : conn -> int
val rcv_nxt : conn -> int
val ooo_segments : conn -> int
val rto_us : conn -> int

val snd_wscale : conn -> int
(** Shift applied to windows the peer advertises (0 = no scaling). *)

val rcv_wscale : conn -> int
(** Shift the peer applies to windows we advertise. *)

val sack_enabled : conn -> bool
(** Both SYNs carried sack-permitted. *)

val sacked_bytes : conn -> int
(** Bytes currently held on the sender's SACK scoreboard. *)
