test/test_stdext.ml: Alcotest Array Bytes Char Fun Gen Int64 List QCheck QCheck_alcotest Stdext
