(** UDP: the datagram type of service (Clark §4, goal 2).

    Once TCP was split out of the internetwork layer, applications that
    value timeliness over reliability (packet voice, the XNET debugger,
    query/response protocols) could ride raw datagrams with nothing more
    than port demultiplexing and an end-to-end checksum — which is all
    this module adds. *)

type t
(** The UDP instance bound to one IP stack. *)

type socket

type stats = {
  mutable datagrams_in : int;
  mutable datagrams_out : int;
  mutable bad : int;  (** Malformed or checksum-failing datagrams. *)
  mutable no_port : int;  (** Arrived for a port nobody had bound. *)
  mutable eph_allocs : int;  (** Ephemeral ports handed out. *)
  mutable eph_reuses : int;
      (** Allocations of a port this instance handed out before — the
          wrap has come back around (churn pressure). *)
  mutable eph_exhausted : int;  (** [No_free_ports] raised. *)
}

type bind_error =
  | Bad_port of int  (** Outside 1..65535 (and not the 0 wildcard). *)
  | Port_in_use of int
  | No_free_ports  (** Every ephemeral port (49152..65535) is bound. *)

exception Bind_error of bind_error

val bind_error_to_string : bind_error -> string

type send_error = [ Ip.Stack.send_error | `Closed ]
(** {!Ip.Stack.send_error} plus [`Closed] for a socket already closed. *)

val create : Ip.Stack.t -> t
(** Attach UDP to a stack; registers protocol 17. *)

val stack : t -> Ip.Stack.t

val bind :
  t ->
  ?port:int ->
  recv:(src:Packet.Addr.t -> src_port:int -> bytes -> unit) ->
  unit ->
  socket
(** Open a socket.  [port] of 0 (default) allocates an ephemeral port.
    @raise Bind_error if the port is taken, out of range, or (for
    ephemeral allocation) the whole range is bound. *)

val port : socket -> int

val sendto :
  socket ->
  ?src:Packet.Addr.t ->
  ?tos:Packet.Ipv4.Tos.t ->
  ?ttl:int ->
  dst:Packet.Addr.t ->
  dst_port:int ->
  bytes ->
  (unit, send_error) result
(** [src] pins the source address instead of deriving it from the
    route's outgoing interface — needed when answering from an address
    that is routed globally while the interface address is not. *)

val close : socket -> unit
(** Release the port; further arrivals count as [no_port]. *)

val stats : t -> stats

val metrics_items : t -> unit -> (string * Trace.Metrics.value) list
(** Pull-based metrics source over {!stats}, for
    [Trace.Metrics.register]. *)
