type flags = {
  urg : bool;
  ack : bool;
  psh : bool;
  rst : bool;
  syn : bool;
  fin : bool;
}

let no_flags =
  { urg = false; ack = false; psh = false; rst = false; syn = false; fin = false }

let flags ?(urg = false) ?(ack = false) ?(psh = false) ?(rst = false)
    ?(syn = false) ?(fin = false) () =
  { urg; ack; psh; rst; syn; fin }

let pp_flags fmt f =
  let s =
    String.concat ""
      [
        (if f.syn then "S" else "");
        (if f.fin then "F" else "");
        (if f.rst then "R" else "");
        (if f.psh then "P" else "");
        (if f.ack then "A" else "");
        (if f.urg then "U" else "");
      ]
  in
  Format.pp_print_string fmt (if s = "" then "." else s)

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack_n : int;
  flags : flags;
  window : int;
  urgent : int;
  mss : int option;
  wscale : int option;
  sack_permitted : bool;
  sack : (int * int) list;
  payload : bytes;
}

let make ?(seq = 0) ?(ack_n = 0) ?(flags = no_flags) ?(window = 0)
    ?(urgent = 0) ?(mss = None) ?(wscale = None) ?(sack_permitted = false)
    ?(sack = []) ?(payload = Bytes.empty) ~src_port ~dst_port () =
  { src_port; dst_port; seq; ack_n; flags; window; urgent; mss; wscale;
    sack_permitted; sack; payload }

type error = [ `Truncated | `Bad_checksum | `Bad_header of string ]

let pp_error fmt = function
  | `Truncated -> Format.pp_print_string fmt "truncated segment"
  | `Bad_checksum -> Format.pp_print_string fmt "bad TCP checksum"
  | `Bad_header m -> Format.fprintf fmt "bad TCP header: %s" m

let max_sack_blocks = 4

(* Which of the three canonical option blocks a segment carries.  The
   encoder speaks exactly these shapes so that every option byte lands at
   a fixed, lint-checkable offset:
   - [O_mss]: the historical lone 4-byte MSS option (24-byte header);
   - [O_syn]: the 12-byte SYN block - MSS, window scale (or NOPs),
     SACK-permitted (or NOPs), NOP padding (32-byte header);
   - [O_sack]: NOP NOP SACK on established-connection ACKs
     (24..56-byte header). *)
type opt_block =
  | O_none
  | O_mss of int
  | O_syn of { o_mss : int; o_ws : int option; o_sackp : bool }
  | O_sack of (int * int) list

let opt_block ~mss ~wscale ~sack_permitted ~sack =
  if sack <> [] then begin
    if mss <> None || wscale <> None || sack_permitted then
      invalid_arg "Tcp_wire: SACK blocks cannot share a segment with SYN options";
    if List.length sack > max_sack_blocks then
      invalid_arg "Tcp_wire: more than 4 SACK blocks";
    O_sack sack
  end
  else if wscale <> None || sack_permitted then
    (* The SYN block always carries an MSS; RFC 1122's 536 default keeps
       the block shape fixed when the caller has no MSS to advertise. *)
    O_syn
      { o_mss = (match mss with Some m -> m | None -> 536);
        o_ws = wscale;
        o_sackp = sack_permitted }
  else match mss with Some m -> O_mss m | None -> O_none

let block_size = function
  | O_none -> 0
  | O_mss _ -> 4
  | O_syn _ -> 12
  | O_sack bs -> 4 + (8 * List.length bs)

let header_size t =
  20
  + block_size
      (opt_block ~mss:t.mss ~wscale:t.wscale ~sack_permitted:t.sack_permitted
         ~sack:t.sack)

(* Machine-checked wire contract (see catenet-lint): a fixed 20-byte
   header followed by one of three canonical option blocks, each with its
   own layout table so every constant-offset access in the writers below
   lands on declared field boundaries.  The option bytes are read back
   through the variable-offset option parser, which the linter cannot
   follow; with multiple tables the write/read symmetry rule does not
   apply, so no allowlist entry is needed. *)
let layout : (string * int * int) list =
  [ ("src_port", 0, 2);
    ("dst_port", 2, 2);
    ("seq", 4, 4);
    ("ack", 8, 4);
    ("off_flags", 12, 2);
    ("window", 14, 2);
    ("checksum", 16, 2);
    ("urgent", 18, 2);
    ("opt_kind", 20, 1);
    ("opt_len", 21, 1);
    ("opt_mss", 22, 2) ]

(* SYN option block: MSS, window scale (RFC 7323) or NOP padding,
   SACK-permitted (RFC 2018) or NOP padding, two closing NOPs. *)
let syn_opts_layout : (string * int * int) list =
  [ ("src_port", 0, 2);
    ("dst_port", 2, 2);
    ("seq", 4, 4);
    ("ack", 8, 4);
    ("off_flags", 12, 2);
    ("window", 14, 2);
    ("checksum", 16, 2);
    ("urgent", 18, 2);
    ("opt_mss_kind", 20, 1);
    ("opt_mss_len", 21, 1);
    ("opt_mss_val", 22, 2);
    ("opt_ws_kind", 24, 1);
    ("opt_ws_len", 25, 1);
    ("opt_ws_shift", 26, 1);
    ("opt_pad27", 27, 1);
    ("opt_sackp_kind", 28, 1);
    ("opt_sackp_len", 29, 1);
    ("opt_pad30", 30, 1);
    ("opt_pad31", 31, 1) ]

(* SACK block (RFC 2018) on established-connection segments: two NOPs
   align the kind/len pair so the up-to-four (left, right) edges sit on
   32-bit boundaries. *)
let sack_opts_layout : (string * int * int) list =
  [ ("src_port", 0, 2);
    ("dst_port", 2, 2);
    ("seq", 4, 4);
    ("ack", 8, 4);
    ("off_flags", 12, 2);
    ("window", 14, 2);
    ("checksum", 16, 2);
    ("urgent", 18, 2);
    ("opt_nop20", 20, 1);
    ("opt_nop21", 21, 1);
    ("opt_sack_kind", 22, 1);
    ("opt_sack_len", 23, 1);
    ("sack0_left", 24, 4);
    ("sack0_right", 28, 4);
    ("sack1_left", 32, 4);
    ("sack1_right", 36, 4);
    ("sack2_left", 40, 4);
    ("sack2_right", 44, 4);
    ("sack3_left", 48, 4);
    ("sack3_right", 52, 4) ]

let flags_bits f =
  (if f.urg then 0x20 else 0)
  lor (if f.ack then 0x10 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.syn then 0x02 else 0)
  lor if f.fin then 0x01 else 0

let check_range name v bound =
  if v < 0 || v > bound then
    invalid_arg (Printf.sprintf "Tcp_wire.encode: %s out of range" name)

let check_sack_edges sack =
  List.iter
    (fun (l, r) ->
      check_range "sack left edge" l 0xFFFFFFFF;
      check_range "sack right edge" r 0xFFFFFFFF)
    sack

let encode ~src ~dst t =
  check_range "src_port" t.src_port 0xffff;
  check_range "dst_port" t.dst_port 0xffff;
  check_range "seq" t.seq 0xFFFFFFFF;
  check_range "ack" t.ack_n 0xFFFFFFFF;
  check_range "window" t.window 0xffff;
  check_range "urgent" t.urgent 0xffff;
  let block =
    opt_block ~mss:t.mss ~wscale:t.wscale ~sack_permitted:t.sack_permitted
      ~sack:t.sack
  in
  let hsize = 20 + block_size block in
  let total = hsize + Bytes.length t.payload in
  let module W = Stdext.Bytio.W in
  let w = W.create total in
  W.u16 w t.src_port;
  W.u16 w t.dst_port;
  W.u32_of_int w t.seq;
  W.u32_of_int w t.ack_n;
  let data_offset = hsize / 4 in
  W.u16 w ((data_offset lsl 12) lor flags_bits t.flags);
  W.u16 w t.window;
  W.u16 w 0 (* checksum placeholder *);
  W.u16 w t.urgent;
  (match block with
  | O_none -> ()
  | O_mss mss ->
      check_range "mss" mss 0xffff;
      W.u8 w 2;
      W.u8 w 4;
      W.u16 w mss
  | O_syn { o_mss; o_ws; o_sackp } ->
      check_range "mss" o_mss 0xffff;
      W.u8 w 2;
      W.u8 w 4;
      W.u16 w o_mss;
      (match o_ws with
      | Some s ->
          check_range "wscale" s 14;
          W.u8 w 3;
          W.u8 w 3;
          W.u8 w s
      | None ->
          W.u8 w 1;
          W.u8 w 1;
          W.u8 w 1);
      W.u8 w 1;
      (if o_sackp then begin
         W.u8 w 4;
         W.u8 w 2
       end
       else begin
         W.u8 w 1;
         W.u8 w 1
       end);
      W.u16 w 0x0101
  | O_sack bs ->
      check_sack_edges bs;
      W.u16 w 0x0101;
      W.u8 w 5;
      W.u8 w (2 + (8 * List.length bs));
      List.iter
        (fun (l, r) ->
          W.u32_of_int w l;
          W.u32_of_int w r)
        bs);
  W.bytes w t.payload;
  let buf = W.contents w in
  let acc =
    Checksum.pseudo_header ~src:(Addr.to_int32 src) ~dst:(Addr.to_int32 dst)
      ~proto:6 ~len:total
  in
  let csum = Checksum.of_bytes ~acc buf ~pos:0 ~len:total in
  Bytes.set_uint16_be buf 16 csum;
  buf

let header_bytes ?(wscale = None) ?(sack_permitted = false) ?(sack = []) ~mss
    () =
  20 + block_size (opt_block ~mss ~wscale ~sack_permitted ~sack)

(* Allocation-free counterpart of {!encode}: the caller has already placed
   the payload at [pos + header_bytes ~mss ...] in [buf] and we fill in the
   header around it, checksumming header and payload in a single pass.
   Byte-for-byte identical output to {!encode}. *)
let encode_into ~src ~dst ~src_port ~dst_port ~seq ~ack_n ~flags ~window
    ?(urgent = 0) ?(mss = None) ?(wscale = None) ?(sack_permitted = false)
    ?(sack = []) ~payload_len buf ~pos =
  check_range "src_port" src_port 0xffff;
  check_range "dst_port" dst_port 0xffff;
  check_range "seq" seq 0xFFFFFFFF;
  check_range "ack" ack_n 0xFFFFFFFF;
  check_range "window" window 0xffff;
  check_range "urgent" urgent 0xffff;
  let block = opt_block ~mss ~wscale ~sack_permitted ~sack in
  let hsize = 20 + block_size block in
  let total = hsize + payload_len in
  if pos < 0 || payload_len < 0 || pos + total > Bytes.length buf then
    invalid_arg "Tcp_wire.encode_into: buffer too small";
  Bytes.set_uint16_be buf pos src_port;
  Bytes.set_uint16_be buf (pos + 2) dst_port;
  Bytes.set_int32_be buf (pos + 4) (Int32.of_int seq);
  Bytes.set_int32_be buf (pos + 8) (Int32.of_int ack_n);
  let data_offset = hsize / 4 in
  Bytes.set_uint16_be buf (pos + 12) ((data_offset lsl 12) lor flags_bits flags);
  Bytes.set_uint16_be buf (pos + 14) window;
  Bytes.set_uint16_be buf (pos + 16) 0 (* checksum placeholder *);
  Bytes.set_uint16_be buf (pos + 18) urgent;
  (match block with
  | O_none -> ()
  | O_mss m ->
      check_range "mss" m 0xffff;
      Bytes.set_uint8 buf (pos + 20) 2;
      Bytes.set_uint8 buf (pos + 21) 4;
      Bytes.set_uint16_be buf (pos + 22) m
  | O_syn { o_mss; o_ws; o_sackp } ->
      check_range "mss" o_mss 0xffff;
      Bytes.set_uint8 buf (pos + 20) 2;
      Bytes.set_uint8 buf (pos + 21) 4;
      Bytes.set_uint16_be buf (pos + 22) o_mss;
      (match o_ws with
      | Some s ->
          check_range "wscale" s 14;
          Bytes.set_uint8 buf (pos + 24) 3;
          Bytes.set_uint8 buf (pos + 25) 3;
          Bytes.set_uint8 buf (pos + 26) s
      | None ->
          Bytes.set_uint8 buf (pos + 24) 1;
          Bytes.set_uint8 buf (pos + 25) 1;
          Bytes.set_uint8 buf (pos + 26) 1);
      Bytes.set_uint8 buf (pos + 27) 1;
      (if o_sackp then begin
         Bytes.set_uint8 buf (pos + 28) 4;
         Bytes.set_uint8 buf (pos + 29) 2
       end
       else begin
         Bytes.set_uint8 buf (pos + 28) 1;
         Bytes.set_uint8 buf (pos + 29) 1
       end);
      Bytes.set_uint16_be buf (pos + 30) 0x0101
  | O_sack bs ->
      check_sack_edges bs;
      Bytes.set_uint16_be buf (pos + 20) 0x0101;
      Bytes.set_uint8 buf (pos + 22) 5;
      Bytes.set_uint8 buf (pos + 23) (2 + (8 * List.length bs));
      List.iteri
        (fun i (l, r) ->
          Bytes.set_int32_be buf (pos + 24 + (8 * i)) (Int32.of_int l);
          Bytes.set_int32_be buf (pos + 28 + (8 * i)) (Int32.of_int r))
        bs);
  let acc =
    Checksum.pseudo_header ~src:(Addr.to_int32 src) ~dst:(Addr.to_int32 dst)
      ~proto:6 ~len:total
  in
  let csum = Checksum.of_bytes ~acc buf ~pos ~len:total in
  Bytes.set_uint16_be buf (pos + 16) csum;
  total

type opts = {
  o_mss : int option;
  o_wscale : int option;
  o_sack_permitted : bool;
  o_sack : (int * int) list;
}

let no_opts =
  { o_mss = None; o_wscale = None; o_sack_permitted = false; o_sack = [] }

(* Parse the option block, accepting MSS, window scale, SACK-permitted,
   SACK, NOP and end-of-options, and skipping unknown options by their
   declared length. *)
let parse_options buf ~pos ~len =
  let opts = ref no_opts in
  let i = ref pos in
  let stop = pos + len in
  let bad = ref None in
  while !i < stop && !bad = None do
    match Bytes.get_uint8 buf !i with
    | 0 -> i := stop (* end of option list *)
    | 1 -> incr i (* NOP *)
    | kind ->
        if !i + 1 >= stop then bad := Some "truncated option"
        else begin
          let olen = Bytes.get_uint8 buf (!i + 1) in
          if olen < 2 || !i + olen > stop then bad := Some "bad option length"
          else begin
            (match kind with
            | 2 ->
                if olen = 4 then
                  opts :=
                    { !opts with o_mss = Some (Bytes.get_uint16_be buf (!i + 2)) }
                else bad := Some "bad MSS option length"
            | 3 ->
                if olen = 3 then
                  opts :=
                    { !opts with o_wscale = Some (Bytes.get_uint8 buf (!i + 2)) }
                else bad := Some "bad window scale option length"
            | 4 ->
                if olen = 2 then opts := { !opts with o_sack_permitted = true }
                else bad := Some "bad SACK-permitted option length"
            | 5 ->
                if olen >= 10 && (olen - 2) mod 8 = 0 then begin
                  let n = (olen - 2) / 8 in
                  let bs = ref [] in
                  for b = n - 1 downto 0 do
                    let base = !i + 2 + (8 * b) in
                    let l =
                      Int32.to_int (Bytes.get_int32_be buf base) land 0xFFFFFFFF
                    in
                    let r =
                      Int32.to_int (Bytes.get_int32_be buf (base + 4))
                      land 0xFFFFFFFF
                    in
                    bs := (l, r) :: !bs
                  done;
                  opts := { !opts with o_sack = !bs }
                end
                else bad := Some "bad SACK option length"
            | _ -> ());
            i := !i + olen
          end
        end
  done;
  match !bad with Some m -> Error (`Bad_header m) | None -> Ok !opts

(* Validate the fixed header and checksum without building a [t]; the
   receive fast path reads the few fields it needs straight from the
   buffer via the [peek_*] accessors below and only falls back to
   {!of_peeked} when full dispatch is required. *)
let peek ~src ~dst ?(pos = 0) buf =
  let len = Bytes.length buf - pos in
  if len < 20 then Error `Truncated
  else begin
    let off_flags = Bytes.get_uint16_be buf (pos + 12) in
    let data_offset = (off_flags lsr 12) * 4 in
    if data_offset < 20 || data_offset > len then
      Error (`Bad_header "bad data offset")
    else begin
      let acc =
        Checksum.pseudo_header ~src:(Addr.to_int32 src)
          ~dst:(Addr.to_int32 dst) ~proto:6 ~len
      in
      if not (Checksum.valid ~acc buf ~pos ~len) then Error `Bad_checksum
      else Ok data_offset
    end
  end

let peek_src_port ?(pos = 0) buf = Bytes.get_uint16_be buf pos [@@fastpath]
let peek_dst_port ?(pos = 0) buf = Bytes.get_uint16_be buf (pos + 2) [@@fastpath]

let peek_u32 buf p = Int32.to_int (Bytes.get_int32_be buf p) land 0xFFFFFFFF [@@fastpath]

let peek_seq ?(pos = 0) buf = peek_u32 buf (pos + 4) [@@fastpath]
let peek_ack_n ?(pos = 0) buf = peek_u32 buf (pos + 8) [@@fastpath]
let peek_flag_bits ?(pos = 0) buf = Bytes.get_uint16_be buf (pos + 12) land 0x3f [@@fastpath]
let peek_window ?(pos = 0) buf = Bytes.get_uint16_be buf (pos + 14) [@@fastpath]

let of_peeked buf ~data_offset =
  let len = Bytes.length buf in
  match parse_options buf ~pos:20 ~len:(data_offset - 20) with
  | Error _ as e -> e
  | Ok opts ->
      let bits = Bytes.get_uint16_be buf 12 land 0x3f in
      let flags =
        {
          urg = bits land 0x20 <> 0;
          ack = bits land 0x10 <> 0;
          psh = bits land 0x08 <> 0;
          rst = bits land 0x04 <> 0;
          syn = bits land 0x02 <> 0;
          fin = bits land 0x01 <> 0;
        }
      in
      Ok
        {
          src_port = peek_src_port buf;
          dst_port = peek_dst_port buf;
          seq = peek_seq buf;
          ack_n = peek_ack_n buf;
          flags;
          window = peek_window buf;
          urgent = Bytes.get_uint16_be buf 18;
          mss = opts.o_mss;
          wscale = opts.o_wscale;
          sack_permitted = opts.o_sack_permitted;
          sack = opts.o_sack;
          payload = Bytes.sub buf data_offset (len - data_offset);
        }

let decode ~src ~dst buf =
  match peek ~src ~dst buf with
  | Error _ as e -> e
  | Ok data_offset -> of_peeked buf ~data_offset

let pp fmt t =
  Format.fprintf fmt "%d>%d %a seq=%d ack=%d win=%d len=%d%s%s%s%s" t.src_port
    t.dst_port pp_flags t.flags t.seq t.ack_n t.window
    (Bytes.length t.payload)
    (match t.mss with None -> "" | Some m -> Printf.sprintf " mss=%d" m)
    (match t.wscale with None -> "" | Some s -> Printf.sprintf " ws=%d" s)
    (if t.sack_permitted then " sackOK" else "")
    (match t.sack with
    | [] -> ""
    | bs ->
        Printf.sprintf " sack=%s"
          (String.concat ","
             (List.map (fun (l, r) -> Printf.sprintf "%d-%d" l r) bs)))
