examples/quickstart.mli:
