(** Workload applications used by the examples, tests and experiments:
    {!Bulk} (file transfer), {!Cbr} (packet voice), {!Echo} (interactive
    remote login), {!Reqrep} (transactions), with {!Pattern} for
    end-to-end integrity checking. *)

module Pattern = Pattern
module Bulk = Bulk
module Cbr = Cbr
module Echo = Echo
module Reqrep = Reqrep
