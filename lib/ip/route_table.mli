(** Longest-prefix-match forwarding table.

    The table maps CIDR prefixes to (outgoing interface, optional next-hop
    gateway, metric).  Lookup returns the longest matching prefix; among
    equal-length matches the lowest metric wins.  Routing protocols own the
    dynamic entries; interface configuration installs connected routes.

    Internally a path-compressed binary trie over the address bits, with
    nodes in parallel arrays: {!lookup} costs O(prefix depth) regardless of
    table size and allocates nothing (routes are boxed once at {!add}), so
    a transit gateway can hold one aggregated prefix per region of an
    E17-scale catenet without per-packet cost growing with the table. *)

type route = {
  prefix : Packet.Addr.Prefix.t;
  iface : Netsim.iface;
  next_hop : Packet.Addr.t option;
      (** [None] when the destination is on the attached network. *)
  metric : int;
}

type t

val create : unit -> t

val add : t -> route -> unit
(** Insert, replacing any existing route with the same prefix. *)

val remove : t -> Packet.Addr.Prefix.t -> unit
(** No-op when absent. *)

val clear : t -> unit

val generation : t -> int
(** Monotonic mutation counter, bumped by {!add}, {!remove} and {!clear}.
    Route-lookup caches (the IP stack keeps one per stack) compare it to
    decide whether their memoized answers are still valid — cheap enough to
    check per packet even while a routing protocol churns the table. *)

val lookup : t -> Packet.Addr.t -> route option
(** Longest-prefix match. *)

val find : t -> Packet.Addr.Prefix.t -> route option
(** Exact-prefix lookup. *)

val entries : t -> route list
(** All routes, longest prefixes first. *)

val length : t -> int
(** Number of routes, maintained incrementally — O(1) (daemon stats paths
    call this per tick). *)

val node_count : t -> int
(** Live trie nodes (structural diagnostic; at most [2 * length t + 1]).
    Tests use it to prove remove/re-add churn reclaims nodes. *)

val pp : Format.formatter -> t -> unit
