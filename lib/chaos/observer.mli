(** Reconvergence observer: measures how long the control plane takes to
    restore end-to-end paths after each fault, and how many datagrams
    the network black-holed in the window.

    The observer never sends packets.  Convergence is judged god's-eye:
    a probe [(src, dst)] is satisfied when following each hop's actual
    routing table, over links and nodes that are actually up, reaches a
    stack owning [dst] within 32 hops (a routing loop or a dead hop
    fails the walk).  This deliberately measures the *control plane*;
    data-plane survival is the TCP transfer the harness runs on top. *)

type record = {
  fault : Fault.t;
  at_us : int;  (** When the fault was applied. *)
  mutable reconverged_at_us : int option;
      (** First poll at which every probe's path was whole again; [None]
          if the run ended first. *)
  mutable blackholed : int;
      (** Fault-attributable drops (no-route + TTL + down-link) network
          wide between [at_us] and reconvergence. *)
}

type t

val create :
  ?poll_us:int ->
  net:Netsim.t ->
  stacks:Ip.Stack.t list ->
  stack_of:(Netsim.node_id -> Ip.Stack.t option) ->
  probes:(Ip.Stack.t * Packet.Addr.t) list ->
  unit ->
  t
(** [stacks] is every stack whose drop counters should count toward
    blackhole attribution; [stack_of] resolves a netsim node to its
    stack for the path walk; [probes] are the (source stack,
    destination address) paths that define "converged".  [poll_us]
    bounds measurement granularity (default 10 ms). *)

val note_fault : t -> Fault.t -> unit
(** Open a measurement window (called by the injector at application
    time). *)

val start : t -> unit
(** Begin polling.  Polling reschedules itself forever — run the engine
    with a bound, or call {!stop} when the gauntlet is over. *)

val stop : t -> unit
(** Final poll, then cease rescheduling. *)

val converged : t -> bool
(** Are all probe paths currently whole? *)

val records : t -> record list
(** All fault windows, in injection order. *)

val record_to_json : record -> Trace.Json.t
