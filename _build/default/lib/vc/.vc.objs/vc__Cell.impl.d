lib/vc/cell.ml: Bytes Format List Printf Stdext String
