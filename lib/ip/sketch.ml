(* Count-min sketch over flat int-array rows (E20).

   One sketch answers "how many packets / how many bytes has this flow
   carried?" for an unbounded flow population in O(depth) cache lines
   per packet and O(depth * width) words of memory total.  Design
   points, all in service of the fast path:

   - a flow's packet and byte counters for one row are adjacent words of
     one flat [int array] ([cells]), so each row costs one cache line,
     not two, and an update allocates nothing;
   - row hashes are seeded multiply-shift: one 63-bit multiply by an odd
     per-row constant, then a shift that keeps the top [log2 width]
     bits — width is forced to a power of two so the slot needs no
     modulo;
   - updates are *conservative*: a cell is raised only as far as the
     key's new lower bound (min over rows + increment), which cuts the
     classic count-min overestimate by roughly an order of magnitude on
     skewed traffic while preserving the one-sided error guarantee
     (estimates never underestimate);
   - a dedicated occupancy bitmap ([card_bits] bits, sized for ~10^6
     flows regardless of sketch width) gives a linear-counting estimate
     of distinct-flow cardinality: the zero-bit count is maintained
     incrementally, so the estimate is O(1) to read. *)

type t = {
  width : int;  (* cells per row; power of two *)
  depth : int;  (* rows *)
  mask : int;  (* width - 1 *)
  shift : int;  (* 63 - log2 width: multiply-shift keeps the top bits *)
  seeds : int array;  (* odd multiplier per row; last = bitmap hash *)
  slots : int array;  (* scratch: flat cell index per row of the current key *)
  cells : int array;  (* depth * width * 2, row-major; [2k]=pkts, [2k+1]=bytes *)
  seen : Bytes.t;  (* card_bits-bit occupancy bitmap *)
  mutable zero_bits : int;  (* unset bits left in [seen] *)
  mutable updates : int;  (* update calls since creation or last clear *)
  mutable last_pkts : int;  (* post-update estimate of the last key *)
  mutable last_bytes : int;
}

(* Linear counting saturates at [bits * ln bits]; 2^18 bits (32 KB)
   keeps a few-percent estimate past 10^6 distinct flows however small
   the sketch itself is. *)
let card_bits = 1 lsl 18
let card_shift = 63 - 18

(* splitmix-style finalizer; constants fit OCaml's 63-bit int. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x27BB2EE687B0B0FD in
  x lxor (x lsr 32)
[@@fastpath]

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let create ?(seed = 0x5EED) ~width ~depth () =
  if not (is_pow2 width) then
    invalid_arg "Ip.Sketch.create: width must be a power of two";
  if width < 8 then invalid_arg "Ip.Sketch.create: width must be >= 8";
  if depth < 1 then invalid_arg "Ip.Sketch.create: depth must be >= 1";
  {
    width;
    depth;
    mask = width - 1;
    shift = 63 - log2 width;
    seeds =
      Array.init (depth + 1) (fun i -> mix (seed + (i * 0x61C88647)) lor 1);
    slots = Array.make depth 0;
    cells = Array.make (depth * width * 2) 0;
    seen = Bytes.make (card_bits / 8) '\000';
    zero_bits = card_bits;
    updates = 0;
    last_pkts = 0;
    last_bytes = 0;
  }

let width t = t.width
let depth t = t.depth
let updates t = t.updates

let slot_of t i fp =
  ((fp * Array.unsafe_get t.seeds i) lsr t.shift) land t.mask
[@@fastpath]

(* Attribute one packet of [bytes] wire bytes to [fp].  Conservative
   update: raise each row's cell pair only to the key's new lower bound,
   so cells shared with other keys inflate as little as possible.  The
   post-update estimates are left in [last_pkts]/[last_bytes] so the
   caller (the heavy-hitter admission test) does not re-hash. *)
let update t fp ~bytes:nbytes =
  let d = t.depth in
  for i = 0 to d - 1 do
    Array.unsafe_set t.slots i (((i * t.width) + slot_of t i fp) * 2)
  done;
  (* Cardinality bitmap, hashed independently of the rows. *)
  let cb =
    ((fp * Array.unsafe_get t.seeds d) lsr card_shift) land (card_bits - 1)
  in
  let cur = Bytes.get_uint8 t.seen (cb lsr 3) in
  let bit = 1 lsl (cb land 7) in
  if cur land bit = 0 then begin
    Bytes.set_uint8 t.seen (cb lsr 3) (cur lor bit);
    t.zero_bits <- t.zero_bits - 1
  end;
  let est_p = ref max_int and est_b = ref max_int in
  for i = 0 to d - 1 do
    let s = Array.unsafe_get t.slots i in
    let p = Array.unsafe_get t.cells s in
    if p < !est_p then est_p := p;
    let b = Array.unsafe_get t.cells (s + 1) in
    if b < !est_b then est_b := b
  done;
  let np = !est_p + 1 and nb = !est_b + nbytes in
  for i = 0 to d - 1 do
    let s = Array.unsafe_get t.slots i in
    if Array.unsafe_get t.cells s < np then Array.unsafe_set t.cells s np;
    if Array.unsafe_get t.cells (s + 1) < nb then
      Array.unsafe_set t.cells (s + 1) nb
  done;
  t.last_pkts <- np;
  t.last_bytes <- nb;
  t.updates <- t.updates + 1
[@@fastpath]

let last_estimate_packets t = t.last_pkts [@@fastpath]
let last_estimate_bytes t = t.last_bytes [@@fastpath]

let estimate_packets t fp =
  let e = ref max_int in
  for i = 0 to t.depth - 1 do
    let v =
      Array.unsafe_get t.cells (((i * t.width) + slot_of t i fp) * 2)
    in
    if v < !e then e := v
  done;
  !e
[@@fastpath]

let estimate_bytes t fp =
  let e = ref max_int in
  for i = 0 to t.depth - 1 do
    let v =
      Array.unsafe_get t.cells ((((i * t.width) + slot_of t i fp) * 2) + 1)
    in
    if v < !e then e := v
  done;
  !e
[@@fastpath]

(* Linear counting over the occupancy bitmap: with z of w bits still
   zero, the maximum-likelihood distinct count is w * ln (w/z).  When
   the bitmap saturates (z = 0) the estimate degrades to the scheme's
   ceiling, w * ln w — the signal to rotate epochs. *)
let cardinality t =
  if t.updates = 0 then 0
  else begin
    let w = float_of_int card_bits in
    if t.zero_bits <= 0 then int_of_float (w *. log w)
    else
      int_of_float (Float.round (w *. log (w /. float_of_int t.zero_bits)))
  end

let clear t =
  Array.fill t.cells 0 (Array.length t.cells) 0;
  Bytes.fill t.seen 0 (Bytes.length t.seen) '\000';
  t.zero_bits <- card_bits;
  t.updates <- 0;
  t.last_pkts <- 0;
  t.last_bytes <- 0
