(* Tests for the workload applications: pattern checking, bulk transfer,
   CBR voice, interactive echo, request/response. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Internet = Catenet.Internet
module Pattern = Apps.Pattern
module Samples = Stdext.Stats.Samples

(* --- Pattern ---------------------------------------------------------------- *)

let test_pattern_deterministic () =
  let a = Pattern.make ~seed:3 ~off:100 64 in
  let b = Pattern.make ~seed:3 ~off:100 64 in
  check Alcotest.bool "equal" true (Bytes.equal a b);
  let c = Pattern.make ~seed:4 ~off:100 64 in
  check Alcotest.bool "seed-sensitive" false (Bytes.equal a c)

let test_pattern_checker_accepts_stream () =
  let chk = Pattern.checker ~seed:9 in
  let off = ref 0 in
  for _ = 1 to 10 do
    let n = 37 in
    ignore (Pattern.check chk (Pattern.make ~seed:9 ~off:!off n));
    off := !off + n
  done;
  check Alcotest.bool "ok" true (Pattern.ok chk);
  check Alcotest.int "count" 370 (Pattern.checked chk)

let test_pattern_checker_detects_corruption () =
  let chk = Pattern.checker ~seed:9 in
  let good = Pattern.make ~seed:9 ~off:0 50 in
  ignore (Pattern.check chk good);
  let bad = Pattern.make ~seed:9 ~off:50 50 in
  Bytes.set bad 10 '\xff';
  ignore (Pattern.check chk bad);
  check Alcotest.bool "caught" false (Pattern.ok chk);
  (* Sticky: later good data does not clear the flag. *)
  ignore (Pattern.check chk (Pattern.make ~seed:9 ~off:100 10));
  check Alcotest.bool "sticky" false (Pattern.ok chk)

let prop_pattern_split_invariance =
  QCheck.Test.make ~name:"checker is split-invariant" ~count:100
    QCheck.(pair (1 -- 500) (1 -- 50))
    (fun (total, cut) ->
      let chk = Pattern.checker ~seed:5 in
      let data = Pattern.make ~seed:5 ~off:0 total in
      let rec feed off =
        if off < total then begin
          let n = min cut (total - off) in
          ignore (Pattern.check chk (Bytes.sub data off n));
          feed (off + n)
        end
      in
      feed 0;
      Pattern.ok chk && Pattern.checked chk = total)

(* --- Fixtures ---------------------------------------------------------------- *)

let world ?(profile = Netsim.profile "wire" ~delay_us:3_000) () =
  let t = Internet.create () in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  ignore (Internet.connect t profile a.Internet.h_node b.Internet.h_node);
  Internet.start t;
  (t, a, b)

(* --- Bulk ---------------------------------------------------------------------- *)

let test_bulk_end_to_end () =
  let t, a, b = world () in
  let server = Apps.Bulk.serve b.Internet.h_tcp ~port:20 ~seed:1 in
  let sender =
    Apps.Bulk.start a.Internet.h_tcp
      ~dst:(Internet.addr_of t b.Internet.h_node)
      ~dst_port:20 ~seed:1 ~total:100_000 ()
  in
  Internet.run_for t 30.0;
  check Alcotest.bool "finished" true (Apps.Bulk.finished sender);
  check Alcotest.bool "goodput reported" true
    (match Apps.Bulk.goodput_bps sender with Some g -> g > 0.0 | None -> false);
  match Apps.Bulk.transfers server with
  | [ tr ] ->
      check Alcotest.int "received" 100_000 tr.Apps.Bulk.received;
      check Alcotest.bool "intact" true tr.Apps.Bulk.intact
  | l -> Alcotest.failf "expected 1 transfer, got %d" (List.length l)

let test_bulk_detects_failure () =
  let t, a, b = world () in
  ignore (Apps.Bulk.serve b.Internet.h_tcp ~port:20 ~seed:1);
  let cfg = { Tcp.default_config with Tcp.max_retransmits = 2 } in
  let sender =
    Apps.Bulk.start a.Internet.h_tcp ~config:cfg
      ~dst:(Internet.addr_of t b.Internet.h_node)
      ~dst_port:20 ~seed:1 ~total:500_000 ()
  in
  (* Cut the only link shortly into the transfer. *)
  Engine.after (Internet.engine t) 200_000 (fun () -> Internet.fail_link t 0);
  Internet.run_for t 60.0;
  check Alcotest.bool "not finished" false (Apps.Bulk.finished sender);
  check Alcotest.bool "failure reported" true (Apps.Bulk.failed sender <> None)

let test_bulk_multiple_transfers () =
  let t, a, b = world () in
  let server = Apps.Bulk.serve b.Internet.h_tcp ~port:20 ~seed:2 in
  let s1 =
    Apps.Bulk.start a.Internet.h_tcp
      ~dst:(Internet.addr_of t b.Internet.h_node)
      ~dst_port:20 ~seed:2 ~total:30_000 ()
  in
  let s2 =
    Apps.Bulk.start a.Internet.h_tcp
      ~dst:(Internet.addr_of t b.Internet.h_node)
      ~dst_port:20 ~seed:2 ~total:30_000 ()
  in
  Internet.run_for t 30.0;
  check Alcotest.bool "both finished" true
    (Apps.Bulk.finished s1 && Apps.Bulk.finished s2);
  check Alcotest.int "two transfers" 2 (List.length (Apps.Bulk.transfers server));
  List.iter
    (fun tr -> check Alcotest.bool "intact" true tr.Apps.Bulk.intact)
    (Apps.Bulk.transfers server)

(* --- CBR --------------------------------------------------------------------- *)

let test_cbr_clean_path () =
  let t, a, b = world () in
  let sink = Apps.Cbr.sink b.Internet.h_udp ~port:30 ~deadline_us:100_000 in
  let source =
    Apps.Cbr.source a.Internet.h_udp
      ~dst:(Internet.addr_of t b.Internet.h_node)
      ~dst_port:30 ~payload_bytes:160 ~period_us:20_000 ~count:100 ()
  in
  Internet.run_for t 5.0;
  check Alcotest.bool "source done" true (Apps.Cbr.done_sending source);
  check Alcotest.int "sent" 100 (Apps.Cbr.sent source);
  let r = Apps.Cbr.report sink in
  check Alcotest.int "all received" 100 r.Apps.Cbr.received;
  check Alcotest.int "no loss" 0 r.Apps.Cbr.lost;
  check Alcotest.int "no misses" 0 r.Apps.Cbr.deadline_misses;
  check Alcotest.bool "delay ~3ms" true
    (let d = Samples.mean r.Apps.Cbr.delay in
     d > 0.002 && d < 0.020)

let test_cbr_lossy_path_counts_loss () =
  let t, a, b = world ~profile:(Netsim.profile "lossy" ~loss:0.2) () in
  let sink = Apps.Cbr.sink b.Internet.h_udp ~port:30 ~deadline_us:100_000 in
  ignore
    (Apps.Cbr.source a.Internet.h_udp
       ~dst:(Internet.addr_of t b.Internet.h_node)
       ~dst_port:30 ~payload_bytes:160 ~period_us:20_000 ~count:200 ());
  Internet.run_for t 10.0;
  let r = Apps.Cbr.report sink in
  (* With 20% loss we expect roughly 160 received, 40 lost; no recovery is
     attempted (that is the point of the datagram service). *)
  check Alcotest.bool "significant loss observed" true (r.Apps.Cbr.lost > 10);
  check Alcotest.bool "most arrive" true (r.Apps.Cbr.received > 120);
  check Alcotest.int "no duplicates" 0 r.Apps.Cbr.duplicates

let test_cbr_deadline_misses_under_queueing () =
  (* Slow bottleneck: standing queue pushes one-way delay past the voice
     deadline. *)
  let t, a, b =
    world
      ~profile:
        (Netsim.profile "thin" ~bandwidth_bps:128_000 ~delay_us:5_000
           ~queue_capacity:64)
      ()
  in
  let sink = Apps.Cbr.sink b.Internet.h_udp ~port:30 ~deadline_us:30_000 in
  (* 160-byte voice packets every 10 ms = 128 kb/s exactly saturates the
     link before headers; with headers it exceeds it, building a queue. *)
  ignore
    (Apps.Cbr.source a.Internet.h_udp
       ~dst:(Internet.addr_of t b.Internet.h_node)
       ~dst_port:30 ~payload_bytes:160 ~period_us:10_000 ~count:300 ());
  Internet.run_for t 10.0;
  let r = Apps.Cbr.report sink in
  check Alcotest.bool "deadline misses occur" true (r.Apps.Cbr.deadline_misses > 0)

(* --- Echo ---------------------------------------------------------------------- *)

let test_echo_rtt () =
  let t, a, b = world ~profile:(Netsim.profile "wire" ~delay_us:10_000) () in
  Apps.Echo.serve b.Internet.h_tcp ~port:40;
  let client =
    Apps.Echo.client a.Internet.h_tcp
      ~dst:(Internet.addr_of t b.Internet.h_node)
      ~dst_port:40 ~message_bytes:64 ~period_us:50_000 ~count:20 ()
  in
  Internet.run_for t 10.0;
  check Alcotest.int "all echoed" 20 (Apps.Echo.completed client);
  check Alcotest.bool "no failure" false (Apps.Echo.failed client);
  let rtts = Apps.Echo.rtts client in
  check Alcotest.int "20 samples" 20 (Samples.count rtts);
  (* One-way 10 ms: RTT must be at least 20 ms and not wildly more. *)
  check Alcotest.bool "rtt sane" true
    (Samples.median rtts >= 0.020 && Samples.median rtts < 0.100)

(* --- Reqrep -------------------------------------------------------------------- *)

let test_reqrep () =
  let t, a, b = world () in
  Apps.Reqrep.serve b.Internet.h_tcp ~port:50 ~request_bytes:100
    ~response_bytes:2_000;
  let client =
    Apps.Reqrep.client a.Internet.h_tcp
      ~dst:(Internet.addr_of t b.Internet.h_node)
      ~dst_port:50 ~request_bytes:100 ~response_bytes:2_000 ~count:15 ()
  in
  Internet.run_for t 10.0;
  check Alcotest.int "all answered" 15 (Apps.Reqrep.completed client);
  check Alcotest.bool "ok" false (Apps.Reqrep.failed client);
  check Alcotest.int "latencies recorded" 15
    (Samples.count (Apps.Reqrep.latencies client))

let test_reqrep_with_gap () =
  let t, a, b = world () in
  Apps.Reqrep.serve b.Internet.h_tcp ~port:50 ~request_bytes:10
    ~response_bytes:10;
  let client =
    Apps.Reqrep.client a.Internet.h_tcp
      ~dst:(Internet.addr_of t b.Internet.h_node)
      ~dst_port:50 ~request_bytes:10 ~response_bytes:10 ~count:5
      ~gap_us:100_000 ()
  in
  Internet.run_for t 10.0;
  check Alcotest.int "all answered" 5 (Apps.Reqrep.completed client)

let () =
  Alcotest.run "apps"
    [
      ( "pattern",
        [
          Alcotest.test_case "deterministic" `Quick test_pattern_deterministic;
          Alcotest.test_case "accepts stream" `Quick test_pattern_checker_accepts_stream;
          Alcotest.test_case "detects corruption" `Quick
            test_pattern_checker_detects_corruption;
          qcheck prop_pattern_split_invariance;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "end to end" `Quick test_bulk_end_to_end;
          Alcotest.test_case "detects failure" `Quick test_bulk_detects_failure;
          Alcotest.test_case "multiple transfers" `Quick test_bulk_multiple_transfers;
        ] );
      ( "cbr",
        [
          Alcotest.test_case "clean path" `Quick test_cbr_clean_path;
          Alcotest.test_case "lossy path" `Quick test_cbr_lossy_path_counts_loss;
          Alcotest.test_case "queueing misses deadlines" `Quick
            test_cbr_deadline_misses_under_queueing;
        ] );
      ( "echo",
        [ Alcotest.test_case "rtt measurement" `Quick test_echo_rtt ] );
      ( "reqrep",
        [
          Alcotest.test_case "pipelined" `Quick test_reqrep;
          Alcotest.test_case "with gap" `Quick test_reqrep_with_gap;
        ] );
    ]
