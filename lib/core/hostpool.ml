module Addr = Packet.Addr
module Ipv4 = Packet.Ipv4
module Udp_wire = Packet.Udp_wire

(* Pooled endpoint state.

   A full Ip.Stack per host is the right tool for a protocol experiment
   and the wrong one for an E17-scale population: each stack is a record
   of hashtables, a reassembly store, and a closure installed as the
   node's frame handler — a web of heap objects per endpoint, almost all
   of it never exercised by a host that only sources and sinks datagrams.

   The pool keeps every per-host datum in parallel arrays (one int slot
   per field per host) and serves *all* pooled hosts' receive traffic
   with a single shared closure, installed as the netsim-wide default
   handler.  Attaching host number 10^5 costs five array cells and one
   index entry; idle hosts cost nothing at all per tick. *)

let proto = 0xE1 (* pool datagrams ride proto 225 end to end *)

type t = {
  net : Netsim.t;
  mutable node : int array;  (* slot -> netsim node *)
  mutable iface : int array;  (* slot -> the host's single iface *)
  mutable addr : int array;  (* slot -> address bits *)
  mutable tx : int array;  (* slot -> datagrams sent *)
  mutable rx : int array;  (* slot -> datagrams delivered *)
  mutable n : int;
  mutable slot_of_node : int array;  (* node -> slot, -1 = not pooled *)
  mutable tx_total : int;
  mutable rx_total : int;
  mutable rx_stray : int;
      (* frames reaching a pooled host that are not pool datagrams for
         its address: wrong dst, wrong proto, malformed *)
  mutable udp_sink :
    (int ->
    src:Addr.t ->
    src_port:int ->
    dst_port:int ->
    bytes ->
    unit)
    option;
      (* one shared closure, like the receive handler: lets a workload
         give pooled hosts behavior (echo replicas, request/response
         clients) without per-host closures.  UDP only; pool datagrams
         stay count-only. *)
}

let addr_bits a = Int32.to_int (Addr.to_int32 a) land 0xffffffff

let receive t ~node ~iface:_ frame =
  if node < Array.length t.slot_of_node then begin
    let slot = Array.unsafe_get t.slot_of_node node in
    if slot >= 0 then begin
      match Ipv4.peek frame with
      | Ok h
        when (let p = Ipv4.Proto.to_int h.Ipv4.proto in
              p = proto || p = 17 (* UDP: see [send_udp] *))
             && addr_bits h.Ipv4.dst = Array.unsafe_get t.addr slot ->
          Array.unsafe_set t.rx slot (Array.unsafe_get t.rx slot + 1);
          t.rx_total <- t.rx_total + 1;
          (match t.udp_sink with
          | Some sink when Ipv4.Proto.to_int h.Ipv4.proto = 17 -> (
              let plen = Bytes.length frame - Ipv4.header_size in
              match
                Udp_wire.decode ~src:h.Ipv4.src ~dst:h.Ipv4.dst
                  (Bytes.sub frame Ipv4.header_size plen)
              with
              | Ok d ->
                  sink slot ~src:h.Ipv4.src ~src_port:d.Udp_wire.src_port
                    ~dst_port:d.Udp_wire.dst_port d.Udp_wire.payload
              | Error _ -> ())
          | Some _ | None -> ())
      | Ok _ | Error _ -> t.rx_stray <- t.rx_stray + 1
    end
  end

let create net =
  let t =
    {
      net;
      node = Array.make 64 0;
      iface = Array.make 64 0;
      addr = Array.make 64 0;
      tx = Array.make 64 0;
      rx = Array.make 64 0;
      n = 0;
      slot_of_node = Array.make 64 (-1);
      tx_total = 0;
      rx_total = 0;
      rx_stray = 0;
      udp_sink = None;
    }
  in
  Netsim.set_default_handler net
    (Some (fun ~node ~iface frame -> receive t ~node ~iface frame));
  t

let size t = t.n

let grow_to len arr fill =
  let cap = max (2 * Array.length arr) len in
  let arr' = Array.make cap fill in
  Array.blit arr 0 arr' 0 (Array.length arr);
  arr'

let attach t ~node ~iface ~addr =
  if t.n = Array.length t.node then begin
    t.node <- grow_to 0 t.node 0;
    t.iface <- grow_to 0 t.iface 0;
    t.addr <- grow_to 0 t.addr 0;
    t.tx <- grow_to 0 t.tx 0;
    t.rx <- grow_to 0 t.rx 0
  end;
  if node >= Array.length t.slot_of_node then
    t.slot_of_node <- grow_to (node + 1) t.slot_of_node (-1);
  let slot = t.n in
  t.node.(slot) <- node;
  t.iface.(slot) <- iface;
  t.addr.(slot) <- addr_bits addr;
  t.slot_of_node.(node) <- slot;
  t.n <- t.n + 1;
  slot

let set_udp_sink t sink = t.udp_sink <- sink
let node t slot = t.node.(slot)
let addr t slot = Addr.of_int32 (Int32.of_int t.addr.(slot))
let tx_count t slot = t.tx.(slot)
let rx_count t slot = t.rx.(slot)
let tx_total t = t.tx_total
let rx_total t = t.rx_total
let rx_stray t = t.rx_stray

let send t slot ~dst payload =
  let h =
    Ipv4.make_header ~proto:(Ipv4.Proto.Other proto) ~src:(addr t slot) ~dst
      ()
  in
  let frame = Ipv4.encode h ~payload in
  t.tx.(slot) <- t.tx.(slot) + 1;
  t.tx_total <- t.tx_total + 1;
  Netsim.send t.net t.node.(slot) ~iface:t.iface.(slot) frame

(* Real UDP off a pooled host — the port-churn generator flow-accounting
   benchmarks need (pool datagrams are portless, so a pool pair is one
   flow no matter how many it sends; UDP gives 2^32 flows per pair). *)
let send_udp t slot ~dst ~src_port ~dst_port payload =
  let src = addr t slot in
  let h = Ipv4.make_header ~proto:Ipv4.Proto.Udp ~src ~dst () in
  let frame =
    Ipv4.encode h
      ~payload:(Udp_wire.encode ~src ~dst { Udp_wire.src_port; dst_port; payload })
  in
  t.tx.(slot) <- t.tx.(slot) + 1;
  t.tx_total <- t.tx_total + 1;
  Netsim.send t.net t.node.(slot) ~iface:t.iface.(slot) frame
