(** Pooled endpoint state for internet-scale populations (E17).

    A pooled host is a netsim node plus five array cells: node, iface,
    address, tx count, rx count.  All pooled hosts share one receive
    closure — the netsim-wide default frame handler — so attaching the
    10^5th endpoint costs a record slot, not a closure web, and an idle
    endpoint costs nothing per tick.  Gateways keep their full
    {!Ip.Stack}; the pool is only for leaf hosts that source and sink
    datagrams. *)

type t

val proto : int
(** IP protocol number carried by pool datagrams (225).  The receive path
    counts a frame as delivered only when the protocol matches and the
    destination equals the pooled host's address; anything else lands in
    {!rx_stray}. *)

val create : Netsim.t -> t
(** Installs the pool's shared receive closure as the net's default
    handler ({!Netsim.set_default_handler}) — nodes with their own
    handler (gateway stacks) are unaffected. *)

val attach :
  t -> node:Netsim.node_id -> iface:Netsim.iface -> addr:Packet.Addr.t -> int
(** Register a node as a pooled host reachable on [iface]; returns its
    slot.  The node must not have a per-node netsim handler, or the pool
    will never see its frames. *)

val send : t -> int -> dst:Packet.Addr.t -> bytes -> bool
(** Encode and transmit one pool datagram from a slot's host out its
    interface.  Returns what {!Netsim.send} returns ([false] = dropped at
    the interface). *)

val send_udp :
  t ->
  int ->
  dst:Packet.Addr.t ->
  src_port:int ->
  dst_port:int ->
  bytes ->
  bool
(** Like {!send} but a real UDP datagram (proto 17, RFC 768 header).
    Pool datagrams are portless — one flow per host pair — so workloads
    that need flow churn (E20) vary ports here instead.  The pool's
    receive closure counts inbound UDP for the host's address as
    delivered, same as pool datagrams. *)

val set_udp_sink :
  t ->
  (int ->
  src:Packet.Addr.t ->
  src_port:int ->
  dst_port:int ->
  bytes ->
  unit)
  option ->
  unit
(** Attach (or detach) the pool-wide UDP payload sink: fires as
    [(sink slot ~src ~src_port ~dst_port payload)] for every delivered,
    checksum-valid UDP datagram, after the rx counters.  One shared
    closure — like the receive handler — so a workload can give pooled
    hosts behavior (echo replicas, request/response clients) without
    per-host closures.  Pool datagrams (proto 225) stay count-only. *)

val size : t -> int
val node : t -> int -> Netsim.node_id
val addr : t -> int -> Packet.Addr.t
val tx_count : t -> int -> int
val rx_count : t -> int -> int

val tx_total : t -> int
val rx_total : t -> int

val rx_stray : t -> int
(** Frames that reached a pooled host but were not pool datagrams for its
    address — misrouted, malformed, or foreign-protocol traffic.  Always 0
    in a correctly wired topology. *)
