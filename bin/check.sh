#!/bin/sh
# Repo check: format (when ocamlformat is available), build, tests, bench
# smoke, and the observability overhead gate over the committed
# BENCH_trace.json (DESIGN.md §observability).
# Usage: bin/check.sh  (or `make check`)
set -eu
cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not installed or no .ocamlformat)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== bench smoke"
dune exec bench/main.exe -- --smoke --out=_smoke >/dev/null

# The overhead contract: merely carrying the (disabled) tracing
# instrumentation must not slow the E13/E14 fast paths by more than the
# budget.  E15 measures this against the same harness run and records it
# in BENCH_trace.json; gate on the committed artifact so a regression
# cannot be committed silently.  Smoke-run numbers are too noisy to gate
# on, so this checks the full-run artifact at the repo root.
echo "== observability overhead gate (BENCH_trace.json)"
if [ -f BENCH_trace.json ]; then
  awk '
    function num(line,   v) { sub(/.*: */, "", line); sub(/,.*/, "", line); return line + 0 }
    /"regression_budget_pct"/ { budget = num($0) }
    /"e13_regression_pct"/ { if ($0 !~ /null/) { e13 = num($0); have13 = 1 } }
    /"e14_regression_pct"/ { if ($0 !~ /null/) { e14 = num($0); have14 = 1 } }
    END {
      if (budget == 0) budget = 2.0
      bad = 0
      if (have13 && e13 > budget) { printf "FAIL: e13 fast path regressed %.1f%% (> %.1f%%) with tracing disabled\n", e13, budget; bad = 1 }
      if (have14 && e14 > budget) { printf "FAIL: e14 fast path regressed %.1f%% (> %.1f%%) with tracing disabled\n", e14, budget; bad = 1 }
      if (!bad) {
        if (have13) printf "  e13 regression %.1f%% within %.1f%% budget\n", e13, budget
        if (have14) printf "  e14 regression %.1f%% within %.1f%% budget\n", e14, budget
      }
      exit bad
    }' BENCH_trace.json
else
  echo "  skipped (no BENCH_trace.json; run: dune exec bench/main.exe -- --only E13,E14,E15)"
fi

echo "check: OK"
