module Addr = Packet.Addr
module Prefix = Addr.Prefix

type config = {
  period_us : int;
  timeout_us : int;
  gc_us : int;
  carrier_poll_us : int;
  port : int;
}

let default_config =
  {
    period_us = 5_000_000;
    timeout_us = 17_500_000;
    gc_us = 10_000_000;
    carrier_poll_us = 500_000;
    port = 520;
  }

type stats = {
  mutable updates_sent : int;
  mutable updates_received : int;
  mutable triggered_updates : int;
  mutable routes_expired : int;
  mutable bad_messages : int;
}

type neighbor = { n_iface : Netsim.iface; n_addr : Addr.t }

type rib_entry = {
  prefix : Prefix.t;
  mutable metric : int;
  mutable via : neighbor option; (* None = connected or injected *)
  mutable last_heard : int;
  mutable poisoned_at : int option;
  mutable injected : bool; (* external route from another protocol *)
}

type t = {
  udp : Udp.t;
  ip : Ip.Stack.t;
  eng : Engine.t;
  config : config;
  mutable neighbors : neighbor list;
  rib : (Prefix.t, rib_entry) Hashtbl.t;
  stats : stats;
  mutable sock : Udp.socket option;
  mutable started : bool;
  mutable trigger_pending : bool;
}

let stats t = t.stats

let rib_size t = Hashtbl.length t.rib

let metric_of t prefix =
  Option.map (fun e -> e.metric) (Hashtbl.find_opt t.rib prefix)

let create ?(config = default_config) udp =
  let ip = Udp.stack udp in
  {
    udp;
    ip;
    eng = Ip.Stack.engine ip;
    config;
    neighbors = [];
    rib = Hashtbl.create 32;
    stats =
      {
        updates_sent = 0;
        updates_received = 0;
        triggered_updates = 0;
        routes_expired = 0;
        bad_messages = 0;
      };
    sock = None;
    started = false;
    trigger_pending = false;
  }

let add_neighbor t iface addr =
  t.neighbors <- { n_iface = iface; n_addr = addr } :: t.neighbors

(* Keep the kernel table in sync with one RIB entry. *)
let install t e =
  match e.via with
  | None -> () (* connected routes are owned by the stack *)
  | Some n ->
      if e.metric >= Rt_msg.infinity_metric then
        Ip.Route_table.remove (Ip.Stack.table t.ip) e.prefix
      else
        Ip.Route_table.add (Ip.Stack.table t.ip)
          {
            Ip.Route_table.prefix = e.prefix;
            iface = n.n_iface;
            next_hop = Some n.n_addr;
            metric = e.metric;
          }

let advertisement t ~to_iface =
  let entries = ref [] in
  Hashtbl.iter
    (fun _ e ->
      (* Split horizon with poisoned reverse. *)
      let metric =
        match e.via with
        | Some n when n.n_iface = to_iface -> Rt_msg.infinity_metric
        | Some _ | None -> e.metric
      in
      entries := { Rt_msg.prefix = e.prefix; metric } :: !entries)
    t.rib;
  !entries

let send_update t =
  match t.sock with
  | None -> ()
  | Some sock ->
      List.iter
        (fun n ->
          let entries = advertisement t ~to_iface:n.n_iface in
          if entries <> [] then begin
            t.stats.updates_sent <- t.stats.updates_sent + 1;
            ignore
              (Udp.sendto sock ~ttl:1 ~dst:n.n_addr ~dst_port:t.config.port
                 (Rt_msg.encode (Rt_msg.Dv_update entries)))
          end)
        t.neighbors

(* Debounced triggered update: coalesce changes within 10 ms. *)
let trigger t =
  if not t.trigger_pending then begin
    t.trigger_pending <- true;
    Engine.after t.eng 10_000 (fun () ->
        t.trigger_pending <- false;
        t.stats.triggered_updates <- t.stats.triggered_updates + 1;
        send_update t)
  end

let poison t e =
  if e.metric < Rt_msg.infinity_metric then begin
    e.metric <- Rt_msg.infinity_metric;
    e.poisoned_at <- Some (Engine.now t.eng);
    t.stats.routes_expired <- t.stats.routes_expired + 1;
    install t e;
    trigger t
  end

let handle_entry t (n : neighbor) (re : Rt_msg.dv_entry) =
  let now = Engine.now t.eng in
  let metric = min (re.metric + 1) Rt_msg.infinity_metric in
  match Hashtbl.find_opt t.rib re.prefix with
  | None ->
      if metric < Rt_msg.infinity_metric then begin
        let e =
          {
            prefix = re.prefix;
            metric;
            via = Some n;
            last_heard = now;
            poisoned_at = None;
            injected = false;
          }
        in
        Hashtbl.add t.rib re.prefix e;
        install t e;
        trigger t
      end
  | Some e -> (
      match e.via with
      | None -> () (* never displace a connected route *)
      | Some cur when Addr.equal cur.n_addr n.n_addr ->
          (* From our current next hop: always believe it. *)
          e.last_heard <- now;
          if metric <> e.metric then begin
            e.metric <- metric;
            if metric >= Rt_msg.infinity_metric then
              e.poisoned_at <- Some now
            else e.poisoned_at <- None;
            install t e;
            trigger t
          end
      | Some _ ->
          if metric < e.metric then begin
            e.via <- Some n;
            e.metric <- metric;
            e.last_heard <- now;
            e.poisoned_at <- None;
            install t e;
            trigger t
          end)

let handle_message t ~src buf =
  match Rt_msg.decode buf with
  | Ok (Rt_msg.Dv_update entries) -> (
      match
        List.find_opt (fun n -> Addr.equal n.n_addr src) t.neighbors
      with
      | None -> t.stats.bad_messages <- t.stats.bad_messages + 1
      | Some n ->
          t.stats.updates_received <- t.stats.updates_received + 1;
          List.iter (handle_entry t n) entries)
  | Ok (Rt_msg.Hello _) | Ok (Rt_msg.Lsa _) | Error _ ->
      t.stats.bad_messages <- t.stats.bad_messages + 1

let expire_routes t =
  let now = Engine.now t.eng in
  let stale = ref [] in
  Hashtbl.iter
    (fun prefix e ->
      match e.via with
      | None -> ()
      | Some _ -> (
          match e.poisoned_at with
          | Some at ->
              if now - at > t.config.gc_us then stale := prefix :: !stale
          | None ->
              if now - e.last_heard > t.config.timeout_us then poison t e))
    t.rib;
  List.iter
    (fun prefix ->
      Hashtbl.remove t.rib prefix;
      Ip.Route_table.remove (Ip.Stack.table t.ip) prefix)
    !stale

let carrier_check t =
  let net = Ip.Stack.net t.ip in
  let me = Ip.Stack.node_id t.ip in
  List.iter
    (fun n ->
      let link = Netsim.iface_link net me n.n_iface in
      if not (Netsim.link_is_up net link) then
        Hashtbl.iter
          (fun _ e ->
            match e.via with
            | Some v when v.n_iface = n.n_iface -> poison t e
            | Some _ | None -> ())
          t.rib)
    t.neighbors

let seed_connected t =
  List.iter
    (fun (r : Ip.Route_table.route) ->
      if r.next_hop = None && r.metric = 0 then
        Hashtbl.replace t.rib r.prefix
          {
            prefix = r.prefix;
            metric = 1;
            via = None;
            last_heard = max_int;
            poisoned_at = None;
            injected = false;
          })
    (Ip.Route_table.entries (Ip.Stack.table t.ip))

let inject t prefix ~metric =
  let metric = min metric (Rt_msg.infinity_metric - 1) in
  match Hashtbl.find_opt t.rib prefix with
  | Some e when e.injected ->
      if e.metric <> metric then begin
        e.metric <- metric;
        e.poisoned_at <- None;
        trigger t
      end
  | Some _ -> () (* never displace a natively learned route *)
  | None ->
      Hashtbl.replace t.rib prefix
        {
          prefix;
          metric;
          via = None;
          last_heard = max_int;
          poisoned_at = None;
          injected = true;
        };
      trigger t

let withdraw t prefix =
  match Hashtbl.find_opt t.rib prefix with
  | Some e when e.injected ->
      Hashtbl.remove t.rib prefix;
      trigger t
  | Some _ | None -> ()

let routes t =
  Hashtbl.fold
    (fun prefix e acc ->
      if (not e.injected) && e.metric < Rt_msg.infinity_metric then
        (prefix, e.metric) :: acc
      else acc)
    t.rib []

let start t =
  if not t.started then begin
    t.started <- true;
    seed_connected t;
    let sock =
      Udp.bind t.udp ~port:t.config.port
        ~recv:(fun ~src ~src_port:_ buf -> handle_message t ~src buf)
        ()
    in
    t.sock <- Some sock;
    let rec periodic () =
      expire_routes t;
      send_update t;
      Engine.after t.eng t.config.period_us periodic
    in
    let rec carrier () =
      carrier_check t;
      Engine.after t.eng t.config.carrier_poll_us carrier
    in
    (* First update goes out almost immediately so cold start converges
       in a few round trips rather than a full period. *)
    Engine.after t.eng 1_000 periodic;
    Engine.after t.eng t.config.carrier_poll_us carrier
  end
