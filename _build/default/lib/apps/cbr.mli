(** Constant-bit-rate datagram traffic over UDP: the packet-voice workload
    that motivated splitting TCP out of the internetwork layer (Clark §4).

    The source emits a fixed-size packet on a fixed period; each packet
    carries a sequence number and a send timestamp.  The sink measures
    delivery ratio, one-way delay, jitter, and — the number that matters
    for voice — how many packets missed their playout deadline.  Running
    the same workload through TCP instead (experiment E3) shows why a
    reliable, ordered service is the *wrong* type of service here. *)

type sink

type sink_report = {
  received : int;
  lost : int;  (** Gaps in the sequence space at report time. *)
  delay : Stdext.Stats.Samples.t;  (** One-way delays, seconds. *)
  deadline_misses : int;
  duplicates : int;
  reordered : int;
}

val sink : Udp.t -> port:int -> deadline_us:int -> sink
val report : sink -> sink_report

type source

val source :
  Udp.t ->
  dst:Packet.Addr.t ->
  dst_port:int ->
  payload_bytes:int ->
  period_us:int ->
  count:int ->
  ?tos:Packet.Ipv4.Tos.t ->
  unit ->
  source
(** Start emitting immediately; stops after [count] packets. *)

val sent : source -> int
val done_sending : source -> bool

val packet_overhead : int
(** Bytes of sequence+timestamp header inside each payload: 8. *)
