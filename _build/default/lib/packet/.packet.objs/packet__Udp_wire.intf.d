lib/packet/udp_wire.mli: Addr Format
