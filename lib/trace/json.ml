type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.17g would round-trip but litters the file; benches report measured
   quantities where a few decimals carry all the signal. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.4f" f

let to_buffer b t =
  let rec go indent t =
    match t with
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ",\n";
            Buffer.add_string b pad;
            go (indent + 2) item)
          items;
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make indent ' ');
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ",\n";
            Buffer.add_string b pad;
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\": ";
            go (indent + 2) v)
          fields;
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make indent ' ');
        Buffer.add_char b '}'
  in
  go 0 t

let to_string t =
  let b = Buffer.create 256 in
  to_buffer b t;
  Buffer.contents b

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  output_char oc '\n';
  close_out oc

(* A deliberately dumb extractor for the flat BENCH_*.json files this repo
   writes: walk down [keys] (each names an object member) and read the
   number that follows.  Not a JSON parser — just enough for check.sh-style
   cross-referencing between bench outputs. *)
let number_at ~keys text =
  let find_from pos needle =
    let n = String.length needle and len = String.length text in
    let rec scan i =
      if i + n > len then None
      else if String.sub text i n = needle then Some (i + n)
      else scan (i + 1)
    in
    scan pos
  in
  let rec walk pos = function
    | [] ->
        (* Skip to the number after the last key's colon. *)
        let len = String.length text in
        let rec skip i =
          if i >= len then None
          else
            match text.[i] with
            | ' ' | ':' | '\t' | '\n' -> skip (i + 1)
            | '-' | '0' .. '9' ->
                let j = ref i in
                while
                  !j < len
                  && (match text.[!j] with
                     | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
                     | _ -> false)
                do
                  incr j
                done;
                float_of_string_opt (String.sub text i (!j - i))
            | _ -> None
        in
        skip pos
    | k :: rest -> (
        match find_from pos ("\"" ^ k ^ "\"") with
        | Some p -> walk p rest
        | None -> None)
  in
  walk 0 keys

let number_in_file ~keys path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      number_at ~keys s
