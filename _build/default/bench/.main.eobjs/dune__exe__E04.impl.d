bench/e04.ml: Catenet Internet Ip List Netsim Printf Stdext Tcp Util
