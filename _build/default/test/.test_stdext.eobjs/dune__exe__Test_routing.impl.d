test/test_routing.ml: Alcotest Bytes Catenet Engine Gen Hashtbl Int32 Ip List Netsim Option Packet QCheck QCheck_alcotest Routing Stdext Udp
