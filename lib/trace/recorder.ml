(* The flight recorder: one global bounded ring of timestamped events.

   Global because the simulation is single-threaded and the point is a
   single place to ask "what just happened" — per-instance recorders would
   reintroduce exactly the scatter this subsystem removes.

   The overhead contract (DESIGN.md §observability): with every class
   disabled, an instrumented call site costs one read of [mask] and a
   branch; no event is constructed, nothing is written.  Call sites guard
   with [want] before building the event:

     if Trace.want Trace.Cls.ip then
       Trace.emit (Trace.Event.Ip_drop { ... })                          *)

type entry = { t_us : int; seq : int; event : Event.t }

(* [mask] is deliberately a bare mutable int in a flat record: [want] is
   a single load + land + compare, cheap enough for the e13/e14 fast
   paths. *)
type state = {
  mutable mask : int;
  mutable buf : entry array;
  mutable head : int; (* next write index *)
  mutable len : int; (* valid entries, <= capacity *)
  mutable emitted : int; (* total recorded since last clear *)
  mutable now : unit -> int;
}

let default_capacity = 65_536

let nil = { t_us = 0; seq = 0; event = Event.Timer_arm { at = 0 } }

let st =
  { mask = 0; buf = [||]; head = 0; len = 0; emitted = 0;
    now = (fun () -> 0) }

let want c = st.mask land c <> 0 [@@fastpath]
let enabled () = st.mask <> 0 [@@fastpath]
let mask () = st.mask [@@fastpath]
let set_mask m = st.mask <- m

let set_now f = st.now <- f

let capacity () = Array.length st.buf

let clear () =
  st.head <- 0;
  st.len <- 0;
  st.emitted <- 0;
  (* Drop references so recorded payloads can be collected. *)
  Array.fill st.buf 0 (Array.length st.buf) nil

let enable ?(capacity = default_capacity) ?(mask = Event.Cls.all) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity < 1";
  if Array.length st.buf <> capacity then st.buf <- Array.make capacity nil;
  clear ();
  st.mask <- mask

let disable () = st.mask <- 0

let emit event =
  if st.mask land Event.cls event <> 0 && Array.length st.buf > 0 then begin
    let e = { t_us = st.now (); seq = st.emitted; event } in
    st.buf.(st.head) <- e;
    st.head <- (st.head + 1) mod Array.length st.buf;
    if st.len < Array.length st.buf then st.len <- st.len + 1;
    st.emitted <- st.emitted + 1
  end

let length () = st.len
let emitted () = st.emitted

(* Events pushed out of the ring by later ones. *)
let overwritten () = st.emitted - st.len

let iter f =
  let cap = Array.length st.buf in
  if cap > 0 then
    let start = (st.head - st.len + cap) mod cap in
    for i = 0 to st.len - 1 do
      f st.buf.((start + i) mod cap)
    done

let entries () =
  let acc = ref [] in
  iter (fun e -> acc := e :: !acc);
  List.rev !acc

let count p =
  let n = ref 0 in
  iter (fun e -> if p e.event then incr n);
  !n

let drops ?reason () =
  let keep e =
    match Event.drop_reason_of e.event with
    | None -> false
    | Some r -> ( match reason with None -> true | Some want -> r = want)
  in
  List.filter keep (entries ())

let pp_entry fmt e =
  Format.fprintf fmt "[%8dus #%d] %a" e.t_us e.seq Event.pp e.event

let to_json () =
  Json.Obj
    [ ("mask", Json.Str (Event.Cls.to_string st.mask));
      ("capacity", Json.Int (Array.length st.buf));
      ("emitted", Json.Int st.emitted);
      ("overwritten", Json.Int (overwritten ()));
      ( "events",
        Json.List
          (List.map
             (fun e ->
               match Event.to_json e.event with
               | Json.Obj fields ->
                   Json.Obj
                     (("t_us", Json.Int e.t_us)
                     :: ("seq", Json.Int e.seq)
                     :: fields)
               | (Json.Null | Json.Bool _ | Json.Int _ | Json.Float _
                 | Json.Str _ | Json.List _) as other ->
                   other)
             (entries ())) ) ]
