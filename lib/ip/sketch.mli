(** Count-min sketch with conservative update (E20).

    Sublinear-memory per-flow counters: [depth] rows of [width] cells,
    each flow hashed to one cell per row by a seeded multiply-shift
    hash.  Estimates are one-sided — {!estimate_packets} and
    {!estimate_bytes} never return less than the true totals attributed
    via {!update} — and conservative update keeps the overestimate small
    on skewed traffic.  All hot operations are allocation-free
    ([@@fastpath], checked by catenet-lint). *)

type t

val mix : int -> int
(** Splitmix-style 63-bit finalizer (also used for the row seeds);
    exposed so callers build flow fingerprints with the same diffusion.
    Allocation-free. *)

val create : ?seed:int -> width:int -> depth:int -> unit -> t
(** [width] must be a power of two (>= 8), [depth] >= 1.  Memory is
    [2 * width * depth] words plus the fixed 32 KB cardinality
    bitmap. *)

val width : t -> int
val depth : t -> int

val update : t -> int -> bytes:int -> unit
(** [update t fp ~bytes] attributes one packet of [bytes] wire bytes to
    fingerprint [fp].  Allocation-free. *)

val estimate_packets : t -> int -> int
val estimate_bytes : t -> int -> int
(** Never underestimate the totals recorded for that fingerprint;
    overestimates shrink with [width] and [depth]. *)

val last_estimate_packets : t -> int
val last_estimate_bytes : t -> int
(** The post-update estimates of the key passed to the most recent
    {!update} — read them immediately after updating to avoid
    re-hashing (the heavy-hitter admission test does). *)

val cardinality : t -> int
(** Linear-counting estimate of the number of distinct fingerprints seen
    since creation or {!clear}, from a dedicated 2^18-bit occupancy
    bitmap (32 KB, independent of [width]).  Saturates around
    3 * 10^6; rotate epochs before that. *)

val updates : t -> int
(** Packets recorded since creation or {!clear}. *)

val clear : t -> unit
(** Zero every cell and the occupancy bitmap (epoch rotation). *)
