module Samples = Stdext.Stats.Samples

let serve tcp ~port ~request_bytes ~response_bytes =
  let accept conn =
    let pending = ref 0 in
    Tcp.on_receive conn (fun data ->
        pending := !pending + Bytes.length data;
        while !pending >= request_bytes do
          pending := !pending - request_bytes;
          ignore (Tcp.send conn (Bytes.make response_bytes 'r'))
        done);
    Tcp.on_peer_fin conn (fun () -> Tcp.close conn)
  in
  ignore (Tcp.listen tcp ~port ~accept)

type client = {
  c_eng : Engine.t;
  c_conn : Tcp.conn;
  c_req : int;
  c_resp : int;
  c_count : int;
  c_gap : int;
  c_lat : Samples.t;
  mutable c_sent_at : int;
  mutable c_got : int;
  mutable c_done : int;
  mutable c_failed : bool;
}

let latencies c = c.c_lat
let completed c = c.c_done
let failed c = c.c_failed

let client tcp ~dst ~dst_port ~request_bytes ~response_bytes ~count
    ?(gap_us = 0) () =
  let eng = Ip.Stack.engine (Tcp.stack tcp) in
  let conn =
    Tcp.connect tcp
      ~config:{ Tcp.default_config with Tcp.nagle = false }
      ~dst ~dst_port ()
  in
  let c =
    {
      c_eng = eng;
      c_conn = conn;
      c_req = request_bytes;
      c_resp = response_bytes;
      c_count = count;
      c_gap = gap_us;
      c_lat = Samples.create ();
      c_sent_at = 0;
      c_got = 0;
      c_done = 0;
      c_failed = false;
    }
  in
  let rec ask () =
    if (not c.c_failed) && c.c_done < c.c_count then begin
      c.c_sent_at <- Engine.now eng;
      c.c_got <- 0;
      ignore (Tcp.send conn (Bytes.make c.c_req 'q'))
    end
    else if not c.c_failed then Tcp.close conn
  and finish_one () =
    Samples.add c.c_lat (Engine.to_sec (Engine.now eng - c.c_sent_at));
    c.c_done <- c.c_done + 1;
    if c.c_done >= c.c_count then Tcp.close conn
    else if c.c_gap = 0 then ask ()
    else Engine.after eng c.c_gap ask
  in
  Tcp.on_established conn (fun () -> ask ());
  Tcp.on_receive conn (fun data ->
      c.c_got <- c.c_got + Bytes.length data;
      while c.c_got >= c.c_resp do
        c.c_got <- c.c_got - c.c_resp;
        finish_one ()
      done);
  Tcp.on_close conn (fun reason ->
      match reason with
      | Tcp.Graceful -> ()
      | Tcp.Reset | Tcp.Timed_out | Tcp.Refused -> c.c_failed <- true);
  c
