(* E13 — Gateway forwarding fast path.

   A 6-gateway transit chain (a — g1 … g6 — b) carries ~50k large UDP-ish
   datagrams.  We run the workload twice: once on the legacy path (every
   gateway decodes the datagram, copies the payload out, re-encodes a
   fresh frame, and walks the routing table per packet) and once on the
   fast path (header peeked in place, TTL and checksum patched via the
   RFC 1624 incremental update, the *same* frame retransmitted, routes
   served from the generation-checked cache).  The paper's gateways lived
   and died by exactly this per-packet budget.

   Results go to stdout and, machine-readably, to BENCH_forwarding.json
   in the current directory (the repo root under `dune exec bench/main.exe`). *)

open Catenet

module Addr = Packet.Addr

let hops = 6
let full_datagrams = 50_000
let payload_size = 1_400
let pace_us = 15 (* > tx time of a 1420B frame at 1 Gb/s, so queues stay shallow *)
let proto = Packet.Ipv4.Proto.Other 99

let fast_profile =
  Netsim.profile ~bandwidth_bps:1_000_000_000 ~delay_us:1 ~mtu:1500
    ~queue_capacity:4096 "e13-gigabit"

(* Realistic gateway tables: beyond the connected /24s and the static
   routes, each gateway carries 64 filler prefixes, the way a period
   gateway carried routes for every network its routing protocol had
   heard of.  The slow path pays the table walk per packet; the fast
   path's cache pays it once per destination. *)
let add_filler_routes table =
  for j = 0 to 63 do
    Ip.Route_table.add table
      {
        Ip.Route_table.prefix = Addr.Prefix.make (Addr.v 172 16 j 0) 24;
        iface = 0;
        next_hop = None;
        metric = 1;
      }
  done

type outcome = { dps : float; words_per_pkt : float }

let run_once ~fast ~datagrams =
  let t = Internet.create ~seed:42 () in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  let gws =
    List.init hops (fun i -> Internet.add_gateway t (Printf.sprintf "g%d" (i + 1)))
  in
  let chain =
    [ a.Internet.h_node ]
    @ List.map (fun g -> g.Internet.g_node) gws
    @ [ b.Internet.h_node ]
  in
  let rec wire = function
    | x :: (y :: _ as rest) ->
        ignore (Internet.connect t fast_profile x y);
        wire rest
    | _ -> ()
  in
  wire chain;
  Internet.start t;
  List.iter (fun g -> add_filler_routes (Ip.Stack.table g.Internet.g_ip)) gws;
  let stacks =
    a.Internet.h_ip :: b.Internet.h_ip
    :: List.map (fun g -> g.Internet.g_ip) gws
  in
  List.iter (fun s -> Ip.Stack.set_fast_path s fast) stacks;
  let delivered = ref 0 in
  Ip.Stack.register_proto b.Internet.h_ip proto (fun _h _payload ->
      incr delivered);
  let eng = Internet.engine t in
  let dst = Internet.addr_of t b.Internet.h_node in
  let payload = Bytes.make payload_size 'e' in
  let rec send_next i =
    if i < datagrams then begin
      (match Ip.Stack.send a.Internet.h_ip ~proto ~dst payload with
      | Ok () -> ()
      | Error _ -> failwith "E13: send failed");
      Engine.after eng pace_us (fun () -> send_next (i + 1))
    end
  in
  Engine.after eng 1 (fun () -> send_next 0);
  let alloc0 = Gc.allocated_bytes () in
  let wall0 = Unix.gettimeofday () in
  Internet.run_until_idle t;
  let wall = Unix.gettimeofday () -. wall0 in
  let alloc = Gc.allocated_bytes () -. alloc0 in
  if !delivered <> datagrams then
    failwith
      (Printf.sprintf "E13: delivered %d of %d datagrams" !delivered datagrams);
  List.iter
    (fun g ->
      let c = Ip.Stack.counters g.Internet.g_ip in
      if c.Ip.Stack.forwarded <> datagrams then
        failwith
          (Printf.sprintf "E13: %s forwarded %d of %d"
             (Netsim.node_name (Internet.net t) g.Internet.g_node)
             c.Ip.Stack.forwarded datagrams))
    gws;
  {
    dps = float_of_int datagrams /. wall;
    words_per_pkt = alloc /. 8.0 /. float_of_int datagrams;
  }

let write_json ~slow ~fast ~speedup ~datagrams =
  let open Trace.Json in
  let outcome o =
    Obj
      [ ("datagrams_per_sec", Float o.dps);
        ("words_per_packet", Float o.words_per_pkt) ]
  in
  Util.write_json "BENCH_forwarding.json"
    (Obj
       [ ("experiment", Str "E13");
         ("topology", Str (Printf.sprintf "a - g1..g%d - b" hops));
         ("datagrams", Int datagrams);
         ("payload_bytes", Int payload_size);
         ("fast", outcome fast);
         ("slow", outcome slow);
         ("speedup", Float speedup) ])

let run () =
  Util.banner "E13" "gateway forwarding fast path"
    "in-place TTL/checksum patching plus route caching beats \
     decode/re-encode forwarding well clear on a transit chain \
     (~1.8x now that the LPM trie also sped the slow path's table walk)";
  let datagrams = Util.scaled full_datagrams in
  let slow = run_once ~fast:false ~datagrams in
  let fast = run_once ~fast:true ~datagrams in
  let speedup = fast.dps /. slow.dps in
  Util.table
    [ "path"; "datagrams/s"; "words/packet" ]
    [
      [ "slow (decode/re-encode)"; Printf.sprintf "%.0f" slow.dps;
        Printf.sprintf "%.1f" slow.words_per_pkt ];
      [ "fast (patch in place)"; Printf.sprintf "%.0f" fast.dps;
        Printf.sprintf "%.1f" fast.words_per_pkt ];
    ];
  Util.note "speedup %.2fx over %d datagrams crossing %d gateways" speedup
    datagrams hops;
  write_json ~slow ~fast ~speedup ~datagrams
