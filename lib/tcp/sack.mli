(** Sender-side SACK scoreboard (RFC 2018): which ranges above [snd_una]
    the peer has reported holding, so retransmission can skip them.

    All edges are 32-bit modular sequence numbers ({!Seq_num}) within one
    send window of [snd_una]; blocks are disjoint with exclusive right
    edges. *)

type t

val create : unit -> t

val reset : t -> unit
(** Forget everything (connection teardown or RTO: RFC 2018 §8 allows
    discarding the scoreboard on timeout). *)

val record : t -> una:int -> high:int -> (int * int) list -> unit
(** Merge the SACK blocks of one ACK.  Blocks not strictly inside
    [(una, high\]] are ignored — including forged ranges. *)

val clear_below : t -> int -> unit
(** The cumulative ACK advanced: drop covered ranges. *)

val sacked_to : t -> int -> int option
(** [sacked_to t seq] is [Some right] when [seq] lies inside a sacked
    block — retransmission may jump to [right]. *)

val next_left : t -> int -> int option
(** Left edge of the first sacked block strictly after [seq]: a
    retransmission starting at [seq] must stop there. *)

val blocks : t -> (int * int) list
val block_count : t -> int

val sacked_bytes : t -> int
(** Total bytes currently sacked. *)
