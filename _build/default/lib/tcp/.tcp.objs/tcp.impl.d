lib/tcp/tcp.ml: Buffer Bytes Engine Format Hashtbl Ip List Option Packet Printf Rto Sendbuf Seq_num Stdext
