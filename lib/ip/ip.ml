(** The internet layer: routing table, reassembly, accounting, and the
    per-node stack.  See {!Stack} for the main entry point. *)

module Route_table = Route_table
module Reassembly = Reassembly
module Sketch = Sketch
module Heavy_hitters = Heavy_hitters
module Accounting = Accounting
module Stack = Stack
