(** Deterministic payload patterns for end-to-end integrity checking.

    Every workload that moves bulk data fills it with a position-dependent
    pattern so the receiver can verify, byte by byte, that the transport
    delivered exactly the right stream — the end-to-end check that
    hop-by-hop reliability cannot substitute for. *)

val byte : seed:int -> int -> char
(** [byte ~seed i] is the pattern byte at stream position [i]. *)

val fill : seed:int -> off:int -> bytes -> unit
(** Fill a buffer with the pattern for stream positions
    [off, off + length). *)

val make : seed:int -> off:int -> int -> bytes
(** Fresh patterned buffer. *)

(** Incremental verifier. *)
type checker

val checker : seed:int -> checker

val check : checker -> bytes -> bool
(** Feed the next chunk of the stream; [false] if any byte mismatched
    (sticky). *)

val checked : checker -> int
(** Bytes verified so far. *)

val ok : checker -> bool
