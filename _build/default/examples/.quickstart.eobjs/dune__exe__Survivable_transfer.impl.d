examples/survivable_transfer.ml: Apps Catenet Engine Format Internet Netsim Printf Routing Tcp
