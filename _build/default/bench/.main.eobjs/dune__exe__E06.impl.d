bench/e06.ml: Bytes Catenet Engine Internet List Netsim Printf Tcp Udp Util
