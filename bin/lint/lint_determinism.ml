(* Determinism rule of catenet-lint (source level).

   The replay story — E16's bit-for-bit chaos replay, the seeded
   adversarial fuzzers, the BENCH digests — assumes a simulation is a
   pure function of its seed.  This pass bans the ambient inputs that
   silently break that:

     - wall clock: [Unix.gettimeofday], [Unix.time], [Sys.time].
       Simulated time comes from [Engine.now]; reading the host clock
       inside [lib/] makes behavior depend on the machine running it.
     - ambient randomness: [Random.self_init] (seeds from the
       environment) and the global-state [Random.int]/[float]/... API.
       Every stochastic element must draw from an explicitly seeded
       [Stdext.Rng].
     - representation hashing: [Hashtbl.hash]/[seeded_hash] on arbitrary
       values ties behavior to heap layout; [Hashtbl.randomize] makes
       iteration order per-process.
     - unordered iteration: [Hashtbl.iter]/[fold]/[to_seq] visit
       bindings in unspecified order.  A site whose observable result
       is iteration-order independent (a commutative fold, or a
       collect-then-sort) declares so with [@determinism.commutative];
       anything feeding event ordering or serialized output must sort
       (see [Stdext.Det]).

   [~rng_only:true] (the [--rng-only] driver flag) keeps just the
   seeded-RNG sub-rule: [bench/] and [examples/] may legitimately read
   the wall clock to measure host throughput, but even there every
   simulated random draw must be seeded. *)

open Parsetree
open Lint_common

let ambient_random =
  [ "int"; "int32"; "int64"; "nativeint"; "bits"; "bits32"; "bits64";
    "float"; "bool"; "char"; "init"; "full_init" ]

let unordered_iteration = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let check_ident ~rng_only loc parts =
  match parts with
  | [ "Random"; "self_init" ] ->
      report_loc ~rule:"determinism" loc
        "Random.self_init seeds from the environment; every generator must \
         be explicitly seeded (Stdext.Rng.create)"
  | [ "Random"; fn ] when List.mem fn ambient_random ->
      report_loc ~rule:"determinism" loc
        (Printf.sprintf
           "ambient Random.%s uses hidden global state; draw from an \
            explicitly seeded Stdext.Rng instead"
           fn)
  | _ when rng_only -> ()
  | [ "Unix"; ("gettimeofday" | "time" | "localtime" | "gmtime") ]
  | [ "Sys"; "time" ] ->
      report_loc ~rule:"determinism" loc
        (Printf.sprintf
           "wall-clock %s breaks replay determinism; simulated time comes \
            from Engine.now"
           (String.concat "." parts))
  | [ "Hashtbl"; (("hash" | "seeded_hash" | "hash_param") as fn) ] ->
      report_loc ~rule:"determinism" loc
        (Printf.sprintf
           "Hashtbl.%s on arbitrary values depends on heap representation; \
            hash a declared wire layout or explicit fields instead"
           fn)
  | [ "Hashtbl"; "randomize" ] ->
      report_loc ~rule:"determinism" loc
        "Hashtbl.randomize makes iteration order differ per process"
  | _ -> ()

let check_file ~rng_only path structure =
  ignore path;
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.pexp_desc with
          | Pexp_ident lid -> check_ident ~rng_only e.pexp_loc (flatten_lid lid.txt)
          | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, _)
            when not rng_only -> (
              match flatten_lid lid.txt with
              | [ "Hashtbl"; fn ] when List.mem fn unordered_iteration ->
                  if not (has_attr "determinism.commutative" e.pexp_attributes)
                  then
                    report_loc ~rule:"determinism" e.pexp_loc
                      (Printf.sprintf
                         "Hashtbl.%s visits bindings in unspecified order; \
                          sort the bindings (Stdext.Det) or mark the call \
                          [@determinism.commutative] if the result is \
                          order-independent"
                         fn)
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr sub e);
    }
  in
  it.structure it structure
