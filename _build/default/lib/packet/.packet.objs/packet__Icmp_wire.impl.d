lib/packet/icmp_wire.ml: Bytes Checksum Format Ipv4 Printf Stdext
