lib/ip/route_table.ml: Array Format List Netsim Packet Printf
