module Rng = Stdext.Rng

type entry = { at_us : int; fault : Fault.t }

type t = entry list

let compare_entry a b = compare a.at_us b.at_us

(* Stable sort: entries at the same instant apply in construction order,
   which is itself deterministic — replay depends on this. *)
let normalize entries = List.stable_sort compare_entry entries

let scripted pairs =
  normalize (List.map (fun (at_us, fault) -> { at_us; fault }) pairs)

let link_flap ~link ~at_us ~down_us =
  [ { at_us; fault = Fault.Link_set { link; up = false } };
    { at_us = at_us + down_us; fault = Fault.Link_set { link; up = true } } ]

let node_outage ~node ~at_us ~down_us =
  [ { at_us; fault = Fault.Node_set { node; up = false } };
    { at_us = at_us + down_us; fault = Fault.Node_set { node; up = true } } ]

let partition ~links ~at_us ~heal_after_us =
  normalize
    (List.concat_map
       (fun link -> link_flap ~link ~at_us ~down_us:heal_after_us)
       links)

(* A seeded storm of randomized flaps: exponentially distributed gaps
   between flap starts, uniform downtimes.  Same seed, same storm —
   bit-for-bit, because the only entropy source is the explicit [Rng]. *)
let flap_storm ~seed ~links ~start_us ~duration_us ~mean_gap_us ~max_down_us
    =
  let rng = Rng.create seed in
  let links = Array.of_list links in
  if Array.length links = 0 then []
  else begin
    let entries = ref [] in
    let t = ref start_us in
    let stop = start_us + duration_us in
    let continue = ref true in
    while !continue do
      let gap = 1 + int_of_float (Rng.exponential rng (float_of_int mean_gap_us)) in
      t := !t + gap;
      if !t >= stop then continue := false
      else begin
        let link = links.(Rng.int rng (Array.length links)) in
        let down_us = 1 + Rng.int rng max_down_us in
        entries :=
          { at_us = !t + down_us; fault = Fault.Link_set { link; up = true } }
          :: { at_us = !t; fault = Fault.Link_set { link; up = false } }
          :: !entries
      end
    done;
    normalize (List.rev !entries)
  end

let merge schedules = normalize (List.concat schedules)

let length = List.length

let pp fmt sched =
  List.iter
    (fun { at_us; fault } ->
      Format.fprintf fmt "%d %a@." at_us Fault.pp fault)
    sched

let to_string sched = Format.asprintf "%a" pp sched

(* MD5 over the printed form: two schedules with the same digest apply
   the same faults at the same instants in the same order. *)
let digest sched = Digest.to_hex (Digest.string (to_string sched))

let to_json sched =
  Trace.Json.List
    (List.map
       (fun { at_us; fault } ->
         Trace.Json.Obj
           [ ("at_us", Trace.Json.Int at_us);
             ("fault", Trace.Json.Str (Fault.to_string fault)) ])
       sched)
