lib/ip/reassembly.mli: Engine Packet
