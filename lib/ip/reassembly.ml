module Ipv4 = Packet.Ipv4
module Addr = Packet.Addr

type key = { src : int32; dst : int32; proto : int; id : int }

type buffer = {
  mutable fragments : (int * bytes) list; (* offset, data; sorted *)
  mutable total_len : int option; (* known once the MF-clear fragment lands *)
  mutable timer : Engine.Timer.handle;
}

type t = {
  eng : Engine.t;
  timeout_us : int;
  node : int; (* owning node, for flight-recorder events *)
  buffers : (key, buffer) Hashtbl.t;
  mutable expired : int;
}

let create ?(timeout_us = 30_000_000) ?(node = -1) eng =
  { eng; timeout_us; node; buffers = Hashtbl.create 16; expired = 0 }

type result = Incomplete | Complete of bytes

let key_of (h : Ipv4.header) =
  {
    src = Addr.to_int32 h.src;
    dst = Addr.to_int32 h.dst;
    proto = Ipv4.Proto.to_int h.proto;
    id = h.id;
  }

(* Insert keeping the list sorted by offset; earlier-arrived data wins on
   exact duplicates. *)
let insert fragments off data =
  let rec go = function
    | [] -> [ (off, data) ]
    | (o, d) :: rest when o < off -> (o, d) :: go rest
    | (o, _) :: _ as l when o > off -> (off, data) :: l
    | l -> l (* same offset already present: keep the first arrival *)
  in
  go fragments

(* Contiguity check: fragments must cover [0, total). *)
let try_assemble b =
  match b.total_len with
  | None -> None
  | Some total ->
      let rec covered upto = function
        | [] -> upto >= total
        | (off, data) :: rest ->
            if off > upto then false
            else covered (max upto (off + Bytes.length data)) rest
      in
      if not (covered 0 b.fragments) then None
      else begin
        let out = Bytes.make total '\000' in
        List.iter
          (fun (off, data) ->
            let len = min (Bytes.length data) (total - off) in
            if len > 0 then Bytes.blit data 0 out off len)
          b.fragments;
        Some out
      end

let push t (h : Ipv4.header) payload =
  if h.frag_offset = 0 && not h.more_fragments then Complete payload
  else begin
    let k = key_of h in
    let b =
      match Hashtbl.find_opt t.buffers k with
      | Some b -> b
      | None ->
          let timer =
            Engine.Timer.start t.eng ~after:t.timeout_us (fun () ->
                if Hashtbl.mem t.buffers k then begin
                  Hashtbl.remove t.buffers k;
                  t.expired <- t.expired + 1;
                  if Trace.want Trace.Cls.ip then
                    Trace.emit
                      (Trace.Event.Ip_drop
                         { node = t.node; src = Addr.of_int32 k.src;
                           dst = Addr.of_int32 k.dst;
                           reason = Trace.Event.Reassembly_timeout })
                end)
          in
          let b = { fragments = []; total_len = None; timer } in
          Hashtbl.add t.buffers k b;
          b
    in
    b.fragments <- insert b.fragments h.frag_offset payload;
    if not h.more_fragments then
      b.total_len <- Some (h.frag_offset + Bytes.length payload);
    match try_assemble b with
    | None -> Incomplete
    | Some data ->
        Engine.Timer.cancel b.timer;
        Hashtbl.remove t.buffers k;
        if Trace.want Trace.Cls.frag then
          Trace.emit
            (Trace.Event.Ip_reassembled
               { node = t.node; id = h.id; len = Bytes.length data });
        Complete data
  end

let pending t = Hashtbl.length t.buffers

let expired t = t.expired

let flush t =
  (* Order-independent: cancelling independent timers commutes. *)
  (Hashtbl.iter (fun _ b -> Engine.Timer.cancel b.timer) t.buffers
  [@determinism.commutative]);
  Hashtbl.reset t.buffers
