(** LRU + TTL record cache for resolver soft state.

    One bounded cache holds positive answers, negative (NXNAME) answers
    and delegations (under {!Names_wire.qtype_deleg}): O(1) find,
    insert, evict; TTLs checked lazily at lookup.  This is soft state
    in the fate-sharing sense — {!flush} forgets everything and the
    system stays correct, because each record can be re-fetched from
    its authority. *)

type t

type stats = {
  mutable hits : int;
  mutable misses : int;  (** Absent entirely. *)
  mutable expired : int;  (** Present but past TTL — also a miss. *)
  mutable insertions : int;
  mutable evictions : int;  (** LRU pressure, not TTL expiry. *)
  mutable flushes : int;
}

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val key : qtype:int -> l0:int -> l1:int -> l2:int -> int
(** Pack a (qtype, labels) query identity into one immediate int. *)

val find : t -> now_us:int -> int -> (int * int * int) option
(** [(rcode, answer, remaining_ttl_s)] if present and fresh at
    [now_us]; remaining TTL is rounded up, so a live entry never
    re-serves as TTL 0.  An expired entry is removed and counted in
    [expired]. *)

val insert :
  t -> now_us:int -> key:int -> rcode:int -> answer:int -> ttl_s:int -> unit
(** Insert or refresh; a [ttl_s <= 0] record is not cached.  At
    capacity, the least recently used entry is evicted. *)

val remove : t -> int -> unit
(** Targeted invalidation (no stats impact). *)

val flush : t -> unit
(** Crash amnesia: drop every entry, count one flush. *)

val len : t -> int
val capacity : t -> int
val stats : t -> stats
