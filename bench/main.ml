(* The experiment harness: one entry per claim in the paper's evaluation
   (see DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-
   measured).  Run all with `dune exec bench/main.exe`; a subset with
   `dune exec bench/main.exe -- --only E1,E5`; list with `--list`. *)

let experiments =
  [
    ("E1", "survivability under link failures", E01.run);
    ("E2", "fate-sharing across a gateway crash", E02.run);
    ("E3", "types of service: voice vs stream", E03.run);
    ("E4", "variety of networks: the catenet path", E04.run);
    ("E5", "end-to-end vs hop-by-hop reliability", E05.run);
    ("E6", "cost: headers and retransmitted bytes", E06.run);
    ("E7", "accountability: per-flow gateway ledger", E07.run);
    ("E8", "distributed management across domains", E08.run);
    ("E9", "realizations: congestion-control policies", E09.run);
    ("E10", "host attachment with low effort", E10.run);
    ("E11", "bursty multiplexing vs circuits", E11.run);
    ("E12", "micro-costs (bechamel)", E12.run);
    ("E13", "gateway forwarding fast path", E13.run);
    ("E14", "transport (end-host) fast path", E14.run);
    ("E15", "observability overhead", E15.run);
    ("E16", "survivability gauntlet", E16.run);
    ("E17", "internet-scale topology", E17.run);
    ("E18", "tcp under blind in-window attack", E18.run);
    ("E20", "sketch accounting at scale", E20.run);
    ("E21", "name/service layer at scale", E21.run);
    ("A1", "ablation: delayed acknowledgments", Abl.a1);
    ("A2", "ablation: Nagle on keystrokes", Abl.a2);
    ("A3", "ablation: DV vs LS convergence", Abl.a3);
    ("A4", "ablation: bottleneck buffer sizing", Abl.a4);
    ("A5", "ablation: fragmentation vs MTU-sized segments", Abl.a5);
  ]

let () =
  let args = Array.to_list Sys.argv in
  List.iter
    (fun a ->
      if a = "--smoke" then Util.smoke := true
      else if String.length a > 6 && String.sub a 0 6 = "--out=" then
        Util.out_dir := String.sub a 6 (String.length a - 6))
    args;
  if List.mem "--list" args then
    List.iter (fun (id, title, _) -> Printf.printf "%-4s %s\n" id title) experiments
  else begin
    let only =
      match
        List.find_opt
          (fun a -> String.length a > 7 && String.sub a 0 7 = "--only=")
          args
      with
      | Some a ->
          Some (String.split_on_char ',' (String.sub a 7 (String.length a - 7)))
      | None -> (
          (* also accept "--only E1,E2" form *)
          let rec scan = function
            | "--only" :: v :: _ -> Some (String.split_on_char ',' v)
            | _ :: rest -> scan rest
            | [] -> None
          in
          scan args)
    in
    let wanted (id, _, _) =
      match only with None -> true | Some ids -> List.mem id ids
    in
    print_endline
      "catenet experiment harness - reproducing the claims of Clark, \"The\n\
       Design Philosophy of the DARPA Internet Protocols\" (SIGCOMM 1988).";
    List.iter (fun ((_, _, run) as e) -> if wanted e then run ()) experiments;
    print_endline "\ndone."
  end
