lib/ip/ip.ml: Accounting Reassembly Route_table Stack
