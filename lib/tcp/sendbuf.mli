(** The sender-side byte stream buffer.

    Holds bytes the application has written but the peer has not yet
    acknowledged, addressed by absolute stream offset (byte 0 is the first
    byte after the SYN).  The TCP engine slices retransmittable segments
    out of it and drops the acknowledged prefix. *)

type t

val create : ?limit:int -> unit -> t
(** [limit] bounds stored (unacknowledged + unsent) bytes; default 262144. *)

val base : t -> int
(** Stream offset of the first byte still held. *)

val tail : t -> int
(** Stream offset one past the last byte held ([base + length]). *)

val length : t -> int
val space : t -> int

val append : t -> bytes -> int
(** Append as much as fits; returns the number of bytes accepted. *)

val get : t -> off:int -> len:int -> bytes
(** Copy a slice by absolute offset.  The range must be within
    [\[base, tail)]. *)

val blit : t -> off:int -> len:int -> bytes -> pos:int -> unit
(** Copy a slice by absolute offset straight into [dst] at [pos] — the
    segment-emission path uses this to place payload into a frame without
    an intermediate copy.  Same range rules as {!get}. *)

val drop_until : t -> int -> unit
(** Acknowledge: discard everything before the given absolute offset.
    Offsets at or below [base] are no-ops. *)
