(** TCP segment wire format (RFC 793), with the MSS option.

    Sequence and acknowledgment numbers are represented as non-negative
    OCaml ints in [\[0, 2^32)]; modular comparison lives in the TCP
    library's [Seq] module. *)

type flags = {
  urg : bool;
  ack : bool;
  psh : bool;
  rst : bool;
  syn : bool;
  fin : bool;
}

val no_flags : flags

val flags :
  ?urg:bool ->
  ?ack:bool ->
  ?psh:bool ->
  ?rst:bool ->
  ?syn:bool ->
  ?fin:bool ->
  unit ->
  flags

val pp_flags : Format.formatter -> flags -> unit
(** Compact "S", "SA", "FA", "R"… notation. *)

type t = {
  src_port : int;
  dst_port : int;
  seq : int;  (** [\[0, 2^32)]. *)
  ack_n : int;  (** Acknowledgment number, meaningful when [flags.ack]. *)
  flags : flags;
  window : int;  (** Advertised receive window, 16 bits. *)
  urgent : int;
  mss : int option;  (** MSS option, normally only on SYN segments. *)
  payload : bytes;
}

val make :
  ?seq:int ->
  ?ack_n:int ->
  ?flags:flags ->
  ?window:int ->
  ?urgent:int ->
  ?mss:int option ->
  ?payload:bytes ->
  src_port:int ->
  dst_port:int ->
  unit ->
  t

type error = [ `Truncated | `Bad_checksum | `Bad_header of string ]

val pp_error : Format.formatter -> error -> unit

val encode : src:Addr.t -> dst:Addr.t -> t -> bytes
(** Serialize with the checksum computed over the RFC 793 pseudo-header.
    The addresses are those of the enclosing IP datagram. *)

val decode : src:Addr.t -> dst:Addr.t -> bytes -> (t, error) result

val header_size : t -> int
(** Bytes of TCP header this segment carries on the wire (20, or 24 with
    an MSS option). *)

val pp : Format.formatter -> t -> unit
