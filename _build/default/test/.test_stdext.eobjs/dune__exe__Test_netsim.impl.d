test/test_netsim.ml: Alcotest Bytes Engine Int32 List Netsim String
