examples/internetwork_tour.ml: Apps Catenet Internet Ip List Netsim Printf Stdext Tcp
