(* Space-saving top-k flow tracker (E20).

   A fixed population of [capacity] tracked flows, stored entirely in
   parallel int arrays: identity (fingerprint + the flattened flow
   fields needed to report it), counters, and two intrusive structures —
   a chained hash index (flat [head]/[next] arrays) for O(1) membership,
   and a binary min-heap over byte counts ([heap]/[pos] arrays) so the
   eviction victim is always at the root.  Nothing here allocates after
   [create]: every mutation is an int store plus O(log capacity) sifts.

   Admission follows space-saving — an untracked flow replaces the
   current minimum and inherits an overestimate recorded in
   [err_*] — but is *gated by the count-min estimate* the caller passes
   in: a flow only displaces the minimum when the sketch says it is
   already bigger.  Pure space-saving churns the whole table on a
   million-singleton tail (every new flow evicts, counts ratchet by
   total/capacity); the sketch gate keeps one-packet flows out, so the
   tracked set converges on the true heavy hitters and their counts stay
   exact from admission onward. *)

type t = {
  capacity : int;
  bucket_mask : int;
  bshift : int;  (* 63 - log2 buckets, for the multiply-shift bucket hash *)
  head : int array;  (* bucket -> entry index + 1; 0 = empty *)
  next : int array;  (* entry -> chain successor + 1; 0 = end *)
  fp : int array;  (* entry -> flow fingerprint *)
  pkts : int array;  (* entry -> packet count (admission estimate + exact) *)
  bytes : int array;  (* entry -> byte count; the heap's ranking key *)
  err_pkts : int array;  (* estimated (non-exact) part of pkts at admission *)
  err_bytes : int array;  (* estimated part of bytes at admission *)
  f_src : int array;  (* entry -> source address bits *)
  f_dst : int array;  (* entry -> destination address bits *)
  f_meta : int array;  (* entry -> packed proto/ports/portless *)
  heap : int array;  (* heap position -> entry; min-heap by [bytes] *)
  pos : int array;  (* entry -> heap position *)
  mutable n : int;  (* live entries; heap and entry arrays share it *)
}

let hash_mult = 0x2545F4914F6CDD1D

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let create ~capacity =
  if capacity < 1 then invalid_arg "Ip.Heavy_hitters.create: capacity < 1";
  let buckets =
    let rec up n = if is_pow2 n then n else up (n + (n land - n)) in
    up (max 8 (2 * capacity))
  in
  {
    capacity;
    bucket_mask = buckets - 1;
    bshift = 63 - log2 buckets;
    head = Array.make buckets 0;
    next = Array.make capacity 0;
    fp = Array.make capacity 0;
    pkts = Array.make capacity 0;
    bytes = Array.make capacity 0;
    err_pkts = Array.make capacity 0;
    err_bytes = Array.make capacity 0;
    f_src = Array.make capacity 0;
    f_dst = Array.make capacity 0;
    f_meta = Array.make capacity 0;
    heap = Array.make capacity 0;
    pos = Array.make capacity 0;
    n = 0;
  }

let capacity t = t.capacity
let size t = t.n

let bucket_of t fp = ((fp * hash_mult) lsr t.bshift) land t.bucket_mask
[@@fastpath]

(* Entry index tracking [fp], or -1. *)
let find t fp =
  let e = ref (Array.unsafe_get t.head (bucket_of t fp)) in
  let found = ref (-1) in
  while !e <> 0 do
    let i = !e - 1 in
    if Array.unsafe_get t.fp i = fp then begin
      found := i;
      e := 0
    end
    else e := Array.unsafe_get t.next i
  done;
  !found
[@@fastpath]

(* -- intrusive min-heap over [bytes] ------------------------------- *)

let swap t a b =
  let ea = Array.unsafe_get t.heap a and eb = Array.unsafe_get t.heap b in
  Array.unsafe_set t.heap a eb;
  Array.unsafe_set t.heap b ea;
  Array.unsafe_set t.pos ea b;
  Array.unsafe_set t.pos eb a
[@@fastpath]

let key_at t i = Array.unsafe_get t.bytes (Array.unsafe_get t.heap i)
[@@fastpath]

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.n then begin
    let r = l + 1 in
    let s = if r < t.n && key_at t r < key_at t l then r else l in
    if key_at t s < key_at t i then begin
      swap t i s;
      sift_down t s
    end
  end
[@@fastpath]

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if key_at t i < key_at t p then begin
      swap t i p;
      sift_up t p
    end
  end
[@@fastpath]

(* -- chained index maintenance ------------------------------------- *)

let link t i =
  let b = bucket_of t (Array.unsafe_get t.fp i) in
  Array.unsafe_set t.next i (Array.unsafe_get t.head b);
  Array.unsafe_set t.head b (i + 1)
[@@fastpath]

let unlink t i =
  let b = bucket_of t (Array.unsafe_get t.fp i) in
  if Array.unsafe_get t.head b = i + 1 then
    Array.unsafe_set t.head b (Array.unsafe_get t.next i)
  else begin
    let p = ref (Array.unsafe_get t.head b - 1) in
    while Array.unsafe_get t.next !p <> i + 1 do
      p := Array.unsafe_get t.next !p - 1
    done;
    Array.unsafe_set t.next !p (Array.unsafe_get t.next i)
  end
[@@fastpath]

(* -- recording ------------------------------------------------------ *)

(* One packet for the flow [fp] carrying [wire_bytes].  [est_pkts]/
   [est_bytes] are the sketch's post-update estimates for the same key
   (the admission gate and the inherited count of a newly admitted
   flow).  Allocation-free. *)
let record t ~fp ~src ~dst ~meta ~est_pkts ~est_bytes ~wire_bytes =
  let i = find t fp in
  if i >= 0 then begin
    Array.unsafe_set t.pkts i (Array.unsafe_get t.pkts i + 1);
    Array.unsafe_set t.bytes i (Array.unsafe_get t.bytes i + wire_bytes);
    sift_down t (Array.unsafe_get t.pos i)
  end
  else if t.n < t.capacity then begin
    let i = t.n in
    Array.unsafe_set t.fp i fp;
    Array.unsafe_set t.f_src i src;
    Array.unsafe_set t.f_dst i dst;
    Array.unsafe_set t.f_meta i meta;
    Array.unsafe_set t.pkts i est_pkts;
    Array.unsafe_set t.bytes i est_bytes;
    Array.unsafe_set t.err_pkts i (est_pkts - 1);
    Array.unsafe_set t.err_bytes i (est_bytes - wire_bytes);
    link t i;
    Array.unsafe_set t.heap i i;
    Array.unsafe_set t.pos i i;
    t.n <- t.n + 1;
    sift_up t i
  end
  else begin
    let root = Array.unsafe_get t.heap 0 in
    if est_bytes > Array.unsafe_get t.bytes root then begin
      (* Space-saving eviction: the smallest tracked flow makes way;
         the newcomer's count starts at its sketch estimate, with the
         estimated part remembered as its error bound. *)
      unlink t root;
      Array.unsafe_set t.fp root fp;
      Array.unsafe_set t.f_src root src;
      Array.unsafe_set t.f_dst root dst;
      Array.unsafe_set t.f_meta root meta;
      Array.unsafe_set t.pkts root est_pkts;
      Array.unsafe_set t.bytes root est_bytes;
      Array.unsafe_set t.err_pkts root (est_pkts - 1);
      Array.unsafe_set t.err_bytes root (est_bytes - wire_bytes);
      link t root;
      sift_down t (Array.unsafe_get t.pos root)
    end
  end
[@@fastpath]

(* -- queries (cold; reporting only) --------------------------------- *)

let fp_of t i = t.fp.(i)
let src_of t i = t.f_src.(i)
let dst_of t i = t.f_dst.(i)
let meta_of t i = t.f_meta.(i)
let pkts_of t i = t.pkts.(i)
let bytes_of t i = t.bytes.(i)
let err_pkts_of t i = t.err_pkts.(i)
let err_bytes_of t i = t.err_bytes.(i)

let min_bytes t = if t.n = 0 then 0 else t.bytes.(t.heap.(0))

let iter t f =
  for i = 0 to t.n - 1 do
    f i
  done

let clear t =
  Array.fill t.head 0 (Array.length t.head) 0;
  t.n <- 0
