(** A registry unifying the counters scattered through the protocol
    modules into one named snapshot.

    Existing counter records stay where they are and keep their raw
    mutable-int bumps; a module joins the registry by {!register}ing a
    pull-based source (a closure listing its current values).  The hot
    paths therefore pay nothing for unification — cost is concentrated in
    {!snapshot}, which reads everything live.

    Registries are instances (see [Internet.metrics]), not a global, so
    their lifetime follows the topology that owns them. *)

type value =
  | Int of int
  | Float of float
  | Dist of { count : int; mean : float; min : float; max : float;
              total : float }

type t

val create : unit -> t

val register : t -> string -> (unit -> (string * value) list) -> unit
(** [register t source items] adds a named pull source.  Raises
    [Invalid_argument] on a duplicate source name. *)

val counter : t -> string -> int ref
(** An owned counter, created on first use; bump it with {!incr} or
    directly. *)

val incr : ?by:int -> int ref -> unit

val gauge : t -> string -> (unit -> float) -> unit
(** An owned gauge: sampled at snapshot time. *)

val histogram : t -> string -> Stdext.Stats.Summary.t
(** An owned distribution, created on first use; feed it with {!observe}. *)

val observe : Stdext.Stats.Summary.t -> float -> unit

val of_summary : Stdext.Stats.Summary.t -> value

val snapshot : t -> (string * (string * value) list) list
(** Every source's current values, sources sorted by name; owned
    counters/gauges/histograms appear under source ["self"]. *)

val to_json : t -> Json.t

val find : t -> source:string -> name:string -> value option
