(* Ablations: the host- and gateway-engineering choices DESIGN.md calls
   out, each toggled in isolation.  These are "realization" knobs in the
   paper's §9 sense — none of them changes a wire format. *)

open Catenet

let two_hosts ?(profile = Netsim.profile "wire" ~delay_us:5_000) ~tcp_config () =
  let t = Internet.create ~routing:Internet.Static ~tcp_config () in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  ignore (Internet.connect t profile a.Internet.h_node b.Internet.h_node);
  Internet.start t;
  (t, a, b)

(* --- A1: delayed acknowledgments ---------------------------------------- *)

let a1_row delayed_ack_us label =
  let cfg = { Tcp.default_config with Tcp.delayed_ack_us } in
  let t, a, b = two_hosts ~tcp_config:cfg () in
  let goodput, conn, _ =
    Util.run_bulk t a b ~port:20 ~total:500_000 ~seconds:120.0
  in
  (* The receiver's segment count is pure-ACK dominated. *)
  let acks =
    (Tcp.instance_stats b.Internet.h_tcp).Tcp.passive_opens |> ignore;
    (Tcp.stats conn).Tcp.segs_in
  in
  [
    label;
    (match goodput with Some g -> Util.fkb g | None -> "-");
    string_of_int acks;
    string_of_int (Tcp.stats conn).Tcp.segs_out;
  ]

let a1 () =
  Util.banner "A1" "Ablation: delayed acknowledgments"
    "acking every second segment (or after 200 ms) halves reverse traffic \
     at no goodput cost";
  Util.table
    [ "ack policy"; "goodput kB/s"; "acks received"; "data segs sent" ]
    [
      a1_row 1 "immediate ack";
      a1_row 200_000 "delayed 200ms / every 2nd";
    ];
  Util.note "reverse-path segment count drops by ~2x with no goodput loss"

(* --- A2: Nagle's algorithm ------------------------------------------------ *)

let a2_row nagle =
  let cfg = { Tcp.default_config with Tcp.nagle } in
  let t, a, b = two_hosts ~tcp_config:cfg () in
  ignore
    (Tcp.listen b.Internet.h_tcp ~port:80 ~accept:(fun c ->
         Tcp.on_receive c (fun d -> ignore (Tcp.send c d))));
  let conn =
    Tcp.connect a.Internet.h_tcp ~config:cfg ~dst:(Internet.addr_of t b.Internet.h_node)
      ~dst_port:80 ()
  in
  (* 200 keystrokes, 5 ms apart (a fast typist's burst). *)
  let eng = Internet.engine t in
  Tcp.on_established conn (fun () ->
      for i = 0 to 199 do
        Engine.after eng (i * 5_000) (fun () ->
            ignore (Tcp.send conn (Bytes.make 1 'k')))
      done);
  Internet.run_for t 20.0;
  let st = Tcp.stats conn in
  [
    (if nagle then "nagle on" else "nagle off");
    string_of_int st.Tcp.segs_out;
    string_of_int st.Tcp.bytes_out;
    Printf.sprintf "%.2f"
      (float_of_int st.Tcp.bytes_out /. float_of_int (max 1 st.Tcp.segs_out));
  ]

let a2 () =
  Util.banner "A2" "Ablation: Nagle's algorithm on keystroke traffic"
    "coalescing sub-MSS writes trades per-byte latency for far fewer tiny \
     packets (the E6 small-packet cost)";
  Util.table
    [ "policy"; "segments sent"; "payload bytes"; "bytes/segment" ]
    [ a2_row false; a2_row true ];
  Util.note
    "200 one-byte writes become a handful of coalesced segments with Nagle \
     on; with it off, every keystroke pays the 40-byte header toll"

(* --- A3: distance-vector vs link-state convergence ------------------------- *)

let a3_row routing label =
  let dv_config =
    {
      Routing.Dv.default_config with
      Routing.Dv.period_us = 1_000_000;
      timeout_us = 3_500_000;
      gc_us = 2_000_000;
      carrier_poll_us = 200_000;
    }
  in
  let ls_config =
    {
      Routing.Ls.default_config with
      Routing.Ls.hello_us = 300_000;
      refresh_us = 5_000_000;
    }
  in
  let t = Internet.create ~routing ~dv_config ~ls_config () in
  let gws = Array.init 4 (fun i -> Internet.add_gateway t (Printf.sprintf "g%d" i)) in
  let h1 = Internet.add_host t "h1" in
  let h2 = Internet.add_host t "h2" in
  let p = Netsim.profile "leg" ~delay_us:2_000 in
  (* Square g0-g1-g2-g3-g0; hosts at g0 and g2. *)
  let l01 = Internet.connect t p gws.(0).Internet.g_node gws.(1).Internet.g_node in
  ignore (Internet.connect t p gws.(1).Internet.g_node gws.(2).Internet.g_node);
  ignore (Internet.connect t p gws.(2).Internet.g_node gws.(3).Internet.g_node);
  ignore (Internet.connect t p gws.(3).Internet.g_node gws.(0).Internet.g_node);
  ignore (Internet.connect t p h1.Internet.h_node gws.(0).Internet.g_node);
  ignore (Internet.connect t p h2.Internet.h_node gws.(2).Internet.g_node);
  Internet.start t;
  Internet.run_for t 8.0;
  let control_before = (Netsim.total_stats (Internet.net t)).Netsim.tx_bytes in
  (* Continuous 20 ms probes; measure the blackout around the failure. *)
  let eng = Internet.engine t in
  let last_ok = ref 0 in
  let blackout = ref 0 in
  Ip.Stack.set_echo_reply_handler h1.Internet.h_ip (fun ~id:_ ~seq:_ ~payload:_ ->
      let now = Engine.now eng in
      if now - !last_ok > !blackout && !last_ok > Engine.sec 9.0 then
        blackout := now - !last_ok;
      last_ok := now);
  let rec probe i =
    if i < 1000 then begin
      Ip.Stack.send_echo_request h1.Internet.h_ip
        ~dst:(Internet.addr_of t h2.Internet.h_node)
        ~id:3 ~seq:(i land 0xffff) ~payload:(Bytes.make 8 'a');
      Engine.after eng 20_000 (fun () -> probe (i + 1))
    end
  in
  probe 0;
  Engine.after eng (Engine.sec 10.0) (fun () -> Internet.fail_link t l01);
  Internet.run_for t 30.0;
  let control_after = (Netsim.total_stats (Internet.net t)).Netsim.tx_bytes in
  let probe_bytes = 1000 * 2 * (20 + 16) in
  let control = control_after - control_before - probe_bytes in
  [
    label;
    Printf.sprintf "%.0f" (Engine.to_sec !blackout *. 1e3);
    Printf.sprintf "%.1f" (float_of_int control /. 30.0 /. 1e3);
  ]

let a3 () =
  Util.banner "A3" "Ablation: distance-vector vs link-state routing"
    "two survivability realizations: convergence blackout vs control-plane \
     overhead";
  Util.table
    [ "protocol"; "blackout after link cut (ms)"; "control kB/s (whole net)" ]
    [
      a3_row Internet.Distance_vector "distance-vector";
      a3_row Internet.Link_state "link-state";
    ];
  Util.note
    "both restore connectivity; they sit at different points on the \
     overhead/convergence plane — the §9 'different realizations' story \
     inside a single goal"

(* --- A4: bottleneck buffer sizing ------------------------------------------- *)

let a4_row queue_capacity =
  let t =
    Internet.create ~routing:Internet.Static ()
  in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  let g1 = Internet.add_gateway t "g1" in
  let g2 = Internet.add_gateway t "g2" in
  ignore
    (Internet.connect t Netsim.Profiles.ethernet a.Internet.h_node
       g1.Internet.g_node);
  ignore
    (Internet.connect t
       (Netsim.profile "bottleneck" ~bandwidth_bps:1_536_000 ~delay_us:10_000
          ~queue_capacity)
       g1.Internet.g_node g2.Internet.g_node);
  ignore
    (Internet.connect t Netsim.Profiles.ethernet g2.Internet.g_node
       b.Internet.h_node);
  Internet.start t;
  (* Bulk transfer with concurrent latency probes. *)
  ignore (Apps.Bulk.serve b.Internet.h_tcp ~port:20 ~seed:3);
  let sender =
    Apps.Bulk.start a.Internet.h_tcp
      ~dst:(Internet.addr_of t b.Internet.h_node)
      ~dst_port:20 ~seed:3 ~total:1_500_000 ()
  in
  let pings =
    Internet.ping t ~from:a
      (Internet.addr_of t b.Internet.h_node)
      ~count:100 ~interval_us:100_000
  in
  Internet.run_for t 120.0;
  [
    string_of_int queue_capacity;
    (match Apps.Bulk.goodput_bps sender with
    | Some g -> Util.fkb g
    | None -> "-");
    Util.fms (Stdext.Stats.Samples.median pings);
    Util.fms (Stdext.Stats.Samples.percentile pings 95.0);
    string_of_int (Tcp.stats (Apps.Bulk.conn sender)).Tcp.retransmits;
  ]

let a4 () =
  Util.banner "A4" "Ablation: bottleneck buffer sizing"
    "gateway buffering trades throughput against queueing delay (the \
     'realization' performance variability of §9)";
  Util.table
    [ "queue (pkts)"; "goodput kB/s"; "ping median ms"; "ping p95 ms"; "rexmits" ]
    (List.map a4_row [ 4; 16; 64; 256 ]);
  Util.note
    "tiny buffers starve TCP (loss-bound); huge buffers trade latency for \
     throughput — 1980s gateways had to pick a point on this curve blind"

(* --- A5: fragmentation vs MTU-sized segments ------------------------------- *)

let a5_row mss =
  let cfg = { Tcp.default_config with Tcp.mss } in
  let t = Internet.create ~routing:Internet.Static ~tcp_config:cfg () in
  let a = Internet.add_host t "a" in
  let b = Internet.add_host t "b" in
  let g1 = Internet.add_gateway t "g1" in
  let g2 = Internet.add_gateway t "g2" in
  ignore
    (Internet.connect t Netsim.Profiles.ethernet a.Internet.h_node
       g1.Internet.g_node);
  (* The packet-radio middle hop: MTU 254, 2% frame loss. *)
  ignore
    (Internet.connect t Netsim.Profiles.packet_radio g1.Internet.g_node
       g2.Internet.g_node);
  ignore
    (Internet.connect t Netsim.Profiles.ethernet g2.Internet.g_node
       b.Internet.h_node);
  Internet.start t;
  let goodput, conn, intact =
    Util.run_bulk t a b ~port:20 ~total:150_000 ~seconds:600.0
  in
  let frags = (Ip.Stack.counters g1.Internet.g_ip).Ip.Stack.fragments_made in
  let st = Tcp.stats conn in
  [
    string_of_int mss;
    string_of_int frags;
    string_of_int st.Tcp.retransmits;
    Util.fpct
      (float_of_int st.Tcp.bytes_retransmitted
      /. float_of_int (max 1 (st.Tcp.bytes_out + st.Tcp.bytes_retransmitted)));
    (match (goodput, intact) with
    | Some g, true -> Util.fkb g
    | _ -> "failed");
  ]

let a5 () =
  Util.banner "A5" "Ablation: IP fragmentation vs MTU-sized segments"
    "fragmenting across a small-MTU lossy hop amplifies loss: one lost \
     fragment costs the whole datagram (the §5 fragmentation concern)";
  Util.table
    [ "tcp mss"; "fragments at g1"; "rexmit segs"; "rexmit waste"; "goodput kB/s" ]
    (List.map a5_row [ 1460; 512; 200 ]);
  Util.note
    "a 1460-byte segment crosses the 254-MTU radio hop as ~7 fragments; at \
     2%% frame loss each segment dies ~13%% of the time — MTU-sized \
     segments sidestep the amplification, exactly why path-MTU awareness \
     mattered"
