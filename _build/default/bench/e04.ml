(* E4 — Variety of networks (Clark §5, goal 3).

   One TCP conversation crosses five radically different network
   technologies in series.  The internet layer's minimum assumptions —
   "the network can transport a packet" — absorb every difference: MTU
   mismatches via fragmentation, the satellite's quarter-second via RTT
   estimation, radio losses via end-to-end retransmission. *)

open Catenet

let path_profiles =
  [
    Netsim.Profiles.fast_lan;
    Netsim.Profiles.arpanet_trunk;
    Netsim.Profiles.satellite;
    Netsim.Profiles.packet_radio;
    Netsim.Profiles.serial_9600;
  ]

let run () =
  Util.banner "E4" "Variety of networks: the catenet path"
    "the architecture runs over links differing by 10^4 in speed, 10^3 in \
     latency, 6x in MTU";
  Util.table
    [ "hop"; "technology"; "kb/s"; "one-way ms"; "mtu"; "loss" ]
    (List.mapi
       (fun i (p : Netsim.profile) ->
         [
           string_of_int (i + 1);
           p.Netsim.name;
           Util.fkb (float_of_int p.Netsim.bandwidth_bps);
           Printf.sprintf "%.1f" (float_of_int p.Netsim.delay_us /. 1e3);
           string_of_int p.Netsim.mtu;
           Util.fpct p.Netsim.loss;
         ])
       path_profiles);
  let t = Internet.create ~routing:Internet.Static () in
  let src = Internet.add_host t "src" in
  let dst = Internet.add_host t "dst" in
  let gws =
    List.map (fun i -> Internet.add_gateway t (Printf.sprintf "g%d" i)) [ 1; 2; 3; 4 ]
  in
  let nodes =
    [ src.Internet.h_node ]
    @ List.map (fun g -> g.Internet.g_node) gws
    @ [ dst.Internet.h_node ]
  in
  let rec wire nodes profiles =
    match (nodes, profiles) with
    | a :: (b :: _ as rest), p :: ps ->
        ignore (Internet.connect t p a b);
        wire rest ps
    | _ -> ()
  in
  wire nodes path_profiles;
  Internet.start t;
  let pings =
    Internet.ping t ~from:src
      (Internet.addr_of t dst.Internet.h_node)
      ~count:10 ~interval_us:400_000
  in
  Internet.run_for t 15.0;
  let goodput, conn, intact =
    Util.run_bulk t src dst ~port:20 ~total:60_000 ~seconds:600.0
  in
  let frags =
    List.fold_left
      (fun acc g ->
        acc + (Ip.Stack.counters g.Internet.g_ip).Ip.Stack.fragments_made)
      0 gws
  in
  let st = Tcp.stats conn in
  Util.table
    [ "metric"; "value" ]
    [
      [ "icmp echo replies"; Printf.sprintf "%d/10"
          (Stdext.Stats.Samples.count pings) ];
      [ "median rtt"; Util.fms (Stdext.Stats.Samples.median pings) ^ " ms" ];
      [ "tcp transfer"; (if intact then "60000 bytes, intact" else "FAILED") ];
      [ "tcp goodput"; (match goodput with
          | Some g -> Printf.sprintf "%.2f kB/s (serial line bound: 1.2)" (g /. 1e3)
          | None -> "-") ];
      [ "fragments cut by gateways"; string_of_int frags ];
      [ "end-to-end retransmits (radio loss)"; string_of_int st.Tcp.retransmits ];
      [ "srtt discovered"; (match Tcp.srtt_us conn with
          | Some us -> Printf.sprintf "%.0f ms" (float_of_int us /. 1e3)
          | None -> "-") ];
    ];
  Util.note
    "no per-technology code anywhere above the link layer: the same IP and \
     TCP binaries crossed all five networks"
