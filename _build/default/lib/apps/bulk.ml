type transfer = {
  mutable received : int;
  mutable intact : bool;
  mutable fin_at_us : int option;
}

type server = { eng : Engine.t; mutable list : transfer list }

let serve tcp ~port ~seed =
  let eng = Ip.Stack.engine (Tcp.stack tcp) in
  let server = { eng; list = [] } in
  let accept conn =
    let tr = { received = 0; intact = true; fin_at_us = None } in
    server.list <- tr :: server.list;
    let chk = Pattern.checker ~seed in
    Tcp.on_receive conn (fun data ->
        tr.received <- tr.received + Bytes.length data;
        tr.intact <- Pattern.check chk data);
    Tcp.on_peer_fin conn (fun () ->
        tr.fin_at_us <- Some (Engine.now eng);
        (* Close our half too. *)
        Tcp.close conn)
  in
  ignore (Tcp.listen tcp ~port ~accept);
  server

let transfers s = s.list

type sender = {
  s_eng : Engine.t;
  s_conn : Tcp.conn;
  s_total : int;
  s_started : int;
  mutable s_sent : int;
  mutable s_done_at : int option;
  mutable s_failed : Tcp.close_reason option;
  s_seed : int;
}

let conn s = s.s_conn
let started_at_us s = s.s_started
let finished s = s.s_done_at <> None
let failed s = s.s_failed
let completed_at_us s = s.s_done_at

let goodput_bps s =
  match s.s_done_at with
  | None -> None
  | Some at ->
      let dt = Engine.to_sec (at - s.s_started) in
      if dt <= 0.0 then None else Some (float_of_int s.s_total /. dt)

(* Keep the send buffer topped up; TCP exposes no writability callback so
   we poll at a cadence far below segment timescales. *)
let rec pump s =
  if s.s_failed = None && s.s_sent < s.s_total then begin
    let space = Tcp.send_space s.s_conn in
    if space > 0 then begin
      let n = min space (min 16384 (s.s_total - s.s_sent)) in
      let chunk = Pattern.make ~seed:s.s_seed ~off:s.s_sent n in
      let accepted = Tcp.send s.s_conn chunk in
      s.s_sent <- s.s_sent + accepted
    end;
    if s.s_sent >= s.s_total then begin
      Tcp.close s.s_conn;
      watch s
    end
    else Engine.after s.s_eng 2_000 (fun () -> pump s)
  end

(* Completion means our FIN is acknowledged, i.e. every stream byte got
   end-to-end acked — do not wait out TIME-WAIT, which would distort
   goodput numbers by 2·MSL. *)
and watch s =
  if s.s_failed = None && s.s_done_at = None then begin
    match Tcp.state s.s_conn with
    | Tcp.Fin_wait_2 | Tcp.Time_wait | Tcp.Closed ->
        s.s_done_at <- Some (Engine.now s.s_eng)
    | Tcp.Listen | Tcp.Syn_sent | Tcp.Syn_received | Tcp.Established
    | Tcp.Fin_wait_1 | Tcp.Close_wait | Tcp.Closing | Tcp.Last_ack ->
        Engine.after s.s_eng 2_000 (fun () -> watch s)
  end

let start tcp ?config ~dst ~dst_port ~seed ~total () =
  let eng = Ip.Stack.engine (Tcp.stack tcp) in
  let c = Tcp.connect tcp ?config ~dst ~dst_port () in
  let s =
    {
      s_eng = eng;
      s_conn = c;
      s_total = total;
      s_started = Engine.now eng;
      s_sent = 0;
      s_done_at = None;
      s_failed = None;
      s_seed = seed;
    }
  in
  Tcp.on_established c (fun () -> pump s);
  Tcp.on_close c (fun reason ->
      match reason with
      | Tcp.Graceful when s.s_sent >= s.s_total ->
          (* Fallback only: [watch] normally recorded the earlier, correct
             FIN-acknowledged instant. *)
          if s.s_done_at = None then s.s_done_at <- Some (Engine.now eng)
      | Tcp.Graceful | Tcp.Reset | Tcp.Timed_out | Tcp.Refused ->
          s.s_failed <- Some reason);
  s
