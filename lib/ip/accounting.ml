module Addr = Packet.Addr
module Ipv4 = Packet.Ipv4

type flow = {
  src : Addr.t;
  dst : Addr.t;
  proto : Ipv4.Proto.t;
  src_port : int;
  dst_port : int;
}

(* Mutable fields: [record] runs once per forwarded datagram on a gateway,
   and bumping in place keeps it allocation-free after a flow's first
   packet (it used to rebuild the usage record every time). *)
type usage = { mutable packets : int; mutable bytes : int }

type t = { table : (flow, usage) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

(* Ports sit in the first 4 bytes of both TCP and UDP headers, but only in
   the first fragment of a fragmented datagram. *)
let ports_of (h : Ipv4.header) payload =
  match h.proto with
  | Ipv4.Proto.Tcp | Ipv4.Proto.Udp
    when h.frag_offset = 0 && Bytes.length payload >= 4 ->
      (Bytes.get_uint16_be payload 0, Bytes.get_uint16_be payload 2)
  | Ipv4.Proto.Tcp | Ipv4.Proto.Udp | Ipv4.Proto.Icmp | Ipv4.Proto.Other _ ->
      (0, 0)

let record t (h : Ipv4.header) ~payload ~wire_bytes =
  let src_port, dst_port = ports_of h payload in
  let flow = { src = h.src; dst = h.dst; proto = h.proto; src_port; dst_port } in
  match Hashtbl.find_opt t.table flow with
  | Some u ->
      u.packets <- u.packets + 1;
      u.bytes <- u.bytes + wire_bytes
  | None -> Hashtbl.add t.table flow { packets = 1; bytes = wire_bytes }

(* The ledger hands out copies so callers cannot alias live counters. *)
let copy u = { packets = u.packets; bytes = u.bytes }

let flows t =
  Hashtbl.fold (fun f u acc -> (f, copy u) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b.bytes a.bytes)

let lookup t flow = Option.map copy (Hashtbl.find_opt t.table flow)

let total t =
  let acc = { packets = 0; bytes = 0 } in
  Hashtbl.iter
    (fun _ u ->
      acc.packets <- acc.packets + u.packets;
      acc.bytes <- acc.bytes + u.bytes)
    t.table;
  acc

let flow_count t = Hashtbl.length t.table

let pp_flow fmt f =
  Format.fprintf fmt "%a:%d -> %a:%d %a" Addr.pp f.src f.src_port Addr.pp
    f.dst f.dst_port Ipv4.Proto.pp f.proto

let flow_to_string f = Format.asprintf "%a" pp_flow f

let to_json t =
  let open Trace.Json in
  let tot = total t in
  Obj
    [ ("flow_count", Int (flow_count t));
      ("total_packets", Int tot.packets);
      ("total_bytes", Int tot.bytes);
      ( "flows",
        List
          (List.map
             (fun (f, u) ->
               Obj
                 [ ("flow", Str (flow_to_string f));
                   ("packets", Int u.packets); ("bytes", Int u.bytes) ])
             (flows t)) ) ]

let metrics_items t () =
  let tot = total t in
  [ ("flows", Trace.Metrics.Int (flow_count t));
    ("packets", Trace.Metrics.Int tot.packets);
    ("bytes", Trace.Metrics.Int tot.bytes) ]
