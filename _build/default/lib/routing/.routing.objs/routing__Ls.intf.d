lib/routing/ls.mli: Netsim Packet Udp
