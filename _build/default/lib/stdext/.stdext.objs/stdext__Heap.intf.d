lib/stdext/heap.mli:
