examples/quickstart.ml: Apps Catenet Internet Netsim Packet Printf Stdext Tcp
