exception Truncated

module W = struct
  type t = { buf : bytes; mutable pos : int }

  let create n = { buf = Bytes.make n '\000'; pos = 0 }

  let pos t = t.pos

  let check t n = if t.pos + n > Bytes.length t.buf then raise Truncated

  let u8 t v =
    check t 1;
    Bytes.set_uint8 t.buf t.pos (v land 0xff);
    t.pos <- t.pos + 1

  let u16 t v =
    check t 2;
    Bytes.set_uint16_be t.buf t.pos (v land 0xffff);
    t.pos <- t.pos + 2

  let u32 t v =
    check t 4;
    Bytes.set_int32_be t.buf t.pos v;
    t.pos <- t.pos + 4

  let u32_of_int t v = u32 t (Int32.of_int v)

  let sub t b ~pos ~len =
    check t len;
    Bytes.blit b pos t.buf t.pos len;
    t.pos <- t.pos + len

  let bytes t b = sub t b ~pos:0 ~len:(Bytes.length b)

  let seek t p =
    if p < 0 || p > Bytes.length t.buf then raise Truncated;
    t.pos <- p

  let contents t = Bytes.sub t.buf 0 t.pos
end

module R = struct
  type t = { buf : bytes; off : int; len : int; mutable pos : int }

  let of_sub buf ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length buf then raise Truncated;
    { buf; off = pos; len; pos = 0 }

  let of_bytes buf = { buf; off = 0; len = Bytes.length buf; pos = 0 }

  let pos t = t.pos

  let remaining t = t.len - t.pos

  let check t n = if t.pos + n > t.len then raise Truncated

  let u8 t =
    check t 1;
    let v = Bytes.get_uint8 t.buf (t.off + t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    check t 2;
    let v = Bytes.get_uint16_be t.buf (t.off + t.pos) in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    check t 4;
    let v = Bytes.get_int32_be t.buf (t.off + t.pos) in
    t.pos <- t.pos + 4;
    v

  let u32_to_int t =
    let v = u32 t in
    Int32.to_int v land 0xFFFFFFFF

  let bytes t n =
    check t n;
    let b = Bytes.sub t.buf (t.off + t.pos) n in
    t.pos <- t.pos + n;
    b

  let skip t n =
    check t n;
    t.pos <- t.pos + n
end
