(** Request/response over TCP: a client sends fixed-size requests on one
    persistent connection; the server answers each with a fixed-size
    response.  Response times are recorded at the client.  This is the
    transaction-shaped traffic ("mail", early name servers) that sits
    between bulk transfer and interactive echo. *)

val serve : Tcp.t -> port:int -> request_bytes:int -> response_bytes:int -> unit
(** Answer every [request_bytes]-long request with [response_bytes] of
    patterned data. *)

type client

val client :
  Tcp.t ->
  dst:Packet.Addr.t ->
  dst_port:int ->
  request_bytes:int ->
  response_bytes:int ->
  count:int ->
  ?gap_us:int ->
  unit ->
  client
(** Issue [count] requests back to back (or [gap_us] apart), then close. *)

val latencies : client -> Stdext.Stats.Samples.t
val completed : client -> int
val failed : client -> bool
