module Addr = Packet.Addr
module Ipv4 = Packet.Ipv4

type flow = {
  src : Addr.t;
  dst : Addr.t;
  proto : Ipv4.Proto.t;
  src_port : int;
  dst_port : int;
}

type usage = { packets : int; bytes : int }

type t = { table : (flow, usage ref) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

(* Ports sit in the first 4 bytes of both TCP and UDP headers, but only in
   the first fragment of a fragmented datagram. *)
let ports_of (h : Ipv4.header) payload =
  match h.proto with
  | Ipv4.Proto.Tcp | Ipv4.Proto.Udp
    when h.frag_offset = 0 && Bytes.length payload >= 4 ->
      (Bytes.get_uint16_be payload 0, Bytes.get_uint16_be payload 2)
  | Ipv4.Proto.Tcp | Ipv4.Proto.Udp | Ipv4.Proto.Icmp | Ipv4.Proto.Other _ ->
      (0, 0)

let record t (h : Ipv4.header) ~payload ~wire_bytes =
  let src_port, dst_port = ports_of h payload in
  let flow = { src = h.src; dst = h.dst; proto = h.proto; src_port; dst_port } in
  match Hashtbl.find_opt t.table flow with
  | Some u -> u := { packets = !u.packets + 1; bytes = !u.bytes + wire_bytes }
  | None -> Hashtbl.add t.table flow (ref { packets = 1; bytes = wire_bytes })

let flows t =
  Hashtbl.fold (fun f u acc -> (f, !u) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b.bytes a.bytes)

let lookup t flow = Option.map ( ! ) (Hashtbl.find_opt t.table flow)

let total t =
  Hashtbl.fold
    (fun _ u acc ->
      { packets = acc.packets + !u.packets; bytes = acc.bytes + !u.bytes })
    t.table { packets = 0; bytes = 0 }

let pp_flow fmt f =
  Format.fprintf fmt "%a:%d -> %a:%d %a" Addr.pp f.src f.src_port Addr.pp
    f.dst f.dst_port Ipv4.Proto.pp f.proto
