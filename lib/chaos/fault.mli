(** One injectable fault.  Faults are pure descriptions — applying one is
    the injector's job (see {!Chaos.apply}), so a schedule can be built,
    printed, digested and replayed without touching the network. *)

type t =
  | Link_set of { link : Netsim.link_id; up : bool }
      (** Carrier change: [up = false] cuts the link (in-flight and
          queued frames are lost), [up = true] restores it. *)
  | Node_set of { node : Netsim.node_id; up : bool }
      (** [up = false] crashes the node; [up = true] reboots it.  What a
          crash destroys beyond reachability (soft state) is decided by
          the environment's crash hook — see {!Chaos.env}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_json : t -> Trace.Json.t
