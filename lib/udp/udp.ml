module Addr = Packet.Addr
module Ipv4 = Packet.Ipv4
module Wire = Packet.Udp_wire

type stats = {
  mutable datagrams_in : int;
  mutable datagrams_out : int;
  mutable bad : int;
  mutable no_port : int;
  mutable eph_allocs : int;
  mutable eph_reuses : int;
  mutable eph_exhausted : int;
}

type t = {
  ip : Ip.Stack.t;
  ports : (int, socket) Hashtbl.t;
  mutable next_ephemeral : int;
  eph_seen : Bytes.t;  (* one bit per ephemeral port: allocated before? *)
  stats : stats;
}

and socket = {
  udp : t;
  sock_port : int;
  recv : src:Addr.t -> src_port:int -> bytes -> unit;
  mutable open_ : bool;
}

let stack t = t.ip
let stats t = t.stats

(* Typed socket errors: matchable by callers and printable without
   string-parsing, replacing the bare [Failure _] this module used to
   raise. *)
type bind_error = Bad_port of int | Port_in_use of int | No_free_ports

exception Bind_error of bind_error

let bind_error_to_string = function
  | Bad_port p -> Printf.sprintf "bad port %d (want 1..65535)" p
  | Port_in_use p -> Printf.sprintf "port %d already bound" p
  | No_free_ports -> "no free ephemeral ports"

let () =
  Printexc.register_printer (function
    | Bind_error e -> Some ("Udp.bind: " ^ bind_error_to_string e)
    | _ -> None)

type send_error = [ Ip.Stack.send_error | `Closed ]

let metrics_items t () =
  [ ("datagrams_in", Trace.Metrics.Int t.stats.datagrams_in);
    ("datagrams_out", Trace.Metrics.Int t.stats.datagrams_out);
    ("bad", Trace.Metrics.Int t.stats.bad);
    ("no_port", Trace.Metrics.Int t.stats.no_port);
    ("eph_allocs", Trace.Metrics.Int t.stats.eph_allocs);
    ("eph_reuses", Trace.Metrics.Int t.stats.eph_reuses);
    ("eph_exhausted", Trace.Metrics.Int t.stats.eph_exhausted) ]
let port s = s.sock_port

let handle t (h : Ipv4.header) payload =
  match Wire.decode ~src:h.Ipv4.src ~dst:h.Ipv4.dst payload with
  | Error _ -> t.stats.bad <- t.stats.bad + 1
  | Ok dgram -> (
      match Hashtbl.find_opt t.ports dgram.Wire.dst_port with
      | Some sock when sock.open_ ->
          t.stats.datagrams_in <- t.stats.datagrams_in + 1;
          sock.recv ~src:h.Ipv4.src ~src_port:dgram.Wire.src_port
            dgram.Wire.payload
      | Some _ | None ->
          t.stats.no_port <- t.stats.no_port + 1;
          Ip.Stack.icmp_unreachable t.ip h payload
            Packet.Icmp_wire.Port_unreachable)

let create ip =
  let t =
    {
      ip;
      ports = Hashtbl.create 8;
      next_ephemeral = 49152;
      eph_seen = Bytes.make 2048 '\000';
      stats =
        {
          datagrams_in = 0;
          datagrams_out = 0;
          bad = 0;
          no_port = 0;
          eph_allocs = 0;
          eph_reuses = 0;
          eph_exhausted = 0;
        };
    }
  in
  Ip.Stack.register_proto ip Ipv4.Proto.Udp (handle t);
  t

let ephemeral_lo = 49152
let ephemeral_hi = 65535

(* Scan bounded by the range size, not by "wrapped back to start": the
   old termination test compared against the pre-wrap start and never
   fired when the scan began at the bottom of the range, looping forever
   once every ephemeral port was bound. *)
let alloc_ephemeral t =
  let range = ephemeral_hi - ephemeral_lo + 1 in
  let rec probe p tried =
    if tried >= range then begin
      t.stats.eph_exhausted <- t.stats.eph_exhausted + 1;
      raise (Bind_error No_free_ports)
    end
    else
      let p = if p > ephemeral_hi then ephemeral_lo else p in
      if not (Hashtbl.mem t.ports p) then p else probe (p + 1) (tried + 1)
  in
  let p = probe t.next_ephemeral 0 in
  t.next_ephemeral <- (if p + 1 > ephemeral_hi then ephemeral_lo else p + 1);
  (* Churn accounting for the open-loop workloads: an alloc of a port
     this instance handed out before is a reuse — the wrap has come back
     around, which is the signal ephemeral pressure is real. *)
  let bit = p - ephemeral_lo in
  let byte = Char.code (Bytes.get t.eph_seen (bit lsr 3)) in
  let mask = 1 lsl (bit land 7) in
  t.stats.eph_allocs <- t.stats.eph_allocs + 1;
  if byte land mask <> 0 then t.stats.eph_reuses <- t.stats.eph_reuses + 1
  else Bytes.set t.eph_seen (bit lsr 3) (Char.chr (byte lor mask));
  p

let bind t ?(port = 0) ~recv () =
  if port < 0 || port > 65535 then raise (Bind_error (Bad_port port));
  let port = if port = 0 then alloc_ephemeral t else port in
  if Hashtbl.mem t.ports port then raise (Bind_error (Port_in_use port));
  let sock = { udp = t; sock_port = port; recv; open_ = true } in
  Hashtbl.add t.ports port sock;
  sock

let close s =
  if s.open_ then begin
    s.open_ <- false;
    Hashtbl.remove s.udp.ports s.sock_port
  end

let sendto s ?src ?tos ?ttl ~dst ~dst_port payload :
    (unit, send_error) result =
  if not s.open_ then Error `Closed
  else begin
  let t = s.udp in
  (* The checksum needs the source address, which IP chooses from the
     route; resolve it the same way unless the caller pinned one (a
     resolver answering from its service address must not source from a
     transit link that is never globally routed). *)
  let src =
    match src with
    | Some a -> a
    | None -> (
        let routed =
          match Ip.Route_table.lookup (Ip.Stack.table t.ip) dst with
          | Some r -> (
              match Ip.Stack.iface_addr t.ip r.Ip.Route_table.iface with
              | Some a -> a
              | None -> Ip.Stack.primary_addr t.ip)
          | None -> Ip.Stack.primary_addr t.ip
        in
        if Ip.Stack.has_addr t.ip dst then dst else routed)
  in
  (* Assemble the whole frame once — reserved IP-header prefix, UDP header,
     payload — and hand it to the stack without further copying. *)
  let plen = Bytes.length payload in
  let frame = Bytes.create (Ipv4.header_size + Wire.header_size + plen) in
  Bytes.blit payload 0 frame (Ipv4.header_size + Wire.header_size) plen;
  ignore
    (Wire.encode_into ~src ~dst ~src_port:s.sock_port ~dst_port
       ~payload_len:plen frame ~pos:Ipv4.header_size);
  match
    Ip.Stack.send_frame t.ip ?tos ?ttl ~src ~proto:Ipv4.Proto.Udp ~dst frame
  with
  | Ok () ->
      t.stats.datagrams_out <- t.stats.datagrams_out + 1;
      Ok ()
  | Error (#Ip.Stack.send_error as e) -> Error e
  end
