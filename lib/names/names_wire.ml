module Addr = Packet.Addr

(* The name protocol's single message shape: a 20-byte fixed header and
   nothing else.  Real DNS spends most of its parsing budget on
   variable-length labels and compression pointers; this protocol keeps
   the hierarchy (three label slots mirroring root -> region -> host)
   but makes every label a fixed-width integer, so one message is one
   bounded read and the whole format sits in a single lint-checked
   layout table. *)

let header_size = 20

(* Machine-checked wire contract (see catenet-lint). *)
let layout : (string * int * int) list =
  [ ("id", 0, 2); ("flags", 2, 2); ("rcode", 4, 1); ("qtype", 5, 1);
    ("label0", 6, 2); ("label1", 8, 2); ("label2", 10, 2); ("ttl", 12, 4);
    ("answer", 16, 4) ]

(* Query types.  [qtype_deleg] never crosses the wire in a query — it is
   the pseudo-type under which a resolver caches referral (delegation)
   records — but referral *responses* carry it so the answering server
   states what kind of record the answer field holds. *)
let qtype_deleg = 0
let qtype_host = 1
let qtype_svc = 2

(* Response codes.  [rcode_referral] marks a non-terminal answer: the
   answer field names the next server to ask, not the queried name's
   address. *)
let rcode_ok = 0
let rcode_nxname = 1
let rcode_servfail = 2
let rcode_refused = 3
let rcode_referral = 4

type t = {
  id : int;  (** Query/response correlation, 16 bits. *)
  response : bool;
  rd : bool;  (** Recursion desired: client -> resolver queries only. *)
  aa : bool;  (** Authoritative answer. *)
  rcode : int;
  qtype : int;
  l0 : int;  (** First label: region (host names) or service id. *)
  l1 : int;  (** Second label: host index within the region. *)
  l2 : int;  (** Third label: spare (always 0 today). *)
  ttl_s : int;  (** Seconds the answer may be cached; 0 on queries. *)
  answer : int;  (** Address bits (or referral server bits); 0 on queries. *)
}

type error = [ `Truncated | `Bad_header of string ]

let pp_error fmt = function
  | `Truncated -> Format.pp_print_string fmt "truncated name message"
  | `Bad_header m -> Format.fprintf fmt "bad name header: %s" m

let flag_response = 1
let flag_rd = 2
let flag_aa = 4

let query ~id ~rd ~qtype ~l0 ~l1 ~l2 =
  { id; response = false; rd; aa = false; rcode = rcode_ok; qtype; l0; l1;
    l2; ttl_s = 0; answer = 0 }

let response ~of_:q ~aa ~rcode ~ttl_s ~answer =
  { q with response = true; rd = false; aa; rcode; ttl_s; answer }

let encode t =
  if t.id < 0 || t.id > 0xffff then
    invalid_arg "Names_wire.encode: id out of range";
  if t.l0 < 0 || t.l0 > 0xffff || t.l1 < 0 || t.l1 > 0xffff || t.l2 < 0
     || t.l2 > 0xffff
  then invalid_arg "Names_wire.encode: label out of range";
  if t.rcode < 0 || t.rcode > 0xff || t.qtype < 0 || t.qtype > 0xff then
    invalid_arg "Names_wire.encode: rcode/qtype out of range";
  let buf = Bytes.create header_size in
  let flags =
    (if t.response then flag_response else 0)
    lor (if t.rd then flag_rd else 0)
    lor if t.aa then flag_aa else 0
  in
  Bytes.set_uint16_be buf 0 t.id;
  Bytes.set_uint16_be buf 2 flags;
  Bytes.set_uint8 buf 4 t.rcode;
  Bytes.set_uint8 buf 5 t.qtype;
  Bytes.set_uint16_be buf 6 t.l0;
  Bytes.set_uint16_be buf 8 t.l1;
  Bytes.set_uint16_be buf 10 t.l2;
  Bytes.set_int32_be buf 12 (Int32.of_int t.ttl_s);
  Bytes.set_int32_be buf 16 (Int32.of_int t.answer);
  buf

let decode buf =
  if Bytes.length buf < header_size then Error `Truncated
  else begin
    let flags = Bytes.get_uint16_be buf 2 in
    let rcode = Bytes.get_uint8 buf 4 in
    let qtype = Bytes.get_uint8 buf 5 in
    if flags land lnot (flag_response lor flag_rd lor flag_aa) <> 0 then
      Error (`Bad_header "unknown flag bits")
    else if rcode > rcode_referral then Error (`Bad_header "unknown rcode")
    else if qtype > qtype_svc then Error (`Bad_header "unknown qtype")
    else
      Ok
        {
          id = Bytes.get_uint16_be buf 0;
          response = flags land flag_response <> 0;
          rd = flags land flag_rd <> 0;
          aa = flags land flag_aa <> 0;
          rcode;
          qtype;
          l0 = Bytes.get_uint16_be buf 6;
          l1 = Bytes.get_uint16_be buf 8;
          l2 = Bytes.get_uint16_be buf 10;
          ttl_s = Int32.to_int (Bytes.get_int32_be buf 12) land 0xffffffff;
          answer = Int32.to_int (Bytes.get_int32_be buf 16) land 0xffffffff;
        }
  end

let answer_addr t = Addr.of_int32 (Int32.of_int t.answer)
let addr_bits a = Int32.to_int (Addr.to_int32 a) land 0xffffffff

let rcode_to_string = function
  | 0 -> "ok"
  | 1 -> "nxname"
  | 2 -> "servfail"
  | 3 -> "refused"
  | 4 -> "referral"
  | n -> Printf.sprintf "rcode%d" n

let pp fmt t =
  Format.fprintf fmt "%s id=%d qtype=%d (%d.%d.%d) %s ttl=%ds answer=%a"
    (if t.response then "resp" else "query")
    t.id t.qtype t.l0 t.l1 t.l2 (rcode_to_string t.rcode) t.ttl_s Addr.pp
    (answer_addr t)
