bench/e09.ml: Apps Catenet Format Internet List Netsim Printf Tcp Util
