lib/ip/reassembly.ml: Bytes Engine Hashtbl List Packet
