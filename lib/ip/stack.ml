module Addr = Packet.Addr
module Ipv4 = Packet.Ipv4
module Icmp = Packet.Icmp_wire

type counters = {
  mutable sent : int;
  mutable received : int;
  mutable delivered : int;
  mutable forwarded : int;
  mutable dropped_malformed : int;
  mutable dropped_no_route : int;
  mutable dropped_ttl : int;
  mutable dropped_no_proto : int;
  mutable dropped_not_forwarding : int;
  mutable dropped_df : int;
  mutable dropped_unroutable_icmp : int;
  mutable fragments_made : int;
  mutable icmp_tx : int;
  mutable echo_replies : int;
  mutable route_cache_hits : int;
  mutable route_cache_misses : int;
}

let new_counters () =
  {
    sent = 0;
    received = 0;
    delivered = 0;
    forwarded = 0;
    dropped_malformed = 0;
    dropped_no_route = 0;
    dropped_ttl = 0;
    dropped_no_proto = 0;
    dropped_not_forwarding = 0;
    dropped_df = 0;
    dropped_unroutable_icmp = 0;
    fragments_made = 0;
    icmp_tx = 0;
    echo_replies = 0;
    route_cache_hits = 0;
    route_cache_misses = 0;
  }

type send_error = [ `No_route | `Too_big ]

type t = {
  net : Netsim.t;
  eng : Engine.t;
  node : Netsim.node_id;
  mutable fwd : bool;
  mutable fast : bool;
  table : Route_table.t;
  (* Destination -> route memo: a direct-mapped array of
     [route_cache_slots] slots, so the cache is structurally bounded no
     matter how many distinct destinations transit this stack (a gateway
     in an E17-scale catenet sees 10^4..10^5 of them; the Hashtbl this
     replaces grew one bucket per destination).  A slot is live only
     while its stamp equals the table's current generation, so any
     add/remove/clear invalidates everything at once — no flush pass —
     and eviction is collision-replaces-occupant.  Negative answers are
     cached too: a routing churn bumps the generation, so a later add is
     never masked.  Hits touch three arrays and allocate nothing. *)
  cache_key : int array;  (* destination address bits *)
  cache_val : Route_table.route option array;  (* pre-boxed by the table *)
  cache_stamp : int array;  (* table generation at fill; -1 = empty *)
  mutable iface_addrs : (Netsim.iface * Addr.t) list;
  protos : (int, Ipv4.header -> bytes -> unit) Hashtbl.t;
  frame_protos : (int, Ipv4.header -> bytes -> pos:int -> unit) Hashtbl.t;
  mutable error_handlers : (from:Addr.t -> Icmp.t -> unit) list;
  mutable echo_reply_handler : (id:int -> seq:int -> payload:bytes -> unit) option;
  reasm : Reassembly.t;
  mutable next_id : int;
  c : counters;
  mutable accounting : Accounting.t option;
  mutable tap : (rx:bool -> bytes -> unit) option;
      (* Observes every frame this stack receives or transmits, for pcap
         capture at the host rather than on a link. *)
  mutable on_flush : (unit -> unit) list;
      (* Soft-state subscribers above IP (resolver caches, name-server
         state): run after flush_soft_state clears the stack's own soft
         state, so crash amnesia reaches every layer that caches. *)
}

let net t = t.net
let engine t = t.eng
let node_id t = t.node
let table t = t.table
let set_forwarding t v = t.fwd <- v
let forwarding t = t.fwd
let set_fast_path t v = t.fast <- v
let fast_path t = t.fast
let counters t = t.c
let accounting t = t.accounting
let set_tap t tap = t.tap <- tap

(* Drop paths are cold, so the [want] check can live inside the helper;
   hot-path events guard inline before constructing anything. *)
let trace_drop t ~src ~dst reason =
  if Trace.want Trace.Cls.ip then
    Trace.emit (Trace.Event.Ip_drop { node = t.node; src; dst; reason })

let trace_deliver t (h : Ipv4.header) ~len =
  if Trace.want Trace.Cls.ip then
    Trace.emit
      (Trace.Event.Ip_deliver
         { node = t.node; src = h.Ipv4.src; dst = h.Ipv4.dst;
           proto = Ipv4.Proto.to_int h.Ipv4.proto; len })

(* Route lookup with a per-stack memo.  The memo only pays off on the fast
   path; with the fast path disabled we hit the table directly so that the
   legacy path really is the pre-cache baseline (E13 compares the two). *)
let route_cache_capacity = 4096 (* power of two: slot index is a mask *)

let addr_key a = Int32.to_int (Addr.to_int32 a) land 0xffffffff [@@fastpath]

let lookup_route t dst =
  if not t.fast then Route_table.lookup t.table dst
  else begin
    let key = addr_key dst in
    (* Fibonacci hash: spread region/host structure across the slots. *)
    let slot = (key * 0x2545F491) lsr 13 land (route_cache_capacity - 1) in
    let gen = Route_table.generation t.table in
    if
      Array.unsafe_get t.cache_stamp slot = gen
      && Array.unsafe_get t.cache_key slot = key
    then begin
      t.c.route_cache_hits <- t.c.route_cache_hits + 1;
      Array.unsafe_get t.cache_val slot
    end
    else begin
      t.c.route_cache_misses <- t.c.route_cache_misses + 1;
      let r = Route_table.lookup t.table dst in
      Array.unsafe_set t.cache_key slot key;
      Array.unsafe_set t.cache_val slot r;
      Array.unsafe_set t.cache_stamp slot gen;
      r
    end
  end
[@@fastpath]

let iface_addr t i = List.assoc_opt i t.iface_addrs

let addresses t = List.map snd t.iface_addrs

let has_addr t a = List.exists (fun (_, a') -> Addr.equal a a') t.iface_addrs

let primary_addr t =
  match t.iface_addrs with
  | [] -> failwith "Ip.Stack.primary_addr: no address configured"
  | (_, a) :: _ -> a

let configure_iface t iface ~addr ~prefix_len =
  t.iface_addrs <- t.iface_addrs @ [ (iface, addr) ];
  Route_table.add t.table
    {
      Route_table.prefix = Addr.Prefix.make addr prefix_len;
      iface;
      next_hop = None;
      metric = 0;
    }

let register_proto t proto f =
  let n = Ipv4.Proto.to_int proto in
  if n = 1 then invalid_arg "Ip.Stack.register_proto: ICMP is built in";
  Hashtbl.replace t.protos n f

(* A frame handler is an optimisation overlay, not a replacement: the
   receive fast path hands it the whole frame (payload at [pos]) when the
   datagram needs no reassembly and no accounting; every other road —
   fragments, slow path, loopback — still goes through the [register_proto]
   handler, which therefore must also be registered. *)
let register_proto_frame t proto f =
  let n = Ipv4.Proto.to_int proto in
  if n = 1 then invalid_arg "Ip.Stack.register_proto_frame: ICMP is built in";
  Hashtbl.replace t.frame_protos n f

let add_error_handler t f = t.error_handlers <- t.error_handlers @ [ f ]
let set_echo_reply_handler t f = t.echo_reply_handler <- Some f

let fresh_id t =
  let id = t.next_id in
  t.next_id <- (t.next_id + 1) land 0xffff;
  id

(* Split [payload] into fragments that fit [mtu] on the wire; offsets are
   relative to the original unfragmented datagram, so forwarding an
   already-fragmented datagram composes correctly. *)
let fragment_payload ~mtu (h : Ipv4.header) payload =
  let max_data = (mtu - Ipv4.header_size) / 8 * 8 in
  assert (max_data > 0);
  let len = Bytes.length payload in
  let rec cut off acc =
    if off >= len then List.rev acc
    else begin
      let n = min max_data (len - off) in
      let last = off + n >= len in
      let fh =
        {
          h with
          Ipv4.frag_offset = h.Ipv4.frag_offset + off;
          more_fragments = (if last then h.Ipv4.more_fragments else true);
        }
      in
      cut (off + n) ((fh, Bytes.sub payload off n) :: acc)
    end
  in
  cut 0 []

let transmit t iface ~priority frame =
  (match t.tap with Some f -> f ~rx:false frame | None -> ());
  (* [Netsim.send] clones the frame into the link queue; that copy is the
     hand-off to the simulated wire, not fast-path overhead. *)
  ignore (Netsim.send t.net t.node ~priority ~iface frame [@fastpath.exempt])
[@@fastpath]

(* Emit (or fragment and emit) one datagram on [iface].  Low-delay ToS
   datagrams ride the link's priority queue — the per-hop half of the
   type-of-service mechanism. *)
let emit t iface (h : Ipv4.header) payload =
  let priority = h.Ipv4.tos = Ipv4.Tos.Low_delay in
  let mtu = Netsim.iface_mtu t.net t.node iface in
  let wire_len = Ipv4.header_size + Bytes.length payload in
  if wire_len <= mtu then begin
    transmit t iface ~priority (Ipv4.encode h ~payload);
    Ok ()
  end
  else if h.Ipv4.dont_fragment then begin
    t.c.dropped_df <- t.c.dropped_df + 1;
    trace_drop t ~src:h.Ipv4.src ~dst:h.Ipv4.dst Trace.Event.Df_needed;
    Error `Too_big
  end
  else begin
    let frags = fragment_payload ~mtu h payload in
    List.iter
      (fun (fh, fp) ->
        t.c.fragments_made <- t.c.fragments_made + 1;
        if Trace.want Trace.Cls.frag then
          Trace.emit
            (Trace.Event.Ip_fragment
               { node = t.node; id = fh.Ipv4.id;
                 frag_offset = fh.Ipv4.frag_offset;
                 len = Bytes.length fp });
        transmit t iface ~priority (Ipv4.encode fh ~payload:fp))
      frags;
    Ok ()
  end

let account t h payload =
  match t.accounting with
  | None -> ()
  | Some acc ->
      Accounting.record acc h ~payload
        ~wire_bytes:(Ipv4.header_size + Bytes.length payload)

(* ICMP plumbing -------------------------------------------------------- *)

let send_raw t ~route (h : Ipv4.header) payload =
  ignore (emit t route.Route_table.iface h payload)

let icmp_to t ~dst msg =
  match lookup_route t dst with
  | None ->
      (* Cannot even route the error back.  The datagram is still dead,
         but the loss is no longer silent: it is counted and recorded, so
         a black hole of ICMP errors shows up in the ledger instead of
         vanishing (the accountability gap this subsystem closes). *)
      t.c.dropped_unroutable_icmp <- t.c.dropped_unroutable_icmp + 1;
      let src =
        match t.iface_addrs with (_, a) :: _ -> a | [] -> Addr.any
      in
      trace_drop t ~src ~dst Trace.Event.Unroutable_icmp
  | Some route ->
      let src =
        match iface_addr t route.Route_table.iface with
        | Some a -> a
        | None -> ( match addresses t with a :: _ -> a | [] -> Addr.any)
      in
      let h =
        Ipv4.make_header ~proto:Ipv4.Proto.Icmp ~src ~dst
          ~id:(fresh_id t) ()
      in
      t.c.icmp_tx <- t.c.icmp_tx + 1;
      send_raw t ~route h (Icmp.encode msg)

(* Never generate ICMP errors about ICMP errors (RFC 792). *)
let may_report_error (h : Ipv4.header) payload =
  match h.Ipv4.proto with
  | Ipv4.Proto.Icmp ->
      Bytes.length payload > 0
      &&
      let ty = Bytes.get_uint8 payload 0 in
      ty = 8 || ty = 0 (* only echo traffic may trigger errors *)
  | Ipv4.Proto.Tcp | Ipv4.Proto.Udp | Ipv4.Proto.Other _ -> true

let report_unreachable t (h : Ipv4.header) payload code =
  if may_report_error h payload then begin
    let original =
      Icmp.original_of ~ip_header:(Ipv4.encode h ~payload)
    in
    icmp_to t ~dst:h.Ipv4.src (Icmp.Dest_unreachable { code; original })
  end

let report_time_exceeded t (h : Ipv4.header) payload =
  if may_report_error h payload then begin
    let original = Icmp.original_of ~ip_header:(Ipv4.encode h ~payload) in
    icmp_to t ~dst:h.Ipv4.src (Icmp.Time_exceeded { original })
  end

(* Local delivery ------------------------------------------------------- *)

let deliver_icmp t (h : Ipv4.header) data =
  match Icmp.decode data with
  | Error _ ->
      t.c.dropped_malformed <- t.c.dropped_malformed + 1;
      trace_drop t ~src:h.Ipv4.src ~dst:h.Ipv4.dst Trace.Event.Malformed
  | Ok (Icmp.Echo_request { id; seq; payload }) ->
      t.c.delivered <- t.c.delivered + 1;
      t.c.echo_replies <- t.c.echo_replies + 1;
      trace_deliver t h ~len:(Bytes.length data);
      icmp_to t ~dst:h.Ipv4.src (Icmp.Echo_reply { id; seq; payload })
  | Ok (Icmp.Echo_reply { id; seq; payload }) -> (
      t.c.delivered <- t.c.delivered + 1;
      trace_deliver t h ~len:(Bytes.length data);
      match t.echo_reply_handler with
      | Some f -> f ~id ~seq ~payload
      | None -> ())
  | Ok (Icmp.Dest_unreachable _ as msg) | Ok (Icmp.Time_exceeded _ as msg) ->
      t.c.delivered <- t.c.delivered + 1;
      trace_deliver t h ~len:(Bytes.length data);
      List.iter (fun f -> f ~from:h.Ipv4.src msg) t.error_handlers

let deliver_local t (h : Ipv4.header) payload =
  match Reassembly.push t.reasm h payload with
  | Reassembly.Incomplete -> ()
  | Reassembly.Complete data -> (
      account t h data;
      match h.Ipv4.proto with
      | Ipv4.Proto.Icmp -> deliver_icmp t h data
      | p -> (
          match Hashtbl.find_opt t.protos (Ipv4.Proto.to_int p) with
          | Some f ->
              t.c.delivered <- t.c.delivered + 1;
              trace_deliver t h ~len:(Bytes.length data);
              f h data
          | None ->
              t.c.dropped_no_proto <- t.c.dropped_no_proto + 1;
              trace_drop t ~src:h.Ipv4.src ~dst:h.Ipv4.dst
                Trace.Event.No_proto;
              report_unreachable t h data Icmp.Protocol_unreachable))

(* Forwarding ----------------------------------------------------------- *)

(* Slow (decode/re-encode) forwarding: materialized header and payload in,
   fresh frame out via [emit].  Still the only road for datagrams that need
   fragmenting, and the whole road when the fast path is switched off. *)
let forward t (h : Ipv4.header) payload =
  if h.Ipv4.ttl <= 1 then begin
    t.c.dropped_ttl <- t.c.dropped_ttl + 1;
    trace_drop t ~src:h.Ipv4.src ~dst:h.Ipv4.dst Trace.Event.Ttl_expired;
    report_time_exceeded t h payload
  end
  else begin
    let h = { h with Ipv4.ttl = h.Ipv4.ttl - 1 } in
    match lookup_route t h.Ipv4.dst with
    | None ->
        t.c.dropped_no_route <- t.c.dropped_no_route + 1;
        trace_drop t ~src:h.Ipv4.src ~dst:h.Ipv4.dst Trace.Event.No_route;
        report_unreachable t h payload Icmp.Net_unreachable
    | Some route -> (
        t.c.forwarded <- t.c.forwarded + 1;
        if Trace.want Trace.Cls.ip then
          Trace.emit
            (Trace.Event.Ip_forward
               { node = t.node; src = h.Ipv4.src; dst = h.Ipv4.dst;
                 ttl = h.Ipv4.ttl; len = Bytes.length payload });
        account t h payload;
        match emit t route.Route_table.iface h payload with
        | Ok () -> ()
        | Error `Too_big ->
            report_unreachable t h payload Icmp.Fragmentation_needed)
  end

(* Fast transit: patch TTL and checksum in the received frame (RFC 1624)
   and retransmit the very same bytes — two bytes mutated, no payload copy,
   no re-encode.  Anything off the happy path (TTL expiry, no route, frame
   larger than the next link's MTU, i.e. fragmentation or a DF drop) bails
   out to the slow path, which handles every edge already. *)
let forward_fast t (h : Ipv4.header) frame =
  match lookup_route t h.Ipv4.dst with
  | Some route
    when h.Ipv4.ttl > 1
         && Bytes.length frame
            <= Netsim.iface_mtu t.net t.node route.Route_table.iface ->
      Ipv4.patch_ttl frame;
      t.c.forwarded <- t.c.forwarded + 1;
      if Trace.want Trace.Cls.ip then
        Trace.emit
          (Trace.Event.Ip_forward
             { node = t.node; src = h.Ipv4.src; dst = h.Ipv4.dst;
               ttl = h.Ipv4.ttl - 1; len = Bytes.length frame });
      (* Sketch-mode accounting updates flat counters in place, so
         goal 7 no longer costs a payload copy or a slow-path bail. *)
      (match t.accounting with
      | None -> ()
      | Some acc -> Accounting.record_fast acc h ~frame);
      transmit t route.Route_table.iface
        ~priority:(h.Ipv4.tos = Ipv4.Tos.Low_delay)
        frame
  | Some _ | None ->
      (* Bail to the slow path, which owns every edge case. *)
      (forward t h (Ipv4.payload_of frame) [@fastpath.exempt])
[@@fastpath]

let receive t ~iface:_ frame =
  (match t.tap with Some f -> f ~rx:true frame | None -> ());
  if t.fast then begin
    match Ipv4.peek frame with
    | Error _ ->
        t.c.dropped_malformed <- t.c.dropped_malformed + 1;
        trace_drop t ~src:Addr.any ~dst:Addr.any Trace.Event.Malformed
    | Ok h ->
        t.c.received <- t.c.received + 1;
        if has_addr t h.Ipv4.dst then begin
          (* Hand complete datagrams to a frame handler in place; only
             delivery roads a frame handler cannot take (fragments, plain
             handlers) materialize the payload. *)
          let frame_handler =
            if h.Ipv4.frag_offset = 0 && not h.Ipv4.more_fragments then
              Hashtbl.find_opt t.frame_protos (Ipv4.Proto.to_int h.Ipv4.proto)
            else None
          in
          match frame_handler with
          | Some f ->
              t.c.delivered <- t.c.delivered + 1;
              (match t.accounting with
              | None -> ()
              | Some acc -> Accounting.record_fast acc h ~frame);
              trace_deliver t h
                ~len:(Bytes.length frame - Ipv4.header_size);
              f h frame ~pos:Ipv4.header_size
          | None -> deliver_local t h (Ipv4.payload_of frame)
        end
        else if t.fwd then forward_fast t h frame
        else begin
          t.c.dropped_not_forwarding <- t.c.dropped_not_forwarding + 1;
          trace_drop t ~src:h.Ipv4.src ~dst:h.Ipv4.dst
            Trace.Event.Not_forwarding
        end
  end
  else
    match Ipv4.decode frame with
    | Error _ ->
        t.c.dropped_malformed <- t.c.dropped_malformed + 1;
        trace_drop t ~src:Addr.any ~dst:Addr.any Trace.Event.Malformed
    | Ok (h, payload) ->
        t.c.received <- t.c.received + 1;
        if has_addr t h.Ipv4.dst then deliver_local t h payload
        else if t.fwd then forward t h payload
        else begin
          t.c.dropped_not_forwarding <- t.c.dropped_not_forwarding + 1;
          trace_drop t ~src:h.Ipv4.src ~dst:h.Ipv4.dst
            Trace.Event.Not_forwarding
        end

(* Origination ---------------------------------------------------------- *)

let send t ?(tos = Ipv4.Tos.Routine) ?(ttl = 64) ?(dont_fragment = false)
    ?src ~proto ~dst payload =
  if has_addr t dst then begin
    (* Loopback: deliver through the engine so ordering matches the wire. *)
    let src = match src with Some s -> s | None -> primary_addr t in
    let h =
      Ipv4.make_header ~tos ~id:(fresh_id t) ~dont_fragment ~ttl ~proto ~src
        ~dst ()
    in
    t.c.sent <- t.c.sent + 1;
    Engine.after t.eng 1 (fun () -> deliver_local t h payload);
    Ok ()
  end
  else
    match lookup_route t dst with
    | None ->
        t.c.dropped_no_route <- t.c.dropped_no_route + 1;
        trace_drop t
          ~src:(match src with Some s -> s | None -> Addr.any)
          ~dst Trace.Event.No_route;
        Error `No_route
    | Some route ->
        let src =
          match src with
          | Some s -> s
          | None -> (
              match iface_addr t route.Route_table.iface with
              | Some a -> a
              | None -> primary_addr t)
        in
        let h =
          Ipv4.make_header ~tos ~id:(fresh_id t) ~dont_fragment ~ttl ~proto
            ~src ~dst ()
        in
        t.c.sent <- t.c.sent + 1;
        emit t route.Route_table.iface h payload

(* Origination without the payload copy: the caller hands over a full
   frame whose first [Ipv4.header_size] bytes are a reserved prefix and
   whose transport segment is already in place after it.  On the common
   road — routed out an interface, fits the MTU — the IP header is written
   into the prefix and the very same buffer is transmitted.  Loopback and
   fragmentation fall back to the [send]/[emit] machinery (both need a
   materialized payload anyway).  Counters match [send] exactly. *)
let send_frame t ?(tos = Ipv4.Tos.Routine) ?(ttl = 64) ?(dont_fragment = false)
    ?src ~proto ~dst frame =
  let payload_of_frame () =
    Bytes.sub frame Ipv4.header_size (Bytes.length frame - Ipv4.header_size)
  in
  if has_addr t dst then begin
    (* Loopback: deliver through the engine so ordering matches the wire. *)
    let src = match src with Some s -> s | None -> primary_addr t in
    let h =
      Ipv4.make_header ~tos ~id:(fresh_id t) ~dont_fragment ~ttl ~proto ~src
        ~dst ()
    in
    t.c.sent <- t.c.sent + 1;
    let payload = payload_of_frame () in
    Engine.after t.eng 1 (fun () -> deliver_local t h payload);
    Ok ()
  end
  else
    match lookup_route t dst with
    | None ->
        t.c.dropped_no_route <- t.c.dropped_no_route + 1;
        trace_drop t
          ~src:(match src with Some s -> s | None -> Addr.any)
          ~dst Trace.Event.No_route;
        Error `No_route
    | Some route ->
        let src =
          match src with
          | Some s -> s
          | None -> (
              match iface_addr t route.Route_table.iface with
              | Some a -> a
              | None -> primary_addr t)
        in
        let h =
          Ipv4.make_header ~tos ~id:(fresh_id t) ~dont_fragment ~ttl ~proto
            ~src ~dst ()
        in
        t.c.sent <- t.c.sent + 1;
        let iface = route.Route_table.iface in
        if Bytes.length frame <= Netsim.iface_mtu t.net t.node iface then begin
          Ipv4.encode_into h frame;
          transmit t iface ~priority:(tos = Ipv4.Tos.Low_delay) frame;
          Ok ()
        end
        else emit t iface h (payload_of_frame ())

let icmp_unreachable t h payload code = report_unreachable t h payload code

let send_echo_request t ~dst ~id ~seq ~payload =
  let msg = Icmp.Echo_request { id; seq; payload } in
  ignore (send t ~proto:Ipv4.Proto.Icmp ~dst (Icmp.encode msg))

let enable_accounting ?mode t =
  match t.accounting with
  | Some acc -> acc
  | None ->
      let acc = Accounting.create ?mode () in
      t.accounting <- Some acc;
      acc

let reassembly_pending t = Reassembly.pending t.reasm
let reassembly_expired t = Reassembly.expired t.reasm

(* Crash semantics (fate-sharing, Clark goal 1): everything a gateway
   holds that is *derived* — the destination cache, learned routes, and
   half-assembled datagrams — dies with it.  Connected routes survive
   because they are configuration, re-derived from the interfaces
   themselves at boot, not from protocol exchange. *)
let flush_soft_state t =
  Array.fill t.cache_stamp 0 route_cache_capacity (-1);
  Reassembly.flush t.reasm;
  List.iter
    (fun (r : Route_table.route) ->
      if r.next_hop <> None || r.metric > 0 then Route_table.remove t.table r.prefix)
    (Route_table.entries t.table);
  if Trace.want Trace.Cls.fault then
    Trace.emit (Trace.Event.Fault_soft_reset { node = t.node });
  List.iter (fun f -> f ()) t.on_flush

let on_soft_flush t f = t.on_flush <- t.on_flush @ [ f ]

let metrics_items t () =
  let i v = Trace.Metrics.Int v in
  [ ("sent", i t.c.sent);
    ("received", i t.c.received);
    ("delivered", i t.c.delivered);
    ("forwarded", i t.c.forwarded);
    ("dropped_malformed", i t.c.dropped_malformed);
    ("dropped_no_route", i t.c.dropped_no_route);
    ("dropped_ttl", i t.c.dropped_ttl);
    ("dropped_no_proto", i t.c.dropped_no_proto);
    ("dropped_not_forwarding", i t.c.dropped_not_forwarding);
    ("dropped_df", i t.c.dropped_df);
    ("dropped_unroutable_icmp", i t.c.dropped_unroutable_icmp);
    ("fragments_made", i t.c.fragments_made);
    ("icmp_tx", i t.c.icmp_tx);
    ("echo_replies", i t.c.echo_replies);
    ("route_cache_hits", i t.c.route_cache_hits);
    ("route_cache_misses", i t.c.route_cache_misses);
    ("reassembly_pending", i (reassembly_pending t));
    ("reassembly_expired", i (reassembly_expired t)) ]

let create ?(forwarding = false) net node =
  let eng = Netsim.engine net in
  let t =
    {
      net;
      eng;
      node;
      fwd = forwarding;
      fast = true;
      cache_key = Array.make route_cache_capacity 0;
      cache_val = Array.make route_cache_capacity None;
      cache_stamp = Array.make route_cache_capacity (-1);
      table = Route_table.create ();
      iface_addrs = [];
      protos = Hashtbl.create 4;
      frame_protos = Hashtbl.create 4;
      error_handlers = [];
      echo_reply_handler = None;
      reasm = Reassembly.create ~node eng;
      next_id = 1;
      c = new_counters ();
      accounting = None;
      tap = None;
      on_flush = [];
    }
  in
  Netsim.set_handler net node (fun ~iface frame -> receive t ~iface frame);
  t
