(* E10 — Host attachment (Clark §7, goal 6).

   "The architecture required that a host implement TCP if reliable
   service was desired — which some machines resented" — but attaching at
   all demands very little: IP encode/decode plus, for datagram service,
   UDP's ports and checksum.  A hand-rolled minimal host (no TCP, no
   routing daemon, one static default route) talks to a full host through
   a gateway; the full transport service remains strictly optional. *)

open Catenet

module Addr = Packet.Addr

let run () =
  Util.banner "E10" "Host attachment with a low level of effort"
    "a minimal (IP+UDP only) host interoperates; TCP is the optional price \
     of reliable service";
  let t = Internet.create () in
  let full = Internet.add_host t "full" in
  let g = Internet.add_gateway t "g" in
  let p = Netsim.profile "lan" in
  ignore (Internet.connect t p full.Internet.h_node g.Internet.g_node);
  (* The minimal host, wired below the builder. *)
  let mini_node = Netsim.add_node (Internet.net t) "mini" in
  ignore (Netsim.add_link (Internet.net t) p mini_node g.Internet.g_node);
  let mini_ip = Ip.Stack.create (Internet.net t) mini_node in
  Ip.Stack.configure_iface mini_ip 0 ~addr:(Addr.v 172 16 0 1) ~prefix_len:24;
  let _, g_iface = Netsim.peer (Internet.net t) mini_node 0 in
  Ip.Stack.configure_iface g.Internet.g_ip g_iface ~addr:(Addr.v 172 16 0 2)
    ~prefix_len:24;
  Ip.Route_table.add (Ip.Stack.table mini_ip)
    {
      Ip.Route_table.prefix = Addr.Prefix.default;
      iface = 0;
      next_hop = Some (Addr.v 172 16 0 2);
      metric = 1;
    };
  let mini_udp = Udp.create mini_ip in
  Internet.start t;

  (* Capability probes. *)
  let full_addr = Internet.addr_of t full.Internet.h_node in

  (* 1. ICMP echo from the full host to the minimal one (the echo
     responder is part of the base IP stack). *)
  let ping_ok = ref false in
  Ip.Stack.set_echo_reply_handler full.Internet.h_ip
    (fun ~id:_ ~seq:_ ~payload:_ -> ping_ok := true);
  Ip.Stack.send_echo_request full.Internet.h_ip ~dst:(Addr.v 172 16 0 1) ~id:1
    ~seq:0 ~payload:(Bytes.make 8 'p');

  (* 2. UDP round trip initiated by the minimal host. *)
  let udp_ok = ref false in
  ignore
    (Udp.bind full.Internet.h_udp ~port:7
       ~recv:(fun ~src ~src_port payload ->
         let s =
           Udp.bind full.Internet.h_udp ~recv:(fun ~src:_ ~src_port:_ _ -> ()) ()
         in
         ignore (Udp.sendto s ~dst:src ~dst_port:src_port payload))
       ());
  let sock =
    Udp.bind mini_udp
      ~recv:(fun ~src:_ ~src_port:_ _ -> udp_ok := true)
      ()
  in
  ignore (Udp.sendto sock ~dst:full_addr ~dst_port:7 (Bytes.of_string "hi"));

  (* 3. TCP toward the minimal host: correctly signalled as unavailable
     (protocol-unreachable), not a silent black hole. *)
  let tcp_conn =
    Tcp.connect full.Internet.h_tcp ~dst:(Addr.v 172 16 0 1) ~dst_port:80 ()
  in

  Internet.run_for t 10.0;
  Util.table
    [ "capability"; "minimal host (IP+UDP)"; "full host" ]
    [
      [ "ICMP echo responder"; (if !ping_ok then "yes" else "NO"); "yes" ];
      [ "UDP datagram service"; (if !udp_ok then "yes" else "NO"); "yes" ];
      [
        "TCP reliable stream";
        (match Tcp.state tcp_conn with
        | Tcp.Syn_sent -> "absent (SYNs unanswered)"
        | Tcp.Closed -> "absent (refused)"
        | _ -> "?!");
        "yes";
      ];
    ];
  Printf.printf "\n  mechanism inventory (what each attachment level must implement):\n";
  Util.table
    [ "layer"; "mechanisms"; "minimal"; "full" ]
    [
      [ "wire formats"; "IPv4 header, checksum, addressing"; "required"; "required" ];
      [ "internet"; "send/receive, reassembly, ICMP"; "required"; "required" ];
      [ "datagram transport"; "UDP ports + pseudo-header checksum"; "required"; "required" ];
      [ "reliable transport"; "TCP: 11-state machine, windows, RTT, CC"; "-"; "required" ];
      [ "routing protocol"; "DV or LS daemon"; "-"; "-" ];
    ];
  Util.note
    "the minimal host's entire obligation is parsing 20+8 byte headers and \
     one static route — goal 6 delivered; gateways carry the routing burden"
