(* The chaos subsystem: deterministic schedules, the injector, the
   reconvergence observer — and the gauntlet's headline claim, that a
   TCP conversation survives its first-hop gateway crashing and losing
   every scrap of soft state (fate-sharing, Clark goal 1). *)

open Catenet
open Alcotest

let sec = Engine.sec

(* --- schedules are pure, seeded data --------------------------------- *)

let links8 = [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let storm seed =
  Chaos.Schedule.flap_storm ~seed ~links:links8 ~start_us:(sec 1.0)
    ~duration_us:(sec 10.0) ~mean_gap_us:300_000 ~max_down_us:800_000

let test_schedule_deterministic () =
  let a = storm 42 and b = storm 42 and c = storm 43 in
  check bool "non-empty" true (Chaos.Schedule.length a > 0);
  check string "same seed, same digest" (Chaos.Schedule.digest a)
    (Chaos.Schedule.digest b);
  check bool "different seed, different digest" true
    (Chaos.Schedule.digest a <> Chaos.Schedule.digest c)

let test_schedule_sorted_and_merged () =
  let flap = Chaos.Schedule.link_flap ~link:3 ~at_us:(sec 5.0) ~down_us:(sec 1.0) in
  let outage =
    Chaos.Schedule.node_outage ~node:1 ~at_us:(sec 2.0) ~down_us:(sec 1.0)
  in
  let part =
    Chaos.Schedule.partition ~links:[ 0; 1 ] ~at_us:(sec 4.0)
      ~heal_after_us:(sec 2.0)
  in
  let merged = Chaos.Schedule.merge [ flap; outage; part ] in
  check int "all entries present" 8 (Chaos.Schedule.length merged);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Chaos.Schedule.at_us <= b.Chaos.Schedule.at_us && sorted rest
    | _ -> true
  in
  check bool "merged schedule time-ordered" true (sorted merged);
  (* Partition cuts both links at the same instant, in list order. *)
  (match
     List.filter (fun e -> e.Chaos.Schedule.at_us = sec 4.0) merged
   with
  | [ { fault = Chaos.Fault.Link_set { link = 0; up = false }; _ };
      { fault = Chaos.Fault.Link_set { link = 1; up = false }; _ } ] ->
      ()
  | _ -> fail "partition entries missing or reordered");
  check bool "digest covers order and times" true
    (Chaos.Schedule.digest merged <> Chaos.Schedule.digest flap)

(* --- the injector drives netsim at the scheduled instants ------------- *)

let test_inject_applies_faults () =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:9 eng in
  let a = Netsim.add_node net "a" and b = Netsim.add_node net "b" in
  let p = Netsim.profile "wire" ~delay_us:1_000 in
  let l = Netsim.add_link net p a b in
  Trace.clear ();
  Trace.enable ~capacity:64 ~mask:Trace.Cls.fault ();
  let schedule =
    Chaos.Schedule.merge
      [ Chaos.Schedule.link_flap ~link:l ~at_us:(sec 1.0) ~down_us:(sec 1.0);
        Chaos.Schedule.node_outage ~node:b ~at_us:(sec 4.0) ~down_us:(sec 1.0) ]
  in
  Chaos.inject (Chaos.env_of_netsim net) schedule;
  let probe at f = Engine.schedule eng ~at f in
  let seen = ref [] in
  probe (sec 1.5) (fun () ->
      seen := ("link down mid-flap", Netsim.link_is_up net l = false) :: !seen);
  probe (sec 2.5) (fun () ->
      seen := ("link restored", Netsim.link_is_up net l) :: !seen);
  probe (sec 4.5) (fun () ->
      seen := ("node down mid-outage", Netsim.node_is_up net b = false) :: !seen);
  probe (sec 5.5) (fun () ->
      seen := ("node restored", Netsim.node_is_up net b) :: !seen);
  Engine.run ~until:(sec 6.0) eng;
  List.iter (fun (what, ok) -> check bool what true ok) !seen;
  let faults =
    List.filter
      (fun (e : Trace.entry) ->
        match e.event with
        | Trace.Event.Fault_link _ | Trace.Event.Fault_node _ -> true
        | _ -> false)
      (Trace.entries ())
  in
  Trace.disable ();
  Trace.clear ();
  check int "every applied fault traced" 4 (List.length faults)

(* --- observer: reconvergence is measured, not assumed ----------------- *)

(* A chain h1 - g1 - g2 - h2: one path, so cutting the middle link is a
   partition and the observer can only see convergence again after the
   heal plus DV re-learning. *)
type chain = {
  t : Internet.t;
  h1 : Internet.host;
  h2 : Internet.host;
  g1 : Internet.gateway;
  g2 : Internet.gateway;
  mid : Netsim.link_id;
}

let fast_dv =
  {
    Routing.Dv.default_config with
    Routing.Dv.period_us = 1_000_000;
    timeout_us = 3_500_000;
    gc_us = 2_000_000;
    carrier_poll_us = 200_000;
  }

let chain () =
  let t =
    Internet.create ~seed:11 ~routing:Internet.Distance_vector
      ~dv_config:fast_dv ()
  in
  let g1 = Internet.add_gateway t "g1" and g2 = Internet.add_gateway t "g2" in
  let h1 = Internet.add_host t "h1" and h2 = Internet.add_host t "h2" in
  let p = Netsim.profile "trunk" ~bandwidth_bps:1_536_000 ~delay_us:5_000 in
  ignore (Internet.connect t p h1.Internet.h_node g1.Internet.g_node);
  let mid = Internet.connect t p g1.Internet.g_node g2.Internet.g_node in
  ignore (Internet.connect t p g2.Internet.g_node h2.Internet.h_node);
  Internet.start t;
  { t; h1; h2; g1; g2; mid }

let observer_of c =
  let stacks =
    [ c.h1.Internet.h_ip; c.h2.Internet.h_ip; c.g1.Internet.g_ip;
      c.g2.Internet.g_ip ]
  in
  Chaos.Observer.create ~net:(Internet.net c.t) ~stacks
    ~stack_of:(fun n ->
      List.find_opt (fun s -> Ip.Stack.node_id s = n) stacks)
    ~probes:
      [ (c.h1.Internet.h_ip, Internet.addr_of c.t c.h2.Internet.h_node);
        (c.h2.Internet.h_ip, Internet.addr_of c.t c.h1.Internet.h_node) ]
    ()

let test_observer_measures_partition () =
  let c = chain () in
  Internet.run_for c.t 5.0;
  let obs = observer_of c in
  Chaos.Observer.start obs;
  check bool "converged before the cut" true (Chaos.Observer.converged obs);
  let down_at = sec 6.0 and heal_at = sec 8.0 in
  Chaos.inject ~observer:obs
    (Internet.chaos_env c.t)
    (Chaos.Schedule.link_flap ~link:c.mid ~at_us:down_at
       ~down_us:(heal_at - down_at));
  Internet.run_for c.t 10.0;
  Chaos.Observer.stop obs;
  match Chaos.Observer.records obs with
  | [ cut; heal ] ->
      check bool "cut recorded at its instant" true (cut.at_us = down_at);
      (match cut.reconverged_at_us with
      | None -> fail "partition never measured as healed"
      | Some v ->
          (* A single-path cut cannot re-converge before the heal: the
             observer must not report premature convergence. *)
          check bool "no reconvergence before the heal" true (v >= heal_at);
          check bool "reconvergence within DV budget" true
            (v - heal_at <= sec 3.0));
      check bool "heal window also closed" true
        (heal.reconverged_at_us <> None);
      check bool "converged at the end" true (Chaos.Observer.converged obs)
  | rs -> fail (Printf.sprintf "expected 2 fault records, got %d" (List.length rs))

(* --- fate-sharing, end to end ----------------------------------------- *)

let test_tcp_survives_gateway_crash () =
  Trace.clear ();
  Trace.enable ~capacity:256 ~mask:Trace.Cls.fault ();
  let c = chain () in
  Internet.run_for c.t 4.0;
  let dv1 = Option.get c.g1.Internet.g_dv in
  check bool "g1 has a live RIB before the crash" true
    (Routing.Dv.rib_size dv1 > 0);
  let total = 400_000 in
  let server = Apps.Bulk.serve c.h2.Internet.h_tcp ~port:5001 ~seed:3 in
  let sender =
    Apps.Bulk.start c.h1.Internet.h_tcp
      ~dst:(Internet.addr_of c.t c.h2.Internet.h_node)
      ~dst_port:5001 ~seed:3 ~total ()
  in
  (* Crash h1's only first-hop gateway mid-transfer, off the routing
     tick grid, and peek at its RIB just after the lights go out:
     amnesia must be total until the next periodic re-seed. *)
  let crash_at = sec 5.25 in
  let obs = observer_of c in
  Chaos.Observer.start obs;
  Chaos.inject ~observer:obs
    (Internet.chaos_env c.t)
    (Chaos.Schedule.node_outage ~node:c.g1.Internet.g_node ~at_us:crash_at
       ~down_us:(sec 2.0));
  let rib_mid_crash = ref (-1) in
  Engine.schedule (Internet.engine c.t) ~at:(crash_at + 10_000) (fun () ->
      rib_mid_crash := Routing.Dv.rib_size dv1);
  Internet.run_for c.t 15.0;
  let deadline = sec 60.0 in
  while
    (not (Apps.Bulk.finished sender))
    && Engine.now (Internet.engine c.t) < deadline
  do
    Internet.run_for c.t 2.0
  done;
  Chaos.Observer.stop obs;
  let soft_resets =
    List.length
      (List.filter
         (fun (e : Trace.entry) ->
           match e.event with
           | Trace.Event.Fault_soft_reset { node } ->
               node = c.g1.Internet.g_node
           | _ -> false)
         (Trace.entries ()))
  in
  Trace.disable ();
  Trace.clear ();
  check int "crash erased the DV RIB" 0 !rib_mid_crash;
  check int "soft-state reset traced" 1 soft_resets;
  (* The architecture's promise: nothing the conversation depends on
     lived in the gateway, so the transfer completes intact anyway. *)
  check bool "transfer finished" true (Apps.Bulk.finished sender);
  check bool "no TCP failure" true (Apps.Bulk.failed sender = None);
  (match Apps.Bulk.transfers server with
  | [ tr ] ->
      check int "every byte delivered" total tr.Apps.Bulk.received;
      check bool "payload intact" true tr.Apps.Bulk.intact
  | _ -> fail "expected exactly one inbound transfer");
  match Chaos.Observer.records obs with
  | [ crash; _reboot ] ->
      check bool "crash window measured" true
        (crash.reconverged_at_us <> None)
  | _ -> fail "expected crash and reboot records"

let () =
  Alcotest.run "chaos"
    [
      ( "schedule",
        [
          test_case "deterministic" `Quick test_schedule_deterministic;
          test_case "sorted+merged" `Quick test_schedule_sorted_and_merged;
        ] );
      ( "injector",
        [ test_case "applies faults" `Quick test_inject_applies_faults ] );
      ( "observer",
        [ test_case "partition" `Quick test_observer_measures_partition ] );
      ( "fate-sharing",
        [ test_case "tcp survives crash" `Quick test_tcp_survives_gateway_crash ] );
    ]
