type t = int32

let of_int32 v = v [@@fastpath]
let to_int32 v = v [@@fastpath]

let v a b c d =
  let ok x = x >= 0 && x <= 255 in
  if not (ok a && ok b && ok c && ok d) then
    invalid_arg "Addr.v: octet out of range";
  Int32.of_int ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 && x <> "" -> Some v
        | Some _ | None -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Some (v a b c d)
      | _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Addr.of_string: %S" s)

let to_string a =
  let x = Int32.to_int a land 0xFFFFFFFF in
  Printf.sprintf "%d.%d.%d.%d"
    ((x lsr 24) land 0xff)
    ((x lsr 16) land 0xff)
    ((x lsr 8) land 0xff)
    (x land 0xff)

let pp fmt a = Format.pp_print_string fmt (to_string a)

(* Compare as unsigned 32-bit values. *)
let compare a b =
  Int32.unsigned_compare a b

let equal a b = Int32.equal a b [@@fastpath]

let any = 0l

let succ a = Int32.add a 1l

module Prefix = struct
  type nonrec addr = t
  type t = { network : addr; length : int }

  let mask_of_length len =
    if len = 0 then 0l
    else Int32.shift_left (-1l) (32 - len)

  let make a len =
    if len < 0 || len > 32 then invalid_arg "Prefix.make: bad length";
    { network = Int32.logand a (mask_of_length len); length = len }

  let of_string s =
    match String.index_opt s '/' with
    | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)
    | Some i -> (
        let addr_s = String.sub s 0 i in
        let len_s = String.sub s (i + 1) (String.length s - i - 1) in
        match (of_string_opt addr_s, int_of_string_opt len_s) with
        | Some a, Some len when len >= 0 && len <= 32 -> make a len
        | _ -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s))

  let network t = t.network
  let length t = t.length

  let mem a t =
    Int32.equal (Int32.logand a (mask_of_length t.length)) t.network

  let to_string t = Printf.sprintf "%s/%d" (to_string t.network) t.length

  let pp fmt t = Format.pp_print_string fmt (to_string t)

  let compare a b =
    match Int32.unsigned_compare a.network b.network with
    | 0 -> Int.compare a.length b.length
    | c -> c

  let equal a b = compare a b = 0

  let default = make any 0

  let host a = make a 32
end
