let byte ~seed i = Char.chr (((i * 31) + seed) land 0xff)

let fill ~seed ~off buf =
  for i = 0 to Bytes.length buf - 1 do
    Bytes.set buf i (byte ~seed (off + i))
  done

let make ~seed ~off n =
  let b = Bytes.create n in
  fill ~seed ~off b;
  b

type checker = { seed : int; mutable pos : int; mutable ok : bool }

let checker ~seed = { seed; pos = 0; ok = true }

let check c chunk =
  for i = 0 to Bytes.length chunk - 1 do
    if Bytes.get chunk i <> byte ~seed:c.seed (c.pos + i) then c.ok <- false
  done;
  c.pos <- c.pos + Bytes.length chunk;
  c.ok

let checked c = c.pos

let ok c = c.ok
