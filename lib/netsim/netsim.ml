type node_id = int
type iface = int
type link_id = int

type profile = {
  name : string;
  bandwidth_bps : int;
  delay_us : int;
  mtu : int;
  loss : float;
  queue_capacity : int;
  jitter_us : int;
}

let profile ?(bandwidth_bps = 10_000_000) ?(delay_us = 1_000) ?(mtu = 1500)
    ?(loss = 0.0) ?(queue_capacity = 32) ?(jitter_us = 0) name =
  { name; bandwidth_bps; delay_us; mtu; loss; queue_capacity; jitter_us }

module Profiles = struct
  let ethernet =
    profile "ethernet" ~bandwidth_bps:10_000_000 ~delay_us:100 ~mtu:1500

  let arpanet_trunk =
    profile "arpanet-trunk" ~bandwidth_bps:56_000 ~delay_us:20_000 ~mtu:1006

  let satellite =
    profile "satellite" ~bandwidth_bps:1_500_000 ~delay_us:250_000 ~mtu:1500

  let serial_9600 =
    profile "serial-9600" ~bandwidth_bps:9_600 ~delay_us:5_000 ~mtu:576

  let packet_radio =
    profile "packet-radio" ~bandwidth_bps:400_000 ~delay_us:10_000 ~mtu:254
      ~loss:0.02

  let t1 = profile "t1" ~bandwidth_bps:1_536_000 ~delay_us:10_000 ~mtu:1500

  let fast_lan =
    profile "fast-lan" ~bandwidth_bps:100_000_000 ~delay_us:50 ~mtu:1500
end

type link_stats = {
  tx_frames : int;
  tx_bytes : int;
  delivered_frames : int;
  drops_queue : int;
  drops_loss : int;
  drops_down : int;
  drops_mtu : int;
}

let zero_stats =
  {
    tx_frames = 0;
    tx_bytes = 0;
    delivered_frames = 0;
    drops_queue = 0;
    drops_loss = 0;
    drops_down = 0;
    drops_mtu = 0;
  }

let add_stats a b =
  {
    tx_frames = a.tx_frames + b.tx_frames;
    tx_bytes = a.tx_bytes + b.tx_bytes;
    delivered_frames = a.delivered_frames + b.delivered_frames;
    drops_queue = a.drops_queue + b.drops_queue;
    drops_loss = a.drops_loss + b.drops_loss;
    drops_down = a.drops_down + b.drops_down;
    drops_mtu = a.drops_mtu + b.drops_mtu;
  }

(* One transmission direction of a link: a bounded FIFO plus a busy
   transmitter.  [epoch] invalidates scheduled completions/deliveries when
   the link is torn down. *)
type direction = {
  queue : bytes Queue.t; (* ordinary traffic *)
  queue_hi : bytes Queue.t; (* low-delay ToS traffic *)
  mutable busy : bool;
  mutable epoch : int;
  mutable tx_frames : int;
  mutable tx_bytes : int;
  mutable delivered_frames : int;
  mutable drops_queue : int;
  mutable drops_loss : int;
  mutable drops_down : int;
  mutable drops_mtu : int;
}

type link = {
  id : link_id;
  prof : profile;
  a : node_id * iface;
  b : node_id * iface;
  mutable up : bool;
  dirs : direction array; (* 0: a->b, 1: b->a *)
  rng : Stdext.Rng.t;
  mutable tap : (dir:int -> bytes -> unit) option;
      (* Observes every frame at transmission completion — the sender's
         wire, before the loss draw — for pcap capture. *)
}

type node = {
  name : string;
  mutable node_up : bool;
  mutable handler : (iface:iface -> bytes -> unit) option;
  mutable iface_arr : (link_id * int) array; (* iface -> link, side *)
  mutable n_ifaces : int;
}

type t = {
  eng : Engine.t;
  mutable nodes : node array;
  mutable n_nodes : int;
  mutable links : link array;
  mutable n_links : int;
  rng : Stdext.Rng.t;
  mutable default_handler :
    (node:node_id -> iface:iface -> bytes -> unit) option;
      (* Fallback receive path for nodes with no per-node handler: one
         shared closure serves an arbitrary population of cheap hosts
         (E17's pooled endpoints), instead of a closure web per node. *)
}

let create ?(seed = 42) eng =
  { eng; nodes = [||]; n_nodes = 0; links = [||]; n_links = 0;
    rng = Stdext.Rng.create seed; default_handler = None }

let engine t = t.eng

let add_node t name =
  let n =
    { name; node_up = true; handler = None; iface_arr = [||];
      n_ifaces = 0 }
  in
  if t.n_nodes = Array.length t.nodes then begin
    let cap = if t.n_nodes = 0 then 8 else t.n_nodes * 2 in
    let arr = Array.make cap n in
    Array.blit t.nodes 0 arr 0 t.n_nodes;
    t.nodes <- arr
  end;
  t.nodes.(t.n_nodes) <- n;
  t.n_nodes <- t.n_nodes + 1;
  t.n_nodes - 1

let node_count t = t.n_nodes

let node t id =
  if id < 0 || id >= t.n_nodes then invalid_arg "Netsim: bad node id";
  t.nodes.(id)
[@@fastpath]

let node_name t id = (node t id).name

let new_direction () =
  {
    queue = Queue.create ();
    queue_hi = Queue.create ();
    busy = false;
    epoch = 0;
    tx_frames = 0;
    tx_bytes = 0;
    delivered_frames = 0;
    drops_queue = 0;
    drops_loss = 0;
    drops_down = 0;
    drops_mtu = 0;
  }

let attach_iface t node_id link_id side =
  let n = node t node_id in
  if n.n_ifaces = Array.length n.iface_arr then begin
    let cap = if n.n_ifaces = 0 then 4 else n.n_ifaces * 2 in
    let arr = Array.make cap (0, 0) in
    Array.blit n.iface_arr 0 arr 0 n.n_ifaces;
    n.iface_arr <- arr
  end;
  n.iface_arr.(n.n_ifaces) <- (link_id, side);
  n.n_ifaces <- n.n_ifaces + 1;
  n.n_ifaces - 1

let add_link t prof na nb =
  if na = nb then invalid_arg "Netsim.add_link: self-link";
  ignore (node t na);
  ignore (node t nb);
  let id = t.n_links in
  let ia = attach_iface t na id 0 in
  let ib = attach_iface t nb id 1 in
  let l =
    {
      id;
      prof;
      a = (na, ia);
      b = (nb, ib);
      up = true;
      dirs = [| new_direction (); new_direction () |];
      rng = Stdext.Rng.split t.rng;
      tap = None;
    }
  in
  if t.n_links = Array.length t.links then begin
    let cap = if t.n_links = 0 then 8 else t.n_links * 2 in
    let arr = Array.make cap l in
    Array.blit t.links 0 arr 0 t.n_links;
    t.links <- arr
  end;
  t.links.(t.n_links) <- l;
  t.n_links <- t.n_links + 1;
  id

let link_count t = t.n_links

let link t id =
  if id < 0 || id >= t.n_links then invalid_arg "Netsim: bad link id";
  t.links.(id)
[@@fastpath]

let iface_count t nid = (node t nid).n_ifaces

let iface_entry t nid i =
  let n = node t nid in
  if i < 0 || i >= n.n_ifaces then invalid_arg "Netsim: bad iface";
  n.iface_arr.(i)
[@@fastpath]

let iface_link t nid i = fst (iface_entry t nid i) [@@fastpath]

let iface_mtu t nid i = (link t (iface_link t nid i)).prof.mtu [@@fastpath]

let peer t nid i =
  let lid, side = iface_entry t nid i in
  let l = link t lid in
  if side = 0 then l.b else l.a

let endpoints t lid =
  let l = link t lid in
  (l.a, l.b)

let set_handler t nid f = (node t nid).handler <- Some f
let set_default_handler t f = t.default_handler <- f

let link_between t na nb =
  let rec scan i =
    if i >= t.n_links then None
    else
      let l = t.links.(i) in
      let fa, _ = l.a and fb, _ = l.b in
      if (fa = na && fb = nb) || (fa = nb && fb = na) then Some l.id
      else scan (i + 1)
  in
  scan 0

(* Transmission time for [len] bytes on the link, at least 1 us. *)
let tx_time prof len =
  let bits = len * 8 in
  let us = bits * 1_000_000 / prof.bandwidth_bps in
  if us < 1 then 1 else us

let deliver t l dir_idx frame =
  let dst, dst_iface = if dir_idx = 0 then l.b else l.a in
  let dir = l.dirs.(dir_idx) in
  let n = node t dst in
  if n.node_up then begin
    dir.delivered_frames <- dir.delivered_frames + 1;
    if Trace.want Trace.Cls.link then
      Trace.emit
        (Trace.Event.Link_deliver
           { link = l.id; dir = dir_idx; len = Bytes.length frame });
    match n.handler with
    | Some h -> h ~iface:dst_iface frame
    | None -> (
        match t.default_handler with
        | Some h -> h ~node:dst ~iface:dst_iface frame
        | None -> ())
  end

let rec start_tx t l dir_idx =
  let dir = l.dirs.(dir_idx) in
  let src = if Queue.is_empty dir.queue_hi then dir.queue else dir.queue_hi in
  if (not dir.busy) && (not (Queue.is_empty src)) && l.up then begin
    dir.busy <- true;
    let frame = Queue.peek src in
    let len = Bytes.length frame in
    let epoch = dir.epoch in
    Engine.after t.eng (tx_time l.prof len) (fun () ->
        if dir.epoch = epoch && l.up then begin
          ignore (Queue.pop src);
          dir.busy <- false;
          dir.tx_frames <- dir.tx_frames + 1;
          dir.tx_bytes <- dir.tx_bytes + len;
          if Trace.want Trace.Cls.link then
            Trace.emit
              (Trace.Event.Link_dequeue { link = l.id; dir = dir_idx; len });
          (* The tap sees the sender's wire: everything transmitted,
             including frames the loss draw is about to destroy. *)
          (match l.tap with
          | Some f -> f ~dir:dir_idx frame
          | None -> ());
          if Stdext.Rng.bool l.rng l.prof.loss then begin
            dir.drops_loss <- dir.drops_loss + 1;
            if Trace.want Trace.Cls.link then
              Trace.emit
                (Trace.Event.Link_drop
                   { link = l.id; dir = dir_idx; len;
                     reason = Trace.Event.Link_loss })
          end
          else begin
            let jitter =
              if l.prof.jitter_us = 0 then 0
              else Stdext.Rng.int l.rng (l.prof.jitter_us + 1)
            in
            Engine.after t.eng (l.prof.delay_us + jitter) (fun () ->
                if dir.epoch = epoch && l.up then deliver t l dir_idx frame)
          end;
          start_tx t l dir_idx
        end)
  end

let send t nid ?(priority = false) ~iface frame =
  let lid, side = iface_entry t nid iface in
  let l = link t lid in
  let dir = l.dirs.(side) in
  let n = node t nid in
  let drop reason =
    if Trace.want Trace.Cls.link then
      Trace.emit
        (Trace.Event.Link_drop
           { link = lid; dir = side; len = Bytes.length frame; reason })
  in
  if (not n.node_up) || not l.up then begin
    dir.drops_down <- dir.drops_down + 1;
    drop Trace.Event.Link_down;
    false
  end
  else if Bytes.length frame > l.prof.mtu then begin
    dir.drops_mtu <- dir.drops_mtu + 1;
    drop Trace.Event.Link_mtu;
    false
  end
  else if
    Queue.length dir.queue + Queue.length dir.queue_hi
    >= l.prof.queue_capacity
  then begin
    dir.drops_queue <- dir.drops_queue + 1;
    drop Trace.Event.Queue_full;
    false
  end
  else begin
    Queue.push frame (if priority then dir.queue_hi else dir.queue);
    if Trace.want Trace.Cls.link then
      Trace.emit
        (Trace.Event.Link_enqueue
           { link = lid; dir = side; len = Bytes.length frame; priority });
    start_tx t l side;
    true
  end

let flush_direction dir =
  dir.epoch <- dir.epoch + 1;
  dir.busy <- false;
  Queue.clear dir.queue;
  Queue.clear dir.queue_hi

let set_link_up t lid up =
  let l = link t lid in
  if l.up <> up then begin
    l.up <- up;
    if Trace.want Trace.Cls.fault then
      Trace.emit (Trace.Event.Fault_link { link = lid; up });
    if not up then Array.iter flush_direction l.dirs
    else
      (* Restart transmitters in case something was queued while down
         (cannot happen today, but keeps the invariant local). *)
      Array.iteri (fun i _ -> start_tx t l i) l.dirs
  end

let link_is_up t lid = (link t lid).up

let set_node_up t nid up =
  let n = node t nid in
  if n.node_up <> up then begin
    n.node_up <- up;
    if Trace.want Trace.Cls.fault then
      Trace.emit (Trace.Event.Fault_node { node = nid; up })
  end

let node_is_up t nid = (node t nid).node_up

let dir_stats d =
  {
    tx_frames = d.tx_frames;
    tx_bytes = d.tx_bytes;
    delivered_frames = d.delivered_frames;
    drops_queue = d.drops_queue;
    drops_loss = d.drops_loss;
    drops_down = d.drops_down;
    drops_mtu = d.drops_mtu;
  }

let link_stats t lid =
  let l = link t lid in
  add_stats (dir_stats l.dirs.(0)) (dir_stats l.dirs.(1))

let total_stats t =
  let acc = ref zero_stats in
  for i = 0 to t.n_links - 1 do
    acc := add_stats !acc (link_stats t i)
  done;
  !acc

let set_link_tap t lid tap = (link t lid).tap <- tap

let stats_items (s : link_stats) =
  [ ("tx_frames", Trace.Metrics.Int s.tx_frames);
    ("tx_bytes", Trace.Metrics.Int s.tx_bytes);
    ("delivered_frames", Trace.Metrics.Int s.delivered_frames);
    ("drops_queue", Trace.Metrics.Int s.drops_queue);
    ("drops_loss", Trace.Metrics.Int s.drops_loss);
    ("drops_down", Trace.Metrics.Int s.drops_down);
    ("drops_mtu", Trace.Metrics.Int s.drops_mtu) ]

let link_metrics_items t lid () = stats_items (link_stats t lid)
let total_metrics_items t () = stats_items (total_stats t)

let queue_length t lid =
  let l = link t lid in
  Queue.length l.dirs.(0).queue
  + Queue.length l.dirs.(0).queue_hi
  + Queue.length l.dirs.(1).queue
  + Queue.length l.dirs.(1).queue_hi
