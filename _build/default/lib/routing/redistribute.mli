(** Border-gateway route redistribution between a distance-vector and a
    link-state instance running on the same gateway.

    The paper's goal 4 is distributed management: regions operated by
    different organizations — potentially with entirely different interior
    routing — still form one internet.  A border gateway participates in
    both regions and periodically leaks each side's reachable prefixes
    into the other, with a metric translation.  Split-origin tracking
    prevents routes from echoing back into the protocol they came from. *)

type t

val create :
  ?period_us:int ->
  ?metric_cap:int ->
  Engine.t ->
  dv:Dv.t ->
  ls:Ls.t ->
  t
(** Start redistributing every [period_us] (default 1 s).  DV metrics
    leaking into LS are carried as stub costs; LS metrics leaking into DV
    are capped at [metric_cap] (default 8) to respect RIP's small
    infinity. *)

val stop : t -> unit

val exchanges : t -> int
(** Redistribution rounds performed. *)
