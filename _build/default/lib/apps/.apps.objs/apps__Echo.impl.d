lib/apps/echo.ml: Bytes Engine Ip Stdext Tcp
