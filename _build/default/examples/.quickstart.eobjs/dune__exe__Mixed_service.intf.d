examples/mixed_service.mli:
