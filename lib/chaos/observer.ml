module Addr = Packet.Addr

type record = {
  fault : Fault.t;
  at_us : int;
  mutable reconverged_at_us : int option;
  mutable blackholed : int;
}

type t = {
  o_net : Netsim.t;
  o_eng : Engine.t;
  o_poll_us : int;
  o_stacks : Ip.Stack.t list;
  o_stack_of : Netsim.node_id -> Ip.Stack.t option;
  o_probes : (Ip.Stack.t * Addr.t) list;
  mutable o_records : record list; (* newest first *)
  mutable o_open : (record * int) list; (* record, drop snapshot *)
  mutable o_running : bool;
}

let create ?(poll_us = 10_000) ~net ~stacks ~stack_of ~probes () =
  {
    o_net = net;
    o_eng = Netsim.engine net;
    o_poll_us = poll_us;
    o_stacks = stacks;
    o_stack_of = stack_of;
    o_probes = probes;
    o_records = [];
    o_open = [];
    o_running = false;
  }

(* Datagrams black-holed by a fault are the ones the network itself
   killed for want of a path: no matching route, TTL run out in a
   transient loop, or sent into a dead link/node.  Queue and loss drops
   are congestion, not survivability, and are excluded. *)
let drops_total t =
  let stack_drops =
    List.fold_left
      (fun acc s ->
        let c = Ip.Stack.counters s in
        acc + c.Ip.Stack.dropped_no_route + c.Ip.Stack.dropped_ttl
        + c.Ip.Stack.dropped_not_forwarding)
      0 t.o_stacks
  in
  stack_drops + (Netsim.total_stats t.o_net).Netsim.drops_down

(* God's-eye path check: follow each hop's *actual* routing table over
   *actually alive* links and nodes.  No packets are sent, so observing
   never perturbs the simulation it measures. *)
let path_ok t src dst =
  let net = t.o_net in
  let rec walk stack hops =
    hops > 0
    && Netsim.node_is_up net (Ip.Stack.node_id stack)
    &&
    if Ip.Stack.has_addr stack dst then true
    else
      match Ip.Route_table.lookup (Ip.Stack.table stack) dst with
      | None -> false
      | Some r -> (
          let me = Ip.Stack.node_id stack in
          let link = Netsim.iface_link net me r.Ip.Route_table.iface in
          Netsim.link_is_up net link
          &&
          let next_node, _ = Netsim.peer net me r.Ip.Route_table.iface in
          Netsim.node_is_up net next_node
          &&
          match t.o_stack_of next_node with
          | None -> false
          | Some next -> walk next (hops - 1))
  in
  walk src 32

let converged t =
  List.for_all (fun (src, dst) -> path_ok t src dst) t.o_probes

let note_fault t fault =
  let r =
    {
      fault;
      at_us = Engine.now t.o_eng;
      reconverged_at_us = None;
      blackholed = 0;
    }
  in
  t.o_records <- r :: t.o_records;
  t.o_open <- (r, drops_total t) :: t.o_open

let poll t =
  if t.o_open <> [] && converged t then begin
    let now = Engine.now t.o_eng in
    let drops = drops_total t in
    List.iter
      (fun (r, snapshot) ->
        r.reconverged_at_us <- Some now;
        r.blackholed <- drops - snapshot)
      t.o_open;
    t.o_open <- []
  end

let start t =
  if not t.o_running then begin
    t.o_running <- true;
    let rec tick () =
      if t.o_running then begin
        poll t;
        Engine.after t.o_eng t.o_poll_us tick
      end
    in
    Engine.after t.o_eng t.o_poll_us tick
  end

let stop t =
  poll t;
  t.o_running <- false

let records t = List.rev t.o_records

let record_to_json r =
  Trace.Json.Obj
    [ ("fault", Trace.Json.Str (Fault.to_string r.fault));
      ("at_us", Trace.Json.Int r.at_us);
      ( "reconverged_at_us",
        match r.reconverged_at_us with
        | Some v -> Trace.Json.Int v
        | None -> Trace.Json.Null );
      ( "reconvergence_s",
        match r.reconverged_at_us with
        | Some v -> Trace.Json.Float (float_of_int (v - r.at_us) /. 1e6)
        | None -> Trace.Json.Null );
      ("blackholed", Trace.Json.Int r.blackholed) ]
