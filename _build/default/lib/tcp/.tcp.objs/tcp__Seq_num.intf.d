lib/tcp/seq_num.mli:
