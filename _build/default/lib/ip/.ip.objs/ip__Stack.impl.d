lib/ip/stack.ml: Accounting Bytes Engine Hashtbl List Netsim Packet Reassembly Route_table
