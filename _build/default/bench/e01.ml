(* E1 — Survivability (Clark §3, goal 1).

   A ring-plus-chords mesh of six gateways carries three TCP conversations
   while we cut 0..4 links mid-transfer.  The datagram architecture with
   dynamic routing (either distance-vector or link-state) masks every
   failure: the transport-layer conversations continue without reset.  The
   virtual-circuit baseline, whose per-call state lives in the switches on
   the original path, loses every call that crossed a dead link. *)

open Catenet

let total_bytes = 400_000
let transfers = 3

(* Gateways in a ring 0-1-2-3-4-5 with chords (0,3) (1,4) (2,5); host h1 on
   g0, h2 on g3.  [failures] is a prefix of a list chosen so the graph
   stays connected even with all four links gone. *)
let edges = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0); (0, 3); (1, 4); (2, 5) ]
let fail_order = [ (0, 3); (0, 1); (2, 3); (1, 4) ]

let profile = Netsim.profile "trunk" ~bandwidth_bps:1_536_000 ~delay_us:5_000

(* --- datagram architecture -------------------------------------------------- *)

let run_ip routing ~kills =
  let dv_config =
    {
      Routing.Dv.default_config with
      Routing.Dv.period_us = 1_000_000;
      timeout_us = 3_500_000;
      gc_us = 2_000_000;
      carrier_poll_us = 200_000;
    }
  in
  let ls_config =
    {
      Routing.Ls.default_config with
      Routing.Ls.hello_us = 300_000;
      refresh_us = 5_000_000;
    }
  in
  let t = Internet.create ~routing ~dv_config ~ls_config () in
  let gws = Array.init 6 (fun i -> Internet.add_gateway t (Printf.sprintf "g%d" i)) in
  let h1 = Internet.add_host t "h1" in
  let h2 = Internet.add_host t "h2" in
  let links =
    List.map
      (fun (a, b) ->
        ((a, b), Internet.connect t profile gws.(a).Internet.g_node gws.(b).Internet.g_node))
      edges
  in
  ignore (Internet.connect t profile h1.Internet.h_node gws.(0).Internet.g_node);
  ignore (Internet.connect t profile h2.Internet.h_node gws.(3).Internet.g_node);
  Internet.start t;
  Internet.run_for t 6.0;
  (* Three concurrent transfers on distinct ports. *)
  let seed = 5 in
  let runs =
    List.init transfers (fun i ->
        let port = 1000 + i in
        let server = Apps.Bulk.serve h2.Internet.h_tcp ~port ~seed in
        let sender =
          Apps.Bulk.start h1.Internet.h_tcp
            ~dst:(Internet.addr_of t h2.Internet.h_node)
            ~dst_port:port ~seed ~total:total_bytes ()
        in
        (server, sender))
  in
  (* Failure schedule: one cut every 3 seconds starting at t+2s. *)
  List.iteri
    (fun i edge ->
      if i < kills then
        Engine.after (Internet.engine t)
          (Engine.sec (2.0 +. (3.0 *. float_of_int i)))
          (fun () -> Internet.fail_link t (List.assoc edge links)))
    fail_order;
  Internet.run_for t 240.0;
  let survived =
    List.length
      (List.filter
         (fun (server, sender) ->
           Apps.Bulk.finished sender
           && Apps.Bulk.failed sender = None
           &&
           match Apps.Bulk.transfers server with
           | [ tr ] -> tr.Apps.Bulk.intact && tr.Apps.Bulk.received = total_bytes
           | _ -> false)
         runs)
  in
  survived

(* --- virtual-circuit baseline ------------------------------------------------ *)

let run_vc ~kills =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:5 eng in
  let gws = Array.init 6 (fun i -> Netsim.add_node net (Printf.sprintf "s%d" i)) in
  let h1 = Netsim.add_node net "h1" in
  let h2 = Netsim.add_node net "h2" in
  let links =
    List.map
      (fun (a, b) -> ((a, b), Netsim.add_link net profile gws.(a) gws.(b)))
      edges
  in
  ignore (Netsim.add_link net profile h1 gws.(0));
  ignore (Netsim.add_link net profile h2 gws.(3));
  let fabric = Vc.create net in
  Array.iter (Vc.attach fabric) gws;
  Vc.attach fabric h1;
  Vc.attach fabric h2;
  Vc.listen fabric h2 (fun circuit -> Vc.on_data circuit (fun _ -> ()));
  let calls =
    List.init transfers (fun _ ->
        let c = Vc.call fabric ~src:h1 ~dst:h2 () in
        (* A steady trickle of data keeps the call honest. *)
        let rec chat () =
          if Vc.is_open c then begin
            ignore (Vc.send c (Bytes.make 128 'c'));
            Engine.after eng 50_000 chat
          end
        in
        Engine.after eng 300_000 chat;
        c)
  in
  List.iteri
    (fun i edge ->
      if i < kills then
        Engine.schedule eng
          ~at:(Engine.sec (2.0 +. (3.0 *. float_of_int i)))
          (fun () -> Netsim.set_link_up net (List.assoc edge links) false))
    fail_order;
  Engine.run ~until:(Engine.sec 60.0) eng;
  List.length (List.filter Vc.is_open calls)

let run () =
  Util.banner "E1" "Survivability under link failures"
    "datagrams + dynamic routing mask gateway/link loss; circuits do not";
  let rows =
    List.map
      (fun kills ->
        let dv = run_ip Internet.Distance_vector ~kills in
        let ls = run_ip Internet.Link_state ~kills in
        let vc = run_vc ~kills in
        [
          string_of_int kills;
          Printf.sprintf "%d/%d" dv transfers;
          Printf.sprintf "%d/%d" ls transfers;
          Printf.sprintf "%d/%d" vc transfers;
        ])
      [ 0; 1; 2; 3; 4 ]
  in
  Util.table
    [ "links cut"; "tcp+dv survived"; "tcp+ls survived"; "vc calls survived" ]
    rows;
  Util.note
    "every TCP conversation outlives every failure (the mesh stays \
     connected); a VC call dies with the first link on its path"
