(** The name/service layer (E21): what the address-only 1988
    architecture had to bolt on to be usable.

    - {!Wire} — 20-byte fixed-width name protocol (lint-checked layout)
    - {!Cache} — bounded LRU+TTL resolver soft state
    - {!Server} — authoritative endpoints (zones are hard state)
    - {!Resolver} — caching recursion, single-flight, crash amnesia
    - {!Service} — anycast replicas with health-probed failover *)

module Wire = Names_wire
module Cache = Cache
module Server = Server
module Service = Service
module Resolver = Resolver
