(* Sender-side SACK scoreboard (RFC 2018 §5): the ranges above snd_una the
   peer has reported holding.  Blocks are kept sorted by left edge and
   disjoint (right edge exclusive); all edges live within one send window
   of snd_una, so the half-space comparisons of [Seq_num] are sound. *)

module Seq = Seq_num

type t = { mutable blocks : (int * int) list }

let create () = { blocks = [] }
let reset t = t.blocks <- []
let blocks t = t.blocks
let block_count t = List.length t.blocks

let sacked_bytes t =
  List.fold_left (fun acc (l, r) -> acc + Seq.diff r l) 0 t.blocks

(* Insert one (l, r) range, merging overlapping or adjacent blocks. *)
let insert t l r =
  let rec ins = function
    | [] -> [ (l, r) ]
    | (bl, br) :: rest when Seq.lt br l -> (bl, br) :: ins rest
    | (bl, br) :: rest when Seq.lt r bl -> (l, r) :: (bl, br) :: rest
    | (bl, br) :: rest ->
        (* Overlap or touch: grow the incoming range and keep merging. *)
        let l = if Seq.lt bl l then bl else l in
        let r = if Seq.gt br r then br else r in
        let rec absorb l r = function
          | (nl, nr) :: rest when Seq.le nl r ->
              absorb l (if Seq.gt nr r then nr else r) rest
          | rest -> (l, r) :: rest
        in
        absorb l r rest
  in
  t.blocks <- ins t.blocks

(* Record the blocks carried by one ACK.  A block is credible only when it
   lies strictly above the cumulative ACK and at or below the highest
   sequence ever sent (RFC 2018 §5.1); anything else is ignored, which
   also shields the scoreboard from forged SACK ranges. *)
let record t ~una ~high sacks =
  List.iter
    (fun (l, r) ->
      if Seq.lt l r && Seq.gt l una && Seq.le r high then insert t l r)
    sacks

(* The cumulative ACK advanced to [seq]: drop everything it covers. *)
let clear_below t seq =
  t.blocks <-
    List.filter_map
      (fun (l, r) ->
        if Seq.le r seq then None
        else if Seq.lt l seq then Some (seq, r)
        else Some (l, r))
      t.blocks

(* If [seq] sits inside a sacked block, the right edge to skip to. *)
let sacked_to t seq =
  let rec find = function
    | [] -> None
    | (l, r) :: _ when Seq.le l seq && Seq.lt seq r -> Some r
    | (l, _) :: _ when Seq.gt l seq -> None
    | _ :: rest -> find rest
  in
  find t.blocks

(* Left edge of the first sacked block strictly after [seq], bounding how
   far a retransmission starting at [seq] may run. *)
let next_left t seq =
  let rec find = function
    | [] -> None
    | (l, _) :: _ when Seq.gt l seq -> Some l
    | _ :: rest -> find rest
  in
  find t.blocks
