lib/packet/checksum.ml: Bytes Fun Int32
