(** Interior routing protocols: {!Dv} (distance vector) and {!Ls}
    (link state), with shared wire formats in {!Rt_msg}. *)

module Rt_msg = Rt_msg
module Dv = Dv
module Ls = Ls
module Redistribute = Redistribute
