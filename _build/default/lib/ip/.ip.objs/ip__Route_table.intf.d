lib/ip/route_table.mli: Format Netsim Packet
