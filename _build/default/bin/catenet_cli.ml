(* catenet — a command-line playground for the simulated internet.

   Builds a linear catenet of [--hops] gateway hops (per-link parameters
   configurable), then runs one of the classic tools across it:

     catenet ping       ICMP echo round trips
     catenet trace      TTL-sweep traceroute
     catenet transfer   bulk TCP transfer with live congestion stats
     catenet voice      CBR datagram stream quality report *)

open Catenet
open Cmdliner

type shape = {
  sh_hops : int;
  sh_bandwidth : int;
  sh_delay_ms : float;
  sh_loss : float;
  sh_mtu : int;
}

let build shape =
  let t = Internet.create ~routing:Internet.Static () in
  let src = Internet.add_host t "src" in
  let dst = Internet.add_host t "dst" in
  let gws =
    List.init (max 1 shape.sh_hops - 1) (fun i ->
        Internet.add_gateway t (Printf.sprintf "g%d" (i + 1)))
  in
  let profile =
    Netsim.profile "leg" ~bandwidth_bps:shape.sh_bandwidth
      ~delay_us:(int_of_float (shape.sh_delay_ms *. 1e3))
      ~loss:shape.sh_loss ~mtu:shape.sh_mtu
  in
  let nodes =
    [ src.Internet.h_node ]
    @ List.map (fun g -> g.Internet.g_node) gws
    @ [ dst.Internet.h_node ]
  in
  let rec wire = function
    | a :: (b :: _ as rest) ->
        ignore (Internet.connect t profile a b);
        wire rest
    | _ -> ()
  in
  wire nodes;
  Internet.start t;
  Printf.printf
    "catenet: src -[%d x (%.1f kb/s, %.1f ms, mtu %d, loss %.1f%%)]- dst\n\n"
    shape.sh_hops
    (float_of_int shape.sh_bandwidth /. 1e3)
    shape.sh_delay_ms shape.sh_mtu (shape.sh_loss *. 100.0);
  (t, src, dst)

(* --- commands -------------------------------------------------------------- *)

let do_ping shape count =
  let t, src, dst = build shape in
  let samples =
    Internet.ping t ~from:src
      (Internet.addr_of t dst.Internet.h_node)
      ~count ~interval_us:250_000
  in
  Internet.run_for t (float_of_int count *. 0.25 +. 5.0);
  let n = Stdext.Stats.Samples.count samples in
  Printf.printf "%d/%d replies" n count;
  if n > 0 then
    Printf.printf "; rtt min/median/p95 = %.1f / %.1f / %.1f ms"
      (Stdext.Stats.Samples.min samples *. 1e3)
      (Stdext.Stats.Samples.median samples *. 1e3)
      (Stdext.Stats.Samples.percentile samples 95.0 *. 1e3);
  print_newline ()

let do_trace shape =
  let t, src, dst = build shape in
  let reports =
    Internet.traceroute t ~from:src
      (Internet.addr_of t dst.Internet.h_node)
      ~max_ttl:(shape.sh_hops + 3) ()
  in
  Internet.run_for t 30.0;
  List.iter
    (fun (r : Internet.hop_report) ->
      Printf.printf "%2d  %-16s %s%s\n" r.Internet.hop_ttl
        (match r.Internet.hop_addr with
        | Some a -> Packet.Addr.to_string a
        | None -> "*")
        (match r.Internet.hop_rtt with
        | Some s -> Printf.sprintf "%.2f ms" (s *. 1e3)
        | None -> "-")
        (if r.Internet.hop_reached then "  <- destination" else ""))
    !reports

let do_transfer shape size cc =
  let cc_algo =
    match cc with
    | "none" -> Tcp.No_cc
    | "tahoe" -> Tcp.Tahoe
    | _ -> Tcp.Reno
  in
  let t, src, dst = build shape in
  let seed = 11 in
  let server = Apps.Bulk.serve dst.Internet.h_tcp ~port:21 ~seed in
  let sender =
    Apps.Bulk.start src.Internet.h_tcp
      ~config:{ Tcp.default_config with Tcp.cc = cc_algo }
      ~dst:(Internet.addr_of t dst.Internet.h_node)
      ~dst_port:21 ~seed ~total:size ()
  in
  let conn = Apps.Bulk.conn sender in
  let eng = Internet.engine t in
  let rec report () =
    if not (Apps.Bulk.finished sender) then begin
      Printf.printf "t=%5.1fs  %8d bytes acked  cwnd=%6d  srtt=%s\n"
        (Engine.to_sec (Engine.now eng))
        (match Apps.Bulk.transfers server with
        | [ tr ] -> tr.Apps.Bulk.received
        | _ -> 0)
        (Tcp.cwnd conn)
        (match Tcp.srtt_us conn with
        | Some us -> Printf.sprintf "%.1fms" (float_of_int us /. 1e3)
        | None -> "-");
      Engine.after eng (Engine.sec 1.0) report
    end
  in
  Engine.after eng (Engine.sec 1.0) report;
  Internet.run_for t 600.0;
  (match Apps.Bulk.transfers server with
  | [ tr ] ->
      Printf.printf "\n%d/%d bytes, intact=%b, cc=%s\n" tr.Apps.Bulk.received
        size tr.Apps.Bulk.intact cc
  | _ -> ());
  (match Apps.Bulk.goodput_bps sender with
  | Some g -> Printf.printf "goodput: %.1f kB/s\n" (g /. 1e3)
  | None -> print_endline "did not complete");
  let st = Tcp.stats conn in
  Printf.printf "segments: %d out, %d retransmitted (%d bytes wasted)\n"
    st.Tcp.segs_out st.Tcp.retransmits st.Tcp.bytes_retransmitted

let do_voice shape seconds =
  let t, src, dst = build shape in
  let count = seconds * 50 in
  let sink = Apps.Cbr.sink dst.Internet.h_udp ~port:5004 ~deadline_us:150_000 in
  ignore
    (Apps.Cbr.source src.Internet.h_udp
       ~dst:(Internet.addr_of t dst.Internet.h_node)
       ~dst_port:5004 ~payload_bytes:160 ~period_us:20_000 ~count
       ~tos:Packet.Ipv4.Tos.Low_delay ());
  Internet.run_for t (float_of_int seconds +. 10.0);
  let r = Apps.Cbr.report sink in
  Printf.printf "sent %d voice packets (160 B / 20 ms, low-delay ToS)\n" count;
  Printf.printf "delivered %d, lost %d, late(>150ms) %d => usable %d (%.1f%%)\n"
    r.Apps.Cbr.received r.Apps.Cbr.lost r.Apps.Cbr.deadline_misses
    (r.Apps.Cbr.received - r.Apps.Cbr.deadline_misses)
    (100.0
    *. float_of_int (r.Apps.Cbr.received - r.Apps.Cbr.deadline_misses)
    /. float_of_int count);
  Printf.printf "delay median %.1f ms, p95 %.1f ms, jitter %.1f ms\n"
    (Stdext.Stats.Samples.median r.Apps.Cbr.delay *. 1e3)
    (Stdext.Stats.Samples.percentile r.Apps.Cbr.delay 95.0 *. 1e3)
    (Stdext.Stats.Samples.jitter r.Apps.Cbr.delay *. 1e3)

(* --- cmdliner plumbing ------------------------------------------------------ *)

let shape_term =
  let hops =
    Arg.(value & opt int 3 & info [ "hops" ] ~doc:"Number of links in the path.")
  in
  let bandwidth =
    Arg.(
      value & opt int 1_536_000
      & info [ "bandwidth" ] ~doc:"Per-link bit rate (b/s).")
  in
  let delay =
    Arg.(
      value & opt float 5.0 & info [ "delay" ] ~doc:"Per-link one-way delay (ms).")
  in
  let loss =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~doc:"Per-link loss probability (0.0-1.0).")
  in
  let mtu = Arg.(value & opt int 1500 & info [ "mtu" ] ~doc:"Per-link MTU.") in
  let make sh_hops sh_bandwidth sh_delay_ms sh_loss sh_mtu =
    { sh_hops; sh_bandwidth; sh_delay_ms; sh_loss; sh_mtu }
  in
  Term.(const make $ hops $ bandwidth $ delay $ loss $ mtu)

let ping_cmd =
  let count =
    Arg.(value & opt int 10 & info [ "count"; "c" ] ~doc:"Probes to send.")
  in
  Cmd.v (Cmd.info "ping" ~doc:"ICMP echo across the catenet")
    Term.(const do_ping $ shape_term $ count)

let trace_cmd =
  Cmd.v (Cmd.info "trace" ~doc:"TTL-sweep traceroute")
    Term.(const do_trace $ shape_term)

let transfer_cmd =
  let size =
    Arg.(value & opt int 500_000 & info [ "size" ] ~doc:"Bytes to transfer.")
  in
  let cc =
    Arg.(
      value
      & opt (enum [ ("reno", "reno"); ("tahoe", "tahoe"); ("none", "none") ]) "reno"
      & info [ "cc" ] ~doc:"Congestion control realization.")
  in
  Cmd.v (Cmd.info "transfer" ~doc:"Bulk TCP transfer with live stats")
    Term.(const do_transfer $ shape_term $ size $ cc)

let voice_cmd =
  let seconds =
    Arg.(value & opt int 10 & info [ "seconds" ] ~doc:"Stream duration.")
  in
  Cmd.v (Cmd.info "voice" ~doc:"CBR voice stream quality report")
    Term.(const do_voice $ shape_term $ seconds)

let () =
  let info =
    Cmd.info "catenet" ~version:"1.0"
      ~doc:"Tools over a simulated DARPA-architecture internet"
  in
  exit (Cmd.eval (Cmd.group info [ ping_cmd; trace_cmd; transfer_cmd; voice_cmd ]))
