(** ICMP messages (RFC 792): the error and diagnostic side-channel of the
    internet layer.  Gateways use it to report why a datagram could not be
    delivered; hosts use echo for reachability probing. *)

(** Destination-unreachable codes. *)
type unreach_code =
  | Net_unreachable
  | Host_unreachable
  | Protocol_unreachable
  | Port_unreachable
  | Fragmentation_needed  (** DF set but fragmentation required. *)

val unreach_code_to_int : unreach_code -> int
val unreach_code_of_int : int -> unreach_code option
val pp_unreach_code : Format.formatter -> unreach_code -> unit

type t =
  | Echo_request of { id : int; seq : int; payload : bytes }
  | Echo_reply of { id : int; seq : int; payload : bytes }
  | Dest_unreachable of { code : unreach_code; original : bytes }
      (** [original] is the leading bytes (IP header + 8) of the datagram
          that triggered the error. *)
  | Time_exceeded of { original : bytes }  (** TTL expired in transit. *)

type error = [ `Truncated | `Bad_checksum | `Bad_header of string ]

val pp_error : Format.formatter -> error -> unit

val layout : (string * int * int) list
(** [(field, offset, width)] wire contract, machine-checked by
    catenet-lint; the rest-of-header word is split id/seq as in echo
    messages. *)

val encode : t -> bytes
val decode : bytes -> (t, error) result
val pp : Format.formatter -> t -> unit

val original_of : ip_header:bytes -> bytes
(** Clip a serialized problem datagram to the RFC-mandated quote: its IP
    header plus the first 8 payload bytes. *)
