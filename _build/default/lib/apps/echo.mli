(** Interactive echo over TCP (the remote-login-shaped workload): small
    keystrokes-worth of data on a fixed cadence, echoed by the server,
    with round-trip times recorded at the client.  Nagle is disabled, as
    an interactive application would. *)

val serve : Tcp.t -> port:int -> unit
(** Echo everything back on every accepted connection. *)

type client

val client :
  Tcp.t ->
  dst:Packet.Addr.t ->
  dst_port:int ->
  message_bytes:int ->
  period_us:int ->
  count:int ->
  unit ->
  client

val rtts : client -> Stdext.Stats.Samples.t
(** Round-trip times in seconds, one per completed echo. *)

val completed : client -> int
val failed : client -> bool
