test/test_udp.ml: Alcotest Bytes Char Engine Ip List Netsim Packet Udp
