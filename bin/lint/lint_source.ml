(* Source-level (Parsetree) rules of catenet-lint.

   Rules implemented here:

     wire      - wire modules declare a [layout] table [(field, offset,
                 width)]; every constant byte access in encode/peek/
                 encode_into/patch_* must land on whole fields, tables
                 must be gapless and overlap-free, and encode/decode
                 must touch the same bytes (checksum fields excepted -
                 they are verified by checksum folding, not read back).
     fastpath  - [@@fastpath]-tagged functions may not syntactically
                 allocate nor call untagged module-level functions.
                 [@fastpath.exempt] on an expression waives the rule for
                 that subtree; the then-branch of [if Trace.want ...]
                 guards is waived automatically (tracing allocates only
                 when the operator enabled it).
     obs       - every [drop_reason] constructor maps (via
                 [drop_reason_counter]) to a metrics key that is
                 registered somewhere, and is constructed at >= 1 site
                 outside its defining module; every [dropped_*]/
                 [drops_*] counter bump sits adjacent to a trace
                 emission in its statement sequence.
     mli       - every library module has an interface file.

   The collection pass also records [@@fastpath] spans for the
   cmt-based rules in {!Lint_typed}. *)

open Parsetree
open Lint_common

(* ---------------------------------------------------------------- *)
(* Per-file info                                                     *)

type file_info = {
  fi_path : string;
  fi_structure : structure;
  fi_aliases : (string, string) Hashtbl.t;
      (* module X = A.B.C  =>  "X" -> "C" *)
  fi_toplevel : (string, unit) Hashtbl.t;
  fi_tagged : (string, Location.t) Hashtbl.t;
}

type ctx = {
  files : file_info list;
  tagged_names : (string, unit) Hashtbl.t;
  (* basename -> (start_line, end_line) list of [@@fastpath] bindings *)
  fastpath_spans : (string, (int * int) list) Hashtbl.t;
}

let pattern_names pat =
  let rec go acc p =
    match p.ppat_desc with
    | Ppat_var n -> n.txt :: acc
    | Ppat_constraint (p, _) | Ppat_alias (p, _) -> go acc p
    | Ppat_tuple ps -> List.fold_left go acc ps
    | _ -> acc
  in
  go [] pat

let collect_file path structure =
  let fi =
    {
      fi_path = path;
      fi_structure = structure;
      fi_aliases = Hashtbl.create 8;
      fi_toplevel = Hashtbl.create 32;
      fi_tagged = Hashtbl.create 8;
    }
  in
  let rec do_structure items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let names = pattern_names vb.pvb_pat in
                List.iter
                  (fun n ->
                    Hashtbl.replace fi.fi_toplevel n ();
                    if has_attr "fastpath" vb.pvb_attributes then
                      Hashtbl.replace fi.fi_tagged n vb.pvb_loc)
                  names)
              vbs
        | Pstr_module mb -> do_module_binding mb
        | Pstr_recmodule mbs -> List.iter do_module_binding mbs
        | _ -> ())
      items
  and do_module_binding mb =
    let rec do_mexpr me =
      match me.pmod_desc with
      | Pmod_ident lid -> (
          match mb.pmb_name.txt with
          | Some name ->
              Hashtbl.replace fi.fi_aliases name (last_exn (flatten_lid lid.txt))
          | None -> ())
      | Pmod_structure items -> do_structure items
      | Pmod_constraint (me, _) -> do_mexpr me
      | _ -> ()
    in
    do_mexpr mb.pmb_expr
  in
  do_structure structure;
  fi

let make_ctx files =
  let ctx =
    { files; tagged_names = Hashtbl.create 64; fastpath_spans = Hashtbl.create 16 }
  in
  List.iter
    (fun fi ->
      Hashtbl.iter
        (fun name (loc : Location.t) ->
          Hashtbl.replace ctx.tagged_names name ();
          let base = Filename.basename fi.fi_path in
          let span = (loc.loc_start.pos_lnum, loc.loc_end.pos_lnum) in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt ctx.fastpath_spans base)
          in
          Hashtbl.replace ctx.fastpath_spans base (span :: prev))
        fi.fi_tagged)
    files;
  ctx

(* ---------------------------------------------------------------- *)
(* Rule: mli hygiene                                                 *)

let check_mli fi =
  if not (Sys.file_exists (fi.fi_path ^ "i")) then
    report ~file:fi.fi_path ~line:1 ~rule:"mli"
      (Printf.sprintf "missing interface file (%si)"
         (Filename.basename fi.fi_path))

(* ---------------------------------------------------------------- *)
(* Rule: wire layout                                                 *)

type layout = { l_name : string; l_fields : (string * int * int) list }

let layout_extent l =
  List.fold_left (fun m (_, o, w) -> max m (o + w)) 0 l.l_fields

let extract_layouts fi =
  List.filter_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.find_map
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var n
                when n.txt = "layout"
                     || Filename.check_suffix n.txt "_layout" -> (
                  let rec unconstraint e =
                    match e.pexp_desc with
                    | Pexp_constraint (e, _) -> unconstraint e
                    | _ -> e
                  in
                  let rec list_elems e =
                    match (unconstraint e).pexp_desc with
                    | Pexp_construct ({ txt = Longident.Lident "::"; _ },
                                      Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ })
                      ->
                        hd :: list_elems tl
                    | _ -> []
                  in
                  let fields =
                    List.filter_map
                      (fun e ->
                        match (unconstraint e).pexp_desc with
                        | Pexp_tuple [ name; off; width ] -> (
                            match
                              (string_constant name, int_constant off,
                               int_constant width)
                            with
                            | Some n, Some o, Some w -> Some (n, o, w)
                            | _ -> None)
                        | _ -> None)
                      (list_elems (unconstraint vb.pvb_expr))
                  in
                  match fields with
                  | [] -> None
                  | fields ->
                      Some ({ l_name = n.txt; l_fields = fields }, vb.pvb_loc))
              | _ -> None)
            vbs
      | _ -> None)
    fi.fi_structure

let check_layout_table fi (l, loc) =
  let sorted =
    List.sort (fun (_, a, _) (_, b, _) -> compare a b) l.l_fields
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (n, _, w) ->
      if Hashtbl.mem seen n then
        report_loc ~rule:"wire" loc
          (Printf.sprintf "layout %s: duplicate field name %s" l.l_name n);
      Hashtbl.replace seen n ();
      if w <= 0 then
        report_loc ~rule:"wire" loc
          (Printf.sprintf "layout %s: field %s has non-positive width" l.l_name
             n))
    sorted;
  ignore
    (List.fold_left
       (fun pos (n, o, w) ->
         if o < pos then
           report_loc ~rule:"wire" loc
             (Printf.sprintf "layout %s: field %s (offset %d) overlaps previous field"
                l.l_name n o)
         else if o > pos then
           report_loc ~rule:"wire" loc
             (Printf.sprintf
                "layout %s: gap of %d byte(s) before field %s (offset %d)"
                l.l_name (o - pos) n o);
         max pos (o + w))
       0 sorted);
  ignore fi

(* -- byte-access extraction -------------------------------------- *)

type cursor = Known of int | Unknown

type access = { ac_off : int; ac_width : int; ac_fn : string; ac_loc : Location.t }

let width_of_opname name =
  match name with
  | "u8" | "set_uint8" | "get_uint8" -> Some 1
  | "u16" | "set_uint16_be" | "get_uint16_be" | "set_uint16_le"
  | "get_uint16_le" ->
      Some 2
  | "u32" | "u32_of_int" | "set_int32_be" | "get_int32_be" | "set_int32_le"
  | "get_int32_le" ->
      Some 4
  | _ -> None

let is_cursor_style name =
  match name with "u8" | "u16" | "u32" | "u32_of_int" -> true | _ -> false

(* Constant-offset expression: [12], [pos], [pos + 12], [12 + pos].  A
   leading parameter named [pos] counts as base offset zero, which keeps
   the encode_into/peek accessors checkable. *)
let rec const_offset e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, _)) -> int_of_string_opt s
  | Pexp_ident { txt = Longident.Lident "pos"; _ } -> Some 0
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident "+"; _ }; _ },
       [ (_, a); (_, b) ]) -> (
      match (const_offset a, const_offset b) with
      | Some x, Some y -> Some (x + y)
      | _ -> None)
  | Pexp_constraint (e, _) -> const_offset e
  | _ -> None

let nolabel_args args =
  List.filter_map
    (fun (lbl, e) -> match lbl with Asttypes.Nolabel -> Some e | _ -> None)
    args

(* Walk a function body simulating the Bytio.W write cursor and
   collecting constant byte accesses.  Nested [let f = fun ...] bodies
   are separate runs starting at offset 0 (each creates its own writer,
   as in Icmp_wire.encode). *)
let collect_accesses ~fn_name body =
  let accs = ref [] in
  let add off width loc =
    accs := { ac_off = off; ac_width = width; ac_fn = fn_name; ac_loc = loc } :: !accs
  in
  let rec run cur e : cursor =
    match e.pexp_desc with
    | Pexp_sequence (a, b) ->
        let cur = run cur a in
        run cur b
    | Pexp_let (_, vbs, body) ->
        let cur =
          List.fold_left
            (fun cur vb ->
              match vb.pvb_expr.pexp_desc with
              | Pexp_fun _ | Pexp_function _ ->
                  ignore (run (Known 0) (strip_funs vb.pvb_expr));
                  cur
              | _ -> run cur vb.pvb_expr)
            cur vbs
        in
        run cur body
    | Pexp_fun (_, _, _, body) -> run cur body
    | Pexp_function cases ->
        join cur (List.map (fun c -> fun cur -> run cur c.pc_rhs) cases)
    | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args) -> apply cur lid args e
    | Pexp_apply (f, args) ->
        let cur = run cur f in
        List.fold_left (fun cur (_, a) -> run cur a) cur args
    | Pexp_ifthenelse (c, t, eo) ->
        let cur = run cur c in
        join cur
          (( fun cur -> run cur t )
           :: (match eo with None -> [] | Some e -> [ (fun cur -> run cur e) ]))
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        let cur = run cur scrut in
        join cur (List.map (fun c -> fun cur -> run cur c.pc_rhs) cases)
    | Pexp_constraint (e, _) -> run cur e
    | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> run cur a
    | Pexp_tuple es -> List.fold_left run cur es
    | Pexp_record (fs, base) ->
        let cur =
          match base with None -> cur | Some b -> run cur b
        in
        List.fold_left (fun cur (_, e) -> run cur e) cur fs
    | Pexp_field (e, _) -> run cur e
    | Pexp_setfield (a, _, b) ->
        let cur = run cur a in
        run cur b
    | Pexp_while (c, b) | Pexp_for (_, c, b, _, _) ->
        ignore (run Unknown c);
        ignore (run Unknown b);
        Unknown
    | Pexp_letmodule (_, _, body) | Pexp_open (_, body) -> run cur body
    | _ -> cur
  and strip_funs e =
    match e.pexp_desc with Pexp_fun (_, _, _, b) -> strip_funs b | _ -> e
  and join cur branches =
    match branches with
    | [] -> cur
    | _ ->
        let ends = List.map (fun f -> f cur) branches in
        let all_equal =
          match ends with
          | [] -> true
          | h :: t -> List.for_all (fun c -> c = h) t
        in
        if all_equal then List.hd ends else Unknown
  and apply cur lid args e =
    let name = last_exn (flatten_lid lid.txt) in
    let cur = List.fold_left (fun cur (_, a) -> run cur a) cur args in
    if is_cursor_style name then begin
      (match width_of_opname name with
      | Some w -> (
          match cur with
          | Known c ->
              add c w e.pexp_loc;
              Known (c + w)
          | Unknown -> Unknown)
      | None -> cur)
    end
    else if name = "bytes" || name = "sub" then Unknown
    else if name = "seek" then begin
      match nolabel_args args with
      | [ _; off ] | [ off ] -> (
          match const_offset off with Some o -> Known o | None -> Unknown)
      | _ -> Unknown
    end
    else begin
      (match width_of_opname name with
      | Some w -> (
          (* Bytes.get_* / Bytes.set_* with an explicit offset *)
          match nolabel_args args with
          | _ :: off :: _ -> (
              match const_offset off with
              | Some o -> add o w e.pexp_loc
              | None -> ())
          | _ -> ())
      | None ->
          (* peek_u32-style helper: last positional argument is the offset *)
          if String.length name >= 4 && String.sub name 0 4 = "peek" then begin
            let w =
              if Filename.check_suffix name "u32" then Some 4
              else if Filename.check_suffix name "u16" then Some 2
              else if Filename.check_suffix name "u8" then Some 1
              else None
            in
            match (w, List.rev (nolabel_args args)) with
            | Some w, off :: _ -> (
                match const_offset off with
                | Some o -> add o w e.pexp_loc
                | None -> ())
            | _ -> ()
          end);
      cur
    end
  in
  ignore (run (Known 0) (let rec s e = match e.pexp_desc with
                          | Pexp_fun (_, _, _, b) -> s b
                          | _ -> e in s body));
  List.rev !accs

let write_fn_names = [ "encode"; "encode_into"; "create"; "add" ]

let is_read_fn name =
  (String.length name >= 4 && String.sub name 0 4 = "peek")
  || name = "decode" || name = "of_peeked" || name = "payload_of"

let is_patch_fn name =
  String.length name >= 6 && String.sub name 0 6 = "patch_"

let wire_required_basenames =
  [ "ipv4.ml"; "tcp_wire.ml"; "udp_wire.ml"; "icmp_wire.ml"; "pcap.ml" ]

let check_wire fi =
  let base = Filename.basename fi.fi_path in
  let layouts = extract_layouts fi in
  let required = List.mem base wire_required_basenames in
  match layouts with
  | [] ->
      if required then
        report ~file:fi.fi_path ~line:1 ~rule:"wire"
          "wire module declares no layout table (expected `let layout = [ (field, offset, width); ... ]`)"
  | layouts ->
      List.iter (check_layout_table fi) layouts;
      let tables = List.map fst layouts in
      let extent_max =
        List.fold_left (fun m l -> max m (layout_extent l)) 0 tables
      in
      (* gather accesses per function class *)
      let writes = ref [] and reads = ref [] and others = ref [] in
      let have_read_fn = ref false in
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var n ->
                      let name = n.txt in
                      if List.mem name write_fn_names then
                        writes :=
                          collect_accesses ~fn_name:name vb.pvb_expr @ !writes
                      else if is_read_fn name then begin
                        have_read_fn := true;
                        reads :=
                          collect_accesses ~fn_name:name vb.pvb_expr @ !reads
                      end
                      else if is_patch_fn name then
                        others :=
                          collect_accesses ~fn_name:name vb.pvb_expr @ !others
                  | _ -> ())
                vbs
          | _ -> ())
        fi.fi_structure;
      let all_accesses = !writes @ !reads @ !others in
      (* conformance: every access must cover whole fields of some table *)
      List.iter
        (fun a ->
          let fits l =
            let starts = List.map (fun (_, o, _) -> o) l.l_fields in
            let ends = List.map (fun (_, o, w) -> o + w) l.l_fields in
            List.mem a.ac_off starts
            && List.mem (a.ac_off + a.ac_width) ends
          in
          if a.ac_off + a.ac_width > extent_max then
            report_loc ~rule:"wire" a.ac_loc
              (Printf.sprintf
                 "%s: access at offset %d width %d runs past the %d-byte header"
                 a.ac_fn a.ac_off a.ac_width extent_max)
          else if not (List.exists fits tables) then
            report_loc ~rule:"wire" a.ac_loc
              (Printf.sprintf
                 "%s: access at offset %d width %d does not cover whole layout fields"
                 a.ac_fn a.ac_off a.ac_width))
        all_accesses;
      (* encode/decode asymmetry, single-table modules only *)
      match tables with
      | [ l ] when !have_read_fn ->
          let cover accs =
            let s = Hashtbl.create 32 in
            List.iter
              (fun a ->
                for b = a.ac_off to a.ac_off + a.ac_width - 1 do
                  Hashtbl.replace s b ()
                done)
              accs;
            s
          in
          let w = cover !writes and r = cover !reads in
          List.iter
            (fun (name, o, wid) ->
              if not (contains_substring name "checksum") then begin
                let written =
                  let ok = ref true in
                  for b = o to o + wid - 1 do
                    if not (Hashtbl.mem w b) then ok := false
                  done;
                  !ok
                in
                let read_any =
                  let any = ref false in
                  for b = o to o + wid - 1 do
                    if Hashtbl.mem r b then any := true
                  done;
                  !any
                in
                if written && not read_any then
                  report ~file:fi.fi_path ~line:1 ~rule:"wire"
                    (Printf.sprintf
                       "field %s (bytes %d..%d) is written by encode but never read by a peek/decode function"
                       name o (o + wid - 1))
                else if read_any && not written then
                  report ~file:fi.fi_path ~line:1 ~rule:"wire"
                    (Printf.sprintf
                       "field %s (bytes %d..%d) is read by peek/decode but never written by encode"
                       name o (o + wid - 1))
              end)
            l.l_fields
      | _ -> ()

(* ---------------------------------------------------------------- *)
(* Rule: allocation-free fast paths                                  *)

let bare_whitelist =
  [ "land"; "lor"; "lxor"; "lnot"; "lsl"; "lsr"; "asr"; "mod"; "not"; "min";
    "max"; "abs"; "succ"; "pred"; "incr"; "decr"; "ignore"; "fst"; "snd";
    "truncate" ]

let raise_family = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let module_whitelist =
  [ ("Bytes", [ "length"; "get"; "set"; "unsafe_get"; "unsafe_set";
                "get_uint8"; "set_uint8"; "get_uint16_be"; "set_uint16_be";
                "get_uint16_le"; "set_uint16_le"; "get_int32_be";
                "set_int32_be"; "get_int32_le"; "set_int32_le"; "blit";
                "unsafe_blit"; "fill" ]);
    ("String", [ "length"; "get"; "unsafe_get" ]);
    ("Array", [ "length"; "get"; "set"; "unsafe_get"; "unsafe_set"; "blit" ]);
    ("Char", [ "code"; "chr"; "unsafe_chr" ]);
    ("Int32", [ "to_int"; "of_int"; "logand"; "logor"; "logxor"; "add";
                "sub"; "mul"; "shift_left"; "shift_right";
                "shift_right_logical" ]);
    ("Buffer", [ "length" ]);
    ("Hashtbl", [ "mem"; "length"; "remove" ]);
    ("Option", [ "is_none"; "is_some" ]);
    ("Queue", [ "is_empty"; "length" ]);
    ("Stdlib", bare_whitelist) ]

let is_symbolic name =
  name <> ""
  && (match name.[0] with
     | '!' | '$' | '%' | '&' | '*' | '+' | '-' | '.' | '/' | ':' | '<' | '='
     | '>' | '?' | '@' | '^' | '|' | '~' ->
         true
     | _ -> false)

(* Does this expression mention Recorder.want/enabled?  Used to waive
   the then-branch of trace guards: tracing may allocate, but only once
   the operator has switched the recorder on. *)
let mentions_want e =
  let found = ref false in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.pexp_desc with
          | Pexp_ident lid -> (
              match last_exn (flatten_lid lid.txt) with
              | "want" | "enabled" -> found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  !found

let check_fastpath_body ctx fi ~fn_name body =
  let flag loc what =
    report_loc ~rule:"fastpath" loc
      (Printf.sprintf "[@@fastpath] %s: %s" fn_name what)
  in
  let resolve_head lid =
    let parts = flatten_lid lid in
    let parts =
      match parts with
      | m :: rest when Hashtbl.mem fi.fi_aliases m ->
          Hashtbl.find fi.fi_aliases m :: rest
      | _ -> parts
    in
    parts
  in
  let rec walk e =
    if has_attr "fastpath.exempt" e.pexp_attributes then ()
    else
      match e.pexp_desc with
      | Pexp_ident _ | Pexp_constant _ | Pexp_unreachable -> ()
      | Pexp_construct (_, None) | Pexp_variant (_, None) -> ()
      | Pexp_construct (lid, Some _) ->
          flag e.pexp_loc
            (Printf.sprintf "constructor %s application allocates"
               (String.concat "." (flatten_lid lid.txt)))
      | Pexp_variant (v, Some _) ->
          flag e.pexp_loc (Printf.sprintf "variant `%s application allocates" v)
      | Pexp_tuple _ -> flag e.pexp_loc "tuple construction allocates"
      | Pexp_record _ -> flag e.pexp_loc "record construction allocates"
      | Pexp_array _ -> flag e.pexp_loc "array construction allocates"
      | Pexp_lazy _ -> flag e.pexp_loc "lazy value allocates"
      | Pexp_fun _ | Pexp_function _ ->
          flag e.pexp_loc "closure construction allocates"
      | Pexp_let (_, vbs, body) ->
          List.iter
            (fun vb ->
              match vb.pvb_expr.pexp_desc with
              | Pexp_apply
                  ({ pexp_desc = Pexp_ident { txt = Longident.Lident "ref"; _ };
                     _ },
                   [ (_, init) ]) ->
                  (* a let-bound ref is a local accumulator; flambda-free
                     OCaml still heap-allocates it, but it is bounded and
                     loop-local - the historical exception the checksum
                     folders rely on. *)
                  walk init
              | _ -> walk vb.pvb_expr)
            vbs;
          walk body
      | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args) ->
          let parts = resolve_head lid.txt in
          (match parts with
          | [ name ] when List.mem name raise_family -> ()
          | _ ->
              (match parts with
              | [ name ] ->
                  if
                    is_symbolic name || List.mem name bare_whitelist
                    || Hashtbl.mem ctx.tagged_names name
                    || not (Hashtbl.mem fi.fi_toplevel name)
                    (* unqualified + not a module-level binding here =>
                       parameter or let-bound local; its definition was
                       scanned (or flagged) where it was built *)
                  then ()
                  else if name = "ref" then
                    flag e.pexp_loc "ref allocation outside a let binding"
                  else
                    flag e.pexp_loc
                      (Printf.sprintf "call to untagged function %s" name)
              | parts ->
                  let name = last_exn parts in
                  let modname =
                    List.nth parts (List.length parts - 2)
                  in
                  let whitelisted =
                    match List.assoc_opt modname module_whitelist with
                    | Some fns -> List.mem name fns
                    | None -> false
                  in
                  if whitelisted || Hashtbl.mem ctx.tagged_names name then ()
                  else
                    flag e.pexp_loc
                      (Printf.sprintf "call to untagged function %s"
                         (String.concat "." parts)));
              List.iter (fun (_, a) -> walk a) args)
      | Pexp_apply (f, args) ->
          walk f;
          List.iter (fun (_, a) -> walk a) args
      | Pexp_ifthenelse (c, t, eo) ->
          walk c;
          if not (mentions_want c) then walk t;
          Option.iter walk eo
      | Pexp_sequence (a, b) ->
          walk a;
          walk b
      | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
          walk scrut;
          List.iter
            (fun c ->
              Option.iter walk c.pc_guard;
              walk c.pc_rhs)
            cases
      | Pexp_field (e, _) -> walk e
      | Pexp_setfield (a, _, b) ->
          walk a;
          walk b
      | Pexp_constraint (e, _) -> walk e
      | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ } ->
          ()
      | Pexp_assert e -> walk e
      | Pexp_while (c, b) ->
          walk c;
          walk b
      | Pexp_for (_, a, b, _, body) ->
          walk a;
          walk b;
          walk body
      | Pexp_letmodule (_, _, body) | Pexp_open (_, body) -> walk body
      | _ -> ()
  in
  let rec strip e =
    match e.pexp_desc with
    | Pexp_fun (_, default, _, b) ->
        Option.iter walk default;
        strip b
    | Pexp_constraint (e, _) -> strip e
    | _ -> walk e
  in
  strip body

let check_fastpath ctx fi =
  let rec do_structure items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                if has_attr "fastpath" vb.pvb_attributes then
                  match pattern_names vb.pvb_pat with
                  | name :: _ ->
                      check_fastpath_body ctx fi ~fn_name:name vb.pvb_expr
                  | [] -> ())
              vbs
        | Pstr_module mb -> (
            let rec go me =
              match me.pmod_desc with
              | Pmod_structure items -> do_structure items
              | Pmod_constraint (me, _) -> go me
              | _ -> ()
            in
            go mb.pmb_expr)
        | _ -> ())
      items
  in
  do_structure fi.fi_structure

(* ---------------------------------------------------------------- *)
(* Rule: observability totality                                      *)

(* All string constants appearing anywhere in the run's files - used to
   check that a mapped counter name is actually a registered metrics
   key somewhere. *)
let all_string_constants files =
  let set = Hashtbl.create 256 in
  List.iter
    (fun fi ->
      let it =
        { Ast_iterator.default_iterator with
          expr =
            (fun sub e ->
              (match string_constant e with
              | Some s -> Hashtbl.replace set s ()
              | None -> ());
              Ast_iterator.default_iterator.expr sub e);
        }
      in
      it.structure it fi.fi_structure)
    files;
  set

(* All constructor applications/uses per file. *)
let constructor_uses fi =
  let set = Hashtbl.create 64 in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.pexp_desc with
          | Pexp_construct (lid, _) ->
              Hashtbl.replace set (last_exn (flatten_lid lid.txt)) ()
          | _ -> ());
          Ast_iterator.default_iterator.expr sub e);
    }
  in
  it.structure it fi.fi_structure;
  set

let find_drop_reason_decl fi =
  List.find_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, tds) ->
          List.find_map
            (fun td ->
              if td.ptype_name.txt = "drop_reason" then
                match td.ptype_kind with
                | Ptype_variant cds ->
                    Some
                      (List.map (fun cd -> cd.pcd_name.txt) cds, td.ptype_loc)
                | _ -> None
              else None)
            tds
      | _ -> None)
    fi.fi_structure

let find_counter_mapping fi =
  List.find_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.find_map
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var n when n.txt = "drop_reason_counter" ->
                  let rec cases_of e =
                    match e.pexp_desc with
                    | Pexp_function cases -> cases
                    | Pexp_fun (_, _, _, b) -> cases_of b
                    | Pexp_match (_, cases) -> cases
                    | _ -> []
                  in
                  let mapping =
                    List.filter_map
                      (fun c ->
                        match c.pc_lhs.ppat_desc with
                        | Ppat_construct (lid, _) -> (
                            match string_constant c.pc_rhs with
                            | Some s ->
                                Some (last_exn (flatten_lid lid.txt), s)
                            | None -> None)
                        | _ -> None)
                      (cases_of vb.pvb_expr)
                  in
                  Some (mapping, vb.pvb_loc)
              | _ -> None)
            vbs
      | _ -> None)
    fi.fi_structure

let emit_call_names = [ "drop"; "record_drop" ]

let is_emitish e =
  let found = ref false in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, _) ->
              let name = last_exn (flatten_lid lid.txt) in
              if
                contains_substring name "emit"
                || (String.length name >= 6 && String.sub name 0 6 = "trace_")
                || List.mem name emit_call_names
              then found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  !found

let bump_field_of e =
  match e.pexp_desc with
  | Pexp_setfield (_, lid, _) ->
      let name = last_exn (flatten_lid lid.txt) in
      if
        (String.length name >= 8 && String.sub name 0 8 = "dropped_")
        || (String.length name >= 6 && String.sub name 0 6 = "drops_")
      then Some name
      else None
  | _ -> None

let check_bump_adjacency fi =
  let rec flatten e =
    match e.pexp_desc with
    | Pexp_sequence (a, b) -> a :: flatten b
    | _ -> [ e ]
  in
  let rec walk in_seq e =
    match e.pexp_desc with
    | Pexp_sequence _ ->
        let stmts = Array.of_list (flatten e) in
        Array.iteri
          (fun i s ->
            (match bump_field_of s with
            | Some field ->
                let neighbor_ok =
                  (i > 0 && is_emitish stmts.(i - 1))
                  || (i + 1 < Array.length stmts && is_emitish stmts.(i + 1))
                in
                if not neighbor_ok then
                  report_loc ~rule:"obs" s.pexp_loc
                    (Printf.sprintf
                       "drop counter bump '%s' has no adjacent trace emission"
                       field)
            | None -> ());
            walk true s)
          stmts
    | _ ->
        (match bump_field_of e with
        | Some field when not in_seq ->
            report_loc ~rule:"obs" e.pexp_loc
              (Printf.sprintf
                 "drop counter bump '%s' has no adjacent trace emission" field)
        | _ -> ());
        descend e
  and descend e =
    let it =
      { Ast_iterator.default_iterator with
        expr = (fun _sub e -> walk false e);
      }
    in
    (* descend one level manually so nested sequences get re-flattened *)
    match e.pexp_desc with
    | Pexp_sequence _ -> walk false e
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it =
    { Ast_iterator.default_iterator with
      expr = (fun _sub e -> walk false e);
    }
  in
  it.structure it fi.fi_structure

let check_obs ctx =
  let strings = all_string_constants ctx.files in
  List.iter
    (fun fi ->
      match find_drop_reason_decl fi with
      | None -> ()
      | Some (ctors, type_loc) -> (
          (* constructor -> counter mapping must exist and be total *)
          match find_counter_mapping fi with
          | None ->
              report_loc ~rule:"obs" type_loc
                "drop_reason has no drop_reason_counter mapping in its defining module"
          | Some (mapping, map_loc) ->
              List.iter
                (fun c ->
                  match List.assoc_opt c mapping with
                  | None ->
                      report_loc ~rule:"obs" map_loc
                        (Printf.sprintf
                           "drop_reason constructor %s has no counter in drop_reason_counter"
                           c)
                  | Some counter ->
                      if not (Hashtbl.mem strings counter) then
                        report_loc ~rule:"obs" map_loc
                          (Printf.sprintf
                             "counter \"%s\" (for %s) is not a registered metrics key anywhere in the tree"
                             counter c))
                ctors;
              (* each constructor must be emitted somewhere else *)
              List.iter
                (fun c ->
                  let used_elsewhere =
                    List.exists
                      (fun other ->
                        other.fi_path <> fi.fi_path
                        && Hashtbl.mem (constructor_uses other) c)
                      ctx.files
                  in
                  if not used_elsewhere then
                    report_loc ~rule:"obs" type_loc
                      (Printf.sprintf
                         "drop_reason constructor %s has no trace emission site outside %s"
                         c
                         (Filename.basename fi.fi_path)))
                ctors))
    ctx.files;
  List.iter check_bump_adjacency ctx.files

(* ---------------------------------------------------------------- *)

let run ~check_mli_rule files =
  let ctx = make_ctx files in
  List.iter
    (fun fi ->
      if check_mli_rule then check_mli fi;
      check_wire fi;
      check_fastpath ctx fi)
    files;
  check_obs ctx;
  ctx
