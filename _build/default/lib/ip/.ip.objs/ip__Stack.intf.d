lib/ip/stack.mli: Accounting Engine Netsim Packet Route_table
