(* Tests for the internet layer: longest-prefix-match routing, forwarding
   with TTL and ICMP errors, fragmentation/reassembly, accounting. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Addr = Packet.Addr
module Prefix = Packet.Addr.Prefix
module Ipv4 = Packet.Ipv4
module Icmpw = Packet.Icmp_wire

(* --- Route table --------------------------------------------------------- *)

let route prefix iface metric =
  {
    Ip.Route_table.prefix = Prefix.of_string prefix;
    iface;
    next_hop = None;
    metric;
  }

let test_lpm_prefers_longer () =
  let t = Ip.Route_table.create () in
  Ip.Route_table.add t (route "10.0.0.0/8" 1 1);
  Ip.Route_table.add t (route "10.1.0.0/16" 2 1);
  Ip.Route_table.add t (route "10.1.2.0/24" 3 1);
  let iface a =
    match Ip.Route_table.lookup t (Addr.of_string a) with
    | Some r -> r.Ip.Route_table.iface
    | None -> -1
  in
  check Alcotest.int "most specific" 3 (iface "10.1.2.99");
  check Alcotest.int "middle" 2 (iface "10.1.3.1");
  check Alcotest.int "broad" 1 (iface "10.200.0.1");
  check Alcotest.int "no match" (-1) (iface "11.0.0.1")

let test_lpm_metric_tiebreak () =
  let t = Ip.Route_table.create () in
  Ip.Route_table.add t { (route "10.0.0.0/8" 1 5) with Ip.Route_table.prefix = Prefix.of_string "10.0.0.0/8" };
  (* Same length, lower metric on another prefix value cannot exist;
     tiebreak applies between equal-length matching prefixes. *)
  Ip.Route_table.add t (route "0.0.0.0/0" 7 3);
  (match Ip.Route_table.lookup t (Addr.of_string "10.1.1.1") with
  | Some r -> check Alcotest.int "longer wins over metric" 1 r.Ip.Route_table.iface
  | None -> Alcotest.fail "no route")

let test_default_route () =
  let t = Ip.Route_table.create () in
  Ip.Route_table.add t (route "0.0.0.0/0" 9 1);
  match Ip.Route_table.lookup t (Addr.of_string "203.0.113.7") with
  | Some r -> check Alcotest.int "default" 9 r.Ip.Route_table.iface
  | None -> Alcotest.fail "default not matched"

let test_add_replaces_same_prefix () =
  let t = Ip.Route_table.create () in
  Ip.Route_table.add t (route "10.0.0.0/8" 1 1);
  Ip.Route_table.add t (route "10.0.0.0/8" 2 1);
  check Alcotest.int "one entry" 1 (Ip.Route_table.length t);
  match Ip.Route_table.lookup t (Addr.of_string "10.1.1.1") with
  | Some r -> check Alcotest.int "replaced" 2 r.Ip.Route_table.iface
  | None -> Alcotest.fail "no route"

let test_remove () =
  let t = Ip.Route_table.create () in
  Ip.Route_table.add t (route "10.0.0.0/8" 1 1);
  Ip.Route_table.remove t (Prefix.of_string "10.0.0.0/8");
  check Alcotest.int "empty" 0 (Ip.Route_table.length t);
  check Alcotest.bool "gone" true
    (Ip.Route_table.lookup t (Addr.of_string "10.1.1.1") = None);
  (* Removing a non-existent prefix is a no-op. *)
  Ip.Route_table.remove t (Prefix.of_string "10.0.0.0/8")

let prop_lpm_matches_bruteforce =
  let arb =
    QCheck.make
      QCheck.Gen.(
        pair
          (list_size (1 -- 20)
             (pair (pair (0 -- 255) (0 -- 255)) (0 -- 32)))
          (pair (0 -- 255) (0 -- 255)))
  in
  QCheck.Test.make ~name:"LPM lookup equals brute force" ~count:300 arb
    (fun (routes, (qa, qb)) ->
      let t = Ip.Route_table.create () in
      let entries =
        List.mapi
          (fun i ((a, b), len) ->
            let r =
              {
                Ip.Route_table.prefix = Prefix.make (Addr.v 10 a b 0) len;
                iface = i;
                next_hop = None;
                metric = 1;
              }
            in
            Ip.Route_table.add t r;
            r)
          routes
      in
      (* Deduplicate by prefix the same way add does (last wins). *)
      let dedup =
        List.fold_left
          (fun acc (r : Ip.Route_table.route) ->
            List.filter
              (fun (r' : Ip.Route_table.route) ->
                not (Prefix.equal r'.prefix r.prefix))
              acc
            @ [ r ])
          [] entries
      in
      let q = Addr.v 10 qa qb 1 in
      let best_brute =
        List.fold_left
          (fun best (r : Ip.Route_table.route) ->
            if not (Prefix.mem q r.prefix) then best
            else
              match best with
              | Some (b : Ip.Route_table.route)
                when Prefix.length b.prefix >= Prefix.length r.prefix ->
                  best
              | Some _ | None -> Some r)
          None dedup
      in
      let got = Ip.Route_table.lookup t q in
      match (best_brute, got) with
      | None, None -> true
      | Some b, Some g -> Prefix.length b.prefix = Prefix.length g.prefix
      | _ -> false)

(* --- Fixtures ------------------------------------------------------------ *)

(* host A -- gateway G -- host B, with configurable profiles. *)
type triple = {
  eng : Engine.t;
  net : Netsim.t;
  a : Ip.Stack.t;
  g : Ip.Stack.t;
  b : Ip.Stack.t;
  a_addr : Addr.t;
  b_addr : Addr.t;
  g_left : Addr.t;
  link_ab : Netsim.link_id;
  link_gb : Netsim.link_id;
}

let triple ?(left = Netsim.profile "l") ?(right = Netsim.profile "r") () =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:3 eng in
  let na = Netsim.add_node net "a" in
  let ng = Netsim.add_node net "g" in
  let nb = Netsim.add_node net "b" in
  let l1 = Netsim.add_link net left na ng in
  let l2 = Netsim.add_link net right ng nb in
  let a = Ip.Stack.create net na in
  let g = Ip.Stack.create ~forwarding:true net ng in
  let b = Ip.Stack.create net nb in
  let a_addr = Addr.v 10 0 1 1 and g_left = Addr.v 10 0 1 2 in
  let g_right = Addr.v 10 0 2 1 and b_addr = Addr.v 10 0 2 2 in
  Ip.Stack.configure_iface a 0 ~addr:a_addr ~prefix_len:24;
  Ip.Stack.configure_iface g 0 ~addr:g_left ~prefix_len:24;
  Ip.Stack.configure_iface g 1 ~addr:g_right ~prefix_len:24;
  Ip.Stack.configure_iface b 0 ~addr:b_addr ~prefix_len:24;
  (* Hosts default via the gateway. *)
  Ip.Route_table.add (Ip.Stack.table a)
    { Ip.Route_table.prefix = Prefix.default; iface = 0;
      next_hop = Some g_left; metric = 1 };
  Ip.Route_table.add (Ip.Stack.table b)
    { Ip.Route_table.prefix = Prefix.default; iface = 0;
      next_hop = Some g_right; metric = 1 };
  { eng; net; a; g; b; a_addr; b_addr; g_left; link_ab = l1; link_gb = l2 }

let register_sink stack =
  let got = ref [] in
  Ip.Stack.register_proto stack (Ipv4.Proto.Other 99) (fun h payload ->
      got := (h, payload) :: !got);
  got

(* --- Forwarding ----------------------------------------------------------- *)

let test_forward_across_gateway () =
  let t = triple () in
  let got = register_sink t.b in
  (match
     Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 99) ~dst:t.b_addr
       (Bytes.of_string "through the gateway")
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send failed");
  Engine.run t.eng;
  match !got with
  | [ (h, payload) ] ->
      check Alcotest.string "payload" "through the gateway"
        (Bytes.to_string payload);
      check Alcotest.string "src" (Addr.to_string t.a_addr)
        (Addr.to_string h.Ipv4.src);
      check Alcotest.int "ttl decremented once" 63 h.Ipv4.ttl;
      check Alcotest.int "gateway forwarded" 1
        (Ip.Stack.counters t.g).Ip.Stack.forwarded
  | l -> Alcotest.failf "expected 1 datagram, got %d" (List.length l)

let test_local_delivery_loopback () =
  let t = triple () in
  let got = register_sink t.a in
  (match
     Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 99) ~dst:t.a_addr
       (Bytes.of_string "self")
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send failed");
  Engine.run t.eng;
  check Alcotest.int "delivered locally" 1 (List.length !got)

let test_no_route_error () =
  let t = triple () in
  (* Strip the default route so the destination is genuinely unroutable. *)
  Ip.Route_table.remove (Ip.Stack.table t.a) Prefix.default;
  match
    Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 99) ~dst:(Addr.v 192 168 1 1)
      Bytes.empty
  with
  | Error `No_route -> ()
  | Error `Too_big | Ok () -> Alcotest.fail "expected No_route"

let test_host_does_not_forward () =
  (* B sends to a bogus address via its default route; A (a host) would be
     the wrong place anyway, but check the gateway drops unroutable. *)
  let t = triple () in
  ignore
    (Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 99) ~dst:(Addr.v 10 0 3 9)
       Bytes.empty);
  Engine.run t.eng;
  check Alcotest.int "gateway had no route" 1
    (Ip.Stack.counters t.g).Ip.Stack.dropped_no_route

let test_ttl_expiry_generates_icmp () =
  let t = triple () in
  let errors = ref [] in
  Ip.Stack.add_error_handler t.a (fun ~from:_ msg -> errors := msg :: !errors);
  ignore
    (Ip.Stack.send t.a ~ttl:1 ~proto:(Ipv4.Proto.Other 99) ~dst:t.b_addr
       (Bytes.make 16 'x'));
  Engine.run t.eng;
  (match !errors with
  | [ Icmpw.Time_exceeded _ ] -> ()
  | l -> Alcotest.failf "expected time-exceeded, got %d msgs" (List.length l));
  check Alcotest.int "counted" 1 (Ip.Stack.counters t.g).Ip.Stack.dropped_ttl

let test_net_unreachable_icmp () =
  let t = triple () in
  let errors = ref [] in
  Ip.Stack.add_error_handler t.a (fun ~from:_ msg -> errors := msg :: !errors);
  ignore
    (Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 99) ~dst:(Addr.v 10 0 9 9)
       Bytes.empty);
  Engine.run t.eng;
  match !errors with
  | [ Icmpw.Dest_unreachable { code = Icmpw.Net_unreachable; _ } ] -> ()
  | l -> Alcotest.failf "expected net-unreachable, got %d" (List.length l)

let test_protocol_unreachable () =
  let t = triple () in
  let errors = ref [] in
  Ip.Stack.add_error_handler t.a (fun ~from:_ msg -> errors := msg :: !errors);
  (* Nothing registered for protocol 77 on B. *)
  ignore
    (Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 77) ~dst:t.b_addr
       (Bytes.make 4 'p'));
  Engine.run t.eng;
  match !errors with
  | [ Icmpw.Dest_unreachable { code = Icmpw.Protocol_unreachable; _ } ] -> ()
  | l -> Alcotest.failf "expected protocol-unreachable, got %d" (List.length l)

let test_ping_echo () =
  let t = triple () in
  let replies = ref [] in
  Ip.Stack.set_echo_reply_handler t.a (fun ~id ~seq ~payload:_ ->
      replies := (id, seq) :: !replies);
  Ip.Stack.send_echo_request t.a ~dst:t.b_addr ~id:9 ~seq:1
    ~payload:(Bytes.make 8 'p');
  Engine.run t.eng;
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "echo reply" [ (9, 1) ] !replies

(* --- Fast path ------------------------------------------------------------ *)

(* a — g1 — g2 — b chain with a spy wrapped around every receiving node's
   frame handler, recording each frame reference before handing it to the
   stack.  The netsim delivers frames by reference, so physical equality
   across hops proves the fast path never copied the transit datagram. *)
let test_transit_frame_identity () =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:3 eng in
  let na = Netsim.add_node net "a" in
  let n1 = Netsim.add_node net "g1" in
  let n2 = Netsim.add_node net "g2" in
  let nb = Netsim.add_node net "b" in
  ignore (Netsim.add_link net (Netsim.profile "l1") na n1);
  ignore (Netsim.add_link net (Netsim.profile "l2") n1 n2);
  ignore (Netsim.add_link net (Netsim.profile "l3") n2 nb);
  let a = Ip.Stack.create net na in
  let g1 = Ip.Stack.create ~forwarding:true net n1 in
  let g2 = Ip.Stack.create ~forwarding:true net n2 in
  let b = Ip.Stack.create net nb in
  Ip.Stack.configure_iface a 0 ~addr:(Addr.v 10 0 1 1) ~prefix_len:24;
  Ip.Stack.configure_iface g1 0 ~addr:(Addr.v 10 0 1 2) ~prefix_len:24;
  Ip.Stack.configure_iface g1 1 ~addr:(Addr.v 10 0 2 1) ~prefix_len:24;
  Ip.Stack.configure_iface g2 0 ~addr:(Addr.v 10 0 2 2) ~prefix_len:24;
  Ip.Stack.configure_iface g2 1 ~addr:(Addr.v 10 0 3 1) ~prefix_len:24;
  Ip.Stack.configure_iface b 0 ~addr:(Addr.v 10 0 3 2) ~prefix_len:24;
  Ip.Route_table.add (Ip.Stack.table a)
    { Ip.Route_table.prefix = Prefix.default; iface = 0;
      next_hop = Some (Addr.v 10 0 1 2); metric = 1 };
  Ip.Route_table.add (Ip.Stack.table g1)
    { Ip.Route_table.prefix = Prefix.of_string "10.0.3.0/24"; iface = 1;
      next_hop = Some (Addr.v 10 0 2 2); metric = 1 };
  let hops = ref [] in
  let spy stack node =
    Netsim.set_handler net node (fun ~iface frame ->
        hops := frame :: !hops;
        Ip.Stack.receive stack ~iface frame)
  in
  spy g1 n1;
  spy g2 n2;
  spy b nb;
  let got = register_sink b in
  let payload = Bytes.of_string "patched in place, never copied" in
  (match
     Ip.Stack.send a ~proto:(Ipv4.Proto.Other 99) ~dst:(Addr.v 10 0 3 2)
       payload
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "send failed");
  (* Every hop's frame must stay wire-valid the instant it arrives. *)
  let seen_ttls = ref [] in
  let observe () =
    List.iter
      (fun frame ->
        match Ipv4.decode frame with
        | Ok (h, _) ->
            if not (List.mem h.Ipv4.ttl !seen_ttls) then
              seen_ttls := h.Ipv4.ttl :: !seen_ttls
        | Error e -> Alcotest.failf "hop frame invalid: %a" Ipv4.pp_error e)
      !hops
  in
  while Engine.step eng do observe () done;
  (match !got with
  | [ (h, p) ] ->
      check Alcotest.bool "payload intact" true (Bytes.equal p payload);
      check Alcotest.int "ttl decremented twice" 62 h.Ipv4.ttl
  | l -> Alcotest.failf "expected 1 datagram, got %d" (List.length l));
  (match !hops with
  | [ f3; f2; f1 ] ->
      check Alcotest.bool "g1->g2 same frame" true (f1 == f2);
      check Alcotest.bool "g2->b same frame" true (f2 == f3)
  | l -> Alcotest.failf "expected 3 hop frames, got %d" (List.length l));
  List.iter
    (fun ttl ->
      check Alcotest.bool "hop ttl in 64..62" true (ttl <= 64 && ttl >= 62))
    !seen_ttls

let test_route_cache_sees_table_changes () =
  (* Populate the gateway's route cache, then yank the route: the next
     datagram must get net-unreachable, not a stale cached forward. *)
  let t = triple () in
  let got = register_sink t.b in
  ignore
    (Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 99) ~dst:t.b_addr
       (Bytes.of_string "warm the cache"));
  Engine.run t.eng;
  check Alcotest.int "first delivered" 1 (List.length !got);
  let errors = ref [] in
  Ip.Stack.add_error_handler t.a (fun ~from:_ msg -> errors := msg :: !errors);
  Ip.Route_table.remove (Ip.Stack.table t.g) (Prefix.of_string "10.0.2.0/24");
  ignore
    (Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 99) ~dst:t.b_addr
       (Bytes.of_string "route is gone now"));
  Engine.run t.eng;
  check Alcotest.int "no further delivery" 1 (List.length !got);
  match !errors with
  | [ Icmpw.Dest_unreachable { code = Icmpw.Net_unreachable; _ } ] -> ()
  | l -> Alcotest.failf "expected net-unreachable, got %d msgs" (List.length l)

let test_route_cache_bounded () =
  (* The destination memo is a fixed direct-mapped array: pushing many
     times more distinct destinations through a gateway than it has cache
     slots must not grow the stack's footprint.  (The Hashtbl this
     replaced added an entry per destination — at E17 scale a transit
     gateway's cache outweighed its table.) *)
  let t = triple () in
  Ip.Route_table.add (Ip.Stack.table t.g)
    { Ip.Route_table.prefix = Prefix.default; iface = 1;
      next_hop = Some t.b_addr; metric = 1 };
  let send dst =
    ignore
      (Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 99) ~dst
         (Bytes.of_string "x"));
    Engine.run t.eng
  in
  let distinct n base =
    for i = 0 to n - 1 do
      send (Addr.v 172 ((base + (i / 250)) land 0xff) ((i mod 250) + 1) 9)
    done
  in
  let cap = Ip.Stack.route_cache_capacity in
  distinct (2 * cap) 0;
  let w0 = Obj.reachable_words (Obj.repr t.g) in
  distinct (2 * cap) 64;
  let w1 = Obj.reachable_words (Obj.repr t.g) in
  check Alcotest.bool
    (Printf.sprintf "cache footprint bounded (grew %d words)" (w1 - w0))
    true
    (w1 - w0 < 256);
  (* Eviction is replacement, not poisoning: a repeated destination still
     hits. *)
  let c = Ip.Stack.counters t.g in
  let dst = Addr.v 172 200 1 9 in
  send dst;
  let h0 = c.Ip.Stack.route_cache_hits in
  send dst;
  check Alcotest.bool "repeat destination hits the memo" true
    (c.Ip.Stack.route_cache_hits > h0);
  check Alcotest.bool "misses were counted" true
    (c.Ip.Stack.route_cache_misses > 0)

let test_route_table_generation () =
  let t = Ip.Route_table.create () in
  let g0 = Ip.Route_table.generation t in
  Ip.Route_table.add t (route "10.0.0.0/8" 1 1);
  let g1 = Ip.Route_table.generation t in
  check Alcotest.bool "add bumps" true (g1 > g0);
  Ip.Route_table.remove t (Prefix.of_string "10.0.0.0/8");
  let g2 = Ip.Route_table.generation t in
  check Alcotest.bool "remove bumps" true (g2 > g1);
  Ip.Route_table.clear t;
  check Alcotest.bool "clear bumps" true (Ip.Route_table.generation t > g2)

let test_slow_path_still_forwards () =
  (* The legacy decode/re-encode path stays behind the flag for the E13
     comparison; it must keep working end to end. *)
  let t = triple () in
  List.iter (fun s -> Ip.Stack.set_fast_path s false) [ t.a; t.g; t.b ];
  check Alcotest.bool "flag off" false (Ip.Stack.fast_path t.g);
  let got = register_sink t.b in
  ignore
    (Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 99) ~dst:t.b_addr
       (Bytes.of_string "the long way round"));
  Engine.run t.eng;
  match !got with
  | [ (h, p) ] ->
      check Alcotest.string "payload" "the long way round" (Bytes.to_string p);
      check Alcotest.int "ttl decremented" 63 h.Ipv4.ttl
  | l -> Alcotest.failf "expected 1 datagram, got %d" (List.length l)

let test_loopback_src_defaults_to_primary () =
  (* A multihomed node sending to one of its own addresses: the defaulted
     source must be the node's primary address, not a copy of the
     destination. *)
  let t = triple () in
  let got = register_sink t.g in
  let g_right = Addr.v 10 0 2 1 in
  ignore (Ip.Stack.send t.g ~proto:(Ipv4.Proto.Other 99) ~dst:g_right Bytes.empty);
  Engine.run t.eng;
  match !got with
  | [ (h, _) ] ->
      check Alcotest.string "src is primary" (Addr.to_string t.g_left)
        (Addr.to_string h.Ipv4.src);
      check Alcotest.string "dst preserved" (Addr.to_string g_right)
        (Addr.to_string h.Ipv4.dst)
  | l -> Alcotest.failf "expected 1 datagram, got %d" (List.length l)

(* --- Fragmentation -------------------------------------------------------- *)

let test_fragmentation_across_small_mtu () =
  (* Left MTU 1500, right MTU 576: the gateway must fragment; B must
     reassemble the full payload. *)
  let t =
    triple
      ~left:(Netsim.profile "l" ~mtu:1500)
      ~right:(Netsim.profile "r" ~mtu:576)
      ()
  in
  let got = register_sink t.b in
  let payload = Bytes.init 1400 (fun i -> Char.chr (i land 0xff)) in
  ignore (Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 99) ~dst:t.b_addr payload);
  Engine.run t.eng;
  (match !got with
  | [ (_, p) ] ->
      check Alcotest.int "length preserved" 1400 (Bytes.length p);
      check Alcotest.bool "content preserved" true (Bytes.equal p payload)
  | l -> Alcotest.failf "expected 1 reassembled datagram, got %d" (List.length l));
  check Alcotest.bool "gateway fragmented" true
    ((Ip.Stack.counters t.g).Ip.Stack.fragments_made >= 3)

let test_source_fragmentation () =
  (* Sender's own link has the small MTU: the origin fragments. *)
  let t = triple ~left:(Netsim.profile "l" ~mtu:300) () in
  let got = register_sink t.b in
  let payload = Bytes.init 1000 (fun i -> Char.chr (i * 7 land 0xff)) in
  ignore (Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 99) ~dst:t.b_addr payload);
  Engine.run t.eng;
  (match !got with
  | [ (_, p) ] -> check Alcotest.bool "reassembled" true (Bytes.equal p payload)
  | l -> Alcotest.failf "expected 1, got %d" (List.length l));
  check Alcotest.bool "origin fragmented" true
    ((Ip.Stack.counters t.a).Ip.Stack.fragments_made >= 4)

let test_df_generates_frag_needed () =
  let t = triple ~right:(Netsim.profile "r" ~mtu:576) () in
  let errors = ref [] in
  Ip.Stack.add_error_handler t.a (fun ~from:_ msg -> errors := msg :: !errors);
  ignore
    (Ip.Stack.send t.a ~dont_fragment:true ~proto:(Ipv4.Proto.Other 99)
       ~dst:t.b_addr (Bytes.make 1400 'x'));
  Engine.run t.eng;
  match !errors with
  | [ Icmpw.Dest_unreachable { code = Icmpw.Fragmentation_needed; _ } ] -> ()
  | l -> Alcotest.failf "expected fragmentation-needed, got %d" (List.length l)

let test_reassembly_timeout_counts () =
  (* Drop one fragment by cutting the link mid-stream, then check the
     reassembly buffer at B expires. *)
  let eng = Engine.create () in
  let reasm = Ip.Reassembly.create ~timeout_us:1_000_000 eng in
  let h =
    Ipv4.make_header ~id:5 ~more_fragments:true ~proto:(Ipv4.Proto.Other 99)
      ~src:(Addr.v 1 1 1 1) ~dst:(Addr.v 2 2 2 2) ()
  in
  (match Ip.Reassembly.push reasm h (Bytes.make 8 'a') with
  | Ip.Reassembly.Incomplete -> ()
  | Ip.Reassembly.Complete _ -> Alcotest.fail "should be incomplete");
  check Alcotest.int "pending" 1 (Ip.Reassembly.pending reasm);
  Engine.run eng;
  check Alcotest.int "expired" 1 (Ip.Reassembly.expired reasm);
  check Alcotest.int "none pending" 0 (Ip.Reassembly.pending reasm)

let test_reassembly_out_of_order_and_overlap () =
  let eng = Engine.create () in
  let reasm = Ip.Reassembly.create eng in
  let mk ~off ~mf payload =
    ( Ipv4.make_header ~id:9 ~more_fragments:mf ~frag_offset:off
        ~proto:(Ipv4.Proto.Other 99) ~src:(Addr.v 1 1 1 1)
        ~dst:(Addr.v 2 2 2 2) (),
      payload )
  in
  (* Total message: 24 bytes in three 8-byte fragments, delivered 2,0,1
     with fragment 1 duplicated. *)
  let h2, p2 = mk ~off:16 ~mf:false (Bytes.of_string "CCCCCCCC") in
  let h0, p0 = mk ~off:0 ~mf:true (Bytes.of_string "AAAAAAAA") in
  let h1, p1 = mk ~off:8 ~mf:true (Bytes.of_string "BBBBBBBB") in
  (match Ip.Reassembly.push reasm h2 p2 with
  | Ip.Reassembly.Incomplete -> ()
  | _ -> Alcotest.fail "incomplete expected");
  (match Ip.Reassembly.push reasm h0 p0 with
  | Ip.Reassembly.Incomplete -> ()
  | _ -> Alcotest.fail "incomplete expected");
  (match Ip.Reassembly.push reasm h1 p1 with
  | Ip.Reassembly.Complete data ->
      check Alcotest.string "assembled" "AAAAAAAABBBBBBBBCCCCCCCC"
        (Bytes.to_string data)
  | Ip.Reassembly.Incomplete -> Alcotest.fail "should complete");
  (* A duplicate fragment after completion starts a new buffer. *)
  match Ip.Reassembly.push reasm h1 p1 with
  | Ip.Reassembly.Incomplete -> ()
  | _ -> Alcotest.fail "fresh buffer expected"

let prop_fragment_reassemble_identity =
  QCheck.Test.make ~name:"fragment then reassemble is the identity" ~count:100
    QCheck.(pair (256 -- 4000) (1 -- 100))
    (fun (size, seed) ->
      let eng = Engine.create () in
      let reasm = Ip.Reassembly.create eng in
      let payload = Bytes.init size (fun i -> Char.chr ((i * seed) land 0xff)) in
      let mtu = 256 + (seed mod 200) in
      let max_data = (mtu - 20) / 8 * 8 in
      (* Cut manually the way the stack does. *)
      let rec frags off acc =
        if off >= size then List.rev acc
        else begin
          let n = min max_data (size - off) in
          let mf = off + n < size in
          let h =
            Ipv4.make_header ~id:3 ~more_fragments:mf ~frag_offset:off
              ~proto:(Ipv4.Proto.Other 99) ~src:(Addr.v 1 1 1 1)
              ~dst:(Addr.v 2 2 2 2) ()
          in
          frags (off + n) ((h, Bytes.sub payload off n) :: acc)
        end
      in
      let pieces = Array.of_list (frags 0 []) in
      (* Shuffle deterministically. *)
      let rng = Stdext.Rng.create seed in
      Stdext.Rng.shuffle rng pieces;
      let result = ref None in
      Array.iter
        (fun (h, p) ->
          match Ip.Reassembly.push reasm h p with
          | Ip.Reassembly.Complete data -> result := Some data
          | Ip.Reassembly.Incomplete -> ())
        pieces;
      match !result with
      | Some data -> Bytes.equal data payload
      | None -> false)

(* --- Accounting ------------------------------------------------------------ *)

let test_accounting_ledger () =
  let t = triple () in
  let acc = Ip.Stack.enable_accounting t.g in
  ignore (register_sink t.b);
  for _ = 1 to 5 do
    ignore
      (Ip.Stack.send t.a ~proto:(Ipv4.Proto.Other 99) ~dst:t.b_addr
         (Bytes.make 100 'x'))
  done;
  Engine.run t.eng;
  let flows = Ip.Accounting.flows acc in
  check Alcotest.int "one flow" 1 (List.length flows);
  let _, usage = List.hd flows in
  check Alcotest.int "packets" 5 usage.Ip.Accounting.packets;
  check Alcotest.int "bytes include headers" (5 * 120) usage.Ip.Accounting.bytes;
  let total = Ip.Accounting.total acc in
  check Alcotest.int "total packets" 5 total.Ip.Accounting.packets

let test_accounting_separates_flows () =
  let t = triple () in
  let acc = Ip.Stack.enable_accounting t.g in
  ignore (register_sink t.b);
  (* Two distinct UDP flows by port. *)
  let udp_a = Udp.create t.a in
  let udp_b = Udp.create t.b in
  ignore (Udp.bind udp_b ~port:1000 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) ());
  ignore (Udp.bind udp_b ~port:2000 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) ());
  let s1 = Udp.bind udp_a ~port:5001 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  let s2 = Udp.bind udp_a ~port:5002 ~recv:(fun ~src:_ ~src_port:_ _ -> ()) () in
  ignore (Udp.sendto s1 ~dst:t.b_addr ~dst_port:1000 (Bytes.make 10 'a'));
  ignore (Udp.sendto s2 ~dst:t.b_addr ~dst_port:2000 (Bytes.make 10 'b'));
  ignore (Udp.sendto s1 ~dst:t.b_addr ~dst_port:1000 (Bytes.make 10 'c'));
  Engine.run t.eng;
  let flows = Ip.Accounting.flows acc in
  check Alcotest.int "two flows" 2 (List.length flows);
  let f1, u1 = List.hd flows in
  check Alcotest.int "heavier flow has 2 packets" 2 u1.Ip.Accounting.packets;
  check Alcotest.int "ports recovered" 1000 f1.Ip.Accounting.dst_port

let () =
  Alcotest.run "ip"
    [
      ( "route-table",
        [
          Alcotest.test_case "lpm longer wins" `Quick test_lpm_prefers_longer;
          Alcotest.test_case "metric tiebreak" `Quick test_lpm_metric_tiebreak;
          Alcotest.test_case "default route" `Quick test_default_route;
          Alcotest.test_case "replace" `Quick test_add_replaces_same_prefix;
          Alcotest.test_case "remove" `Quick test_remove;
          qcheck prop_lpm_matches_bruteforce;
        ] );
      ( "forwarding",
        [
          Alcotest.test_case "across gateway" `Quick test_forward_across_gateway;
          Alcotest.test_case "loopback" `Quick test_local_delivery_loopback;
          Alcotest.test_case "no route" `Quick test_no_route_error;
          Alcotest.test_case "unroutable dropped" `Quick test_host_does_not_forward;
          Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry_generates_icmp;
          Alcotest.test_case "net unreachable" `Quick test_net_unreachable_icmp;
          Alcotest.test_case "protocol unreachable" `Quick test_protocol_unreachable;
          Alcotest.test_case "ping" `Quick test_ping_echo;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "transit frame identity" `Quick
            test_transit_frame_identity;
          Alcotest.test_case "route cache invalidation" `Quick
            test_route_cache_sees_table_changes;
          Alcotest.test_case "route cache bounded" `Quick
            test_route_cache_bounded;
          Alcotest.test_case "table generation" `Quick
            test_route_table_generation;
          Alcotest.test_case "slow path still forwards" `Quick
            test_slow_path_still_forwards;
          Alcotest.test_case "loopback src" `Quick
            test_loopback_src_defaults_to_primary;
        ] );
      ( "fragmentation",
        [
          Alcotest.test_case "gateway fragments" `Quick
            test_fragmentation_across_small_mtu;
          Alcotest.test_case "source fragments" `Quick test_source_fragmentation;
          Alcotest.test_case "DF refused" `Quick test_df_generates_frag_needed;
          Alcotest.test_case "timeout" `Quick test_reassembly_timeout_counts;
          Alcotest.test_case "out of order + dup" `Quick
            test_reassembly_out_of_order_and_overlap;
          qcheck prop_fragment_reassemble_identity;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "ledger" `Quick test_accounting_ledger;
          Alcotest.test_case "flow separation" `Quick test_accounting_separates_flows;
        ] );
    ]
