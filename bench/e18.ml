(* E18 — TCP under blind in-window attack, and windows past 64 KiB.

   The 1988 design trusted every datagram that named the right 4-tuple:
   an off-path attacker who guesses an in-window sequence number can
   reset, desynchronize or choke a connection (the accountability /
   trust gap of Clark goal 7, weaponized).  E18 measures the hardened
   transport: RFC 5961 exact-RST + challenge-ACK validation under a
   seeded hostile peer injecting >= 10^4 forged segments (RSTs at wrong
   in-window offsets, in-window SYNs, stale duplicates, out-of-window
   data, ACK-range probes) into a live transfer over the E17 region
   topology — spoofed from the peer's own address.

   Reported and gated (bin/check.sh over BENCH_tcp_adversary.json):
   zero connections killed by forgeries, goodput under attack >= 90% of
   the unattacked run, the fast path bit-for-bit identical to the slow
   path while under fire, and — the RFC 7323 half — a window-scaled
   transfer on a high-BDP path (wscale >= 2, window > 64 KiB observed on
   the wire) completing faster than the same path capped at 16-bit
   windows. *)

open Catenet
module Wire = Packet.Tcp_wire
module Ipv4 = Packet.Ipv4
module Seq = Tcp.Seq
module Rng = Stdext.Rng
module Addr = Packet.Addr

let hostile_full = 12_000
let transfer_full = 8_000_000
let lfn_total_full = 4_000_000
let goodput_floor_pct = 90.0

type outcome = {
  o_finished : bool;
  o_received : int;
  o_intact : bool;
  o_killed : bool;
  o_injected : int;
  o_challenges : int;
  o_rst_rejected : int;
  o_acks_dropped : int;
  o_segs_out : int;
  o_segs_in : int;
  o_retransmits : int;
  o_done_us : int;
  o_goodput_bps : float;
}

(* One bulk transfer across the region topology: sender in region 0,
   receiver half the ring away, Mallory a full host in region 1 forging
   segments at the sender with the receiver's source address. *)
let topo_run ~fast ~seed ~hostile ~total =
  let topo =
    Topo.build
      { Topo.default_config with Topo.seed; core = 6; chords = 2;
        regions = 12; hosts_per_region = 8 }
  in
  let eng = Topo.engine topo in
  let a_ip, a_addr = Topo.add_full_host topo ~region:0 in
  let b_ip, b_addr = Topo.add_full_host topo ~region:6 in
  let m_ip, _ = Topo.add_full_host topo ~region:1 in
  let a_tcp = Tcp.create a_ip and b_tcp = Tcp.create b_ip in
  Tcp.set_fast_path a_tcp fast;
  Tcp.set_fast_path b_tcp fast;
  Engine.set_timer_wheel eng fast;
  let server = Apps.Bulk.serve b_tcp ~port:80 ~seed:(3 * seed) in
  let sender =
    Apps.Bulk.start a_tcp ~dst:b_addr ~dst_port:80 ~seed:(3 * seed) ~total ()
  in
  let conn = Apps.Bulk.conn sender in
  let rng = Rng.create (seed lxor 0xE18) in
  let injected = ref 0 in
  let forge () =
    let rcv = Tcp.rcv_nxt conn and una = Tcp.snd_una conn in
    let sport = 80 and dport = Tcp.local_port conn in
    let seg =
      match Rng.int rng 6 with
      | 0 ->
          Wire.make
            ~seq:(Seq.add rcv (1 + Rng.int rng 4096))
            ~flags:(Wire.flags ~rst:true ())
            ~src_port:sport ~dst_port:dport ()
      | 1 ->
          Wire.make
            ~seq:(Seq.add rcv (Rng.int rng 4096))
            ~flags:(Wire.flags ~syn:true ())
            ~window:4096 ~src_port:sport ~dst_port:dport ()
      | 2 ->
          let back = 2 + Rng.int rng 2000 in
          Wire.make
            ~seq:(Seq.add rcv (-back))
            ~ack_n:una
            ~flags:(Wire.flags ~ack:true ())
            ~window:8192
            ~payload:(Bytes.make (1 + Rng.int rng (min (back - 1) 64)) '\xaa')
            ~src_port:sport ~dst_port:dport ()
      | 3 ->
          Wire.make
            ~seq:(Seq.add rcv (1_000_000 + Rng.int rng 1_000_000))
            ~ack_n:una
            ~flags:(Wire.flags ~ack:true ())
            ~window:8192 ~payload:(Bytes.make 32 '\xbb') ~src_port:sport
            ~dst_port:dport ()
      | 4 ->
          Wire.make
            ~seq:(Seq.add rcv (Rng.int rng 1024))
            ~ack_n:(Seq.add una (-(1_000_000 + Rng.int rng 1_000_000)))
            ~flags:(Wire.flags ~ack:true ())
            ~window:8192 ~src_port:sport ~dst_port:dport ()
      | _ ->
          Wire.make
            ~seq:(Seq.add rcv (Rng.int rng 1024))
            ~ack_n:(Seq.add una (1_000_000 + Rng.int rng 1_000_000))
            ~flags:(Wire.flags ~ack:true ())
            ~window:8192 ~src_port:sport ~dst_port:dport ()
    in
    ignore
      (Ip.Stack.send m_ip ~src:b_addr ~proto:Ipv4.Proto.Tcp ~dst:a_addr
         (Wire.encode ~src:b_addr ~dst:a_addr seg));
    incr injected
  in
  if hostile > 0 then begin
    let rec barrage () =
      if !injected < hostile && Tcp.state conn <> Tcp.Closed then begin
        for _ = 1 to 25 do forge () done;
        Engine.after eng 500 barrage
      end
    in
    Engine.after eng 5_000 barrage
  end;
  Engine.run ~until:120_000_000 eng;
  let received, intact =
    match Apps.Bulk.transfers server with
    | [ tr ] -> (tr.Apps.Bulk.received, tr.Apps.Bulk.intact)
    | _ -> (-1, false)
  in
  let g = Tcp.instance_stats a_tcp in
  let st = Tcp.stats conn in
  {
    o_finished = Apps.Bulk.finished sender;
    o_received = received;
    o_intact = intact;
    o_killed = Apps.Bulk.failed sender = Some Tcp.Reset;
    o_injected = !injected;
    o_challenges = g.Tcp.challenge_acks_out;
    o_rst_rejected = g.Tcp.rst_rejected_inexact;
    o_acks_dropped = g.Tcp.dropped_acks_invalid;
    o_segs_out = st.Tcp.segs_out;
    o_segs_in = st.Tcp.segs_in;
    o_retransmits = st.Tcp.retransmits;
    o_done_us = Option.value (Apps.Bulk.completed_at_us sender) ~default:(-1);
    o_goodput_bps = Option.value (Apps.Bulk.goodput_bps sender) ~default:0.0;
  }

(* A long-fat-network transfer: 200 Mbit/s x 40 ms RTT = ~1 MB of BDP,
   fifteen times what a 16-bit window can keep in flight.  The link gets
   BDP-scale buffering (256 frames ~ 375 KB) so the experiment measures
   the window limit, not slow-start overshoot into a shallow queue. *)
let lfn_run ~window_scaling ~total =
  let eng = Engine.create () in
  let net = Netsim.create ~seed:7 eng in
  let na = Netsim.add_node net "snd" in
  let nb = Netsim.add_node net "rcv" in
  ignore
    (Netsim.add_link net
       (Netsim.profile "lfn" ~bandwidth_bps:200_000_000 ~delay_us:20_000
          ~queue_capacity:256)
       na nb);
  let a_ip = Ip.Stack.create net na in
  let b_ip = Ip.Stack.create net nb in
  let a_addr = Addr.v 10 9 0 1 and b_addr = Addr.v 10 9 0 2 in
  Ip.Stack.configure_iface a_ip 0 ~addr:a_addr ~prefix_len:24;
  Ip.Stack.configure_iface b_ip 0 ~addr:b_addr ~prefix_len:24;
  let config =
    { Tcp.default_config with
      Tcp.window = 262_144; send_buffer = 524_288; window_scaling }
  in
  let a_tcp = Tcp.create ~config a_ip in
  let b_tcp = Tcp.create ~config b_ip in
  ignore (Apps.Bulk.serve b_tcp ~port:80 ~seed:11);
  let sender = Apps.Bulk.start a_tcp ~dst:b_addr ~dst_port:80 ~seed:11 ~total () in
  let conn = Apps.Bulk.conn sender in
  let peak_wnd = ref 0 in
  let rec sample () =
    peak_wnd := max !peak_wnd (Tcp.snd_wnd conn);
    if not (Apps.Bulk.finished sender) then Engine.after eng 2_000 sample
  in
  Engine.after eng 2_000 sample;
  Engine.run ~until:60_000_000 eng;
  let done_us =
    Option.value (Apps.Bulk.completed_at_us sender) ~default:(-1)
  in
  (Apps.Bulk.finished sender, done_us, !peak_wnd, Tcp.snd_wscale conn)

let run () =
  Util.banner "E18" "tcp under blind in-window attack"
    "RFC 5961 guards: >=10^4 forged segments, zero kills, goodput >= 90% \
     of the unattacked run; RFC 7323 windows past 64 KiB on a high-BDP \
     path";
  let hostile = Util.scaled hostile_full in
  let total = Util.scaled transfer_full in
  let seed = 18 in

  let base = topo_run ~fast:true ~seed ~hostile:0 ~total in
  let atk = topo_run ~fast:true ~seed ~hostile ~total in
  let atk_slow = topo_run ~fast:false ~seed ~hostile ~total in
  let agree = atk = atk_slow in
  let goodput_pct =
    if base.o_goodput_bps <= 0.0 then 0.0
    else 100.0 *. atk.o_goodput_bps /. base.o_goodput_bps
  in
  let kills = if atk.o_killed || atk_slow.o_killed then 1 else 0 in

  let lfn_total = Util.scaled lfn_total_full in
  let s_ok, s_us, s_peak, s_shift = lfn_run ~window_scaling:true ~total:lfn_total in
  let u_ok, u_us, u_peak, _ = lfn_run ~window_scaling:false ~total:lfn_total in
  let speedup =
    if s_us > 0 && u_us > 0 then float_of_int u_us /. float_of_int s_us
    else 0.0
  in

  Util.table
    [ "metric"; "value" ]
    [
      [ "hostile segments"; string_of_int atk.o_injected ];
      [ "connections killed"; string_of_int kills ];
      [ "rst rejected (inexact)"; string_of_int atk.o_rst_rejected ];
      [ "challenge acks"; string_of_int atk.o_challenges ];
      [ "invalid acks dropped"; string_of_int atk.o_acks_dropped ];
      [ "goodput unattacked"; Printf.sprintf "%.2f Mb/s" (base.o_goodput_bps /. 1e6) ];
      [ "goodput under attack"; Printf.sprintf "%.2f Mb/s (%.1f%%)" (atk.o_goodput_bps /. 1e6) goodput_pct ];
      [ "fast = slow under attack"; string_of_bool agree ];
      [ "lfn wscale shift"; string_of_int s_shift ];
      [ "lfn peak window"; string_of_int s_peak ];
      [ "lfn peak window (unscaled)"; string_of_int u_peak ];
      [ "lfn completion scaled"; Printf.sprintf "%.2f s" (float_of_int s_us /. 1e6) ];
      [ "lfn completion unscaled"; Printf.sprintf "%.2f s" (float_of_int u_us /. 1e6) ];
      [ "lfn speedup"; Printf.sprintf "%.2fx" speedup ];
    ];
  Util.note
    "%d forgeries killed nothing: %d inexact RSTs refused, %d challenge \
     acks, goodput held at %.1f%%; scaling lifts the LFN window to %d \
     bytes for a %.1fx faster transfer"
    atk.o_injected atk.o_rst_rejected atk.o_challenges goodput_pct s_peak
    speedup;

  let open Trace.Json in
  Util.write_json "BENCH_tcp_adversary.json"
    (Obj
       [ ("experiment", Str "E18");
         ("hostile_segments", Int atk.o_injected);
         ("hostile_floor", Int 10_000);
         ("kills", Int kills);
         ("transfer_bytes", Int total);
         ("transfer_finished", Int (if atk.o_finished && atk.o_intact then 1 else 0));
         ("rst_rejected_inexact", Int atk.o_rst_rejected);
         ("challenge_acks_out", Int atk.o_challenges);
         ("acks_dropped_invalid", Int atk.o_acks_dropped);
         ("goodput_base_bps", Float base.o_goodput_bps);
         ("goodput_attacked_bps", Float atk.o_goodput_bps);
         ("goodput_attacked_pct", Float goodput_pct);
         ("goodput_floor_pct", Float goodput_floor_pct);
         ("fast_slow_identical", Int (if agree then 1 else 0));
         ("attacked_segs_out", Int atk.o_segs_out);
         ("attacked_segs_in", Int atk.o_segs_in);
         ("attacked_retransmits", Int atk.o_retransmits);
         ("lfn",
          Obj
            [ ("bandwidth_bps", Int 200_000_000);
              ("rtt_us", Int 40_000);
              ("bytes", Int lfn_total);
              ("wscale_shift", Int s_shift);
              ("peak_window", Int s_peak);
              ("peak_window_unscaled", Int u_peak);
              ("completed_scaled", Int (if s_ok then 1 else 0));
              ("completed_unscaled", Int (if u_ok then 1 else 0));
              ("completion_scaled_us", Int s_us);
              ("completion_unscaled_us", Int u_us);
              ("speedup", Float speedup) ]) ])
