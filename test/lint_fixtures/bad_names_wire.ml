(* Fixture: name-protocol wire asymmetry.  The layout duplicates a
   field name ("flags" appears twice), the encoder writes "ttl" that no
   decoder ever reads, and the decoder reads "answer" that the encoder
   never writes — the E21 drift the symmetry rule exists to catch. *)

let layout =
  [ ("id", 0, 2); ("flags", 2, 2); ("flags", 4, 1); ("qtype", 5, 1);
    ("ttl", 6, 4); ("answer", 10, 4) ]

let encode id flags ttl =
  let buf = Bytes.create 14 in
  Bytes.set_uint16_be buf 0 id;
  Bytes.set_uint16_be buf 2 flags;
  Bytes.set_uint8 buf 4 0;
  Bytes.set_uint8 buf 5 1;
  Bytes.set_int32_be buf 6 ttl;
  buf

let decode buf =
  let id = Bytes.get_uint16_be buf 0 in
  let flags = Bytes.get_uint16_be buf 2 in
  let aa = Bytes.get_uint8 buf 4 in
  let qtype = Bytes.get_uint8 buf 5 in
  let answer = Bytes.get_int32_be buf 10 in
  (id, flags, aa, qtype, answer)
