bench/e07.ml: Apps Catenet Format Internet Ip List Netsim Printf Util
