(** IPv4 datagram header (RFC 791), the 20-byte options-free form.

    The datagram is the architecture's central abstraction (Clark §3): a
    self-contained unit carrying everything the network needs to deliver
    it, so that gateways keep no per-conversation state. *)

(** IP protocol numbers carried in the [proto] field. *)
module Proto : sig
  type t = Icmp | Tcp | Udp | Other of int

  val to_int : t -> int
  (** 1, 6, 17, or the raw value. *)

  val of_int : int -> t
  val pp : Format.formatter -> t -> unit
end

(** Type-of-service requested by the sender (goal 2).  Encoded in the ToS
    octet's precedence/D/T bits; the simulator's queues understand
    [Low_delay] as a priority hint. *)
module Tos : sig
  type t = Routine | Low_delay | High_throughput | High_reliability

  val to_int : t -> int
  val of_int : int -> t
  val pp : Format.formatter -> t -> unit
end

type header = {
  tos : Tos.t;
  id : int;  (** Fragment-group identification, 16 bits. *)
  dont_fragment : bool;
  more_fragments : bool;
  frag_offset : int;  (** In bytes; must be a multiple of 8. *)
  ttl : int;
  proto : Proto.t;
  src : Addr.t;
  dst : Addr.t;
}

val header_size : int
(** 20 bytes. *)

val layout : (string * int * int) list
(** [(field, offset, width)] wire contract, machine-checked by
    catenet-lint against the byte accesses in {!encode}, {!encode_into},
    {!peek} and {!patch_ttl}. *)

val max_datagram : int
(** 65535, the total-length field bound. *)

val make_header :
  ?tos:Tos.t ->
  ?id:int ->
  ?dont_fragment:bool ->
  ?more_fragments:bool ->
  ?frag_offset:int ->
  ?ttl:int ->
  proto:Proto.t ->
  src:Addr.t ->
  dst:Addr.t ->
  unit ->
  header
(** Defaults: routine ToS, id 0, no fragmentation fields set, TTL 64. *)

type error =
  [ `Truncated  (** Too short for the declared lengths. *)
  | `Bad_version of int
  | `Bad_checksum
  | `Bad_header of string ]

val pp_error : Format.formatter -> error -> unit

val encode : header -> payload:bytes -> bytes
(** Serialize header plus payload, computing the header checksum.
    @raise Invalid_argument if a field is out of range or the result would
    exceed {!max_datagram}. *)

val encode_into : header -> bytes -> unit
(** Allocation-free {!encode}: the frame's first {!header_size} bytes are
    a reserved prefix and the IP payload already sits after them; the
    header is written into the prefix in place.  The frame length is the
    datagram's total length.  Output is byte-for-byte identical to
    {!encode}.
    @raise Invalid_argument as {!encode}. *)

val decode : bytes -> (header * bytes, error) result
(** Parse and validate (version, IHL, checksum, total length).  Returns the
    header and a copy of the payload. *)

val peek : bytes -> (header, error) result
(** Like {!decode} — same validation, byte for byte — but reads only the
    header and never touches the payload.  This is the gateway fast path's
    entry point: a transit datagram's payload is dead weight to a forwarder,
    so it is never copied out of the frame. *)

val payload_of : bytes -> bytes
(** Copy the payload out of a frame already validated by {!peek} (uses the
    frame's total-length field; unvalidated input is undefined behaviour).
    Only the local-delivery path needs this. *)

val patch_ttl : bytes -> unit
(** Decrement the TTL of a validated frame in place and repair the header
    checksum incrementally (RFC 1624) — two bytes mutated, nothing
    allocated, the frame stays wire-valid.  @raise Invalid_argument if the
    TTL is already zero. *)

val pp_header : Format.formatter -> header -> unit
