lib/routing/dv.ml: Engine Hashtbl Ip List Netsim Option Packet Rt_msg Udp
